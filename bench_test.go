// Benchmark harness: one benchmark per table/figure in the paper's
// evaluation, plus ablation benches for the design choices DESIGN.md calls
// out. Each figure bench builds its figure from a shared full-campaign
// trace (seed 1) and prints the regenerated rows once, so
//
//	go test -bench=. -benchmem
//
// emits the complete evaluation alongside the timings.
package realtracer

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"realtracer/internal/campaign"
	"realtracer/internal/core"
	"realtracer/internal/figures"
	"realtracer/internal/netsim"
	"realtracer/internal/player"
	"realtracer/internal/stats"
	"realtracer/internal/study"
	"realtracer/internal/trace"
	"realtracer/internal/transport"
)

var (
	studyOnce sync.Once
	studyRecs []*trace.Record
	studyErr  error
)

// sharedTrace runs (once) the full 63-user study whose trace all figure
// benches share.
func sharedTrace(b *testing.B) []*trace.Record {
	b.Helper()
	studyOnce.Do(func() {
		res, err := core.RunStudy(core.StudyOptions{Seed: 1})
		if err != nil {
			studyErr = err
			return
		}
		studyRecs = res.Records
	})
	if studyErr != nil {
		b.Fatalf("study: %v", studyErr)
	}
	return studyRecs
}

var renderOnce sync.Map

func renderFigure(id string, fig figures.Figure) {
	if _, loaded := renderOnce.LoadOrStore(id, true); !loaded {
		fig.Render(os.Stdout)
	}
}

func benchFigure(b *testing.B, id string) {
	recs := sharedTrace(b)
	g, ok := figures.ByID(id)
	if !ok {
		b.Fatalf("unknown figure %s", id)
	}
	var fig figures.Figure
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = g.Build(recs)
	}
	b.StopTimer()
	renderFigure(id, fig)
}

// BenchmarkFig01Timeline regenerates Figure 1 (buffering and playout of one
// clip): each iteration runs a complete simulated 70-second session.
func BenchmarkFig01Timeline(b *testing.B) {
	var fig figures.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, _, err = core.Fig01Timeline(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	renderFigure("fig01", fig)
}

func BenchmarkFig05ClipsPerUser(b *testing.B)            { benchFigure(b, "fig05") }
func BenchmarkFig06RatedPerUser(b *testing.B)            { benchFigure(b, "fig06") }
func BenchmarkFig07ByUserCountry(b *testing.B)           { benchFigure(b, "fig07") }
func BenchmarkFig08ByServerCountry(b *testing.B)         { benchFigure(b, "fig08") }
func BenchmarkFig09ByUSState(b *testing.B)               { benchFigure(b, "fig09") }
func BenchmarkFig10Unavailable(b *testing.B)             { benchFigure(b, "fig10") }
func BenchmarkFig11FrameRateAll(b *testing.B)            { benchFigure(b, "fig11") }
func BenchmarkFig12FrameRateByAccess(b *testing.B)       { benchFigure(b, "fig12") }
func BenchmarkFig13BandwidthByAccess(b *testing.B)       { benchFigure(b, "fig13") }
func BenchmarkFig14FrameRateByServerRegion(b *testing.B) { benchFigure(b, "fig14") }
func BenchmarkFig15FrameRateByUserRegion(b *testing.B)   { benchFigure(b, "fig15") }
func BenchmarkFig16ProtocolMix(b *testing.B)             { benchFigure(b, "fig16") }
func BenchmarkFig17FrameRateByProtocol(b *testing.B)     { benchFigure(b, "fig17") }
func BenchmarkFig18BandwidthByProtocol(b *testing.B)     { benchFigure(b, "fig18") }
func BenchmarkFig19FrameRateByPC(b *testing.B)           { benchFigure(b, "fig19") }
func BenchmarkFig20JitterAll(b *testing.B)               { benchFigure(b, "fig20") }
func BenchmarkFig21JitterByAccess(b *testing.B)          { benchFigure(b, "fig21") }
func BenchmarkFig22JitterByServerRegion(b *testing.B)    { benchFigure(b, "fig22") }
func BenchmarkFig23JitterByUserRegion(b *testing.B)      { benchFigure(b, "fig23") }
func BenchmarkFig24JitterByProtocol(b *testing.B)        { benchFigure(b, "fig24") }
func BenchmarkFig25JitterByBandwidth(b *testing.B)       { benchFigure(b, "fig25") }
func BenchmarkFig26QualityAll(b *testing.B)              { benchFigure(b, "fig26") }
func BenchmarkFig27QualityByAccess(b *testing.B)         { benchFigure(b, "fig27") }
func BenchmarkFig28QualityVsBandwidth(b *testing.B)      { benchFigure(b, "fig28") }

// BenchmarkStudyEndToEnd times one complete reduced campaign (12 users, 10
// clips each) — the macro cost of the whole apparatus.
func BenchmarkStudyEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.RunStudy(core.StudyOptions{Seed: int64(i + 2), MaxUsers: 12, ClipCap: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllFiguresShared builds every figure off one shared aggregate
// pass — the single-sweep path that replaced 24 per-figure sweeps.
func BenchmarkAllFiguresShared(b *testing.B) {
	recs := sharedTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if figs := core.AllFigures(recs); len(figs) != 24 {
			b.Fatalf("figures=%d", len(figs))
		}
	}
}

// --- Streaming pipeline (population scale) ---

// benchPopulationStream streams a population-scale study through the
// aggregate pipeline, reporting record throughput alongside the allocation
// counters — the ceiling this PR removes is records retained per run.
func benchPopulationStream(b *testing.B, users, clips int) {
	b.ReportAllocs()
	var records int
	for i := 0; i < b.N; i++ {
		agg, _, err := core.RunStudyAggregates(core.StudyOptions{Seed: 1, MaxUsers: users, ClipCap: clips})
		if err != nil {
			b.Fatal(err)
		}
		if agg.Total() == 0 {
			b.Fatal("no records streamed")
		}
		records += agg.Total()
	}
	b.ReportMetric(float64(records)/b.Elapsed().Seconds(), "records/sec")
}

// BenchmarkPopulationStream1k is the population-scale benchmark: a
// 1,000-user study (proportionally scaled population, 2 clips per user)
// streamed into mergeable aggregates. Memory stays bounded by aggregate
// size — the sketches fold past their exact caps — no matter how many
// records flow through.
func BenchmarkPopulationStream1k(b *testing.B) { benchPopulationStream(b, 1000, 2) }

// BenchmarkPopulationStream250 / BenchmarkPopulationRetain250 contrast the
// streaming and retain-everything paths at the same moderate scale: same
// simulation work, different record lifetimes.
func BenchmarkPopulationStream250(b *testing.B) { benchPopulationStream(b, 250, 2) }

func BenchmarkPopulationRetain250(b *testing.B) {
	b.ReportAllocs()
	var records int
	for i := 0; i < b.N; i++ {
		res, err := core.RunStudy(core.StudyOptions{Seed: 1, MaxUsers: 250, ClipCap: 2})
		if err != nil {
			b.Fatal(err)
		}
		records += len(res.Records)
	}
	b.ReportMetric(float64(records)/b.Elapsed().Seconds(), "records/sec")
}

// BenchmarkWorkloadPoisson1k is the open-loop scale benchmark: 1,000
// Poisson arrivals over a 200-template pool, each session drawing Zipf
// clips and churning its host on and off the network, streamed into
// mergeable aggregates. It demonstrates the workload engine riding the
// zero-allocation discrete-event core — memory stays bounded by aggregate
// size, and template hosts are recycled through RemoveHost/AddHost all
// run long.
func BenchmarkWorkloadPoisson1k(b *testing.B) {
	b.ReportAllocs()
	var records, sessions int
	for i := 0; i < b.N; i++ {
		agg := figures.NewAggregates()
		res, err := core.RunStudyStream(core.StudyOptions{
			Seed: 1, MaxUsers: 200, ClipCap: 2,
			Workload: "poisson", Arrivals: 1000,
		}, agg)
		if err != nil {
			b.Fatal(err)
		}
		if agg.Total() == 0 || res.Sessions == 0 {
			b.Fatal("no open-loop records streamed")
		}
		records += agg.Total()
		sessions += res.Sessions
	}
	b.ReportMetric(float64(records)/b.Elapsed().Seconds(), "records/sec")
	b.ReportMetric(float64(sessions)/float64(b.N), "sessions/op")
}

// BenchmarkWorkloadChurn2x doubles the arrival intensity over the same
// 200-template pool: templates balk, sessions abandon mid-stream, and the
// pooled bundle graph is leased and recycled at twice the Poisson1k rate —
// the stress case for the session free-list. departures/op tracks how much
// of the churn exercised the mid-stream teardown path.
func BenchmarkWorkloadChurn2x(b *testing.B) {
	b.ReportAllocs()
	var records, sessions, departed int
	for i := 0; i < b.N; i++ {
		agg := figures.NewAggregates()
		res, err := core.RunStudyStream(core.StudyOptions{
			Seed: 1, MaxUsers: 200, ClipCap: 2,
			Workload: "poisson", Arrivals: 1000, WorkloadIntensity: 2,
		}, agg)
		if err != nil {
			b.Fatal(err)
		}
		if agg.Total() == 0 || res.Sessions == 0 {
			b.Fatal("no open-loop records streamed")
		}
		records += agg.Total()
		sessions += res.Sessions
		departed += res.Departed
	}
	b.ReportMetric(float64(records)/b.Elapsed().Seconds(), "records/sec")
	b.ReportMetric(float64(sessions)/float64(b.N), "sessions/op")
	b.ReportMetric(float64(departed)/float64(b.N), "departures/op")
}

// --- Campaign engine (internal/campaign) ---

// stabilityScenarios is the 20-replica multi-seed stability campaign: the
// reduced study at 20 consecutive seeds.
func stabilityScenarios(n int) []core.Scenario {
	return campaign.SeedReplicas(core.StudyOptions{MaxUsers: 12, ClipCap: 10}, 2, n)
}

// BenchmarkMultiSeedStability fans a 20-seed stability campaign out across
// every core and reports the cross-seed spread of the headline frame-rate
// number — the replication study that would otherwise cost 20 sequential
// RunStudy calls.
func BenchmarkMultiSeedStability(b *testing.B) {
	scs := stabilityScenarios(20)
	var sum *core.CampaignSummary
	for i := 0; i < b.N; i++ {
		sum = core.RunCampaign(scs, core.CampaignConfig{})
		if err := sum.Err(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var means []float64
	for _, r := range sum.Results {
		fps := trace.Values(trace.Played(r.Result.Records), func(rec *trace.Record) float64 { return rec.MeasuredFPS })
		means = append(means, stats.Mean(fps))
	}
	s, _ := stats.Summarize(means)
	ablationPrintf("stability",
		"stability %d seeds on %d workers: mean fps %.1f ± %.2f (min %.1f, max %.1f) in %v\n",
		len(scs), sum.Workers, s.Mean, s.StdDev, s.Min, s.Max, sum.Elapsed.Round(1e6))
}

// BenchmarkCampaignSerial / BenchmarkCampaignParallel time the same
// 8-scenario campaign on one worker vs the full pool — the engine's
// speedup baseline recorded in CHANGES.md.
func benchCampaignWorkers(b *testing.B, workers int) {
	scs := stabilityScenarios(8)
	for i := 0; i < b.N; i++ {
		sum := core.RunCampaign(scs, core.CampaignConfig{Workers: workers})
		if err := sum.Err(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCampaignSerial(b *testing.B)   { benchCampaignWorkers(b, 1) }
func BenchmarkCampaignParallel(b *testing.B) { benchCampaignWorkers(b, 0) }

// benchCampaignDynamics runs one fault-injection sweep family through the
// streaming campaign engine, reporting record throughput and allocations —
// the cost of simulating weather on top of the static Internet.
func benchCampaignDynamics(b *testing.B, family string) {
	b.ReportAllocs()
	sw, ok := campaign.SweepByName(family)
	if !ok {
		b.Fatalf("unknown sweep %s", family)
	}
	scs := sw.Scenarios(campaign.ReducedBase(9))
	var records int
	for i := 0; i < b.N; i++ {
		merged, sum := core.RunCampaignAggregates(scs, core.CampaignConfig{BaseSeed: 9})
		if err := sum.Err(); err != nil {
			b.Fatal(err)
		}
		if len(merged.Robustness()) < 2 {
			b.Fatal("robustness breakdown missing conditions")
		}
		records += merged.Total()
	}
	b.ReportMetric(float64(records)/b.Elapsed().Seconds(), "records/sec")
}

// BenchmarkCampaignDynamicsLossburst / ...Outage time the two heaviest
// dynamics families (per-packet Gilbert–Elliott chains; rolling outages
// with degradation shoulders) against BenchmarkCampaignSerial's static
// baseline.
func BenchmarkCampaignDynamicsLossburst(b *testing.B) { benchCampaignDynamics(b, "lossburst") }
func BenchmarkCampaignDynamicsOutage(b *testing.B)    { benchCampaignDynamics(b, "outage") }

// --- Warm-started campaigns (checkpoint/fork) ---

var (
	warmForkOnce    sync.Once
	warmForkHorizon time.Duration
	warmForkErr     error
)

// warmForkCalibrate measures (once) the virtual horizon of the warm-fork
// bench base, so the warm-up instant can sit at 60% of it.
func warmForkCalibrate(b *testing.B, base core.StudyOptions) time.Duration {
	b.Helper()
	warmForkOnce.Do(func() {
		res, err := core.RunStudy(base)
		if err != nil {
			warmForkErr = err
			return
		}
		warmForkHorizon = res.SimDuration
	})
	if warmForkErr != nil {
		b.Fatalf("warm-fork calibration: %v", warmForkErr)
	}
	return warmForkHorizon
}

// BenchmarkCampaignWarmFork is the checkpoint/fork amortization pair
// (BENCH_pr10.json): an 8-scenario sweep of the reduced study, cold
// (every scenario pays the full horizon) vs warm-started (one shared
// prefix to 60% of the horizon, checkpointed once, 8 named forks resumed
// from the snapshot). Workers is pinned to 1 on both arms so the ratio
// measures prefix amortization, not parallelism; the theoretical ceiling
// at these parameters is 8/(0.6+8×0.4) ≈ 2.1x.
func BenchmarkCampaignWarmFork(b *testing.B) {
	base := campaign.ReducedBase(9)
	horizon := warmForkCalibrate(b, base)
	warmup := horizon * 6 / 10

	b.Run("cold", func(b *testing.B) {
		scs := campaign.SeedReplicas(base, 10, 8)
		for i := 0; i < b.N; i++ {
			sum := campaign.Run(scs, campaign.Config{Workers: 1})
			if err := sum.Err(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		forks := make([]study.Fork, 8)
		for i := range forks {
			forks[i] = study.Fork{Name: fmt.Sprintf("fork-%02d", i)}
		}
		var sum *campaign.WarmForkResult
		for i := 0; i < b.N; i++ {
			var err error
			sum, err = campaign.RunWarmForks(base, warmup, forks, campaign.Config{Workers: 1})
			if err != nil {
				b.Fatal(err)
			}
			if err := sum.Err(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		ablationPrintf("warmfork",
			"warm fork: %d forks from one %v prefix (%d-byte snapshot, prefix cost %v of %v total)\n",
			len(sum.Results), sum.Warmup.Round(time.Second), sum.SnapshotBytes,
			sum.WarmupElapsed.Round(time.Millisecond), sum.Elapsed.Round(time.Millisecond))
	})
}

// --- Ablations (DESIGN.md section 4) ---

var ablationOnce sync.Map

func ablationPrintf(key, format string, args ...any) {
	if _, loaded := ablationOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf(format, args...)
	}
}

// runAblation executes one registered sweep through the campaign engine
// (all cores) and hands each scenario's result to report.
func runAblation(b *testing.B, sweepName string, report func(r campaign.ScenarioResult)) {
	b.Helper()
	sw, ok := campaign.SweepByName(sweepName)
	if !ok {
		b.Fatalf("unknown sweep %s", sweepName)
	}
	scs := sw.Scenarios(campaign.ReducedBase(9))
	var sum *core.CampaignSummary
	for i := 0; i < b.N; i++ {
		sum = core.RunCampaign(scs, core.CampaignConfig{})
		if err := sum.Err(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range sum.Results {
		report(r)
	}
}

// BenchmarkAblationBuffer sweeps the player's initial buffer depth and
// reports the jitter CDF shift: the paper credits the "large initial delay
// buffer" for the smooth playouts of Figure 20.
func BenchmarkAblationBuffer(b *testing.B) {
	runAblation(b, "preroll", func(r campaign.ScenarioResult) {
		preroll := r.Scenario.Options.Preroll
		jit := trace.Values(trace.Played(r.Result.Records), func(rec *trace.Record) float64 { return rec.JitterMs })
		c, _ := stats.NewCDF(jit)
		ablationPrintf(fmt.Sprintf("buffer-%v", preroll),
			"ablation buffer preroll=%-4v jitter<=50ms %.0f%%  jitter>=300ms %.0f%%\n",
			preroll, 100*c.At(50), 100*c.FractionAtLeast(300))
	})
}

// BenchmarkAblationRateControl compares UDP rate controllers: TFRC vs AIMD
// vs unresponsive — Figure 18's "responsive but maybe not strictly
// TCP-friendly" observation, plus the [FF98] strawman.
func BenchmarkAblationRateControl(b *testing.B) {
	runAblation(b, "controller", func(r campaign.ScenarioResult) {
		ctrl := r.Scenario.Options.Controller
		udp := trace.Filter(trace.Played(r.Result.Records), func(rec *trace.Record) bool { return rec.Protocol == "UDP" })
		kbps := trace.Values(udp, func(rec *trace.Record) float64 { return rec.MeasuredKbps })
		lost := 0
		for _, rec := range udp {
			lost += rec.FramesLost
		}
		ablationPrintf("rc-"+ctrl,
			"ablation ratecontrol %-13s udp sessions=%d mean %.0f Kbps, packets lost=%d\n",
			ctrl, len(udp), stats.Mean(kbps), lost)
	})
}

// BenchmarkAblationSureStream toggles mid-playout stream switching.
func BenchmarkAblationSureStream(b *testing.B) {
	runAblation(b, "surestream", func(r campaign.ScenarioResult) {
		played := trace.Played(r.Result.Records)
		fps := trace.Values(played, func(rec *trace.Record) float64 { return rec.MeasuredFPS })
		c, _ := stats.NewCDF(fps)
		label := "on"
		if r.Scenario.Options.DisableSureStream {
			label = "off"
		}
		ablationPrintf("ss-"+label,
			"ablation surestream=%-3s below 3 fps %.0f%%  mean %.1f fps\n",
			label, 100*c.FractionBelow(3), stats.Mean(fps))
	})
}

// BenchmarkAblationFEC toggles repair packets under a lossy path.
func BenchmarkAblationFEC(b *testing.B) {
	runAblation(b, "fec", func(r campaign.ScenarioResult) {
		udp := trace.Filter(trace.Played(r.Result.Records), func(rec *trace.Record) bool { return rec.Protocol == "UDP" })
		var corrupted, lost int
		for _, rec := range udp {
			corrupted += rec.FramesCorrupted
			lost += rec.FramesLost
		}
		label := "on"
		if r.Scenario.Options.DisableFEC {
			label = "off"
		}
		ablationPrintf("fec-"+label,
			"ablation fec=%-3s udp frames corrupted=%d, packets unrecovered=%d (n=%d sessions)\n",
			label, corrupted, lost, len(udp))
	})
}

// BenchmarkAblationLiveContent contrasts live and pre-recorded delivery of
// the same content on the same path — the paper's future-work experiment
// (Section VIII, citing [LH01]).
func BenchmarkAblationLiveContent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, live := range []bool{false, true} {
			var jitVals, bufVals []float64
			for seed := int64(0); seed < 6; seed++ {
				st, err := core.RunSession(core.SessionOptions{
					Protocol:     transport.UDP,
					ClientAccess: netsim.AccessDSLCable,
					ClipKbps:     225,
					Live:         live,
					Route: netsim.Route{
						OneWayDelay: 50 * time.Millisecond, Jitter: 15 * time.Millisecond,
						LossRate: 0.01, CapacityKbps: 600, CongestionMean: 0.3, CongestionVar: 0.15,
					},
					Seed: 200 + seed,
				})
				if err != nil {
					b.Fatal(err)
				}
				jitVals = append(jitVals, st.JitterMs)
				bufVals = append(bufVals, st.BufferingTime.Seconds())
			}
			label := "prerecorded"
			if live {
				label = "live"
			}
			ablationPrintf("live-"+label,
				"ablation content=%-11s jitter %.0f ms, initial buffering %.1f s\n",
				label, stats.Mean(jitVals), stats.Mean(bufVals))
		}
	}
}

// BenchmarkAblationScalableVideo compares controlled frame-rate reduction
// against erratic overload behaviour on the study's slowest PC class.
func BenchmarkAblationScalableVideo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, disable := range []bool{false, true} {
			var fpsVals, jitVals []float64
			for seed := int64(0); seed < 6; seed++ {
				st, err := core.RunSession(core.SessionOptions{
					Protocol:             transport.UDP,
					ClientAccess:         netsim.AccessDSLCable,
					ClipKbps:             350,
					CPU:                  player.PCPentiumMMX,
					DisableScalableVideo: disable,
					Seed:                 100 + seed,
				})
				if err != nil {
					b.Fatal(err)
				}
				fpsVals = append(fpsVals, st.MeasuredFPS)
				jitVals = append(jitVals, st.JitterMs)
			}
			label := "on"
			if disable {
				label = "off"
			}
			ablationPrintf("sv-"+label,
				"ablation scalablevideo=%-3s (Pentium MMX, 350Kbps clip): %.1f fps, jitter %.0f ms\n",
				label, stats.Mean(fpsVals), stats.Mean(jitVals))
		}
	}
}

// BenchmarkWorkloadSharded is the multi-core scaling benchmark: the
// Poisson1k workload over a 256-template pool, run through the sharded
// engine at 1 and 4 shards. Run with -cpu 1,4 to see the scaling curve;
// the records are byte-identical across the sub-benchmarks (the sharding
// contract), so records/sec is the only number that should move.
func BenchmarkWorkloadSharded(b *testing.B) {
	for _, shards := range []int{1, 4} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			var records int
			for i := 0; i < b.N; i++ {
				agg := figures.NewAggregates()
				res, err := core.RunStudyStream(core.StudyOptions{
					Seed: 1, MaxUsers: 256, ClipCap: 2,
					Workload: "poisson", Arrivals: 1000,
					Shards: shards,
				}, agg)
				if err != nil {
					b.Fatal(err)
				}
				if agg.Total() == 0 || res.Sessions == 0 {
					b.Fatal("no open-loop records streamed")
				}
				records += agg.Total()
			}
			b.ReportMetric(float64(records)/b.Elapsed().Seconds(), "records/sec")
		})
	}
}
