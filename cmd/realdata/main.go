// Command realdata is the analysis tool the paper's Notes section announced:
// it reads a RealTracer trace (CSV or JSON, as written by cmd/study or a
// live cmd/realtracer run) and regenerates the study's figures from it,
// decoupling collection from analysis.
//
// Usage:
//
//	realdata -in trace.csv [-figure figNN] [-summary]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"realtracer/internal/core"
	"realtracer/internal/stats"
	"realtracer/internal/trace"
)

func main() {
	in := flag.String("in", "", "trace file (.csv or .json)")
	figure := flag.String("figure", "", "regenerate one figure (fig05..fig28)")
	summary := flag.Bool("summary", false, "print headline statistics only")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "realdata: -in trace file required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatalf("open: %v", err)
	}
	defer f.Close()
	var recs []*trace.Record
	if strings.HasSuffix(*in, ".json") {
		recs, err = trace.ReadJSON(f)
	} else {
		recs, err = trace.ReadCSV(f)
	}
	if err != nil {
		fatalf("parse %s: %v", *in, err)
	}
	if len(recs) == 0 {
		fatalf("no records in %s", *in)
	}
	switch {
	case *figure != "":
		fig, err := core.RunFigure(*figure, recs)
		if err != nil {
			fatalf("%v", err)
		}
		fig.Render(os.Stdout)
	case *summary:
		printSummary(recs)
	default:
		core.RenderAll(os.Stdout, recs)
	}
}

func printSummary(recs []*trace.Record) {
	played := trace.Played(recs)
	fps := trace.Values(played, func(r *trace.Record) float64 { return r.MeasuredFPS })
	jit := trace.Values(played, func(r *trace.Record) float64 { return r.JitterMs })
	s, _ := stats.Summarize(fps)
	j, _ := stats.Summarize(jit)
	fmt.Printf("records=%d played=%d rated=%d\n", len(recs), len(played), len(trace.Rated(recs)))
	fmt.Printf("frame rate: mean=%.1f median=%.1f\n", s.Mean, s.Median)
	fmt.Printf("jitter: mean=%.0fms median=%.0fms\n", j.Mean, j.Median)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
