// Command realserver runs the streaming server over real OS sockets on
// localhost: RTSP control on -control, TCP data on -data, UDP data on -udp.
// Point cmd/realtracer at it to stream over the loopback interface.
//
// Usage:
//
//	realserver [-host 127.0.0.1] [-control 8554] [-data 8555] [-udp 8556]
//	           [-clips 8] [-seed 7] [-unavailability 0.1]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"

	"realtracer/internal/media"
	"realtracer/internal/server"
	"realtracer/internal/session"
	"realtracer/internal/vclock"
)

func main() {
	host := flag.String("host", "127.0.0.1", "bind address")
	control := flag.Int("control", 8554, "RTSP control port")
	data := flag.Int("data", 8555, "TCP data port")
	udp := flag.Int("udp", 8556, "UDP data port")
	clips := flag.Int("clips", 8, "number of synthetic clips to serve")
	seed := flag.Int64("seed", 7, "clip-library seed")
	unavailability := flag.Float64("unavailability", 0.1, "clip unavailability probability")
	flag.Parse()

	loop := vclock.NewLoop()
	clock := vclock.NewReal(loop)
	lib := media.GenerateLibrary(*host, *clips, *seed)
	srv := server.New(server.Config{
		Clock:          clock,
		Net:            session.RealNet{Host: *host, Loop: loop},
		Library:        lib,
		Rand:           rand.New(rand.NewSource(*seed)),
		Unavailability: *unavailability,
		SureStream:     true,
		FEC:            true,
		ControlPort:    *control,
		DataTCPPort:    *data,
		DataUDPPort:    *udp,
	})
	loop.Post(func() {
		if err := srv.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "realserver: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("realserver: serving %d clips on %s (control :%d, tcp-data :%d, udp-data :%d)\n",
			len(lib.Clips), *host, *control, *data, *udp)
		for _, c := range lib.Clips {
			fmt.Printf("  %s (%s, %v, max %g Kbps)\n", c.URL, c.Content, c.Duration, c.MaxEncoding().TotalKbps)
		}
	})

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		loop.Post(func() {
			srv.Stop()
			loop.Close()
		})
	}()
	loop.Run()
}
