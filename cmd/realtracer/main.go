// Command realtracer is the live client: it plays clips from a running
// cmd/realserver over real sockets, measuring exactly what the study's
// RealTracer measured — frame rate, bandwidth, jitter, drops — and printing
// a per-clip report. Write the records with -out and feed them to
// cmd/realdata.
//
// Usage:
//
//	realtracer [-server 127.0.0.1:8554] [-udp 127.0.0.1:8556] [-clips 3]
//	           [-proto udp|tcp] [-playfor 20s] [-maxkbps 350] [-out trace.csv]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"realtracer/internal/player"
	"realtracer/internal/session"
	"realtracer/internal/trace"
	"realtracer/internal/transport"
	"realtracer/internal/vclock"
)

func main() {
	serverAddr := flag.String("server", "127.0.0.1:8554", "server control address")
	udpAddr := flag.String("udp", "127.0.0.1:8556", "server UDP data address")
	clips := flag.Int("clips", 3, "how many clips to play (clip000.rm onward)")
	proto := flag.String("proto", "udp", "data transport: udp or tcp")
	playFor := flag.Duration("playfor", 20*time.Second, "per-clip playout length")
	maxKbps := flag.Float64("maxkbps", 350, "RealPlayer maximum bandwidth preference")
	out := flag.String("out", "", "append records to this CSV file")
	flag.Parse()

	protocol := transport.UDP
	if *proto == "tcp" {
		protocol = transport.TCP
	}
	host := hostOf(*serverAddr)

	loop := vclock.NewLoop()
	clock := vclock.NewReal(loop)
	net := session.RealNet{Host: "127.0.0.1", Loop: loop}

	var records []*trace.Record
	var playNext func(i int)
	playNext = func(i int) {
		if i >= *clips {
			if *out != "" {
				f, err := os.Create(*out)
				if err == nil {
					trace.WriteCSV(f, records)
					f.Close()
					fmt.Printf("wrote %d records to %s\n", len(records), *out)
				}
			}
			loop.Close()
			return
		}
		url := fmt.Sprintf("rtsp://%s/clip%03d.rm", host, i)
		fmt.Printf("playing %s over %s...\n", url, protocol)
		p := player.New(player.Config{
			Clock:            clock,
			Net:              net,
			ControlAddr:      *serverAddr,
			ServerUDPAddr:    *udpAddr,
			URL:              url,
			Protocol:         protocol,
			MaxBandwidthKbps: *maxKbps,
			PlayFor:          *playFor,
			Rand:             rand.New(rand.NewSource(time.Now().UnixNano())),
			OnDone: func(st *player.Stats, err error) {
				report(st, err)
				records = append(records, recordOf(url, *serverAddr, st))
				playNext(i + 1)
			},
		})
		p.Start()
	}
	loop.Post(func() { playNext(0) })
	loop.Run()
}

func report(st *player.Stats, err error) {
	if err != nil {
		fmt.Printf("  session ended: %v\n", err)
	}
	fmt.Printf("  encoded %.0f Kbps @ %.1f fps | measured %.0f Kbps @ %.1f fps | jitter %.0f ms\n",
		st.EncodedKbps, st.EncodedFPS, st.MeasuredKbps, st.MeasuredFPS, st.JitterMs)
	fmt.Printf("  frames: played=%d late=%d cpu=%d corrupted=%d | rebuffers=%d (%.1fs) | buffering %.1fs | switches=%d\n",
		st.FramesPlayed, st.FramesDroppedLate, st.FramesDroppedCPU, st.FramesCorrupted,
		st.Rebuffers, st.RebufferTime.Seconds(), st.BufferingTime.Seconds(), st.Switches)
}

func recordOf(url, server string, st *player.Stats) *trace.Record {
	return &trace.Record{
		User: "live", Country: "local", Region: "local", Access: "loopback",
		ClipURL: url, Server: server,
		Unavailable: st.Unavailable, Failed: st.Failed, Protocol: st.Protocol.String(),
		EncodedKbps: st.EncodedKbps, EncodedFPS: st.EncodedFPS,
		MeasuredKbps: st.MeasuredKbps, MeasuredFPS: st.MeasuredFPS, JitterMs: st.JitterMs,
		FramesPlayed: st.FramesPlayed, FramesDroppedLate: st.FramesDroppedLate,
		FramesDroppedCPU: st.FramesDroppedCPU, FramesLost: st.FramesLost,
		FramesCorrupted: st.FramesCorrupted,
		Rebuffers:       st.Rebuffers, RebufferTime: st.RebufferTime, BufferingTime: st.BufferingTime,
		CPUUtilization: st.CPUUtilization, Switches: st.Switches,
	}
}

func hostOf(addr string) string {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			return addr[:i]
		}
	}
	return addr
}
