package main

import (
	"fmt"
	"os"
	"time"

	"realtracer/internal/core"
	"realtracer/internal/study"
)

// Checkpoint/resume flag plumbing. -checkpoint FILE -warmup DUR runs the
// study to the warm-up instant, snapshots the warm world to FILE, then
// continues to completion — so the run both produces its normal output and
// leaves a reusable warm-start artifact. -resume FILE replays a snapshot's
// own options to completion; the record stream is byte-identical to the
// straight-through run that wrote it.

// checkpointFlagError validates the checkpoint/resume flag cluster against
// the rest of the command line, mirroring the dependent-flag rule: a flag
// that positions or overrides another is a hard error without its
// governing flag, never a silent no-op. Returns "" when the combination is
// legal.
func checkpointFlagError(set map[string]bool) string {
	if set["warmup"] && !set["checkpoint"] {
		return "-warmup positions the snapshot instant of a checkpoint run; give -checkpoint FILE"
	}
	if set["checkpoint"] && !set["warmup"] {
		return "-checkpoint needs its snapshot instant; give -warmup DUR (e.g. -warmup 10m of simulated time)"
	}
	if set["checkpoint"] && set["resume"] {
		return "-checkpoint and -resume are incompatible: one run either writes a snapshot or replays one"
	}
	if set["resume"] {
		// The snapshot carries its own Options (version-stamped by hash);
		// a world-shaping flag alongside -resume would silently disagree
		// with them.
		for _, dep := range []string{"seed", "users", "clips", "dynamics", "intensity", "workload", "load", "arrivals", "selection", "shards"} {
			if set[dep] {
				return fmt.Sprintf("-%s would override the snapshot's own options; -resume replays them exactly (fork via the campaign API instead)", dep)
			}
		}
		for _, mode := range []string{"sweep", "stream", "timeline"} {
			if set[mode] {
				return fmt.Sprintf("-resume is incompatible with -%s: a snapshot replays one retained-records study", mode)
			}
		}
	}
	if set["checkpoint"] {
		if set["stream"] {
			return "-checkpoint needs the retained-records collector (the snapshot carries the prefix's records); drop -stream"
		}
		if set["shards"] {
			return "-checkpoint cannot snapshot a sharded world; drop -shards"
		}
		for _, mode := range []string{"sweep", "timeline"} {
			if set[mode] {
				return fmt.Sprintf("-checkpoint is incompatible with -%s: a snapshot captures one full study world", mode)
			}
		}
	}
	return ""
}

// runWithCheckpoint drives one study to the warm-up instant, writes the
// snapshot to file, then continues the same world to completion.
func runWithCheckpoint(opts core.StudyOptions, file string, warmup time.Duration) (*core.StudyResult, error) {
	if warmup <= 0 {
		return nil, fmt.Errorf("-warmup must be positive simulated time, got %v", warmup)
	}
	w, err := study.NewWorld(opts)
	if err != nil {
		return nil, err
	}
	if err := w.RunUntil(warmup); err != nil {
		return nil, err
	}
	f, err := os.Create(file)
	if err != nil {
		return nil, err
	}
	if err := w.Checkpoint(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint at %v: %w", warmup, err)
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	fmt.Printf("checkpoint: warm state at %v written to %s (resume with -resume %s)\n", warmup, file, file)
	return w.Run()
}

// runResumed replays a snapshot file to completion under the options it
// was checkpointed with.
func runResumed(file string) (*core.StudyResult, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	w, err := study.Resume(f, nil)
	if err != nil {
		return nil, fmt.Errorf("resume %s: %w", file, err)
	}
	return w.Run()
}
