package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"realtracer/internal/core"
	"realtracer/internal/trace"
)

// TestCheckpointFlagValidation pins the dependent-flag rule for the
// checkpoint cluster: a flag that positions or overrides another is a hard
// error without its governing flag.
func TestCheckpointFlagValidation(t *testing.T) {
	setOf := func(names ...string) map[string]bool {
		m := map[string]bool{}
		for _, n := range names {
			m[n] = true
		}
		return m
	}
	cases := []struct {
		name string
		set  map[string]bool
		want string // substring of the error, "" = legal
	}{
		{"plain run", setOf("seed", "users"), ""},
		{"checkpoint with warmup", setOf("checkpoint", "warmup"), ""},
		{"checkpoint with warmup and workload", setOf("checkpoint", "warmup", "workload", "arrivals"), ""},
		{"resume alone", setOf("resume"), ""},
		{"resume with output flags", setOf("resume", "figures", "out"), ""},
		{"warmup without checkpoint", setOf("warmup"), "-checkpoint"},
		{"checkpoint without warmup", setOf("checkpoint"), "-warmup"},
		{"checkpoint with resume", setOf("checkpoint", "warmup", "resume"), "incompatible"},
		{"resume with seed", setOf("resume", "seed"), "snapshot's own options"},
		{"resume with workload", setOf("resume", "workload"), "snapshot's own options"},
		{"resume with shards", setOf("resume", "shards"), "snapshot's own options"},
		{"resume with sweep", setOf("resume", "sweep"), "-sweep"},
		{"resume with stream", setOf("resume", "stream"), "-stream"},
		{"checkpoint with stream", setOf("checkpoint", "warmup", "stream"), "-stream"},
		{"checkpoint with shards", setOf("checkpoint", "warmup", "shards", "workload"), "sharded"},
		{"checkpoint with sweep", setOf("checkpoint", "warmup", "sweep"), "-sweep"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			msg := checkpointFlagError(tc.set)
			if tc.want == "" {
				if msg != "" {
					t.Fatalf("legal combination rejected: %s", msg)
				}
				return
			}
			if !strings.Contains(msg, tc.want) {
				t.Fatalf("want error containing %q, got %q", tc.want, msg)
			}
		})
	}
}

// TestCheckpointResumeRoundTrip drives the command-level helpers end to
// end: a checkpointed run finishes with the same records as a
// straight-through run, and resuming the written file reproduces them
// byte-for-byte.
func TestCheckpointResumeRoundTrip(t *testing.T) {
	opts := core.StudyOptions{Seed: 11, MaxUsers: 4, ClipCap: 2}
	straight, err := core.RunStudy(opts)
	if err != nil {
		t.Fatal(err)
	}
	jsonBytes := func(res *core.StudyResult) []byte {
		var buf bytes.Buffer
		if err := trace.WriteJSON(&buf, res.Records); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := jsonBytes(straight)

	file := filepath.Join(t.TempDir(), "warm.snap")
	res, err := runWithCheckpoint(opts, file, straight.SimDuration/2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonBytes(res), want) {
		t.Error("checkpointed run's records differ from the straight-through run")
	}

	resumed, err := runResumed(file)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonBytes(resumed), want) {
		t.Error("resumed run's records differ from the straight-through run")
	}

	if _, err := runResumed(filepath.Join(t.TempDir(), "missing.snap")); err == nil {
		t.Error("resuming a missing file did not error")
	}
	if _, err := runWithCheckpoint(opts, file, 0); err == nil {
		t.Error("non-positive -warmup did not error")
	}
}
