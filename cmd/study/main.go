// Command study runs the full simulated RealTracer measurement campaign and
// regenerates the paper's figures from the resulting trace.
//
// Usage:
//
//	study [-seed N] [-users N] [-clips N] [-stream] [-out trace.csv]
//	      [-json trace.json] [-figure figNN | -figures] [-sites] [-timeline]
//	      [-sweep NAME|list] [-parallel N] [-dynamics NAME|list] [-intensity K]
//	      [-workload NAME|list] [-load K] [-arrivals N] [-selection NAME|list]
//	      [-shards N] [-checkpoint FILE -warmup DUR] [-resume FILE]
//	      [-cpuprofile FILE] [-memprofile FILE]
//
// With no figure flags it prints the campaign's headline numbers. -figure
// regenerates one figure; -figures all of them; -timeline runs the single-
// session Figure-1 experiment; -sites prints the server/user geography
// (the stand-in for the paper's map Figures 3 and 4). -sweep runs a named
// multi-scenario campaign (seed replicas or an ablation) through the
// parallel campaign engine; -parallel bounds its worker pool (0 = all
// cores). `-sweep list` enumerates the registered sweeps.
//
// -dynamics applies a named network-dynamics profile (time-varying weather:
// outages, flash crowds, loss bursts, diurnal cycles, route flaps) to the
// simulated Internet; -intensity scales it. `-dynamics list` enumerates the
// catalog. The fault-injection sweep families (outage, flashcrowd,
// lossburst, diurnal) run the same profiles across intensity levels against
// a dynamics-off control arm via -sweep.
//
// -workload switches the study from the paper's closed-loop panel (every
// user pre-scheduled, the default) to an open-loop session engine: sessions
// arrive under a named arrival process (poisson, diurnal, flashcrowd),
// draw clips by Zipf popularity, and leave — attaching and removing their
// hosts as they churn. -load scales the arrival rate, -arrivals bounds the
// session budget, and -selection picks the mirror-selection policy (pinned,
// rtt, roundrobin, leastloaded; clips are replicated across every server in
// open-loop mode). The selection and churn sweep families run these
// end-to-end via -sweep. -intensity requires -dynamics, and the open-loop
// knobs require -workload: a dependent flag without its governing flag is
// an error, never a silent no-op.
//
// -shards N runs the open-loop world across N cores: hosts are partitioned
// into per-shard event heaps synchronized with conservative lookahead, and
// the records are byte-identical to the -shards 1 run of the same seed —
// parallelism is an execution detail, never a result. Requires -workload;
// composes with every -dynamics profile and every -selection policy
// (leastloaded selections read lookahead-delayed load gossip).
//
// -checkpoint FILE -warmup DUR snapshots the full simulation state at the
// warm-up instant (simulated time), then continues to completion — the run
// produces its normal output and leaves a reusable warm-start artifact.
// -resume FILE replays a snapshot to completion under the options it was
// written with; its records are byte-identical to the straight-through run.
// Snapshots are version-stamped with an options hash, so resuming under a
// mismatched build fails loudly, and world-shaping flags (-seed, -workload,
// ...) alongside -resume are hard errors: the snapshot's options win. A
// checkpoint needs the retained-records collector and a classic engine, so
// -stream and -shards refuse to combine with it. Divergent-scenario forks
// from one snapshot are the campaign API's job (campaign.RunWarmForks).
//
// -cpuprofile/-memprofile write pprof profiles of the run, so hot-path work
// (the zero-allocation discrete-event core) can keep attacking the profile:
//
//	study -stream -users 1000 -clips 3 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
//
// -stream switches to the population-scale pipeline: records flow straight
// into mergeable figure aggregates (and, with -out, a streaming CSV writer)
// as clips complete, so memory is bounded by aggregate size instead of
// record count. -users may exceed the paper's 63 — the population is
// scaled proportionally — e.g.:
//
//	study -stream -users 1000 -clips 5 -figures
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"realtracer/internal/campaign"
	"realtracer/internal/core"
	"realtracer/internal/figures"
	"realtracer/internal/geo"
	"realtracer/internal/stats"
	"realtracer/internal/study"
	"realtracer/internal/trace"
	"realtracer/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 1, "study random seed (one seed = one reproducible campaign)")
	users := flag.Int("users", 0, "number of users (0 = the paper's 63; above 63 scales the population proportionally)")
	clips := flag.Int("clips", 0, "limit clips per user (0 = each user's own playlist progress)")
	stream := flag.Bool("stream", false, "stream records into mergeable aggregates instead of retaining them (population-scale mode)")
	out := flag.String("out", "", "write the trace as CSV to this file")
	jsonOut := flag.String("json", "", "write the trace as JSON to this file")
	figure := flag.String("figure", "", "regenerate one figure (fig01..fig28)")
	figuresAll := flag.Bool("figures", false, "regenerate every figure")
	sites := flag.Bool("sites", false, "print server sites and user population, then exit")
	timeline := flag.Bool("timeline", false, "run the Figure-1 single-session timeline, then exit")
	sweep := flag.String("sweep", "", "run a named campaign sweep over a reduced 14-user/8-clip base study at calibration seed 9 (\"list\" to enumerate; -seed/-users/-clips resize the base)")
	parallel := flag.Int("parallel", 0, "campaign worker pool size (0 = all cores)")
	dynamics := flag.String("dynamics", "", "apply a named network-dynamics profile to the run (\"list\" to enumerate the catalog)")
	intensity := flag.Float64("intensity", 0, "dynamics profile intensity (0 = the calibrated 1x); requires -dynamics")
	workloadName := flag.String("workload", "", "run the study open-loop under a named arrival-process profile (\"list\" to enumerate the catalog; default: the closed-loop panel)")
	load := flag.Float64("load", 0, "open-loop arrival intensity (0 = the calibrated 1x); requires -workload")
	arrivals := flag.Int("arrivals", 0, "open-loop session budget (0 = twice the template pool); requires -workload")
	selection := flag.String("selection", "", "open-loop server-selection policy: pinned, rtt, roundrobin, leastloaded (\"list\" to enumerate); requires -workload")
	shards := flag.Int("shards", 0, "partition the world across N cores under conservative-lookahead synchronization (0 = classic single-threaded engine; output is byte-identical for every N); requires -workload")
	checkpointFile := flag.String("checkpoint", "", "snapshot the warm world to this file at the -warmup instant, then continue to completion; requires -warmup")
	resumeFile := flag.String("resume", "", "replay a -checkpoint snapshot to completion under its own options (incompatible with world-shaping flags)")
	warmup := flag.Duration("warmup", 0, "simulated-time instant at which -checkpoint snapshots the world (e.g. 10m); requires -checkpoint")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write an allocation profile at exit to this file (go tool pprof)")
	flag.Parse()

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	// A dependent flag without its governing flag is a hard error, not a
	// silent no-op: -intensity scales a dynamics profile, and the
	// open-loop knobs parameterize a workload. ("list" requests pass —
	// they only enumerate a catalog.)
	if set["intensity"] && !set["dynamics"] {
		fatalf("-intensity scales a dynamics profile; give -dynamics NAME (or -dynamics list)")
	}
	if *workloadName == "" && *selection != "list" {
		for _, dep := range []string{"selection", "load", "arrivals", "shards"} {
			if set[dep] {
				fatalf("-%s configures the open-loop engine; give -workload NAME (or -workload list)", dep)
			}
		}
	}
	if msg := checkpointFlagError(set); msg != "" {
		fatalf("%s", msg)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("create %s: %v", *cpuprofile, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatalf("create %s: %v", *memprofile, err)
			}
			runtime.GC() // up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatalf("memprofile: %v", err)
			}
			f.Close()
		}()
	}

	if *sites {
		printSites(*seed)
		return
	}
	if *dynamics == "list" {
		fmt.Println("network-dynamics profiles:")
		for _, p := range study.DynamicsProfiles() {
			fmt.Printf("  %-12s %s\n", p.Name, p.Description)
		}
		return
	}
	if *workloadName == "list" {
		fmt.Println("workload profiles:")
		for _, p := range workload.Profiles() {
			fmt.Printf("  %-12s %s\n", p.Name, p.Description)
		}
		return
	}
	if *selection == "list" {
		fmt.Println("server-selection policies (open-loop only):")
		for _, name := range workload.PolicyNames() {
			fmt.Printf("  %s\n", name)
		}
		return
	}
	if *sweep != "" {
		if *out != "" || *jsonOut != "" || *figure != "" || *figuresAll || *timeline {
			fatalf("-sweep is incompatible with -out/-json/-figure/-figures/-timeline")
		}
		if *dynamics != "" {
			fatalf("-sweep is incompatible with -dynamics: the fault-injection sweep families (outage, flashcrowd, lossburst, diurnal) set their own profiles")
		}
		if *workloadName != "" || *selection != "" {
			fatalf("-sweep is incompatible with -workload/-selection: the open-loop sweep families (selection, churn) set their own workloads")
		}
		// Unless -seed was given explicitly, sweeps run at the seed-9
		// calibration base the ablation benches record, not the study
		// default of 1.
		sweepSeed := int64(0)
		if set["seed"] {
			sweepSeed = *seed
		}
		runSweep(*sweep, sweepSeed, *users, *clips, *parallel, *stream)
		return
	}
	if *timeline || *figure == "fig01" {
		fig, st, err := core.Fig01Timeline(*seed)
		if err != nil {
			fatalf("fig01: %v", err)
		}
		fig.Render(os.Stdout)
		for _, pt := range st.Timeline {
			fmt.Printf("t=%5.1fs bandwidth=%7.1fKbps fps=%4.1f\n", pt.T.Seconds(), pt.Kbps, pt.FPS)
		}
		return
	}

	opts := core.StudyOptions{Seed: *seed, MaxUsers: *users, ClipCap: *clips,
		Dynamics: *dynamics, DynamicsIntensity: *intensity,
		Workload: *workloadName, WorkloadIntensity: *load,
		Arrivals: *arrivals, Selection: *selection, Shards: *shards}
	if *stream {
		if *jsonOut != "" {
			fatalf("-json needs the retained-records path; use -out for a streaming CSV")
		}
		runStreaming(opts, *out, *figure, *figuresAll)
		return
	}
	if *users > geo.PopulationSize {
		fmt.Fprintf(os.Stderr, "note: retaining every record of a %d-user study; -stream bounds memory by aggregate size\n", *users)
	}

	var res *core.StudyResult
	var err error
	switch {
	case *resumeFile != "":
		res, err = runResumed(*resumeFile)
	case *checkpointFile != "":
		res, err = runWithCheckpoint(opts, *checkpointFile, *warmup)
	default:
		res, err = core.RunStudy(opts)
	}
	if err != nil {
		fatalf("study: %v", err)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("create %s: %v", *out, err)
		}
		if err := trace.WriteCSV(f, res.Records); err != nil {
			fatalf("write csv: %v", err)
		}
		f.Close()
		fmt.Printf("wrote %d records to %s\n", len(res.Records), *out)
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatalf("create %s: %v", *jsonOut, err)
		}
		if err := trace.WriteJSON(f, res.Records); err != nil {
			fatalf("write json: %v", err)
		}
		f.Close()
		fmt.Printf("wrote %d records to %s\n", len(res.Records), *jsonOut)
	}

	switch {
	case *figure != "":
		fig, err := core.RunFigure(*figure, res.Records)
		if err != nil {
			fatalf("%v", err)
		}
		fig.Render(os.Stdout)
	case *figuresAll:
		core.RenderAll(os.Stdout, res.Records)
	default:
		printSummary(res)
	}
}

// runStreaming executes one study through the streaming pipeline: records
// flow into a figure-aggregate build (and optionally a CSV file) as clips
// complete, and nothing is retained.
func runStreaming(opts core.StudyOptions, out, figure string, figuresAll bool) {
	agg := figures.NewAggregates()
	sink := trace.MultiSink{agg}
	var csvSink *trace.CSVSink
	var csvFile *os.File
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatalf("create %s: %v", out, err)
		}
		csvFile = f
		csvSink = trace.NewCSVSink(f)
		sink = append(sink, csvSink)
	}
	res, err := core.RunStudyStream(opts, sink)
	if err != nil {
		fatalf("study: %v", err)
	}
	if csvSink != nil {
		if err := csvSink.Flush(); err != nil {
			fatalf("write csv: %v", err)
		}
		csvFile.Close()
		fmt.Printf("streamed %d records to %s\n", csvSink.Count(), out)
	}
	switch {
	case figure != "":
		fig, err := core.RunFigureAgg(figure, agg)
		if err != nil {
			fatalf("%v", err)
		}
		fig.Render(os.Stdout)
	case figuresAll:
		core.RenderAllAgg(os.Stdout, agg)
	default:
		printStreamSummary(agg, res)
	}
}

// printStreamSummary prints the headline numbers straight from the
// aggregates — the streamed twin of printSummary.
func printStreamSummary(agg *figures.Aggregates, res *core.StudyResult) {
	fmt.Printf("study complete (streamed): %d users, %d clip attempts over %v of virtual time (%d events)\n",
		len(res.Users), agg.Total(), res.SimDuration.Round(1e9), res.Events)
	printOpenLoopLine(res)
	fmt.Printf("  played=%d unavailable=%d (%.1f%%) rated=%d\n",
		agg.Played(), agg.Unavailable(), 100*float64(agg.Unavailable())/float64(agg.Total()), agg.Rated())
	fmt.Printf("  transport: TCP=%d UDP=%d\n", agg.ProtocolPlayed("TCP"), agg.ProtocolPlayed("UDP"))
	if cdf, err := agg.FrameRate().CDF(); err == nil {
		fmt.Printf("  frame rate: mean=%.1f fps, below 3 fps %.0f%%, 15+ fps %.0f%%\n",
			agg.FrameRate().Mean(), 100*cdf.FractionBelow(3), 100*cdf.FractionAtLeast(15))
	}
	if jcdf, err := agg.Jitter().CDF(); err == nil {
		fmt.Printf("  jitter: <=50ms %.0f%%, >=300ms %.0f%%\n", 100*jcdf.At(50), 100*jcdf.FractionAtLeast(300))
	}
	printWorkloadRows(agg)
	fmt.Println("run with -figures (or -figure figNN) for the full evaluation output")
}

// printOpenLoopLine summarizes the session lifecycle of an open-loop run;
// closed-loop results print nothing.
func printOpenLoopLine(res *core.StudyResult) {
	if res.Sessions == 0 {
		return
	}
	fmt.Printf("  open-loop: %d sessions admitted, %d balked, %d departed mid-stream\n",
		res.Sessions, res.Balked, res.Departed)
}

// runSweep executes one registered campaign sweep across the worker pool
// and prints a per-scenario summary plus the campaign wall-clock. In
// streaming mode each scenario aggregates in place and the partials merge
// deterministically in input order.
func runSweep(name string, seed int64, users, clips, workers int, stream bool) {
	if name == "list" {
		fmt.Println("registered sweeps:")
		for _, sw := range campaign.Sweeps() {
			fmt.Printf("  %-12s %s\n", sw.Name, sw.Description)
		}
		return
	}
	sw, ok := campaign.SweepByName(name)
	if !ok {
		fatalf("unknown sweep %q (try -sweep list)", name)
	}
	base := campaign.ReducedBase(seed)
	if users != 0 {
		base.MaxUsers = users
	}
	if clips != 0 {
		base.ClipCap = clips
	}
	scenarios := sw.Scenarios(base)
	fmt.Printf("sweep %s: base study %d users x %d clips (seed %d); -users/-clips resize it\n",
		sw.Name, base.MaxUsers, base.ClipCap, base.Seed)
	cfg := core.CampaignConfig{Workers: workers, BaseSeed: base.Seed}
	var merged *figures.Aggregates
	var sum *core.CampaignSummary
	if stream {
		merged, sum = core.RunCampaignAggregates(scenarios, cfg)
	} else {
		sum = core.RunCampaign(scenarios, cfg)
	}
	for _, r := range sum.Results {
		if r.Err != nil {
			fmt.Printf("  %-16s FAILED: %v\n", r.Scenario.Name, r.Err)
			continue
		}
		if stream {
			part := r.Sink.(*figures.Aggregates)
			jcdf, _ := part.Jitter().CDF()
			printScenarioLine(r, part.Total(), part.Played(), part.FrameRate().Mean(), jcdf)
		} else {
			played := trace.Played(r.Result.Records)
			fps := trace.Values(played, func(rec *trace.Record) float64 { return rec.MeasuredFPS })
			jit := trace.Values(played, func(rec *trace.Record) float64 { return rec.JitterMs })
			jcdf, _ := stats.NewCDF(jit)
			printScenarioLine(r, len(r.Result.Records), len(played), stats.Mean(fps), jcdf)
		}
	}
	if merged == nil {
		// Retained mode: fold the records into aggregates anyway so the
		// robustness breakdown prints either way.
		merged = figures.Aggregate(sum.Records())
	} else {
		fmt.Printf("  merged: attempts=%d played=%d rated=%d mean %.1f fps across the sweep\n",
			merged.Total(), merged.Played(), merged.Rated(), merged.FrameRate().Mean())
	}
	printRobustness(merged)
	printWorkloadRows(merged)
	fmt.Printf("sweep %s: %d scenarios on %d workers in %v\n",
		sw.Name, len(sum.Results), sum.Workers, sum.Elapsed.Round(1e6))
	if err := sum.Err(); err != nil {
		fatalf("%v", err)
	}
}

// printWorkloadRows prints the per-selection-policy workload breakdown —
// startup delay, stalls, and how evenly plays spread across the mirrors —
// plus the concurrent-session peak. Panel-only aggregates print nothing.
func printWorkloadRows(agg *figures.Aggregates) {
	rows := agg.Workload()
	if len(rows) == 0 {
		return
	}
	fmt.Println("  workload by selection policy (per played clip):")
	for _, r := range rows {
		fmt.Printf("    %-12s played=%-4d failed=%-3d startup mean=%.1fs  rebuffers mean=%.2f  servers=%-2d load-balance CV=%.2f\n",
			r.Policy, r.Played, r.Failed, r.MeanStartupSec, r.MeanRebuffers, r.Servers, r.LoadBalance)
	}
	if peak, at := agg.PeakConcurrency(); peak > 0 {
		fmt.Printf("  concurrency: peak %d clips in flight at minute %d\n", peak, at)
	}
}

// printRobustness prints the per-dynamics-condition robustness breakdown:
// how delivery degraded (or did not) under each network-weather regime. A
// single steady condition prints nothing — there is no contrast to show.
func printRobustness(agg *figures.Aggregates) {
	rows := agg.Robustness()
	if len(rows) < 2 {
		return
	}
	fmt.Println("  robustness by dynamics condition (per played clip):")
	for _, r := range rows {
		fmt.Printf("    %-16s played=%-4d failed=%-3d rebuffers mean=%.2f p90=%.0f  switches mean=%.2f  %.1f fps\n",
			r.Condition, r.Played, r.Failed, r.MeanRebuffers, r.P90Rebuffers, r.MeanSwitches, r.MeanFPS)
	}
}

// printScenarioLine prints one sweep scenario's summary — the same line
// whether the stats came from retained records or streamed aggregates.
func printScenarioLine(r campaign.ScenarioResult, attempts, played int, meanFPS float64, jcdf stats.CDF) {
	fmt.Printf("  %-16s seed=%-20d attempts=%-4d played=%-4d mean %.1f fps  jitter<=50ms %.0f%%  [%v]\n",
		r.Scenario.Name, r.Scenario.Options.Seed, attempts, played,
		meanFPS, 100*jcdf.At(50), r.Elapsed.Round(1e6))
}

func printSummary(res *core.StudyResult) {
	played := trace.Played(res.Records)
	rated := trace.Rated(res.Records)
	var unavailable int
	protos := map[string]int{}
	for _, r := range res.Records {
		if r.Unavailable {
			unavailable++
		}
	}
	var fps, jit []float64
	for _, r := range played {
		protos[r.Protocol]++
		fps = append(fps, r.MeasuredFPS)
		jit = append(jit, r.JitterMs)
	}
	sfps, _ := stats.Summarize(fps)
	cdf, _ := stats.NewCDF(fps)
	jcdf, _ := stats.NewCDF(jit)
	fmt.Printf("study complete: %d users, %d clip attempts over %v of virtual time (%d events)\n",
		len(res.Users), len(res.Records), res.SimDuration.Round(1e9), res.Events)
	printOpenLoopLine(res)
	fmt.Printf("  played=%d unavailable=%d (%.1f%%) rated=%d\n",
		len(played), unavailable, 100*float64(unavailable)/float64(len(res.Records)), len(rated))
	fmt.Printf("  transport: TCP=%d UDP=%d\n", protos["TCP"], protos["UDP"])
	fmt.Printf("  frame rate: mean=%.1f fps, below 3 fps %.0f%%, 15+ fps %.0f%%\n",
		sfps.Mean, 100*cdf.FractionBelow(3), 100*cdf.FractionAtLeast(15))
	fmt.Printf("  jitter: <=50ms %.0f%%, >=300ms %.0f%%\n", 100*jcdf.At(50), 100*jcdf.FractionAtLeast(300))
	fmt.Println("run with -figures (or -figure figNN) for the full evaluation output")
}

func printSites(seed int64) {
	fmt.Println("RealServer sites (Figures 3, 8, 10):")
	for _, s := range geo.Sites() {
		fmt.Printf("  %-14s host=%-9s country=%-9s region=%-10s unavailability=%.0f%% clips=%d\n",
			s.Name, s.Host, s.Country, s.Region, 100*s.Unavailability, s.Clips)
	}
	users := geo.Population(seed + 1)
	byCountry := map[string]int{}
	for _, u := range users {
		byCountry[u.Country]++
	}
	fmt.Printf("User population (Figures 4, 7): %d users\n", len(users))
	for c, n := range byCountry {
		fmt.Printf("  %-12s %d\n", c, n)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
