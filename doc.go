// Package realtracer reproduces "An Empirical Study of RealVideo
// Performance Across the Internet" (Wang, Claypool, Zuo — 2001) as a
// complete synthetic system: a RealServer-style streaming server, a
// RealPlayer/RealTracer-style instrumented client, the RTSP/RDT protocols
// between them, TCP/UDP transports over a deterministic discrete-event
// network simulator calibrated to the 2001 Internet, and the full
// 63-user/11-server measurement campaign whose trace regenerates every
// figure of the paper's evaluation.
//
// Entry points: internal/core (run the study via RunStudy, stream it into
// mergeable figure aggregates via RunStudyAggregates, fan multi-scenario
// sweeps across a worker pool via RunCampaign / RunCampaignAggregates,
// regenerate figures), internal/campaign (the parallel campaign engine:
// named scenarios, deterministic per-scenario seeds, sweep registry,
// per-scenario streaming sinks), cmd/study and cmd/realdata (collection
// and analysis tools — `study -sweep NAME -parallel N` runs a registered
// campaign sweep; `study -stream -users N` runs a population-scale study
// with memory bounded by aggregate size), cmd/realserver and cmd/realtracer
// (live operation over OS sockets). bench_test.go in this directory holds
// one benchmark per paper figure plus the design ablations and the
// population-scale streaming benchmarks.
package realtracer
