// Package realtracer reproduces "An Empirical Study of RealVideo
// Performance Across the Internet" (Wang, Claypool, Zuo — 2001) as a
// complete synthetic system: a RealServer-style streaming server, a
// RealPlayer/RealTracer-style instrumented client, the RTSP/RDT protocols
// between them, TCP/UDP transports over a deterministic discrete-event
// network simulator calibrated to the 2001 Internet, and the full
// 63-user/11-server measurement campaign whose trace regenerates every
// figure of the paper's evaluation.
//
// The network is not static: internal/netsim's dynamics layer scripts
// time-varying weather — link outages and degradation windows, bottleneck
// capacity ramps, diurnal and flash-crowd cross-traffic profiles,
// Gilbert–Elliott loss bursts, mid-session route-delay shifts — as a
// deterministic, seeded schedule over named paths and hosts. internal/study
// names intensity-scaled profiles (outage, flashcrowd, lossburst, diurnal,
// routeflap), the campaign registry turns them into fault-injection sweeps
// with dynamics-off control arms, and figures.Aggregates breaks robustness
// (rebuffers, stream switches, surviving frame rate) down per condition.
// With dynamics off, output is byte-identical to a build without the layer.
//
// The discrete-event core is zero-allocation in steady state: host names
// intern to dense IDs with path state in an ID-indexed grid and each host
// carrying a dense port table (no per-packet map lookups), link and
// bottleneck rates precompute to bits/sec at configuration time, and
// packets and clock events recycle through free-lists (delivery is
// scheduled as the Packet itself implementing simclock.EventHandler — no
// closures on the hot path). The scheduler is a hierarchical timing wheel
// (six levels of 64 slots at a ~131µs tick) with a small 4-ary near heap
// preserving exact (time, sequence) firing order, so arming is O(1) and a
// recurring timer re-armed from inside Fire reuses the just-fired event
// slot; the old 4-ary heap remains compiled-in as a differential oracle
// that CI replays random traces against under -race. One delivered UDP
// datagram costs ~45ns and zero allocations (BenchmarkPacketHopUDP,
// guarded by the alloc-budget test in internal/transport). Everything
// stays bit-for-bit deterministic — RNG draw order, FIFO tie-breaking and
// every floating-point expression on the packet path are part of the
// contract, pinned by the golden figures snapshot — so hot-path changes
// must keep output byte-identical, not merely statistically equivalent.
// Profile with `study -cpuprofile/-memprofile`; the perf trajectory lives
// in the BENCH_pr*.json files.
//
// The session lifecycle is pooled one level above the packet path: each
// open-loop user template owns a session bundle — tracer, player, packet
// arenas, transport stack, plan/playlist scratch, record storage — built on
// the template's first arrival and leased on every arrival after it, with
// Reset methods walking the contract down the stack (tracer, player,
// media.FrameSource, the server's streamSession free-list, netsim's
// recycled host slots). Reset cancels timers (generation-checked handles
// make stale ones inert), clears storage in place, rebuilds the rest by
// struct literal, and reseeds RNGs — a reseeded rand.Rand reproduces a
// fresh one's draw stream, so pooling changes no record. The recycle
// invariant: a recycled session is indistinguishable from a fresh one and
// can never observe its predecessor's FEC window, retransmit ledger or
// decode state. Steady-state churn costs ~410 allocations per session
// (down from ~10,000), pinned by TestSessionChurnAllocBudget alongside the
// transport alloc budget.
//
// The session engine is open-loop as well as closed: the paper's fixed
// 63-user panel is one workload ("panel", the default) in internal/workload's
// catalog. Open-loop workloads (poisson, diurnal, flashcrowd) admit sessions
// over virtual time via an arrival process — Lewis–Shedler thinning over a
// time-varying rate — with Zipf clip popularity, geometric session lengths,
// and mid-stream abandonment; each arrival attaches its host to the network
// and each departure removes it (netsim.RemoveHost), so the population
// churns like a production service's. Clips replicate across every server
// site in open-loop mode and a pluggable selection policy (pinned, rtt,
// roundrobin, leastloaded — the last probing live server load) re-homes each
// request; study.SessionFactory is the seam both modes share, driven once
// per user at build time by the panel and once per arrival on the simclock
// by the workload generator. The panel-mode byte-identical rule: the default
// workload must produce output byte-identical to a build without the
// workload layer (pinned by the golden figures snapshot), and open-loop
// campaign records must be byte-identical across worker counts (per-scenario
// workload seeds derive from scenario names).
//
// One world can also span cores: study.Options.Shards partitions an
// open-loop world across N shards under netsim.Fabric, a conservative
// (Chandy–Misra–Bryant-style) parallel discrete-event engine. Each shard
// owns a private clock, event heap, packet pool and RNG streams; the
// lookahead is the minimum inter-region one-way delay, so each round every
// shard runs events strictly below the global-minimum-plus-lookahead
// horizon in parallel, and cross-shard packets park on per-pair outboxes
// drained in fixed order between windows. Interning tables freeze at
// build, per-path RNG streams are seeded by frozen endpoint IDs, and
// wide-area payloads are snapshotted at the WAN edge, so for a fixed seed
// the record stream is byte-identical for every shard count N >= 1
// (TestShardEquivalence, run under -race in CI). Shards=0 remains the
// classic zero-copy single-threaded engine and the default; the sharded
// engine trades single-core overhead (copy-at-send, window barriers) for
// multi-core wall-clock scaling (BENCH_pr7.json,
// TestShardedWorkloadSpeedup).
//
// A running world is also snapshottable: World.Checkpoint serializes the
// complete simulation state — simclock time and pending timers (through a
// typed-event registry whose codecs persist each registered event kind;
// closures on the heap are drained first or rejected loudly), in-flight
// packets and per-path weather, TCP connections mid-transfer with
// segment-object sharing preserved for live senders, server sessions and
// free-lists, arrival-cell cursors, and every RNG stream's draw count —
// version-stamped with a hash of the world's Options so a mismatched
// resume fails loudly. The contract is byte-identity: study.Resume on a
// snapshot cut at any instant completes with records byte-identical to
// the straight-through run (TestCheckpointResumeByteIdentical, under
// -race in CI). A named study.Fork instead re-derives every RNG stream
// from the fork name and may override divergent-phase conditions
// (dynamics, controller, selection, intensities); campaign.RunWarmForks
// builds the shared warm prefix once and fans N forks across the worker
// pool from one read-only snapshot — an 8-fork sweep warm-started at 60%
// of the horizon runs >=2x faster than cold (BenchmarkCampaignWarmFork,
// BENCH_pr10.json, fenced by TestWarmForkSpeedup).
//
// Entry points: internal/core (run the study via RunStudy, stream it into
// mergeable figure aggregates via RunStudyAggregates, fan multi-scenario
// sweeps across a worker pool via RunCampaign / RunCampaignAggregates,
// regenerate figures), internal/campaign (the parallel campaign engine:
// named scenarios, deterministic per-scenario seeds, sweep registry,
// per-scenario streaming sinks), cmd/study and cmd/realdata (collection
// and analysis tools — `study -sweep NAME -parallel N` runs a registered
// campaign sweep; `study -dynamics NAME` applies a weather profile;
// `study -stream -users N` runs a population-scale study with memory
// bounded by aggregate size), cmd/realserver and cmd/realtracer (live
// operation over OS sockets). bench_test.go in this directory holds one
// benchmark per paper figure plus the design ablations, the
// population-scale streaming benchmarks, and the dynamics-campaign
// throughput benchmarks.
package realtracer
