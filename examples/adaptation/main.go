// Adaptation: SureStream in action (paper Section II.C). A broadband client
// streams a multi-rate clip; halfway through, heavy cross traffic hits the
// path, and the server switches to a lower-bandwidth stream, then back when
// the congestion clears. The per-second timeline shows the down- and
// up-switches.
//
//	go run ./examples/adaptation
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"realtracer/internal/media"
	"realtracer/internal/netsim"
	"realtracer/internal/player"
	"realtracer/internal/server"
	"realtracer/internal/session"
	"realtracer/internal/simclock"
	"realtracer/internal/transport"
	"realtracer/internal/vclock"
)

func main() {
	clock := simclock.New()
	route := netsim.Route{
		OneWayDelay:    40 * time.Millisecond,
		Jitter:         6 * time.Millisecond,
		LossRate:       0.002,
		CapacityKbps:   600,
		CongestionMean: 0.1,
		CongestionVar:  0.05,
	}
	n := netsim.New(clock, netsim.StaticRoute(route), 21)
	n.AddHost(netsim.HostConfig{Name: "server", Access: netsim.DefaultAccessProfile(netsim.AccessServer)})
	n.AddHost(netsim.HostConfig{Name: "client", Access: netsim.DefaultAccessProfile(netsim.AccessDSLCable)})

	clip := media.GenerateClip("rtsp://server/clip.rm", "adaptation", media.ContentMovie,
		5*time.Minute, 20, 350, 9)
	srv := server.New(server.Config{
		Clock:      vclock.Sim{C: clock},
		Net:        session.SimNet{Stack: transport.NewStack(n, "server")},
		Library:    media.NewLibrary([]*media.Clip{clip}),
		Rand:       rand.New(rand.NewSource(1)),
		SureStream: true,
		FEC:        true,
	})
	if err := srv.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "adaptation: %v\n", err)
		os.Exit(1)
	}

	// A congestion epoch from t=40s to t=80s squeezes the path hard.
	clock.At(40*time.Second, func() {
		n.SetCongestionMean("server", "client", 0.85, 0.05)
		fmt.Println("t=40s: heavy cross traffic begins")
	})
	clock.At(80*time.Second, func() {
		n.SetCongestionMean("server", "client", 0.1, 0.05)
		fmt.Println("t=80s: cross traffic clears")
	})

	var got *player.Stats
	p := player.New(player.Config{
		Clock:            vclock.Sim{C: clock},
		Net:              session.SimNet{Stack: transport.NewStack(n, "client")},
		ControlAddr:      "server:554",
		URL:              clip.URL,
		Protocol:         transport.UDP,
		MaxBandwidthKbps: 350,
		PlayFor:          2 * time.Minute,
		Rand:             rand.New(rand.NewSource(2)),
		OnDone:           func(st *player.Stats, err error) { got = st },
	})
	p.Start()
	clock.RunUntil(5 * time.Minute)
	if got == nil {
		fmt.Fprintln(os.Stderr, "adaptation: session never finished")
		os.Exit(1)
	}

	fmt.Println("\nper-5s bandwidth and frame rate:")
	for i, pt := range got.Timeline {
		if i%5 != 0 {
			continue
		}
		fmt.Printf("  t=%4.0fs  %7.1f Kbps  %4.1f fps\n", pt.T.Seconds(), pt.Kbps, pt.FPS)
	}
	fmt.Printf("\nSureStream switches observed by the player: %d\n", got.Switches)
	fmt.Printf("frames played=%d, rebuffers=%d, final measured %.0f Kbps @ %.1f fps\n",
		got.FramesPlayed, got.Rebuffers, got.MeasuredKbps, got.MeasuredFPS)
	if got.Switches >= 2 {
		fmt.Println("the stream stepped down under congestion and recovered after — SureStream working as described")
	}
}
