// Congestion: the paper's TCP-friendliness question (Section V, Figures
// 16-18). Streams the same clip over TCP, over UDP with TFRC-style rate
// control, and over unresponsive UDP, across an increasingly congested
// path, then compares the bandwidth each attains. Responsive UDP should
// track TCP; unresponsive UDP keeps blasting — the congestion-collapse
// concern of [FF98].
//
//	go run ./examples/congestion
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"realtracer/internal/media"
	"realtracer/internal/netsim"
	"realtracer/internal/player"
	"realtracer/internal/ratecontrol"
	"realtracer/internal/server"
	"realtracer/internal/session"
	"realtracer/internal/simclock"
	"realtracer/internal/transport"
	"realtracer/internal/vclock"
)

func main() {
	fmt.Println("bandwidth attained on a shared 500 Kbps path under rising cross traffic")
	fmt.Printf("%-12s %-14s %10s %10s %10s %8s\n", "congestion", "flavor", "kbps", "fps", "jitter", "loss")
	for _, congestion := range []float64{0.1, 0.3, 0.5, 0.7} {
		for _, flavor := range []string{"tcp", "udp-tfrc", "udp-unresponsive"} {
			st := run(flavor, congestion)
			fmt.Printf("%-12.1f %-14s %10.1f %10.2f %9.0fms %8d\n",
				congestion, flavor, st.MeasuredKbps, st.MeasuredFPS, st.JitterMs, st.FramesLost)
		}
	}
	fmt.Println("\nexpect: udp-tfrc tracks tcp as congestion rises; unresponsive UDP")
	fmt.Println("keeps its send rate and pays in loss — the non-TCP-friendly shape.")
}

func run(flavor string, congestion float64) *player.Stats {
	clock := simclock.New()
	route := netsim.Route{
		OneWayDelay:    50 * time.Millisecond,
		Jitter:         8 * time.Millisecond,
		LossRate:       0.003,
		CapacityKbps:   500,
		CongestionMean: congestion,
		CongestionVar:  0.08,
	}
	n := netsim.New(clock, netsim.StaticRoute(route), 11)
	n.AddHost(netsim.HostConfig{Name: "server", Access: netsim.DefaultAccessProfile(netsim.AccessServer)})
	n.AddHost(netsim.HostConfig{Name: "client", Access: netsim.DefaultAccessProfile(netsim.AccessT1LAN)})

	clip := media.GenerateClip("rtsp://server/clip.rm", "congestion", media.ContentSports,
		5*time.Minute, 20, 350, 3)
	cfg := server.Config{
		Clock:      vclock.Sim{C: clock},
		Net:        session.SimNet{Stack: transport.NewStack(n, "server")},
		Library:    media.NewLibrary([]*media.Clip{clip}),
		Rand:       rand.New(rand.NewSource(1)),
		SureStream: true,
		FEC:        true,
	}
	proto := transport.UDP
	switch flavor {
	case "tcp":
		proto = transport.TCP
	case "udp-tfrc":
		// default controller
	case "udp-unresponsive":
		cfg.NewController = func(start float64) ratecontrol.Controller {
			return &ratecontrol.Unresponsive{Kbps: start}
		}
	}
	srv := server.New(cfg)
	if err := srv.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "congestion: %v\n", err)
		os.Exit(1)
	}
	var got *player.Stats
	p := player.New(player.Config{
		Clock:            vclock.Sim{C: clock},
		Net:              session.SimNet{Stack: transport.NewStack(n, "client")},
		ControlAddr:      "server:554",
		URL:              clip.URL,
		Protocol:         proto,
		MaxBandwidthKbps: 350,
		PlayFor:          time.Minute,
		Rand:             rand.New(rand.NewSource(2)),
		OnDone:           func(st *player.Stats, err error) { got = st },
	})
	p.Start()
	clock.RunUntil(4 * time.Minute)
	if got == nil {
		fmt.Fprintln(os.Stderr, "congestion: session never finished")
		os.Exit(1)
	}
	return got
}
