// Livesockets: a complete end-to-end session over real OS sockets on
// loopback — the same server and player engines that drive the simulation,
// exchanging real RTSP text messages and binary RDT packets through the
// kernel's TCP and UDP stacks.
//
//	go run ./examples/livesockets
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"realtracer/internal/media"
	"realtracer/internal/player"
	"realtracer/internal/server"
	"realtracer/internal/session"
	"realtracer/internal/transport"
	"realtracer/internal/vclock"
)

func main() {
	const (
		host        = "127.0.0.1"
		controlPort = 18554
		dataPort    = 18555
		udpPort     = 18556
	)
	loop := vclock.NewLoop()
	clock := vclock.NewReal(loop)
	net := session.RealNet{Host: host, Loop: loop}

	lib := media.GenerateLibrary(host, 2, 5)
	srv := server.New(server.Config{
		Clock:       clock,
		Net:         net,
		Library:     lib,
		Rand:        rand.New(rand.NewSource(1)),
		SureStream:  true,
		FEC:         true,
		ControlPort: controlPort,
		DataTCPPort: dataPort,
		DataUDPPort: udpPort,
	})

	done := 0
	var play func(i int, proto transport.Protocol)
	play = func(i int, proto transport.Protocol) {
		url := lib.Clips[i].URL
		fmt.Printf("streaming %s over real %s sockets...\n", url, proto)
		p := player.New(player.Config{
			Clock:            clock,
			Net:              net,
			ControlAddr:      fmt.Sprintf("%s:%d", host, controlPort),
			ServerUDPAddr:    fmt.Sprintf("%s:%d", host, udpPort),
			URL:              url,
			Protocol:         proto,
			MaxBandwidthKbps: 350,
			PlayFor:          8 * time.Second,
			Preroll:          2 * time.Second,
			Rand:             rand.New(rand.NewSource(2)),
			OnDone: func(st *player.Stats, err error) {
				if err != nil {
					fmt.Printf("  error: %v\n", err)
				}
				fmt.Printf("  got %d frames at %.1f fps, %.0f Kbps, jitter %.0f ms (encoded %.0f Kbps @ %.0f fps)\n",
					st.FramesPlayed, st.MeasuredFPS, st.MeasuredKbps, st.JitterMs, st.EncodedKbps, st.EncodedFPS)
				done++
				switch done {
				case 1:
					play(1, transport.TCP)
				case 2:
					srv.Stop()
					loop.Close()
				}
			},
		})
		p.Start()
	}

	loop.Post(func() {
		if err := srv.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "livesockets: %v\n", err)
			os.Exit(1)
		}
		play(0, transport.UDP)
	})
	loop.Run()
	fmt.Println("both live sessions completed")
}
