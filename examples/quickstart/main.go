// Quickstart: stream one clip from an in-process server to an in-process
// player over the network simulator, and print the Figure-1 style timeline
// (buffering, then steady playout).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"realtracer/internal/core"
)

func main() {
	fig, st, err := core.Fig01Timeline(42)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
	fig.Render(os.Stdout)

	fmt.Println("per-second timeline (bandwidth Kbps | video fps):")
	for _, pt := range st.Timeline {
		bar := ""
		for i := 0.0; i < pt.FPS; i++ {
			bar += "*"
		}
		fmt.Printf("  t=%4.0fs  %7.1f Kbps  %4.1f fps %s\n", pt.T.Seconds(), pt.Kbps, pt.FPS, bar)
	}
	fmt.Printf("\nsummary: buffered %.1fs, then played %d frames at %.1f fps with %.0f ms jitter\n",
		st.BufferingTime.Seconds(), st.FramesPlayed, st.MeasuredFPS, st.JitterMs)
}
