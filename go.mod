module realtracer

go 1.24
