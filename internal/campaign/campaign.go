// Package campaign is the parallel campaign engine: it takes a set of named
// scenarios (each a study.Options plus a label — seed replicas, ablation
// points, congestion scales), executes them across a bounded worker pool,
// and merges the per-scenario results with labels and input order
// preserved.
//
// Parallelism is embarrassingly safe because every scenario builds its own
// study.World — a private discrete-event clock and network — so no
// simulator state is shared between workers. Per-scenario seeds are derived
// deterministically from the scenario name, which makes a campaign's
// records identical whether it runs on one worker or on every core.
package campaign

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"realtracer/internal/study"
	"realtracer/internal/trace"
)

// Scenario is one named study configuration inside a campaign.
type Scenario struct {
	// Name labels the scenario in results and output ("seed-03",
	// "preroll-8s", "fec-off"). Names should be unique within a campaign;
	// they also drive seed derivation for scenarios with Seed == 0.
	Name string
	// Options configures the scenario's study. A zero Seed is replaced by a
	// seed derived deterministically from Config.BaseSeed and Name.
	Options study.Options
}

// Config tunes a campaign run.
type Config struct {
	// Workers bounds the worker pool (0 = runtime.NumCPU()).
	Workers int
	// BaseSeed feeds derived seeds for scenarios whose Options.Seed is 0.
	// Two campaigns with the same scenarios and BaseSeed produce identical
	// records regardless of worker count.
	BaseSeed int64
	// NewSink, when set, switches the campaign to streaming mode: each
	// scenario runs with its own freshly-built sink and retains no records
	// (ScenarioResult.Result.Records is nil; the sink is returned in
	// ScenarioResult.Sink). Per-scenario sinks make the fan-out race-free
	// without locks, and merging the partials in input order afterwards is
	// deterministic no matter how many workers ran — see
	// core.RunCampaignAggregates.
	NewSink func() trace.Sink
}

// ScenarioResult is one scenario's completed study.
type ScenarioResult struct {
	// Scenario echoes the input spec with its derived seed filled in.
	Scenario Scenario
	// Result holds the study's records; nil when Err is set.
	Result *study.Result
	// Err is the scenario's failure, if any. One failed scenario does not
	// abort the others.
	Err error
	// Sink is the scenario's record sink in streaming mode (Config.NewSink
	// set), nil otherwise.
	Sink trace.Sink
	// Elapsed is the scenario's wall-clock run time.
	Elapsed time.Duration
}

// Summary is a completed campaign: one ScenarioResult per input scenario,
// in input order.
type Summary struct {
	Results []ScenarioResult
	// Workers is the pool size the campaign actually ran with.
	Workers int
	// Elapsed is the whole campaign's wall-clock time.
	Elapsed time.Duration
}

// Records flattens the per-scenario trace records in scenario order.
// Failed scenarios contribute nothing.
func (s *Summary) Records() []*trace.Record {
	var out []*trace.Record
	for _, r := range s.Results {
		if r.Result != nil {
			out = append(out, r.Result.Records...)
		}
	}
	return out
}

// Err returns the first scenario error in input order, or nil.
func (s *Summary) Err() error {
	for _, r := range s.Results {
		if r.Err != nil {
			return fmt.Errorf("campaign: scenario %s: %w", r.Scenario.Name, r.Err)
		}
	}
	return nil
}

// DeriveSeed maps (base, name) to a stable non-zero seed. The derivation is
// pure, so scheduling order cannot perturb it.
func DeriveSeed(base int64, name string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", base, name)
	seed := int64(h.Sum64() & 0x7fffffffffffffff)
	if seed == 0 {
		seed = 1
	}
	return seed
}

// Run executes the scenarios across cfg.Workers goroutines and returns the
// merged summary. Results line up with the input slice index-for-index no
// matter which worker finished first.
func Run(scenarios []Scenario, cfg Config) *Summary {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	if workers < 1 {
		workers = 1
	}

	start := time.Now()
	sum := &Summary{Results: make([]ScenarioResult, len(scenarios)), Workers: workers}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				sum.Results[i] = runScenario(scenarios[i], cfg)
			}
		}()
	}
	for i := range scenarios {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	sum.Elapsed = time.Since(start)
	return sum
}

// runScenario executes one scenario in its own private world. In streaming
// mode the scenario gets its own sink, so no two workers ever share
// mutable aggregation state.
func runScenario(sc Scenario, cfg Config) ScenarioResult {
	if sc.Options.Seed == 0 {
		sc.Options.Seed = DeriveSeed(cfg.BaseSeed, sc.Name)
	}
	if sc.Options.Dynamics != "" && sc.Options.DynamicsSeed == 0 {
		// The dynamics layer draws from its own seed; deriving it from the
		// scenario name (not from whichever worker ran it) keeps campaign
		// records byte-identical across worker counts, and decouples the
		// weather from the base seed so seed sweeps share one weather track.
		sc.Options.DynamicsSeed = DeriveSeed(cfg.BaseSeed, sc.Name+"|dynamics")
	}
	if sc.Options.OpenLoop() && sc.Options.WorkloadSeed == 0 {
		// Same contract for the open-loop workload generator: arrivals,
		// Zipf picks and abandonment draws come from a per-scenario seed,
		// never from scheduling order, so open-loop sweeps are
		// byte-identical at any worker count.
		sc.Options.WorkloadSeed = DeriveSeed(cfg.BaseSeed, sc.Name+"|workload")
	}
	start := time.Now()
	var res *study.Result
	var err error
	var sink trace.Sink
	if cfg.NewSink != nil {
		sink = cfg.NewSink()
		res, err = study.RunStream(sc.Options, sink)
	} else {
		res, err = study.Run(sc.Options)
	}
	return ScenarioResult{
		Scenario: sc,
		Result:   res,
		Err:      err,
		Sink:     sink,
		Elapsed:  time.Since(start),
	}
}
