package campaign

import (
	"bytes"
	"runtime"
	"testing"

	"realtracer/internal/figures"
	"realtracer/internal/study"
	"realtracer/internal/trace"
)

// quickBase is a small study (4 users, 3 clips) so tests stay fast.
func quickBase(seed int64) study.Options {
	return study.Options{Seed: seed, MaxUsers: 4, ClipCap: 3}
}

// mixedScenarios is a representative campaign: seed replicas plus ablation
// points, including one scenario with Seed == 0 to exercise derivation.
func mixedScenarios() []Scenario {
	scs := SeedReplicas(quickBase(0), 21, 3)
	scs = append(scs, FECSweep(quickBase(7))...)
	derived := quickBase(0) // Seed 0: derived from BaseSeed + name
	scs = append(scs, Scenario{Name: "derived-seed", Options: derived})
	return scs
}

// csvBytes serializes a scenario's records so runs can be compared
// byte-for-byte.
func csvBytes(t *testing.T, res *study.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, res.Records); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCampaignDeterministicAcrossWorkers is the core guarantee: the same
// scenario set run serially and run across every core must produce
// byte-identical per-scenario records — the per-seed reproducibility
// contract survives the worker pool.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	scs := mixedScenarios()
	cfg := Config{BaseSeed: 5}

	serialCfg := cfg
	serialCfg.Workers = 1
	serial := Run(scs, serialCfg)

	parallelCfg := cfg
	// At least 4 workers even on small machines: concurrent goroutines
	// interleave either way, which is exactly what must not perturb records.
	parallelCfg.Workers = runtime.NumCPU()
	if parallelCfg.Workers < 4 {
		parallelCfg.Workers = 4
	}
	parallel := Run(scs, parallelCfg)

	if err := serial.Err(); err != nil {
		t.Fatal(err)
	}
	if err := parallel.Err(); err != nil {
		t.Fatal(err)
	}
	if len(serial.Results) != len(scs) || len(parallel.Results) != len(scs) {
		t.Fatalf("result counts %d/%d, want %d", len(serial.Results), len(parallel.Results), len(scs))
	}
	for i := range scs {
		s, p := serial.Results[i], parallel.Results[i]
		if s.Scenario.Name != scs[i].Name || p.Scenario.Name != scs[i].Name {
			t.Fatalf("result %d out of order: serial %q parallel %q want %q",
				i, s.Scenario.Name, p.Scenario.Name, scs[i].Name)
		}
		if s.Scenario.Options.Seed != p.Scenario.Options.Seed {
			t.Fatalf("scenario %s: derived seeds differ: %d vs %d",
				scs[i].Name, s.Scenario.Options.Seed, p.Scenario.Options.Seed)
		}
		if !bytes.Equal(csvBytes(t, s.Result), csvBytes(t, p.Result)) {
			t.Fatalf("scenario %s: records differ between workers=1 and workers=%d",
				scs[i].Name, parallelCfg.Workers)
		}
		if s.Result.Events != p.Result.Events {
			t.Fatalf("scenario %s: event counts differ: %d vs %d",
				scs[i].Name, s.Result.Events, p.Result.Events)
		}
	}
}

// renderMerged merges a streamed campaign's per-scenario aggregate partials
// in input order and renders every figure from the merged build.
func renderMerged(t *testing.T, sum *Summary) []byte {
	t.Helper()
	merged := figures.NewAggregates()
	for _, r := range sum.Results {
		part, ok := r.Sink.(*figures.Aggregates)
		if !ok {
			t.Fatalf("scenario %s carries no aggregate sink", r.Scenario.Name)
		}
		if r.Result.Records != nil {
			t.Fatalf("scenario %s retained records in streaming mode", r.Scenario.Name)
		}
		merged.Merge(part)
	}
	var buf bytes.Buffer
	for _, g := range figures.All() {
		g.Agg(merged).Render(&buf)
	}
	return buf.Bytes()
}

// TestCampaignStreamedAggregatesDeterministic extends the determinism
// guarantee to the streaming pipeline: per-scenario partial aggregates,
// merged in input order, must be identical whether the campaign ran on one
// worker or on every core — and identical to aggregating the batch-mode
// records.
func TestCampaignStreamedAggregatesDeterministic(t *testing.T) {
	scs := mixedScenarios()
	newSink := func() trace.Sink { return figures.NewAggregates() }

	serialCfg := Config{BaseSeed: 5, Workers: 1, NewSink: newSink}
	serial := Run(scs, serialCfg)
	if err := serial.Err(); err != nil {
		t.Fatal(err)
	}

	parallelCfg := Config{BaseSeed: 5, Workers: runtime.NumCPU(), NewSink: newSink}
	if parallelCfg.Workers < 4 {
		parallelCfg.Workers = 4
	}
	parallel := Run(scs, parallelCfg)
	if err := parallel.Err(); err != nil {
		t.Fatal(err)
	}

	serialOut := renderMerged(t, serial)
	if !bytes.Equal(serialOut, renderMerged(t, parallel)) {
		t.Fatal("streamed aggregates differ between workers=1 and the full pool")
	}

	// Batch mode over the same scenarios must aggregate to the same figures.
	batch := Run(scs, Config{BaseSeed: 5, Workers: 1})
	if err := batch.Err(); err != nil {
		t.Fatal(err)
	}
	merged := figures.NewAggregates()
	for _, r := range batch.Results {
		for _, rec := range r.Result.Records {
			merged.Observe(rec)
		}
	}
	var buf bytes.Buffer
	for _, g := range figures.All() {
		g.Agg(merged).Render(&buf)
	}
	if !bytes.Equal(serialOut, buf.Bytes()) {
		t.Fatal("streamed aggregates differ from batch-mode aggregation")
	}
}

// TestCampaignParallelSpeedup checks the engine's reason to exist: with
// more than one core, a multi-scenario campaign on a full pool must beat
// the serial baseline. Skipped under -short and on single-core machines.
func TestCampaignParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	// Two shared vCPUs on a loaded CI runner can't reliably hit the 1.2x
	// bar; only assert the speedup where parallelism has real headroom.
	if runtime.NumCPU() < 4 {
		t.Skip("needs >= 4 cores for a robust wall-clock assertion")
	}
	scs := SeedReplicas(study.Options{MaxUsers: 8, ClipCap: 5}, 31, 8)
	serial := Run(scs, Config{Workers: 1})
	parallel := Run(scs, Config{Workers: runtime.NumCPU()})
	if err := serial.Err(); err != nil {
		t.Fatal(err)
	}
	if err := parallel.Err(); err != nil {
		t.Fatal(err)
	}
	t.Logf("serial %v, parallel %v on %d cores", serial.Elapsed, parallel.Elapsed, runtime.NumCPU())
	// Demand only a conservative win (>=1.2x) so the test stays robust on
	// loaded CI machines; real speedups track core count.
	if parallel.Elapsed > serial.Elapsed*5/6 {
		t.Errorf("parallel campaign (%v) not measurably faster than serial (%v)",
			parallel.Elapsed, serial.Elapsed)
	}
}

func TestDeriveSeed(t *testing.T) {
	a := DeriveSeed(1, "fec-on")
	if a == 0 {
		t.Fatal("derived seed is zero")
	}
	if a != DeriveSeed(1, "fec-on") {
		t.Fatal("derivation not stable")
	}
	if a == DeriveSeed(1, "fec-off") {
		t.Fatal("different names derived the same seed")
	}
	if a == DeriveSeed(2, "fec-on") {
		t.Fatal("different base seeds derived the same seed")
	}
}

func TestDerivedSeedAppliedOnce(t *testing.T) {
	scs := []Scenario{{Name: "only", Options: quickBase(0)}}
	sum := Run(scs, Config{Workers: 1, BaseSeed: 9})
	if err := sum.Err(); err != nil {
		t.Fatal(err)
	}
	want := DeriveSeed(9, "only")
	if got := sum.Results[0].Scenario.Options.Seed; got != want {
		t.Fatalf("derived seed %d, want %d", got, want)
	}
	// Explicit seeds pass through untouched.
	sum = Run([]Scenario{{Name: "explicit", Options: quickBase(42)}}, Config{Workers: 1, BaseSeed: 9})
	if got := sum.Results[0].Scenario.Options.Seed; got != 42 {
		t.Fatalf("explicit seed rewritten to %d", got)
	}
}

func TestSweepRegistry(t *testing.T) {
	all := Sweeps()
	if len(all) < 6 {
		t.Fatalf("only %d sweeps registered", len(all))
	}
	for _, sw := range all {
		scs := sw.Scenarios(ReducedBase(9))
		if len(scs) < 2 {
			t.Errorf("sweep %s builds %d scenarios, want >= 2", sw.Name, len(scs))
		}
		seen := map[string]bool{}
		for _, sc := range scs {
			if sc.Name == "" {
				t.Errorf("sweep %s has an unnamed scenario", sw.Name)
			}
			if seen[sc.Name] {
				t.Errorf("sweep %s repeats scenario name %s", sw.Name, sc.Name)
			}
			seen[sc.Name] = true
		}
		if _, ok := SweepByName(sw.Name); !ok {
			t.Errorf("sweep %s not resolvable by name", sw.Name)
		}
	}
	if _, ok := SweepByName("no-such-sweep"); ok {
		t.Error("unknown sweep resolved")
	}
}

func TestSummaryHelpers(t *testing.T) {
	scs := SeedReplicas(quickBase(0), 51, 2)
	sum := Run(scs, Config{Workers: 2})
	if err := sum.Err(); err != nil {
		t.Fatal(err)
	}
	var want int
	for _, r := range sum.Results {
		want += len(r.Result.Records)
	}
	if got := len(sum.Records()); got != want || got == 0 {
		t.Fatalf("Records() flattened %d records, want %d (nonzero)", got, want)
	}
	if sum.Workers != 2 {
		t.Fatalf("Workers = %d, want 2", sum.Workers)
	}
	if sum.Elapsed <= 0 {
		t.Fatal("campaign elapsed time not recorded")
	}
	for _, r := range sum.Results {
		if r.Elapsed <= 0 {
			t.Fatalf("scenario %s elapsed time not recorded", r.Scenario.Name)
		}
	}
}
