package campaign

import (
	"bytes"
	"runtime"
	"testing"

	"realtracer/internal/study"
)

// dynamicsFamilies are the fault-injection sweep registry entries added
// with the network-dynamics layer.
var dynamicsFamilies = []string{"outage", "flashcrowd", "lossburst", "diurnal"}

// TestDynamicsSweepsRegistered pins the registry surface: every family
// resolves by name and includes a dynamics-off control arm.
func TestDynamicsSweepsRegistered(t *testing.T) {
	for _, name := range dynamicsFamilies {
		sw, ok := SweepByName(name)
		if !ok {
			t.Fatalf("sweep %q not registered", name)
		}
		scs := sw.Scenarios(ReducedBase(0))
		if len(scs) < 2 {
			t.Fatalf("sweep %q has %d scenarios; want control + levels", name, len(scs))
		}
		if scs[0].Options.Dynamics != "" {
			t.Fatalf("sweep %q first scenario %q is not the dynamics-off control", name, scs[0].Name)
		}
		for _, sc := range scs[1:] {
			if sc.Options.Dynamics != name {
				t.Fatalf("sweep %q scenario %q uses profile %q", name, sc.Name, sc.Options.Dynamics)
			}
			if _, ok := study.DynamicsProfileByName(sc.Options.Dynamics); !ok {
				t.Fatalf("sweep %q references unknown dynamics profile %q", name, sc.Options.Dynamics)
			}
		}
	}
}

// TestDynamicsSweepsDeterministicAcrossWorkers extends the campaign
// determinism guarantee to every fault-injection family: per-scenario
// records — including the Gilbert–Elliott draws inside the dynamics layer
// — must be byte-identical at workers=1 and at a full pool, because the
// dynamics seed derives from the scenario name, never from the worker.
func TestDynamicsSweepsDeterministicAcrossWorkers(t *testing.T) {
	base := study.Options{MaxUsers: 3, ClipCap: 2}
	var scs []Scenario
	for _, name := range dynamicsFamilies {
		sw, _ := SweepByName(name)
		scs = append(scs, sw.Scenarios(base)...)
	}

	serialCfg := Config{BaseSeed: 9, Workers: 1}
	parallelCfg := Config{BaseSeed: 9, Workers: runtime.NumCPU()}
	if parallelCfg.Workers < 4 {
		parallelCfg.Workers = 4
	}
	serial := Run(scs, serialCfg)
	parallel := Run(scs, parallelCfg)
	if err := serial.Err(); err != nil {
		t.Fatal(err)
	}
	if err := parallel.Err(); err != nil {
		t.Fatal(err)
	}

	sawDynamicsRecord := false
	for i := range scs {
		s, p := serial.Results[i], parallel.Results[i]
		if s.Scenario.Options.DynamicsSeed != p.Scenario.Options.DynamicsSeed {
			t.Fatalf("scenario %s: dynamics seeds differ: %d vs %d",
				scs[i].Name, s.Scenario.Options.DynamicsSeed, p.Scenario.Options.DynamicsSeed)
		}
		if scs[i].Options.Dynamics != "" && s.Scenario.Options.DynamicsSeed == 0 {
			t.Fatalf("scenario %s: dynamics seed never derived", scs[i].Name)
		}
		if !bytes.Equal(csvBytes(t, s.Result), csvBytes(t, p.Result)) {
			t.Fatalf("scenario %s: records differ between workers=1 and workers=%d",
				scs[i].Name, parallelCfg.Workers)
		}
		for _, rec := range s.Result.Records {
			if rec.Dynamics != "" {
				sawDynamicsRecord = true
			}
		}
	}
	if !sawDynamicsRecord {
		t.Fatal("no record carried a dynamics condition label")
	}
}
