package campaign

import (
	"fmt"
	"sort"
	"time"

	"realtracer/internal/study"
	"realtracer/internal/workload"
)

// ReducedBase is the shrunken study every ablation sweep starts from: 14
// users playing 8 clips each at a fixed seed — the configuration the
// DESIGN.md ablation benches were calibrated on. A zero seed falls back to
// 9 (the benches' calibration seed): ablation arms must share one explicit
// seed, or the on/off delta would confound the toggle with seed-to-seed
// variance via per-scenario seed derivation.
func ReducedBase(seed int64) study.Options {
	if seed == 0 {
		seed = 9
	}
	return study.Options{Seed: seed, MaxUsers: 14, ClipCap: 8}
}

// SeedReplicas builds n scenarios that re-run base at consecutive seeds
// starting from first — the multi-seed stability campaign.
func SeedReplicas(base study.Options, first int64, n int) []Scenario {
	out := make([]Scenario, 0, n)
	for i := 0; i < n; i++ {
		o := base
		o.Seed = first + int64(i)
		out = append(out, Scenario{Name: fmt.Sprintf("seed-%02d", o.Seed), Options: o})
	}
	return out
}

// PrerollSweep varies the player's initial buffer depth.
func PrerollSweep(base study.Options, prerolls []time.Duration) []Scenario {
	out := make([]Scenario, 0, len(prerolls))
	for _, p := range prerolls {
		o := base
		o.Preroll = p
		out = append(out, Scenario{Name: fmt.Sprintf("preroll-%v", p), Options: o})
	}
	return out
}

// ControllerSweep varies the UDP rate controller.
func ControllerSweep(base study.Options, controllers []string) []Scenario {
	out := make([]Scenario, 0, len(controllers))
	for _, c := range controllers {
		o := base
		o.Controller = c
		out = append(out, Scenario{Name: "ratecontrol-" + c, Options: o})
	}
	return out
}

// SureStreamSweep toggles mid-playout stream switching.
func SureStreamSweep(base study.Options) []Scenario {
	on, off := base, base
	off.DisableSureStream = true
	return []Scenario{
		{Name: "surestream-on", Options: on},
		{Name: "surestream-off", Options: off},
	}
}

// FECSweep toggles repair packets.
func FECSweep(base study.Options) []Scenario {
	on, off := base, base
	off.DisableFEC = true
	return []Scenario{
		{Name: "fec-on", Options: on},
		{Name: "fec-off", Options: off},
	}
}

// DynamicsSweep builds the control arm (dynamics off) plus one scenario
// per intensity level of a named dynamics profile — the fault-injection
// sweep shape shared by the outage/flashcrowd/lossburst/diurnal families.
func DynamicsSweep(base study.Options, profile string, levels []float64) []Scenario {
	off := base
	off.Dynamics = ""
	out := []Scenario{{Name: profile + "-off", Options: off}}
	for _, k := range levels {
		o := base
		o.Dynamics = profile
		o.DynamicsIntensity = k
		out = append(out, Scenario{Name: fmt.Sprintf("%s-%gx", profile, k), Options: o})
	}
	return out
}

// openLoopBase prepares base for the open-loop sweep families: the
// poisson workload unless the caller picked one, and an arrival budget
// sized to the reduced study (twice the template pool) unless set.
func openLoopBase(base study.Options) study.Options {
	if !base.OpenLoop() {
		base.Workload = "poisson"
	}
	return base
}

// SelectionSweep compares server-selection policies under one open-loop
// workload: every arm shares one explicit workload seed, so the arrival,
// popularity and abandonment draws are identical across policies and the
// server-load balance contrast is the policy's doing alone. (Left at zero,
// per-scenario derivation would give each arm its own arrival track and
// confound the policy with workload variance — the same reason ablation
// arms share one study seed.)
func SelectionSweep(base study.Options, policies []string) []Scenario {
	base = openLoopBase(base)
	if base.WorkloadSeed == 0 {
		base.WorkloadSeed = DeriveSeed(base.Seed, "selection|workload")
	}
	out := make([]Scenario, 0, len(policies))
	for _, p := range policies {
		o := base
		o.Selection = p
		out = append(out, Scenario{Name: "selection-" + p, Options: o})
	}
	return out
}

// ChurnSweep scales the open-loop arrival intensity against the classic
// closed-loop panel as the control arm: how delivery holds up as the
// population churns faster than the calibrated rate.
func ChurnSweep(base study.Options, levels []float64) []Scenario {
	closed := base
	closed.Workload = ""
	closed.WorkloadIntensity = 0
	closed.Selection = ""
	closed.Arrivals = 0
	out := []Scenario{{Name: "churn-closed", Options: closed}}
	for _, k := range levels {
		o := openLoopBase(base)
		o.WorkloadIntensity = k
		out = append(out, Scenario{Name: fmt.Sprintf("churn-%gx", k), Options: o})
	}
	return out
}

// CongestionSweep scales wide-area cross traffic.
func CongestionSweep(base study.Options, scales []float64) []Scenario {
	out := make([]Scenario, 0, len(scales))
	for _, s := range scales {
		o := base
		o.CongestionScale = s
		out = append(out, Scenario{Name: fmt.Sprintf("congestion-%gx", s), Options: o})
	}
	return out
}

// Sweep is a named, self-contained scenario set: the registry entry behind
// `study -sweep NAME`.
type Sweep struct {
	Name        string
	Description string
	// Scenarios builds the sweep's scenario set from a base configuration.
	Scenarios func(base study.Options) []Scenario
}

var sweeps = map[string]Sweep{
	"seeds": {
		Name:        "seeds",
		Description: "multi-seed stability: the same reduced study at 8 consecutive seeds",
		Scenarios: func(base study.Options) []Scenario {
			first := base.Seed
			if first == 0 {
				first = 1
			}
			return SeedReplicas(base, first, 8)
		},
	},
	"preroll": {
		Name:        "preroll",
		Description: "initial buffer depth: 1s, 4s, 8s, 16s preroll",
		Scenarios: func(base study.Options) []Scenario {
			return PrerollSweep(base, []time.Duration{
				time.Second, 4 * time.Second, 8 * time.Second, 16 * time.Second,
			})
		},
	},
	"controller": {
		Name:        "controller",
		Description: "UDP rate control: tfrc vs aimd vs unresponsive",
		Scenarios: func(base study.Options) []Scenario {
			return ControllerSweep(base, []string{"tfrc", "aimd", "unresponsive"})
		},
	},
	"surestream": {
		Name:        "surestream",
		Description: "mid-playout stream switching on/off",
		Scenarios:   SureStreamSweep,
	},
	"fec": {
		Name:        "fec",
		Description: "repair packets on/off",
		Scenarios:   FECSweep,
	},
	"congestion": {
		Name:        "congestion",
		Description: "wide-area cross traffic at 0.5x, 1x, 1.5x, 2x the calibrated level",
		Scenarios: func(base study.Options) []Scenario {
			return CongestionSweep(base, []float64{0.5, 1, 1.5, 2})
		},
	},
	"outage": {
		Name:        "outage",
		Description: "fault injection: rolling server-link outages at 0.5x, 1x, 2x duration vs the static baseline",
		Scenarios: func(base study.Options) []Scenario {
			return DynamicsSweep(base, "outage", []float64{0.5, 1, 2})
		},
	},
	"flashcrowd": {
		Name:        "flashcrowd",
		Description: "fault injection: global flash-crowd congestion spikes at 0.5x, 1x, 1.5x amplitude vs the static baseline",
		Scenarios: func(base study.Options) []Scenario {
			return DynamicsSweep(base, "flashcrowd", []float64{0.5, 1, 1.5})
		},
	},
	"lossburst": {
		Name:        "lossburst",
		Description: "fault injection: Gilbert–Elliott loss bursts at 0.5x, 1x, 2x bad-state loss vs the static baseline",
		Scenarios: func(base study.Options) []Scenario {
			return DynamicsSweep(base, "lossburst", []float64{0.5, 1, 2})
		},
	},
	"diurnal": {
		Name:        "diurnal",
		Description: "fault injection: diurnal cross-traffic cycles at 0.5x, 1x, 1.5x amplitude vs the static baseline",
		Scenarios: func(base study.Options) []Scenario {
			return DynamicsSweep(base, "diurnal", []float64{0.5, 1, 1.5})
		},
	},
	"selection": {
		Name:        "selection",
		Description: "open-loop server selection: pinned vs rtt vs roundrobin vs leastloaded under one Poisson workload",
		Scenarios: func(base study.Options) []Scenario {
			return SelectionSweep(base, workload.PolicyNames())
		},
	},
	"churn": {
		Name:        "churn",
		Description: "open-loop user churn: Poisson arrivals at 0.5x, 1x, 2x the calibrated rate vs the closed-loop panel",
		Scenarios: func(base study.Options) []Scenario {
			return ChurnSweep(base, []float64{0.5, 1, 2})
		},
	},
}

// Sweeps lists every registered sweep, sorted by name.
func Sweeps() []Sweep {
	out := make([]Sweep, 0, len(sweeps))
	for _, s := range sweeps {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SweepByName looks a sweep up in the registry.
func SweepByName(name string) (Sweep, bool) {
	s, ok := sweeps[name]
	return s, ok
}
