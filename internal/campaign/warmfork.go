package campaign

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"time"

	"realtracer/internal/study"
)

// Warm-started sweeps: run one shared warm-up prefix, checkpoint it, and
// fork N divergent scenarios from the snapshot. A sweep whose scenarios
// share a long steady-state prefix pays for that prefix once instead of
// once per scenario — with an 8-fork sweep warmed 60% of the way through
// the horizon, the cold control simulates 8.0 horizons of virtual time and
// the warm path 0.6 + 8×0.4 = 3.8, a ~2.1x amortization (recorded per PR
// in BENCH_pr10.json by BenchmarkCampaignWarmFork).
//
// Forks diverge by name (deterministic per-fork RNG re-derivation) and by
// the scenario deltas a study.Fork can carry — dynamics profile and
// intensity, rate controller, selection policy, workload intensity,
// congestion scale. Knobs that reshape the built world (seed, population,
// workload profile) cannot fork; study.Resume rejects them loudly.

// WarmForkResult is a completed warm-started sweep. It is a Summary whose
// ScenarioResults carry each fork's effective options (base plus the
// fork's deltas) and whose Warmup/Snapshot fields describe the shared
// prefix the forks were paid from.
type WarmForkResult struct {
	Summary
	// Base is the effective base configuration the prefix ran: the caller's
	// base with any zero Seed/DynamicsSeed/WorkloadSeed filled in by the
	// same derivation a cold Scenario gets.
	Base study.Options
	// Warmup is the virtual-time length of the shared prefix.
	Warmup time.Duration
	// WarmupElapsed is the wall-clock cost of running the prefix and
	// writing the snapshot — paid once, regardless of fork count.
	WarmupElapsed time.Duration
	// SnapshotBytes is the size of the in-memory snapshot the forks
	// resumed from.
	SnapshotBytes int
}

// RunWarmForks runs base to the warmup instant once, checkpoints the warm
// world to an in-memory snapshot, and forks every entry of forks from it
// across cfg.Workers goroutines. Results line up with forks
// index-for-index; one failed fork does not abort the others.
//
// Every fork must be named (the name drives per-fork RNG re-derivation and
// labels the result) and names should be unique — two forks with the same
// name are byte-identical replicas. A zero base.Seed is derived from
// cfg.BaseSeed exactly like a zero-seed Scenario, so a warm sweep and a
// cold Run of the same names stay comparable.
//
// Warm forks run in retained-records mode only: a checkpoint needs the
// default collector sink (the snapshot carries the prefix's records), so
// cfg.NewSink must be nil.
func RunWarmForks(base study.Options, warmup time.Duration, forks []study.Fork, cfg Config) (*WarmForkResult, error) {
	if len(forks) == 0 {
		return nil, fmt.Errorf("campaign: warm-fork sweep has no forks")
	}
	for i := range forks {
		if forks[i].Name == "" {
			return nil, fmt.Errorf("campaign: fork %d has no name (names drive per-fork RNG re-derivation)", i)
		}
	}
	if cfg.NewSink != nil {
		return nil, fmt.Errorf("campaign: warm forks need the retained-records path (a checkpoint carries the prefix's records through the default collector); leave Config.NewSink nil")
	}
	if warmup <= 0 {
		return nil, fmt.Errorf("campaign: warm-fork warmup must be positive, got %v", warmup)
	}
	if base.Seed == 0 {
		base.Seed = DeriveSeed(cfg.BaseSeed, "warmfork")
	}
	if base.Dynamics != "" && base.DynamicsSeed == 0 {
		base.DynamicsSeed = DeriveSeed(cfg.BaseSeed, "warmfork|dynamics")
	}
	if base.OpenLoop() && base.WorkloadSeed == 0 {
		base.WorkloadSeed = DeriveSeed(cfg.BaseSeed, "warmfork|workload")
	}

	start := time.Now()
	w, err := study.NewWorld(base)
	if err != nil {
		return nil, fmt.Errorf("campaign: warm-fork base: %w", err)
	}
	if err := w.RunUntil(warmup); err != nil {
		return nil, fmt.Errorf("campaign: warm-up prefix: %w", err)
	}
	var snap bytes.Buffer
	if err := w.Checkpoint(&snap); err != nil {
		return nil, fmt.Errorf("campaign: checkpoint at %v: %w", warmup, err)
	}
	warmElapsed := time.Since(start)

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(forks) {
		workers = len(forks)
	}
	if workers < 1 {
		workers = 1
	}

	out := &WarmForkResult{
		Summary:       Summary{Results: make([]ScenarioResult, len(forks)), Workers: workers},
		Base:          base,
		Warmup:        warmup,
		WarmupElapsed: warmElapsed,
		SnapshotBytes: snap.Len(),
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out.Results[i] = runFork(snap.Bytes(), base, &forks[i])
			}
		}()
	}
	for i := range forks {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	out.Elapsed = time.Since(start)
	return out, nil
}

// runFork resumes one fork from the shared snapshot and drives it to
// completion in its own private world; snapshot bytes are read-only, so
// workers share them without copies.
func runFork(snap []byte, base study.Options, fork *study.Fork) ScenarioResult {
	start := time.Now()
	sc := Scenario{Name: fork.Name, Options: fork.Applied(base)}
	w, err := study.Resume(bytes.NewReader(snap), fork)
	var res *study.Result
	if err == nil {
		res, err = w.Run()
	}
	return ScenarioResult{
		Scenario: sc,
		Result:   res,
		Err:      err,
		Elapsed:  time.Since(start),
	}
}
