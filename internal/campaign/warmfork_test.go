package campaign

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"realtracer/internal/study"
	"realtracer/internal/trace"
)

// warmForkBase is the open-loop study the warm-fork tests share: big
// enough to have churn mid-prefix, small enough to run in well under a
// second.
func warmForkBase() study.Options {
	return study.Options{
		Seed: 17, MaxUsers: 6, ClipCap: 2,
		Workload: "poisson", Arrivals: 16, WorkloadIntensity: 2,
	}
}

// horizonOf runs opt straight through once and returns its virtual-time
// length, so warm-up instants can be placed as fractions of the horizon.
func horizonOf(t *testing.T, opt study.Options) time.Duration {
	t.Helper()
	res, err := study.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	return res.SimDuration
}

// TestRunWarmForksDeterministicAndDivergent pins the warm-fork contract:
// re-running the same warm sweep reproduces every fork byte-for-byte,
// differently named forks diverge from each other, and each result is
// labeled with the fork's effective options.
func TestRunWarmForksDeterministicAndDivergent(t *testing.T) {
	base := warmForkBase()
	warmup := horizonOf(t, base) / 2
	k := 2.0
	forks := []study.Fork{
		{Name: "a"},
		{Name: "b"},
		{Name: "hot", WorkloadIntensity: &k},
	}

	run := func(workers int) *WarmForkResult {
		sum, err := RunWarmForks(base, warmup, forks, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := sum.Err(); err != nil {
			t.Fatal(err)
		}
		return sum
	}
	first := run(1)
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4
	}
	second := run(workers)

	if len(first.Results) != len(forks) {
		t.Fatalf("got %d results for %d forks", len(first.Results), len(forks))
	}
	for i, r := range first.Results {
		if r.Scenario.Name != forks[i].Name {
			t.Fatalf("result %d labeled %q, want %q", i, r.Scenario.Name, forks[i].Name)
		}
		if len(r.Result.Records) == 0 {
			t.Fatalf("fork %s produced no records", r.Scenario.Name)
		}
		got := csvBytes(t, second.Results[i].Result)
		if !bytes.Equal(csvBytes(t, r.Result), got) {
			t.Errorf("fork %s not deterministic across runs/worker counts", r.Scenario.Name)
		}
	}
	if bytes.Equal(csvBytes(t, first.Results[0].Result), csvBytes(t, first.Results[1].Result)) {
		t.Error("forks a and b did not diverge")
	}
	if got := first.Results[2].Scenario.Options.WorkloadIntensity; got != k {
		t.Errorf("fork hot labeled with WorkloadIntensity %v, want %v", got, k)
	}
	if first.SnapshotBytes == 0 || first.Warmup != warmup {
		t.Errorf("prefix metadata missing: snapshot %d bytes, warmup %v", first.SnapshotBytes, first.Warmup)
	}
}

// TestRunWarmForksSharedPrefix proves the prefix really is shared: a fork
// resumed by the campaign layer matches the same fork resumed by hand from
// a separately taken checkpoint of the same base at the same instant.
func TestRunWarmForksSharedPrefix(t *testing.T) {
	base := warmForkBase()
	warmup := horizonOf(t, base) / 2

	sum, err := RunWarmForks(base, warmup, []study.Fork{{Name: "a"}}, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sum.Err(); err != nil {
		t.Fatal(err)
	}

	// sum.Base carries the derived WorkloadSeed the prefix actually ran
	// with; the hand-rolled control must start from the same options.
	w, err := study.NewWorld(sum.Base)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RunUntil(warmup); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := w.Checkpoint(&snap); err != nil {
		t.Fatal(err)
	}
	fw, err := study.Resume(&snap, &study.Fork{Name: "a"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csvBytes(t, sum.Results[0].Result), csvBytes(t, res)) {
		t.Error("campaign warm fork differs from a hand-rolled checkpoint+resume of the same fork")
	}
}

// TestRunWarmForksValidation pins the loud-failure contract for malformed
// warm sweeps.
func TestRunWarmForksValidation(t *testing.T) {
	base := warmForkBase()
	cases := []struct {
		name   string
		forks  []study.Fork
		warmup time.Duration
		cfg    Config
		want   string
	}{
		{"no forks", nil, time.Minute, Config{}, "no forks"},
		{"unnamed fork", []study.Fork{{}}, time.Minute, Config{}, "no name"},
		{"zero warmup", []study.Fork{{Name: "a"}}, 0, Config{}, "warmup"},
		{"streaming sink", []study.Fork{{Name: "a"}}, time.Minute,
			Config{NewSink: func() trace.Sink { return &trace.Collector{} }}, "NewSink"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := RunWarmForks(base, tc.warmup, tc.forks, tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// TestWarmForkSpeedup is the amortization fence behind BENCH_pr10.json: an
// 8-fork sweep warmed 60% of the way through the horizon simulates
// 0.6 + 8×0.4 = 3.8 horizons instead of 8, so even on a loaded runner it
// must beat the cold control comfortably. Workers is pinned to 1 on both
// arms — the contrast is prefix amortization, not parallelism.
func TestWarmForkSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	// A sim-heavier base than warmForkBase: at 16 arrivals the fixed
	// world-build cost rivals the simulated work and dilutes the prefix
	// amortization the fence is measuring.
	base := warmForkBase()
	base.Arrivals = 64
	horizon := horizonOf(t, base)
	warmup := horizon * 6 / 10

	forks := make([]study.Fork, 8)
	for i := range forks {
		forks[i] = study.Fork{Name: fmt.Sprintf("fork-%02d", i)}
	}
	// The theoretical ratio at these parameters is ~2.1x; demand a
	// conservative 1.5x. Both arms are wall-clock, so a concurrently
	// running test package (go test ./... runs packages in parallel) can
	// tax one arm and not the other — retry up to three times and pass on
	// the best attempt, so only a machine that is *consistently* unable to
	// show the amortization fails.
	const want = 1.5
	best := 0.0
	for attempt := 1; attempt <= 3; attempt++ {
		cold := Run(SeedReplicas(base, base.Seed, len(forks)), Config{Workers: 1})
		if err := cold.Err(); err != nil {
			t.Fatal(err)
		}
		warm, err := RunWarmForks(base, warmup, forks, Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := warm.Err(); err != nil {
			t.Fatal(err)
		}
		speedup := float64(cold.Elapsed) / float64(warm.Elapsed)
		t.Logf("attempt %d: cold %v, warm %v (prefix %v of %v, %d-byte snapshot): %.2fx",
			attempt, cold.Elapsed, warm.Elapsed, warm.WarmupElapsed, warmup, warm.SnapshotBytes, speedup)
		if speedup > best {
			best = speedup
		}
		if best >= want {
			return
		}
	}
	t.Errorf("warm 8-fork sweep speedup %.2fx best of 3, want >= %.1fx", best, want)
}
