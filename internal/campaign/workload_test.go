package campaign

import (
	"bytes"
	"runtime"
	"testing"

	"realtracer/internal/study"
	"realtracer/internal/trace"
)

// workloadFamilies are the open-loop sweep registry entries added with the
// workload engine.
var workloadFamilies = []string{"selection", "churn"}

// TestWorkloadSweepsRegistered pins the registry surface: both open-loop
// families resolve by name, the selection sweep covers every policy under
// one shared workload seed, and the churn sweep keeps a closed-loop
// control arm.
func TestWorkloadSweepsRegistered(t *testing.T) {
	sw, ok := SweepByName("selection")
	if !ok {
		t.Fatal("selection sweep not registered")
	}
	scs := sw.Scenarios(ReducedBase(0))
	if len(scs) != 4 {
		t.Fatalf("selection sweep has %d scenarios, want one per policy", len(scs))
	}
	seed := scs[0].Options.WorkloadSeed
	if seed == 0 {
		t.Fatal("selection sweep left WorkloadSeed to per-scenario derivation; arms would not share an arrival track")
	}
	for _, sc := range scs {
		if !sc.Options.OpenLoop() {
			t.Fatalf("selection scenario %q is not open-loop", sc.Name)
		}
		if sc.Options.WorkloadSeed != seed {
			t.Fatalf("selection scenario %q has its own workload seed", sc.Name)
		}
	}

	sw, ok = SweepByName("churn")
	if !ok {
		t.Fatal("churn sweep not registered")
	}
	scs = sw.Scenarios(ReducedBase(0))
	if len(scs) != 4 {
		t.Fatalf("churn sweep has %d scenarios, want closed control + 3 levels", len(scs))
	}
	if scs[0].Options.OpenLoop() {
		t.Fatalf("churn first scenario %q is not the closed-loop control arm", scs[0].Name)
	}
	for _, sc := range scs[1:] {
		if !sc.Options.OpenLoop() || sc.Options.WorkloadIntensity == 0 {
			t.Fatalf("churn scenario %q misconfigured: %+v", sc.Name, sc.Options)
		}
	}
}

// TestWorkloadSweepsDeterministicAcrossWorkers extends the campaign
// determinism guarantee to the open-loop families: per-scenario records —
// including every arrival, Zipf and abandonment draw inside the workload
// generator — must be byte-identical at workers=1 and at a full pool,
// because the workload seed derives from the scenario name, never from the
// worker.
func TestWorkloadSweepsDeterministicAcrossWorkers(t *testing.T) {
	base := study.Options{MaxUsers: 5, ClipCap: 2, Arrivals: 10}
	var scs []Scenario
	for _, name := range workloadFamilies {
		sw, _ := SweepByName(name)
		scs = append(scs, sw.Scenarios(base)...)
	}

	serialCfg := Config{BaseSeed: 9, Workers: 1}
	parallelCfg := Config{BaseSeed: 9, Workers: runtime.NumCPU()}
	if parallelCfg.Workers < 4 {
		parallelCfg.Workers = 4
	}
	serial := Run(scs, serialCfg)
	parallel := Run(scs, parallelCfg)
	if err := serial.Err(); err != nil {
		t.Fatal(err)
	}
	if err := parallel.Err(); err != nil {
		t.Fatal(err)
	}

	sawOpenLoopRecord := false
	for i := range scs {
		s, p := serial.Results[i], parallel.Results[i]
		if s.Scenario.Options.WorkloadSeed != p.Scenario.Options.WorkloadSeed {
			t.Fatalf("scenario %s: workload seeds differ: %d vs %d",
				scs[i].Name, s.Scenario.Options.WorkloadSeed, p.Scenario.Options.WorkloadSeed)
		}
		if scs[i].Options.OpenLoop() && s.Scenario.Options.WorkloadSeed == 0 {
			t.Fatalf("scenario %s: workload seed never derived", scs[i].Name)
		}
		if !bytes.Equal(wlCSVBytes(t, s.Result), wlCSVBytes(t, p.Result)) {
			t.Fatalf("scenario %s: records differ between workers=1 and workers=%d",
				scs[i].Name, parallelCfg.Workers)
		}
		if s.Result != nil {
			for _, r := range s.Result.Records {
				if r.Policy != "" {
					sawOpenLoopRecord = true
				}
			}
		}
	}
	if !sawOpenLoopRecord {
		t.Fatal("no open-loop record observed; the sweeps never exercised the workload engine")
	}
}

func wlCSVBytes(t *testing.T, res *study.Result) []byte {
	t.Helper()
	if res == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, res.Records); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
