// Package core is the library's front door: it runs the full RealTracer
// measurement study (the paper's primary contribution is the methodology —
// instrumented player, wide-area campaign, user-centric analysis), produces
// every evaluation figure from the resulting trace, and runs the
// single-session experiments such as the Figure-1 buffering timeline.
package core

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"realtracer/internal/campaign"
	"realtracer/internal/figures"
	"realtracer/internal/media"
	"realtracer/internal/netsim"
	"realtracer/internal/player"
	"realtracer/internal/server"
	"realtracer/internal/session"
	"realtracer/internal/simclock"
	"realtracer/internal/study"
	"realtracer/internal/trace"
	"realtracer/internal/transport"
	"realtracer/internal/vclock"
)

// StudyOptions parameterizes a campaign; see study.Options for the fields.
type StudyOptions = study.Options

// StudyResult is a completed campaign.
type StudyResult = study.Result

// RunStudy executes the full measurement campaign (63 users, 98 clips, 11
// servers by default) and returns its per-clip records.
func RunStudy(opt StudyOptions) (*StudyResult, error) { return study.Run(opt) }

// RunStudyStream executes the campaign streaming every record into sink as
// it is produced, retaining none of them — the population-scale path. Set
// opt.MaxUsers past 63 to run a proportionally scaled population.
func RunStudyStream(opt StudyOptions, sink trace.Sink) (*StudyResult, error) {
	return study.RunStream(opt, sink)
}

// RunStudyAggregates streams one study straight into a figure-aggregate
// build and returns it alongside the run metadata: every figure and
// headline statistic without ever materializing the record set.
func RunStudyAggregates(opt StudyOptions) (*figures.Aggregates, *StudyResult, error) {
	agg := figures.NewAggregates()
	res, err := study.RunStream(opt, agg)
	return agg, res, err
}

// Scenario is one named study configuration inside a campaign; see
// campaign.Scenario.
type Scenario = campaign.Scenario

// CampaignConfig tunes the campaign worker pool; see campaign.Config.
type CampaignConfig = campaign.Config

// CampaignSummary is a completed multi-scenario campaign.
type CampaignSummary = campaign.Summary

// RunCampaign executes a set of named scenarios across a bounded worker
// pool (cfg.Workers, default NumCPU) and returns the merged per-scenario
// results in input order. Each scenario runs in its own private simulated
// world, so records are identical whatever the worker count.
func RunCampaign(scenarios []Scenario, cfg CampaignConfig) *CampaignSummary {
	return campaign.Run(scenarios, cfg)
}

// RunCampaignAggregates executes the campaign in streaming mode: each
// scenario streams its records into a private figures.Aggregates (no
// records retained anywhere), and the per-scenario partials are merged in
// scenario input order — so the merged aggregates are identical no matter
// how many workers the campaign ran on. The per-scenario partials remain
// available via the summary's ScenarioResult.Sink fields.
func RunCampaignAggregates(scenarios []Scenario, cfg CampaignConfig) (*figures.Aggregates, *CampaignSummary) {
	cfg.NewSink = func() trace.Sink { return figures.NewAggregates() }
	sum := campaign.Run(scenarios, cfg)
	merged := figures.NewAggregates()
	for _, r := range sum.Results {
		if part, ok := r.Sink.(*figures.Aggregates); ok && r.Err == nil {
			merged.Merge(part)
		}
	}
	return merged, sum
}

// AllFigures regenerates every record-driven figure (5-28) from a trace:
// one aggregate pass over the records, then every generator off the shared
// aggregates.
func AllFigures(recs []*trace.Record) []figures.Figure {
	return AllFiguresAgg(figures.Aggregate(recs))
}

// AllFiguresAgg regenerates every record-driven figure from a completed
// aggregate build — the streaming path, where no record slice ever existed.
func AllFiguresAgg(agg *figures.Aggregates) []figures.Figure {
	gens := figures.All()
	out := make([]figures.Figure, 0, len(gens))
	for _, g := range gens {
		out = append(out, g.Agg(agg))
	}
	return out
}

// RunFigure regenerates one figure by id ("fig05" ... "fig28").
func RunFigure(id string, recs []*trace.Record) (figures.Figure, error) {
	g, ok := figures.ByID(id)
	if !ok {
		return figures.Figure{}, fmt.Errorf("core: unknown figure %q", id)
	}
	return g.Build(recs), nil
}

// RunFigureAgg regenerates one figure by id from a completed aggregate
// build.
func RunFigureAgg(id string, agg *figures.Aggregates) (figures.Figure, error) {
	g, ok := figures.ByID(id)
	if !ok {
		return figures.Figure{}, fmt.Errorf("core: unknown figure %q", id)
	}
	return g.Agg(agg), nil
}

// RenderAll writes every figure to w.
func RenderAll(w io.Writer, recs []*trace.Record) {
	for _, f := range AllFigures(recs) {
		f.Render(w)
	}
}

// RenderAllAgg writes every figure computed from an aggregate build to w.
func RenderAllAgg(w io.Writer, agg *figures.Aggregates) {
	for _, f := range AllFiguresAgg(agg) {
		f.Render(w)
	}
}

// SessionOptions parameterizes a single simulated streaming session between
// one client and one server, used by the timeline and ablation experiments.
type SessionOptions struct {
	// Protocol for the data connection.
	Protocol transport.Protocol
	// ClientAccess is the end-host class; ClientDownKbps optionally
	// overrides the class's downstream rate.
	ClientAccess   netsim.AccessClass
	ClientDownKbps float64
	// Route shapes the wide-area path (zero value: clean LAN-like).
	Route netsim.Route
	// ClipKbps selects the clip's top encoding; MinKbps its floor.
	ClipKbps float64
	MinKbps  float64
	// MaxBandwidthKbps is the RealPlayer bandwidth preference (defaults to
	// ClipKbps).
	MaxBandwidthKbps float64
	// PlayFor bounds playout (default 70 s, matching Figure 1's span).
	PlayFor time.Duration
	// Preroll overrides the player's initial buffer depth.
	Preroll time.Duration
	// CPU is the client machine class (default Pentium III).
	CPU player.CPUProfile
	// SureStream / FEC toggles on the server, Scalable Video on the player
	// (all default on via RunSession).
	DisableSureStream    bool
	DisableFEC           bool
	DisableScalableVideo bool
	// Live streams the clip as a real-time feed (no ahead-of-realtime
	// delivery) — the paper's future-work experiment.
	Live bool
	// Seed drives all randomness.
	Seed int64
}

// RunSession plays one clip start-to-finish on the simulator and returns
// the player statistics (including the per-second Timeline).
func RunSession(opt SessionOptions) (*player.Stats, error) {
	if opt.PlayFor <= 0 {
		opt.PlayFor = 70 * time.Second
	}
	if opt.ClipKbps <= 0 {
		opt.ClipKbps = 225
	}
	if opt.MinKbps <= 0 {
		opt.MinKbps = 20
	}
	if opt.MaxBandwidthKbps <= 0 {
		opt.MaxBandwidthKbps = opt.ClipKbps
	}
	clock := simclock.New()
	n := netsim.New(clock, netsim.StaticRoute(opt.Route), opt.Seed)
	n.AddHost(netsim.HostConfig{Name: "server", Access: netsim.DefaultAccessProfile(netsim.AccessServer)})
	access := netsim.DefaultAccessProfile(opt.ClientAccess)
	if opt.ClientDownKbps > 0 {
		access.DownKbps = opt.ClientDownKbps
	}
	n.AddHost(netsim.HostConfig{Name: "client", Access: access})

	clip := media.GenerateClip("rtsp://server/clip.rm", "session-clip", media.ContentNews,
		5*time.Minute, opt.MinKbps, opt.ClipKbps, opt.Seed+1)
	clip.Live = opt.Live
	srv := server.New(server.Config{
		Clock:      vclock.Sim{C: clock},
		Net:        session.SimNet{Stack: transport.NewStack(n, "server")},
		Library:    media.NewLibrary([]*media.Clip{clip}),
		Rand:       rand.New(rand.NewSource(opt.Seed + 2)),
		SureStream: !opt.DisableSureStream,
		FEC:        !opt.DisableFEC,
	})
	if err := srv.Start(); err != nil {
		return nil, err
	}
	var got *player.Stats
	var gotErr error
	p := player.New(player.Config{
		Clock:                vclock.Sim{C: clock},
		Net:                  session.SimNet{Stack: transport.NewStack(n, "client")},
		ControlAddr:          "server:554",
		URL:                  clip.URL,
		Protocol:             opt.Protocol,
		MaxBandwidthKbps:     opt.MaxBandwidthKbps,
		PlayFor:              opt.PlayFor,
		Preroll:              opt.Preroll,
		CPU:                  opt.CPU,
		DisableScalableVideo: opt.DisableScalableVideo,
		Rand:                 rand.New(rand.NewSource(opt.Seed + 3)),
		OnDone: func(st *player.Stats, err error) {
			got, gotErr = st, err
		},
	})
	p.Start()
	clock.RunUntil(opt.PlayFor + 3*time.Minute)
	if got == nil {
		return nil, fmt.Errorf("core: session never completed")
	}
	return got, gotErr
}

// Fig01Timeline reproduces Figure 1: the buffering and playout of one
// RealVideo clip — coded vs. current bandwidth and frame rate over ~70 s.
func Fig01Timeline(seed int64) (figures.Figure, *player.Stats, error) {
	st, err := RunSession(SessionOptions{
		Protocol:     transport.UDP,
		ClientAccess: netsim.AccessDSLCable,
		Route: netsim.Route{
			OneWayDelay:    40 * time.Millisecond,
			Jitter:         8 * time.Millisecond,
			LossRate:       0.005,
			CapacityKbps:   900,
			CongestionMean: 0.2,
			CongestionVar:  0.1,
		},
		ClipKbps: 225,
		PlayFor:  70 * time.Second,
		Seed:     seed,
	})
	if err != nil {
		return figures.Figure{}, st, err
	}
	f := figures.Figure{
		ID:     "fig01",
		Title:  "Buffering and playout of a RealVideo clip",
		XLabel: "Time (sec)",
		YLabel: "Bandwidth (Kbps) / Frame Rate (fps)",
		Kind:   figures.KindSeries,
	}
	var bw, fps figures.Series
	bw.Label, fps.Label = "Current Bandwidth", "Current Frame Rate"
	for _, pt := range st.Timeline {
		bw.X = append(bw.X, pt.T.Seconds())
		bw.Y = append(bw.Y, pt.Kbps)
		fps.X = append(fps.X, pt.T.Seconds())
		fps.Y = append(fps.Y, pt.FPS)
	}
	coded := figures.Series{Label: "Coded Bandwidth", X: bw.X}
	codedFPS := figures.Series{Label: "Coded Frame Rate", X: bw.X}
	for range bw.X {
		coded.Y = append(coded.Y, st.EncodedKbps)
		codedFPS.Y = append(codedFPS.Y, st.EncodedFPS)
	}
	f.Series = []figures.Series{coded, bw, codedFPS, fps}
	f.Notes = append(f.Notes,
		fmt.Sprintf("initial buffering %.1f s (paper: ~13 s flat region before playout)", st.BufferingTime.Seconds()),
		fmt.Sprintf("encoded %g Kbps @ %g fps; measured %.0f Kbps @ %.1f fps",
			st.EncodedKbps, st.EncodedFPS, st.MeasuredKbps, st.MeasuredFPS),
		"frame rate steadier than bandwidth once playout begins (buffer smoothing)")
	return f, st, nil
}
