package core

import (
	"bytes"
	"testing"
	"time"

	"realtracer/internal/netsim"
	"realtracer/internal/trace"
	"realtracer/internal/transport"
)

func TestRunSessionBasics(t *testing.T) {
	st, err := RunSession(SessionOptions{
		Protocol:     transport.UDP,
		ClientAccess: netsim.AccessDSLCable,
		ClipKbps:     225,
		PlayFor:      30 * time.Second,
		Seed:         3,
	})
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	if st.FramesPlayed == 0 || st.MeasuredKbps == 0 {
		t.Fatalf("empty session: %+v", st)
	}
}

func TestFig01TimelineShape(t *testing.T) {
	fig, st, err := Fig01Timeline(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series=%d want 4 (coded/current x bandwidth/framerate)", len(fig.Series))
	}
	// The paper's Figure 1: an initial buffering phase with zero frame
	// rate, then steady playout.
	if st.BufferingTime < 2*time.Second {
		t.Fatalf("buffering %.1fs too short for the figure", st.BufferingTime.Seconds())
	}
	var sawZeroFPS, sawPlayout bool
	for _, pt := range st.Timeline {
		if pt.T < st.BufferingTime && pt.FPS == 0 && pt.Kbps > 0 {
			sawZeroFPS = true
		}
		if pt.FPS > 5 {
			sawPlayout = true
		}
	}
	if !sawZeroFPS || !sawPlayout {
		t.Fatalf("timeline missing buffering (zero fps with data) or playout phase")
	}
	var buf bytes.Buffer
	fig.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("render empty")
	}
}

func TestRunFigureUnknownID(t *testing.T) {
	if _, err := RunFigure("fig99", nil); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestAllFiguresFromReducedStudy(t *testing.T) {
	res, err := RunStudy(StudyOptions{Seed: 2, MaxUsers: 8, ClipCap: 6})
	if err != nil {
		t.Fatal(err)
	}
	figs := AllFigures(res.Records)
	if len(figs) != 24 {
		t.Fatalf("figures=%d want 24", len(figs))
	}
	var buf bytes.Buffer
	RenderAll(&buf, res.Records)
	if buf.Len() < 1000 {
		t.Fatalf("render suspiciously small: %d bytes", buf.Len())
	}
}

func TestRunSessionAblationsDiffer(t *testing.T) {
	base, err := RunSession(SessionOptions{
		Protocol: transport.UDP, ClientAccess: netsim.AccessDSLCable,
		ClipKbps: 350, Seed: 5,
		Route: netsim.Route{OneWayDelay: 40 * time.Millisecond, LossRate: 0.03},
	})
	if err != nil {
		t.Fatal(err)
	}
	noFEC, err := RunSession(SessionOptions{
		Protocol: transport.UDP, ClientAccess: netsim.AccessDSLCable,
		ClipKbps: 350, Seed: 5, DisableFEC: true,
		Route: netsim.Route{OneWayDelay: 40 * time.Millisecond, LossRate: 0.03},
	})
	if err != nil {
		t.Fatal(err)
	}
	// With 3% loss, disabling FEC must not reduce corruption.
	if noFEC.FramesCorrupted < base.FramesCorrupted {
		t.Fatalf("FEC off reduced corruption: %d vs %d", noFEC.FramesCorrupted, base.FramesCorrupted)
	}
}

func TestStudyRecordsFeedRealdataPath(t *testing.T) {
	// The CSV written by the study must round-trip for the realdata tool.
	res, err := RunStudy(StudyOptions{Seed: 4, MaxUsers: 4, ClipCap: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, res.Records); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(res.Records) {
		t.Fatalf("round trip lost records: %d vs %d", len(got), len(res.Records))
	}
	if _, err := RunFigure("fig11", got); err != nil {
		t.Fatal(err)
	}
}

// TestRunStudyAggregates: the streaming front door produces the same
// figures as the batch front door, without retaining records.
func TestRunStudyAggregates(t *testing.T) {
	opt := StudyOptions{Seed: 4, MaxUsers: 4, ClipCap: 3}
	agg, res, err := RunStudyAggregates(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != nil {
		t.Fatal("streaming study retained records")
	}
	if agg.Total() == 0 || agg.Played() == 0 {
		t.Fatal("aggregates observed nothing")
	}
	batch, err := RunStudy(opt)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Total() != len(batch.Records) {
		t.Fatalf("aggregate total %d vs %d batch records", agg.Total(), len(batch.Records))
	}
	var a, b bytes.Buffer
	RenderAllAgg(&a, agg)
	RenderAll(&b, batch.Records)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("streamed figures differ from batch figures")
	}
	fig, err := RunFigureAgg("fig11", agg)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig11" || len(fig.Series) == 0 {
		t.Fatal("RunFigureAgg produced an empty figure")
	}
	if _, err := RunFigureAgg("fig99", agg); err == nil {
		t.Fatal("unknown figure id accepted")
	}
}

// TestRunCampaignAggregatesWorkerInvariant: the merged campaign aggregates
// must not depend on the worker pool size.
func TestRunCampaignAggregatesWorkerInvariant(t *testing.T) {
	scs := []Scenario{
		{Name: "a", Options: StudyOptions{MaxUsers: 3, ClipCap: 2}},
		{Name: "b", Options: StudyOptions{MaxUsers: 3, ClipCap: 2}},
		{Name: "c", Options: StudyOptions{MaxUsers: 3, ClipCap: 2}},
		{Name: "d", Options: StudyOptions{MaxUsers: 3, ClipCap: 2}},
	}
	agg1, sum1 := RunCampaignAggregates(scs, CampaignConfig{Workers: 1, BaseSeed: 8})
	if err := sum1.Err(); err != nil {
		t.Fatal(err)
	}
	agg4, sum4 := RunCampaignAggregates(scs, CampaignConfig{Workers: 4, BaseSeed: 8})
	if err := sum4.Err(); err != nil {
		t.Fatal(err)
	}
	if agg1.Total() == 0 || agg1.Total() != agg4.Total() {
		t.Fatalf("totals differ: %d vs %d", agg1.Total(), agg4.Total())
	}
	var a, b bytes.Buffer
	RenderAllAgg(&a, agg1)
	RenderAllAgg(&b, agg4)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("merged aggregates differ across worker counts")
	}
}
