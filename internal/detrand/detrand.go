// Package detrand wraps math/rand in a draw-counting source so a running
// simulation's RNG streams can be checkpointed and replayed byte-exactly
// without reaching into math/rand internals. A Rand records its seed and
// counts every Int63 the underlying source serves; restoring replays that
// many draws from a fresh source of the same seed, leaving the stream
// positioned exactly where the checkpoint left it.
//
// The counting source deliberately implements only rand.Source — not
// rand.Source64. math/rand composes Uint64 from two Int63 calls when the
// source lacks Uint64, so every rand.Rand method funnels through Int63 and
// the draw count is exact regardless of which methods the caller mixes.
// (Counting calls on a Source64 wrapper would undercount: the standard
// rngSource's Uint64 advances the generator twice.) Because every repo
// draw path (Float64, Int63n, NormFloat64, ExpFloat64, Intn, ...) already
// funnels through Int63, hiding the Source64 fast path changes no stream:
// a detrand.Rand draws the same values as rand.New(rand.NewSource(seed)).
package detrand

import "math/rand"

// source counts Int63 draws against the wrapped math/rand source.
type source struct {
	src   rand.Source
	count uint64
}

// Int63 implements rand.Source.
func (s *source) Int63() int64 {
	s.count++
	return s.src.Int63()
}

// Seed implements rand.Source.
func (s *source) Seed(seed int64) {
	s.src.Seed(seed)
	s.count = 0
}

// Rand is a draw-counting random stream. Rand (the embedded field) is a
// plain *rand.Rand and can be handed to any API that wants one; State
// reads the stream position for a checkpoint.
type Rand struct {
	*rand.Rand
	seed int64
	src  *source
}

// New returns a counting stream seeded with seed, drawing the same values
// as rand.New(rand.NewSource(seed)).
func New(seed int64) *Rand {
	src := &source{src: rand.NewSource(seed)}
	return &Rand{Rand: rand.New(src), seed: seed, src: src}
}

// Restore returns a counting stream positioned count draws into the stream
// of seed — the inverse of State.
func Restore(seed int64, count uint64) *Rand {
	r := New(seed)
	r.Skip(count)
	return r
}

// State returns the seed and the number of Int63 draws served so far.
func (r *Rand) State() (seed int64, count uint64) { return r.seed, r.src.count }

// Seed re-seeds the stream and resets the draw count, mirroring
// rand.Rand.Seed. The recorded seed is updated so State round-trips.
func (r *Rand) Seed(seed int64) {
	r.Rand.Seed(seed)
	r.seed = seed
	r.src.count = 0
}

// Skip burns n draws, advancing the stream without delivering values.
func (r *Rand) Skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		r.src.src.Int63()
	}
	r.src.count += n
}
