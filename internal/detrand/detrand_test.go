package detrand

import (
	"math/rand"
	"testing"
)

// drawMix exercises every method class the simulation uses and returns a
// fingerprint of the values drawn.
func drawMix(r *rand.Rand, n int) []float64 {
	out := make([]float64, 0, n*5)
	for i := 0; i < n; i++ {
		out = append(out,
			float64(r.Int63()),
			r.Float64(),
			float64(r.Intn(9000)),
			r.NormFloat64(),
			r.ExpFloat64(),
		)
	}
	return out
}

func TestStreamMatchesMathRand(t *testing.T) {
	for _, seed := range []int64{1, 9, 424242} {
		ref := drawMix(rand.New(rand.NewSource(seed)), 200)
		got := drawMix(New(seed).Rand, 200)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("seed %d: draw %d: got %v want %v", seed, i, got[i], ref[i])
			}
		}
	}
}

func TestStateRestoreRoundTrip(t *testing.T) {
	r := New(77)
	prefix := drawMix(r.Rand, 137)
	_ = prefix
	seed, count := r.State()
	if seed != 77 || count == 0 {
		t.Fatalf("State() = (%d, %d)", seed, count)
	}
	rest := Restore(seed, count)
	for i := 0; i < 500; i++ {
		if a, b := r.Int63(), rest.Int63(); a != b {
			t.Fatalf("draw %d after restore: %d != %d", i, a, b)
		}
		if a, b := r.NormFloat64(), rest.NormFloat64(); a != b {
			t.Fatalf("norm draw %d after restore: %v != %v", i, a, b)
		}
	}
	if _, c1 := r.State(); c1 == count {
		t.Fatal("count did not advance")
	}
}

func TestSeedResetsCount(t *testing.T) {
	r := New(5)
	r.Float64()
	r.Seed(11)
	if seed, count := r.State(); seed != 11 || count != 0 {
		t.Fatalf("after Seed: State() = (%d, %d), want (11, 0)", seed, count)
	}
	ref := rand.New(rand.NewSource(11))
	if a, b := r.Int63(), ref.Int63(); a != b {
		t.Fatalf("re-seeded stream diverges: %d != %d", a, b)
	}
}
