package figures

import (
	"sort"

	"realtracer/internal/stats"
	"realtracer/internal/trace"
)

// ratedPairCap bounds the (bandwidth, rating) pairs retained for the
// Figure-28 scatter. Pearson correlation and the low-rating-at-high-
// bandwidth count stay exact past the cap (they stream); only the plotted
// point cloud becomes a prefix sample, and the figure notes say so.
const ratedPairCap = 65536

// userTally is one user's per-record counts (Figures 5 and 6).
type userTally struct {
	plays int
	rated int
}

// Aggregates is the single-pass, mergeable aggregation every figure is
// computed from. It implements trace.Sink, so records can stream straight
// out of a running world into it — memory is bounded by the aggregate's
// own size (group count, sketch bins, per-user tallies), not by the record
// count.
//
// On seed-size studies every distribution stays on its sketch's exact
// small-sample path, so the figures produced from an Aggregates are
// byte-identical to the old multi-pass generators (the golden test pins
// this). At population scale the distributions fold into fixed-resolution
// bins with a bounded relative error.
//
// Partial Aggregates (one per campaign scenario, or per worker) merge with
// Merge; merging in input order yields identical results regardless of
// how many workers produced the partials.
type Aggregates struct {
	total       int
	played      int
	rated       int
	unavailable int
	failed      int

	perUser map[string]*userTally

	countryAll       stats.Counter
	serverCountryAll stats.Counter
	usStateAll       stats.Counter
	serverAttempts   stats.Counter
	serverUnavail    stats.Counter
	protoPlayed      stats.Counter

	fpsAll    *stats.Dist
	jitAll    *stats.Dist
	ratingAll *stats.Dist

	fpsByAccess       stats.Grouped
	fpsByServerRegion stats.Grouped
	fpsByUserRegion   stats.Grouped
	fpsByProtocol     stats.Grouped
	fpsByPC           stats.Grouped
	kbpsByAccess      stats.Grouped
	kbpsByProtocol    stats.Grouped
	jitByAccess       stats.Grouped
	jitByServerRegion stats.Grouped
	jitByUserRegion   stats.Grouped
	jitByProtocol     stats.Grouped
	jitByBand         stats.Grouped
	ratingByAccess    stats.Grouped

	ratedKbps         []float64
	ratedRating       []float64
	ratedPairsDropped int
	ratedCorr         stats.Corr
	lowRatedHighBW    int

	// Robustness breakdown by network-dynamics regime (Record.Dynamics;
	// "" groups under "steady"): how often playback stalled, how often the
	// server switched streams, and what frame rate survived, per condition.
	rebufByDynamics  stats.Grouped
	switchByDynamics stats.Grouped
	fpsByDynamics    stats.Grouped
	failedByDynamics stats.Counter
	playedByDynamics stats.Counter

	// Workload breakdown by server-selection policy (Record.Policy, set
	// only by open-loop runs): startup delay, stalls, and how plays spread
	// across the mirror servers — the load-balance contrast between
	// pinned, RTT, round-robin and least-loaded selection.
	startupByPolicy stats.Grouped
	rebufByPolicy   stats.Grouped
	playedByPolicy  stats.Counter
	failedByPolicy  stats.Counter
	policyServer    stats.Counter // "policy|server" play counts
	// concurDelta is the concurrent-clip time-series sketch: +1 at each
	// clip's start minute, −1 at its end minute (virtual time). The
	// prefix sum over sorted minutes is the concurrency level; memory is
	// bounded by the run's span in minutes, and partials merge by adding
	// deltas.
	concurDelta map[int]int
}

// NewAggregates returns an empty aggregate build.
func NewAggregates() *Aggregates {
	return &Aggregates{
		perUser:   make(map[string]*userTally),
		fpsAll:    stats.NewDist(),
		jitAll:    stats.NewDist(),
		ratingAll: stats.NewDist(),
	}
}

// Aggregate builds the aggregates from an in-memory record slice — the
// compatibility path for small studies and the trace-file analysis tool.
func Aggregate(recs []*trace.Record) *Aggregates {
	a := NewAggregates()
	for _, r := range recs {
		a.Observe(r)
	}
	return a
}

// Observe implements trace.Sink: fold one record into every aggregate.
func (a *Aggregates) Observe(r *trace.Record) {
	a.total++
	t := a.perUser[r.User]
	if t == nil {
		t = &userTally{}
		a.perUser[r.User] = t
	}
	t.plays++
	if r.Rated {
		t.rated++
	}
	if r.Country != "" {
		a.countryAll.Add(r.Country, 1)
	}
	if r.ServerCountry != "" {
		a.serverCountryAll.Add(r.ServerCountry, 1)
	}
	if r.Country == "US" && r.State != "" {
		a.usStateAll.Add(r.State, 1)
	}
	a.serverAttempts.Add(r.Server, 1)
	if r.Unavailable {
		a.unavailable++
		a.serverUnavail.Add(r.Server, 1)
	}
	if r.Failed {
		a.failed++
		a.failedByDynamics.Add(dynCondition(r), 1)
		if r.Policy != "" {
			a.failedByPolicy.Add(r.Policy, 1)
		}
	}
	if r.EndSec > r.StartSec {
		if a.concurDelta == nil {
			a.concurDelta = make(map[int]int)
		}
		a.concurDelta[int(r.StartSec/60)]++
		a.concurDelta[int(r.EndSec/60)]--
	}
	if r.Unavailable || r.Failed {
		return
	}

	// Played-clip aggregates (the denominator of the performance figures).
	a.played++
	a.protoPlayed.Add(r.Protocol, 1)
	fps, kbps, jit := r.MeasuredFPS, r.MeasuredKbps, r.JitterMs
	a.fpsAll.Add(fps)
	a.jitAll.Add(jit)
	if r.Access != "" {
		a.fpsByAccess.Add(r.Access, fps)
		a.kbpsByAccess.Add(r.Access, kbps)
		a.jitByAccess.Add(r.Access, jit)
	}
	if r.ServerRegion != "" {
		a.fpsByServerRegion.Add(r.ServerRegion, fps)
		a.jitByServerRegion.Add(r.ServerRegion, jit)
	}
	if r.Region != "" {
		a.fpsByUserRegion.Add(r.Region, fps)
		a.jitByUserRegion.Add(r.Region, jit)
	}
	if r.Protocol != "" {
		a.fpsByProtocol.Add(r.Protocol, fps)
		a.kbpsByProtocol.Add(r.Protocol, kbps)
		a.jitByProtocol.Add(r.Protocol, jit)
	}
	if r.PCClass != "" {
		a.fpsByPC.Add(r.PCClass, fps)
	}
	a.jitByBand.Add(bandwidthBand(r), jit)
	if r.Policy != "" {
		a.playedByPolicy.Add(r.Policy, 1)
		a.startupByPolicy.Add(r.Policy, r.BufferingTime.Seconds())
		a.rebufByPolicy.Add(r.Policy, float64(r.Rebuffers))
		a.policyServer.Add(r.Policy+"|"+r.Server, 1)
	}
	cond := dynCondition(r)
	a.playedByDynamics.Add(cond, 1)
	a.rebufByDynamics.Add(cond, float64(r.Rebuffers))
	a.switchByDynamics.Add(cond, float64(r.Switches))
	a.fpsByDynamics.Add(cond, fps)

	if !r.Rated {
		return
	}
	a.rated++
	a.ratingAll.Add(r.Rating)
	if r.Access != "" {
		a.ratingByAccess.Add(r.Access, r.Rating)
	}
	a.ratedCorr.Add(kbps, r.Rating)
	if kbps > 250 && r.Rating < 3 {
		a.lowRatedHighBW++
	}
	if len(a.ratedKbps) < ratedPairCap {
		a.ratedKbps = append(a.ratedKbps, kbps)
		a.ratedRating = append(a.ratedRating, r.Rating)
	} else {
		a.ratedPairsDropped++
	}
}

// Merge folds b into a; b is unchanged. Merging partials in a fixed input
// order is deterministic regardless of which workers produced them.
func (a *Aggregates) Merge(b *Aggregates) {
	if b == nil {
		return
	}
	a.total += b.total
	a.played += b.played
	a.rated += b.rated
	a.unavailable += b.unavailable
	a.failed += b.failed
	for u, bt := range b.perUser {
		t := a.perUser[u]
		if t == nil {
			t = &userTally{}
			a.perUser[u] = t
		}
		t.plays += bt.plays
		t.rated += bt.rated
	}
	a.countryAll.Merge(&b.countryAll)
	a.serverCountryAll.Merge(&b.serverCountryAll)
	a.usStateAll.Merge(&b.usStateAll)
	a.serverAttempts.Merge(&b.serverAttempts)
	a.serverUnavail.Merge(&b.serverUnavail)
	a.protoPlayed.Merge(&b.protoPlayed)
	a.fpsAll.Merge(b.fpsAll)
	a.jitAll.Merge(b.jitAll)
	a.ratingAll.Merge(b.ratingAll)
	a.fpsByAccess.Merge(&b.fpsByAccess)
	a.fpsByServerRegion.Merge(&b.fpsByServerRegion)
	a.fpsByUserRegion.Merge(&b.fpsByUserRegion)
	a.fpsByProtocol.Merge(&b.fpsByProtocol)
	a.fpsByPC.Merge(&b.fpsByPC)
	a.kbpsByAccess.Merge(&b.kbpsByAccess)
	a.kbpsByProtocol.Merge(&b.kbpsByProtocol)
	a.jitByAccess.Merge(&b.jitByAccess)
	a.jitByServerRegion.Merge(&b.jitByServerRegion)
	a.jitByUserRegion.Merge(&b.jitByUserRegion)
	a.jitByProtocol.Merge(&b.jitByProtocol)
	a.jitByBand.Merge(&b.jitByBand)
	a.ratingByAccess.Merge(&b.ratingByAccess)
	a.ratedCorr.Merge(b.ratedCorr)
	a.lowRatedHighBW += b.lowRatedHighBW
	a.rebufByDynamics.Merge(&b.rebufByDynamics)
	a.switchByDynamics.Merge(&b.switchByDynamics)
	a.fpsByDynamics.Merge(&b.fpsByDynamics)
	a.failedByDynamics.Merge(&b.failedByDynamics)
	a.playedByDynamics.Merge(&b.playedByDynamics)
	a.startupByPolicy.Merge(&b.startupByPolicy)
	a.rebufByPolicy.Merge(&b.rebufByPolicy)
	a.playedByPolicy.Merge(&b.playedByPolicy)
	a.failedByPolicy.Merge(&b.failedByPolicy)
	a.policyServer.Merge(&b.policyServer)
	for m, d := range b.concurDelta {
		if a.concurDelta == nil {
			a.concurDelta = make(map[int]int)
		}
		a.concurDelta[m] += d
	}
	room := ratedPairCap - len(a.ratedKbps)
	if room > len(b.ratedKbps) {
		room = len(b.ratedKbps)
	}
	a.ratedKbps = append(a.ratedKbps, b.ratedKbps[:room]...)
	a.ratedRating = append(a.ratedRating, b.ratedRating[:room]...)
	a.ratedPairsDropped += b.ratedPairsDropped + len(b.ratedKbps) - room
}

// Total returns the number of clip attempts observed.
func (a *Aggregates) Total() int { return a.total }

// Played returns the number of clips that streamed data.
func (a *Aggregates) Played() int { return a.played }

// Rated returns the watched-and-rated count.
func (a *Aggregates) Rated() int { return a.rated }

// Unavailable returns how many attempts found the clip unavailable.
func (a *Aggregates) Unavailable() int { return a.unavailable }

// Failed returns how many attempts failed outright.
func (a *Aggregates) Failed() int { return a.failed }

// Users returns the number of distinct users observed.
func (a *Aggregates) Users() int { return len(a.perUser) }

// ProtocolPlayed returns the played-clip count for one transport protocol.
func (a *Aggregates) ProtocolPlayed(proto string) int { return a.protoPlayed.Get(proto) }

// FrameRate returns the frame-rate distribution over played clips.
func (a *Aggregates) FrameRate() *stats.Dist { return a.fpsAll }

// Jitter returns the jitter distribution over played clips.
func (a *Aggregates) Jitter() *stats.Dist { return a.jitAll }

// Rating returns the quality-rating distribution over rated clips.
func (a *Aggregates) Rating() *stats.Dist { return a.ratingAll }

// SteadyCondition labels records that played under the static baseline
// Internet in the robustness breakdown.
const SteadyCondition = "steady"

// dynCondition maps a record to its robustness-breakdown key.
func dynCondition(r *trace.Record) string {
	if r.Dynamics == "" {
		return SteadyCondition
	}
	return r.Dynamics
}

// RobustnessRow is one dynamics regime's robustness summary.
type RobustnessRow struct {
	// Condition is the dynamics profile name, or SteadyCondition.
	Condition string
	// Played and Failed count clips under the condition.
	Played, Failed int
	// MeanRebuffers and P90Rebuffers summarize mid-playout stalls.
	MeanRebuffers, P90Rebuffers float64
	// MeanSwitches is the average SureStream switch count — how hard the
	// server worked to ride the weather.
	MeanSwitches float64
	// MeanFPS is the frame rate that survived the condition.
	MeanFPS float64
}

// Robustness returns the per-dynamics-condition robustness breakdown,
// sorted by condition name. One condition per campaign scenario normally;
// merged campaign aggregates carry every regime side by side.
func (a *Aggregates) Robustness() []RobustnessRow {
	// Union the played and failed key sets: a regime harsh enough to fail
	// every clip still earns a row.
	seen := map[string]bool{}
	var keys []string
	for _, k := range a.rebufByDynamics.Keys() {
		seen[k] = true
		keys = append(keys, k)
	}
	for _, k := range a.failedByDynamics.Keys() {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]RobustnessRow, 0, len(keys))
	for _, k := range keys {
		reb := a.rebufByDynamics.Get(k)
		row := RobustnessRow{
			Condition:     k,
			Played:        a.playedByDynamics.Get(k),
			Failed:        a.failedByDynamics.Get(k),
			MeanRebuffers: distMean(reb),
			P90Rebuffers:  distQuantile(reb, 0.9),
			MeanSwitches:  distMean(a.switchByDynamics.Get(k)),
			MeanFPS:       distMean(a.fpsByDynamics.Get(k)),
		}
		out = append(out, row)
	}
	return out
}

// --- shared builder helpers ---

// perUserCounts returns the per-user tallies (all plays, or rated plays)
// sorted ascending — the Figure 5/6 sample.
func (a *Aggregates) perUserCounts(rated bool) []float64 {
	out := make([]float64, 0, len(a.perUser))
	for _, t := range a.perUser {
		if rated {
			out = append(out, float64(t.rated))
		} else {
			out = append(out, float64(t.plays))
		}
	}
	sort.Float64s(out)
	return out
}

// distCDFSeries converts a distribution to a plottable CDF series, the
// streaming replacement for cdfSeries.
func distCDFSeries(label string, d *stats.Dist) Series {
	if d == nil {
		return Series{Label: label}
	}
	c, err := d.CDF()
	if err != nil {
		return Series{Label: label}
	}
	xs, fs := c.Points(64)
	return Series{Label: label, X: xs, Y: fs}
}

// groupedCDF builds one CDF series per group, in the given order (or
// sorted-key order when order is nil), skipping empty groups — the
// streaming replacement for splitCDF.
func groupedCDF(g *stats.Grouped, order []string) []Series {
	if order == nil {
		order = g.Keys()
	}
	var out []Series
	for _, k := range order {
		if d := g.Get(k); d != nil && d.N() > 0 {
			out = append(out, distCDFSeries(k, d))
		}
	}
	return out
}

// barFromCounter renders a tally as a bar series sorted by ascending count
// (ties by label), the streaming replacement for barByKey.
func barFromCounter(c *stats.Counter) Series {
	keys := c.Keys()
	sort.SliceStable(keys, func(i, j int) bool { return c.Get(keys[i]) < c.Get(keys[j]) })
	s := Series{}
	for _, k := range keys {
		s.Labels = append(s.Labels, k)
		s.Y = append(s.Y, float64(c.Get(k)))
	}
	return s
}

// distMean returns the group mean, 0 for an absent group (mirroring
// stats.Mean over an empty slice).
func distMean(d *stats.Dist) float64 {
	if d == nil {
		return 0
	}
	return d.Mean()
}

// distQuantile returns the group quantile, 0 for an absent group.
func distQuantile(d *stats.Dist, q float64) float64 {
	if d == nil {
		return 0
	}
	return d.Quantile(q)
}

// distN returns the group sample count, 0 for an absent group.
func distN(d *stats.Dist) int {
	if d == nil {
		return 0
	}
	return d.N()
}

// --- figure builders (one per paper figure, all single-pass) ---

// Fig05ClipsPerUser: half the users played 40 clips or more.
func (a *Aggregates) Fig05ClipsPerUser() Figure {
	counts := a.perUserCounts(false)
	f := Figure{ID: "fig05", Title: "CDF of video clips played per user",
		XLabel: "Clips Per User", YLabel: "CDF", Kind: KindCDF,
		Series: []Series{cdfSeries("all users", counts)}}
	if s, err := stats.Summarize(counts); err == nil {
		note(&f, "users=%d median clips=%.0f (paper: half played 40+ of 98)", s.N, s.Median)
	}
	return f
}

// Fig06RatedPerUser: half the users rated about 3 clips.
func (a *Aggregates) Fig06RatedPerUser() Figure {
	counts := a.perUserCounts(true)
	f := Figure{ID: "fig06", Title: "CDF of video clips rated per user",
		XLabel: "Rated Clips Per User", YLabel: "CDF", Kind: KindCDF,
		Series: []Series{cdfSeries("all users", counts)}}
	if s, err := stats.Summarize(counts); err == nil {
		note(&f, "median rated=%.0f total rated=%d (paper: median 3, total 388)", s.Median, a.rated)
	}
	return f
}

// Fig07ByUserCountry: the paper's US-dominated country breakdown.
func (a *Aggregates) Fig07ByUserCountry() Figure {
	f := Figure{ID: "fig07", Title: "Clips played by users from each country",
		XLabel: "Country", YLabel: "Number of Clips", Kind: KindBar,
		Series: []Series{barFromCounter(&a.countryAll)}}
	s := f.Series[0]
	if n := len(s.Labels); n > 0 {
		note(&f, "countries=%d top=%s(%.0f) (paper: 12 countries, US 2100)", n, s.Labels[n-1], s.Y[n-1])
	}
	return f
}

// Fig08ByServerCountry: US servers served the most clips.
func (a *Aggregates) Fig08ByServerCountry() Figure {
	f := Figure{ID: "fig08", Title: "Clips served by RealServers from each country",
		XLabel: "Server Country", YLabel: "Number of Clips", Kind: KindBar,
		Series: []Series{barFromCounter(&a.serverCountryAll)}}
	s := f.Series[0]
	if n := len(s.Labels); n > 0 {
		note(&f, "server countries=%d top=%s(%.0f) (paper: 8 countries, US 1075)", n, s.Labels[n-1], s.Y[n-1])
	}
	return f
}

// Fig09ByUSState: Massachusetts dominates.
func (a *Aggregates) Fig09ByUSState() Figure {
	f := Figure{ID: "fig09", Title: "Clips played by U.S. users from each state",
		XLabel: "State", YLabel: "Number of Clips", Kind: KindBar,
		Series: []Series{barFromCounter(&a.usStateAll)}}
	s := f.Series[0]
	if n := len(s.Labels); n > 0 {
		note(&f, "states=%d top=%s(%.0f) (paper: MA dominant)", n, s.Labels[n-1], s.Y[n-1])
	}
	return f
}

// Fig10Unavailable: about 10% of clip requests found the clip unavailable.
func (a *Aggregates) Fig10Unavailable() Figure {
	servers := a.serverAttempts.Keys()
	s := Series{}
	var totalA, totalU int
	for _, srv := range servers {
		att, un := a.serverAttempts.Get(srv), a.serverUnavail.Get(srv)
		s.Labels = append(s.Labels, srv)
		s.Y = append(s.Y, float64(un)/float64(att))
		totalA += att
		totalU += un
	}
	f := Figure{ID: "fig10", Title: "Fraction of unavailable clips per server",
		XLabel: "Real Server", YLabel: "Fraction Not Available", Kind: KindBar,
		Series: []Series{s}}
	note(&f, "overall unavailability=%.1f%% (paper: about 10%%)", 100*float64(totalU)/float64(totalA))
	return f
}

// Fig11FrameRateAll: mean ~10 fps; ~25% under 3 fps; ~25% at 15+; <1% at
// full motion.
func (a *Aggregates) Fig11FrameRateAll() Figure {
	f := Figure{ID: "fig11", Title: "CDF of frame rate for all video clips",
		XLabel: "Frame Rate (fps)", YLabel: "CDF", Kind: KindCDF,
		Series: []Series{distCDFSeries("all clips", a.fpsAll)}}
	if c, err := a.fpsAll.CDF(); err == nil {
		s, _ := a.fpsAll.Summary()
		note(&f, "mean=%.1f fps (paper 10)", s.Mean)
		note(&f, "below 3 fps: %.0f%% (paper ~25%%)", 100*c.FractionBelow(3))
		note(&f, "at least 15 fps: %.0f%% (paper ~25%%)", 100*c.FractionAtLeast(15))
		note(&f, "at least 24 fps: %.1f%% (paper <1%%)", 100*c.FractionAtLeast(24))
	}
	return f
}

// Fig12FrameRateByAccess: modems far worse; DSL/Cable roughly matches
// T1/LAN.
func (a *Aggregates) Fig12FrameRateByAccess() Figure {
	f := Figure{ID: "fig12", Title: "CDF of frame rate by end-host network configuration",
		XLabel: "Frame Rate (fps)", YLabel: "CDF", Kind: KindCDF,
		Series: groupedCDF(&a.fpsByAccess, AccessOrder)}
	for _, s := range f.Series {
		if len(s.X) == 0 {
			continue
		}
		d := a.fpsByAccess.Get(s.Label)
		c, err := d.CDF()
		if err != nil {
			continue
		}
		note(&f, "%s: below 3 fps %.0f%%, 15+ fps %.0f%%", s.Label, 100*c.FractionBelow(3), 100*c.FractionAtLeast(15))
	}
	note(&f, "paper: modems >50%% below 3 fps and <10%% at 15 fps; broadband ~20%% below 3, ~30%% at 15")
	return f
}

// Fig13BandwidthByAccess: DSL/Cable rarely operates near capacity.
func (a *Aggregates) Fig13BandwidthByAccess() Figure {
	f := Figure{ID: "fig13", Title: "CDF of bandwidth by end-host network configuration",
		XLabel: "Average Bandwidth (Kbps)", YLabel: "CDF", Kind: KindCDF,
		Series: groupedCDF(&a.kbpsByAccess, AccessOrder)}
	if d := a.kbpsByAccess.Get("DSL/Cable"); d != nil {
		if c, err := d.CDF(); err == nil {
			note(&f, "DSL/Cable at 256+ Kbps: %.0f%% of clips (paper: near capacity <10%% of the time)", 100*c.FractionAtLeast(256))
		}
	}
	return f
}

// Fig14FrameRateByServerRegion: server regions differ only slightly.
func (a *Aggregates) Fig14FrameRateByServerRegion() Figure {
	f := Figure{ID: "fig14", Title: "CDF of frame rate by server geographic region",
		XLabel: "Frame Rate (fps)", YLabel: "CDF", Kind: KindCDF,
		Series: groupedCDF(&a.fpsByServerRegion, ServerRegionOrder)}
	var best, worst string
	bestV, worstV := -1.0, 1e9
	for _, reg := range ServerRegionOrder {
		d := a.fpsByServerRegion.Get(reg)
		if distN(d) == 0 {
			continue
		}
		m := d.Mean()
		note(&f, "%s: mean %.1f fps (n=%d)", reg, m, d.N())
		if m > bestV {
			bestV, best = m, reg
		}
		if m < worstV {
			worstV, worst = m, reg
		}
	}
	note(&f, "best=%s(%.1f) worst=%s(%.1f) (paper: best ~13, worst ~8; all regions similar)", best, bestV, worst, worstV)
	return f
}

// Fig15FrameRateByUserRegion: user region clearly differentiates.
func (a *Aggregates) Fig15FrameRateByUserRegion() Figure {
	f := Figure{ID: "fig15", Title: "CDF of frame rate by user geographic region",
		XLabel: "Frame Rate (fps)", YLabel: "CDF", Kind: KindCDF,
		Series: groupedCDF(&a.fpsByUserRegion, UserRegionOrder)}
	for _, reg := range UserRegionOrder {
		if d := a.fpsByUserRegion.Get(reg); d != nil {
			if c, err := d.CDF(); err == nil {
				note(&f, "%s: below 3 fps %.0f%%, 15+ %.0f%% (n=%d)", reg, 100*c.FractionBelow(3), 100*c.FractionAtLeast(15), d.N())
			}
		}
	}
	note(&f, "paper: Australia/NZ worst (75%% below 3 fps); Europe best up to 15 fps")
	return f
}

// Fig16ProtocolMix: over half UDP, 44% TCP.
func (a *Aggregates) Fig16ProtocolMix() Figure {
	total := float64(a.played)
	tcp, udp := float64(a.protoPlayed.Get("TCP")), float64(a.protoPlayed.Get("UDP"))
	f := Figure{ID: "fig16", Title: "Fraction of transport protocols observed",
		Kind: KindPie, Series: []Series{{
			Labels: []string{"TCP", "UDP"},
			Y:      []float64{tcp / total, udp / total},
		}}}
	note(&f, "TCP %.0f%% / UDP %.0f%% (paper: TCP 44%%, UDP just over half)",
		100*tcp/total, 100*udp/total)
	return f
}

// Fig17FrameRateByProtocol: distributions nearly identical.
func (a *Aggregates) Fig17FrameRateByProtocol() Figure {
	f := Figure{ID: "fig17", Title: "CDF of frame rate by transport protocol",
		XLabel: "Frame Rate (fps)", YLabel: "CDF", Kind: KindCDF,
		Series: groupedCDF(&a.fpsByProtocol, ProtocolOrder)}
	for _, proto := range ProtocolOrder {
		if d := a.fpsByProtocol.Get(proto); d != nil {
			if c, err := d.CDF(); err == nil {
				note(&f, "%s: below 3 fps %.0f%% (paper: TCP ~28%%, UDP ~22%%)", proto, 100*c.FractionBelow(3))
			}
		}
	}
	return f
}

// Fig18BandwidthByProtocol: UDP bandwidth comparable to TCP's over a clip.
func (a *Aggregates) Fig18BandwidthByProtocol() Figure {
	f := Figure{ID: "fig18", Title: "CDF of bandwidth by transport protocol",
		XLabel: "Average Bandwidth (Kbps)", YLabel: "CDF", Kind: KindCDF,
		Series: groupedCDF(&a.kbpsByProtocol, ProtocolOrder)}
	for _, proto := range ProtocolOrder {
		d := a.kbpsByProtocol.Get(proto)
		note(&f, "%s: mean %.0f Kbps median %.0f", proto, distMean(d), distQuantile(d, 0.5))
	}
	note(&f, "paper: UDP slightly higher than TCP except at the very low end")
	return f
}

// Fig19FrameRateByPC: only the oldest machines are the bottleneck.
func (a *Aggregates) Fig19FrameRateByPC() Figure {
	f := Figure{ID: "fig19", Title: "CDF of frame rate by user PC class",
		XLabel: "Frame Rate (fps)", YLabel: "CDF", Kind: KindCDF,
		Series: groupedCDF(&a.fpsByPC, nil)}
	for _, s := range f.Series {
		if d := a.fpsByPC.Get(s.Label); d != nil {
			if c, err := d.CDF(); err == nil {
				note(&f, "%s: above 3 fps %.0f%% (n=%d)", s.Label, 100*c.FractionAtLeast(3), d.N())
			}
		}
	}
	note(&f, "paper: old Pentium MMX machines above 3 fps only 10-20%% of the time; others not the bottleneck")
	return f
}

// Fig20JitterAll: >50% play with imperceptible jitter; ~15% exceed 300 ms.
func (a *Aggregates) Fig20JitterAll() Figure {
	f := Figure{ID: "fig20", Title: "CDF of overall jitter",
		XLabel: "Jitter (ms)", YLabel: "CDF (%)", Kind: KindCDF,
		Series: []Series{distCDFSeries("all clips", a.jitAll)}}
	if c, err := a.jitAll.CDF(); err == nil {
		note(&f, "at or under 50 ms: %.0f%% (paper ~52%%)", 100*c.At(50))
		note(&f, "at or over 300 ms: %.0f%% (paper ~15%%)", 100*c.FractionAtLeast(300))
	}
	return f
}

// Fig21JitterByAccess: modems much worse; DSL slightly beats T1.
func (a *Aggregates) Fig21JitterByAccess() Figure {
	f := Figure{ID: "fig21", Title: "CDF of jitter by network configuration",
		XLabel: "Jitter (ms)", YLabel: "CDF (%)", Kind: KindCDF,
		Series: groupedCDF(&a.jitByAccess, AccessOrder)}
	for _, acc := range AccessOrder {
		if d := a.jitByAccess.Get(acc); d != nil {
			if c, err := d.CDF(); err == nil {
				note(&f, "%s: <=50ms %.0f%%, >=300ms %.0f%%", acc, 100*c.At(50), 100*c.FractionAtLeast(300))
			}
		}
	}
	note(&f, "paper: modem jitter-free ~10%% and unacceptable ~45%%; DSL 15%% vs T1 20%% at 300ms")
	return f
}

// Fig22JitterByServerRegion: Asia worst; others comparable.
func (a *Aggregates) Fig22JitterByServerRegion() Figure {
	f := Figure{ID: "fig22", Title: "CDF of jitter by server geographic region",
		XLabel: "Jitter (ms)", YLabel: "CDF (%)", Kind: KindCDF,
		Series: groupedCDF(&a.jitByServerRegion, ServerRegionOrder)}
	for _, reg := range ServerRegionOrder {
		if d := a.jitByServerRegion.Get(reg); d != nil {
			if c, err := d.CDF(); err == nil {
				note(&f, "%s: imperceptible (<=50ms) %.0f%%", reg, 100*c.At(50))
			}
		}
	}
	note(&f, "paper: Asia worst (~45%% imperceptible vs ~55%% elsewhere)")
	return f
}

// Fig23JitterByUserRegion: Australia/NZ worst again.
func (a *Aggregates) Fig23JitterByUserRegion() Figure {
	f := Figure{ID: "fig23", Title: "CDF of jitter by user geographic region",
		XLabel: "Jitter (ms)", YLabel: "CDF (%)", Kind: KindCDF,
		Series: groupedCDF(&a.jitByUserRegion, UserRegionOrder)}
	for _, reg := range UserRegionOrder {
		if d := a.jitByUserRegion.Get(reg); d != nil {
			if c, err := d.CDF(); err == nil {
				note(&f, "%s: <=50ms %.0f%%, >=300ms %.0f%%", reg, 100*c.At(50), 100*c.FractionAtLeast(300))
			}
		}
	}
	note(&f, "paper: Australia/NZ worst over both limits; Europe and North America comparable")
	return f
}

// Fig24JitterByProtocol: TCP and UDP nearly identical smoothness.
func (a *Aggregates) Fig24JitterByProtocol() Figure {
	f := Figure{ID: "fig24", Title: "CDF of jitter by transport protocol",
		XLabel: "Jitter (ms)", YLabel: "CDF (%)", Kind: KindCDF,
		Series: groupedCDF(&a.jitByProtocol, ProtocolOrder)}
	for _, proto := range ProtocolOrder {
		if d := a.jitByProtocol.Get(proto); d != nil {
			if c, err := d.CDF(); err == nil {
				note(&f, "%s: <=50ms %.0f%%", proto, 100*c.At(50))
			}
		}
	}
	note(&f, "paper: both protocols provide nearly identical smoothness")
	return f
}

// Fig25JitterByBandwidth: strong correlation between bandwidth and jitter.
func (a *Aggregates) Fig25JitterByBandwidth() Figure {
	f := Figure{ID: "fig25", Title: "CDF of jitter by observed bandwidth",
		XLabel: "Jitter (ms)", YLabel: "CDF (%)", Kind: KindCDF,
		Series: groupedCDF(&a.jitByBand, BandwidthBands)}
	for _, band := range BandwidthBands {
		if d := a.jitByBand.Get(band); d != nil {
			if c, err := d.CDF(); err == nil {
				note(&f, "%s: jitter-free %.0f%%, acceptable(<300ms) %.0f%% (n=%d)", band, 100*c.At(50), 100*c.FractionBelow(300), d.N())
			}
		}
	}
	note(&f, "paper: low bandwidth ~10%% jitter free / 20%% acceptable; high bandwidth ~80%% / ~95%%")
	return f
}

// Fig26QualityAll: ratings look uniform with mean ~5.
func (a *Aggregates) Fig26QualityAll() Figure {
	f := Figure{ID: "fig26", Title: "CDF of overall quality rating",
		XLabel: "Quality Rating", YLabel: "CDF", Kind: KindCDF,
		Series: []Series{distCDFSeries("rated clips", a.ratingAll)}}
	if s, err := a.ratingAll.Summary(); err == nil {
		note(&f, "n=%d mean=%.1f (paper: ~388 ratings, mean ~5, near-uniform distribution)", s.N, s.Mean)
	}
	return f
}

// Fig27QualityByAccess: modem quality about half of DSL; DSL beats T1.
func (a *Aggregates) Fig27QualityByAccess() Figure {
	f := Figure{ID: "fig27", Title: "CDF of quality by network configuration",
		XLabel: "Quality Rating", YLabel: "CDF", Kind: KindCDF,
		Series: groupedCDF(&a.ratingByAccess, AccessOrder)}
	for _, acc := range AccessOrder {
		if d := a.ratingByAccess.Get(acc); distN(d) > 0 {
			note(&f, "%s: mean rating %.1f (n=%d)", acc, d.Mean(), d.N())
		}
	}
	note(&f, "paper: modem ratings about half of DSL/Cable; DSL slightly above LAN/T1")
	return f
}

// Fig28QualityVsBandwidth: weak correlation; no low ratings at high
// bandwidth.
func (a *Aggregates) Fig28QualityVsBandwidth() Figure {
	xs, ys := a.ratedKbps, a.ratedRating
	f := Figure{ID: "fig28", Title: "Quality rating vs network bandwidth",
		XLabel: "Average Bandwidth (Kbps)", YLabel: "Quality Rating", Kind: KindScatter,
		Series: []Series{{Label: "clips", X: xs, Y: ys}}}
	centers, means := stats.ScatterBin(xs, ys, 8)
	f.Series = append(f.Series, Series{Label: "binned mean", X: centers, Y: means})
	var r float64
	if a.ratedPairsDropped > 0 {
		// The retained point cloud is only a prefix sample; the streamed
		// co-moments cover every pair.
		r = a.ratedCorr.R()
	} else {
		r = stats.Pearson(xs, ys)
	}
	note(&f, "pearson r=%.2f (paper: no strong visual correlation, slight upward trend)", r)
	note(&f, "ratings <3 at >250 Kbps: %d (paper: notable lack of low ratings at high bandwidth)", a.lowRatedHighBW)
	if a.ratedPairsDropped > 0 {
		note(&f, "scatter shows first %d of %d rated clips (correlation covers all)", len(xs), a.rated)
	}
	return f
}
