package figures

import (
	"bytes"
	"math/rand"
	"testing"

	"realtracer/internal/trace"
)

// renderFigures renders every figure built from agg into one buffer.
func renderFromAgg(agg *Aggregates) []byte {
	var buf bytes.Buffer
	for _, g := range All() {
		g.Agg(agg).Render(&buf)
	}
	return buf.Bytes()
}

// TestStreamedAggregatesMatchBatch: observing records one at a time through
// the Sink interface must produce exactly the figures the batch slice path
// produces.
func TestStreamedAggregatesMatchBatch(t *testing.T) {
	recs := synthetic()
	streamed := NewAggregates()
	var sink trace.Sink = streamed // prove Aggregates satisfies trace.Sink
	for _, r := range recs {
		sink.Observe(r)
	}
	batch := renderFromAgg(Aggregate(recs))
	if got := renderFromAgg(streamed); !bytes.Equal(got, batch) {
		t.Fatal("streamed aggregates render differently from batch aggregates")
	}
	// And both must match the classic Build path.
	var classic bytes.Buffer
	for _, g := range All() {
		g.Build(recs).Render(&classic)
	}
	if !bytes.Equal(classic.Bytes(), batch) {
		t.Fatal("Build(recs) renders differently from shared-aggregate path")
	}
}

// TestAggregatesMergePartitions: partitioning the stream into partial
// aggregates and merging them in input order must reproduce the
// single-aggregate result — the campaign's per-scenario merge contract.
func TestAggregatesMergePartitions(t *testing.T) {
	recs := synthetic()
	whole := Aggregate(recs)
	want := renderFromAgg(whole)
	for _, parts := range []int{2, 3, 7} {
		partials := make([]*Aggregates, parts)
		for i := range partials {
			partials[i] = NewAggregates()
		}
		for i, r := range recs {
			partials[i%parts].Observe(r)
		}
		merged := NewAggregates()
		for _, p := range partials {
			merged.Merge(p)
		}
		if merged.Total() != whole.Total() || merged.Played() != whole.Played() ||
			merged.Rated() != whole.Rated() || merged.Users() != whole.Users() {
			t.Fatalf("parts=%d: headline counts differ after merge", parts)
		}
		if got := renderFromAgg(merged); !bytes.Equal(got, want) {
			t.Fatalf("parts=%d: merged aggregates render differently", parts)
		}
	}
}

func TestAggregatesCounts(t *testing.T) {
	a := NewAggregates()
	a.Observe(&trace.Record{User: "u1", Country: "US", State: "MA", Protocol: "TCP", MeasuredFPS: 10})
	a.Observe(&trace.Record{User: "u1", Country: "US", State: "MA", Unavailable: true, Server: "s"})
	a.Observe(&trace.Record{User: "u2", Country: "UK", Protocol: "UDP", MeasuredFPS: 5,
		MeasuredKbps: 300, Rated: true, Rating: 8, Access: "T1/LAN"})
	a.Observe(&trace.Record{User: "u3", Country: "UK", Failed: true})
	if a.Total() != 4 || a.Played() != 2 || a.Rated() != 1 ||
		a.Unavailable() != 1 || a.Failed() != 1 || a.Users() != 3 {
		t.Fatalf("counts wrong: total=%d played=%d rated=%d unavail=%d failed=%d users=%d",
			a.Total(), a.Played(), a.Rated(), a.Unavailable(), a.Failed(), a.Users())
	}
	if a.ProtocolPlayed("TCP") != 1 || a.ProtocolPlayed("UDP") != 1 {
		t.Fatal("protocol tallies wrong")
	}
	if a.FrameRate().N() != 2 || a.Jitter().N() != 2 || a.Rating().N() != 1 {
		t.Fatal("distribution counts wrong")
	}
}

// TestAggregatesPopulationScale exercises the binned sketch path: far more
// records than the exact cap, where the old slice-based generators would
// have held every record. The figures must still come out self-consistent.
func TestAggregatesPopulationScale(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := NewAggregates()
	const n = 30000
	for i := 0; i < n; i++ {
		r := &trace.Record{
			User:         "u" + string(rune('A'+i%700)),
			Country:      "US",
			State:        "MA",
			Region:       "US/Canada",
			ServerRegion: "Europe",
			Server:       "srv",
			Access:       AccessOrder[i%3],
			PCClass:      "Pentium III / 256-512MB",
			Protocol:     ProtocolOrder[i%2],
			MeasuredFPS:  rng.Float64() * 30,
			MeasuredKbps: rng.Float64() * 500,
			JitterMs:     rng.Float64() * 600,
		}
		if i%9 == 0 {
			r.Rated, r.Rating = true, float64(rng.Intn(11))
		}
		a.Observe(r)
	}
	if a.FrameRate().S.IsExact() {
		t.Fatal("30k samples should have promoted the sketch")
	}
	// Median of uniform(0,30) must be close to 15 even on the binned path.
	if med := a.FrameRate().Quantile(0.5); med < 14 || med > 16 {
		t.Fatalf("binned median fps %v implausible for uniform(0,30)", med)
	}
	var buf bytes.Buffer
	for _, g := range All() {
		fig := g.Agg(a)
		if len(fig.Series) == 0 {
			t.Fatalf("%s: no series at population scale", g.ID)
		}
		fig.Render(&buf)
	}
	if buf.Len() == 0 {
		t.Fatal("render produced nothing")
	}
}

func TestAggregatesEmpty(t *testing.T) {
	a := NewAggregates()
	for _, g := range All() {
		var buf bytes.Buffer
		g.Agg(a).Render(&buf) // must not panic
	}
	b := NewAggregates()
	a.Merge(b) // merging empties must not panic
	if a.Total() != 0 {
		t.Fatal("empty merge produced records")
	}
}
