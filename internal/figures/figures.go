// Package figures regenerates every figure of the paper's evaluation from a
// set of trace records: the demographic breakdowns (Figures 5-10), the
// frame-rate analysis (11, 12, 14, 15, 17, 19), bandwidth (13, 18), the
// transport mix (16), jitter (20-25) and perceptual quality (26-28).
//
// Each generator returns a Figure holding plottable series plus summary
// notes; Render prints it as an ASCII table the way the paper's graphs read.
package figures

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"realtracer/internal/stats"
	"realtracer/internal/trace"
)

// Kind describes how a figure is plotted.
type Kind string

// Figure kinds.
const (
	KindCDF     Kind = "cdf"
	KindBar     Kind = "bar"
	KindPie     Kind = "pie"
	KindScatter Kind = "scatter"
	KindSeries  Kind = "timeseries"
)

// Series is one labeled line/bar-set of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
	// Labels substitutes for X on categorical (bar) figures.
	Labels []string
}

// Figure is a regenerated paper figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Kind   Kind
	Series []Series
	// Notes carries the scalar observations the paper calls out in prose.
	Notes []string
}

func note(f *Figure, format string, args ...any) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// cdfSeries converts samples to a CDF series sampled densely enough to
// plot.
func cdfSeries(label string, samples []float64) Series {
	c, err := stats.NewCDF(samples)
	if err != nil {
		return Series{Label: label}
	}
	xs, fs := c.Points(64)
	return Series{Label: label, X: xs, Y: fs}
}

// Generator builds a figure from study records.
type Generator struct {
	ID    string
	Title string
	Build func(recs []*trace.Record) Figure
}

// All lists every record-driven figure generator in paper order. (Figure 1
// is a single-session timeline, produced by core.Fig01Timeline.)
func All() []Generator {
	return []Generator{
		{"fig05", "CDF of video clips played per user", Fig05ClipsPerUser},
		{"fig06", "CDF of video clips rated per user", Fig06RatedPerUser},
		{"fig07", "Clips played by users from each country", Fig07ByUserCountry},
		{"fig08", "Clips served by RealServers from each country", Fig08ByServerCountry},
		{"fig09", "Clips played by U.S. users from each state", Fig09ByUSState},
		{"fig10", "Fraction of unavailable clips per server", Fig10Unavailable},
		{"fig11", "CDF of frame rate for all video clips", Fig11FrameRateAll},
		{"fig12", "CDF of frame rate by end-host network configuration", Fig12FrameRateByAccess},
		{"fig13", "CDF of bandwidth by end-host network configuration", Fig13BandwidthByAccess},
		{"fig14", "CDF of frame rate by server geographic region", Fig14FrameRateByServerRegion},
		{"fig15", "CDF of frame rate by user geographic region", Fig15FrameRateByUserRegion},
		{"fig16", "Fraction of transport protocols observed", Fig16ProtocolMix},
		{"fig17", "CDF of frame rate by transport protocol", Fig17FrameRateByProtocol},
		{"fig18", "CDF of bandwidth by transport protocol", Fig18BandwidthByProtocol},
		{"fig19", "CDF of frame rate by user PC class", Fig19FrameRateByPC},
		{"fig20", "CDF of overall jitter", Fig20JitterAll},
		{"fig21", "CDF of jitter by network configuration", Fig21JitterByAccess},
		{"fig22", "CDF of jitter by server geographic region", Fig22JitterByServerRegion},
		{"fig23", "CDF of jitter by user geographic region", Fig23JitterByUserRegion},
		{"fig24", "CDF of jitter by transport protocol", Fig24JitterByProtocol},
		{"fig25", "CDF of jitter by observed bandwidth", Fig25JitterByBandwidth},
		{"fig26", "CDF of overall quality rating", Fig26QualityAll},
		{"fig27", "CDF of quality by network configuration", Fig27QualityByAccess},
		{"fig28", "Quality rating vs network bandwidth", Fig28QualityVsBandwidth},
	}
}

// ByID returns the generator for an id like "fig11".
func ByID(id string) (Generator, bool) {
	for _, g := range All() {
		if g.ID == id {
			return g, true
		}
	}
	return Generator{}, false
}

// perUserCounts tallies records per user under pred.
func perUserCounts(recs []*trace.Record, pred func(*trace.Record) bool) []float64 {
	counts := map[string]int{}
	users := map[string]bool{}
	for _, r := range recs {
		users[r.User] = true
		if pred(r) {
			counts[r.User]++
		}
	}
	out := make([]float64, 0, len(users))
	for u := range users {
		out = append(out, float64(counts[u]))
	}
	sort.Float64s(out)
	return out
}

// Fig05ClipsPerUser: half the users played 40 clips or more.
func Fig05ClipsPerUser(recs []*trace.Record) Figure {
	counts := perUserCounts(recs, func(*trace.Record) bool { return true })
	f := Figure{ID: "fig05", Title: "CDF of video clips played per user",
		XLabel: "Clips Per User", YLabel: "CDF", Kind: KindCDF,
		Series: []Series{cdfSeries("all users", counts)}}
	if s, err := stats.Summarize(counts); err == nil {
		note(&f, "users=%d median clips=%.0f (paper: half played 40+ of 98)", s.N, s.Median)
	}
	return f
}

// Fig06RatedPerUser: half the users rated about 3 clips.
func Fig06RatedPerUser(recs []*trace.Record) Figure {
	counts := perUserCounts(recs, func(r *trace.Record) bool { return r.Rated })
	f := Figure{ID: "fig06", Title: "CDF of video clips rated per user",
		XLabel: "Rated Clips Per User", YLabel: "CDF", Kind: KindCDF,
		Series: []Series{cdfSeries("all users", counts)}}
	if s, err := stats.Summarize(counts); err == nil {
		note(&f, "median rated=%.0f total rated=%d (paper: median 3, total 388)", s.Median, len(trace.Rated(recs)))
	}
	return f
}

func barByKey(recs []*trace.Record, key func(*trace.Record) string) Series {
	counts := map[string]int{}
	for _, r := range recs {
		k := key(r)
		if k != "" {
			counts[k]++
		}
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return counts[keys[i]] < counts[keys[j]] })
	s := Series{}
	for _, k := range keys {
		s.Labels = append(s.Labels, k)
		s.Y = append(s.Y, float64(counts[k]))
	}
	return s
}

// Fig07ByUserCountry: the paper's US-dominated country breakdown.
func Fig07ByUserCountry(recs []*trace.Record) Figure {
	f := Figure{ID: "fig07", Title: "Clips played by users from each country",
		XLabel: "Country", YLabel: "Number of Clips", Kind: KindBar,
		Series: []Series{barByKey(recs, func(r *trace.Record) string { return r.Country })}}
	s := f.Series[0]
	if n := len(s.Labels); n > 0 {
		note(&f, "countries=%d top=%s(%.0f) (paper: 12 countries, US 2100)", n, s.Labels[n-1], s.Y[n-1])
	}
	return f
}

// Fig08ByServerCountry: US servers served the most clips.
func Fig08ByServerCountry(recs []*trace.Record) Figure {
	f := Figure{ID: "fig08", Title: "Clips served by RealServers from each country",
		XLabel: "Server Country", YLabel: "Number of Clips", Kind: KindBar,
		Series: []Series{barByKey(recs, func(r *trace.Record) string { return r.ServerCountry })}}
	s := f.Series[0]
	if n := len(s.Labels); n > 0 {
		note(&f, "server countries=%d top=%s(%.0f) (paper: 8 countries, US 1075)", n, s.Labels[n-1], s.Y[n-1])
	}
	return f
}

// Fig09ByUSState: Massachusetts dominates.
func Fig09ByUSState(recs []*trace.Record) Figure {
	us := trace.Filter(recs, func(r *trace.Record) bool { return r.Country == "US" })
	f := Figure{ID: "fig09", Title: "Clips played by U.S. users from each state",
		XLabel: "State", YLabel: "Number of Clips", Kind: KindBar,
		Series: []Series{barByKey(us, func(r *trace.Record) string { return r.State })}}
	s := f.Series[0]
	if n := len(s.Labels); n > 0 {
		note(&f, "states=%d top=%s(%.0f) (paper: MA dominant)", n, s.Labels[n-1], s.Y[n-1])
	}
	return f
}

// Fig10Unavailable: about 10% of clip requests found the clip unavailable.
func Fig10Unavailable(recs []*trace.Record) Figure {
	attempts := map[string]int{}
	unavail := map[string]int{}
	for _, r := range recs {
		attempts[r.Server]++
		if r.Unavailable {
			unavail[r.Server]++
		}
	}
	servers := make([]string, 0, len(attempts))
	for s := range attempts {
		servers = append(servers, s)
	}
	sort.Strings(servers)
	s := Series{}
	var totalA, totalU int
	for _, srv := range servers {
		s.Labels = append(s.Labels, srv)
		s.Y = append(s.Y, float64(unavail[srv])/float64(attempts[srv]))
		totalA += attempts[srv]
		totalU += unavail[srv]
	}
	f := Figure{ID: "fig10", Title: "Fraction of unavailable clips per server",
		XLabel: "Real Server", YLabel: "Fraction Not Available", Kind: KindBar,
		Series: []Series{s}}
	note(&f, "overall unavailability=%.1f%% (paper: about 10%%)", 100*float64(totalU)/float64(totalA))
	return f
}

// fpsOf / kbpsOf / jitterOf / ratingOf are the column extractors.
func fpsOf(r *trace.Record) float64    { return r.MeasuredFPS }
func kbpsOf(r *trace.Record) float64   { return r.MeasuredKbps }
func jitterOf(r *trace.Record) float64 { return r.JitterMs }
func ratingOf(r *trace.Record) float64 { return r.Rating }

// Fig11FrameRateAll: mean ~10 fps; ~25% under 3 fps; ~25% at 15+; <1% at
// full motion.
func Fig11FrameRateAll(recs []*trace.Record) Figure {
	fps := trace.Values(trace.Played(recs), fpsOf)
	f := Figure{ID: "fig11", Title: "CDF of frame rate for all video clips",
		XLabel: "Frame Rate (fps)", YLabel: "CDF", Kind: KindCDF,
		Series: []Series{cdfSeries("all clips", fps)}}
	if c, err := stats.NewCDF(fps); err == nil {
		s, _ := stats.Summarize(fps)
		note(&f, "mean=%.1f fps (paper 10)", s.Mean)
		note(&f, "below 3 fps: %.0f%% (paper ~25%%)", 100*c.FractionBelow(3))
		note(&f, "at least 15 fps: %.0f%% (paper ~25%%)", 100*c.FractionAtLeast(15))
		note(&f, "at least 24 fps: %.1f%% (paper <1%%)", 100*c.FractionAtLeast(24))
	}
	return f
}

// splitCDF builds one CDF series per group value.
func splitCDF(recs []*trace.Record, get func(*trace.Record) float64, group func(*trace.Record) string, order []string) []Series {
	buckets := map[string][]float64{}
	for _, r := range recs {
		g := group(r)
		if g == "" {
			continue
		}
		buckets[g] = append(buckets[g], get(r))
	}
	var out []Series
	if order == nil {
		for g := range buckets {
			order = append(order, g)
		}
		sort.Strings(order)
	}
	for _, g := range order {
		if len(buckets[g]) > 0 {
			out = append(out, cdfSeries(g, buckets[g]))
		}
	}
	return out
}

// AccessOrder is the paper's access-class ordering.
var AccessOrder = []string{"56k Modem", "DSL/Cable", "T1/LAN"}

// Fig12FrameRateByAccess: modems far worse; DSL/Cable roughly matches
// T1/LAN.
func Fig12FrameRateByAccess(recs []*trace.Record) Figure {
	played := trace.Played(recs)
	f := Figure{ID: "fig12", Title: "CDF of frame rate by end-host network configuration",
		XLabel: "Frame Rate (fps)", YLabel: "CDF", Kind: KindCDF,
		Series: splitCDF(played, fpsOf, func(r *trace.Record) string { return r.Access }, AccessOrder)}
	for _, s := range f.Series {
		if len(s.X) == 0 {
			continue
		}
		vals := valuesFor(played, fpsOf, func(r *trace.Record) bool { return r.Access == s.Label })
		c, err := stats.NewCDF(vals)
		if err != nil {
			continue
		}
		note(&f, "%s: below 3 fps %.0f%%, 15+ fps %.0f%%", s.Label, 100*c.FractionBelow(3), 100*c.FractionAtLeast(15))
	}
	note(&f, "paper: modems >50%% below 3 fps and <10%% at 15 fps; broadband ~20%% below 3, ~30%% at 15")
	return f
}

func valuesFor(recs []*trace.Record, get func(*trace.Record) float64, pred func(*trace.Record) bool) []float64 {
	return trace.Values(trace.Filter(recs, pred), get)
}

// Fig13BandwidthByAccess: DSL/Cable rarely operates near capacity.
func Fig13BandwidthByAccess(recs []*trace.Record) Figure {
	played := trace.Played(recs)
	f := Figure{ID: "fig13", Title: "CDF of bandwidth by end-host network configuration",
		XLabel: "Average Bandwidth (Kbps)", YLabel: "CDF", Kind: KindCDF,
		Series: splitCDF(played, kbpsOf, func(r *trace.Record) string { return r.Access }, AccessOrder)}
	dsl := valuesFor(played, kbpsOf, func(r *trace.Record) bool { return r.Access == "DSL/Cable" })
	if c, err := stats.NewCDF(dsl); err == nil {
		note(&f, "DSL/Cable at 256+ Kbps: %.0f%% of clips (paper: near capacity <10%% of the time)", 100*c.FractionAtLeast(256))
	}
	return f
}

// ServerRegionOrder and UserRegionOrder follow the paper's legends.
var (
	ServerRegionOrder = []string{"Asia", "Brazil", "US/Canada", "Australia", "Europe"}
	UserRegionOrder   = []string{"Australia", "US/Canada", "Asia", "Europe"}
)

// Fig14FrameRateByServerRegion: server regions differ only slightly.
func Fig14FrameRateByServerRegion(recs []*trace.Record) Figure {
	played := trace.Played(recs)
	f := Figure{ID: "fig14", Title: "CDF of frame rate by server geographic region",
		XLabel: "Frame Rate (fps)", YLabel: "CDF", Kind: KindCDF,
		Series: splitCDF(played, fpsOf, func(r *trace.Record) string { return r.ServerRegion }, ServerRegionOrder)}
	var best, worst string
	bestV, worstV := -1.0, 1e9
	for _, reg := range ServerRegionOrder {
		vals := valuesFor(played, fpsOf, func(r *trace.Record) bool { return r.ServerRegion == reg })
		if len(vals) == 0 {
			continue
		}
		m := stats.Mean(vals)
		note(&f, "%s: mean %.1f fps (n=%d)", reg, m, len(vals))
		if m > bestV {
			bestV, best = m, reg
		}
		if m < worstV {
			worstV, worst = m, reg
		}
	}
	note(&f, "best=%s(%.1f) worst=%s(%.1f) (paper: best ~13, worst ~8; all regions similar)", best, bestV, worst, worstV)
	return f
}

// Fig15FrameRateByUserRegion: user region clearly differentiates.
func Fig15FrameRateByUserRegion(recs []*trace.Record) Figure {
	played := trace.Played(recs)
	f := Figure{ID: "fig15", Title: "CDF of frame rate by user geographic region",
		XLabel: "Frame Rate (fps)", YLabel: "CDF", Kind: KindCDF,
		Series: splitCDF(played, fpsOf, func(r *trace.Record) string { return r.Region }, UserRegionOrder)}
	for _, reg := range UserRegionOrder {
		vals := valuesFor(played, fpsOf, func(r *trace.Record) bool { return r.Region == reg })
		if c, err := stats.NewCDF(vals); err == nil {
			note(&f, "%s: below 3 fps %.0f%%, 15+ %.0f%% (n=%d)", reg, 100*c.FractionBelow(3), 100*c.FractionAtLeast(15), len(vals))
		}
	}
	note(&f, "paper: Australia/NZ worst (75%% below 3 fps); Europe best up to 15 fps")
	return f
}

// Fig16ProtocolMix: over half UDP, 44% TCP.
func Fig16ProtocolMix(recs []*trace.Record) Figure {
	played := trace.Played(recs)
	counts := map[string]int{}
	for _, r := range played {
		counts[r.Protocol]++
	}
	total := float64(len(played))
	f := Figure{ID: "fig16", Title: "Fraction of transport protocols observed",
		Kind: KindPie, Series: []Series{{
			Labels: []string{"TCP", "UDP"},
			Y:      []float64{float64(counts["TCP"]) / total, float64(counts["UDP"]) / total},
		}}}
	note(&f, "TCP %.0f%% / UDP %.0f%% (paper: TCP 44%%, UDP just over half)",
		100*float64(counts["TCP"])/total, 100*float64(counts["UDP"])/total)
	return f
}

// ProtocolOrder for the protocol splits.
var ProtocolOrder = []string{"TCP", "UDP"}

// Fig17FrameRateByProtocol: distributions nearly identical.
func Fig17FrameRateByProtocol(recs []*trace.Record) Figure {
	played := trace.Played(recs)
	f := Figure{ID: "fig17", Title: "CDF of frame rate by transport protocol",
		XLabel: "Frame Rate (fps)", YLabel: "CDF", Kind: KindCDF,
		Series: splitCDF(played, fpsOf, func(r *trace.Record) string { return r.Protocol }, ProtocolOrder)}
	for _, proto := range ProtocolOrder {
		vals := valuesFor(played, fpsOf, func(r *trace.Record) bool { return r.Protocol == proto })
		if c, err := stats.NewCDF(vals); err == nil {
			note(&f, "%s: below 3 fps %.0f%% (paper: TCP ~28%%, UDP ~22%%)", proto, 100*c.FractionBelow(3))
		}
	}
	return f
}

// Fig18BandwidthByProtocol: UDP bandwidth comparable to TCP's over a clip.
func Fig18BandwidthByProtocol(recs []*trace.Record) Figure {
	played := trace.Played(recs)
	f := Figure{ID: "fig18", Title: "CDF of bandwidth by transport protocol",
		XLabel: "Average Bandwidth (Kbps)", YLabel: "CDF", Kind: KindCDF,
		Series: splitCDF(played, kbpsOf, func(r *trace.Record) string { return r.Protocol }, ProtocolOrder)}
	for _, proto := range ProtocolOrder {
		vals := valuesFor(played, kbpsOf, func(r *trace.Record) bool { return r.Protocol == proto })
		note(&f, "%s: mean %.0f Kbps median %.0f", proto, stats.Mean(vals), stats.Quantile(vals, 0.5))
	}
	note(&f, "paper: UDP slightly higher than TCP except at the very low end")
	return f
}

// Fig19FrameRateByPC: only the oldest machines are the bottleneck.
func Fig19FrameRateByPC(recs []*trace.Record) Figure {
	played := trace.Played(recs)
	f := Figure{ID: "fig19", Title: "CDF of frame rate by user PC class",
		XLabel: "Frame Rate (fps)", YLabel: "CDF", Kind: KindCDF,
		Series: splitCDF(played, fpsOf, func(r *trace.Record) string { return r.PCClass }, nil)}
	for _, s := range f.Series {
		vals := valuesFor(played, fpsOf, func(r *trace.Record) bool { return r.PCClass == s.Label })
		if c, err := stats.NewCDF(vals); err == nil {
			note(&f, "%s: above 3 fps %.0f%% (n=%d)", s.Label, 100*c.FractionAtLeast(3), len(vals))
		}
	}
	note(&f, "paper: old Pentium MMX machines above 3 fps only 10-20%% of the time; others not the bottleneck")
	return f
}

// Fig20JitterAll: >50% play with imperceptible jitter; ~15% exceed 300 ms.
func Fig20JitterAll(recs []*trace.Record) Figure {
	jit := trace.Values(trace.Played(recs), jitterOf)
	f := Figure{ID: "fig20", Title: "CDF of overall jitter",
		XLabel: "Jitter (ms)", YLabel: "CDF (%)", Kind: KindCDF,
		Series: []Series{cdfSeries("all clips", jit)}}
	if c, err := stats.NewCDF(jit); err == nil {
		note(&f, "at or under 50 ms: %.0f%% (paper ~52%%)", 100*c.At(50))
		note(&f, "at or over 300 ms: %.0f%% (paper ~15%%)", 100*c.FractionAtLeast(300))
	}
	return f
}

// Fig21JitterByAccess: modems much worse; DSL slightly beats T1.
func Fig21JitterByAccess(recs []*trace.Record) Figure {
	played := trace.Played(recs)
	f := Figure{ID: "fig21", Title: "CDF of jitter by network configuration",
		XLabel: "Jitter (ms)", YLabel: "CDF (%)", Kind: KindCDF,
		Series: splitCDF(played, jitterOf, func(r *trace.Record) string { return r.Access }, AccessOrder)}
	for _, acc := range AccessOrder {
		vals := valuesFor(played, jitterOf, func(r *trace.Record) bool { return r.Access == acc })
		if c, err := stats.NewCDF(vals); err == nil {
			note(&f, "%s: <=50ms %.0f%%, >=300ms %.0f%%", acc, 100*c.At(50), 100*c.FractionAtLeast(300))
		}
	}
	note(&f, "paper: modem jitter-free ~10%% and unacceptable ~45%%; DSL 15%% vs T1 20%% at 300ms")
	return f
}

// Fig22JitterByServerRegion: Asia worst; others comparable.
func Fig22JitterByServerRegion(recs []*trace.Record) Figure {
	played := trace.Played(recs)
	f := Figure{ID: "fig22", Title: "CDF of jitter by server geographic region",
		XLabel: "Jitter (ms)", YLabel: "CDF (%)", Kind: KindCDF,
		Series: splitCDF(played, jitterOf, func(r *trace.Record) string { return r.ServerRegion }, ServerRegionOrder)}
	for _, reg := range ServerRegionOrder {
		vals := valuesFor(played, jitterOf, func(r *trace.Record) bool { return r.ServerRegion == reg })
		if c, err := stats.NewCDF(vals); err == nil {
			note(&f, "%s: imperceptible (<=50ms) %.0f%%", reg, 100*c.At(50))
		}
	}
	note(&f, "paper: Asia worst (~45%% imperceptible vs ~55%% elsewhere)")
	return f
}

// Fig23JitterByUserRegion: Australia/NZ worst again.
func Fig23JitterByUserRegion(recs []*trace.Record) Figure {
	played := trace.Played(recs)
	f := Figure{ID: "fig23", Title: "CDF of jitter by user geographic region",
		XLabel: "Jitter (ms)", YLabel: "CDF (%)", Kind: KindCDF,
		Series: splitCDF(played, jitterOf, func(r *trace.Record) string { return r.Region }, UserRegionOrder)}
	for _, reg := range UserRegionOrder {
		vals := valuesFor(played, jitterOf, func(r *trace.Record) bool { return r.Region == reg })
		if c, err := stats.NewCDF(vals); err == nil {
			note(&f, "%s: <=50ms %.0f%%, >=300ms %.0f%%", reg, 100*c.At(50), 100*c.FractionAtLeast(300))
		}
	}
	note(&f, "paper: Australia/NZ worst over both limits; Europe and North America comparable")
	return f
}

// Fig24JitterByProtocol: TCP and UDP nearly identical smoothness.
func Fig24JitterByProtocol(recs []*trace.Record) Figure {
	played := trace.Played(recs)
	f := Figure{ID: "fig24", Title: "CDF of jitter by transport protocol",
		XLabel: "Jitter (ms)", YLabel: "CDF (%)", Kind: KindCDF,
		Series: splitCDF(played, jitterOf, func(r *trace.Record) string { return r.Protocol }, ProtocolOrder)}
	for _, proto := range ProtocolOrder {
		vals := valuesFor(played, jitterOf, func(r *trace.Record) bool { return r.Protocol == proto })
		if c, err := stats.NewCDF(vals); err == nil {
			note(&f, "%s: <=50ms %.0f%%", proto, 100*c.At(50))
		}
	}
	note(&f, "paper: both protocols provide nearly identical smoothness")
	return f
}

// BandwidthBands are Figure 25's buckets.
var BandwidthBands = []string{"< 10K", "10K - 100K", "> 100K"}

func bandwidthBand(r *trace.Record) string {
	switch {
	case r.MeasuredKbps < 10:
		return BandwidthBands[0]
	case r.MeasuredKbps <= 100:
		return BandwidthBands[1]
	default:
		return BandwidthBands[2]
	}
}

// Fig25JitterByBandwidth: strong correlation between bandwidth and jitter.
func Fig25JitterByBandwidth(recs []*trace.Record) Figure {
	played := trace.Played(recs)
	f := Figure{ID: "fig25", Title: "CDF of jitter by observed bandwidth",
		XLabel: "Jitter (ms)", YLabel: "CDF (%)", Kind: KindCDF,
		Series: splitCDF(played, jitterOf, bandwidthBand, BandwidthBands)}
	for _, band := range BandwidthBands {
		vals := valuesFor(played, jitterOf, func(r *trace.Record) bool { return bandwidthBand(r) == band })
		if c, err := stats.NewCDF(vals); err == nil {
			note(&f, "%s: jitter-free %.0f%%, acceptable(<300ms) %.0f%% (n=%d)", band, 100*c.At(50), 100*c.FractionBelow(300), len(vals))
		}
	}
	note(&f, "paper: low bandwidth ~10%% jitter free / 20%% acceptable; high bandwidth ~80%% / ~95%%")
	return f
}

// Fig26QualityAll: ratings look uniform with mean ~5.
func Fig26QualityAll(recs []*trace.Record) Figure {
	ratings := trace.Values(trace.Rated(recs), ratingOf)
	f := Figure{ID: "fig26", Title: "CDF of overall quality rating",
		XLabel: "Quality Rating", YLabel: "CDF", Kind: KindCDF,
		Series: []Series{cdfSeries("rated clips", ratings)}}
	if s, err := stats.Summarize(ratings); err == nil {
		note(&f, "n=%d mean=%.1f (paper: ~388 ratings, mean ~5, near-uniform distribution)", s.N, s.Mean)
	}
	return f
}

// Fig27QualityByAccess: modem quality about half of DSL; DSL beats T1.
func Fig27QualityByAccess(recs []*trace.Record) Figure {
	rated := trace.Rated(recs)
	f := Figure{ID: "fig27", Title: "CDF of quality by network configuration",
		XLabel: "Quality Rating", YLabel: "CDF", Kind: KindCDF,
		Series: splitCDF(rated, ratingOf, func(r *trace.Record) string { return r.Access }, AccessOrder)}
	for _, acc := range AccessOrder {
		vals := valuesFor(rated, ratingOf, func(r *trace.Record) bool { return r.Access == acc })
		if len(vals) > 0 {
			note(&f, "%s: mean rating %.1f (n=%d)", acc, stats.Mean(vals), len(vals))
		}
	}
	note(&f, "paper: modem ratings about half of DSL/Cable; DSL slightly above LAN/T1")
	return f
}

// Fig28QualityVsBandwidth: weak correlation; no low ratings at high
// bandwidth.
func Fig28QualityVsBandwidth(recs []*trace.Record) Figure {
	rated := trace.Rated(recs)
	xs := trace.Values(rated, kbpsOf)
	ys := trace.Values(rated, ratingOf)
	f := Figure{ID: "fig28", Title: "Quality rating vs network bandwidth",
		XLabel: "Average Bandwidth (Kbps)", YLabel: "Quality Rating", Kind: KindScatter,
		Series: []Series{{Label: "clips", X: xs, Y: ys}}}
	centers, means := stats.ScatterBin(xs, ys, 8)
	f.Series = append(f.Series, Series{Label: "binned mean", X: centers, Y: means})
	r := stats.Pearson(xs, ys)
	note(&f, "pearson r=%.2f (paper: no strong visual correlation, slight upward trend)", r)
	var lowHigh int
	for i := range xs {
		if xs[i] > 250 && ys[i] < 3 {
			lowHigh++
		}
	}
	note(&f, "ratings <3 at >250 Kbps: %d (paper: notable lack of low ratings at high bandwidth)", lowHigh)
	return f
}

// Render prints the figure as text: notes, then the series as aligned
// columns, plus a coarse ASCII plot for CDFs.
func (f Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	for _, n := range f.Notes {
		fmt.Fprintf(w, "   %s\n", n)
	}
	switch f.Kind {
	case KindBar, KindPie:
		for _, s := range f.Series {
			maxV := 0.0
			for _, v := range s.Y {
				if v > maxV {
					maxV = v
				}
			}
			for i, label := range s.Labels {
				bar := ""
				if maxV > 0 {
					bar = strings.Repeat("#", int(40*s.Y[i]/maxV))
				}
				fmt.Fprintf(w, "   %-22s %8.3f %s\n", label, s.Y[i], bar)
			}
		}
	case KindCDF:
		// Tabulate each series at its deciles.
		for _, s := range f.Series {
			if len(s.X) == 0 {
				continue
			}
			fmt.Fprintf(w, "   %s:\n     ", s.Label)
			for q := 1; q <= 9; q++ {
				idx := quantileIndex(s.Y, float64(q)/10)
				fmt.Fprintf(w, "p%d0=%.4g ", q, s.X[idx])
			}
			fmt.Fprintln(w)
		}
	case KindScatter:
		for _, s := range f.Series {
			if s.Label != "binned mean" {
				continue
			}
			for i := range s.X {
				fmt.Fprintf(w, "   x=%8.1f  mean_y=%.2f\n", s.X[i], s.Y[i])
			}
		}
	case KindSeries:
		for _, s := range f.Series {
			fmt.Fprintf(w, "   series %s: %d points\n", s.Label, len(s.X))
		}
	}
	fmt.Fprintln(w)
}

// quantileIndex returns the first index of ys (a CDF's F values) reaching q.
func quantileIndex(ys []float64, q float64) int {
	for i, y := range ys {
		if y >= q {
			return i
		}
	}
	return len(ys) - 1
}
