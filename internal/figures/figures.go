// Package figures regenerates every figure of the paper's evaluation from a
// set of trace records: the demographic breakdowns (Figures 5-10), the
// frame-rate analysis (11, 12, 14, 15, 17, 19), bandwidth (13, 18), the
// transport mix (16), jitter (20-25) and perceptual quality (26-28).
//
// Every generator is backed by a single-pass Aggregates build over the
// record stream (see aggregates.go): records can be aggregated as they are
// produced — via the trace.Sink interface — and the figures computed from
// the aggregate without ever holding the records in memory. The classic
// Build-from-a-slice path remains for trace files and tests.
//
// Each generator returns a Figure holding plottable series plus summary
// notes; Render prints it as an ASCII table the way the paper's graphs read.
package figures

import (
	"fmt"
	"io"
	"strings"

	"realtracer/internal/stats"
	"realtracer/internal/trace"
)

// Kind describes how a figure is plotted.
type Kind string

// Figure kinds.
const (
	KindCDF     Kind = "cdf"
	KindBar     Kind = "bar"
	KindPie     Kind = "pie"
	KindScatter Kind = "scatter"
	KindSeries  Kind = "timeseries"
)

// Series is one labeled line/bar-set of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
	// Labels substitutes for X on categorical (bar) figures.
	Labels []string
}

// Figure is a regenerated paper figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Kind   Kind
	Series []Series
	// Notes carries the scalar observations the paper calls out in prose.
	Notes []string
}

func note(f *Figure, format string, args ...any) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// cdfSeries converts samples to a CDF series sampled densely enough to
// plot.
func cdfSeries(label string, samples []float64) Series {
	c, err := stats.NewCDF(samples)
	if err != nil {
		return Series{Label: label}
	}
	xs, fs := c.Points(64)
	return Series{Label: label, X: xs, Y: fs}
}

// Generator builds a figure from a study's aggregates.
type Generator struct {
	ID    string
	Title string
	// Agg builds the figure from a completed single-pass aggregate build.
	Agg func(*Aggregates) Figure
}

// Build regenerates the figure from raw records: one aggregate pass, then
// the aggregate-backed builder. Building many figures from the same records
// is cheaper via a shared Aggregate(recs) and the Agg funcs directly.
func (g Generator) Build(recs []*trace.Record) Figure { return g.Agg(Aggregate(recs)) }

// All lists every record-driven figure generator in paper order. (Figure 1
// is a single-session timeline, produced by core.Fig01Timeline.)
func All() []Generator {
	return []Generator{
		{"fig05", "CDF of video clips played per user", (*Aggregates).Fig05ClipsPerUser},
		{"fig06", "CDF of video clips rated per user", (*Aggregates).Fig06RatedPerUser},
		{"fig07", "Clips played by users from each country", (*Aggregates).Fig07ByUserCountry},
		{"fig08", "Clips served by RealServers from each country", (*Aggregates).Fig08ByServerCountry},
		{"fig09", "Clips played by U.S. users from each state", (*Aggregates).Fig09ByUSState},
		{"fig10", "Fraction of unavailable clips per server", (*Aggregates).Fig10Unavailable},
		{"fig11", "CDF of frame rate for all video clips", (*Aggregates).Fig11FrameRateAll},
		{"fig12", "CDF of frame rate by end-host network configuration", (*Aggregates).Fig12FrameRateByAccess},
		{"fig13", "CDF of bandwidth by end-host network configuration", (*Aggregates).Fig13BandwidthByAccess},
		{"fig14", "CDF of frame rate by server geographic region", (*Aggregates).Fig14FrameRateByServerRegion},
		{"fig15", "CDF of frame rate by user geographic region", (*Aggregates).Fig15FrameRateByUserRegion},
		{"fig16", "Fraction of transport protocols observed", (*Aggregates).Fig16ProtocolMix},
		{"fig17", "CDF of frame rate by transport protocol", (*Aggregates).Fig17FrameRateByProtocol},
		{"fig18", "CDF of bandwidth by transport protocol", (*Aggregates).Fig18BandwidthByProtocol},
		{"fig19", "CDF of frame rate by user PC class", (*Aggregates).Fig19FrameRateByPC},
		{"fig20", "CDF of overall jitter", (*Aggregates).Fig20JitterAll},
		{"fig21", "CDF of jitter by network configuration", (*Aggregates).Fig21JitterByAccess},
		{"fig22", "CDF of jitter by server geographic region", (*Aggregates).Fig22JitterByServerRegion},
		{"fig23", "CDF of jitter by user geographic region", (*Aggregates).Fig23JitterByUserRegion},
		{"fig24", "CDF of jitter by transport protocol", (*Aggregates).Fig24JitterByProtocol},
		{"fig25", "CDF of jitter by observed bandwidth", (*Aggregates).Fig25JitterByBandwidth},
		{"fig26", "CDF of overall quality rating", (*Aggregates).Fig26QualityAll},
		{"fig27", "CDF of quality by network configuration", (*Aggregates).Fig27QualityByAccess},
		{"fig28", "Quality rating vs network bandwidth", (*Aggregates).Fig28QualityVsBandwidth},
	}
}

// ByID returns the generator for an id like "fig11".
func ByID(id string) (Generator, bool) {
	for _, g := range All() {
		if g.ID == id {
			return g, true
		}
	}
	return Generator{}, false
}

// Record-slice entry points for each figure, preserved for callers that
// analyze an in-memory trace directly.

// Fig05ClipsPerUser: half the users played 40 clips or more.
func Fig05ClipsPerUser(recs []*trace.Record) Figure { return Aggregate(recs).Fig05ClipsPerUser() }

// Fig06RatedPerUser: half the users rated about 3 clips.
func Fig06RatedPerUser(recs []*trace.Record) Figure { return Aggregate(recs).Fig06RatedPerUser() }

// Fig07ByUserCountry: the paper's US-dominated country breakdown.
func Fig07ByUserCountry(recs []*trace.Record) Figure { return Aggregate(recs).Fig07ByUserCountry() }

// Fig08ByServerCountry: US servers served the most clips.
func Fig08ByServerCountry(recs []*trace.Record) Figure { return Aggregate(recs).Fig08ByServerCountry() }

// Fig09ByUSState: Massachusetts dominates.
func Fig09ByUSState(recs []*trace.Record) Figure { return Aggregate(recs).Fig09ByUSState() }

// Fig10Unavailable: about 10% of clip requests found the clip unavailable.
func Fig10Unavailable(recs []*trace.Record) Figure { return Aggregate(recs).Fig10Unavailable() }

// Fig11FrameRateAll: mean ~10 fps; ~25% under 3 fps; ~25% at 15+.
func Fig11FrameRateAll(recs []*trace.Record) Figure { return Aggregate(recs).Fig11FrameRateAll() }

// Fig12FrameRateByAccess: modems far worse; DSL/Cable roughly matches T1.
func Fig12FrameRateByAccess(recs []*trace.Record) Figure {
	return Aggregate(recs).Fig12FrameRateByAccess()
}

// Fig13BandwidthByAccess: DSL/Cable rarely operates near capacity.
func Fig13BandwidthByAccess(recs []*trace.Record) Figure {
	return Aggregate(recs).Fig13BandwidthByAccess()
}

// Fig14FrameRateByServerRegion: server regions differ only slightly.
func Fig14FrameRateByServerRegion(recs []*trace.Record) Figure {
	return Aggregate(recs).Fig14FrameRateByServerRegion()
}

// Fig15FrameRateByUserRegion: user region clearly differentiates.
func Fig15FrameRateByUserRegion(recs []*trace.Record) Figure {
	return Aggregate(recs).Fig15FrameRateByUserRegion()
}

// Fig16ProtocolMix: over half UDP, 44% TCP.
func Fig16ProtocolMix(recs []*trace.Record) Figure { return Aggregate(recs).Fig16ProtocolMix() }

// Fig17FrameRateByProtocol: distributions nearly identical.
func Fig17FrameRateByProtocol(recs []*trace.Record) Figure {
	return Aggregate(recs).Fig17FrameRateByProtocol()
}

// Fig18BandwidthByProtocol: UDP bandwidth comparable to TCP's over a clip.
func Fig18BandwidthByProtocol(recs []*trace.Record) Figure {
	return Aggregate(recs).Fig18BandwidthByProtocol()
}

// Fig19FrameRateByPC: only the oldest machines are the bottleneck.
func Fig19FrameRateByPC(recs []*trace.Record) Figure { return Aggregate(recs).Fig19FrameRateByPC() }

// Fig20JitterAll: >50% play with imperceptible jitter; ~15% exceed 300 ms.
func Fig20JitterAll(recs []*trace.Record) Figure { return Aggregate(recs).Fig20JitterAll() }

// Fig21JitterByAccess: modems much worse; DSL slightly beats T1.
func Fig21JitterByAccess(recs []*trace.Record) Figure { return Aggregate(recs).Fig21JitterByAccess() }

// Fig22JitterByServerRegion: Asia worst; others comparable.
func Fig22JitterByServerRegion(recs []*trace.Record) Figure {
	return Aggregate(recs).Fig22JitterByServerRegion()
}

// Fig23JitterByUserRegion: Australia/NZ worst again.
func Fig23JitterByUserRegion(recs []*trace.Record) Figure {
	return Aggregate(recs).Fig23JitterByUserRegion()
}

// Fig24JitterByProtocol: TCP and UDP nearly identical smoothness.
func Fig24JitterByProtocol(recs []*trace.Record) Figure {
	return Aggregate(recs).Fig24JitterByProtocol()
}

// Fig25JitterByBandwidth: strong correlation between bandwidth and jitter.
func Fig25JitterByBandwidth(recs []*trace.Record) Figure {
	return Aggregate(recs).Fig25JitterByBandwidth()
}

// Fig26QualityAll: ratings look uniform with mean ~5.
func Fig26QualityAll(recs []*trace.Record) Figure { return Aggregate(recs).Fig26QualityAll() }

// Fig27QualityByAccess: modem quality about half of DSL; DSL beats T1.
func Fig27QualityByAccess(recs []*trace.Record) Figure {
	return Aggregate(recs).Fig27QualityByAccess()
}

// Fig28QualityVsBandwidth: weak correlation; no low ratings at high
// bandwidth.
func Fig28QualityVsBandwidth(recs []*trace.Record) Figure {
	return Aggregate(recs).Fig28QualityVsBandwidth()
}

// AccessOrder is the paper's access-class ordering.
var AccessOrder = []string{"56k Modem", "DSL/Cable", "T1/LAN"}

// ServerRegionOrder and UserRegionOrder follow the paper's legends.
var (
	ServerRegionOrder = []string{"Asia", "Brazil", "US/Canada", "Australia", "Europe"}
	UserRegionOrder   = []string{"Australia", "US/Canada", "Asia", "Europe"}
)

// ProtocolOrder for the protocol splits.
var ProtocolOrder = []string{"TCP", "UDP"}

// BandwidthBands are Figure 25's buckets.
var BandwidthBands = []string{"< 10K", "10K - 100K", "> 100K"}

func bandwidthBand(r *trace.Record) string {
	switch {
	case r.MeasuredKbps < 10:
		return BandwidthBands[0]
	case r.MeasuredKbps <= 100:
		return BandwidthBands[1]
	default:
		return BandwidthBands[2]
	}
}

// Render prints the figure as text: notes, then the series as aligned
// columns, plus a coarse ASCII plot for CDFs.
func (f Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	for _, n := range f.Notes {
		fmt.Fprintf(w, "   %s\n", n)
	}
	switch f.Kind {
	case KindBar, KindPie:
		for _, s := range f.Series {
			maxV := 0.0
			for _, v := range s.Y {
				if v > maxV {
					maxV = v
				}
			}
			for i, label := range s.Labels {
				bar := ""
				if maxV > 0 {
					bar = strings.Repeat("#", int(40*s.Y[i]/maxV))
				}
				fmt.Fprintf(w, "   %-22s %8.3f %s\n", label, s.Y[i], bar)
			}
		}
	case KindCDF:
		// Tabulate each series at its deciles.
		for _, s := range f.Series {
			if len(s.X) == 0 {
				continue
			}
			fmt.Fprintf(w, "   %s:\n     ", s.Label)
			for q := 1; q <= 9; q++ {
				idx := quantileIndex(s.Y, float64(q)/10)
				fmt.Fprintf(w, "p%d0=%.4g ", q, s.X[idx])
			}
			fmt.Fprintln(w)
		}
	case KindScatter:
		for _, s := range f.Series {
			if s.Label != "binned mean" {
				continue
			}
			for i := range s.X {
				fmt.Fprintf(w, "   x=%8.1f  mean_y=%.2f\n", s.X[i], s.Y[i])
			}
		}
	case KindSeries:
		for _, s := range f.Series {
			fmt.Fprintf(w, "   series %s: %d points\n", s.Label, len(s.X))
		}
	}
	fmt.Fprintln(w)
}

// quantileIndex returns the first index of ys (a CDF's F values) reaching q.
func quantileIndex(ys []float64, q float64) int {
	for i, y := range ys {
		if y >= q {
			return i
		}
	}
	return len(ys) - 1
}
