package figures

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"realtracer/internal/trace"
)

// synthetic builds a deterministic record set exercising every grouping the
// figures use.
func synthetic() []*trace.Record {
	rng := rand.New(rand.NewSource(4))
	var recs []*trace.Record
	accesses := []string{"56k Modem", "DSL/Cable", "T1/LAN"}
	userRegions := []string{"Australia", "US/Canada", "Asia", "Europe"}
	serverRegions := []string{"Asia", "Brazil", "US/Canada", "Australia", "Europe"}
	countries := []string{"US", "US", "US", "UK", "China", "Australia"}
	states := []string{"MA", "MA", "FL", "", "", ""}
	pcs := []string{"Pentium III / 256-512MB", "Intel Pentium MMX / 24MB"}
	for u := 0; u < 12; u++ {
		user := "user" + string(rune('A'+u))
		nClips := 5 + rng.Intn(20)
		for c := 0; c < nClips; c++ {
			r := &trace.Record{
				User:          user,
				Country:       countries[u%len(countries)],
				State:         states[u%len(states)],
				Region:        userRegions[u%len(userRegions)],
				Access:        accesses[u%len(accesses)],
				PCClass:       pcs[u%len(pcs)],
				ClipURL:       "rtsp://srv/clip.rm",
				Server:        "SRV/" + serverRegions[c%len(serverRegions)],
				ServerCountry: countries[c%len(countries)],
				ServerRegion:  serverRegions[c%len(serverRegions)],
				Protocol:      []string{"TCP", "UDP"}[rng.Intn(2)],
			}
			switch {
			case rng.Float64() < 0.1:
				r.Unavailable = true
			default:
				r.MeasuredFPS = rng.Float64() * 25
				r.MeasuredKbps = rng.Float64() * 400
				r.JitterMs = rng.Float64() * 800
				r.FramesPlayed = int(r.MeasuredFPS * 60)
				if c < 4 {
					r.Rated = true
					r.Rating = float64(rng.Intn(11))
				}
			}
			recs = append(recs, r)
		}
	}
	return recs
}

func TestAllGeneratorsProduceFigures(t *testing.T) {
	recs := synthetic()
	for _, g := range All() {
		fig := g.Build(recs)
		if fig.ID != g.ID {
			t.Errorf("%s: ID mismatch %q", g.ID, fig.ID)
		}
		if len(fig.Series) == 0 {
			t.Errorf("%s: no series", g.ID)
		}
		if len(fig.Notes) == 0 {
			t.Errorf("%s: no notes", g.ID)
		}
		var buf bytes.Buffer
		fig.Render(&buf)
		if buf.Len() == 0 {
			t.Errorf("%s: render produced nothing", g.ID)
		}
	}
}

func TestAllGeneratorCount(t *testing.T) {
	// Figures 5-28 inclusive: 24 record-driven figures.
	if n := len(All()); n != 24 {
		t.Fatalf("generators=%d want 24", n)
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig11"); !ok {
		t.Fatal("fig11 missing")
	}
	if _, ok := ByID("fig99"); ok {
		t.Fatal("fig99 should not exist")
	}
}

func TestFig10UsesAllAttempts(t *testing.T) {
	recs := []*trace.Record{
		{Server: "A", Unavailable: true},
		{Server: "A"},
		{Server: "A"},
		{Server: "A"},
		{Server: "B"},
	}
	f := Fig10Unavailable(recs)
	s := f.Series[0]
	if len(s.Labels) != 2 {
		t.Fatalf("servers=%v", s.Labels)
	}
	if s.Labels[0] != "A" || s.Y[0] != 0.25 {
		t.Fatalf("A unavailability=%v want 0.25", s.Y[0])
	}
	if s.Y[1] != 0 {
		t.Fatalf("B unavailability=%v want 0", s.Y[1])
	}
}

func TestFig16Fractions(t *testing.T) {
	recs := []*trace.Record{
		{Protocol: "TCP"}, {Protocol: "UDP"}, {Protocol: "UDP"}, {Protocol: "UDP"},
	}
	f := Fig16ProtocolMix(recs)
	s := f.Series[0]
	if s.Y[0] != 0.25 || s.Y[1] != 0.75 {
		t.Fatalf("mix=%v", s.Y)
	}
}

func TestFig05CountsPerUser(t *testing.T) {
	recs := []*trace.Record{
		{User: "a"}, {User: "a"}, {User: "a"},
		{User: "b"},
	}
	f := Fig05ClipsPerUser(recs)
	s := f.Series[0]
	// CDF over {3, 1}: values 1 and 3 present.
	if len(s.X) == 0 {
		t.Fatal("empty CDF")
	}
	if s.X[0] > 1 || s.X[len(s.X)-1] < 3 {
		t.Fatalf("per-user counts wrong: %v", s.X)
	}
}

func TestFig28FindsCorrelationDirection(t *testing.T) {
	var recs []*trace.Record
	for i := 0; i < 50; i++ {
		recs = append(recs, &trace.Record{
			User: "u", Rated: true,
			MeasuredKbps: float64(i * 10),
			Rating:       float64(i%3) + float64(i)/10, // upward trend + noise
		})
	}
	f := Fig28QualityVsBandwidth(recs)
	if len(f.Series) != 2 {
		t.Fatalf("series=%d want scatter + binned", len(f.Series))
	}
	// Binned means should rise overall.
	binned := f.Series[1]
	if binned.Y[len(binned.Y)-1] <= binned.Y[0] {
		t.Fatal("binned means should trend upward for an upward-trending input")
	}
}

func TestSplitCDFSkipsEmptyGroups(t *testing.T) {
	recs := []*trace.Record{
		{Access: "56k Modem", MeasuredFPS: 2},
		{Access: "56k Modem", MeasuredFPS: 4},
	}
	f := Fig12FrameRateByAccess(recs)
	for _, s := range f.Series {
		if s.Label != "56k Modem" && len(s.X) > 0 {
			t.Fatalf("unexpected non-empty series %q", s.Label)
		}
	}
}

func TestBandwidthBands(t *testing.T) {
	cases := []struct {
		kbps float64
		want string
	}{{5, "< 10K"}, {10, "10K - 100K"}, {50, "10K - 100K"}, {100, "10K - 100K"}, {101, "> 100K"}}
	for _, tc := range cases {
		if got := bandwidthBand(&trace.Record{MeasuredKbps: tc.kbps}); got != tc.want {
			t.Errorf("band(%v)=%q want %q", tc.kbps, got, tc.want)
		}
	}
}

func TestRenderHandlesEmptyRecords(t *testing.T) {
	for _, g := range All() {
		var buf bytes.Buffer
		g.Build(nil).Render(&buf) // must not panic
	}
}

func TestCDFSeriesEmptyInput(t *testing.T) {
	s := cdfSeries("x", nil)
	if len(s.X) != 0 {
		t.Fatal("empty input should produce empty series")
	}
}

func TestFigureNotesMentionPaper(t *testing.T) {
	recs := synthetic()
	// Spot-check that key figures carry their paper-claim annotations.
	for _, id := range []string{"fig11", "fig12", "fig20", "fig26"} {
		g, _ := ByID(id)
		fig := g.Build(recs)
		found := false
		for _, n := range fig.Notes {
			if bytes.Contains([]byte(n), []byte("paper")) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no paper reference in notes", id)
		}
	}
	_ = time.Second
}
