package figures

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"realtracer/internal/study"
	"realtracer/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden figure snapshot")

// goldenOptions is the reduced seed study the golden snapshot pins: big
// enough to populate every grouping the figures split on, small enough to
// run in a couple of seconds.
func goldenOptions() study.Options {
	return study.Options{Seed: 1, MaxUsers: 16, ClipCap: 10}
}

// renderAll renders every record-driven figure, in paper order, to one
// buffer — the exact text a study consumer sees.
func renderAll(recs []*trace.Record) []byte {
	var buf bytes.Buffer
	for _, g := range All() {
		g.Build(recs).Render(&buf)
	}
	return buf.Bytes()
}

// TestGoldenFigures runs the reduced seed study and diffs every rendered
// figure against the committed snapshot. The snapshot was generated from the
// pre-aggregates multi-pass generators, so a green run proves the streaming
// refactor is output-preserving. Regenerate deliberately with:
//
//	go test ./internal/figures -run TestGoldenFigures -update
func TestGoldenFigures(t *testing.T) {
	res, err := study.Run(goldenOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := renderAll(res.Records)
	path := filepath.Join("testdata", "golden_figures.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d bytes to %s", len(got), path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden snapshot (run with -update to create): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	gotLines := bytes.Split(got, []byte("\n"))
	wantLines := bytes.Split(want, []byte("\n"))
	n := len(gotLines)
	if len(wantLines) < n {
		n = len(wantLines)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(gotLines[i], wantLines[i]) {
			t.Fatalf("figure output diverged from golden at line %d:\n got: %s\nwant: %s",
				i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("figure output length changed: got %d lines, golden %d lines", len(gotLines), len(wantLines))
}

// TestGoldenStable guards the snapshot itself: two renders of the same study
// must be byte-identical, or the golden diff would be flaky (this is what
// the deterministic tie-break in barFromCounter buys).
func TestGoldenStable(t *testing.T) {
	res, err := study.Run(goldenOptions())
	if err != nil {
		t.Fatal(err)
	}
	a := renderAll(res.Records)
	b := renderAll(res.Records)
	if !bytes.Equal(a, b) {
		t.Fatal("two renders of the same records differ")
	}
	// And across a re-run of the study itself.
	res2, err := study.Run(goldenOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c := renderAll(res2.Records); !bytes.Equal(a, c) {
		t.Fatal("re-running the golden study changed the rendered figures")
	}
}
