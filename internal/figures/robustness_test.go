package figures

import (
	"reflect"
	"testing"

	"realtracer/internal/trace"
)

func robustnessRecords() []*trace.Record {
	return []*trace.Record{
		{User: "u1", Protocol: "UDP", MeasuredFPS: 15, Rebuffers: 0, Switches: 1},
		{User: "u1", Protocol: "UDP", MeasuredFPS: 13, Rebuffers: 1, Switches: 1},
		{User: "u2", Protocol: "TCP", MeasuredFPS: 6, Rebuffers: 3, Switches: 4, Dynamics: "outage"},
		{User: "u2", Protocol: "TCP", Failed: true, Dynamics: "outage"},
		{User: "u3", Protocol: "UDP", MeasuredFPS: 9, Rebuffers: 2, Switches: 2, Dynamics: "lossburst-2x"},
	}
}

func TestRobustnessBreakdown(t *testing.T) {
	a := Aggregate(robustnessRecords())
	rows := a.Robustness()
	if len(rows) != 3 {
		t.Fatalf("rows=%d want 3 (lossburst-2x, outage, steady)", len(rows))
	}
	byCond := map[string]RobustnessRow{}
	for _, r := range rows {
		byCond[r.Condition] = r
	}
	st := byCond[SteadyCondition]
	if st.Played != 2 || st.Failed != 0 || st.MeanRebuffers != 0.5 || st.MeanSwitches != 1 {
		t.Fatalf("steady row wrong: %+v", st)
	}
	ou := byCond["outage"]
	if ou.Played != 1 || ou.Failed != 1 || ou.MeanRebuffers != 3 || ou.MeanFPS != 6 {
		t.Fatalf("outage row wrong: %+v", ou)
	}
	if lb := byCond["lossburst-2x"]; lb.Played != 1 || lb.MeanSwitches != 2 {
		t.Fatalf("lossburst row wrong: %+v", lb)
	}
}

// TestRobustnessFailedOnlyConditionEarnsRow: a regime harsh enough to fail
// every clip must still appear in the breakdown.
func TestRobustnessFailedOnlyConditionEarnsRow(t *testing.T) {
	a := Aggregate([]*trace.Record{
		{User: "u1", Failed: true, Dynamics: "outage-3x"},
	})
	rows := a.Robustness()
	if len(rows) != 1 || rows[0].Condition != "outage-3x" || rows[0].Failed != 1 || rows[0].Played != 0 {
		t.Fatalf("failed-only condition rows: %+v", rows)
	}
}

// TestRobustnessMerges: partial aggregates (one per campaign scenario)
// carry their conditions through Merge.
func TestRobustnessMerges(t *testing.T) {
	recs := robustnessRecords()
	whole := Aggregate(recs)
	a, b := Aggregate(recs[:2]), Aggregate(recs[2:])
	merged := NewAggregates()
	merged.Merge(a)
	merged.Merge(b)
	if !reflect.DeepEqual(whole.Robustness(), merged.Robustness()) {
		t.Fatalf("merged robustness differs:\n%+v\n%+v", whole.Robustness(), merged.Robustness())
	}
}
