package figures

import (
	"math"
	"sort"
)

// This file is the workload breakdown: the open-loop analogs of the
// robustness rows. Records from open-loop runs carry a server-selection
// policy label (Record.Policy) and the clip's virtual-time span
// (StartSec/EndSec); panel records carry neither, so a classic study
// produces an empty breakdown and the golden figures are untouched.

// WorkloadRow is one selection policy's summary.
type WorkloadRow struct {
	// Policy is the selection policy label ("pinned", "rtt", ...).
	Policy string
	// Played and Failed count clips fetched under the policy.
	Played, Failed int
	// MeanStartupSec is the average initial-buffering (startup) delay.
	MeanStartupSec float64
	// MeanRebuffers is the average mid-playout stall count.
	MeanRebuffers float64
	// LoadBalance is the coefficient of variation (stddev/mean) of the
	// per-server play counts over every mirror observed in the aggregate:
	// 0 is a perfectly even spread, higher is more lopsided. Pinned
	// selection concentrates load on the popular clips' home sites and
	// scores high; least-loaded selection should score near 0.
	LoadBalance float64
	// Servers is how many distinct servers the policy actually used.
	Servers int
}

// Workload returns the per-selection-policy breakdown, sorted by policy
// name. Empty for classic panel runs.
func (a *Aggregates) Workload() []WorkloadRow {
	keys := a.playedByPolicy.Keys()
	for _, k := range a.failedByPolicy.Keys() {
		if a.playedByPolicy.Get(k) == 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	// The mirror universe: every server the aggregate saw at all —
	// serverAttempts counts each record regardless of policy, so merged
	// sweep aggregates (and churn sweeps with a panel control arm) score
	// every policy over the same server set and "never sent anything to
	// 6 of 10 mirrors" shows up as imbalance rather than vanishing. An
	// aggregate whose records only ever touched one server degenerates
	// to CV 0 — read the Servers column alongside.
	servers := a.serverAttempts.Keys()

	out := make([]WorkloadRow, 0, len(keys))
	for _, pol := range keys {
		row := WorkloadRow{
			Policy: pol,
			Played: a.playedByPolicy.Get(pol),
			Failed: a.failedByPolicy.Get(pol),
		}
		if d := a.startupByPolicy.Get(pol); d != nil {
			row.MeanStartupSec = d.Mean()
		}
		if d := a.rebufByPolicy.Get(pol); d != nil {
			row.MeanRebuffers = d.Mean()
		}
		var counts []float64
		for _, srv := range servers {
			c := a.policyServer.Get(pol + "|" + srv)
			counts = append(counts, float64(c))
			if c > 0 {
				row.Servers++
			}
		}
		row.LoadBalance = coefficientOfVariation(counts)
		out = append(out, row)
	}
	return out
}

// Concurrency returns the concurrent-clip time series: minute offsets
// (virtual time) and the number of clips in flight during each. Minutes
// where the level does not change are omitted — the series is a step
// function. Empty when no record carried a time span (legacy traces).
func (a *Aggregates) Concurrency() (minutes []int, level []int) {
	if len(a.concurDelta) == 0 {
		return nil, nil
	}
	ms := make([]int, 0, len(a.concurDelta))
	for m := range a.concurDelta {
		ms = append(ms, m)
	}
	sort.Ints(ms)
	running := 0
	for _, m := range ms {
		running += a.concurDelta[m]
		minutes = append(minutes, m)
		level = append(level, running)
	}
	return minutes, level
}

// PeakConcurrency returns the maximum concurrent-clip level and the minute
// it was first reached (-1 when the series is empty).
func (a *Aggregates) PeakConcurrency() (peak, atMinute int) {
	minutes, level := a.Concurrency()
	atMinute = -1
	for i, l := range level {
		if l > peak {
			peak, atMinute = l, minutes[i]
		}
	}
	return peak, atMinute
}

// coefficientOfVariation is stddev/mean (population), 0 for empty or
// all-zero inputs.
func coefficientOfVariation(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(xs))) / mean
}
