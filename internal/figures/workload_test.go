package figures

import (
	"testing"
	"time"

	"realtracer/internal/trace"
)

// wlRec builds one played open-loop record.
func wlRec(policy, server string, start, end float64, startup time.Duration, rebuf int) *trace.Record {
	return &trace.Record{
		User: "u", Policy: policy, Server: server,
		StartSec: start, EndSec: end,
		BufferingTime: startup, Rebuffers: rebuf,
		MeasuredFPS: 10,
	}
}

// TestWorkloadBreakdown: rows appear per policy, startup/rebuffer means
// are right, and the load-balance CV separates a one-server policy from an
// even spread over the shared server universe.
func TestWorkloadBreakdown(t *testing.T) {
	a := NewAggregates()
	// "lopsided" sends everything to s1; "even" spreads across s1..s4.
	for i := 0; i < 8; i++ {
		a.Observe(wlRec("lopsided", "s1", float64(i), float64(i)+1, 4*time.Second, 1))
	}
	for i, srv := range []string{"s1", "s2", "s3", "s4", "s1", "s2", "s3", "s4"} {
		a.Observe(wlRec("even", srv, float64(i), float64(i)+1, 8*time.Second, 0))
	}
	failed := wlRec("lopsided", "s1", 20, 21, 0, 0)
	failed.Failed = true
	a.Observe(failed)

	rows := a.Workload()
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	even, lop := rows[0], rows[1]
	if even.Policy != "even" || lop.Policy != "lopsided" {
		t.Fatalf("rows not sorted by policy: %q, %q", rows[0].Policy, rows[1].Policy)
	}
	if even.Played != 8 || lop.Played != 8 || lop.Failed != 1 {
		t.Fatalf("counts wrong: even=%+v lopsided=%+v", even, lop)
	}
	if even.MeanStartupSec != 8 || lop.MeanStartupSec != 4 {
		t.Fatalf("startup means wrong: even=%g lopsided=%g", even.MeanStartupSec, lop.MeanStartupSec)
	}
	if lop.MeanRebuffers != 1 || even.MeanRebuffers != 0 {
		t.Fatalf("rebuffer means wrong: even=%g lopsided=%g", even.MeanRebuffers, lop.MeanRebuffers)
	}
	if even.Servers != 4 || lop.Servers != 1 {
		t.Fatalf("server counts wrong: even=%d lopsided=%d", even.Servers, lop.Servers)
	}
	// Over the shared 4-server universe: even spread CV 0, one-server CV √3.
	if even.LoadBalance != 0 {
		t.Fatalf("even spread CV = %g, want 0", even.LoadBalance)
	}
	if lop.LoadBalance < 1.7 || lop.LoadBalance > 1.8 {
		t.Fatalf("lopsided CV = %g, want √3 ≈ 1.73", lop.LoadBalance)
	}
}

// TestWorkloadEmptyForPanel: classic panel records (no policy, no span)
// leave the breakdown empty, so the golden figures path is untouched.
func TestWorkloadEmptyForPanel(t *testing.T) {
	a := NewAggregates()
	a.Observe(&trace.Record{User: "u1", MeasuredFPS: 10})
	if rows := a.Workload(); len(rows) != 0 {
		t.Fatalf("panel records produced %d workload rows", len(rows))
	}
	if m, l := a.Concurrency(); m != nil || l != nil {
		t.Fatal("panel records without spans produced a concurrency series")
	}
	if peak, at := a.PeakConcurrency(); peak != 0 || at != -1 {
		t.Fatalf("empty peak = (%d, %d)", peak, at)
	}
}

// TestConcurrencySeries: overlapping spans produce the right step levels
// and the peak finder reports the first maximum.
func TestConcurrencySeries(t *testing.T) {
	a := NewAggregates()
	// Minutes: one clip [0,3), one [1,2), one [1,4): levels 1,3,2,1,0.
	a.Observe(wlRec("p", "s", 0, 180, 0, 0))
	a.Observe(wlRec("p", "s", 60, 120, 0, 0))
	a.Observe(wlRec("p", "s", 60, 240, 0, 0))
	minutes, level := a.Concurrency()
	wantM := []int{0, 1, 2, 3, 4}
	wantL := []int{1, 3, 2, 1, 0}
	if len(minutes) != len(wantM) {
		t.Fatalf("minutes = %v, want %v", minutes, wantM)
	}
	for i := range wantM {
		if minutes[i] != wantM[i] || level[i] != wantL[i] {
			t.Fatalf("series (%v, %v), want (%v, %v)", minutes, level, wantM, wantL)
		}
	}
	if peak, at := a.PeakConcurrency(); peak != 3 || at != 1 {
		t.Fatalf("peak = (%d, %d), want (3, 1)", peak, at)
	}
}

// TestWorkloadMerge: merged partials equal a single-pass build — the
// property campaign aggregation rests on.
func TestWorkloadMerge(t *testing.T) {
	recs := []*trace.Record{
		wlRec("rtt", "s1", 0, 60, 2*time.Second, 0),
		wlRec("rtt", "s2", 30, 90, 4*time.Second, 1),
		wlRec("leastloaded", "s2", 10, 70, 6*time.Second, 2),
		wlRec("leastloaded", "s3", 40, 100, 8*time.Second, 0),
	}
	whole := Aggregate(recs)
	a, b := Aggregate(recs[:2]), Aggregate(recs[2:])
	merged := NewAggregates()
	merged.Merge(a)
	merged.Merge(b)

	wr, mr := whole.Workload(), merged.Workload()
	if len(wr) != len(mr) {
		t.Fatalf("row counts differ: %d vs %d", len(wr), len(mr))
	}
	for i := range wr {
		if wr[i] != mr[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, wr[i], mr[i])
		}
	}
	wm, wl := whole.Concurrency()
	mm, ml := merged.Concurrency()
	if len(wm) != len(mm) {
		t.Fatal("concurrency series lengths differ after merge")
	}
	for i := range wm {
		if wm[i] != mm[i] || wl[i] != ml[i] {
			t.Fatal("concurrency series differ after merge")
		}
	}
}
