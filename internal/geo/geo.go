// Package geo models the study's geography: the 11 RealServer sites in 8
// countries (Figure 3 / Figure 8), the 63-user population across 12
// countries (Figure 4 / Figure 7, with the US broken down by state in
// Figure 9), and the wide-area route characteristics between regions that
// shape the per-region performance splits (Figures 14, 15, 22, 23).
package geo

import (
	"fmt"
	"math/rand"
	"time"

	"realtracer/internal/netsim"
)

// Region is the coarse geographic bucket used by the analysis.
type Region int

const (
	RegionNorthAmerica Region = iota
	RegionEurope
	RegionAsia
	RegionAustralia
	RegionSouthAmerica
	RegionJapan
)

// String implements fmt.Stringer with the paper's labels.
func (r Region) String() string {
	switch r {
	case RegionNorthAmerica:
		return "US/Canada"
	case RegionEurope:
		return "Europe"
	case RegionAsia:
		return "Asia"
	case RegionAustralia:
		return "Australia"
	case RegionSouthAmerica:
		return "Brazil"
	case RegionJapan:
		return "Japan"
	default:
		return fmt.Sprintf("Region(%d)", int(r))
	}
}

// ServerRegions lists the 5 server-side analysis buckets of Figure 14 (the
// paper folds Japan's FujiTV into Asia for the regional analysis).
func ServerRegions() []Region {
	return []Region{RegionAsia, RegionSouthAmerica, RegionNorthAmerica, RegionAustralia, RegionEurope}
}

// UserRegions lists the 4 user-side analysis buckets of Figure 15.
func UserRegions() []Region {
	return []Region{RegionAustralia, RegionNorthAmerica, RegionAsia, RegionEurope}
}

// AnalysisServerRegion maps a server's region to its Figure-14 bucket.
func AnalysisServerRegion(r Region) Region {
	if r == RegionJapan {
		return RegionAsia
	}
	return r
}

// AnalysisUserRegion maps a user's region to its Figure-15 bucket.
func AnalysisUserRegion(r Region) Region {
	switch r {
	case RegionJapan, RegionSouthAmerica:
		return RegionAsia // no such users in the study; defensive fold
	default:
		return r
	}
}

// ServerSite is one of the study's RealServer installations (Figure 10's
// x-axis).
type ServerSite struct {
	// Name is the paper's label, e.g. "US/CNN".
	Name string
	// Host is the simulator host name.
	Host string
	// Country and Region locate the site.
	Country string
	Region  Region
	// Unavailability is the site's clip-unavailability rate (Figure 10
	// varies roughly 3-20 % across servers).
	Unavailability float64
	// Clips is the number of playlist entries drawn from this site. The
	// playlist had 98 clips across 11 servers, with US sites contributing
	// the most (Figure 8).
	Clips int
}

// Sites returns the 11 server sites. Clip counts are proportioned so the
// served-clips-per-country breakdown lands near Figure 8 (US 1075, UK 416,
// Brazil 297, Australia 294, China 260, Italy 240, Japan 184, Canada 126 of
// 2892 served ⇒ roughly 36/14/10/10/9/8/6/4 %).
func Sites() []ServerSite {
	return []ServerSite{
		{Name: "US/CNN", Host: "cnn.us", Country: "US", Region: RegionNorthAmerica, Unavailability: 0.06, Clips: 19},
		{Name: "US/ABC", Host: "abc.us", Country: "US", Region: RegionNorthAmerica, Unavailability: 0.10, Clips: 17},
		{Name: "UK/BBC", Host: "bbc.uk", Country: "UK", Region: RegionEurope, Unavailability: 0.05, Clips: 8},
		{Name: "UK/ITN", Host: "itn.uk", Country: "UK", Region: RegionEurope, Unavailability: 0.12, Clips: 6},
		{Name: "BRZ/UOL", Host: "uol.br", Country: "Brazil", Region: RegionSouthAmerica, Unavailability: 0.20, Clips: 10},
		{Name: "AUS/BBC", Host: "abc.au", Country: "Australia", Region: RegionAustralia, Unavailability: 0.22, Clips: 10},
		{Name: "CHI/CCTV", Host: "cctv.cn", Country: "China", Region: RegionAsia, Unavailability: 0.09, Clips: 9},
		{Name: "ITA/Kwvideo", Host: "kw.it", Country: "Italy", Region: RegionEurope, Unavailability: 0.08, Clips: 8},
		{Name: "JAP/FUJITV", Host: "fuji.jp", Country: "Japan", Region: RegionJapan, Unavailability: 0.13, Clips: 6},
		{Name: "CAN/CBC", Host: "cbc.ca", Country: "Canada", Region: RegionNorthAmerica, Unavailability: 0.03, Clips: 5},
		// The paper's Figure 10 lists 10 server labels while the text says
		// 11 servers in 8 countries; the eleventh (a second US site) is
		// reconstructed here so totals match the text.
		{Name: "US/WPI", Host: "wpi.us", Country: "US", Region: RegionNorthAmerica, Unavailability: 0.04, Clips: 0},
	}
}

// PlaylistSize is the study's playlist length.
const PlaylistSize = 98

// ActiveSites filters to the sites that actually serve clips (Clips > 0):
// the hosts the dynamics layer targets, and the mirror set the open-loop
// selection layer replicates every clip across.
func ActiveSites(sites []ServerSite) []ServerSite {
	out := make([]ServerSite, 0, len(sites))
	for _, s := range sites {
		if s.Clips > 0 {
			out = append(out, s)
		}
	}
	return out
}

// User is one study participant.
type User struct {
	// Name is the simulator host name.
	Name string
	// Country locates the user (Figure 7); State refines US users
	// (Figure 9).
	Country string
	State   string
	Region  Region
	// Access is the self-reported network configuration.
	Access netsim.AccessClass
	// ModemKbps is the actual sync rate for modem users (V.34 hardware and
	// bad lines at the low end, clean V.90 at the top). Zero for broadband.
	ModemKbps float64
	// PCClass indexes into the player CPU profiles (Figure 19's classes).
	PCClass int
	// PreferTCP marks users whose RealPlayer/firewall ends up on TCP data
	// (Figure 16: 44 % of flows).
	PreferTCP bool
	// ClipsToPlay is how far through the playlist this user got (Figure 5:
	// median ≥ 40 of 98).
	ClipsToPlay int
	// ClipsToRate is how many ratings the user volunteered (Figure 6:
	// median 3, long tail).
	ClipsToRate int
	// RatingAnchor is the user's personal "normalization" centre (Section
	// V.C: ratings look uniform with mean ≈ 5 across users).
	RatingAnchor float64
	// RatesAVTogether: some users rated audio+video, some video only
	// (Section V.C's criteria confusion).
	RatesAVTogether bool
}

// countryPlan drives the user sampler toward the paper's Figure 7 mix. The
// counts are users per country; clip counts emerge from playlist progress.
type countryPlan struct {
	country string
	region  Region
	users   int
	// clipBias scales how much of the playlist users from here complete,
	// steering per-country clip totals toward Figure 7.
	clipBias float64
}

var plans = []countryPlan{
	{"US", RegionNorthAmerica, 38, 1.15},
	{"China", RegionAsia, 3, 1.0},
	{"Germany", RegionEurope, 3, 0.9},
	{"France", RegionEurope, 3, 0.8},
	{"Australia", RegionAustralia, 3, 0.7},
	{"Canada", RegionNorthAmerica, 2, 0.9},
	{"UK", RegionEurope, 2, 0.6},
	{"UAE", RegionAsia, 2, 0.6},
	{"Romania", RegionEurope, 2, 0.5},
	{"New Zealand", RegionAustralia, 2, 0.35},
	{"India", RegionAsia, 2, 0.2},
	{"Egypt", RegionAsia, 1, 0.2},
}

// usStates reproduces Figure 9's Massachusetts-heavy state mix.
var usStates = []struct {
	state  string
	weight float64
}{
	{"MA", 0.50}, {"FL", 0.07}, {"NC", 0.06}, {"MN", 0.05}, {"MD", 0.05},
	{"DE", 0.04}, {"WI", 0.04}, {"CA", 0.04}, {"TX", 0.03}, {"IL", 0.03},
	{"CO", 0.02}, {"NH", 0.02}, {"CT", 0.02}, {"TN", 0.01}, {"ME", 0.01},
	{"WA", 0.005}, {"VA", 0.005},
}

// Population generates the study's user population deterministically from
// seed. Totals follow the paper: 63 users, 12 countries.
func Population(seed int64) []*User { return PopulationN(seed, PopulationSize) }

// PopulationSize is the paper's participant count.
const PopulationSize = 63

// apportion scales the per-country user counts to a population of n by
// largest-remainder apportionment over the paper's 63-user mix. For n = 63
// it reproduces the paper's counts exactly.
func apportion(n int) []int {
	counts := make([]int, len(plans))
	rems := make([]float64, len(plans))
	given := 0
	for i, plan := range plans {
		q := float64(n) * float64(plan.users) / float64(PopulationSize)
		counts[i] = int(q)
		rems[i] = q - float64(counts[i])
		given += counts[i]
	}
	for given < n {
		best := -1
		for i := range plans {
			if best < 0 || rems[i] > rems[best] {
				best = i
			}
		}
		counts[best]++
		rems[best] = -1
		given++
	}
	return counts
}

// PopulationN generates a population of n users deterministically from
// seed, preserving the paper's country mix by proportional apportionment —
// the knob that scales a study past the original 63-participant panel.
// PopulationN(seed, 63) is identical to Population(seed).
func PopulationN(seed int64, n int) []*User {
	if n <= 0 {
		n = PopulationSize
	}
	counts := apportion(n)
	rng := rand.New(rand.NewSource(seed))
	var users []*User
	i := 0
	for pi, plan := range plans {
		for u := 0; u < counts[pi]; u++ {
			user := &User{
				Name:    fmt.Sprintf("user%02d.%s", i, sanitize(plan.country)),
				Country: plan.country,
				Region:  plan.region,
			}
			i++
			if plan.country == "US" {
				user.State = pickState(rng)
			}
			user.Access = pickAccess(rng, plan.country)
			if user.Access == netsim.AccessModem {
				user.ModemKbps = 26 + rng.Float64()*20
			}
			user.PCClass = pickPC(rng)
			user.PreferTCP = rng.Float64() < 0.44
			user.ClipsToPlay = pickClipCount(rng, plan.clipBias)
			user.ClipsToRate = pickRateCount(rng, user.ClipsToPlay)
			user.RatingAnchor = 2.5 + rng.Float64()*5 // centres spread over 2.5-7.5
			user.RatesAVTogether = rng.Float64() < 0.5
			users = append(users, user)
		}
	}
	return users
}

func sanitize(country string) string {
	out := make([]rune, 0, len(country))
	for _, r := range country {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+'a'-'A')
		}
	}
	return string(out)
}

func pickState(rng *rand.Rand) string {
	r := rng.Float64()
	acc := 0.0
	for _, s := range usStates {
		acc += s.weight
		if r < acc {
			return s.state
		}
	}
	return usStates[0].state
}

// pickAccess reflects mid-2001 access mixes: modems still common, broadband
// growing in the US/Europe, workplace T1/LAN well represented (the study
// was solicited through campus and work contacts).
func pickAccess(rng *rand.Rand, country string) netsim.AccessClass {
	r := rng.Float64()
	switch country {
	case "US", "Canada":
		switch {
		case r < 0.22:
			return netsim.AccessModem
		case r < 0.62:
			return netsim.AccessDSLCable
		default:
			return netsim.AccessT1LAN
		}
	case "India", "Egypt", "Romania":
		if r < 0.75 {
			return netsim.AccessModem
		}
		return netsim.AccessT1LAN
	default:
		switch {
		case r < 0.35:
			return netsim.AccessModem
		case r < 0.70:
			return netsim.AccessDSLCable
		default:
			return netsim.AccessT1LAN
		}
	}
}

func pickPC(rng *rand.Rand) int {
	// Index into player.PCClasses() order: PII/32, PII/128-256, PIII,
	// Celeron, MMX, AMD. Mostly recent machines, a slow tail.
	r := rng.Float64()
	switch {
	case r < 0.10:
		return 0 // Pentium II / 32MB
	case r < 0.35:
		return 1 // Pentium II / 128-256MB
	case r < 0.65:
		return 2 // Pentium III
	case r < 0.80:
		return 3 // Celeron
	case r < 0.88:
		return 4 // Pentium MMX — the genuinely slow class
	default:
		return 5 // AMD
	}
}

// pickClipCount draws playlist progress so that the Figure-5 CDF's shape
// holds: a spread from a handful of clips to the full 98, median >= 40,
// with the population total landing near the paper's 2855 plays.
func pickClipCount(rng *rand.Rand, bias float64) int {
	base := 6 + rng.Intn(83) // 6..88
	n := int(float64(base) * bias)
	if n < 3 {
		n = 3
	}
	if n > PlaylistSize {
		n = PlaylistSize
	}
	return n
}

// pickRateCount: users were asked to rate 3-10 clips; half rated about 3,
// some rated many more, some none (Figure 6).
func pickRateCount(rng *rand.Rand, played int) int {
	r := rng.Float64()
	var n int
	switch {
	case r < 0.15:
		n = 0
	case r < 0.55:
		n = 3
	case r < 0.82:
		n = 4 + rng.Intn(8)
	default:
		n = 12 + rng.Intn(26)
	}
	if n > played {
		n = played
	}
	return n
}

// RouteTable implements netsim.RouteTable from the region matrix: hosts are
// located by suffix lookup against the registered sites and users.
type RouteTable struct {
	regionOf map[string]Region
	rng      *rand.Rand
	// CongestionScale globally scales cross-traffic for ablations.
	CongestionScale float64
}

// NewRouteTable builds the table for the given sites and users.
func NewRouteTable(sites []ServerSite, users []*User, seed int64) *RouteTable {
	t := &RouteTable{
		regionOf:        make(map[string]Region),
		rng:             rand.New(rand.NewSource(seed)),
		CongestionScale: 1,
	}
	for _, s := range sites {
		t.regionOf[s.Host] = s.Region
	}
	for _, u := range users {
		t.regionOf[u.Name] = u.Region
	}
	return t
}

// regionPair captures inter-region base characteristics (one way).
type pairChar struct {
	owd        time.Duration
	jitter     time.Duration
	loss       float64
	capKbps    float64
	congestion float64
	congVar    float64
}

// pairChars is indexed [from][to] after folding Japan into Asia and South
// America into its own row; symmetric by construction below.
func baseChar(a, b Region) pairChar {
	// Fold for matrix purposes.
	fold := func(r Region) int {
		switch r {
		case RegionNorthAmerica:
			return 0
		case RegionEurope:
			return 1
		case RegionAsia, RegionJapan:
			return 2
		case RegionAustralia:
			return 3
		case RegionSouthAmerica:
			return 4
		}
		return 0
	}
	i, j := fold(a), fold(b)
	if i > j {
		i, j = j, i
	}
	// 2001-era wide-area characteristics: transpacific and southern-
	// hemisphere links are long, lossy and congested; intra-NA/EU paths are
	// comparatively clean. Capacity is per-flow available share.
	key := i*10 + j
	switch key {
	case 0: // NA-NA
		return pairChar{owd: 35 * time.Millisecond, jitter: 8 * time.Millisecond, loss: 0.003, capKbps: 2200, congestion: 0.15, congVar: 0.09}
	case 1: // NA-EU
		return pairChar{owd: 55 * time.Millisecond, jitter: 12 * time.Millisecond, loss: 0.006, capKbps: 1600, congestion: 0.20, congVar: 0.11}
	case 2: // NA-Asia
		return pairChar{owd: 95 * time.Millisecond, jitter: 22 * time.Millisecond, loss: 0.015, capKbps: 900, congestion: 0.32, congVar: 0.15}
	case 3: // NA-AUS
		return pairChar{owd: 90 * time.Millisecond, jitter: 25 * time.Millisecond, loss: 0.018, capKbps: 650, congestion: 0.40, congVar: 0.16}
	case 4: // NA-SA
		return pairChar{owd: 75 * time.Millisecond, jitter: 18 * time.Millisecond, loss: 0.012, capKbps: 1000, congestion: 0.26, congVar: 0.13}
	case 11: // EU-EU
		return pairChar{owd: 25 * time.Millisecond, jitter: 7 * time.Millisecond, loss: 0.003, capKbps: 2000, congestion: 0.14, congVar: 0.09}
	case 12: // EU-Asia
		return pairChar{owd: 110 * time.Millisecond, jitter: 24 * time.Millisecond, loss: 0.017, capKbps: 800, congestion: 0.34, congVar: 0.15}
	case 13: // EU-AUS
		return pairChar{owd: 130 * time.Millisecond, jitter: 28 * time.Millisecond, loss: 0.020, capKbps: 600, congestion: 0.42, congVar: 0.17}
	case 14: // EU-SA
		return pairChar{owd: 95 * time.Millisecond, jitter: 20 * time.Millisecond, loss: 0.014, capKbps: 850, congestion: 0.28, congVar: 0.13}
	case 22: // Asia-Asia
		return pairChar{owd: 45 * time.Millisecond, jitter: 18 * time.Millisecond, loss: 0.012, capKbps: 950, congestion: 0.29, congVar: 0.14}
	case 23: // Asia-AUS
		return pairChar{owd: 85 * time.Millisecond, jitter: 24 * time.Millisecond, loss: 0.019, capKbps: 650, congestion: 0.38, congVar: 0.16}
	case 24: // Asia-SA
		return pairChar{owd: 150 * time.Millisecond, jitter: 30 * time.Millisecond, loss: 0.022, capKbps: 580, congestion: 0.40, congVar: 0.16}
	case 33: // AUS-AUS
		return pairChar{owd: 30 * time.Millisecond, jitter: 12 * time.Millisecond, loss: 0.008, capKbps: 1100, congestion: 0.25, congVar: 0.13}
	case 34: // AUS-SA
		return pairChar{owd: 160 * time.Millisecond, jitter: 32 * time.Millisecond, loss: 0.024, capKbps: 550, congestion: 0.42, congVar: 0.17}
	case 44: // SA-SA
		return pairChar{owd: 35 * time.Millisecond, jitter: 14 * time.Millisecond, loss: 0.010, capKbps: 1000, congestion: 0.27, congVar: 0.13}
	}
	return pairChar{owd: 80 * time.Millisecond, jitter: 20 * time.Millisecond, loss: 0.012, capKbps: 950, congestion: 0.26, congVar: 0.13}
}

// MinOneWayDelay returns the smallest one-way propagation delay any route
// built from the region matrix can carry — the conservative-synchronization
// lookahead for sharded execution (netsim.Fabric). Lemon-path draws degrade
// capacity, loss and jitter but never shorten propagation, and the
// unknown-host fallback route is slower than the matrix minimum, so this is
// a true lower bound for every host pair. It is a property of the matrix
// alone — independent of the population, the seed and the shard count —
// which is what keeps lookahead-derived timestamps partition-invariant.
func MinOneWayDelay() time.Duration {
	regions := []Region{RegionNorthAmerica, RegionEurope, RegionAsia,
		RegionAustralia, RegionSouthAmerica, RegionJapan}
	min := time.Duration(0)
	for _, a := range regions {
		for _, b := range regions {
			if owd := baseChar(a, b).owd; min == 0 || owd < min {
				min = owd
			}
		}
	}
	return min
}

// badPathProb is the chance a given host pair's route is a lemon: a
// persistently congested or misrouted path well below the regional norm.
// The 2001 Internet had plenty — they are the broadband slideshows of
// Figure 12 (about 20 % of broadband plays were under 3 fps).
func badPathProb(a, b Region) float64 {
	intl := AnalysisServerRegion(a) != AnalysisServerRegion(b)
	far := a == RegionAustralia || b == RegionAustralia ||
		a == RegionAsia || b == RegionAsia || a == RegionJapan || b == RegionJapan ||
		a == RegionSouthAmerica || b == RegionSouthAmerica
	switch {
	case far && intl:
		return 0.40
	case intl:
		return 0.20
	case far:
		return 0.25
	default:
		return 0.12
	}
}

// Route implements netsim.RouteTable. Each ordered host pair gets a
// deterministic draw: usually the regional characteristics, occasionally a
// lemon path.
func (t *RouteTable) Route(fromHost, toHost string) netsim.Route {
	ra, okA := t.regionOf[fromHost]
	rb, okB := t.regionOf[toHost]
	if !okA || !okB {
		return netsim.Route{OneWayDelay: 50 * time.Millisecond, Jitter: 10 * time.Millisecond, LossRate: 0.01}
	}
	c := baseChar(ra, rb)
	// Deterministic per-pair randomness: hash the unordered pair so both
	// directions of a conversation share their fate.
	h := pairHash(fromHost, toHost)
	u := float64(h%10000) / 10000
	if u < badPathProb(ra, rb) {
		c.capKbps *= 0.06
		if c.capKbps < 40 {
			c.capKbps = 40
		}
		c.congestion = 0.55
		c.congVar *= 1.3
		c.loss *= 3
		c.jitter *= 2
	}
	cong := c.congestion * t.CongestionScale
	if cong > 0.9 {
		cong = 0.9
	}
	return netsim.Route{
		OneWayDelay:    c.owd,
		Jitter:         c.jitter,
		LossRate:       c.loss,
		CapacityKbps:   c.capKbps,
		CongestionMean: cong,
		CongestionVar:  c.congVar * t.CongestionScale,
	}
}

// pairHash is a direction-independent FNV hash of the two host names.
func pairHash(a, b string) uint64 {
	if b < a {
		a, b = b, a
	}
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(a); i++ {
		h = (h ^ uint64(a[i])) * prime
	}
	h = (h ^ '|') * prime
	for i := 0; i < len(b); i++ {
		h = (h ^ uint64(b[i])) * prime
	}
	return h
}
