package geo

import (
	"testing"
	"time"

	"realtracer/internal/netsim"
)

func TestPopulationShape(t *testing.T) {
	users := Population(1)
	if len(users) != 63 {
		t.Fatalf("users=%d want 63 (the paper's count)", len(users))
	}
	countries := map[string]bool{}
	names := map[string]bool{}
	for _, u := range users {
		countries[u.Country] = true
		if names[u.Name] {
			t.Fatalf("duplicate user name %s", u.Name)
		}
		names[u.Name] = true
		if u.ClipsToPlay < 1 || u.ClipsToPlay > PlaylistSize {
			t.Fatalf("clips-to-play out of range: %d", u.ClipsToPlay)
		}
		if u.ClipsToRate > u.ClipsToPlay {
			t.Fatalf("rates more than plays: %d > %d", u.ClipsToRate, u.ClipsToPlay)
		}
		if u.RatingAnchor < 2 || u.RatingAnchor > 8 {
			t.Fatalf("anchor out of range: %v", u.RatingAnchor)
		}
		if u.Access == netsim.AccessModem && (u.ModemKbps < 20 || u.ModemKbps > 50) {
			t.Fatalf("modem rate out of range: %v", u.ModemKbps)
		}
		if u.Access != netsim.AccessModem && u.ModemKbps != 0 {
			t.Fatal("broadband user with modem rate")
		}
		if u.Country == "US" && u.State == "" {
			t.Fatal("US user without state")
		}
	}
	if len(countries) != 12 {
		t.Fatalf("countries=%d want 12", len(countries))
	}
}

func TestPopulationNMatchesPopulationAt63(t *testing.T) {
	a, b := Population(3), PopulationN(3, 63)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("user %d differs between Population and PopulationN(63)", i)
		}
	}
}

func TestPopulationNScalesCountryMix(t *testing.T) {
	for _, n := range []int{1, 10, 63, 200, 1000} {
		users := PopulationN(4, n)
		if len(users) != n {
			t.Fatalf("PopulationN(%d) produced %d users", n, len(users))
		}
		names := map[string]bool{}
		byCountry := map[string]int{}
		for _, u := range users {
			if names[u.Name] {
				t.Fatalf("n=%d: duplicate user name %s", n, u.Name)
			}
			names[u.Name] = true
			byCountry[u.Country]++
			if u.ClipsToPlay < 1 || u.ClipsToPlay > PlaylistSize || u.ClipsToRate > u.ClipsToPlay {
				t.Fatalf("n=%d: implausible user %+v", n, u)
			}
		}
		if n >= 63 {
			// The paper's mix: US dominates at roughly 38/63 of the panel.
			us := float64(byCountry["US"]) / float64(n)
			if us < 0.5 || us > 0.7 {
				t.Fatalf("n=%d: US share %.2f strayed from the paper's 60%%", n, us)
			}
			if len(byCountry) != 12 {
				t.Fatalf("n=%d: countries=%d want 12", n, len(byCountry))
			}
		}
	}
	// Deterministic for the same seed, different for different seeds.
	a, b := PopulationN(4, 200), PopulationN(4, 200)
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatal("PopulationN not deterministic")
		}
	}
}

func TestPopulationDeterministic(t *testing.T) {
	a, b := Population(5), Population(5)
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("user %d differs across same-seed populations", i)
		}
	}
	c := Population(6)
	same := true
	for i := range a {
		if a[i].PreferTCP != c[i].PreferTCP || a[i].ClipsToPlay != c[i].ClipsToPlay {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical populations")
	}
}

func TestPreferTCPShare(t *testing.T) {
	users := Population(2)
	tcp := 0
	for _, u := range users {
		if u.PreferTCP {
			tcp++
		}
	}
	frac := float64(tcp) / float64(len(users))
	if frac < 0.2 || frac > 0.65 {
		t.Fatalf("PreferTCP share %.2f implausible for the 44%% TCP mix", frac)
	}
}

func TestSitesInventory(t *testing.T) {
	sites := Sites()
	if len(sites) != 11 {
		t.Fatalf("sites=%d want 11", len(sites))
	}
	countries := map[string]bool{}
	total := 0
	for _, s := range sites {
		countries[s.Country] = true
		total += s.Clips
		if s.Unavailability < 0 || s.Unavailability > 0.5 {
			t.Fatalf("%s unavailability %v", s.Name, s.Unavailability)
		}
	}
	if len(countries) != 8 {
		t.Fatalf("server countries=%d want 8", len(countries))
	}
	if total != PlaylistSize {
		t.Fatalf("playlist clips=%d want %d", total, PlaylistSize)
	}
}

func TestRegionFolding(t *testing.T) {
	if AnalysisServerRegion(RegionJapan) != RegionAsia {
		t.Fatal("Japan should fold into Asia for server analysis")
	}
	if AnalysisServerRegion(RegionEurope) != RegionEurope {
		t.Fatal("Europe should be itself")
	}
	if len(ServerRegions()) != 5 || len(UserRegions()) != 4 {
		t.Fatal("analysis bucket counts wrong (paper: 5 server, 4 user regions)")
	}
}

func TestRouteTableDeterministic(t *testing.T) {
	sites := Sites()
	users := Population(1)
	a := NewRouteTable(sites, users, 3)
	b := NewRouteTable(sites, users, 3)
	for _, u := range users[:10] {
		for _, s := range sites {
			ra := a.Route(s.Host, u.Name)
			rb := b.Route(s.Host, u.Name)
			if ra != rb {
				t.Fatalf("route %s->%s not deterministic", s.Host, u.Name)
			}
		}
	}
}

func TestRouteDirectionSharesFate(t *testing.T) {
	sites := Sites()
	users := Population(1)
	rt := NewRouteTable(sites, users, 3)
	fwd := rt.Route(sites[0].Host, users[0].Name)
	rev := rt.Route(users[0].Name, sites[0].Host)
	// The lemon-path draw hashes the unordered pair: both directions agree
	// on capacity class.
	if (fwd.CapacityKbps < 200) != (rev.CapacityKbps < 200) {
		t.Fatal("directions disagree on lemon-path status")
	}
}

func TestBadPathsExist(t *testing.T) {
	sites := Sites()
	users := Population(1)
	rt := NewRouteTable(sites, users, 3)
	lemons, total := 0, 0
	for _, u := range users {
		for _, s := range sites {
			total++
			if rt.Route(s.Host, u.Name).CapacityKbps < 200 {
				lemons++
			}
		}
	}
	frac := float64(lemons) / float64(total)
	if frac < 0.05 || frac > 0.45 {
		t.Fatalf("lemon-path fraction %.2f outside plausible range", frac)
	}
}

func TestInternationalWorseThanDomestic(t *testing.T) {
	us := baseChar(RegionNorthAmerica, RegionNorthAmerica)
	aus := baseChar(RegionNorthAmerica, RegionAustralia)
	if aus.owd <= us.owd || aus.loss <= us.loss || aus.capKbps >= us.capKbps {
		t.Fatal("NA-AUS route should be strictly worse than NA-NA")
	}
	if baseChar(RegionAustralia, RegionNorthAmerica) != aus {
		t.Fatal("baseChar should be symmetric")
	}
}

func TestUnknownHostFallbackRoute(t *testing.T) {
	rt := NewRouteTable(nil, nil, 1)
	r := rt.Route("mystery1", "mystery2")
	if r.OneWayDelay <= 0 || r.OneWayDelay > time.Second {
		t.Fatalf("fallback route odd: %+v", r)
	}
}

func TestCongestionScale(t *testing.T) {
	sites := Sites()
	users := Population(1)
	rt := NewRouteTable(sites, users, 3)
	rt.CongestionScale = 2
	r := rt.Route(sites[0].Host, sites[1].Host)
	if r.CongestionMean > 0.9 {
		t.Fatalf("scaled congestion should clamp at 0.9: %v", r.CongestionMean)
	}
}

func TestPairHashUnordered(t *testing.T) {
	if pairHash("a", "b") != pairHash("b", "a") {
		t.Fatal("pairHash must be direction independent")
	}
	if pairHash("a", "b") == pairHash("a", "c") {
		t.Fatal("pairHash collision on trivial inputs")
	}
}

func TestUSStateWeightsFavorMA(t *testing.T) {
	users := Population(7)
	states := map[string]int{}
	us := 0
	for _, u := range users {
		if u.Country == "US" {
			us++
			states[u.State]++
		}
	}
	if us == 0 || states["MA"] < us/4 {
		t.Fatalf("MA share too small: %d of %d", states["MA"], us)
	}
}
