package media

import "realtracer/internal/snap"

// Persist writes the source's playout position for a world checkpoint. The
// scene layout and RNG are not serialized: both are pure functions of
// (clip.Seed, encoding), so the restore side rebuilds them with Reset and
// overlays only the cursor fields. sizeCredit is always zero (reserved) and
// is not persisted.
func (fs *FrameSource) Persist(sw *snap.Writer) {
	sw.Tag("fsrc")
	sw.Int(fs.sceneIdx)
	sw.Int(fs.videoIdx)
	sw.Int(fs.audioIdx)
	sw.Dur(fs.videoAt)
	sw.Dur(fs.audioAt)
}

// RestoreState rebuilds the source for clip at enc and overlays the cursor
// written by Persist. The result is frame-for-frame identical to the source
// the checkpointed world held: Reset replays the scene-construction draws
// from clip.Seed, and no draws happen after construction.
func (fs *FrameSource) RestoreState(clip *Clip, enc Encoding, sr *snap.Reader) {
	fs.Reset(clip, enc)
	sr.Tag("fsrc")
	fs.sceneIdx = sr.Int()
	fs.videoIdx = sr.Int()
	fs.audioIdx = sr.Int()
	fs.videoAt = sr.Dur()
	fs.audioAt = sr.Dur()
}
