// Package media models RealVideo content: clips encoded with SureStream
// (one clip, several target-bandwidth encodings — paper Section II.C), the
// audio/video bandwidth split within each encoding, scene-dependent frame
// rates ("RealVideo adjusts the frame rate by keeping the frame rate up in
// high-action scenes, and reducing it in low-action scenes", Section V), and
// a deterministic synthetic clip-library generator standing in for the 98
// clips the study selected from 11 real servers.
package media

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// ContentType is the rough genre mix the authors drew from news/media sites.
type ContentType int

const (
	ContentNews ContentType = iota
	ContentSports
	ContentMusic
	ContentMovie
)

// String implements fmt.Stringer.
func (c ContentType) String() string {
	switch c {
	case ContentNews:
		return "news"
	case ContentSports:
		return "sports"
	case ContentMusic:
		return "music"
	case ContentMovie:
		return "movie"
	default:
		return fmt.Sprintf("ContentType(%d)", int(c))
	}
}

// Encoding is one SureStream stream: a complete (audio + video) encoding of
// the clip at a target bandwidth.
type Encoding struct {
	// TotalKbps is the encoding's target bandwidth.
	TotalKbps float64
	// AudioKbps is reserved for the audio codec; a 20 Kbps clip with a
	// 5 Kbps voice codec leaves 15 Kbps for video (Section II.C).
	AudioKbps float64
	// FrameRate is the encoded video frame rate in fps.
	FrameRate float64
	// Width and Height are the frame dimensions.
	Width, Height int
	// KeyframeEvery is the keyframe interval in frames.
	KeyframeEvery int
}

// VideoKbps is the bandwidth left for the video track.
func (e Encoding) VideoKbps() float64 { return e.TotalKbps - e.AudioKbps }

// Clip is one streamable video with its SureStream encodings.
type Clip struct {
	// URL identifies the clip on its server ("rtsp://host/path").
	URL string
	// Title is display-only.
	Title string
	// Content is the genre, which shapes the action profile.
	Content ContentType
	// Duration is the full media length.
	Duration time.Duration
	// Encodings is sorted ascending by TotalKbps: the SureStream set.
	Encodings []Encoding
	// ScalableVideo marks clips encoded with the Scalable Video Technology
	// option, letting the player degrade frame rate gracefully on slow
	// machines (Section II.C). Most clips have it.
	ScalableVideo bool
	// Live marks content captured and encoded in real time (a camera or TV
	// feed). Live frames do not exist until their capture time, so the
	// server cannot push media ahead of realtime — the structural
	// difference the paper's future-work section cites from [LH01].
	Live bool
	// Seed makes the clip's frame-size and scene randomness reproducible.
	Seed int64
}

// EncodingFor selects the best SureStream encoding not exceeding maxKbps,
// falling back to the lowest. This is the server's stream-selection rule at
// session start and at every mid-playout switch.
func (c *Clip) EncodingFor(maxKbps float64) Encoding {
	best := c.Encodings[0]
	for _, e := range c.Encodings {
		if e.TotalKbps <= maxKbps {
			best = e
		}
	}
	return best
}

// EncodingIndexFor is EncodingFor returning the index.
func (c *Clip) EncodingIndexFor(maxKbps float64) int {
	idx := 0
	for i, e := range c.Encodings {
		if e.TotalKbps <= maxKbps {
			idx = i
		}
	}
	return idx
}

// MaxEncoding returns the highest-bandwidth encoding.
func (c *Clip) MaxEncoding() Encoding { return c.Encodings[len(c.Encodings)-1] }

// Frame is one unit of media data produced by a FrameSource.
type Frame struct {
	// Video is true for video frames, false for audio packets.
	Video bool
	// Index is the per-track sequence.
	Index int
	// MediaTime is the presentation time from clip start.
	MediaTime time.Duration
	// Size is the encoded size in bytes.
	Size int
	// Keyframe marks video keyframes.
	Keyframe bool
}

// scene captures a stretch of the clip with a given action level in [0,1].
type scene struct {
	until  time.Duration
	action float64
}

// FrameSource deterministically generates the frame sequence of one clip at
// one encoding. The server drains it in media-time order; switching
// encodings mid-playout creates a new source resumed at the switch time.
type FrameSource struct {
	clip *Clip
	enc  Encoding
	rng  *rand.Rand

	scenes     []scene
	sceneIdx   int
	videoIdx   int
	audioIdx   int
	videoAt    time.Duration
	audioAt    time.Duration
	sizeCredit float64 // rolling bit budget so mean rate matches VideoKbps
}

// audioPacketInterval is how often audio packets are emitted.
const audioPacketInterval = 250 * time.Millisecond

// NewFrameSource builds a source positioned at media time zero.
func NewFrameSource(clip *Clip, enc Encoding) *FrameSource {
	fs := &FrameSource{}
	fs.Reset(clip, enc)
	return fs
}

// NewFrameSourceAt builds a source fast-forwarded to media time t — used
// when SureStream switches encodings mid-playout.
func NewFrameSourceAt(clip *Clip, enc Encoding, t time.Duration) *FrameSource {
	fs := &FrameSource{}
	fs.ResetAt(clip, enc, t)
	return fs
}

// Reset repositions the source at media time zero for clip at enc, reusing
// the source's RNG and scene storage. Reseeding the pooled RNG reproduces
// exactly the draw stream a fresh source would make, so a recycled source
// is frame-for-frame identical to a new one.
func (fs *FrameSource) Reset(clip *Clip, enc Encoding) {
	fs.clip, fs.enc = clip, enc
	if fs.rng == nil {
		fs.rng = rand.New(rand.NewSource(clip.Seed))
	} else {
		fs.rng.Seed(clip.Seed)
	}
	fs.scenes = fs.scenes[:0]
	fs.sceneIdx, fs.videoIdx, fs.audioIdx = 0, 0, 0
	fs.videoAt, fs.audioAt, fs.sizeCredit = 0, 0, 0
	fs.buildScenes()
}

// ResetAt is Reset fast-forwarded to media time t — the SureStream
// mid-playout switch on a pooled source.
func (fs *FrameSource) ResetAt(clip *Clip, enc Encoding, t time.Duration) {
	fs.Reset(clip, enc)
	for {
		f, ok := fs.Peek()
		if !ok || f.MediaTime >= t {
			break
		}
		fs.Next()
	}
}

// buildScenes lays out the clip's action profile. Genre sets the mean
// action: sports and movies run hot, news runs cold.
func (fs *FrameSource) buildScenes() {
	meanAction := map[ContentType]float64{
		ContentNews:   0.30,
		ContentSports: 0.75,
		ContentMusic:  0.55,
		ContentMovie:  0.65,
	}[fs.clip.Content]
	var t time.Duration
	for t < fs.clip.Duration {
		length := time.Duration(3+fs.rng.Intn(10)) * time.Second
		t += length
		action := meanAction + fs.rng.NormFloat64()*0.2
		if action < 0.05 {
			action = 0.05
		}
		if action > 1 {
			action = 1
		}
		fs.scenes = append(fs.scenes, scene{until: t, action: action})
	}
}

func (fs *FrameSource) actionAt(t time.Duration) float64 {
	for fs.sceneIdx < len(fs.scenes)-1 && fs.scenes[fs.sceneIdx].until <= t {
		fs.sceneIdx++
	}
	return fs.scenes[fs.sceneIdx].action
}

// Peek returns the next frame without consuming it. ok is false at end of
// clip.
func (fs *FrameSource) Peek() (Frame, bool) {
	f, _, ok := fs.next(false)
	return f, ok
}

// Next consumes and returns the next frame in media-time order (audio and
// video interleaved).
func (fs *FrameSource) Next() (Frame, bool) {
	f, _, ok := fs.next(true)
	return f, ok
}

func (fs *FrameSource) next(consume bool) (Frame, bool, bool) {
	videoDone := fs.videoAt >= fs.clip.Duration
	audioDone := fs.audioAt >= fs.clip.Duration
	if videoDone && audioDone {
		return Frame{}, false, false
	}
	// Emit whichever track is earliest.
	if audioDone || (!videoDone && fs.videoAt <= fs.audioAt) {
		f := fs.videoFrame()
		if consume {
			fs.advanceVideo(f)
		}
		return f, true, true
	}
	f := fs.audioFrame()
	if consume {
		fs.audioIdx++
		fs.audioAt += audioPacketInterval
	}
	return f, true, true
}

// videoFrame sizes the frame so the long-run video rate matches the
// encoding: size = rate / fps, with keyframes ~3x larger than deltas and the
// budget balanced by a rolling credit.
func (fs *FrameSource) videoFrame() Frame {
	interval := fs.frameInterval(fs.videoAt)
	bitsPerFrame := fs.enc.VideoKbps() * 1000 * interval.Seconds()
	key := fs.enc.KeyframeEvery > 0 && fs.videoIdx%fs.enc.KeyframeEvery == 0
	// Keyframes are ~2.5x a nominal frame; delta frames shrink so the mean
	// stays at the budget: keyMult + (k-1)*deltaMult = k.
	const keyMult = 2.5
	mult := 1.0
	if k := fs.enc.KeyframeEvery; k > 1 {
		if key {
			mult = keyMult
		} else {
			mult = (float64(k) - keyMult) / float64(k-1)
		}
	}
	size := int(bitsPerFrame * mult / 8)
	if size < 60 {
		size = 60
	}
	return Frame{Video: true, Index: fs.videoIdx, MediaTime: fs.videoAt, Size: size, Keyframe: key}
}

// frameInterval returns the gap to the next video frame: the encoded rate
// modulated by scene action, as RealProducer does ("keeping the frame rate
// up in high-action scenes, and reducing it in low-action scenes").
func (fs *FrameSource) frameInterval(t time.Duration) time.Duration {
	action := fs.actionAt(t)
	// High action keeps the full frame rate; low action trims ~30 %.
	fps := fs.enc.FrameRate * (0.70 + 0.30*action)
	if fps < 1 {
		fps = 1
	}
	return time.Duration(float64(time.Second) / fps)
}

func (fs *FrameSource) advanceVideo(f Frame) {
	fs.videoIdx++
	fs.videoAt += fs.frameInterval(fs.videoAt)
}

func (fs *FrameSource) audioFrame() Frame {
	size := int(fs.enc.AudioKbps * 1000 * audioPacketInterval.Seconds() / 8)
	if size < 20 {
		size = 20
	}
	return Frame{Video: false, Index: fs.audioIdx, MediaTime: fs.audioAt, Size: size}
}

// Encoding returns the encoding the source is generating.
func (fs *FrameSource) Encoding() Encoding { return fs.enc }

// standard SureStream ladders, per RealProducer's 2001 target-audience
// presets (28k modem, 56k modem, single ISDN, dual ISDN, DSL/cable, T1).
// Keyframe intervals target ~2 s of media, the RealProducer default range —
// which also bounds how much video a single unrepaired loss can corrupt.
var surestreamLadder = []Encoding{
	{TotalKbps: 20, AudioKbps: 5, FrameRate: 7.5, Width: 176, Height: 132, KeyframeEvery: 15},
	{TotalKbps: 34, AudioKbps: 8, FrameRate: 10, Width: 176, Height: 132, KeyframeEvery: 20},
	{TotalKbps: 80, AudioKbps: 11, FrameRate: 15, Width: 240, Height: 180, KeyframeEvery: 30},
	{TotalKbps: 150, AudioKbps: 16, FrameRate: 15, Width: 320, Height: 240, KeyframeEvery: 30},
	{TotalKbps: 225, AudioKbps: 20, FrameRate: 20, Width: 320, Height: 240, KeyframeEvery: 40},
	{TotalKbps: 350, AudioKbps: 32, FrameRate: 30, Width: 320, Height: 240, KeyframeEvery: 60},
}

// SureStreamLadder returns a copy of the standard encoding ladder.
func SureStreamLadder() []Encoding {
	return append([]Encoding(nil), surestreamLadder...)
}

// GenerateClip builds one synthetic clip carrying the ladder rungs in
// [minKbps, maxKbps]. Content providers "select target bandwidths
// appropriate for their target audience" (Section II): a broadband-targeted
// clip often carried no modem encoding at all, and a modem-targeted clip no
// broadband one. A narrowband user requesting a broadband-only clip is
// served its lowest (still unsustainable) encoding — a major source of the
// slideshow-rate playouts in Figure 12.
func GenerateClip(url, title string, content ContentType, dur time.Duration, minKbps, maxKbps float64, seed int64) *Clip {
	var encs []Encoding
	for _, e := range surestreamLadder {
		if e.TotalKbps >= minKbps && e.TotalKbps <= maxKbps {
			encs = append(encs, e)
		}
	}
	if len(encs) == 0 {
		// Degenerate range: carry the single rung closest to minKbps.
		best := surestreamLadder[0]
		for _, e := range surestreamLadder {
			if e.TotalKbps <= minKbps {
				best = e
			}
		}
		encs = []Encoding{best}
	}
	return &Clip{
		URL:           url,
		Title:         title,
		Content:       content,
		Duration:      dur,
		Encodings:     encs,
		ScalableVideo: true,
		Seed:          seed,
	}
}

// GenerateLiveClip builds a synthetic live feed: same encodings and scene
// model as a pre-recorded clip, but flagged Live so servers pace it at
// capture rate.
func GenerateLiveClip(url, title string, content ContentType, dur time.Duration, minKbps, maxKbps float64, seed int64) *Clip {
	c := GenerateClip(url, title, content, dur, minKbps, maxKbps, seed)
	c.Live = true
	return c
}

// Library is a set of clips hosted by one server.
type Library struct {
	Clips []*Clip
	byURL map[string]*Clip
}

// NewLibrary indexes clips by URL.
func NewLibrary(clips []*Clip) *Library {
	l := &Library{Clips: clips, byURL: make(map[string]*Clip, len(clips))}
	for _, c := range clips {
		l.byURL[c.URL] = c
	}
	return l
}

// Lookup returns the clip for url, or nil.
func (l *Library) Lookup(url string) *Clip { return l.byURL[url] }

// GenerateLibrary creates n clips for the named server host with a genre and
// bandwidth mix matching 2001 news/media sites: mostly modem-targeted
// content with a broadband minority.
func GenerateLibrary(host string, n int, seed int64) *Library {
	rng := rand.New(rand.NewSource(seed))
	genres := []ContentType{ContentNews, ContentNews, ContentNews, ContentSports, ContentMusic, ContentMovie}
	clips := make([]*Clip, 0, n)
	for i := 0; i < n; i++ {
		content := genres[rng.Intn(len(genres))]
		// Target-audience floor: many 2001 clips carried no modem rung.
		var minKbps float64
		switch r := rng.Float64(); {
		case r < 0.30:
			minKbps = 20
		case r < 0.60:
			minKbps = 34
		case r < 0.85:
			minKbps = 80
		default:
			minKbps = 150
		}
		// Target-audience cap: half the clips stop at dual-ISDN rates; the
		// rest carry broadband encodings.
		var maxKbps float64
		switch r := rng.Float64(); {
		case r < 0.25:
			maxKbps = 80
		case r < 0.55:
			maxKbps = 150
		case r < 0.80:
			maxKbps = 225
		default:
			maxKbps = 350
		}
		if maxKbps < minKbps {
			maxKbps = minKbps
		}
		// Clip lengths: "even small clips lasting several minutes".
		dur := time.Duration(60+rng.Intn(420)) * time.Second
		url := fmt.Sprintf("rtsp://%s/clip%03d.rm", host, i)
		title := fmt.Sprintf("%s-%s-%03d", host, content, i)
		clips = append(clips, GenerateClip(url, title, content, dur, minKbps, maxKbps, rng.Int63()))
	}
	return NewLibrary(clips)
}

// BitsForDuration returns the approximate number of payload bits an
// encoding emits over d — used in capacity planning and tests.
func BitsForDuration(e Encoding, d time.Duration) float64 {
	return e.TotalKbps * 1000 * d.Seconds()
}

// FullMotionFPS and friends: the perceptual frame-rate thresholds the paper
// analyzes against (Section V).
const (
	FullMotionFPS    = 24.0 // 24-30 fps: continuous motion
	SmoothFPS        = 15.0 // approximates full motion
	MinAcceptableFPS = 3.0  // below this: a slideshow
	VeryChoppyFPS    = 7.0
)

// JitterImperceptible and JitterUnacceptable are the paper's jitter
// thresholds: 50 ms (below human perception for streaming) and 300 ms
// (roughly the inter-frame time at the minimum acceptable 3 fps).
const (
	JitterImperceptible = 50 * time.Millisecond
	JitterUnacceptable  = 300 * time.Millisecond
)

// Ceil is a tiny helper used by packetizers: integer ceiling division.
func Ceil(a, b int) int {
	if b <= 0 {
		return 0
	}
	return int(math.Ceil(float64(a) / float64(b)))
}
