package media

import (
	"testing"
	"testing/quick"
	"time"
)

func testClip(min, max float64) *Clip {
	return GenerateClip("rtsp://h/c.rm", "t", ContentNews, 2*time.Minute, min, max, 42)
}

func TestLadderSelection(t *testing.T) {
	c := testClip(20, 350)
	if len(c.Encodings) != 6 {
		t.Fatalf("full ladder should have 6 rungs, got %d", len(c.Encodings))
	}
	if c.EncodingFor(100).TotalKbps != 80 {
		t.Fatalf("EncodingFor(100)=%v want 80", c.EncodingFor(100).TotalKbps)
	}
	if c.EncodingFor(5).TotalKbps != 20 {
		t.Fatal("below-minimum request should fall back to lowest rung")
	}
	if c.EncodingFor(9999).TotalKbps != 350 {
		t.Fatal("above-maximum request should pick top rung")
	}
	if c.MaxEncoding().TotalKbps != 350 {
		t.Fatal("MaxEncoding wrong")
	}
}

func TestLadderFloor(t *testing.T) {
	c := testClip(80, 350)
	if c.Encodings[0].TotalKbps != 80 {
		t.Fatalf("floor not applied: lowest=%v", c.Encodings[0].TotalKbps)
	}
	// A modem asking for 34 Kbps still gets the 80 Kbps rung — the
	// broadband-only-clip situation behind the slideshow playouts.
	if c.EncodingFor(34).TotalKbps != 80 {
		t.Fatal("sub-floor request should serve lowest available rung")
	}
}

func TestDegenerateRange(t *testing.T) {
	c := GenerateClip("u", "t", ContentNews, time.Minute, 500, 600, 1)
	if len(c.Encodings) != 1 {
		t.Fatalf("degenerate range should carry one rung, got %d", len(c.Encodings))
	}
}

func TestEncodingIndexForMatchesEncodingFor(t *testing.T) {
	c := testClip(20, 350)
	for _, kbps := range []float64{0, 21, 34, 79, 150, 226, 500} {
		i := c.EncodingIndexFor(kbps)
		if c.Encodings[i] != c.EncodingFor(kbps) {
			t.Fatalf("index/selector disagree at %v", kbps)
		}
	}
}

func TestFrameSourceMediaTimeMonotone(t *testing.T) {
	fs := NewFrameSource(testClip(20, 350), testClip(20, 350).Encodings[3])
	var last time.Duration = -1
	n := 0
	for {
		f, ok := fs.Next()
		if !ok {
			break
		}
		if f.MediaTime < last {
			t.Fatalf("media time went backwards at frame %d: %v < %v", n, f.MediaTime, last)
		}
		last = f.MediaTime
		n++
	}
	if n == 0 {
		t.Fatal("no frames generated")
	}
	if last < 2*time.Minute-2*time.Second {
		t.Fatalf("clip ended early at %v", last)
	}
}

func TestFrameSourceRateConvergence(t *testing.T) {
	clip := testClip(20, 350)
	for _, enc := range clip.Encodings {
		fs := NewFrameSource(clip, enc)
		var bits float64
		for {
			f, ok := fs.Next()
			if !ok {
				break
			}
			bits += float64(f.Size) * 8
		}
		wantBits := enc.TotalKbps * 1000 * clip.Duration.Seconds()
		ratio := bits / wantBits
		// The scene-dependent frame rate intentionally trims low-action
		// stretches, so the realized rate runs somewhat under target.
		if ratio < 0.55 || ratio > 1.25 {
			t.Errorf("encoding %v realized %.2fx of target rate", enc.TotalKbps, ratio)
		}
	}
}

func TestKeyframeCadence(t *testing.T) {
	clip := testClip(20, 350)
	enc := clip.Encodings[1] // 34 Kbps, KeyframeEvery 20
	fs := NewFrameSource(clip, enc)
	videoIdx := 0
	for {
		f, ok := fs.Next()
		if !ok {
			break
		}
		if !f.Video {
			continue
		}
		wantKey := videoIdx%enc.KeyframeEvery == 0
		if f.Keyframe != wantKey {
			t.Fatalf("keyframe flag wrong at video frame %d", videoIdx)
		}
		if f.Keyframe && f.Size <= 0 {
			t.Fatal("keyframe with no size")
		}
		videoIdx++
	}
}

func TestKeyframesLargerThanDeltas(t *testing.T) {
	clip := testClip(20, 350)
	fs := NewFrameSource(clip, clip.Encodings[2])
	var keySum, deltaSum, keyN, deltaN float64
	for {
		f, ok := fs.Next()
		if !ok {
			break
		}
		if !f.Video {
			continue
		}
		if f.Keyframe {
			keySum += float64(f.Size)
			keyN++
		} else {
			deltaSum += float64(f.Size)
			deltaN++
		}
	}
	if keySum/keyN < 1.5*(deltaSum/deltaN) {
		t.Fatalf("keyframes (%f) not meaningfully larger than deltas (%f)", keySum/keyN, deltaSum/deltaN)
	}
}

func TestFrameSourceDeterministic(t *testing.T) {
	clip := testClip(20, 350)
	a := NewFrameSource(clip, clip.Encodings[0])
	b := NewFrameSource(clip, clip.Encodings[0])
	for i := 0; i < 500; i++ {
		fa, oka := a.Next()
		fb, okb := b.Next()
		if oka != okb || fa != fb {
			t.Fatalf("same seed diverged at frame %d", i)
		}
		if !oka {
			break
		}
	}
}

func TestNewFrameSourceAtResumes(t *testing.T) {
	clip := testClip(20, 350)
	enc := clip.Encodings[4]
	fs := NewFrameSourceAt(clip, enc, 30*time.Second)
	f, ok := fs.Next()
	if !ok {
		t.Fatal("resumed source empty")
	}
	if f.MediaTime < 30*time.Second {
		t.Fatalf("resumed source starts at %v, want >= 30s", f.MediaTime)
	}
	if f.MediaTime > 32*time.Second {
		t.Fatalf("resumed source overshoots: %v", f.MediaTime)
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	clip := testClip(20, 350)
	fs := NewFrameSource(clip, clip.Encodings[0])
	p1, _ := fs.Peek()
	p2, _ := fs.Peek()
	n, _ := fs.Next()
	if p1 != p2 || p1 != n {
		t.Fatal("Peek consumed or diverged from Next")
	}
}

func TestAudioVideoInterleaved(t *testing.T) {
	clip := testClip(20, 350)
	fs := NewFrameSource(clip, clip.Encodings[0])
	var audio, video int
	for i := 0; i < 200; i++ {
		f, ok := fs.Next()
		if !ok {
			break
		}
		if f.Video {
			video++
		} else {
			audio++
		}
	}
	if audio == 0 || video == 0 {
		t.Fatalf("tracks not interleaved: audio=%d video=%d", audio, video)
	}
}

func TestActionProfileByGenre(t *testing.T) {
	// Sports clips should sustain a higher realized frame rate than news at
	// the same encoding.
	rate := func(content ContentType) float64 {
		clip := GenerateClip("u", "t", content, 3*time.Minute, 20, 350, 7)
		fs := NewFrameSource(clip, clip.Encodings[5])
		frames := 0
		for {
			f, ok := fs.Next()
			if !ok {
				break
			}
			if f.Video {
				frames++
			}
		}
		return float64(frames) / clip.Duration.Seconds()
	}
	news, sports := rate(ContentNews), rate(ContentSports)
	if sports <= news {
		t.Fatalf("sports fps %f should exceed news fps %f", sports, news)
	}
}

func TestGenerateLibrary(t *testing.T) {
	lib := GenerateLibrary("host", 20, 3)
	if len(lib.Clips) != 20 {
		t.Fatalf("clips=%d", len(lib.Clips))
	}
	seen := map[string]bool{}
	for _, c := range lib.Clips {
		if seen[c.URL] {
			t.Fatalf("duplicate URL %s", c.URL)
		}
		seen[c.URL] = true
		if lib.Lookup(c.URL) != c {
			t.Fatal("lookup broken")
		}
		if len(c.Encodings) == 0 {
			t.Fatal("clip with no encodings")
		}
		if c.Duration < time.Minute {
			t.Fatalf("clip too short: %v", c.Duration)
		}
	}
	if lib.Lookup("rtsp://host/nope.rm") != nil {
		t.Fatal("lookup of missing URL should be nil")
	}
}

func TestGenerateLibraryDeterministic(t *testing.T) {
	a := GenerateLibrary("h", 10, 9)
	b := GenerateLibrary("h", 10, 9)
	for i := range a.Clips {
		if a.Clips[i].URL != b.Clips[i].URL || a.Clips[i].Seed != b.Clips[i].Seed ||
			len(a.Clips[i].Encodings) != len(b.Clips[i].Encodings) {
			t.Fatal("library generation not deterministic")
		}
	}
}

// Property: EncodingFor never exceeds the request unless the request is
// below the clip floor.
func TestPropertyEncodingForBound(t *testing.T) {
	f := func(req uint16) bool {
		c := testClip(20, 350)
		e := c.EncodingFor(float64(req))
		if float64(req) >= 20 {
			return e.TotalKbps <= float64(req)
		}
		return e.TotalKbps == 20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVideoKbpsSplit(t *testing.T) {
	for _, e := range SureStreamLadder() {
		if e.VideoKbps() <= 0 || e.VideoKbps() >= e.TotalKbps {
			t.Fatalf("audio/video split broken for %v", e.TotalKbps)
		}
	}
}

func TestCeil(t *testing.T) {
	cases := []struct{ a, b, want int }{{10, 3, 4}, {9, 3, 3}, {1, 1400, 1}, {0, 5, 0}, {5, 0, 0}}
	for _, c := range cases {
		if got := Ceil(c.a, c.b); got != c.want {
			t.Errorf("Ceil(%d,%d)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}
