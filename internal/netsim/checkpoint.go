package netsim

import (
	"fmt"
	"sort"

	"realtracer/internal/detrand"
	"realtracer/internal/simclock"
	"realtracer/internal/snap"
)

// Checkpoint/restore for the network layer. The snapshot holds only what a
// rebuilt world cannot rederive: the interning table (ID order is
// load-bearing — persisted HostIDs and grid indices stay valid only if the
// restored table assigns the same IDs), attached hosts' access configs and
// fluid-queue state, each path's dynamic fields (the route itself comes back
// from the RouteTable), every in-flight packet with its original (At, seq),
// and the draw counts of the two RNG streams. Packet payloads are opaque to
// netsim — the transport layer injects the payload codec.

func init() {
	simclock.RegisterEventKind("netsim.packet", &Packet{})
}

// PayloadCodec serializes the opaque packet payloads netsim carries by
// reference. The transport layer provides the implementation; netsim cannot
// depend on it.
type PayloadCodec struct {
	Encode func(*snap.Writer, any) error
	Decode func(*snap.Reader) (any, error)
}

// pathEntry pairs an ordered host pair with its path state for a
// deterministic checkpoint walk.
type pathEntry struct {
	from, to HostID
	p        *pathState
}

// sortedPaths returns every existing pathState with its pair, ordered by
// (from, to) so the snapshot bytes do not depend on map iteration.
func (n *Network) sortedPaths() []pathEntry {
	var out []pathEntry
	if n.grid != nil {
		for f := 1; f <= n.stride; f++ {
			for t := 1; t <= n.stride; t++ {
				if p := n.grid[(f-1)*n.stride+(t-1)]; p != nil {
					out = append(out, pathEntry{HostID(f), HostID(t), p})
				}
			}
		}
		return out
	}
	for k, p := range n.overflow {
		out = append(out, pathEntry{k.from, k.to, p})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].from != out[j].from {
			return out[i].from < out[j].from
		}
		return out[i].to < out[j].to
	})
	return out
}

// Checkpoint writes the network's core dynamic state: RNG positions,
// counters, the interning table, attached hosts and path state. In-flight
// packets are written separately by CheckpointPackets — their payloads may
// reference transport connections, which the world serializes between the
// two calls so packet payload references can resolve against restored conns.
func (n *Network) Checkpoint(sw *snap.Writer) error {
	if n.fab != nil {
		return fmt.Errorf("netsim: sharded networks cannot be checkpointed")
	}
	sw.Tag("netsim")

	seed, count := n.drng.State()
	sw.I64(seed)
	sw.U64(count)
	sw.Bool(n.dyn != nil)
	if n.dyn != nil {
		dseed, dcount := n.dyn.drng.State()
		sw.I64(dseed)
		sw.U64(dcount)
	}
	sw.U64(n.sent)
	sw.U64(n.delivered)
	sw.U64(n.dropped)

	// Interning table, in ID order. Restore replays it through Intern so a
	// rebuilt world's name->ID assignment matches the snapshot exactly.
	sw.Tag("hosts")
	sw.U32(uint32(len(n.names) - 1))
	for _, name := range n.names[1:] {
		sw.Str(name)
	}
	attached := 0
	for _, h := range n.hostTab {
		if h != nil {
			attached++
		}
	}
	sw.U32(uint32(attached))
	for id := 1; id < len(n.hostTab); id++ {
		h := n.hostTab[id]
		if h == nil {
			continue
		}
		sw.I64(int64(id))
		sw.F64(h.cfg.Access.DownKbps)
		sw.F64(h.cfg.Access.UpKbps)
		sw.Dur(h.cfg.Access.QueueDelayMax)
		sw.Dur(h.cfg.Access.BaseDelay)
		sw.Dur(h.upBusyUntil)
		sw.Dur(h.downBusyUntil)
	}

	sw.Tag("paths")
	paths := n.sortedPaths()
	sw.U32(uint32(len(paths)))
	for _, pe := range paths {
		p := pe.p
		sw.I64(int64(pe.from))
		sw.I64(int64(pe.to))
		sw.Dur(p.busyUntil)
		// CongestionMean/Var can be overridden after path creation
		// (SetCongestionMean); everything else in the route is rederived
		// from the RouteTable.
		sw.F64(p.route.CongestionMean)
		sw.F64(p.route.CongestionVar)
		sw.F64(p.congestion)
		sw.Dur(p.lastResample)
		sw.Bool(p.dynMatched)
		sw.U32(uint32(len(p.dynEvents)))
		for _, i := range p.dynEvents {
			sw.Int(i)
		}
		sw.U32(uint32(len(p.ge)))
		for _, g := range p.ge {
			sw.Bool(g.bad)
			sw.Dur(g.last)
		}
	}
	return sw.Err()
}

// CheckpointPackets writes every in-flight packet of this network with its
// scheduled (At, seq); see Checkpoint for why this is a separate section.
func (n *Network) CheckpointPackets(sw *snap.Writer, pc PayloadCodec) error {
	sw.Tag("packets")
	var pkts []simclock.PendingEvent
	for _, pe := range n.Clock.Pendings() {
		if pkt, ok := pe.Handler.(*Packet); ok && pkt.net == n {
			if pkt.edge {
				return fmt.Errorf("netsim: edge-scheduled packet in classic checkpoint")
			}
			pkts = append(pkts, pe)
		}
	}
	sw.U32(uint32(len(pkts)))
	for _, pe := range pkts {
		pkt := pe.Handler.(*Packet)
		sw.Dur(pe.At)
		sw.U64(pe.Seq)
		sw.Str(string(pkt.From))
		sw.Str(string(pkt.To))
		sw.I64(int64(pkt.FromID))
		sw.I64(int64(pkt.ToID))
		sw.I64(int64(pkt.FromPort))
		sw.I64(int64(pkt.ToPort))
		sw.Int(pkt.Size)
		if err := pc.Encode(sw, pkt.Payload); err != nil {
			return fmt.Errorf("netsim: packet payload: %w", err)
		}
	}
	return sw.Err()
}

// Restore overlays checkpointed state onto a freshly rebuilt network. The
// caller must already have rebuilt the static world (build-time hosts
// attached, dynamics schedule reinstalled when applicable) and Reset the
// clock to the snapshot's scalars; Restore re-interns the name table,
// re-attaches runtime hosts, overlays path and queue state, and re-arms
// in-flight packets with their original (At, seq).
//
// restoreDynamics must be false when the restored world runs a different
// dynamics schedule than the checkpointed one (a fork): the per-path event
// indices and chain state then refer to the old schedule and are discarded,
// along with the old dynamics draw stream.
func (n *Network) Restore(sr *snap.Reader, restoreDynamics bool) error {
	if n.fab != nil {
		return fmt.Errorf("netsim: sharded networks cannot be restored")
	}
	sr.Tag("netsim")

	seed := sr.I64()
	count := sr.U64()
	if sr.Err() == nil {
		n.drng = detrand.Restore(seed, count)
		n.rng = n.drng.Rand
	}
	if sr.Bool() {
		dseed := sr.I64()
		dcount := sr.U64()
		if restoreDynamics && n.dyn != nil && sr.Err() == nil {
			n.dyn.drng = detrand.Restore(dseed, dcount)
			n.dyn.rng = n.dyn.drng.Rand
		}
	}
	n.sent = sr.U64()
	n.delivered = sr.U64()
	n.dropped = sr.U64()

	sr.Tag("hosts")
	names := int(sr.U32())
	for i := 0; i < names; i++ {
		name := sr.Str()
		if sr.Err() != nil {
			return sr.Err()
		}
		if id := n.Intern(name); id != HostID(i+1) {
			return fmt.Errorf("netsim: restore interning mismatch: %q got ID %d, want %d (world rebuilt differently than checkpointed)", name, id, i+1)
		}
	}
	attached := int(sr.U32())
	for i := 0; i < attached; i++ {
		id := HostID(sr.I64())
		var prof AccessProfile
		prof.DownKbps = sr.F64()
		prof.UpKbps = sr.F64()
		prof.QueueDelayMax = sr.Dur()
		prof.BaseDelay = sr.Dur()
		up := sr.Dur()
		down := sr.Dur()
		if sr.Err() != nil {
			return sr.Err()
		}
		if id <= 0 || int(id) >= len(n.hostTab) {
			return fmt.Errorf("netsim: restore host ID %d out of range", id)
		}
		h := n.lookup(id)
		if h == nil {
			n.AddHost(HostConfig{Name: n.names[id], Access: prof})
			h = n.hostTab[id]
		} else if h.cfg.Access != prof {
			return fmt.Errorf("netsim: restore host %q access profile mismatch", n.names[id])
		}
		h.upBusyUntil, h.downBusyUntil = up, down
	}

	sr.Tag("paths")
	paths := int(sr.U32())
	for i := 0; i < paths; i++ {
		from := HostID(sr.I64())
		to := HostID(sr.I64())
		busy := sr.Dur()
		congMean := sr.F64()
		congVar := sr.F64()
		cong := sr.F64()
		last := sr.Dur()
		dynMatched := sr.Bool()
		events := make([]int, int(sr.U32()))
		for j := range events {
			events[j] = sr.Int()
		}
		ge := make([]geState, int(sr.U32()))
		for j := range ge {
			ge[j].bad = sr.Bool()
			ge[j].last = sr.Dur()
		}
		if sr.Err() != nil {
			return sr.Err()
		}
		if int(from) >= len(n.names) || int(to) >= len(n.names) || from <= 0 || to <= 0 {
			return fmt.Errorf("netsim: restore path (%d,%d) out of range", from, to)
		}
		p := n.path(from, to)
		p.busyUntil = busy
		p.route.CongestionMean = congMean
		p.route.CongestionVar = congVar
		p.congestion = cong
		p.lastResample = last
		if restoreDynamics && n.dyn != nil {
			p.dynMatched = dynMatched
			if len(events) > 0 {
				p.dynEvents = events
			}
			if len(ge) > 0 {
				p.ge = ge
			}
		}
	}
	return sr.Err()
}

// RestorePackets re-injects the in-flight packets written by
// CheckpointPackets, re-arming each with its original (At, seq). Call after
// the world's transport connections are restored: the payload codec may
// resolve segment references against them.
func (n *Network) RestorePackets(sr *snap.Reader, pc PayloadCodec) error {
	sr.Tag("packets")
	pkts := int(sr.U32())
	for i := 0; i < pkts; i++ {
		at := sr.Dur()
		seq := sr.U64()
		from := Addr(sr.Str())
		to := Addr(sr.Str())
		fromID := HostID(sr.I64())
		toID := HostID(sr.I64())
		fromPort := int32(sr.I64())
		toPort := int32(sr.I64())
		size := sr.Int()
		payload, err := pc.Decode(sr)
		if err != nil {
			return fmt.Errorf("netsim: packet payload: %w", err)
		}
		if sr.Err() != nil {
			return sr.Err()
		}
		pkt := n.Obtain()
		pkt.From, pkt.To = from, to
		pkt.FromID, pkt.ToID = fromID, toID
		pkt.FromPort, pkt.ToPort = fromPort, toPort
		pkt.Size = size
		pkt.Payload = payload
		pkt.net = n
		n.Clock.Arm(at, seq, pkt)
	}
	return sr.Err()
}

// RNGState exposes the base draw stream's position for tests.
func (n *Network) RNGState() (seed int64, count uint64) { return n.drng.State() }

// ReseedRNGs re-derives the network's draw streams from fresh seeds — the
// fork path: a named fork of a checkpoint diverges from its siblings by
// reseeding every stream deterministically instead of replaying the
// checkpointed draw counts. dynSeed is ignored when no dynamics schedule is
// installed.
func (n *Network) ReseedRNGs(seed, dynSeed int64) {
	n.drng = detrand.New(seed)
	n.rng = n.drng.Rand
	if n.dyn != nil {
		n.dyn.drng = detrand.New(dynSeed)
		n.dyn.rng = n.dyn.drng.Rand
	}
}
