package netsim

import (
	"bytes"
	"testing"
	"time"

	"realtracer/internal/simclock"
	"realtracer/internal/snap"
)

// delivery is one recorded packet arrival.
type delivery struct {
	at      time.Duration
	to      Addr
	payload int64
	size    int
}

// i64Codec persists the test's int64 payloads.
var i64Codec = PayloadCodec{
	Encode: func(sw *snap.Writer, v any) error {
		sw.I64(v.(int64))
		return sw.Err()
	},
	Decode: func(sr *snap.Reader) (any, error) {
		return sr.I64(), sr.Err()
	},
}

// ckptWorld is a tiny two-host world with loss, jitter, a capacity
// bottleneck, cross-traffic and a dynamics schedule — every draw stream the
// checkpoint must capture.
type ckptWorld struct {
	clock *simclock.Clock
	net   *Network
	log   []delivery
}

func newCkptWorld() *ckptWorld {
	w := &ckptWorld{clock: simclock.New()}
	routes := StaticRoute{
		OneWayDelay:    40 * time.Millisecond,
		Jitter:         10 * time.Millisecond,
		LossRate:       0.02,
		CapacityKbps:   400,
		CongestionMean: 0.3,
		CongestionVar:  0.1,
	}
	w.net = New(w.clock, routes, 42)
	w.net.SetDynamics(NewDynamics().
		LossBurst("*", "*", 100*time.Millisecond, 2*time.Second, 0.3, 0.5, 0.4).
		Diurnal("a", "*", 0, 0, time.Second, 0.2), 77)
	w.net.AddHost(HostConfig{Name: "a", Access: DefaultAccessProfile(AccessServer)})
	w.net.AddHost(HostConfig{Name: "b", Access: DefaultAccessProfile(AccessModem)})
	record := func(pkt *Packet) {
		w.log = append(w.log, delivery{w.clock.Now(), pkt.To, pkt.Payload.(int64), pkt.Size})
	}
	w.net.Register("a:1", record)
	w.net.Register("b:1", record)
	return w
}

// drive advances the world through send ticks [from, to): each tick advances
// the clock and offers two packets, one in each direction.
func (w *ckptWorld) drive(from, to int) {
	for i := from; i < to; i++ {
		w.clock.RunUntil(time.Duration(i) * 5 * time.Millisecond)
		a := w.net.Obtain()
		a.From, a.To = "a:1", "b:1"
		a.Size = 500 + (i%7)*100
		a.Payload = int64(i)
		w.net.Send(a)
		b := w.net.Obtain()
		b.From, b.To = "b:1", "a:1"
		b.Size = 80
		b.Payload = int64(-i)
		w.net.Send(b)
	}
}

func checkpointNet(t *testing.T, n *Network) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw := snap.NewWriter(&buf)
	if err := n.Checkpoint(sw); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := n.CheckpointPackets(sw, i64Codec); err != nil {
		t.Fatalf("checkpoint packets: %v", err)
	}
	return buf.Bytes()
}

// TestNetworkCheckpointRoundTrip drives traffic to a mid-flight instant,
// checkpoints, restores into a freshly built twin, and checks the restored
// world's remaining deliveries — and its next checkpoint — are identical to
// the original's.
func TestNetworkCheckpointRoundTrip(t *testing.T) {
	const cut, end = 100, 200

	w1 := newCkptWorld()
	w1.drive(0, cut)
	snapBytes := checkpointNet(t, w1.net)
	if w1.clock.Pending() == 0 {
		t.Fatal("test needs in-flight packets at the checkpoint instant")
	}

	// Rebuild the static world exactly as a fresh build would, then overlay.
	w2 := newCkptWorld()
	w2.clock.Reset(w1.clock.Now(), w1.clock.Seq(), w1.clock.Fired())
	sr := snap.NewReader(bytes.NewReader(snapBytes))
	if err := w2.net.Restore(sr, true); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if err := w2.net.RestorePackets(sr, i64Codec); err != nil {
		t.Fatalf("restore packets: %v", err)
	}
	if got, want := w2.clock.Pending(), w1.clock.Pending(); got != want {
		t.Fatalf("restored %d in-flight packets, original holds %d", got, want)
	}
	w2.log = nil

	cutLen := len(w1.log)
	w1.drive(cut, end)
	w1.clock.Run()
	w2.drive(cut, end)
	w2.clock.Run()

	tail1 := w1.log[cutLen:]
	if len(tail1) != len(w2.log) {
		t.Fatalf("resumed run delivered %d packets, straight run %d", len(w2.log), len(tail1))
	}
	for i := range tail1 {
		if tail1[i] != w2.log[i] {
			t.Fatalf("delivery %d diverged: straight %+v, resumed %+v", i, tail1[i], w2.log[i])
		}
	}

	s1, d1, r1 := w1.net.Stats()
	s2, d2, r2 := w2.net.Stats()
	if s1 != s2 || d1 != d2 || r1 != r2 {
		t.Fatalf("stats diverged: straight (%d,%d,%d), resumed (%d,%d,%d)", s1, d1, r1, s2, d2, r2)
	}
	if b1, b2 := checkpointNet(t, w1.net), checkpointNet(t, w2.net); !bytes.Equal(b1, b2) {
		t.Fatalf("post-resume checkpoints differ (%d vs %d bytes)", len(b1), len(b2))
	}
}

// TestNetworkRestoreRejectsInterningMismatch pins the loud-failure contract:
// restoring into a world whose build interned different names errors instead
// of silently mis-wiring HostIDs.
func TestNetworkRestoreRejectsInterningMismatch(t *testing.T) {
	w1 := newCkptWorld()
	w1.drive(0, 20)
	snapBytes := checkpointNet(t, w1.net)

	clock := simclock.New()
	n2 := New(clock, StaticRoute{}, 42)
	n2.AddHost(HostConfig{Name: "z", Access: DefaultAccessProfile(AccessServer)})
	clock.Reset(w1.clock.Now(), w1.clock.Seq(), w1.clock.Fired())
	err := n2.Restore(snap.NewReader(bytes.NewReader(snapBytes)), false)
	if err == nil {
		t.Fatal("restore into a mismatched world succeeded")
	}
	if want := "interning mismatch"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}
