package netsim

import (
	"math"
	"math/rand"
	"time"

	"realtracer/internal/detrand"
)

// This file implements the network-dynamics layer: a Dynamics schedule of
// composable, simclock-driven events that turn the static simulated
// Internet into a time-varying one — link outages and degradation windows,
// bottleneck capacity ramps, diurnal and flash-crowd cross-traffic
// profiles, Gilbert–Elliott loss-burst episodes, and mid-session
// route-delay shifts. Events target named paths or hosts ("*" and
// "*suffix" patterns match groups), and everything random inside the layer
// draws from a dedicated RNG seeded via SetDynamics, so a schedule replays
// identically run after run. A Network with no dynamics installed behaves
// bit-for-bit as before: the layer makes zero RNG draws when absent.

// EventKind discriminates dynamics event types.
type EventKind int

const (
	// EventOutage drops every packet on matching paths during the window
	// (LossRate >= 1), or raises loss by LossRate for a partial degradation.
	EventOutage EventKind = iota
	// EventCapacityRamp scales the route bottleneck capacity: the factor
	// interpolates linearly from 1 at Start to CapacityFactor at the window
	// end and holds there afterwards (a completed ramp persists, modelling a
	// provisioning change or a lasting shift in competing load).
	EventCapacityRamp
	// EventDiurnal modulates cross-traffic sinusoidally: congestion gains
	// Amplitude * sin^2(pi * t / Period), the day/night load cycle.
	EventDiurnal
	// EventFlashCrowd spikes cross-traffic around Peak: congestion rises
	// linearly over RampUp to Amplitude, then decays exponentially with time
	// constant Decay — the slashdot shape.
	EventFlashCrowd
	// EventLossBurst runs a Gilbert–Elliott two-state chain on matching
	// paths during the window: each second the path enters the bad state
	// with probability PEnter and leaves it with probability PExit; while
	// bad, packets suffer BadLoss extra loss probability.
	EventLossBurst
	// EventDelayShift adds DelayDelta to the route's one-way delay from
	// Start (for Duration, or permanently when Duration <= 0) — a route
	// flap onto a longer path.
	EventDelayShift
)

// DynEvent is one scheduled dynamics event. From and To select the ordered
// paths it applies to: "" or "*" match any host, "*suffix" matches hosts
// with that suffix, anything else matches exactly. Start/Duration bound the
// active window in virtual time; Duration <= 0 means open-ended for kinds
// where that is meaningful (diurnal profiles, delay shifts, completed
// ramps).
type DynEvent struct {
	Kind     EventKind
	From, To string
	Start    time.Duration
	Duration time.Duration

	// LossRate: EventOutage loss probability (>= 1 drops everything).
	LossRate float64
	// CapacityFactor: EventCapacityRamp target multiplier.
	CapacityFactor float64
	// Amplitude: EventDiurnal / EventFlashCrowd congestion addition at peak.
	Amplitude float64
	// Period: EventDiurnal cycle length.
	Period time.Duration
	// RampUp, Decay: EventFlashCrowd rise time and decay constant. The spike
	// peaks at Start+RampUp.
	RampUp, Decay time.Duration
	// PEnter, PExit, BadLoss: EventLossBurst chain parameters (per-second
	// transition probabilities; extra loss while in the bad state).
	PEnter, PExit, BadLoss float64
	// DelayDelta: EventDelayShift one-way delay addition.
	DelayDelta time.Duration
}

// active reports whether the event influences time t at all.
func (e *DynEvent) active(t time.Duration) bool {
	switch e.Kind {
	case EventCapacityRamp:
		// A completed ramp persists past its window: the window bounds the
		// transition, not the new capacity.
		return t >= e.Start
	case EventFlashCrowd:
		return t >= e.Start
	default:
		if t < e.Start {
			return false
		}
		return e.Duration <= 0 || t < e.Start+e.Duration
	}
}

// Dynamics is a schedule of events. Build one with the fluent helpers and
// install it on a Network with SetDynamics before traffic flows.
type Dynamics struct {
	Events []DynEvent
}

// NewDynamics returns an empty schedule.
func NewDynamics() *Dynamics { return &Dynamics{} }

// add appends and returns the schedule for chaining.
func (d *Dynamics) add(e DynEvent) *Dynamics {
	d.Events = append(d.Events, e)
	return d
}

// Outage drops every packet on paths matching from->to during the window.
func (d *Dynamics) Outage(from, to string, start, dur time.Duration) *Dynamics {
	return d.add(DynEvent{Kind: EventOutage, From: from, To: to, Start: start, Duration: dur, LossRate: 1})
}

// Degrade raises loss on matching paths by lossRate during the window.
func (d *Dynamics) Degrade(from, to string, start, dur time.Duration, lossRate float64) *Dynamics {
	return d.add(DynEvent{Kind: EventOutage, From: from, To: to, Start: start, Duration: dur, LossRate: lossRate})
}

// CapacityRamp ramps the bottleneck capacity multiplier from 1 to factor
// across the window; the factor holds after the ramp completes.
func (d *Dynamics) CapacityRamp(from, to string, start, dur time.Duration, factor float64) *Dynamics {
	return d.add(DynEvent{Kind: EventCapacityRamp, From: from, To: to, Start: start, Duration: dur, CapacityFactor: factor})
}

// Diurnal modulates cross-traffic with a sin^2 cycle of the given period
// and peak amplitude, from start for dur (dur <= 0: forever).
func (d *Dynamics) Diurnal(from, to string, start, dur, period time.Duration, amplitude float64) *Dynamics {
	return d.add(DynEvent{Kind: EventDiurnal, From: from, To: to, Start: start, Duration: dur, Period: period, Amplitude: amplitude})
}

// FlashCrowd schedules a congestion spike: rising over rampUp from start,
// peaking at amplitude, decaying with time constant decay.
func (d *Dynamics) FlashCrowd(from, to string, start, rampUp, decay time.Duration, amplitude float64) *Dynamics {
	return d.add(DynEvent{Kind: EventFlashCrowd, From: from, To: to, Start: start, RampUp: rampUp, Decay: decay, Amplitude: amplitude})
}

// LossBurst runs a Gilbert–Elliott episode on matching paths during the
// window: per-second transitions good->bad with pEnter, bad->good with
// pExit, and badLoss extra loss probability while bad.
func (d *Dynamics) LossBurst(from, to string, start, dur time.Duration, pEnter, pExit, badLoss float64) *Dynamics {
	return d.add(DynEvent{Kind: EventLossBurst, From: from, To: to, Start: start, Duration: dur,
		PEnter: pEnter, PExit: pExit, BadLoss: badLoss})
}

// DelayShift adds delta one-way delay to matching paths from start (for
// dur, or permanently when dur <= 0).
func (d *Dynamics) DelayShift(from, to string, start, dur time.Duration, delta time.Duration) *Dynamics {
	return d.add(DynEvent{Kind: EventDelayShift, From: from, To: to, Start: start, Duration: dur, DelayDelta: delta})
}

// Compiled pattern kinds. Pattern semantics: "" and "*" match everything,
// "*suffix" matches by suffix, anything else matches one host name exactly.
const (
	patAny uint8 = iota
	patExact
	patSuffix
	patNone // exact name unknown to a frozen world: matches nothing
)

// compiledPattern is a host pattern resolved at SetDynamics time: exact
// names are interned to a HostID so per-path matching compares integers, and
// wildcards are classified once instead of re-parsed per match.
type compiledPattern struct {
	kind   uint8
	id     HostID // patExact: the interned host ID
	suffix string // patSuffix
}

func (n *Network) compilePattern(pattern string) compiledPattern {
	switch {
	case pattern == "" || pattern == "*":
		return compiledPattern{kind: patAny}
	case len(pattern) > 1 && pattern[0] == '*':
		return compiledPattern{kind: patSuffix, suffix: pattern[1:]}
	default:
		if n.frozen {
			// A frozen (sharded) world's name table is closed: an exact
			// pattern either resolves to an existing ID or names a host
			// that can never exist — compile it to never-match instead of
			// letting Intern panic over the closed table.
			if id, ok := n.ids[pattern]; ok {
				return compiledPattern{kind: patExact, id: id}
			}
			return compiledPattern{kind: patNone}
		}
		return compiledPattern{kind: patExact, id: n.Intern(pattern)}
	}
}

// match tests a compiled pattern against an interned host, identified by
// its frozen ID and name. Matching by ID/name rather than by attached
// *host lets the sharded engine match paths whose destination lives on
// another shard (remote hosts are never attached locally).
func (c *compiledPattern) match(id HostID, name string) bool {
	switch c.kind {
	case patAny:
		return true
	case patExact:
		return c.id == id
	case patNone:
		return false
	default:
		return len(name) >= len(c.suffix) && name[len(name)-len(c.suffix):] == c.suffix
	}
}

// compiledEvent pairs one schedule event with its compiled endpoint
// patterns.
type compiledEvent struct {
	from, to compiledPattern
}

// geState is the Gilbert–Elliott chain state for one (path, event) pair.
type geState struct {
	bad  bool
	last time.Duration // chain advanced through this virtual time
}

// dynState is the per-network dynamics runtime: the installed schedule, its
// per-event compiled patterns, and its private RNG. Chain state lives on
// each pathState so paths evolve independently (but deterministically, since
// the single-threaded clock fixes the draw order).
type dynState struct {
	spec     *Dynamics
	compiled []compiledEvent
	rng      *rand.Rand
	// drng is rng's draw-counting wrapper (rng aliases drng.Rand), read by
	// the checkpoint layer; see Network.drng.
	drng *detrand.Rand
}

// dynEffect is the folded influence of every active event on one packet.
type dynEffect struct {
	drop      bool
	lossExtra float64
	capFactor float64
	congAdd   float64
	delayAdd  time.Duration
}

// SetDynamics installs (or, with a nil or empty spec, removes) a dynamics
// schedule. seed feeds the layer's private RNG, decoupling dynamics
// randomness from the base network's loss/jitter stream: the same world
// with dynamics off is bit-identical to a world that never had the layer.
// Install before traffic flows; installing resets per-path dynamics state.
func (n *Network) SetDynamics(spec *Dynamics, seed int64) {
	if spec == nil || len(spec.Events) == 0 {
		n.dyn = nil
	} else {
		compiled := make([]compiledEvent, len(spec.Events))
		for i := range spec.Events {
			compiled[i] = compiledEvent{
				from: n.compilePattern(spec.Events[i].From),
				to:   n.compilePattern(spec.Events[i].To),
			}
		}
		drng := detrand.New(seed)
		n.dyn = &dynState{spec: spec, compiled: compiled, rng: drng.Rand, drng: drng}
	}
	n.forEachPath(func(p *pathState) {
		p.dynEvents = nil
		p.dynMatched = false
		p.ge = nil
	})
}

// dynTick is the Gilbert–Elliott chain advancement cadence.
const dynTick = time.Second

// dynEventsFor lazily resolves which schedule events match the path, using
// the patterns compiled at SetDynamics time (ID comparison for exact names,
// one suffix check per path per event otherwise — never per packet). The
// endpoints are identified by ID: in a sharded world the destination may be
// owned by another shard and have no local *host at all, but the frozen
// name table resolves every interned ID on every shard.
func (n *Network) dynEventsFor(p *pathState, from, to HostID) []int {
	if !p.dynMatched {
		p.dynMatched = true
		fromName, toName := n.names[from], n.names[to]
		for i := range n.dyn.compiled {
			c := &n.dyn.compiled[i]
			if c.from.match(from, fromName) && c.to.match(to, toName) {
				p.dynEvents = append(p.dynEvents, i)
			}
		}
		if len(p.dynEvents) > 0 {
			p.ge = make([]geState, len(p.dynEvents))
		}
	}
	return p.dynEvents
}

// dynApply folds every matching active event into one effect for a packet
// offered on the path at virtual time now. pathRng is the path's private
// draw stream; the sharded engine draws Gilbert–Elliott transitions from it
// (per-path streams advanced in source-shard event order are partition-
// invariant where a global dynamics RNG would not be), while the classic
// engine keeps the dedicated dynamics RNG and may pass pathRng nil.
// dynApply returns nil when no schedule is installed — the common case and
// the per-packet hot path, where the caller pays one inlined branch instead
// of a call plus a 40-byte effect copy. A non-nil result points at
// per-network scratch and is valid only until the next dynApply call.
func (n *Network) dynApply(p *pathState, from, to HostID, pathRng *rand.Rand) *dynEffect {
	if n.dyn == nil {
		return nil
	}
	n.dynScratch = n.dynApplyActive(p, from, to, pathRng)
	return &n.dynScratch
}

// dynApplyActive is the non-inert half of dynApply: at least one dynamics
// event is installed.
func (n *Network) dynApplyActive(p *pathState, from, to HostID, pathRng *rand.Rand) dynEffect {
	eff := dynEffect{capFactor: 1}
	drawRng := n.dyn.rng
	if n.fab != nil {
		drawRng = pathRng
	}
	now := n.Clock.Now()
	for gi, i := range n.dynEventsFor(p, from, to) {
		e := &n.dyn.spec.Events[i]
		if !e.active(now) {
			continue
		}
		t := now - e.Start
		switch e.Kind {
		case EventOutage:
			if e.LossRate >= 1 {
				eff.drop = true
			} else {
				eff.lossExtra = combineLoss(eff.lossExtra, e.LossRate)
			}
		case EventCapacityRamp:
			f := e.CapacityFactor
			if e.Duration > 0 && t < e.Duration {
				frac := float64(t) / float64(e.Duration)
				f = 1 + (e.CapacityFactor-1)*frac
			}
			eff.capFactor *= f
		case EventDiurnal:
			if e.Period > 0 {
				s := math.Sin(math.Pi * float64(t) / float64(e.Period))
				eff.congAdd += e.Amplitude * s * s
			}
		case EventFlashCrowd:
			eff.congAdd += e.Amplitude * flashShape(t, e.RampUp, e.Decay)
		case EventLossBurst:
			advanceGE(&p.ge[gi], e, now, drawRng)
			if p.ge[gi].bad {
				eff.lossExtra = combineLoss(eff.lossExtra, e.BadLoss)
			}
		case EventDelayShift:
			eff.delayAdd += e.DelayDelta
		}
	}
	return eff
}

// advanceGE walks the Gilbert–Elliott chain forward to now in one-second
// steps, drawing transitions from rng.
func advanceGE(g *geState, e *DynEvent, now time.Duration, rng *rand.Rand) {
	if g.last == 0 && g.last < e.Start {
		g.last = e.Start
	}
	for g.last+dynTick <= now {
		g.last += dynTick
		if g.bad {
			if rng.Float64() < e.PExit {
				g.bad = false
			}
		} else if rng.Float64() < e.PEnter {
			g.bad = true
		}
	}
}

// flashShape is the unit flash-crowd profile: linear rise over rampUp,
// exponential decay afterwards.
func flashShape(t, rampUp, decay time.Duration) float64 {
	if t < 0 {
		return 0
	}
	if rampUp > 0 && t < rampUp {
		return float64(t) / float64(rampUp)
	}
	since := t - rampUp
	if decay <= 0 {
		return 0
	}
	return math.Exp(-float64(since) / float64(decay))
}

// combineLoss composes independent loss probabilities.
func combineLoss(a, b float64) float64 { return 1 - (1-a)*(1-b) }
