package netsim

import (
	"testing"
	"time"

	"realtracer/internal/simclock"
)

// rig is a two-host network for dynamics tests.
type rig struct {
	clock *simclock.Clock
	net   *Network
	got   []time.Duration // delivery times at "dst:1"
}

func newRig(route Route, spec *Dynamics, seed int64) *rig {
	r := &rig{clock: simclock.New()}
	r.net = New(r.clock, StaticRoute(route), 7)
	r.net.AddHost(HostConfig{Name: "src", Access: DefaultAccessProfile(AccessServer)})
	r.net.AddHost(HostConfig{Name: "dst", Access: DefaultAccessProfile(AccessServer)})
	r.net.Register("dst:1", func(*Packet) { r.got = append(r.got, r.clock.Now()) })
	if spec != nil {
		r.net.SetDynamics(spec, seed)
	}
	return r
}

// sendEvery schedules one small packet per interval over the horizon.
func (r *rig) sendEvery(interval, horizon time.Duration) int {
	n := 0
	for t := time.Duration(0); t < horizon; t += interval {
		r.clock.At(t, func() {
			r.net.Send(&Packet{From: "src:9", To: "dst:1", Size: 200})
		})
		n++
	}
	r.clock.Run()
	return n
}

func TestOutageWindowDropsEverything(t *testing.T) {
	spec := NewDynamics().Outage("src", "dst", 10*time.Second, 10*time.Second)
	r := newRig(Route{}, spec, 1)
	sent := r.sendEvery(time.Second, 30*time.Second)
	_, delivered, dropped := r.net.Stats()
	if dropped != 10 {
		t.Fatalf("dropped=%d want exactly the 10 in-window packets", dropped)
	}
	if int(delivered) != sent-10 {
		t.Fatalf("delivered=%d want %d", delivered, sent-10)
	}
	// No delivery time may fall inside the outage window (clean path: the
	// only delay is the access base delay, well under a second).
	for _, at := range r.got {
		if at >= 10*time.Second && at < 11*time.Second {
			t.Fatalf("delivery at %v inside outage window", at)
		}
	}
}

func TestDegradeRaisesLossOnlyInWindow(t *testing.T) {
	spec := NewDynamics().Degrade("*", "*", time.Minute, time.Minute, 0.5)
	r := newRig(Route{}, spec, 3)
	r.sendEvery(100*time.Millisecond, 3*time.Minute)
	_, _, dropped := r.net.Stats()
	// ~600 packets cross the window at 50% loss; outside it loss is zero.
	if dropped < 200 || dropped > 400 {
		t.Fatalf("dropped=%d want ~300 (50%% of the in-window 600)", dropped)
	}
}

func TestCapacityRampSlowsDelivery(t *testing.T) {
	route := Route{CapacityKbps: 1000}
	base := newRig(route, nil, 0)
	base.sendEvery(time.Second, time.Minute)
	ramped := newRig(route, NewDynamics().CapacityRamp("*", "*", 0, 30*time.Second, 0.05), 1)
	ramped.sendEvery(time.Second, time.Minute)
	// With the bottleneck ramped down to 5%, per-packet transmission takes
	// 20x longer; late packets must arrive strictly later than baseline.
	if len(base.got) == 0 || len(ramped.got) == 0 {
		t.Fatal("no deliveries")
	}
	lastBase, lastRamped := base.got[len(base.got)-1], ramped.got[len(ramped.got)-1]
	if lastRamped <= lastBase {
		t.Fatalf("ramped last delivery %v not later than baseline %v", lastRamped, lastBase)
	}
}

func TestDelayShiftMovesDeliveries(t *testing.T) {
	// A bounded 20s flap: latency rises inside the window and recovers
	// after it; a permanent (dur <= 0) shift would never recover.
	spec := NewDynamics().DelayShift("src", "*", 10*time.Second, 20*time.Second, 200*time.Millisecond)
	r := newRig(Route{}, spec, 1)
	for _, at := range []time.Duration{time.Second, 20 * time.Second, 40 * time.Second} {
		at := at
		r.clock.At(at, func() { r.net.Send(&Packet{From: "src:9", To: "dst:1", Size: 100}) })
	}
	r.clock.Run()
	if len(r.got) != 3 {
		t.Fatalf("deliveries=%d want 3", len(r.got))
	}
	before := r.got[0] - time.Second
	during := r.got[1] - 20*time.Second
	after := r.got[2] - 40*time.Second
	if during-before < 150*time.Millisecond {
		t.Fatalf("in-window latency %v not ~200ms above pre-shift %v", during, before)
	}
	if after-before > 50*time.Millisecond {
		t.Fatalf("post-window latency %v did not recover to pre-shift %v", after, before)
	}
}

func TestDelayShiftPermanentWhenOpenEnded(t *testing.T) {
	spec := NewDynamics().DelayShift("src", "*", 10*time.Second, 0, 200*time.Millisecond)
	r := newRig(Route{}, spec, 1)
	r.clock.At(time.Second, func() { r.net.Send(&Packet{From: "src:9", To: "dst:1", Size: 100}) })
	r.clock.At(time.Hour, func() { r.net.Send(&Packet{From: "src:9", To: "dst:1", Size: 100}) })
	r.clock.Run()
	if len(r.got) != 2 {
		t.Fatalf("deliveries=%d want 2", len(r.got))
	}
	early, late := r.got[0]-time.Second, r.got[1]-time.Hour
	if late-early < 150*time.Millisecond {
		t.Fatalf("open-ended shift faded: %v vs %v", late, early)
	}
}

func TestLossBurstEpisodesAreBursty(t *testing.T) {
	// A chain that enters the bad state often and stays a while, with total
	// loss while bad: drops must appear in contiguous runs, not uniformly.
	spec := NewDynamics().LossBurst("*", "*", 0, 0, 0.2, 0.3, 1.0)
	r := newRig(Route{}, spec, 5)
	sent := r.sendEvery(100*time.Millisecond, 2*time.Minute)
	_, delivered, dropped := r.net.Stats()
	if int(delivered+dropped) != sent {
		t.Fatalf("conservation: %d+%d != %d", delivered, dropped, sent)
	}
	if dropped == 0 {
		t.Fatal("chain never entered the bad state")
	}
	// Bad-state dwell is ~1/0.3 s = ~3.3 s at 10 pkt/s: the longest drop run
	// must be far longer than uniform loss at the same rate would produce.
	// Reconstruct drop runs from the delivery times (10 Hz grid).
	deliveredAt := make(map[time.Duration]bool, len(r.got))
	for _, at := range r.got {
		// Clean path: delivery lands within the same 100ms slot it was sent.
		deliveredAt[at/(100*time.Millisecond)] = true
	}
	longest, run := 0, 0
	for i := 0; i < sent; i++ {
		if deliveredAt[time.Duration(i)] {
			run = 0
			continue
		}
		run++
		if run > longest {
			longest = run
		}
	}
	if longest < 10 {
		t.Fatalf("longest drop run %d slots; Gilbert–Elliott episodes should drop whole seconds", longest)
	}
}

func TestFlashCrowdCongestsBottleneck(t *testing.T) {
	route := Route{CapacityKbps: 500}
	base := newRig(route, nil, 0)
	base.sendEvery(500*time.Millisecond, 2*time.Minute)
	crowd := newRig(route, NewDynamics().FlashCrowd("*", "*", 30*time.Second, 10*time.Second, 30*time.Second, 0.9), 2)
	crowd.sendEvery(500*time.Millisecond, 2*time.Minute)
	_, _, baseDropped := base.net.Stats()
	// The spike leaves 10% of the bottleneck: queueing delay must grow.
	var baseSum, crowdSum time.Duration
	for _, at := range base.got {
		baseSum += at
	}
	for _, at := range crowd.got {
		crowdSum += at
	}
	if len(crowd.got) == len(base.got) && crowdSum <= baseSum {
		t.Fatalf("flash crowd had no effect: drops %d->%d, delay sum %v->%v",
			baseDropped, baseDropped, baseSum, crowdSum)
	}
}

func TestDiurnalShape(t *testing.T) {
	e := DynEvent{Kind: EventDiurnal, Period: time.Hour, Amplitude: 0.4}
	spec := &Dynamics{Events: []DynEvent{e}}
	r := newRig(Route{CapacityKbps: 1000, CongestionMean: 0}, spec, 1)
	// Probe the effective congestion addition directly via dynApply.
	src, dst := r.net.Intern("src"), r.net.Intern("dst")
	p := r.net.path(src, dst)
	r.clock.RunUntil(15 * time.Minute) // quarter period: sin^2 = 0.5
	eff := r.net.dynApply(p, src, dst, nil)
	if eff.congAdd < 0.15 || eff.congAdd > 0.25 {
		t.Fatalf("quarter-period congAdd=%.3f want ~0.2", eff.congAdd)
	}
	r.clock.RunUntil(30 * time.Minute) // half period: sin^2 = 1 -> amplitude
	eff = r.net.dynApply(p, src, dst, nil)
	if eff.congAdd < 0.35 {
		t.Fatalf("peak congAdd=%.3f want ~0.4", eff.congAdd)
	}
	r.clock.RunUntil(60 * time.Minute) // full period: back to ~0
	eff = r.net.dynApply(p, src, dst, nil)
	if eff.congAdd > 0.05 {
		t.Fatalf("full-period congAdd=%.3f want ~0", eff.congAdd)
	}
}

func TestMatchHostPatterns(t *testing.T) {
	cases := []struct {
		pattern, host string
		want          bool
	}{
		{"", "anything", true},
		{"*", "anything", true},
		{"cnn.us", "cnn.us", true},
		{"cnn.us", "abc.us", false},
		{"*.us", "cnn.us", true},
		{"*.us", "bbc.uk", false},
		{"*.us", "us", false},
	}
	// Exercise the compiled matcher — the one the packet path uses — against
	// hosts attached to a real network, so exact patterns go through ID
	// interning just as they do in production.
	n := New(simclock.New(), nil, 1)
	seen := map[string]bool{}
	for _, c := range cases {
		if !seen[c.host] {
			seen[c.host] = true
			n.AddHost(HostConfig{Name: c.host})
		}
	}
	for _, c := range cases {
		cp := n.compilePattern(c.pattern)
		id := n.HostIDOf(c.host)
		if id == 0 {
			t.Fatalf("host %q not interned", c.host)
		}
		if got := cp.match(id, c.host); got != c.want {
			t.Errorf("compilePattern(%q).match(%q)=%v want %v", c.pattern, c.host, got, c.want)
		}
	}
}

// TestDynamicsDeterministic pins the layer's reproducibility: the same
// schedule and seed yield identical stats; a different dynamics seed may
// diverge without touching the base network's RNG stream.
func TestDynamicsDeterministic(t *testing.T) {
	route := Route{CapacityKbps: 800, LossRate: 0.01, Jitter: 5 * time.Millisecond}
	spec := func() *Dynamics {
		return NewDynamics().
			LossBurst("*", "*", 0, 0, 0.1, 0.3, 0.8).
			FlashCrowd("*", "*", 20*time.Second, 5*time.Second, 20*time.Second, 0.6).
			Outage("src", "dst", 40*time.Second, 5*time.Second)
	}
	run := func(seed int64) (uint64, uint64, uint64) {
		r := newRig(route, spec(), seed)
		r.sendEvery(200*time.Millisecond, time.Minute)
		return r.net.Stats()
	}
	s1, d1, x1 := run(11)
	s2, d2, x2 := run(11)
	if s1 != s2 || d1 != d2 || x1 != x2 {
		t.Fatalf("same dynamics seed diverged: (%d,%d,%d) vs (%d,%d,%d)", s1, d1, x1, s2, d2, x2)
	}
}

// TestNoDynamicsIsInert pins the golden-output guarantee at the packet
// level: a network with no schedule — or an explicitly cleared one — is
// bit-identical to one that never touched the layer.
func TestNoDynamicsIsInert(t *testing.T) {
	route := Route{CapacityKbps: 700, LossRate: 0.02, Jitter: 9 * time.Millisecond, CongestionMean: 0.3, CongestionVar: 0.2}
	run := func(clear bool) ([]time.Duration, uint64, uint64, uint64) {
		r := newRig(route, nil, 0)
		if clear {
			r.net.SetDynamics(NewDynamics(), 99) // empty schedule: removed
		}
		r.sendEvery(150*time.Millisecond, time.Minute)
		s, d, x := r.net.Stats()
		return r.got, s, d, x
	}
	gotA, sA, dA, xA := run(false)
	gotB, sB, dB, xB := run(true)
	if sA != sB || dA != dB || xA != xB || len(gotA) != len(gotB) {
		t.Fatalf("empty dynamics changed the network: (%d,%d,%d) vs (%d,%d,%d)", sA, dA, xA, sB, dB, xB)
	}
	for i := range gotA {
		if gotA[i] != gotB[i] {
			t.Fatalf("delivery %d moved: %v vs %v", i, gotA[i], gotB[i])
		}
	}
}
