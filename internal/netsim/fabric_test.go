package netsim

import (
	"fmt"
	"testing"
	"time"
)

// TestInspectionDoesNotIntern pins the read-only contract of the name-based
// inspection APIs: probing a pair the network has never seen must not grow
// the host table. These queries used to route through Intern, so a typo'd
// or speculative probe permanently allocated a host ID — and enough of them
// could push a world over the path-grid budget into overflow mode.
func TestInspectionDoesNotIntern(t *testing.T) {
	clock, n := newNet(Route{OneWayDelay: 40 * time.Millisecond, CongestionMean: 0.25})
	hosts, interned := len(n.hostTab), len(n.ids)

	// Known pair: the full answer, read-only.
	if rtt := n.BaseRTT("a", "b"); rtt < 80*time.Millisecond {
		t.Errorf("BaseRTT(a, b) = %v, want at least the 2x one-way delay", rtt)
	}
	// Never-seen names resolve to the zero route: access delays only for a
	// known endpoint, zero for a pair of strangers — degraded answers, but
	// no state is created to produce them.
	if rtt := n.BaseRTT("phantom", "wraith"); rtt != 0 {
		t.Errorf("BaseRTT(phantom, wraith) = %v, want 0", rtt)
	}
	if c := n.Congestion("a", "ghost"); c != 0 {
		t.Errorf("Congestion(a, ghost) = %v, want the zero route's 0", c)
	}
	if c := n.Congestion("a", "b"); c != 0.25 {
		t.Errorf("Congestion(a, b) = %v, want the calibrated mean 0.25", c)
	}
	if id := n.HostIDOf("ghost"); id != 0 {
		t.Errorf("HostIDOf(ghost) = %d, want 0", id)
	}

	if len(n.hostTab) != hosts || len(n.ids) != interned {
		t.Fatalf("inspection grew the host table: %d->%d hosts, %d->%d names",
			hosts, len(n.hostTab), interned, len(n.ids))
	}

	// SetCongestionMean is the one deliberate mutator in the name-based
	// API: installing path state for a pair is its whole job.
	n.SetCongestionMean("a", "ghost", 0.9, 0)
	if len(n.ids) != interned+1 {
		t.Fatalf("SetCongestionMean did not intern its target: %d names, want %d",
			len(n.ids), interned+1)
	}
	// With zero variance the AR(1) process converges deterministically
	// toward the installed mean.
	clock.RunUntil(5 * time.Second)
	if c := n.Congestion("a", "ghost"); c <= 0.25 {
		t.Errorf("Congestion after SetCongestionMean = %v, want a pull toward 0.9", c)
	}
}

// internPast pushes the network's interned-name count beyond the path-grid
// budget so the next structural operation sees overflow mode.
func internPast(n *Network, count int) {
	for i := 0; len(n.hostTab)-1 <= count; i++ {
		n.Intern(fmt.Sprintf("filler%d", i))
	}
}

// TestGridToOverflowMigration crosses the maxGridHosts boundary mid-run:
// path state built on the grid (a bottleneck queue extending into the
// future, a packet still in flight) must survive the migration to the map
// fallback byte-for-byte, and traffic must keep flowing afterwards.
func TestGridToOverflowMigration(t *testing.T) {
	clock, n := newNet(Route{CapacityKbps: 100, OneWayDelay: 50 * time.Millisecond})
	delivered := 0
	n.Register("b:1", func(*Packet) { delivered++ })
	for i := 0; i < 20; i++ {
		n.Send(&Packet{From: "a:9", To: "b:1", Size: 1000})
	}
	p := n.path(n.Intern("a"), n.Intern("b"))
	if p.busyUntil == 0 {
		t.Fatal("bottleneck queue did not build up before migration")
	}
	busy := p.busyUntil

	internPast(n, maxGridHosts)
	if n.overflow == nil || n.grid != nil {
		t.Fatalf("crossing %d hosts did not migrate the grid to overflow", maxGridHosts)
	}
	if got := n.pathLookup(n.Intern("a"), n.Intern("b")); got != p {
		t.Fatalf("migration rebuilt the a->b path state (lost %v of queue)", busy)
	}

	clock.Run()
	if delivered == 0 {
		t.Fatal("no packet in flight across the migration was delivered")
	}
	// The network keeps working in overflow mode.
	n.Send(&Packet{From: "a:9", To: "b:1", Size: 500})
	clock.Run()
	if _, del, _ := n.Stats(); del != uint64(delivered) {
		t.Fatalf("post-migration delivery count skewed: stats %d vs handler %d", del, delivered)
	}
}

// TestOverflowRemoveHostPurges is RemoveHost's overflow-mode mirror of
// TestRemoveHostPurgesPathState: once the world has migrated off the grid,
// detaching a host must still purge both directions of its path state, and
// a host re-added under the same name must start fresh and reachable.
func TestOverflowRemoveHostPurges(t *testing.T) {
	clock, n := newNet(Route{CapacityKbps: 100})
	internPast(n, maxGridHosts)
	n.Register("b:1", func(*Packet) {})
	for i := 0; i < 50; i++ {
		n.Send(&Packet{From: "a:9", To: "b:1", Size: 1000})
	}
	n.Send(&Packet{From: "b:1", To: "a:9", Size: 1000})
	if p := n.pathLookup(n.Intern("a"), n.Intern("b")); p == nil || p.busyUntil == 0 {
		t.Fatal("bottleneck queue did not build up in overflow mode")
	}
	clock.Run()

	n.RemoveHost("b")
	if p := n.pathLookup(n.Intern("a"), n.Intern("b")); p != nil {
		t.Fatal("RemoveHost left a->b overflow state behind")
	}
	if p := n.pathLookup(n.Intern("b"), n.Intern("a")); p != nil {
		t.Fatal("RemoveHost left b->a overflow state behind")
	}

	n.AddHost(HostConfig{Name: "b", Access: DefaultAccessProfile(AccessT1LAN)})
	got := 0
	n.Register("b:1", func(*Packet) { got++ })
	n.Send(&Packet{From: "a:9", To: "b:1", Size: 100})
	clock.Run()
	if got != 1 {
		t.Fatalf("re-added host received %d packets, want 1", got)
	}
}

// fabricRig builds a small sharded world: "a" on shard 0, "b" on the last
// shard, both attached, frozen at a 25ms lookahead.
func fabricRig(shards int, route Route) *Fabric {
	fab := NewFabric(shards, StaticRoute(route), 42)
	fab.AddHost(0, HostConfig{Name: "a", Access: DefaultAccessProfile(AccessServer)})
	fab.AddHost(shards-1, HostConfig{Name: "b", Access: DefaultAccessProfile(AccessT1LAN)})
	fab.Freeze(25 * time.Millisecond)
	return fab
}

// TestFabricCrossShardDelivery is the fabric smoke test: packets sent from
// one shard arrive on another, exactly once each, no earlier than the
// one-way delay, with conserved counters.
func TestFabricCrossShardDelivery(t *testing.T) {
	fab := fabricRig(2, Route{OneWayDelay: 100 * time.Millisecond})
	var got int
	var last time.Duration
	fab.Net(1).Register("b:1", func(p *Packet) {
		got++
		last = fab.Clock(1).Now()
		if p.Payload != "ping" {
			t.Errorf("payload %v did not survive transit", p.Payload)
		}
	})
	const sends = 10
	for i := 0; i < sends; i++ {
		i := i
		fab.Clock(0).After(time.Duration(i)*time.Millisecond, func() {
			fab.Net(0).Send(&Packet{From: "a:9", To: "b:1", Size: 500, Payload: "ping"})
		})
	}
	fab.Run(nil)
	if got != sends {
		t.Fatalf("delivered %d of %d cross-shard packets", got, sends)
	}
	if last < 100*time.Millisecond {
		t.Fatalf("delivery at %v, before the one-way delay", last)
	}
	sent, delivered, dropped := fab.Stats()
	if sent != sends || delivered != sends || dropped != 0 {
		t.Fatalf("counters sent=%d delivered=%d dropped=%d, want %d/%d/0", sent, delivered, dropped, sends, sends)
	}
}

// fireFunc adapts a func to simclock.EventHandler for control-event tests.
type fireFunc func(time.Duration)

func (f fireFunc) Fire(now time.Duration) { f(now) }

// TestFabricDrainShrinksOutboxes pins drain's memory bound: an outbox that
// ballooned past outboxRetainCap during one burst window must drop its
// backing array once drained, while a normally-sized outbox keeps its
// backing for reuse. Without the cut, one flash-crowd window would pin its
// high-water mark in memory for the rest of the run — per (src, dst) pair.
func TestFabricDrainShrinksOutboxes(t *testing.T) {
	fab := fabricRig(2, Route{OneWayDelay: 100 * time.Millisecond})
	fired := 0
	count := fireFunc(func(time.Duration) { fired++ })

	small := outboxRetainCap / 4
	for i := 0; i < small; i++ {
		fab.Post(0, 1, fab.lookahead, count)
	}
	fab.drain()
	if box := fab.out[0][1]; box == nil || len(box) != 0 || cap(box) < small {
		t.Fatalf("drain dropped a small outbox's backing (len %d, cap %d): reuse lost", len(box), cap(box))
	}

	burst := outboxRetainCap + 50
	for i := 0; i < burst; i++ {
		fab.Post(0, 1, fab.lookahead, count)
	}
	if cap(fab.out[0][1]) <= outboxRetainCap {
		t.Fatalf("burst of %d did not outgrow retain cap %d; the shrink path went unexercised", burst, outboxRetainCap)
	}
	fab.drain()
	if box := fab.out[0][1]; box != nil {
		t.Fatalf("drain kept an oversized outbox backing (cap %d > %d)", cap(box), outboxRetainCap)
	}

	// The shrink must not cost messages: every posted event still fires.
	fab.Run(nil)
	if want := small + burst; fired != want {
		t.Fatalf("%d of %d drained control events fired", fired, want)
	}
}

// TestFabricPostLookaheadViolation pins Post's safety check: a control
// event timestamped below the source shard's now+L could land inside a
// horizon the destination shard is already executing, so Post must refuse
// it loudly. The boundary itself (exactly now+L) is legal — it is the
// soonest any cross-shard effect may occur.
func TestFabricPostLookaheadViolation(t *testing.T) {
	fab := fabricRig(2, Route{OneWayDelay: 100 * time.Millisecond})
	fab.Post(0, 1, fab.lookahead, fireFunc(func(time.Duration) {})) // boundary: legal
	defer func() {
		if recover() == nil {
			t.Fatal("Post below the lookahead horizon did not panic")
		}
	}()
	fab.Post(0, 1, fab.lookahead-time.Nanosecond, fireFunc(func(time.Duration) {}))
}

// TestFabricWorkerPanicReraised pins the failure path of the window
// barrier: a panic inside a shard event must surface as a panic from Run on
// the control goroutine — carrying the original panic value — rather than
// crash the worker goroutine and deadlock the remaining shards at the
// barrier.
func TestFabricWorkerPanicReraised(t *testing.T) {
	fab := fabricRig(2, Route{OneWayDelay: 100 * time.Millisecond})
	fab.Net(1).Register("b:1", func(*Packet) { panic("handler exploded") })
	fab.Net(0).Send(&Packet{From: "a:9", To: "b:1", Size: 100, Payload: "x"})
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		fab.Run(nil)
	}()
	select {
	case got := <-done:
		if got != "handler exploded" {
			t.Fatalf("Run panicked with %v, want the handler's own panic value", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run neither returned nor panicked: the barrier deadlocked on the dead worker")
	}
}

// TestFabricShardCountInvariance pins the fabric's determinism contract at
// the packet level: on a lossy, jittery route, per-packet delivery times
// are identical whether the two hosts share a shard or not.
func TestFabricShardCountInvariance(t *testing.T) {
	route := Route{OneWayDelay: 60 * time.Millisecond, LossRate: 0.2, Jitter: 5 * time.Millisecond, CapacityKbps: 500}
	times := func(shards int) []time.Duration {
		fab := fabricRig(shards, route)
		var out []time.Duration
		fab.Net(shards-1).Register("b:1", func(*Packet) {
			out = append(out, fab.Clock(shards-1).Now())
		})
		for i := 0; i < 200; i++ {
			i := i
			fab.Clock(0).After(time.Duration(i)*5*time.Millisecond, func() {
				fab.Net(0).Send(&Packet{From: "a:9", To: "b:1", Size: 400, Payload: "x"})
			})
		}
		fab.Run(nil)
		return out
	}
	one, two := times(1), times(2)
	if len(one) == 0 || len(one) == 200 {
		t.Fatalf("degenerate loss outcome: %d of 200 delivered", len(one))
	}
	if len(one) != len(two) {
		t.Fatalf("loss pattern depends on shard count: %d vs %d delivered", len(one), len(two))
	}
	for i := range one {
		if one[i] != two[i] {
			t.Fatalf("delivery %d at %v on one shard, %v on two", i, one[i], two[i])
		}
	}
}
