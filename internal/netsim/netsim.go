// Package netsim is a deterministic discrete-event network simulator.
//
// It stands in for the June-2001 Internet of the paper: hosts attach to the
// network through access links (56k modem, DSL/Cable, T1/LAN), wide-area
// routes between geographic sites contribute propagation delay, random loss
// and time-varying cross-traffic, and every path is shaped by a fluid
// bottleneck queue (drop-tail) that produces queueing delay and overflow
// loss exactly where a real router would.
//
// The simulator delivers opaque packets between registered handlers; the
// transport layer (internal/transport) builds TCP and UDP semantics on top.
//
// The per-packet path is allocation-free in steady state: host names are
// interned to dense HostIDs (Intern/AddHost), the per-ordered-pair path
// state lives in a flat grid indexed by ID pair (with a map fallback for
// very large topologies), packets come from a free-list (Obtain) and are
// released back on delivery or drop, and delivery is scheduled through the
// clock's pooled handler events — the Packet itself is the EventHandler.
package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"realtracer/internal/detrand"
	"realtracer/internal/simclock"
)

// Addr identifies a host endpoint ("host:port" style, but opaque to netsim).
type Addr string

// Host returns the host component of the address (everything before the
// final ':'), or the whole address when there is no port.
func (a Addr) Host() string {
	s := string(a)
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == ':' {
			return s[:i]
		}
	}
	return s
}

// Port returns the numeric port component of the address (everything after
// the final ':'), or 0 when there is no port or it is not a small decimal
// number. Transports parse an address once per connection and carry the
// result in Packet.FromPort/ToPort so per-packet delivery can use the dense
// port table instead of a string-keyed map lookup.
func (a Addr) Port() int32 {
	s := string(a)
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] != ':' {
			continue
		}
		digits := s[i+1:]
		if len(digits) == 0 || len(digits) > 7 {
			return 0
		}
		var p int32
		for j := 0; j < len(digits); j++ {
			ch := digits[j]
			if ch < '0' || ch > '9' {
				return 0
			}
			p = p*10 + int32(ch-'0')
		}
		return p
	}
	return 0
}

// HostID is a dense interned host identity. The zero HostID means
// "unresolved"; Send falls back to interning the Addr's host component.
// A name keeps its HostID forever — across RemoveHost and re-AddHost — so a
// cached ID can never deliver to the wrong host.
type HostID int32

// Packet is a unit of transfer. Payload is carried by reference (the
// simulation does not serialize); Size is what occupies link capacity.
//
// Packets obtained from Network.Obtain are pooled: the network releases them
// back to the free-list after the destination handler returns (or on drop),
// so handlers must not retain a *Packet past the callback — copy the fields
// they need. Caller-constructed Packets (struct literals, as in tests) are
// never recycled.
//
// FromID/ToID are optional pre-resolved host identities (see Intern); the
// transport layer fills them once per connection so the per-packet path skips
// the name lookups. Zero means "resolve From/To by name". FromPort/ToPort
// are the analogous pre-parsed port components of From/To: a nonzero ToPort
// lets delivery hit the destination host's dense port table instead of the
// string-keyed handler map, and FromPort lets a reply path reuse the
// sender's port without parsing. Zero means "unparsed"; delivery then falls
// back to the map.
type Packet struct {
	From, To     Addr
	FromID, ToID HostID
	FromPort     int32
	ToPort       int32
	Size         int // bytes on the wire, including all header overhead
	Payload      any

	net    *Network // delivery context; set by Send
	pooled bool     // came from the free-list; recycled after delivery/drop
	// edge marks a sharded-mode packet scheduled at its WAN-edge arrival
	// time: the destination access downlink has not been applied yet (the
	// shard that owns the destination host does that — see Fabric). Always
	// false on the classic single-shard path.
	edge bool
}

// Fire implements simclock.EventHandler: a scheduled Packet delivers itself.
// This replaces the per-packet delivery closure the scheduler used to
// allocate.
func (pkt *Packet) Fire(time.Duration) { pkt.net.deliver(pkt) }

// Handler receives packets addressed to a registered Addr.
type Handler func(pkt *Packet)

// AccessClass is the end-host network configuration from the study's
// user-information dialog.
type AccessClass int

const (
	AccessModem AccessClass = iota // 56k modem
	AccessDSLCable
	AccessT1LAN
	AccessServer // well-provisioned server uplink
)

// String returns the label used in the paper's figures.
func (a AccessClass) String() string {
	switch a {
	case AccessModem:
		return "56k Modem"
	case AccessDSLCable:
		return "DSL/Cable"
	case AccessT1LAN:
		return "T1/LAN"
	case AccessServer:
		return "Server"
	default:
		return fmt.Sprintf("AccessClass(%d)", int(a))
	}
}

// AccessProfile describes an access link's steady-state characteristics.
type AccessProfile struct {
	DownKbps float64 // downstream capacity
	UpKbps   float64 // upstream capacity
	// QueueDelayMax is the worst-case buffering at the access link before
	// drop-tail loss (router buffer expressed in time at line rate).
	QueueDelayMax time.Duration
	// BaseDelay is the access technology's first-hop latency (modems add
	// tens of ms of serialization/interleaving delay).
	BaseDelay time.Duration
}

// DefaultAccessProfile returns 2001-era characteristics for the class.
// Typical 56k modems streamed up to ~50 Kbps; DSL/Cable up to ~500 Kbps
// (paper, Section V.A); T1/LAN above that but shared with corporate traffic.
func DefaultAccessProfile(class AccessClass) AccessProfile {
	switch class {
	case AccessModem:
		return AccessProfile{DownKbps: 50, UpKbps: 33, QueueDelayMax: 1200 * time.Millisecond, BaseDelay: 90 * time.Millisecond}
	case AccessDSLCable:
		return AccessProfile{DownKbps: 512, UpKbps: 128, QueueDelayMax: 450 * time.Millisecond, BaseDelay: 12 * time.Millisecond}
	case AccessT1LAN:
		return AccessProfile{DownKbps: 1544, UpKbps: 1544, QueueDelayMax: 250 * time.Millisecond, BaseDelay: 3 * time.Millisecond}
	case AccessServer:
		return AccessProfile{DownKbps: 10000, UpKbps: 10000, QueueDelayMax: 150 * time.Millisecond, BaseDelay: 2 * time.Millisecond}
	default:
		return AccessProfile{DownKbps: 512, UpKbps: 512, QueueDelayMax: 300 * time.Millisecond, BaseDelay: 10 * time.Millisecond}
	}
}

// Route describes the wide-area segment between two sites, independent of
// either end's access link.
type Route struct {
	// OneWayDelay is the base propagation delay in one direction.
	OneWayDelay time.Duration
	// Jitter is the maximum extra random per-packet delay on the route.
	Jitter time.Duration
	// LossRate is the route's random (non-congestion) packet loss
	// probability in [0, 1].
	LossRate float64
	// CapacityKbps is the route's share available to one flow before
	// cross-traffic is applied. Zero means "not the bottleneck".
	CapacityKbps float64
	// CongestionMean and CongestionVar parameterize the AR(1) cross-traffic
	// level in [0, 1): the fraction of bottleneck capacity consumed by
	// background traffic, resampled about once a second.
	CongestionMean float64
	CongestionVar  float64
}

// RouteTable resolves the wide-area route between two hosts (by host name).
// geo implements this from the study's region matrix.
type RouteTable interface {
	Route(fromHost, toHost string) Route
}

// StaticRoute is a RouteTable returning the same Route for every pair;
// convenient in unit tests.
type StaticRoute Route

// Route implements RouteTable.
func (s StaticRoute) Route(from, to string) Route { return Route(s) }

// HostConfig describes one attached host.
type HostConfig struct {
	Name   string
	Access AccessProfile
}

type host struct {
	cfg      HostConfig
	id       HostID
	handlers map[Addr]Handler
	// Dense per-port handler table, the per-delivery fast path: ports[p -
	// portBase] mirrors handlers for every registered addr with a numeric
	// port. portBase is the lowest port seen so the slice spans only the
	// host's actual port range (a client's handful of ephemeral ports, a
	// server's service-to-ephemeral span). Addresses without a parseable
	// port, or beyond maxPortSpan, live only in the map.
	portBase int32
	ports    []Handler
	// Precomputed access-link rates in bits/sec — kbpsToBitsPerSec of the
	// fixed config, hoisted out of the per-send path. The config never
	// changes while a host is attached, and the conversion is a pure
	// function, so the hoisted value is bit-identical to the inline call.
	upBps, downBps float64
	// Fluid drop-tail queues: the virtual time until which each direction of
	// the access link is busy serving earlier packets.
	upBusyUntil   time.Duration
	downBusyUntil time.Duration
}

// maxPortSpan bounds the dense port table per host: a pathological address
// span (huge or negative port numbers) falls back to the handler map rather
// than allocating an enormous slice.
const maxPortSpan = 1 << 16

// setPort mirrors a registration into the dense port table.
func (h *host) setPort(p int32, fn Handler) {
	if len(h.ports) == 0 {
		h.portBase = p
	}
	if p < h.portBase {
		off := int(h.portBase - p)
		if off+len(h.ports) > maxPortSpan {
			return
		}
		grown := make([]Handler, off+len(h.ports))
		copy(grown[off:], h.ports)
		h.ports = grown
		h.portBase = p
	}
	idx := int(p - h.portBase)
	if idx >= maxPortSpan {
		return
	}
	for idx >= len(h.ports) {
		h.ports = append(h.ports, nil)
	}
	h.ports[idx] = fn
}

// clearPort removes a registration from the dense port table.
func (h *host) clearPort(p int32) {
	if idx := int(p - h.portBase); idx >= 0 && idx < len(h.ports) {
		h.ports[idx] = nil
	}
}

type pairKey struct{ from, to HostID }

// pathState carries the per-ordered-pair wide-area state.
type pathState struct {
	route     Route
	busyUntil time.Duration // fluid queue at the route bottleneck
	// capBps is kbpsToBitsPerSec(route.CapacityKbps), hoisted at path
	// creation: route capacity never changes afterwards (the dynamics layer
	// scales eff.capFactor instead, and SetCongestionMean touches only the
	// congestion moments), and the conversion is pure, so the precomputed
	// value is bit-identical to the inline call it replaces.
	capBps       float64
	congestion   float64 // current cross-traffic level in [0,1)
	lastResample time.Duration

	// Dynamics-layer state (dynamics.go): which schedule events match this
	// path, resolved lazily, plus per-event Gilbert–Elliott chain state.
	dynMatched bool
	dynEvents  []int
	ge         []geState

	// rng is the path's private draw stream, used instead of the network's
	// global rng in sharded mode: path draws are consumed in the source
	// host's local event order, which is the same for every shard count, so
	// loss/jitter/congestion outcomes cannot depend on the partition. Nil on
	// the classic path.
	rng *rand.Rand
}

// maxGridHosts bounds the flat pathState grid: beyond this many interned
// names the quadratic grid would dominate memory, so path state falls back
// to a map keyed by the ID pair (still no string keys). The study's worlds
// are far below the bound; only very large dynamic topologies cross it.
const maxGridHosts = 1024

// Network simulates packet delivery between hosts. Not safe for concurrent
// use: it shares the single-threaded simclock discipline.
type Network struct {
	Clock *simclock.Clock
	rng   *rand.Rand
	// drng is rng's draw-counting wrapper (rng aliases drng.Rand): the
	// checkpoint layer reads the stream position from it and restores by
	// replaying the count. The indirection keeps every hot path on the
	// plain *rand.Rand.
	drng   *detrand.Rand
	routes RouteTable

	ids     map[string]HostID // permanent name -> ID interning (1-based)
	hostTab []*host           // indexed by HostID; entry nil when detached
	names   []string          // indexed by HostID; interned name

	// Path state: a flat (stride x stride) grid indexed by ordered ID pair
	// while the topology is small, a pairKey map beyond maxGridHosts.
	grid     []*pathState
	stride   int
	overflow map[pairKey]*pathState

	free     []*Packet   // packet free-list
	hostFree []*host     // detached host objects recycled by AddHost
	transit  TransitPool // shard-transit payload free-lists (transit.go)

	dyn *dynState // nil unless SetDynamics installed a schedule
	// dynScratch backs dynApply's pointer return; single-threaded per
	// network (per shard), so one slot suffices.
	dynScratch dynEffect

	// Sharded execution (fabric.go). fab is nil on the classic path. When a
	// Network belongs to a Fabric it shares the frozen interning tables and
	// the path grid with its sibling shards — every entry of those tables is
	// touched by exactly one shard — and owns its clock, packet pool and
	// draw streams privately.
	fab      *Fabric
	shardIdx int
	frozen   bool  // interning closed: Intern of an unknown name panics
	pathSeed int64 // base seed for the per-path draw streams

	// Stats
	sent, delivered, dropped uint64
}

// New creates a Network on the given clock. routes may be nil, in which case
// a zero Route (LAN-like: no delay, no loss, unconstrained) is used
// everywhere.
func New(clock *simclock.Clock, routes RouteTable, seed int64) *Network {
	if routes == nil {
		routes = StaticRoute{}
	}
	drng := detrand.New(seed)
	return &Network{
		Clock:   clock,
		rng:     drng.Rand,
		drng:    drng,
		routes:  routes,
		ids:     make(map[string]HostID),
		hostTab: make([]*host, 1), // index 0 = HostID zero, unused
		names:   make([]string, 1),
	}
}

// Intern returns the permanent dense ID for a host name, assigning one if
// the name has never been seen. Interning does not attach a host; it lets
// the transport layer resolve endpoints once per connection instead of once
// per packet. IDs are never reused for a different name.
func (n *Network) Intern(name string) HostID {
	if id, ok := n.ids[name]; ok {
		return id
	}
	if n.frozen {
		// A frozen (sharded) network shares its interning tables across
		// shards; growing them at runtime would race. Every host of a
		// sharded world is interned at build time, so reaching this is a
		// bug, not a capacity limit.
		panic("netsim: Intern of unknown host " + name + " after freeze")
	}
	id := HostID(len(n.hostTab))
	n.ids[name] = id
	n.hostTab = append(n.hostTab, nil)
	n.names = append(n.names, name)
	if n.overflow == nil && len(n.hostTab)-1 > maxGridHosts {
		// The grid would outgrow its budget: migrate to the map fallback.
		n.overflow = make(map[pairKey]*pathState)
		for f := 1; f <= n.stride; f++ {
			for t := 1; t <= n.stride; t++ {
				if p := n.grid[(f-1)*n.stride+(t-1)]; p != nil {
					n.overflow[pairKey{HostID(f), HostID(t)}] = p
				}
			}
		}
		n.grid, n.stride = nil, 0
	}
	return id
}

// HostIDOf returns the interned ID for name, or zero when the name has never
// been interned.
func (n *Network) HostIDOf(name string) HostID { return n.ids[name] }

// growGrid re-lays the path grid so it covers IDs 1..want.
func (n *Network) growGrid(want int) {
	stride := n.stride
	if stride == 0 {
		stride = 8
	}
	for stride < want {
		stride *= 2
	}
	grid := make([]*pathState, stride*stride)
	for f := 1; f <= n.stride; f++ {
		for t := 1; t <= n.stride; t++ {
			grid[(f-1)*stride+(t-1)] = n.grid[(f-1)*n.stride+(t-1)]
		}
	}
	n.grid, n.stride = grid, stride
}

// AddHost attaches a host. Adding the same name twice panics: host identity
// is load-bearing for path state.
func (n *Network) AddHost(cfg HostConfig) {
	id := n.Intern(cfg.Name)
	if n.hostTab[id] != nil {
		panic("netsim: duplicate host " + cfg.Name)
	}
	var h *host
	if k := len(n.hostFree); k > 0 {
		h = n.hostFree[k-1]
		n.hostFree = n.hostFree[:k-1]
		*h = host{handlers: h.handlers, ports: h.ports[:0]}
	} else {
		h = &host{handlers: make(map[Addr]Handler)}
	}
	h.cfg, h.id = cfg, id
	h.upBps = kbpsToBitsPerSec(cfg.Access.UpKbps)
	h.downBps = kbpsToBitsPerSec(cfg.Access.DownKbps)
	n.hostTab[id] = h
}

// RemoveHost detaches a host and all its handlers, and purges every piece of
// per-path state touching it — both directions — so a host re-added under
// the same name starts with fresh congestion and queue state instead of
// silently inheriting the dead host's. Unknown names are a no-op.
func (n *Network) RemoveHost(name string) {
	id, ok := n.ids[name]
	if !ok || n.hostTab[id] == nil {
		return
	}
	h := n.hostTab[id]
	n.hostTab[id] = nil
	clear(h.handlers)
	clear(h.ports)
	h.ports = h.ports[:0]
	h.portBase = 0
	n.hostFree = append(n.hostFree, h)
	if n.grid != nil {
		if int(id) <= n.stride {
			row := (int(id) - 1) * n.stride
			for t := 0; t < n.stride; t++ {
				n.grid[row+t] = nil
			}
			// The column holds paths whose *source* is some other host. In
			// sharded mode those entries belong to the source hosts' shards
			// and purging them here would race; wide-area path state instead
			// survives host churn uniformly across every shard count. The
			// classic path keeps the full both-direction purge.
			if n.fab == nil {
				for f := 0; f < n.stride; f++ {
					n.grid[f*n.stride+int(id)-1] = nil
				}
			}
		}
	}
	for k := range n.overflow {
		if k.from == id || k.to == id {
			delete(n.overflow, k)
		}
	}
}

// hostByAddr resolves an Addr to its attached host, or nil.
func (n *Network) hostByAddr(a Addr) *host {
	return n.lookup(n.ids[a.Host()])
}

// Register installs the packet handler for addr. The host component of addr
// must have been added with AddHost.
func (n *Network) Register(addr Addr, h Handler) {
	hst := n.hostByAddr(addr)
	if hst == nil {
		panic("netsim: Register on unknown host " + addr.Host())
	}
	hst.handlers[addr] = h
	if p := addr.Port(); p > 0 {
		hst.setPort(p, h)
	}
}

// Unregister removes the handler for addr.
func (n *Network) Unregister(addr Addr) {
	if hst := n.hostByAddr(addr); hst != nil {
		delete(hst.handlers, addr)
		if p := addr.Port(); p > 0 {
			hst.clearPort(p)
		}
	}
}

// Stats reports cumulative packet counts: sent (offered to the network),
// delivered and dropped (loss or queue overflow).
func (n *Network) Stats() (sent, delivered, dropped uint64) {
	return n.sent, n.delivered, n.dropped
}

// Obtain returns a Packet from the free-list (or a fresh one). The caller
// fills it and hands it to Send, which releases it back to the pool on
// delivery or drop — the steady-state per-packet path allocates nothing.
func (n *Network) Obtain() *Packet {
	if k := len(n.free); k > 0 {
		p := n.free[k-1]
		n.free = n.free[:k-1]
		return p
	}
	return &Packet{pooled: true}
}

// release returns a pooled packet to the free-list. Caller-constructed
// packets are left for the garbage collector.
func (n *Network) release(pkt *Packet) {
	if !pkt.pooled {
		return
	}
	pkt.From, pkt.To = "", ""
	pkt.FromID, pkt.ToID = 0, 0
	pkt.FromPort, pkt.ToPort = 0, 0
	pkt.Size = 0
	pkt.Payload = nil
	pkt.net = nil
	pkt.edge = false
	n.free = append(n.free, pkt)
}

// path returns (creating if needed) the ordered-pair path state. The warm
// grid hit — every packet after a pair's first — inlines into the caller;
// creation and the overflow map stay behind pathSlow.
func (n *Network) path(from, to HostID) *pathState {
	if n.overflow == nil && int(from) <= n.stride && int(to) <= n.stride {
		if p := n.grid[(int(from)-1)*n.stride+(int(to)-1)]; p != nil {
			return p
		}
	}
	return n.pathSlow(from, to)
}

func (n *Network) pathSlow(from, to HostID) *pathState {
	if n.overflow != nil {
		k := pairKey{from, to}
		p, ok := n.overflow[k]
		if !ok {
			r := n.routes.Route(n.names[from], n.names[to])
			p = &pathState{route: r, capBps: kbpsToBitsPerSec(r.CapacityKbps), congestion: clamp01(r.CongestionMean)}
			n.overflow[k] = p
		}
		return p
	}
	if int(from) > n.stride || int(to) > n.stride {
		n.growGrid(len(n.hostTab) - 1)
	}
	i := (int(from)-1)*n.stride + (int(to) - 1)
	p := n.grid[i]
	if p == nil {
		r := n.routes.Route(n.names[from], n.names[to])
		p = &pathState{route: r, capBps: kbpsToBitsPerSec(r.CapacityKbps), congestion: clamp01(r.CongestionMean)}
		n.grid[i] = p
	}
	return p
}

// pathLookup returns the existing path state for an ordered pair, or nil.
// Unlike path it never creates state, so inspection stays read-only.
func (n *Network) pathLookup(from, to HostID) *pathState {
	if from == 0 || to == 0 {
		return nil
	}
	if n.overflow != nil {
		return n.overflow[pairKey{from, to}]
	}
	if int(from) > n.stride || int(to) > n.stride {
		return nil
	}
	return n.grid[(int(from)-1)*n.stride+(int(to)-1)]
}

// routeByName resolves the wide-area route between two host names without
// creating or mutating any state: never-interned names get the zero Route
// (a name the network has not seen has no route worth reporting), known
// names resolve through the route table. Inspection queries used to intern
// their arguments, permanently growing the host table — a typo'd probe
// could even push a large world over the grid budget.
func (n *Network) routeByName(from, to string) Route {
	if n.HostIDOf(from) == 0 || n.HostIDOf(to) == 0 {
		return Route{}
	}
	return n.routes.Route(from, to)
}

// forEachPath visits every existing pathState.
func (n *Network) forEachPath(fn func(*pathState)) {
	for _, p := range n.grid {
		if p != nil {
			fn(p)
		}
	}
	for _, p := range n.overflow {
		fn(p)
	}
}

const congestionResample = time.Second

// resampleCongestion advances the AR(1) cross-traffic process to now,
// drawing innovations from rng (the global stream on the classic path, the
// path-private stream in sharded mode).
func (n *Network) resampleCongestion(p *pathState, rng *rand.Rand) {
	// Inlinable guard: between resample boundaries (the per-packet common
	// case) the caller pays one comparison, not a call into the loop.
	if p.lastResample+congestionResample > n.Clock.Now() {
		return
	}
	n.resampleCongestionDue(p, rng)
}

func (n *Network) resampleCongestionDue(p *pathState, rng *rand.Rand) {
	now := n.Clock.Now()
	for p.lastResample+congestionResample <= now {
		p.lastResample += congestionResample
		mean, sd := p.route.CongestionMean, p.route.CongestionVar
		// AR(1) pull toward the mean with Gaussian innovation.
		p.congestion = clamp01(p.congestion + 0.35*(mean-p.congestion) + rng.NormFloat64()*sd)
	}
}

// pathRand returns the draw stream for a path in sharded mode, seeding it
// on first use. The seed mixes the frozen endpoint IDs, which are identical
// for every shard count (interning order is fixed at build), and draws are
// consumed in the source host's local event order — also partition-
// invariant — so the stream's outcomes cannot depend on how hosts were
// split across shards.
func (n *Network) pathRand(p *pathState, from, to HostID) *rand.Rand {
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(n.pathSeed ^ (int64(from)<<20 | int64(to))))
	}
	return p.rng
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 0.95 {
		return 0.95
	}
	return x
}

// Send offers pkt to the network. Delivery (or silent drop) is scheduled on
// the clock; the call itself does not advance time. Sending from or to an
// unknown host drops the packet. Send consumes pooled packets: after the
// call the caller must not touch pkt again.
func (n *Network) Send(pkt *Packet) {
	n.sent++
	if pkt.FromID == 0 {
		pkt.FromID = n.ids[pkt.From.Host()]
	}
	src := n.lookup(pkt.FromID)
	if src == nil {
		n.dropped++
		n.release(pkt)
		return
	}
	if pkt.ToID == 0 {
		pkt.ToID = n.ids[pkt.To.Host()]
	}
	var dst *host
	if n.fab == nil {
		// Classic path: the destination is resolved at send time so its
		// downlink queue can be applied inline. In sharded mode the
		// destination may belong to another shard; only the shard that owns
		// it may touch it, at the packet's WAN-edge arrival time.
		dst = n.lookup(pkt.ToID)
		if dst == nil {
			n.dropped++
			n.release(pkt)
			return
		}
	}
	p := n.path(pkt.FromID, pkt.ToID)
	rng := n.rng
	if n.fab != nil {
		rng = n.pathRand(p, pkt.FromID, pkt.ToID)
	}
	n.resampleCongestion(p, rng)
	// The dynamics layer (dynamics.go) folds every active scheduled event —
	// outages, ramps, traffic profiles, loss bursts, delay shifts — into one
	// effect. With no schedule installed this is inert and draw-free: eff is
	// nil and every eff-guarded branch below reduces to the identity (a 1.0
	// capacity factor multiplies exactly, a zero delay adds exactly, so the
	// nil path is float-for-float the same as an inert effect struct). The
	// endpoints go by ID: in sharded mode the destination may live on
	// another shard (dst == nil here), but every interned ID resolves
	// through the frozen name table on every shard.
	eff := n.dynApply(p, pkt.FromID, pkt.ToID, rng)
	if eff != nil && eff.drop {
		n.dropped++
		n.release(pkt)
		return
	}
	now := n.Clock.Now()
	bits := float64(pkt.Size) * 8

	// 1. Source access link uplink: fluid drop-tail queue. upBps is the
	// hoisted kbpsToBitsPerSec(src.cfg.Access.UpKbps).
	txUp := durationFromSeconds(bits / src.upBps)
	start := maxDur(now, src.upBusyUntil)
	if start-now > src.cfg.Access.QueueDelayMax {
		n.dropped++
		n.release(pkt)
		return
	}
	src.upBusyUntil = start + txUp
	t := src.upBusyUntil + src.cfg.Access.BaseDelay

	// 2. Wide-area route: bottleneck service (if capacity-constrained by the
	// route), propagation, random loss and jitter.
	r := &p.route
	if r.LossRate > 0 && rng.Float64() < r.LossRate {
		n.dropped++
		n.release(pkt)
		return
	}
	if eff != nil && eff.lossExtra > 0 {
		// Dynamics loss draws come from the dedicated dynamics RNG on the
		// classic path and from the path's private stream in sharded mode,
		// mirroring the Gilbert–Elliott transition draws in dynApply.
		dynRng := n.dyn.rng
		if n.fab != nil {
			dynRng = rng
		}
		if dynRng.Float64() < eff.lossExtra {
			n.dropped++
			n.release(pkt)
			return
		}
	}
	if r.CapacityKbps > 0 {
		cong := p.congestion
		capFactor := 1.0
		if eff != nil {
			cong = clamp01(cong + eff.congAdd)
			capFactor = eff.capFactor
		}
		// capBps is the hoisted kbpsToBitsPerSec(r.CapacityKbps).
		avail := p.capBps * capFactor * (1 - cong)
		if avail < 1 {
			avail = 1 // a ramped-to-zero bottleneck is a dead link
		}
		tx := durationFromSeconds(bits / avail)
		s := maxDur(t, p.busyUntil)
		// Route buffers are generous; express overflow as time at line rate.
		const routeQueueMax = 2 * time.Second
		if s-t > routeQueueMax {
			n.dropped++
			n.release(pkt)
			return
		}
		p.busyUntil = s + tx
		t = p.busyUntil
	}
	t += r.OneWayDelay
	if eff != nil {
		t += eff.delayAdd
	}
	if r.Jitter > 0 {
		t += time.Duration(rng.Float64() * float64(r.Jitter))
	}

	if n.fab != nil {
		// Sharded: t is the WAN-edge arrival, which is at least OneWayDelay
		// — and therefore at least the fabric's lookahead — after now. Hand
		// the packet to the shard that owns the destination; it applies the
		// downlink queue at the edge time, in its own event order. The
		// payload is snapshotted here (value semantics at the wire, like
		// real serialization), so no shard ever reads memory another shard
		// may still mutate, and a send's observable content is fixed at
		// send time for every shard count. Snapshot storage is leased from
		// this shard's transit pool and recycled by the receiving side
		// (transit.go).
		pkt.Payload = CopyPayload(&n.transit, pkt.Payload)
		pkt.edge = true
		n.fab.forward(n.shardIdx, t, pkt)
		return
	}

	// 3. Destination access link downlink: where modems actually hurt.
	// downBps is the hoisted kbpsToBitsPerSec(dst.cfg.Access.DownKbps).
	txDown := durationFromSeconds(bits / dst.downBps)
	arrive := maxDur(t, dst.downBusyUntil)
	if arrive-t > dst.cfg.Access.QueueDelayMax {
		n.dropped++
		n.release(pkt)
		return
	}
	dst.downBusyUntil = arrive + txDown
	deliverAt := dst.downBusyUntil + dst.cfg.Access.BaseDelay

	pkt.net = n
	n.Clock.AtHandler(deliverAt, pkt)
}

// lookup returns the attached host for id, or nil.
func (n *Network) lookup(id HostID) *host {
	if id <= 0 || int(id) >= len(n.hostTab) {
		return nil
	}
	return n.hostTab[id]
}

// deliver hands an arrived packet to its destination handler. The host is
// re-resolved at delivery time — it may have detached (or been replaced
// under the same name) while the packet was in flight.
func (n *Network) deliver(pkt *Packet) {
	hst := n.lookup(pkt.ToID)
	if hst == nil {
		n.dropped++
		n.releaseTransitPayload(pkt)
		n.release(pkt)
		return
	}
	if pkt.edge {
		// Sharded stage 3: the packet has just crossed the wide area and n
		// is the shard that owns the destination. Apply the access downlink
		// queue now — destination-local queue order is this shard's event
		// order, identical for every partition — and reschedule the final
		// delivery.
		pkt.edge = false
		t := n.Clock.Now()
		bits := float64(pkt.Size) * 8
		txDown := durationFromSeconds(bits / hst.downBps)
		arrive := maxDur(t, hst.downBusyUntil)
		if arrive-t > hst.cfg.Access.QueueDelayMax {
			n.dropped++
			n.releaseTransitPayload(pkt)
			n.release(pkt)
			return
		}
		hst.downBusyUntil = arrive + txDown
		n.Clock.AtHandler(hst.downBusyUntil+hst.cfg.Access.BaseDelay, pkt)
		return
	}
	// Fast path: conns pre-parse their ports, so the dense per-host table
	// resolves the handler without hashing the address string. A zero or
	// out-of-span port (test-constructed packets, portless addresses) falls
	// back to the map.
	var h Handler
	if p := pkt.ToPort; p > 0 {
		if idx := int(p - hst.portBase); idx >= 0 && idx < len(hst.ports) {
			h = hst.ports[idx]
		}
	}
	if h == nil {
		var ok bool
		h, ok = hst.handlers[pkt.To]
		if !ok {
			n.dropped++
			n.releaseTransitPayload(pkt)
			n.release(pkt)
			return
		}
	}
	n.delivered++
	h(pkt)
	n.release(pkt)
}

// Attached reports whether a host by that name is currently attached.
// Interned-but-removed names report false.
func (n *Network) Attached(name string) bool {
	return n.lookup(n.ids[name]) != nil
}

// BaseRTT returns the static round-trip estimate between two hosts: both
// ends' access base delays plus the route's propagation delay in each
// direction. It ignores queueing, jitter and cross-traffic, draws no
// randomness and mutates nothing — not the host table, not the path grid —
// so server-selection probes cannot perturb a run and cannot grow the
// world. Never-interned names contribute the zero Route. In sharded mode
// this read-only discipline is also what makes cross-shard selection
// probes safe.
func (n *Network) BaseRTT(from, to string) time.Duration {
	a, b := n.lookup(n.HostIDOf(from)), n.lookup(n.HostIDOf(to))
	rtt := n.routeByName(from, to).OneWayDelay + n.routeByName(to, from).OneWayDelay
	if a != nil {
		rtt += 2 * a.cfg.Access.BaseDelay
	}
	if b != nil {
		rtt += 2 * b.cfg.Access.BaseDelay
	}
	return rtt
}

// Congestion returns the current cross-traffic level on the ordered path
// from -> to. A path that has carried traffic reports its live AR(1) state
// (advanced to now); a pair with no path state yet — including never-seen
// names — reports the route's static mean without creating anything.
// Exposed for tests and the adaptation example.
func (n *Network) Congestion(from, to string) float64 {
	p := n.pathLookup(n.HostIDOf(from), n.HostIDOf(to))
	if p == nil {
		return clamp01(n.routeByName(from, to).CongestionMean)
	}
	rng := n.rng
	if n.fab != nil {
		rng = n.pathRand(p, n.HostIDOf(from), n.HostIDOf(to))
	}
	n.resampleCongestion(p, rng)
	return p.congestion
}

// SetCongestionMean overrides the cross-traffic mean for the ordered pair,
// taking effect from the current virtual time. Used by the congestion and
// adaptation examples to create a mid-clip congestion epoch. Unlike the
// inspection APIs this is a deliberate mutator: it interns its arguments
// and creates path state, because the override must persist.
func (n *Network) SetCongestionMean(from, to string, mean, variance float64) {
	p := n.path(n.Intern(from), n.Intern(to))
	p.route.CongestionMean = mean
	p.route.CongestionVar = variance
}

func kbpsToBitsPerSec(kbps float64) float64 {
	if kbps <= 0 {
		return 1 // avoid division by zero; effectively a dead link
	}
	return kbps * 1000
}

func durationFromSeconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
