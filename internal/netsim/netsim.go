// Package netsim is a deterministic discrete-event network simulator.
//
// It stands in for the June-2001 Internet of the paper: hosts attach to the
// network through access links (56k modem, DSL/Cable, T1/LAN), wide-area
// routes between geographic sites contribute propagation delay, random loss
// and time-varying cross-traffic, and every path is shaped by a fluid
// bottleneck queue (drop-tail) that produces queueing delay and overflow
// loss exactly where a real router would.
//
// The simulator delivers opaque packets between registered handlers; the
// transport layer (internal/transport) builds TCP and UDP semantics on top.
package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"realtracer/internal/simclock"
)

// Addr identifies a host endpoint ("host:port" style, but opaque to netsim).
type Addr string

// Host returns the host component of the address (everything before the
// final ':'), or the whole address when there is no port.
func (a Addr) Host() string {
	s := string(a)
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == ':' {
			return s[:i]
		}
	}
	return s
}

// Packet is a unit of transfer. Payload is carried by reference (the
// simulation does not serialize); Size is what occupies link capacity.
type Packet struct {
	From, To Addr
	Size     int // bytes on the wire, including all header overhead
	Payload  any
}

// Handler receives packets addressed to a registered Addr.
type Handler func(pkt *Packet)

// AccessClass is the end-host network configuration from the study's
// user-information dialog.
type AccessClass int

const (
	AccessModem AccessClass = iota // 56k modem
	AccessDSLCable
	AccessT1LAN
	AccessServer // well-provisioned server uplink
)

// String returns the label used in the paper's figures.
func (a AccessClass) String() string {
	switch a {
	case AccessModem:
		return "56k Modem"
	case AccessDSLCable:
		return "DSL/Cable"
	case AccessT1LAN:
		return "T1/LAN"
	case AccessServer:
		return "Server"
	default:
		return fmt.Sprintf("AccessClass(%d)", int(a))
	}
}

// AccessProfile describes an access link's steady-state characteristics.
type AccessProfile struct {
	DownKbps float64 // downstream capacity
	UpKbps   float64 // upstream capacity
	// QueueDelayMax is the worst-case buffering at the access link before
	// drop-tail loss (router buffer expressed in time at line rate).
	QueueDelayMax time.Duration
	// BaseDelay is the access technology's first-hop latency (modems add
	// tens of ms of serialization/interleaving delay).
	BaseDelay time.Duration
}

// DefaultAccessProfile returns 2001-era characteristics for the class.
// Typical 56k modems streamed up to ~50 Kbps; DSL/Cable up to ~500 Kbps
// (paper, Section V.A); T1/LAN above that but shared with corporate traffic.
func DefaultAccessProfile(class AccessClass) AccessProfile {
	switch class {
	case AccessModem:
		return AccessProfile{DownKbps: 50, UpKbps: 33, QueueDelayMax: 1200 * time.Millisecond, BaseDelay: 90 * time.Millisecond}
	case AccessDSLCable:
		return AccessProfile{DownKbps: 512, UpKbps: 128, QueueDelayMax: 450 * time.Millisecond, BaseDelay: 12 * time.Millisecond}
	case AccessT1LAN:
		return AccessProfile{DownKbps: 1544, UpKbps: 1544, QueueDelayMax: 250 * time.Millisecond, BaseDelay: 3 * time.Millisecond}
	case AccessServer:
		return AccessProfile{DownKbps: 10000, UpKbps: 10000, QueueDelayMax: 150 * time.Millisecond, BaseDelay: 2 * time.Millisecond}
	default:
		return AccessProfile{DownKbps: 512, UpKbps: 512, QueueDelayMax: 300 * time.Millisecond, BaseDelay: 10 * time.Millisecond}
	}
}

// Route describes the wide-area segment between two sites, independent of
// either end's access link.
type Route struct {
	// OneWayDelay is the base propagation delay in one direction.
	OneWayDelay time.Duration
	// Jitter is the maximum extra random per-packet delay on the route.
	Jitter time.Duration
	// LossRate is the route's random (non-congestion) packet loss
	// probability in [0, 1].
	LossRate float64
	// CapacityKbps is the route's share available to one flow before
	// cross-traffic is applied. Zero means "not the bottleneck".
	CapacityKbps float64
	// CongestionMean and CongestionVar parameterize the AR(1) cross-traffic
	// level in [0, 1): the fraction of bottleneck capacity consumed by
	// background traffic, resampled about once a second.
	CongestionMean float64
	CongestionVar  float64
}

// RouteTable resolves the wide-area route between two hosts (by host name).
// geo implements this from the study's region matrix.
type RouteTable interface {
	Route(fromHost, toHost string) Route
}

// StaticRoute is a RouteTable returning the same Route for every pair;
// convenient in unit tests.
type StaticRoute Route

// Route implements RouteTable.
func (s StaticRoute) Route(from, to string) Route { return Route(s) }

// HostConfig describes one attached host.
type HostConfig struct {
	Name   string
	Access AccessProfile
}

type host struct {
	cfg      HostConfig
	handlers map[Addr]Handler
	// Fluid drop-tail queues: the virtual time until which each direction of
	// the access link is busy serving earlier packets.
	upBusyUntil   time.Duration
	downBusyUntil time.Duration
}

type pairKey struct{ from, to string }

// pathState carries the per-ordered-pair wide-area state.
type pathState struct {
	route        Route
	busyUntil    time.Duration // fluid queue at the route bottleneck
	congestion   float64       // current cross-traffic level in [0,1)
	lastResample time.Duration

	// Dynamics-layer state (dynamics.go): which schedule events match this
	// path, resolved lazily, plus per-event Gilbert–Elliott chain state.
	dynMatched bool
	dynEvents  []int
	ge         []geState
}

// Network simulates packet delivery between hosts. Not safe for concurrent
// use: it shares the single-threaded simclock discipline.
type Network struct {
	Clock  *simclock.Clock
	rng    *rand.Rand
	routes RouteTable
	hosts  map[string]*host
	paths  map[pairKey]*pathState
	dyn    *dynState // nil unless SetDynamics installed a schedule

	// Stats
	sent, delivered, dropped uint64
}

// New creates a Network on the given clock. routes may be nil, in which case
// a zero Route (LAN-like: no delay, no loss, unconstrained) is used
// everywhere.
func New(clock *simclock.Clock, routes RouteTable, seed int64) *Network {
	if routes == nil {
		routes = StaticRoute{}
	}
	return &Network{
		Clock:  clock,
		rng:    rand.New(rand.NewSource(seed)),
		routes: routes,
		hosts:  make(map[string]*host),
		paths:  make(map[pairKey]*pathState),
	}
}

// AddHost attaches a host. Adding the same name twice panics: host identity
// is load-bearing for path state.
func (n *Network) AddHost(cfg HostConfig) {
	if _, ok := n.hosts[cfg.Name]; ok {
		panic("netsim: duplicate host " + cfg.Name)
	}
	n.hosts[cfg.Name] = &host{cfg: cfg, handlers: make(map[Addr]Handler)}
}

// RemoveHost detaches a host and all its handlers. Unknown names are a no-op.
func (n *Network) RemoveHost(name string) { delete(n.hosts, name) }

// Register installs the packet handler for addr. The host component of addr
// must have been added with AddHost.
func (n *Network) Register(addr Addr, h Handler) {
	hst, ok := n.hosts[addr.Host()]
	if !ok {
		panic("netsim: Register on unknown host " + addr.Host())
	}
	hst.handlers[addr] = h
}

// Unregister removes the handler for addr.
func (n *Network) Unregister(addr Addr) {
	if hst, ok := n.hosts[addr.Host()]; ok {
		delete(hst.handlers, addr)
	}
}

// Stats reports cumulative packet counts: sent (offered to the network),
// delivered and dropped (loss or queue overflow).
func (n *Network) Stats() (sent, delivered, dropped uint64) {
	return n.sent, n.delivered, n.dropped
}

func (n *Network) path(from, to string) *pathState {
	k := pairKey{from, to}
	p, ok := n.paths[k]
	if !ok {
		r := n.routes.Route(from, to)
		p = &pathState{route: r, congestion: clamp01(r.CongestionMean)}
		n.paths[k] = p
	}
	return p
}

const congestionResample = time.Second

// resampleCongestion advances the AR(1) cross-traffic process to now.
func (n *Network) resampleCongestion(p *pathState) {
	now := n.Clock.Now()
	for p.lastResample+congestionResample <= now {
		p.lastResample += congestionResample
		mean, sd := p.route.CongestionMean, p.route.CongestionVar
		// AR(1) pull toward the mean with Gaussian innovation.
		p.congestion = clamp01(p.congestion + 0.35*(mean-p.congestion) + n.rng.NormFloat64()*sd)
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 0.95 {
		return 0.95
	}
	return x
}

// Send offers pkt to the network. Delivery (or silent drop) is scheduled on
// the clock; the call itself does not advance time. Sending from or to an
// unknown host drops the packet.
func (n *Network) Send(pkt *Packet) {
	n.sent++
	src, ok := n.hosts[pkt.From.Host()]
	if !ok {
		n.dropped++
		return
	}
	dst, ok := n.hosts[pkt.To.Host()]
	if !ok {
		n.dropped++
		return
	}
	p := n.path(src.cfg.Name, dst.cfg.Name)
	n.resampleCongestion(p)
	// The dynamics layer (dynamics.go) folds every active scheduled event —
	// outages, ramps, traffic profiles, loss bursts, delay shifts — into one
	// effect. With no schedule installed this is inert and draw-free.
	eff := n.dynApply(p, src.cfg.Name, dst.cfg.Name)
	if eff.drop {
		n.dropped++
		return
	}
	now := n.Clock.Now()
	bits := float64(pkt.Size) * 8

	// 1. Source access link uplink: fluid drop-tail queue.
	upRate := kbpsToBitsPerSec(src.cfg.Access.UpKbps)
	txUp := durationFromSeconds(bits / upRate)
	start := maxDur(now, src.upBusyUntil)
	if start-now > src.cfg.Access.QueueDelayMax {
		n.dropped++
		return
	}
	src.upBusyUntil = start + txUp
	t := src.upBusyUntil + src.cfg.Access.BaseDelay

	// 2. Wide-area route: bottleneck service (if capacity-constrained by the
	// route), propagation, random loss and jitter.
	r := p.route
	if r.LossRate > 0 && n.rng.Float64() < r.LossRate {
		n.dropped++
		return
	}
	if eff.lossExtra > 0 && n.dyn.rng.Float64() < eff.lossExtra {
		n.dropped++
		return
	}
	if r.CapacityKbps > 0 {
		cong := clamp01(p.congestion + eff.congAdd)
		avail := kbpsToBitsPerSec(r.CapacityKbps) * eff.capFactor * (1 - cong)
		if avail < 1 {
			avail = 1 // a ramped-to-zero bottleneck is a dead link
		}
		tx := durationFromSeconds(bits / avail)
		s := maxDur(t, p.busyUntil)
		// Route buffers are generous; express overflow as time at line rate.
		const routeQueueMax = 2 * time.Second
		if s-t > routeQueueMax {
			n.dropped++
			return
		}
		p.busyUntil = s + tx
		t = p.busyUntil
	}
	t += r.OneWayDelay + eff.delayAdd
	if r.Jitter > 0 {
		t += time.Duration(n.rng.Float64() * float64(r.Jitter))
	}

	// 3. Destination access link downlink: where modems actually hurt.
	downRate := kbpsToBitsPerSec(dst.cfg.Access.DownKbps)
	txDown := durationFromSeconds(bits / downRate)
	arrive := maxDur(t, dst.downBusyUntil)
	if arrive-t > dst.cfg.Access.QueueDelayMax {
		n.dropped++
		return
	}
	dst.downBusyUntil = arrive + txDown
	deliverAt := dst.downBusyUntil + dst.cfg.Access.BaseDelay

	n.Clock.At(deliverAt, func() {
		hst, ok := n.hosts[pkt.To.Host()]
		if !ok {
			n.dropped++
			return
		}
		h, ok := hst.handlers[pkt.To]
		if !ok {
			n.dropped++
			return
		}
		n.delivered++
		h(pkt)
	})
}

// Congestion returns the current cross-traffic level on the ordered path
// from -> to (creating path state if needed). Exposed for tests and the
// adaptation example.
func (n *Network) Congestion(from, to string) float64 {
	p := n.path(from, to)
	n.resampleCongestion(p)
	return p.congestion
}

// SetCongestionMean overrides the cross-traffic mean for the ordered pair,
// taking effect from the current virtual time. Used by the congestion and
// adaptation examples to create a mid-clip congestion epoch.
func (n *Network) SetCongestionMean(from, to string, mean, variance float64) {
	p := n.path(from, to)
	p.route.CongestionMean = mean
	p.route.CongestionVar = variance
}

func kbpsToBitsPerSec(kbps float64) float64 {
	if kbps <= 0 {
		return 1 // avoid division by zero; effectively a dead link
	}
	return kbps * 1000
}

func durationFromSeconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
