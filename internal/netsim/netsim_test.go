package netsim

import (
	"testing"
	"time"

	"realtracer/internal/simclock"
)

func newNet(route Route) (*simclock.Clock, *Network) {
	clock := simclock.New()
	n := New(clock, StaticRoute(route), 42)
	n.AddHost(HostConfig{Name: "a", Access: DefaultAccessProfile(AccessServer)})
	n.AddHost(HostConfig{Name: "b", Access: DefaultAccessProfile(AccessT1LAN)})
	return clock, n
}

func TestDeliveryLatency(t *testing.T) {
	clock, n := newNet(Route{OneWayDelay: 100 * time.Millisecond})
	n.Register("b:1", func(pkt *Packet) {
		// Propagation + two serializations + base delays; must be at least
		// the one-way delay and well under a second.
		now := clock.Now()
		if now < 100*time.Millisecond || now > 300*time.Millisecond {
			t.Errorf("delivery at %v", now)
		}
	})
	n.Send(&Packet{From: "a:9", To: "b:1", Size: 500})
	clock.Run()
	if _, delivered, _ := n.Stats(); delivered != 1 {
		t.Fatal("packet not delivered")
	}
}

func TestRandomLossRate(t *testing.T) {
	clock, n := newNet(Route{LossRate: 0.3})
	got := 0
	n.Register("b:1", func(*Packet) { got++ })
	const total = 2000
	for i := 0; i < total; i++ {
		i := i
		clock.After(time.Duration(i)*10*time.Millisecond, func() {
			n.Send(&Packet{From: "a:9", To: "b:1", Size: 200})
		})
	}
	clock.Run()
	frac := float64(got) / total
	if frac < 0.6 || frac > 0.8 {
		t.Fatalf("30%% loss delivered %.2f", frac)
	}
}

func TestCapacityLimitsThroughput(t *testing.T) {
	// A 100 Kbps route cannot deliver 1 Mbps of offered load.
	clock, n := newNet(Route{CapacityKbps: 100})
	var bytes int
	n.Register("b:1", func(pkt *Packet) { bytes += pkt.Size })
	for i := 0; i < 1000; i++ {
		i := i
		clock.After(time.Duration(i)*10*time.Millisecond, func() { // 1000B every 10ms = 800 Kbps
			n.Send(&Packet{From: "a:9", To: "b:1", Size: 1000})
		})
	}
	clock.RunUntil(10 * time.Second)
	kbps := float64(bytes) * 8 / 1000 / 10
	if kbps > 130 {
		t.Fatalf("delivered %.0f Kbps through a 100 Kbps route", kbps)
	}
	if kbps < 50 {
		t.Fatalf("route starved: %.0f Kbps", kbps)
	}
}

func TestAccessLinkQueueOverflowDrops(t *testing.T) {
	clock := simclock.New()
	n := New(clock, StaticRoute(Route{}), 1)
	n.AddHost(HostConfig{Name: "a", Access: DefaultAccessProfile(AccessServer)})
	modem := DefaultAccessProfile(AccessModem) // ~50 Kbps down, 1.2 s queue
	n.AddHost(HostConfig{Name: "m", Access: modem})
	delivered := 0
	n.Register("m:1", func(*Packet) { delivered++ })
	// Offer 500 Kbps to a 50 Kbps modem for 5 seconds.
	for i := 0; i < 300; i++ {
		i := i
		clock.After(time.Duration(i)*10*time.Millisecond, func() {
			n.Send(&Packet{From: "a:9", To: "m:1", Size: 625})
		})
	}
	clock.Run()
	_, _, dropped := n.Stats()
	if dropped == 0 {
		t.Fatal("10x overload should overflow the modem queue")
	}
	if delivered == 0 {
		t.Fatal("some packets must still get through")
	}
}

func TestUnknownHostsDrop(t *testing.T) {
	clock, n := newNet(Route{})
	n.Send(&Packet{From: "nope:1", To: "b:1", Size: 100})
	n.Send(&Packet{From: "a:1", To: "ghost:1", Size: 100})
	clock.Run()
	if _, _, dropped := n.Stats(); dropped != 2 {
		t.Fatalf("dropped=%d want 2", dropped)
	}
}

func TestUnregisteredAddrDrops(t *testing.T) {
	clock, n := newNet(Route{})
	n.Send(&Packet{From: "a:1", To: "b:99", Size: 100})
	clock.Run()
	if _, delivered, dropped := n.Stats(); delivered != 0 || dropped != 1 {
		t.Fatalf("delivered=%d dropped=%d", delivered, dropped)
	}
}

func TestUnregisterStopsDelivery(t *testing.T) {
	clock, n := newNet(Route{})
	got := 0
	n.Register("b:1", func(*Packet) { got++ })
	n.Send(&Packet{From: "a:1", To: "b:1", Size: 10})
	clock.Run()
	n.Unregister("b:1")
	n.Send(&Packet{From: "a:1", To: "b:1", Size: 10})
	clock.Run()
	if got != 1 {
		t.Fatalf("got=%d want 1", got)
	}
}

func TestDuplicateHostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddHost should panic")
		}
	}()
	_, n := newNet(Route{})
	n.AddHost(HostConfig{Name: "a"})
}

func TestRegisterUnknownHostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register on unknown host should panic")
		}
	}()
	_, n := newNet(Route{})
	n.Register("ghost:1", func(*Packet) {})
}

func TestCongestionStaysBounded(t *testing.T) {
	clock, n := newNet(Route{CapacityKbps: 500, CongestionMean: 0.5, CongestionVar: 0.3})
	for i := 0; i < 300; i++ {
		clock.After(time.Duration(i)*time.Second, func() {
			c := n.Congestion("a", "b")
			if c < 0 || c > 0.95 {
				t.Errorf("congestion out of bounds: %v", c)
			}
		})
	}
	clock.Run()
}

func TestSetCongestionMeanTakesEffect(t *testing.T) {
	clock, n := newNet(Route{CapacityKbps: 500, CongestionMean: 0.1, CongestionVar: 0})
	n.SetCongestionMean("a", "b", 0.9, 0)
	clock.RunUntil(30 * time.Second)
	if c := n.Congestion("a", "b"); c < 0.6 {
		t.Fatalf("congestion %.2f did not converge toward 0.9", c)
	}
}

func TestAddrHost(t *testing.T) {
	if Addr("host:123").Host() != "host" {
		t.Fatal("Host() failed")
	}
	if Addr("bare").Host() != "bare" {
		t.Fatal("portless Host() failed")
	}
}

func TestAccessClassString(t *testing.T) {
	for class, want := range map[AccessClass]string{
		AccessModem: "56k Modem", AccessDSLCable: "DSL/Cable",
		AccessT1LAN: "T1/LAN", AccessServer: "Server",
	} {
		if class.String() != want {
			t.Errorf("%v", class)
		}
	}
}

func TestJitterSpreadsDelivery(t *testing.T) {
	clock, n := newNet(Route{OneWayDelay: 50 * time.Millisecond, Jitter: 40 * time.Millisecond})
	var times []time.Duration
	n.Register("b:1", func(*Packet) { times = append(times, clock.Now()) })
	base := time.Duration(0)
	for i := 0; i < 50; i++ {
		i := i
		clock.After(base+time.Duration(i)*100*time.Millisecond, func() {
			n.Send(&Packet{From: "a:1", To: "b:1", Size: 100})
		})
	}
	clock.Run()
	if len(times) != 50 {
		t.Fatalf("delivered %d", len(times))
	}
	// Inter-arrival gaps should vary (jitter), not be a constant 100 ms.
	varied := false
	for i := 2; i < len(times); i++ {
		g1 := times[i] - times[i-1]
		g2 := times[i-1] - times[i-2]
		if g1 != g2 {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("jitter had no effect on inter-arrival times")
	}
}

// TestRemoveHostPurgesPathState is the remove/re-add regression: detaching a
// host must purge the per-path wide-area state in both directions, so a host
// re-added under the same name starts with fresh congestion and bottleneck
// queues instead of inheriting the dead host's.
func TestRemoveHostPurgesPathState(t *testing.T) {
	clock, n := newNet(Route{CapacityKbps: 100})
	n.Register("b:1", func(*Packet) {})
	// Saturate the a->b bottleneck so its fluid queue extends far into the
	// future.
	for i := 0; i < 50; i++ {
		n.Send(&Packet{From: "a:9", To: "b:1", Size: 1000})
	}
	p := n.path(n.Intern("a"), n.Intern("b"))
	if p.busyUntil == 0 {
		t.Fatal("bottleneck queue did not build up")
	}
	// Also touch the reverse direction so both orientations have state.
	n.Send(&Packet{From: "b:1", To: "a:9", Size: 1000})
	clock.Run()

	n.RemoveHost("b")
	n.AddHost(HostConfig{Name: "b", Access: DefaultAccessProfile(AccessT1LAN)})
	if got := n.path(n.Intern("a"), n.Intern("b")).busyUntil; got != 0 {
		t.Fatalf("re-added host inherited a->b busyUntil=%v, want fresh state", got)
	}
	if got := n.path(n.Intern("b"), n.Intern("a")).busyUntil; got != 0 {
		t.Fatalf("re-added host inherited b->a busyUntil=%v, want fresh state", got)
	}
	// The re-added host must receive traffic normally (same interned ID).
	got := 0
	n.Register("b:1", func(*Packet) { got++ })
	n.Send(&Packet{From: "a:9", To: "b:1", Size: 100})
	clock.Run()
	if got != 1 {
		t.Fatalf("re-added host received %d packets, want 1", got)
	}
}

// TestRemoveHostDropsInFlight pins delivery semantics across removal: a
// packet in flight to a removed host is dropped, and handlers of the old
// incarnation do not leak onto the new one.
func TestRemoveHostDropsInFlight(t *testing.T) {
	clock, n := newNet(Route{OneWayDelay: 100 * time.Millisecond})
	oldGot := 0
	n.Register("b:1", func(*Packet) { oldGot++ })
	n.Send(&Packet{From: "a:9", To: "b:1", Size: 100})
	n.RemoveHost("b")
	clock.Run()
	if oldGot != 0 {
		t.Fatalf("removed host still received %d packets", oldGot)
	}
	if _, _, dropped := n.Stats(); dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	// Re-add: the old registration must be gone.
	n.AddHost(HostConfig{Name: "b", Access: DefaultAccessProfile(AccessT1LAN)})
	n.Send(&Packet{From: "a:9", To: "b:1", Size: 100})
	clock.Run()
	if oldGot != 0 {
		t.Fatalf("stale handler fired %d times after re-add", oldGot)
	}
}

// TestPooledPacketRoundTrip checks Obtain/Send recycling: steady-state
// sends reuse one packet and one clock event, and the pool never hands out
// a packet that is still in flight.
func TestPooledPacketRoundTrip(t *testing.T) {
	clock, n := newNet(Route{})
	var sizes []int
	n.Register("b:1", func(pkt *Packet) { sizes = append(sizes, pkt.Size) })
	for i := 0; i < 100; i++ {
		pkt := n.Obtain()
		pkt.From, pkt.To = "a:9", "b:1"
		pkt.Size = 100 + i
		n.Send(pkt)
		clock.Run()
	}
	for i, sz := range sizes {
		if sz != 100+i {
			t.Fatalf("delivery %d saw size %d, want %d", i, sz, 100+i)
		}
	}
	if len(n.free) != 1 {
		t.Fatalf("free list has %d packets after serial round trips, want 1", len(n.free))
	}
}

// TestRemoveHostReleasesInFlightPooled extends the churn regression to the
// packet pool: a host torn down with pooled packets still in flight must
// not leak them — every drop path releases back to the free-list, so the
// PR 4 steady-state alloc budget survives user churn.
func TestRemoveHostReleasesInFlightPooled(t *testing.T) {
	clock, n := newNet(Route{OneWayDelay: 200 * time.Millisecond})
	n.Register("b:1", func(*Packet) {})
	const inFlight = 20
	for i := 0; i < inFlight; i++ {
		pkt := n.Obtain()
		pkt.From, pkt.To = "a:9", "b:1"
		pkt.Size = 500
		n.Send(pkt)
	}
	// Mid-stream departure: the destination host leaves with every packet
	// still on the wire.
	n.RemoveHost("b")
	clock.Run()
	sent, delivered, dropped := n.Stats()
	if delivered != 0 || dropped != sent {
		t.Fatalf("conservation broken across removal: sent=%d delivered=%d dropped=%d", sent, delivered, dropped)
	}
	if got := len(n.free); got != inFlight {
		t.Fatalf("free-list holds %d packets after churn, want all %d released", got, inFlight)
	}
	// A re-arrival under the same name starts clean and streams normally
	// off the recycled pool — no fresh allocations needed.
	n.AddHost(HostConfig{Name: "b", Access: DefaultAccessProfile(AccessT1LAN)})
	got := 0
	n.Register("b:1", func(*Packet) { got++ })
	pkt := n.Obtain()
	pkt.From, pkt.To = "a:9", "b:1"
	pkt.Size = 100
	n.Send(pkt)
	clock.Run()
	if got != 1 {
		t.Fatalf("re-arrived host received %d packets, want 1", got)
	}
	if len(n.free) != inFlight {
		t.Fatalf("free-list holds %d after re-arrival delivery, want %d", len(n.free), inFlight)
	}
}

// TestAttached tracks the host lifecycle the churn layer drives.
func TestAttached(t *testing.T) {
	_, n := newNet(Route{})
	if !n.Attached("a") || !n.Attached("b") {
		t.Fatal("added hosts not attached")
	}
	if n.Attached("ghost") {
		t.Fatal("unknown host attached")
	}
	n.RemoveHost("b")
	if n.Attached("b") {
		t.Fatal("removed host still attached")
	}
	n.AddHost(HostConfig{Name: "b", Access: DefaultAccessProfile(AccessModem)})
	if !n.Attached("b") {
		t.Fatal("re-added host not attached")
	}
}

// TestBaseRTT: the probe is symmetric, includes both access base delays and
// both directions' propagation, and draws no randomness (same value twice).
func TestBaseRTT(t *testing.T) {
	clock := simclock.New()
	n := New(clock, StaticRoute(Route{OneWayDelay: 50 * time.Millisecond}), 1)
	n.AddHost(HostConfig{Name: "a", Access: AccessProfile{BaseDelay: 10 * time.Millisecond, DownKbps: 100, UpKbps: 100}})
	n.AddHost(HostConfig{Name: "b", Access: AccessProfile{BaseDelay: 5 * time.Millisecond, DownKbps: 100, UpKbps: 100}})
	want := 2*50*time.Millisecond + 2*10*time.Millisecond + 2*5*time.Millisecond
	if got := n.BaseRTT("a", "b"); got != want {
		t.Fatalf("BaseRTT = %v, want %v", got, want)
	}
	if n.BaseRTT("a", "b") != n.BaseRTT("b", "a") {
		t.Fatal("BaseRTT not symmetric")
	}
	if n.BaseRTT("a", "b") != n.BaseRTT("a", "b") {
		t.Fatal("BaseRTT not deterministic")
	}
}
