package netsim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"realtracer/internal/simclock"
)

// randRoutes is a RouteTable with an independent random route per ordered
// host pair, fixed at construction so lookups are stable.
type randRoutes struct {
	routes map[[2]string]Route
}

func (r *randRoutes) Route(from, to string) Route { return r.routes[[2]string{from, to}] }

func buildRandRoutes(rng *rand.Rand, hosts []string) *randRoutes {
	t := &randRoutes{routes: make(map[[2]string]Route)}
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			var rt Route
			if rng.Float64() < 0.8 { // some pairs keep the zero (LAN) route
				rt = Route{
					OneWayDelay:    time.Duration(rng.Intn(150)) * time.Millisecond,
					Jitter:         time.Duration(rng.Intn(30)) * time.Millisecond,
					LossRate:       rng.Float64() * 0.05,
					CapacityKbps:   float64(100 + rng.Intn(2000)),
					CongestionMean: rng.Float64() * 0.5,
					CongestionVar:  rng.Float64() * 0.2,
				}
			}
			t.routes[[2]string{a, b}] = rt
		}
	}
	return t
}

// randDynamics composes a random schedule from every event kind.
func randDynamics(rng *rand.Rand, hosts []string) *Dynamics {
	pick := func() string {
		switch rng.Intn(3) {
		case 0:
			return "*"
		default:
			return hosts[rng.Intn(len(hosts))]
		}
	}
	d := NewDynamics()
	for i, n := 0, 1+rng.Intn(5); i < n; i++ {
		from, to := pick(), pick()
		start := time.Duration(rng.Intn(60)) * time.Second
		dur := time.Duration(1+rng.Intn(30)) * time.Second
		switch rng.Intn(6) {
		case 0:
			d.Outage(from, to, start, dur)
		case 1:
			d.Degrade(from, to, start, dur, rng.Float64())
		case 2:
			d.CapacityRamp(from, to, start, dur, rng.Float64()*2)
		case 3:
			d.Diurnal(from, to, 0, 0, time.Duration(10+rng.Intn(60))*time.Second, rng.Float64()*0.8)
		case 4:
			d.FlashCrowd(from, to, start, dur/2, dur, rng.Float64()*0.9)
		case 5:
			d.LossBurst(from, to, start, 0, rng.Float64()*0.3, 0.1+rng.Float64()*0.5, rng.Float64())
		}
	}
	if rng.Float64() < 0.5 {
		d.DelayShift(pick(), pick(), time.Duration(rng.Intn(45))*time.Second, 0,
			time.Duration(rng.Intn(300))*time.Millisecond)
	}
	return d
}

// TestConservationAndFIFOUnderRandomDynamics is the netsim conservation
// property: for random topologies and random dynamics schedules, every
// packet offered to the network is eventually either delivered or dropped
// (delivered + dropped == sent once the event queue drains), and delivery
// on each ordered host pair is FIFO — the fluid queues never reorder a
// path's packets, dynamics or not.
func TestConservationAndFIFOUnderRandomDynamics(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			clock := simclock.New()

			nHosts := 3 + rng.Intn(4)
			hosts := make([]string, nHosts)
			for i := range hosts {
				hosts[i] = fmt.Sprintf("h%d", i)
			}
			n := New(clock, buildRandRoutes(rng, hosts), int64(trial))
			classes := []AccessClass{AccessModem, AccessDSLCable, AccessT1LAN, AccessServer}
			for _, h := range hosts {
				n.AddHost(HostConfig{Name: h, Access: DefaultAccessProfile(classes[rng.Intn(len(classes))])})
			}
			if trial%3 != 0 { // every third trial runs dynamics-free
				n.SetDynamics(randDynamics(rng, hosts), int64(trial*7+1))
			}

			// One delivery log per ordered host pair; packets carry their
			// per-pair send sequence as payload.
			arrived := make(map[[2]string][]int)
			for _, h := range hosts {
				h := h
				n.Register(Addr(h+":1"), func(pkt *Packet) {
					key := [2]string{pkt.From.Host(), pkt.To.Host()}
					arrived[key] = append(arrived[key], pkt.Payload.(int))
				})
			}

			// Sequence numbers are assigned at send time (callbacks fire in
			// timestamp order), so each pair's payloads are monotone in the
			// order the packets actually entered the network.
			sent := 0
			nextSeq := make(map[[2]string]int)
			for i, np := 0, 200+rng.Intn(400); i < np; i++ {
				from := hosts[rng.Intn(nHosts)]
				to := hosts[rng.Intn(nHosts)]
				if from == to {
					continue
				}
				key := [2]string{from, to}
				size := 40 + rng.Intn(1400)
				at := time.Duration(rng.Intn(90_000)) * time.Millisecond
				clock.At(at, func() {
					seq := nextSeq[key]
					nextSeq[key] = seq + 1
					n.Send(&Packet{From: Addr(from + ":1"), To: Addr(to + ":1"), Size: size, Payload: seq})
				})
				sent++
			}
			clock.Run()

			s, d, x := n.Stats()
			if int(s) != sent {
				t.Fatalf("sent=%d want %d", s, sent)
			}
			if d+x != s {
				t.Fatalf("conservation violated: delivered %d + dropped %d != sent %d", d, x, s)
			}
			for key, seqs := range arrived {
				for i := 1; i < len(seqs); i++ {
					if seqs[i] <= seqs[i-1] {
						t.Fatalf("path %v->%v delivered out of order: %v", key[0], key[1], seqs)
					}
				}
			}
		})
	}
}
