package netsim

import (
	"fmt"
	"time"
)

// Shard-transit payload pooling.
//
// A sharded world snapshots every packet payload at the WAN edge
// (CopyPayload) so no shard reads memory another shard may still mutate.
// PR 7 allocated each snapshot fresh, which put the whole payload graph of
// every delivered packet on the garbage collector — a 22x allocation tax
// over the classic path. This file supplies the recycle half of the
// contract: each payload package registers a TransitClass for its wire
// type, leases snapshot storage from the sending shard's TransitPool in
// TransitCopy, and returns it in TransitRelease once the receiving side is
// done with the copy.
//
// Ownership rule: a transit copy belongs to the network until the
// destination handler runs, then to the receiving transport layer. The
// network releases copies it drops itself (unknown destination, detached
// host, edge-queue overflow, missing handler); the transport releases them
// at every consume and drop point of its receive path. Releases go to the
// RECEIVING shard's pool — only that shard's worker (or the single-threaded
// control loop between windows) touches it, exactly like the Packet
// free-list — and Fabric.drain rebalances the pools between windows so
// one-directional flows (a server shard streaming to a client shard) do
// not starve the sender's pool while the receiver's overflows.
//
// On the classic path no copies exist and every release call is a no-op:
// implementations guard on their own leased marker, so transport code calls
// release unconditionally, without caring which engine it runs under.

// TransitClass identifies one pooled transit payload type. Payload packages
// allocate one per wire type at init time via RegisterTransitClass.
type TransitClass int

// numTransitClasses counts registered classes. Registration happens only
// during package initialization (single-threaded by the language spec).
var numTransitClasses int

// RegisterTransitClass allocates a pool slot for one transit payload type.
// Call once per type, from a package-level var initializer.
func RegisterTransitClass() TransitClass {
	c := TransitClass(numTransitClasses)
	numTransitClasses++
	return c
}

// transitFreeMax bounds one class's free-list on one shard; beyond it a
// released copy goes to the garbage collector instead of pinning a burst's
// peak in memory forever.
const transitFreeMax = 4096

// TransitPool holds a shard's per-class transit free-lists. Each Network
// owns one; it follows the single-threaded clock discipline of everything
// else on the Network.
type TransitPool struct {
	free [][]any
}

// Get pops a recycled object of class c, or returns nil when the class
// free-list is empty and the caller must allocate.
func (tp *TransitPool) Get(c TransitClass) any {
	if int(c) < len(tp.free) {
		if s := tp.free[c]; len(s) > 0 {
			v := s[len(s)-1]
			s[len(s)-1] = nil
			tp.free[c] = s[:len(s)-1]
			return v
		}
	}
	return nil
}

// classLen reports the free-list length for class c.
func (tp *TransitPool) classLen(c int) int {
	if c < len(tp.free) {
		return len(tp.free[c])
	}
	return 0
}

// Put recycles an object of class c.
func (tp *TransitPool) Put(c TransitClass, v any) {
	for int(c) >= len(tp.free) {
		tp.free = append(tp.free, nil)
	}
	if len(tp.free[c]) < transitFreeMax {
		tp.free[c] = append(tp.free[c], v)
	}
}

// Transferable is implemented by payloads that can cross a shard boundary.
// TransitCopy returns a deep snapshot sharing no mutable memory with the
// original — value semantics at the wire, standing in for the serialization
// a real network would perform. Snapshot storage should be leased from tp
// (falling back to allocation when the pool is empty) so the copy can be
// recycled through TransitRelease.
type Transferable interface {
	TransitCopy(tp *TransitPool) any
}

// TransitReleasable is implemented by transit copies that recycle their
// snapshot storage. TransitRelease must be a no-op on objects that are not
// leased transit copies (originals, double releases), so receive paths can
// release every payload unconditionally.
type TransitReleasable interface {
	TransitRelease(tp *TransitPool)
}

// CopyPayload snapshots a packet payload for transit between shards,
// leasing snapshot storage from tp. Transferable payloads copy themselves
// (recursively, for nested payloads); immutable value types pass through;
// anything else is a bug in the caller — a payload type that was never
// taught to cross a shard boundary.
func CopyPayload(tp *TransitPool, p any) any {
	switch v := p.(type) {
	case nil:
		return nil
	case Transferable:
		return v.TransitCopy(tp)
	case string, bool,
		int, int8, int16, int32, int64,
		uint, uint8, uint16, uint32, uint64,
		float32, float64, time.Duration:
		return v
	default:
		panic(fmt.Sprintf("netsim: payload type %T cannot cross a shard boundary (implement TransitCopy)", p))
	}
}

// ReleaseTransit returns a transit-copy payload to tp. Safe on any payload:
// non-copies (and nil) are ignored.
func ReleaseTransit(tp *TransitPool, p any) {
	if r, ok := p.(TransitReleasable); ok {
		r.TransitRelease(tp)
	}
}

// TransitPool returns the network's transit free-lists — the pool payload
// snapshots on this shard lease from and are released to.
func (n *Network) TransitPool() *TransitPool { return &n.transit }

// ReleaseTransit recycles a transit-copy payload into this network's pool.
// A no-op for originals (the classic path) and for payload types without
// pooled snapshots, so receive paths call it unconditionally.
func (n *Network) ReleaseTransit(p any) { ReleaseTransit(&n.transit, p) }

// Sharded reports whether the network is one shard of a Fabric. Transport
// code uses it for the few ownership decisions that differ between the
// classic reference-passing engine and the sharded copy-at-the-wire one.
func (n *Network) Sharded() bool { return n.fab != nil }

// releaseTransitPayload recycles pkt's payload on a network-side drop. The
// payload slot is left intact; the caller's release(pkt) clears it.
func (n *Network) releaseTransitPayload(pkt *Packet) {
	if pkt.Payload != nil {
		ReleaseTransit(&n.transit, pkt.Payload)
	}
}
