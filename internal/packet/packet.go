// Package packet provides the low-level wire primitives shared by the RDT
// data codec and the RTSP control codec: a bounds-checked big-endian
// reader/writer pair, a 16-bit Internet-style checksum, and gopacket-style
// Endpoint/Flow identities for classifying traffic.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrShortBuffer is returned when a read runs past the end of the input.
var ErrShortBuffer = errors.New("packet: short buffer")

// Writer appends big-endian fields to a byte slice. The zero value is ready
// to use; Bytes returns the accumulated encoding.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with capacity preallocated for n bytes.
func NewWriter(n int) *Writer { return &Writer{buf: make([]byte, 0, n)} }

// Bytes returns the encoded bytes. The slice aliases the writer's buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset truncates the writer to empty while keeping its capacity, so one
// Writer can encode a stream of messages without re-allocating. Do not Reset
// while a slice returned by Bytes is still in use — it aliases the buffer.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 appends a big-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }

// Bytes16 appends a 16-bit length prefix followed by b. It panics if b
// exceeds 64 KiB; wire messages never carry blobs that large.
func (w *Writer) Bytes16(b []byte) {
	if len(b) > 0xFFFF {
		panic(fmt.Sprintf("packet: Bytes16 blob too large: %d", len(b)))
	}
	w.U16(uint16(len(b)))
	w.buf = append(w.buf, b...)
}

// String16 appends s with a 16-bit length prefix.
func (w *Writer) String16(s string) { w.Bytes16([]byte(s)) }

// zeros is a shared source of zero padding for Zeros16.
var zeros [4096]byte

// Zeros16 appends a 16-bit length prefix followed by n zero bytes without
// allocating a scratch slice — the encoding of a simulation payload whose
// bytes are synthetic padding (rdt.Data.PadLen).
func (w *Writer) Zeros16(n int) {
	if n < 0 || n > 0xFFFF {
		panic(fmt.Sprintf("packet: Zeros16 length out of range: %d", n))
	}
	w.U16(uint16(n))
	for n > 0 {
		k := n
		if k > len(zeros) {
			k = len(zeros)
		}
		w.buf = append(w.buf, zeros[:k]...)
		n -= k
	}
}

// Raw appends b with no prefix.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Truncate shortens the writer to n bytes; encoders use it to roll back a
// partially written message on error. It panics if n exceeds the current
// length.
func (w *Writer) Truncate(n int) {
	if n < 0 || n > len(w.buf) {
		panic(fmt.Sprintf("packet: Truncate(%d) outside buffer of %d", n, len(w.buf)))
	}
	w.buf = w.buf[:n]
}

// Reader consumes big-endian fields from a byte slice. Errors are sticky:
// after the first failure all subsequent reads return zero values and Err
// reports the failure.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over b. The reader does not copy b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first error encountered, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = ErrShortBuffer
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Bytes16 reads a 16-bit length prefix and then that many bytes. The result
// aliases the input buffer.
func (r *Reader) Bytes16() []byte {
	n := int(r.U16())
	return r.take(n)
}

// String16 reads a 16-bit length-prefixed string.
func (r *Reader) String16() string { return string(r.Bytes16()) }

// Raw reads n bytes without a prefix.
func (r *Reader) Raw(n int) []byte { return r.take(n) }

// Checksum computes the 16-bit one's-complement Internet checksum of b
// (RFC 1071 style), used to validate RDT packets carried over lossy paths.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + sum>>16
	}
	return ^uint16(sum)
}

// EndpointType distinguishes address families, mirroring gopacket's
// Endpoint/Flow design in miniature.
type EndpointType uint8

const (
	EndpointInvalid EndpointType = iota
	EndpointHostPort
)

// Endpoint is a hashable representation of one side of a flow.
type Endpoint struct {
	Type EndpointType
	Addr string
}

// NewEndpoint builds a host:port endpoint.
func NewEndpoint(addr string) Endpoint { return Endpoint{Type: EndpointHostPort, Addr: addr} }

// String implements fmt.Stringer.
func (e Endpoint) String() string { return e.Addr }

// LessThan orders endpoints lexically, for canonicalizing flows.
func (e Endpoint) LessThan(o Endpoint) bool {
	if e.Type != o.Type {
		return e.Type < o.Type
	}
	return e.Addr < o.Addr
}

// Flow is an ordered (src, dst) endpoint pair. Flows are comparable and can
// be used as map keys to group a session's packets.
type Flow struct {
	Src, Dst Endpoint
}

// NewFlow builds a flow between two host:port addresses.
func NewFlow(src, dst string) Flow {
	return Flow{Src: NewEndpoint(src), Dst: NewEndpoint(dst)}
}

// Reverse returns the flow in the opposite direction.
func (f Flow) Reverse() Flow { return Flow{Src: f.Dst, Dst: f.Src} }

// Canonical returns the flow with endpoints ordered so that A->B and B->A
// map to the same value, for bidirectional accounting.
func (f Flow) Canonical() Flow {
	if f.Dst.LessThan(f.Src) {
		return f.Reverse()
	}
	return f
}

// String implements fmt.Stringer.
func (f Flow) String() string { return f.Src.Addr + "->" + f.Dst.Addr }
