package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.U8(0xAB)
	w.U16(0xBEEF)
	w.U32(0xDEADBEEF)
	w.U64(0x0123456789ABCDEF)
	w.String16("hello")
	w.Bytes16([]byte{1, 2, 3})
	w.Raw([]byte{9, 9})

	r := NewReader(w.Bytes())
	if r.U8() != 0xAB || r.U16() != 0xBEEF || r.U32() != 0xDEADBEEF || r.U64() != 0x0123456789ABCDEF {
		t.Fatal("fixed-width round trip failed")
	}
	if r.String16() != "hello" {
		t.Fatal("string round trip failed")
	}
	if !bytes.Equal(r.Bytes16(), []byte{1, 2, 3}) {
		t.Fatal("bytes round trip failed")
	}
	if !bytes.Equal(r.Raw(2), []byte{9, 9}) {
		t.Fatal("raw round trip failed")
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", r.Err(), r.Remaining())
	}
}

func TestReaderShortBufferSticky(t *testing.T) {
	r := NewReader([]byte{1})
	r.U32()
	if r.Err() != ErrShortBuffer {
		t.Fatalf("want ErrShortBuffer, got %v", r.Err())
	}
	// Sticky: subsequent reads return zero values without panicking.
	if r.U8() != 0 || r.U16() != 0 || r.String16() != "" {
		t.Fatal("sticky error reads should be zero")
	}
}

func TestBytes16TruncatedLength(t *testing.T) {
	w := NewWriter(8)
	w.U16(100) // claims 100 bytes follow
	w.Raw([]byte{1, 2})
	r := NewReader(w.Bytes())
	if r.Bytes16() != nil || r.Err() != ErrShortBuffer {
		t.Fatal("truncated Bytes16 not detected")
	}
}

func TestBytes16TooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized Bytes16 should panic")
		}
	}()
	NewWriter(0).Bytes16(make([]byte, 70000))
}

// Property: any sequence of fields round-trips exactly.
func TestPropertyFieldRoundTrip(t *testing.T) {
	f := func(a uint8, b uint16, c uint32, d uint64, s string, blob []byte) bool {
		if len(s) > 60000 || len(blob) > 60000 {
			return true
		}
		w := NewWriter(32)
		w.U8(a)
		w.U16(b)
		w.U32(c)
		w.U64(d)
		w.String16(s)
		w.Bytes16(blob)
		r := NewReader(w.Bytes())
		okBlob := r2bytes(r, a, b, c, d, s, blob)
		return okBlob && r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func r2bytes(r *Reader, a uint8, b uint16, c uint32, d uint64, s string, blob []byte) bool {
	if r.U8() != a || r.U16() != b || r.U32() != c || r.U64() != d {
		return false
	}
	if r.String16() != s {
		return false
	}
	got := r.Bytes16()
	if len(got) != len(blob) {
		return false
	}
	return bytes.Equal(got, blob)
}

func TestChecksumDetectsCorruption(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	sum := Checksum(data)
	for i := range data {
		corrupted := append([]byte(nil), data...)
		corrupted[i] ^= 0x01
		if Checksum(corrupted) == sum {
			t.Fatalf("single-bit corruption at %d not detected", i)
		}
	}
}

func TestChecksumOddLength(t *testing.T) {
	if Checksum([]byte{0xFF}) == Checksum([]byte{0xFF, 0x00, 0x01}) {
		t.Fatal("odd-length handling suspicious")
	}
	_ = Checksum(nil) // must not panic
}

// Property: checksum is deterministic and input-order sensitive.
func TestPropertyChecksumDeterministic(t *testing.T) {
	f := func(b []byte) bool {
		return Checksum(b) == Checksum(append([]byte(nil), b...))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowCanonicalSymmetric(t *testing.T) {
	f := NewFlow("a:1", "b:2")
	r := f.Reverse()
	if f.Canonical() != r.Canonical() {
		t.Fatal("canonical flow should be direction independent")
	}
	if r.Src.Addr != "b:2" || r.Dst.Addr != "a:1" {
		t.Fatal("reverse wrong")
	}
}

func TestFlowAsMapKey(t *testing.T) {
	m := map[Flow]int{}
	m[NewFlow("a:1", "b:2").Canonical()]++
	m[NewFlow("b:2", "a:1").Canonical()]++
	if len(m) != 1 {
		t.Fatal("bidirectional flows should share a canonical key")
	}
}

func TestEndpointOrdering(t *testing.T) {
	a, b := NewEndpoint("a"), NewEndpoint("b")
	if !a.LessThan(b) || b.LessThan(a) {
		t.Fatal("lexical ordering broken")
	}
}

func TestFlowString(t *testing.T) {
	if s := NewFlow("x:1", "y:2").String(); s != "x:1->y:2" {
		t.Fatalf("String()=%q", s)
	}
}
