package player

import (
	"sort"

	"realtracer/internal/session"
	"realtracer/internal/simclock"
	"realtracer/internal/snap"
	"realtracer/internal/transport"
	"realtracer/internal/vclock"
)

// The player's six timer handlers are converted-pointer types over Player
// itself, so each registers as its own persistable event kind; a pending
// timer serializes as (kind, At, seq) owned by the player record.
func init() {
	simclock.RegisterEventKind("player.idle", (*idleArm)(nil))
	simclock.RegisterEventKind("player.nack", (*nackArm)(nil))
	simclock.RegisterEventKind("player.report", (*reportArm)(nil))
	simclock.RegisterEventKind("player.frame", (*frameArm)(nil))
	simclock.RegisterEventKind("player.underrun", (*underrunArm)(nil))
	simclock.RegisterEventKind("player.timeup", (*timeUpArm)(nil))
}

// PersistState writes the complete mid-session player: the handshake state
// machine (plain-data pending kinds), both connections, the frame buffer and
// reassembly set, the FEC window and NACK ledger, every timer, and the
// accumulated Stats. The player persists the Config scalars that were drawn
// from its owner's RNG at session start (URL, addresses, protocol, bandwidth
// cap, durations); the owner re-supplies the environment (clock, net, CPU
// profile, RNG, arena, callbacks) on restore.
func (p *Player) PersistState(sw *snap.Writer, app transport.AppCodec) error {
	sw.Tag("player")
	sw.Str(p.cfg.URL)
	sw.Str(p.cfg.ControlAddr)
	sw.Str(p.cfg.ServerUDPAddr)
	sw.U8(uint8(p.cfg.Protocol))
	sw.F64(p.cfg.MaxBandwidthKbps)
	sw.Dur(p.cfg.PlayFor)
	sw.Dur(p.cfg.Preroll)

	sw.Bool(p.ctl != nil)
	if p.ctl != nil {
		if err := transport.PersistConn(sw, p.ctl, app); err != nil {
			return err
		}
	}
	sw.Bool(p.data != nil)
	if p.data != nil {
		if err := transport.PersistConn(sw, p.data, app); err != nil {
			return err
		}
	}
	sw.Bool(p.dataIsMe)

	sw.Str(p.sessID)
	p.desc.Persist(sw)
	sw.Int(p.cseq)
	cseqs := make([]int, 0, len(p.pending))
	for c := range p.pending {
		cseqs = append(cseqs, c)
	}
	sort.Ints(cseqs)
	sw.U32(uint32(len(cseqs)))
	for _, c := range cseqs {
		sw.Int(c)
		sw.U8(p.pending[c])
	}

	sw.Str(p.state)
	sw.Dur(p.playStart)
	sw.Dur(p.mediaBase)
	sw.Dur(p.playPos)
	p.endAt.Persist(sw)
	p.frameTimer.Persist(sw)
	p.graceTimer.Persist(sw)
	p.idle.Persist(sw)
	p.reportTick.Persist(sw)
	p.nackTimer.Persist(sw)
	sw.U32(p.epoch)

	// The frame heap persists in raw array order: restoring the identical
	// slice reproduces the identical heap layout, hence identical pop order.
	sw.U32(uint32(len(p.frames)))
	for _, f := range p.frames {
		sw.Dur(f.mediaTime)
		sw.Dur(f.arrived)
		sw.Bool(f.video)
		sw.Bool(f.keyframe)
		sw.F64(f.encRate)
		sw.U32(f.index)
		sw.Int(f.size)
	}
	sw.U32(uint32(len(p.partials)))
	for _, pa := range p.partials {
		sw.U64(pa.key)
		sw.Dur(pa.mediaTime)
		sw.Bool(pa.video)
		sw.Bool(pa.keyframe)
		sw.F64(pa.encRate)
		sw.U32(pa.index)
		sw.U8(pa.count)
		sw.U32(uint32(pa.got))
		sw.U8(pa.need)
		sw.Int(pa.size)
	}

	sw.U32(p.nextVideoIdx)
	sw.Bool(p.videoIdxSeen)
	sw.Bool(p.chainBroken)
	sw.Dur(p.bufEnd)
	sw.Bool(p.eos)
	sw.Dur(p.firstRecvAt)
	sw.Dur(p.lastRecvAt)
	sw.Int(p.bytesRecv)

	// haveSeq values are only ever membership-tested after insertion, so the
	// window persists as its sorted key set and restores with nil values.
	sw.U32(p.highestSeq)
	seqs := make([]uint32, 0, len(p.haveSeq))
	for s := range p.haveSeq {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	sw.U32(uint32(len(seqs)))
	for _, s := range seqs {
		sw.U32(s)
	}
	sw.U32(p.seqFloor)
	sw.U32(uint32(len(p.lowSeqs)))
	for _, s := range p.lowSeqs {
		sw.U32(s)
	}
	sw.Int(p.recvSeqCount)
	sw.Int(p.recovered)
	sw.U32(p.lastRepHighest)
	sw.Int(p.lastRepLost)

	nacks := make([]uint32, 0, len(p.nackOutstanding))
	for s := range p.nackOutstanding {
		nacks = append(nacks, s)
	}
	sort.Slice(nacks, func(i, j int) bool { return nacks[i] < nacks[j] })
	sw.U32(uint32(len(nacks)))
	for _, s := range nacks {
		sw.U32(s)
		sw.Int(p.nackOutstanding[s])
	}

	sw.U32(uint32(len(p.playTimes)))
	for _, t := range p.playTimes {
		sw.Dur(t)
	}
	sw.Int(p.intBytes)
	sw.Int(p.lastTickFrames)
	sw.Int(p.decim)
	sw.Int(p.decimCount)
	sw.F64(p.curEncRate)
	sw.Dur(p.buffStart)
	sw.Dur(p.rebufStart)
	sw.Bool(p.doneCalled)
	sw.Dur(p.idleDeadline)

	persistStats(sw, &p.stats)
	return sw.Err()
}

// RestoreState rebuilds a checkpointed session onto p, which must be fresh
// from New or Reset with the owner-supplied environment (Clock, Net, CPU,
// Rand, Arena, OnDone, DisableScalableVideo); the snapshot supplies the
// session-scoped Config scalars and all mutable state. Connections restore
// through the host's stack and re-register in tbl for segment references.
func (p *Player) RestoreState(sr *snap.Reader, owner Config, stack *transport.Stack, app transport.AppCodec, tbl *transport.ConnTable) error {
	cfg := owner
	sr.Tag("player")
	cfg.URL = sr.Str()
	cfg.ControlAddr = sr.Str()
	cfg.ServerUDPAddr = sr.Str()
	cfg.Protocol = transport.Protocol(sr.U8())
	cfg.MaxBandwidthKbps = sr.F64()
	cfg.PlayFor = sr.Dur()
	cfg.Preroll = sr.Dur()
	if sr.Err() != nil {
		return sr.Err()
	}
	p.init(cfg)

	if sr.Bool() {
		c, err := transport.RestoreConn(sr, stack, app, tbl)
		if err != nil {
			return err
		}
		p.ctl = c
		c.SetReceiver(p.onControl)
	}
	if sr.Bool() {
		c, err := transport.RestoreConn(sr, stack, app, tbl)
		if err != nil {
			return err
		}
		p.data = c
		c.SetReceiver(p.onData)
	}
	p.dataIsMe = sr.Bool()

	p.sessID = sr.Str()
	p.desc = session.RestoreClipDesc(sr)
	p.cseq = sr.Int()
	for n := int(sr.U32()); n > 0 && sr.Err() == nil; n-- {
		c := sr.Int()
		p.pending[c] = sr.U8()
	}

	p.state = sr.Str()
	p.playStart = sr.Dur()
	p.mediaBase = sr.Dur()
	p.playPos = sr.Dur()
	p.endAt = vclock.RestoreHandle(sr, p.cfg.Clock, (*timeUpArm)(p))
	p.frameTimer = vclock.RestoreHandle(sr, p.cfg.Clock, (*frameArm)(p))
	p.graceTimer = vclock.RestoreHandle(sr, p.cfg.Clock, (*underrunArm)(p))
	p.idle = vclock.RestoreHandle(sr, p.cfg.Clock, (*idleArm)(p))
	p.reportTick = vclock.RestoreHandle(sr, p.cfg.Clock, (*reportArm)(p))
	p.nackTimer = vclock.RestoreHandle(sr, p.cfg.Clock, (*nackArm)(p))
	p.epoch = sr.U32()

	for n := int(sr.U32()); n > 0 && sr.Err() == nil; n-- {
		p.frames = append(p.frames, bufFrame{
			mediaTime: sr.Dur(),
			arrived:   sr.Dur(),
			video:     sr.Bool(),
			keyframe:  sr.Bool(),
			encRate:   sr.F64(),
			index:     sr.U32(),
			size:      sr.Int(),
		})
	}
	for n := int(sr.U32()); n > 0 && sr.Err() == nil; n-- {
		p.partials = append(p.partials, partial{
			key:       sr.U64(),
			mediaTime: sr.Dur(),
			video:     sr.Bool(),
			keyframe:  sr.Bool(),
			encRate:   sr.F64(),
			index:     sr.U32(),
			count:     sr.U8(),
			got:       uint16(sr.U32()),
			need:      sr.U8(),
			size:      sr.Int(),
		})
	}

	p.nextVideoIdx = sr.U32()
	p.videoIdxSeen = sr.Bool()
	p.chainBroken = sr.Bool()
	p.bufEnd = sr.Dur()
	p.eos = sr.Bool()
	p.firstRecvAt = sr.Dur()
	p.lastRecvAt = sr.Dur()
	p.bytesRecv = sr.Int()

	p.highestSeq = sr.U32()
	for n := int(sr.U32()); n > 0 && sr.Err() == nil; n-- {
		p.haveSeq[sr.U32()] = nil
	}
	p.seqFloor = sr.U32()
	for n := int(sr.U32()); n > 0 && sr.Err() == nil; n-- {
		p.lowSeqs = append(p.lowSeqs, sr.U32())
	}
	p.recvSeqCount = sr.Int()
	p.recovered = sr.Int()
	p.lastRepHighest = sr.U32()
	p.lastRepLost = sr.Int()

	for n := int(sr.U32()); n > 0 && sr.Err() == nil; n-- {
		s := sr.U32()
		p.nackOutstanding[s] = sr.Int()
	}

	for n := int(sr.U32()); n > 0 && sr.Err() == nil; n-- {
		p.playTimes = append(p.playTimes, sr.Dur())
	}
	p.intBytes = sr.Int()
	p.lastTickFrames = sr.Int()
	p.decim = sr.Int()
	p.decimCount = sr.Int()
	p.curEncRate = sr.F64()
	p.buffStart = sr.Dur()
	p.rebufStart = sr.Dur()
	p.doneCalled = sr.Bool()
	p.idleDeadline = sr.Dur()

	restoreStats(sr, &p.stats)
	return sr.Err()
}

func persistStats(sw *snap.Writer, s *Stats) {
	sw.Tag("pstat")
	sw.Str(s.URL)
	sw.Str(s.Server)
	sw.U8(uint8(s.Protocol))
	sw.F64(s.EncodedKbps)
	sw.F64(s.EncodedFPS)
	sw.F64(s.MeasuredKbps)
	sw.F64(s.MeasuredFPS)
	sw.F64(s.JitterMs)
	sw.Int(s.FramesPlayed)
	sw.Int(s.FramesDroppedLate)
	sw.Int(s.FramesDroppedCPU)
	sw.Int(s.FramesLost)
	sw.Int(s.FramesCorrupted)
	sw.Int(s.Rebuffers)
	sw.Dur(s.RebufferTime)
	sw.Dur(s.BufferingTime)
	sw.F64(s.CPUUtilization)
	sw.Int(s.Switches)
	sw.Bool(s.Unavailable)
	sw.Bool(s.Failed)
	sw.Str(s.FailReason)
	sw.Dur(s.PlayDuration)
	sw.U32(uint32(len(s.PlayoutGaps)))
	for _, g := range s.PlayoutGaps {
		sw.F64(g)
	}
	sw.U32(uint32(len(s.Timeline)))
	for _, tp := range s.Timeline {
		sw.Dur(tp.T)
		sw.F64(tp.Kbps)
		sw.F64(tp.FPS)
	}
}

func restoreStats(sr *snap.Reader, s *Stats) {
	sr.Tag("pstat")
	s.URL = sr.Str()
	s.Server = sr.Str()
	s.Protocol = transport.Protocol(sr.U8())
	s.EncodedKbps = sr.F64()
	s.EncodedFPS = sr.F64()
	s.MeasuredKbps = sr.F64()
	s.MeasuredFPS = sr.F64()
	s.JitterMs = sr.F64()
	s.FramesPlayed = sr.Int()
	s.FramesDroppedLate = sr.Int()
	s.FramesDroppedCPU = sr.Int()
	s.FramesLost = sr.Int()
	s.FramesCorrupted = sr.Int()
	s.Rebuffers = sr.Int()
	s.RebufferTime = sr.Dur()
	s.BufferingTime = sr.Dur()
	s.CPUUtilization = sr.F64()
	s.Switches = sr.Int()
	s.Unavailable = sr.Bool()
	s.Failed = sr.Bool()
	s.FailReason = sr.Str()
	s.PlayDuration = sr.Dur()
	for n := int(sr.U32()); n > 0 && sr.Err() == nil; n-- {
		s.PlayoutGaps = append(s.PlayoutGaps, sr.F64())
	}
	for n := int(sr.U32()); n > 0 && sr.Err() == nil; n-- {
		s.Timeline = append(s.Timeline, TimePoint{T: sr.Dur(), Kbps: sr.F64(), FPS: sr.F64()})
	}
}
