package player

import "fmt"

// CPUProfile models the end-user PC classes of Figure 19. Power 1.0 means
// the machine decodes 320x240 video at 30 fps with headroom; the study's
// oldest machines fall well below that.
type CPUProfile struct {
	// Name is the label used in Figure 19.
	Name string
	// Power is relative decode capability (1.0 = 320x240 @ 30 fps).
	Power float64
	// MemMB is installed RAM; low memory adds paging noise to decode times.
	MemMB int
}

// The PC classes observed in the study (Figure 19), with decode power
// calibrated so that only the oldest generation is the bottleneck —
// the paper's finding.
var (
	PCPentiumMMX  = CPUProfile{Name: "Intel Pentium MMX / 24MB", Power: 0.18, MemMB: 24}
	PCPentiumII32 = CPUProfile{Name: "Pentium II / 32MB", Power: 0.55, MemMB: 32}
	PCCeleron     = CPUProfile{Name: "Intel Celeron / 64-96MB", Power: 0.95, MemMB: 80}
	PCPentiumII   = CPUProfile{Name: "Pentium II / 128-256MB", Power: 1.1, MemMB: 192}
	PCPentiumIII  = CPUProfile{Name: "Pentium III / 256-512MB", Power: 1.9, MemMB: 384}
	PCAMD         = CPUProfile{Name: "AMD / 320-512MB", Power: 1.7, MemMB: 448}
)

// PCClasses lists the study's classes in Figure 19 order.
func PCClasses() []CPUProfile {
	return []CPUProfile{PCPentiumII32, PCPentiumII, PCPentiumIII, PCCeleron, PCPentiumMMX, PCAMD}
}

// referencePixelRate is the pixel throughput behind Power 1.0.
const referencePixelRate = 320.0 * 240.0 * 30.0

// maxFPS returns the frame rate the profile can decode at the given frame
// dimensions.
func (p CPUProfile) maxFPS(w, h int) float64 {
	if w <= 0 || h <= 0 {
		return 1e9
	}
	return p.Power * referencePixelRate / float64(w*h)
}

// utilization returns the fraction of the machine consumed decoding fps
// frames of w x h video (may exceed 1 when overloaded).
func (p CPUProfile) utilization(w, h int, fps float64) float64 {
	cap := p.maxFPS(w, h)
	if cap <= 0 {
		return 1
	}
	return fps / cap
}

// String implements fmt.Stringer.
func (p CPUProfile) String() string { return fmt.Sprintf("%s (x%.2f)", p.Name, p.Power) }
