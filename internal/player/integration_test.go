package player_test

import (
	"math/rand"
	"testing"
	"time"

	"realtracer/internal/media"
	"realtracer/internal/netsim"
	"realtracer/internal/player"
	"realtracer/internal/server"
	"realtracer/internal/session"
	"realtracer/internal/simclock"
	"realtracer/internal/transport"
	"realtracer/internal/vclock"
)

// rig wires one server and one client host over the simulator.
type rig struct {
	clock *simclock.Clock
	net   *netsim.Network
	srv   *server.Server
	cNet  session.SimNet
}

func newRig(t *testing.T, clientAccess netsim.AccessClass, route netsim.Route) *rig {
	t.Helper()
	clock := simclock.New()
	n := netsim.New(clock, netsim.StaticRoute(route), 42)
	n.AddHost(netsim.HostConfig{Name: "srv", Access: netsim.DefaultAccessProfile(netsim.AccessServer)})
	n.AddHost(netsim.HostConfig{Name: "cli", Access: netsim.DefaultAccessProfile(clientAccess)})

	lib := media.NewLibrary([]*media.Clip{
		media.GenerateClip("rtsp://srv/clip000.rm", "test", media.ContentNews, 5*time.Minute, 20, 350, 7),
	})
	srv := server.New(server.Config{
		Clock:      vclock.Sim{C: clock},
		Net:        session.SimNet{Stack: transport.NewStack(n, "srv")},
		Library:    lib,
		Rand:       rand.New(rand.NewSource(1)),
		SureStream: true,
		FEC:        true,
	})
	if err := srv.Start(); err != nil {
		t.Fatalf("server start: %v", err)
	}
	return &rig{
		clock: clock,
		net:   n,
		srv:   srv,
		cNet:  session.SimNet{Stack: transport.NewStack(n, "cli")},
	}
}

func (r *rig) play(t *testing.T, proto transport.Protocol, maxKbps float64) (*player.Stats, error) {
	t.Helper()
	var got *player.Stats
	var gotErr error
	p := player.New(player.Config{
		Clock:            vclock.Sim{C: r.clock},
		Net:              r.cNet,
		ControlAddr:      "srv:554",
		URL:              "rtsp://srv/clip000.rm",
		Protocol:         proto,
		MaxBandwidthKbps: maxKbps,
		CPU:              player.PCPentiumIII,
		OnDone: func(st *player.Stats, err error) {
			got = st
			gotErr = err
		},
	})
	p.Start()
	r.clock.RunUntil(r.clock.Now() + 5*time.Minute)
	if got == nil {
		t.Fatalf("player never finished (state stuck); events fired: %d", r.clock.Fired())
	}
	return got, gotErr
}

func TestEndToEndUDPBroadband(t *testing.T) {
	r := newRig(t, netsim.AccessDSLCable, netsim.Route{
		OneWayDelay: 40 * time.Millisecond,
		Jitter:      5 * time.Millisecond,
		LossRate:    0.005,
	})
	st, err := r.play(t, transport.UDP, 300)
	if err != nil {
		t.Fatalf("session error: %v (stats %+v)", err, st)
	}
	if st.FramesPlayed < 100 {
		t.Errorf("too few frames played: %d (stats %+v)", st.FramesPlayed, st)
	}
	if st.MeasuredFPS < 5 {
		t.Errorf("broadband UDP should exceed 5 fps, got %.2f", st.MeasuredFPS)
	}
	if st.MeasuredKbps < 50 {
		t.Errorf("broadband UDP should see >50 Kbps, got %.1f", st.MeasuredKbps)
	}
	if st.EncodedKbps == 0 || st.EncodedFPS == 0 {
		t.Errorf("encoded parameters not captured: %+v", st)
	}
}

func TestEndToEndTCPBroadband(t *testing.T) {
	r := newRig(t, netsim.AccessDSLCable, netsim.Route{
		OneWayDelay: 40 * time.Millisecond,
		Jitter:      5 * time.Millisecond,
		LossRate:    0.005,
	})
	st, err := r.play(t, transport.TCP, 300)
	if err != nil {
		t.Fatalf("session error: %v (stats %+v)", err, st)
	}
	if st.FramesPlayed < 100 {
		t.Errorf("too few frames played: %d (stats %+v)", st.FramesPlayed, st)
	}
	if st.Protocol != transport.TCP {
		t.Errorf("protocol mislabeled: %v", st.Protocol)
	}
}

func TestEndToEndModem(t *testing.T) {
	r := newRig(t, netsim.AccessModem, netsim.Route{
		OneWayDelay: 60 * time.Millisecond,
		Jitter:      10 * time.Millisecond,
		LossRate:    0.01,
	})
	st, err := r.play(t, transport.UDP, 34)
	if err != nil {
		t.Fatalf("session error: %v (stats %+v)", err, st)
	}
	if st.MeasuredKbps > 60 {
		t.Errorf("a 56k modem cannot receive %.1f Kbps", st.MeasuredKbps)
	}
	if st.EncodedKbps > 34 {
		t.Errorf("server ignored client bandwidth cap: encoded %.0f Kbps", st.EncodedKbps)
	}
}
