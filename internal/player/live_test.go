package player_test

import (
	"math/rand"
	"testing"
	"time"

	"realtracer/internal/media"
	"realtracer/internal/netsim"
	"realtracer/internal/player"
	"realtracer/internal/server"
	"realtracer/internal/session"
	"realtracer/internal/simclock"
	"realtracer/internal/transport"
	"realtracer/internal/vclock"
)

// playClip runs one clip (live or pre-recorded) through a fresh rig.
func playClip(t *testing.T, clip *media.Clip, route netsim.Route) *player.Stats {
	t.Helper()
	clock := simclock.New()
	n := netsim.New(clock, netsim.StaticRoute(route), 13)
	n.AddHost(netsim.HostConfig{Name: "srv", Access: netsim.DefaultAccessProfile(netsim.AccessServer)})
	n.AddHost(netsim.HostConfig{Name: "cli", Access: netsim.DefaultAccessProfile(netsim.AccessDSLCable)})
	srv := server.New(server.Config{
		Clock: vclock.Sim{C: clock}, Net: session.SimNet{Stack: transport.NewStack(n, "srv")},
		Library: media.NewLibrary([]*media.Clip{clip}),
		Rand:    rand.New(rand.NewSource(1)), SureStream: true, FEC: true,
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	var got *player.Stats
	p := player.New(player.Config{
		Clock: vclock.Sim{C: clock}, Net: session.SimNet{Stack: transport.NewStack(n, "cli")},
		ControlAddr: "srv:554", URL: clip.URL, Protocol: transport.UDP,
		MaxBandwidthKbps: 300, PlayFor: time.Minute,
		Rand:   rand.New(rand.NewSource(2)),
		OnDone: func(st *player.Stats, err error) { got = st },
	})
	p.Start()
	clock.RunUntil(5 * time.Minute)
	if got == nil {
		t.Fatal("session never finished")
	}
	return got
}

// TestLiveContentDiffersFromPrerecorded reproduces the future-work contrast
// the paper cites from [LH01]: live feeds cannot be buffered ahead, so the
// same network conditions yield thinner buffers and choppier playout than
// pre-recorded content.
func TestLiveContentDiffersFromPrerecorded(t *testing.T) {
	route := netsim.Route{
		OneWayDelay:    50 * time.Millisecond,
		Jitter:         15 * time.Millisecond,
		LossRate:       0.01,
		CapacityKbps:   600,
		CongestionMean: 0.3,
		CongestionVar:  0.15,
	}
	pre := media.GenerateClip("rtsp://srv/clip000.rm", "vod", media.ContentNews, 4*time.Minute, 20, 225, 9)
	liveClip := media.GenerateLiveClip("rtsp://srv/clip000.rm", "live", media.ContentNews, 4*time.Minute, 20, 225, 9)

	vod := playClip(t, pre, route)
	live := playClip(t, liveClip, route)

	if vod.FramesPlayed == 0 || live.FramesPlayed == 0 {
		t.Fatalf("sessions empty: vod=%d live=%d", vod.FramesPlayed, live.FramesPlayed)
	}
	// The live session runs on a near-empty buffer: under the same
	// congested path it must be at least as disrupted as VOD, and
	// measurably so on at least one axis.
	if live.JitterMs < vod.JitterMs && live.Rebuffers <= vod.Rebuffers {
		t.Fatalf("live (jitter %.0f, rebuf %d) should not be smoother than VOD (jitter %.0f, rebuf %d)",
			live.JitterMs, live.Rebuffers, vod.JitterMs, vod.Rebuffers)
	}
}

// TestLivePacingNeverRunsAhead checks the structural property: a live
// session's data cannot arrive ahead of realtime (beyond the encoder's
// capture buffer), while VOD bursts well ahead.
func TestLivePacingNeverRunsAhead(t *testing.T) {
	route := netsim.Route{OneWayDelay: 20 * time.Millisecond}
	liveClip := media.GenerateLiveClip("rtsp://srv/clip000.rm", "live", media.ContentSports, 3*time.Minute, 20, 225, 9)
	st := playClip(t, liveClip, route)
	// With no ahead-buffering, initial buffering must take roughly the
	// preroll duration at 1x realtime (plus handshakes) — there is no way
	// to fill an 8 s buffer in 3 s.
	if st.BufferingTime < player.DefaultPreroll-2*time.Second {
		t.Fatalf("live buffering %.1fs implies ahead-of-realtime delivery", st.BufferingTime.Seconds())
	}
	pre := media.GenerateClip("rtsp://srv/clip000.rm", "vod", media.ContentSports, 3*time.Minute, 20, 225, 9)
	vod := playClip(t, pre, route)
	if vod.BufferingTime >= st.BufferingTime {
		t.Fatalf("VOD buffering %.1fs should beat live %.1fs (server bursts ahead)",
			vod.BufferingTime.Seconds(), st.BufferingTime.Seconds())
	}
}

func TestLiveFlagAdvertisedInDescribe(t *testing.T) {
	liveClip := media.GenerateLiveClip("u", "live", media.ContentNews, time.Minute, 20, 80, 1)
	d := session.DescFromClip(liveClip)
	got, err := session.ParseClipDesc(d.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Live {
		t.Fatal("live flag lost in DESCRIBE round trip")
	}
}
