package player_test

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"realtracer/internal/media"
	"realtracer/internal/player"
	"realtracer/internal/server"
	"realtracer/internal/session"
	"realtracer/internal/transport"
	"realtracer/internal/vclock"
)

// ephemeralPorts reserves n distinct ports by binding 127.0.0.1:0 (the OS
// hands out free ephemeral ports), then releases them for the server to
// rebind. All listeners stay open until every port is drawn so the kernel
// cannot hand the same port out twice.
func ephemeralPorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, 0, n)
	listeners := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		listeners = append(listeners, ln)
		ports = append(ports, ln.Addr().(*net.TCPAddr).Port)
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return ports
}

// sessionOutcome is one live session's result, delivered off the loop.
type sessionOutcome struct {
	proto transport.Protocol
	stats *player.Stats
	err   error
}

// TestLiveSocketsEndToEnd is the promoted examples/livesockets: a complete
// server/player exchange over real OS sockets on loopback — real RTSP text
// on a kernel TCP control connection, real binary RDT data over kernel UDP
// and then kernel TCP — using ephemeral ports so it runs anywhere,
// including CI under -race. The engines themselves stay single-threaded on
// the event loop; this test is exactly the concurrency surface the race
// detector should see.
func TestLiveSocketsEndToEnd(t *testing.T) {
	const host = "127.0.0.1"
	ports := ephemeralPorts(t, 3)
	controlPort, dataPort, udpPort := ports[0], ports[1], ports[2]

	loop := vclock.NewLoop()
	clock := vclock.NewReal(loop)
	netw := session.RealNet{Host: host, Loop: loop}

	lib := media.GenerateLibrary(host, 2, 5)
	srv := server.New(server.Config{
		Clock:       clock,
		Net:         netw,
		Library:     lib,
		Rand:        rand.New(rand.NewSource(1)),
		SureStream:  true,
		FEC:         true,
		ControlPort: controlPort,
		DataTCPPort: dataPort,
		DataUDPPort: udpPort,
	})

	var mu sync.Mutex
	var outcomes []sessionOutcome
	finish := func(o sessionOutcome) bool {
		mu.Lock()
		defer mu.Unlock()
		outcomes = append(outcomes, o)
		return len(outcomes) == 2
	}

	var startErr error
	play := func(i int, proto transport.Protocol) {
		p := player.New(player.Config{
			Clock:            clock,
			Net:              netw,
			ControlAddr:      fmt.Sprintf("%s:%d", host, controlPort),
			ServerUDPAddr:    fmt.Sprintf("%s:%d", host, udpPort),
			URL:              lib.Clips[i].URL,
			Protocol:         proto,
			MaxBandwidthKbps: 350,
			PlayFor:          3 * time.Second,
			Preroll:          time.Second,
			Rand:             rand.New(rand.NewSource(2)),
			OnDone: func(st *player.Stats, err error) {
				if finish(sessionOutcome{proto: proto, stats: st, err: err}) {
					// OnDone fires as soon as playout ends; give the final
					// TEARDOWN a beat to cross the kernel before shutdown.
					clock.After(500*time.Millisecond, func() {
						srv.Stop()
						loop.Close()
					})
				}
			},
		})
		p.Start()
	}

	// Both sessions run concurrently: a UDP player and a TCP player against
	// the same live server, sharing its control and data ports.
	loop.Post(func() {
		if err := srv.Start(); err != nil {
			startErr = err
			loop.Close()
			return
		}
		play(0, transport.UDP)
		play(1, transport.TCP)
	})

	// Watchdog: the loop must drain on its own well before this fires.
	watchdog := time.AfterFunc(60*time.Second, func() {
		mu.Lock()
		defer mu.Unlock()
		t.Errorf("live sessions stuck: %d of 2 finished", len(outcomes))
		srv.Stop()
		loop.Close()
	})
	defer watchdog.Stop()

	loop.Run() // blocks until both sessions finish (or the watchdog fires)

	if startErr != nil {
		t.Fatalf("server start on ephemeral ports: %v", startErr)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(outcomes) != 2 {
		t.Fatalf("finished %d of 2 live sessions", len(outcomes))
	}
	seen := map[transport.Protocol]bool{}
	for _, o := range outcomes {
		if o.err != nil {
			t.Fatalf("%v session failed: %v", o.proto, o.err)
		}
		st := o.stats
		if st == nil || st.FramesPlayed == 0 {
			t.Fatalf("%v session played no frames: %+v", o.proto, st)
		}
		if st.MeasuredKbps <= 0 || st.MeasuredFPS <= 0 {
			t.Fatalf("%v session measured nothing: %.1f Kbps %.1f fps", o.proto, st.MeasuredKbps, st.MeasuredFPS)
		}
		if st.Protocol != o.proto {
			t.Fatalf("negotiated %v, asked for %v", st.Protocol, o.proto)
		}
		seen[o.proto] = true
	}
	if !seen[transport.UDP] || !seen[transport.TCP] {
		t.Fatalf("expected one UDP and one TCP session, got %v", outcomes)
	}
	describes, _, played, torndown := srv.Counters()
	if describes < 2 || played < 2 || torndown < 2 {
		t.Fatalf("server counters: describes=%d played=%d torndown=%d", describes, played, torndown)
	}
}
