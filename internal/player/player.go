// Package player implements the RealPlayer/RealTracer client engine: it
// negotiates a session over RTSP, receives the RDT data stream over TCP or
// UDP, buffers, plays out frames on schedule, and records the per-clip
// statistics the study analyzes — encoded and measured bandwidth and frame
// rate, inter-frame jitter (standard deviation of playout gaps), frames
// dropped, rebuffering, transport protocol and CPU utilization.
//
// Buffering follows the paper's description (Section II.B): data buffers
// before playout begins (Figure 1 shows ~13 s); if the buffer empties
// mid-clip the player halts for up to 20 s while it refills.
package player

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"realtracer/internal/rdt"
	"realtracer/internal/rtsp"
	"realtracer/internal/session"
	"realtracer/internal/stats"
	"realtracer/internal/transport"
	"realtracer/internal/vclock"
)

// Defaults mirroring RealPlayer 8 behaviour.
const (
	// DefaultPreroll is the media depth buffered before playout starts
	// (Figure 1 shows roughly this much wall time spent filling).
	DefaultPreroll = 8 * time.Second
	// rebufferTarget is the refill depth after a mid-clip stall.
	rebufferTarget = 3 * time.Second
	// maxRebuffer caps a stall: "RealPlayer halts the clip playback for up
	// to 20 seconds while the buffer is filled again."
	maxRebuffer = 20 * time.Second
	// DefaultPlayFor is RealTracer's default per-clip playout (Section
	// III.A: "play the clip for 1 minute").
	DefaultPlayFor = time.Minute
	// reportInterval paces receiver reports and buffer-state updates.
	reportInterval = time.Second
	// idleTimeout aborts a session that has gone silent.
	idleTimeout = 30 * time.Second
	// lateWindow is how far past its deadline a frame may arrive and still
	// be played (late, at arrival — visible as jitter) rather than dropped.
	lateWindow = 400 * time.Millisecond
	// underrunGrace is how long the player waits on an empty buffer for the
	// next frame before declaring an underrun and halting to rebuffer.
	underrunGrace = 1200 * time.Millisecond
	// recoveryLag is the minimum age a frame must reach before display, so
	// FEC/NACK recoveries of slightly-older packets can land before their
	// playout slots even when the buffer is running dry.
	recoveryLag = 500 * time.Millisecond
)

// Config parameterizes one clip playout.
type Config struct {
	Clock vclock.Clock
	Net   session.Net
	// ControlAddr is the server's RTSP endpoint ("host:554").
	ControlAddr string
	// ServerUDPAddr overrides the server's UDP data endpoint; by default it
	// is the control host at the well-known data port.
	ServerUDPAddr string
	// URL is the clip to request.
	URL string
	// Protocol is the transport requested for the data connection.
	Protocol transport.Protocol
	// MaxBandwidthKbps is the player's configured maximum bit rate (the
	// RealPlayer preference the server's stream selection honours).
	MaxBandwidthKbps float64
	// PlayFor bounds wall-clock playout; DefaultPlayFor when zero.
	PlayFor time.Duration
	// Preroll overrides the initial buffer depth; DefaultPreroll when zero.
	Preroll time.Duration
	// CPU is the end-host machine class.
	CPU CPUProfile
	// DisableScalableVideo turns off Scalable Video Technology's controlled
	// frame-rate reduction: an overloaded decoder then drops frames
	// erratically instead (ablation knob; Section II.C describes the
	// feature).
	DisableScalableVideo bool
	// Rand drives decode-time noise; a default source is used when nil.
	Rand *rand.Rand
	// Arena backs the packets the player sends and the Data cells FEC
	// reconstruction mints. When nil the player owns one internally. A
	// caller that pools players across clips passes the arena explicitly
	// and resets it only when no packet from a previous clip can still be
	// referenced (see rdt.Arena).
	Arena *rdt.Arena
	// OnDone receives the final statistics (always non-nil) and an error
	// for sessions that failed outright. The *Stats is owned by the player
	// and reused on Reset: consumers must copy what they keep.
	OnDone func(*Stats, error)
}

// Stats is the per-clip record RealTracer reported back to WPI.
type Stats struct {
	URL      string
	Server   string
	Protocol transport.Protocol

	// Encoded values of the stream initially selected by the server.
	EncodedKbps float64
	EncodedFPS  float64

	// Measured performance.
	MeasuredKbps float64 // bytes received over the receive interval
	MeasuredFPS  float64 // video frames played per second of playout time
	JitterMs     float64 // stddev of inter-frame playout gaps (ms)

	FramesPlayed      int
	FramesDroppedLate int // arrived after their deadline
	FramesDroppedCPU  int // shed by the decoder (scalable video)
	FramesLost        int // packets never arrived (post-FEC)
	FramesCorrupted   int // undisplayable: GOP decode chain broken by loss

	Rebuffers     int
	RebufferTime  time.Duration
	BufferingTime time.Duration // initial buffering (Figure 1's flat region)

	CPUUtilization float64 // 0-1 (1 = saturated)
	Switches       int     // SureStream encoding changes observed

	Unavailable bool   // clip was temporarily unavailable (Figure 10)
	Failed      bool   // session error other than unavailability
	FailReason  string // diagnostic detail for Failed sessions

	PlayDuration time.Duration // wall time spent in playing/rebuffering

	// PlayoutGaps lists the inter-frame playout gaps exceeding 500 ms, in
	// milliseconds — diagnostic detail behind the jitter number.
	PlayoutGaps []float64

	// Timeline holds one sample per second: the Figure-1 view of a session
	// (current bandwidth and frame rate against the encoded values).
	Timeline []TimePoint
}

// TimePoint is one per-second sample of a session.
type TimePoint struct {
	T    time.Duration // wall time since session start
	Kbps float64       // bandwidth received during the second
	FPS  float64       // video frames played during the second
}

// Player runs one clip session. Create with New, start with Start; the
// OnDone callback fires exactly once.
type Player struct {
	cfg Config
	st  *Stats

	ctl      transport.Conn
	data     transport.Conn
	dataIsMe bool // data conn owned by player (needs Close)
	sessID   string
	desc     session.ClipDesc
	cseq     int
	// pending maps an outstanding request's CSeq to the kind of continuation
	// its response runs. Kinds instead of callbacks: the handshake state
	// machine is then plain data, which a world checkpoint can serialize.
	pending map[int]uint8

	state      string        // "setup", "buffering", "playing", "rebuffering", "done"
	playStart  time.Duration // wall time playout began
	mediaBase  time.Duration // playout offset: wall = mediaBase + mediaTime
	playPos    time.Duration // media position played so far
	endAt      vclock.Handle
	frameTimer vclock.Handle
	graceTimer vclock.Handle
	idle       vclock.Handle
	reportTick vclock.Handle

	// epoch guards the dial callbacks: Reset and Abort bump it, so a
	// handshake completing after the player moved on to another session
	// cannot install its connection into the recycled player.
	epoch uint32

	// arena backs sent packets (reports, buffer state, NACKs) and FEC-
	// reconstructed Data cells. ownArena is the lazily-created fallback
	// when the Config does not supply one.
	arena    *rdt.Arena
	ownArena *rdt.Arena

	// Receive path. partials is a small linear-scan set: at most a handful
	// of frames are mid-assembly at once (streams interleave, fragments of
	// one frame arrive back to back), so a slice beats a map and its per-
	// entry allocations.
	frames   frameHeap // assembled, not yet played
	partials []partial

	// GOP decode-chain state (see trackDecodeChain).
	nextVideoIdx uint32
	videoIdxSeen bool
	chainBroken  bool
	bufEnd       time.Duration // highest buffered media time
	eos          bool
	firstRecvAt  time.Duration
	lastRecvAt   time.Duration
	bytesRecv    int

	// Video-stream loss tracking (UDP).
	highestSeq uint32
	haveSeq    map[uint32]*rdt.Data // recent video packets for FEC
	// seqFloor is the lowest seq possibly still in haveSeq: expiry sweeps
	// forward from it (amortized O(1) per packet) instead of scanning the
	// whole window per packet. lowSeqs records the rare re-insertions below
	// the floor (late retransmissions) so they expire identically.
	seqFloor     uint32
	lowSeqs      []uint32
	recvSeqCount int
	recovered    int
	// Interval snapshots so reports carry per-interval loss, not cumulative
	// (cumulative loss would pin the rate controller to an early disaster).
	lastRepHighest uint32
	lastRepLost    int

	// NACK state: outstanding sequence gaps and how many times each has
	// been requested (up to nackMaxTries, like RDT's bounded NAKs).
	nackOutstanding map[uint32]int
	nackTimer       vclock.Handle
	nackScratch     []uint32 // reused per-flush missing list

	// Playout record.
	playTimes []time.Duration // wall timestamps of played video frames

	// Interval measurements for reports.
	intBytes       int
	lastTickFrames int

	// CPU decimation.
	decim      int
	decimCount int

	// Current encoding as observed from data packets.
	curEncRate float64

	buffStart  time.Duration
	rebufStart time.Duration
	doneCalled bool

	// idleDeadline is the lazy idle cutoff: instead of re-arming a fresh
	// timer on every received packet, activity just advances the deadline
	// and one standing timer re-checks it when it expires.
	idleDeadline time.Duration

	// stats is the backing storage st points at, reused across Reset so a
	// pooled player's per-clip record costs no allocation.
	stats Stats

	// gapScratch is reused by the jitter computation.
	gapScratch []float64
}

// The six timer handlers are the Player itself under distinct named types:
// converting *Player to e.g. *idleArm is free and pointer-shaped, so arming
// a timer boxes no value and allocates nothing — the PR 4 EventHandler
// pattern, extended through vclock so the same code runs live.
type (
	idleArm     Player
	nackArm     Player
	reportArm   Player
	frameArm    Player
	underrunArm Player
	timeUpArm   Player
)

func (x *idleArm) Fire(time.Duration)      { (*Player)(x).idleCheck() }
func (x *nackArm) Fire(time.Duration)      { (*Player)(x).flushNacks() }
func (x *reportArm) Fire(time.Duration)    { (*Player)(x).sendReport() }
func (x *frameArm) Fire(now time.Duration) { (*Player)(x).playFrame(now) }
func (x *underrunArm) Fire(time.Duration)  { (*Player)(x).underrun() }
func (x *timeUpArm) Fire(time.Duration)    { (*Player)(x).timeUp() }

// New builds a Player; Start launches it.
func New(cfg Config) *Player {
	p := &Player{
		pending:         make(map[int]uint8),
		haveSeq:         make(map[uint32]*rdt.Data),
		nackOutstanding: make(map[uint32]int),
	}
	p.init(cfg)
	return p
}

// Reset rewires a finished player for a new session, reusing every piece of
// grown storage: the maps keep their buckets, the frame heap, partial set,
// playout record and scratch slices keep their backing arrays, and the
// Stats record is cleared in place. Stale state cannot leak across the
// reset: timers are cancelled (and generation checks make any already-
// recycled handle inert), the epoch bump disarms in-flight dial callbacks,
// and every other field is rebuilt through the struct literal, so a
// recycled player can never observe its predecessor's FEC window, NACK
// ledger or decode-chain state. The caller must not Reset a player whose
// session is still live — finish or Abort it first.
func (p *Player) Reset(cfg Config) {
	p.cancelTimers()
	clear(p.pending)
	clear(p.haveSeq)
	clear(p.nackOutstanding)
	gaps := p.stats.PlayoutGaps[:0]
	timeline := p.stats.Timeline[:0]
	*p = Player{
		epoch:           p.epoch + 1,
		pending:         p.pending,
		haveSeq:         p.haveSeq,
		nackOutstanding: p.nackOutstanding,
		partials:        p.partials[:0],
		frames:          p.frames[:0],
		playTimes:       p.playTimes[:0],
		lowSeqs:         p.lowSeqs[:0],
		nackScratch:     p.nackScratch[:0],
		gapScratch:      p.gapScratch[:0],
		ownArena:        p.ownArena,
	}
	p.stats = Stats{PlayoutGaps: gaps, Timeline: timeline}
	p.init(cfg)
}

func (p *Player) init(cfg Config) {
	if cfg.PlayFor <= 0 {
		cfg.PlayFor = DefaultPlayFor
	}
	if cfg.Preroll <= 0 {
		cfg.Preroll = DefaultPreroll
	}
	if cfg.CPU.Power <= 0 {
		cfg.CPU = PCPentiumIII
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.New(rand.NewSource(1))
	}
	p.cfg = cfg
	p.state = "setup"
	p.stats.URL, p.stats.Server, p.stats.Protocol = cfg.URL, cfg.ControlAddr, cfg.Protocol
	p.st = &p.stats
	p.arena = cfg.Arena
	if p.arena == nil {
		if p.ownArena == nil {
			p.ownArena = &rdt.Arena{}
		}
		p.arena = p.ownArena
	}
}

// cancelTimers disarms every pending callback. Generation checks in the
// simulator make this safe against handles that already fired or whose
// events were recycled.
func (p *Player) cancelTimers() {
	p.endAt.Cancel()
	p.frameTimer.Cancel()
	p.graceTimer.Cancel()
	p.idle.Cancel()
	p.reportTick.Cancel()
	p.nackTimer.Cancel()
}

// Abort hard-stops the session without the polite TEARDOWN and without
// invoking OnDone — the open-loop departure path, where the user's host has
// already been torn out of the network (anything the close below tries to
// send is dropped at the source). After Abort the player is quiescent and
// safe to Reset.
func (p *Player) Abort() {
	p.epoch++ // disarm in-flight dial callbacks
	p.cancelTimers()
	if p.doneCalled {
		return
	}
	p.doneCalled = true
	p.state = "done"
	if p.ctl != nil {
		p.ctl.Close()
	}
	if p.data != nil && p.dataIsMe {
		p.data.Close()
	}
}

// Start begins the session: dial control, DESCRIBE, SETUP, PLAY.
func (p *Player) Start() {
	p.touchIdle()
	epoch := p.epoch
	p.cfg.Net.DialTCP(p.cfg.ControlAddr, func(c transport.Conn, err error) {
		if p.epoch != epoch {
			// The player was recycled while the handshake was in flight; the
			// connection (if any) belongs to nobody.
			if c != nil {
				c.Close()
			}
			return
		}
		if err != nil {
			p.finish(fmt.Errorf("player: control dial: %w", err))
			return
		}
		p.ctl = c
		c.SetReceiver(p.onControl)
		p.describe()
	})
}

// Pending-request kinds: which continuation a response dispatches to.
const (
	pendDescribe = 1
	pendSetup    = 2
	pendPlay     = 3
)

func (p *Player) request(m *rtsp.Message, kind uint8) {
	p.cseq++
	m.CSeq = p.cseq
	if kind != 0 {
		p.pending[p.cseq] = kind
	}
	p.ctl.Send(m, m.WireSize())
}

func (p *Player) onControl(payload any, _ int) {
	p.touchIdle()
	resp, ok := payload.(*rtsp.Message)
	if !ok || resp.Request {
		return
	}
	kind, ok := p.pending[resp.CSeq]
	if !ok {
		return
	}
	delete(p.pending, resp.CSeq)
	switch kind {
	case pendDescribe:
		p.onDescribeResp(resp)
	case pendSetup:
		p.onSetupResp(resp)
	case pendPlay:
		p.onPlayResp(resp)
	}
}

func (p *Player) describe() {
	req := rtsp.NewRequest(rtsp.MethodDescribe, p.cfg.URL, 0)
	p.request(req, pendDescribe)
}

func (p *Player) onDescribeResp(resp *rtsp.Message) {
	switch resp.Status {
	case rtsp.StatusOK:
	case rtsp.StatusUnavailable:
		p.st.Unavailable = true
		p.finish(ErrUnavailable)
		return
	default:
		p.finish(fmt.Errorf("player: DESCRIBE failed: %d %s", resp.Status, resp.Reason))
		return
	}
	desc, err := session.ParseClipDesc(resp.Body)
	if err != nil {
		p.finish(err)
		return
	}
	p.desc = desc
	p.setup()
}

// ErrUnavailable marks the clip-temporarily-unavailable outcome of Fig. 10.
var ErrUnavailable = errors.New("player: clip unavailable")

func (p *Player) setup() {
	spec := rtsp.TransportSpec{}
	if p.cfg.Protocol == transport.UDP {
		spec.Protocol = "udp"
		// Bind the data socket first so SETUP can advertise its address.
		// Connected-UDP semantics need the server's data endpoint up front:
		// the well-known port on the control host unless overridden.
		udpAddr := p.cfg.ServerUDPAddr
		if udpAddr == "" {
			udpAddr = fmt.Sprintf("%s:%d", hostOf(p.cfg.ControlAddr), session.DataUDPPort)
		}
		conn, err := p.cfg.Net.DialUDP(udpAddr)
		if err != nil {
			p.finish(err)
			return
		}
		p.data = conn
		p.dataIsMe = true
		conn.SetReceiver(p.onData)
		spec.ClientDataAddr = conn.LocalAddr()
	} else {
		spec.Protocol = "tcp"
	}
	req := rtsp.NewRequest(rtsp.MethodSetup, p.cfg.URL, 0)
	req.Set("Transport", spec.Format())
	req.Set("Bandwidth", fmt.Sprintf("%d", int(p.cfg.MaxBandwidthKbps)))
	p.request(req, pendSetup)
}

func (p *Player) onSetupResp(resp *rtsp.Message) {
	if resp.Status != rtsp.StatusOK {
		p.finish(fmt.Errorf("player: SETUP failed: %d", resp.Status))
		return
	}
	p.sessID = resp.Get("Session")
	srvSpec, err := rtsp.ParseTransport(resp.Get("Transport"))
	if err != nil {
		p.finish(err)
		return
	}
	if p.cfg.Protocol == transport.TCP {
		epoch := p.epoch
		p.cfg.Net.DialTCP(srvSpec.ServerDataAddr, func(c transport.Conn, err error) {
			if p.epoch != epoch {
				if c != nil {
					c.Close()
				}
				return
			}
			if err != nil {
				p.finish(err)
				return
			}
			p.data = c
			p.dataIsMe = true
			c.SetReceiver(p.onData)
			hello := &session.DataHello{SessionID: p.sessID}
			c.Send(hello, len(p.sessID)+1)
			p.play()
		})
		return
	}
	p.play()
}

func (p *Player) play() {
	req := rtsp.NewRequest(rtsp.MethodPlay, p.cfg.URL, 0)
	req.Set("Session", p.sessID)
	p.request(req, pendPlay)
}

func (p *Player) onPlayResp(resp *rtsp.Message) {
	if resp.Status != rtsp.StatusOK {
		p.finish(fmt.Errorf("player: PLAY failed: %d", resp.Status))
		return
	}
	p.state = "buffering"
	p.buffStart = p.cfg.Clock.Now()
	p.endAt = p.cfg.Clock.AfterHandler(p.cfg.PlayFor+p.cfg.Preroll+maxRebuffer, (*timeUpArm)(p))
	p.reportTick = p.cfg.Clock.AfterHandler(reportInterval, (*reportArm)(p))
}

func hostOf(addr string) string {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			return addr[:i]
		}
	}
	return addr
}

// --- receive path ---

type partial struct {
	key       uint64 // stream<<32 | frame index
	mediaTime time.Duration
	video     bool
	keyframe  bool
	encRate   float64
	index     uint32
	count     uint8
	got       uint16 // bitmap over fragments (FragCount <= 16 in practice)
	need      uint8
	size      int
}

type bufFrame struct {
	mediaTime time.Duration
	arrived   time.Duration // wall time the frame finished assembling
	video     bool
	keyframe  bool
	encRate   float64
	index     uint32
	size      int
}

type frameHeap []bufFrame

func (h frameHeap) Len() int           { return len(h) }
func (h frameHeap) Less(i, j int) bool { return h[i].mediaTime < h[j].mediaTime }
func (h frameHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *frameHeap) push(f bufFrame) {
	*h = append(*h, f)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].mediaTime <= (*h)[i].mediaTime {
			break
		}
		h.Swap(i, parent)
		i = parent
	}
}
func (h *frameHeap) pop() bufFrame {
	old := *h
	top := old[0]
	n := len(old)
	old[0] = old[n-1]
	*h = old[:n-1]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(*h) && (*h)[l].mediaTime < (*h)[smallest].mediaTime {
			smallest = l
		}
		if r < len(*h) && (*h)[r].mediaTime < (*h)[smallest].mediaTime {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.Swap(i, smallest)
		i = smallest
	}
	return top
}

func (p *Player) onData(payload any, size int) {
	if p.state == "done" {
		return
	}
	p.touchIdle()
	pkt, ok := payload.(*rdt.Packet)
	if !ok {
		return
	}
	now := p.cfg.Clock.Now()
	if p.firstRecvAt == 0 {
		p.firstRecvAt = now
	}
	p.lastRecvAt = now
	p.bytesRecv += size
	p.intBytes += size

	switch pkt.Kind {
	case rdt.TypeData:
		p.onDataPacket(pkt.Data)
	case rdt.TypeRepair:
		p.onRepair(pkt.Repair)
	case rdt.TypeEndOfStream:
		p.eos = true
		p.checkPlayable()
	}
}

func (p *Player) onDataPacket(d *rdt.Data) {
	if d.Stream == rdt.StreamVideo {
		if _, dup := p.haveSeq[d.Seq]; dup {
			return // retransmission of something FEC already rebuilt
		}
		if d.Seq > p.highestSeq+1 && p.data != nil && p.data.Protocol() == transport.UDP {
			// Sequence gap: queue NACKs for the missing packets.
			for seq := p.highestSeq + 1; seq < d.Seq; seq++ {
				if _, ok := p.nackOutstanding[seq]; !ok {
					p.nackOutstanding[seq] = 0
				}
			}
			p.armNack()
		}
		if d.Seq > p.highestSeq {
			p.highestSeq = d.Seq
		}
		p.recvSeqCount++
		if d.Seq < p.seqFloor {
			p.lowSeqs = append(p.lowSeqs, d.Seq)
		}
		p.haveSeq[d.Seq] = d
		p.gcSeqs()
	}
	p.assemble(d)
}

// NACK pacing: the first request goes out after a short debounce (so one
// burst produces one NACK); unanswered requests are retried a bounded
// number of times, as RDT did.
const (
	nackDelay    = 120 * time.Millisecond
	nackRetry    = 350 * time.Millisecond
	nackMaxTries = 4
)

func (p *Player) armNack() {
	if p.nackTimer.Armed() {
		return
	}
	p.nackTimer = p.cfg.Clock.AfterHandler(nackDelay, (*nackArm)(p))
}

func (p *Player) flushNacks() {
	if p.state == "done" || p.data == nil {
		return
	}
	missing := p.nackScratch[:0]
	for seq, tries := range p.nackOutstanding {
		if _, arrived := p.haveSeq[seq]; arrived || tries >= nackMaxTries {
			delete(p.nackOutstanding, seq)
			continue
		}
		p.nackOutstanding[seq] = tries + 1
		missing = append(missing, seq)
	}
	p.nackScratch = missing[:0]
	if len(missing) == 0 {
		return
	}
	// Insertion sort: missing lists are short, and a named sort (unlike
	// sort.Slice) costs no closure.
	for i := 1; i < len(missing); i++ {
		for j := i; j > 0 && missing[j-1] > missing[j]; j-- {
			missing[j-1], missing[j] = missing[j], missing[j-1]
		}
	}
	for off := 0; off < len(missing); off += rdt.MaxNackSeqs {
		end := off + rdt.MaxNackSeqs
		if end > len(missing) {
			end = len(missing)
		}
		pkt := p.arena.Nack()
		nk := pkt.Nack
		nk.Stream = rdt.StreamVideo
		nk.Seqs = append(nk.Seqs, missing[off:end]...)
		p.data.Send(pkt, rdt.WireSize(pkt))
	}
	// Retry unanswered requests.
	p.nackTimer = p.cfg.Clock.AfterHandler(nackRetry, (*nackArm)(p))
}

// gcSeqs bounds the FEC window memory. Seqs arrive (nearly) monotonically,
// so expiry is a forward sweep from seqFloor rather than a whole-map scan
// per packet; the occasional late retransmission below the floor is tracked
// in lowSeqs and expired on the same sweep. The resulting set is identical
// to the old full scan's at every step.
func (p *Player) gcSeqs() {
	const window = 512
	if len(p.haveSeq) <= window {
		return
	}
	cut := uint32(0)
	if p.highestSeq > window {
		cut = p.highestSeq - window
	}
	for ; p.seqFloor < cut; p.seqFloor++ {
		delete(p.haveSeq, p.seqFloor)
	}
	if len(p.lowSeqs) > 0 {
		// Every recorded low seq is below some earlier floor, hence below
		// the current cut.
		for _, s := range p.lowSeqs {
			delete(p.haveSeq, s)
		}
		p.lowSeqs = p.lowSeqs[:0]
	}
}

func (p *Player) assemble(d *rdt.Data) {
	fc := d.FragCount
	if fc == 0 {
		fc = 1
	}
	if fc == 1 {
		// Single-fragment frame — the overwhelmingly common case: enqueue
		// directly, no assembly state needed.
		p.enqueueFrame(bufFrame{
			mediaTime: time.Duration(d.MediaTime) * time.Millisecond,
			arrived:   p.cfg.Clock.Now(),
			video:     d.Stream == rdt.StreamVideo,
			keyframe:  d.Flags&rdt.FlagKeyframe != 0,
			encRate:   float64(d.EncRate),
			index:     d.FrameIndex,
			size:      d.PayloadLen(),
		})
		return
	}
	key := uint64(d.Stream)<<32 | uint64(d.FrameIndex)
	pi := -1
	for i := range p.partials {
		if p.partials[i].key == key {
			pi = i
			break
		}
	}
	if pi < 0 {
		p.partials = append(p.partials, partial{
			key:       key,
			mediaTime: time.Duration(d.MediaTime) * time.Millisecond,
			video:     d.Stream == rdt.StreamVideo,
			keyframe:  d.Flags&rdt.FlagKeyframe != 0,
			encRate:   float64(d.EncRate),
			index:     d.FrameIndex,
			count:     fc,
		})
		pi = len(p.partials) - 1
	}
	pt := &p.partials[pi]
	bit := uint16(1) << d.FragIndex
	if pt.got&bit != 0 {
		return // duplicate fragment
	}
	pt.got |= bit
	pt.need++
	pt.size += d.PayloadLen()
	if pt.need >= pt.count {
		done := *pt
		// Swap-remove: assembly order does not depend on set order.
		last := len(p.partials) - 1
		p.partials[pi] = p.partials[last]
		p.partials = p.partials[:last]
		p.enqueueFrame(bufFrame{
			mediaTime: done.mediaTime,
			arrived:   p.cfg.Clock.Now(),
			video:     done.video,
			keyframe:  done.keyframe,
			encRate:   done.encRate,
			index:     done.index,
			size:      done.size,
		})
	}
}

func (p *Player) enqueueFrame(f bufFrame) {
	if f.encRate > 0 && f.video {
		if p.curEncRate == 0 {
			p.curEncRate = f.encRate
			p.st.EncodedKbps = f.encRate
			p.st.EncodedFPS = p.desc.FrameRateFor(f.encRate)
		} else if f.encRate != p.curEncRate && f.index+1 >= p.nextVideoIdx {
			// Only in-order frames mark a SureStream switch; retransmitted
			// frames carry the encoding they were originally sent under.
			p.curEncRate = f.encRate
			p.st.Switches++
		}
	}
	if f.mediaTime > p.bufEnd {
		p.bufEnd = f.mediaTime
	}
	// Hopelessly late arrival while playing: drop. Mildly late frames are
	// admitted and played late by the playout engine (visible as jitter).
	if p.state == "playing" && f.mediaTime < p.playPos {
		if f.video {
			p.st.FramesDroppedLate++
		}
		return
	}
	p.frames.push(f)
	if p.state == "playing" && !p.frameTimer.Armed() {
		// The playout engine was waiting for data (underrun grace period);
		// new media restarts it.
		p.scheduleNextFrame()
		return
	}
	p.checkPlayable()
}

// onRepair reconstructs a single missing video packet in the repair group.
// XOR parity over full packets recovers the missing packet exactly — header
// and payload — so the reconstruction uses the authoritative metadata the
// repair carries.
func (p *Player) onRepair(r *rdt.Repair) {
	if r.Stream != rdt.StreamVideo {
		return
	}
	var seq uint32
	nMissing := 0
	for s := r.BaseSeq; s < r.BaseSeq+uint32(r.Group); s++ {
		if _, ok := p.haveSeq[s]; !ok {
			seq = s
			if nMissing++; nMissing > 1 {
				return // >1 missing: unrecoverable by XOR
			}
		}
	}
	if nMissing == 0 {
		return // nothing to do
	}
	m, ok := r.MetaFor(seq)
	if !ok {
		return
	}
	rec := p.arena.NewData()
	rec.Stream = rdt.StreamVideo
	rec.Seq = seq
	rec.MediaTime = m.MediaTime
	rec.Flags = m.Flags
	rec.EncRate = m.EncRate
	rec.FrameIndex = m.FrameIndex
	rec.FragIndex = m.FragIndex
	rec.FragCount = m.FragCount
	rec.PadLen = int(m.Size)
	p.recovered++
	p.onDataPacket(rec)
}

// --- playout engine ---

func (p *Player) bufferDepth() time.Duration {
	if len(p.frames) == 0 {
		return 0
	}
	return p.bufEnd - p.frames[0].mediaTime
}

// checkPlayable transitions out of (re)buffering when enough media is
// queued.
func (p *Player) checkPlayable() {
	now := p.cfg.Clock.Now()
	switch p.state {
	case "buffering":
		if p.bufferDepth() >= p.cfg.Preroll || (p.eos && len(p.frames) > 0) {
			p.st.BufferingTime = now - p.buffStart
			p.beginPlayout(now)
		}
	case "rebuffering":
		stalled := now - p.rebufStart
		if p.bufferDepth() >= rebufferTarget || stalled >= maxRebuffer || (p.eos && len(p.frames) > 0) {
			p.st.RebufferTime += stalled
			p.resumePlayout(now)
		}
	}
}

func (p *Player) beginPlayout(now time.Duration) {
	p.state = "playing"
	p.playStart = now
	if len(p.frames) > 0 {
		p.playPos = p.frames[0].mediaTime
	}
	p.mediaBase = now - p.playPos
	// Re-arm the session end for the configured playout length.
	p.endAt.Cancel()
	p.endAt = p.cfg.Clock.AfterHandler(p.cfg.PlayFor, (*timeUpArm)(p))
	p.scheduleNextFrame()
}

func (p *Player) resumePlayout(now time.Duration) {
	p.state = "playing"
	if len(p.frames) > 0 {
		p.playPos = p.frames[0].mediaTime
	}
	p.mediaBase = now - p.playPos
	p.scheduleNextFrame()
}

func (p *Player) scheduleNextFrame() {
	p.frameTimer.Cancel()
	if p.state != "playing" {
		return
	}
	now := p.cfg.Clock.Now()
	if len(p.frames) == 0 {
		if p.eos {
			p.finish(nil)
			return
		}
		// Nothing to play. Wait briefly for the next frame (it may merely
		// be late); only a sustained drought is an underrun that halts
		// playback for rebuffering.
		if !p.graceTimer.Armed() {
			p.graceTimer = p.cfg.Clock.AfterHandler(underrunGrace, (*underrunArm)(p))
		}
		return
	}
	p.graceTimer.Cancel()
	// A frame plays at its scheduled time, but never before it has aged
	// recoveryLag: on a starved path this turns playout arrival-paced
	// (steady-slow) while leaving room for loss recoveries to land.
	due := p.mediaBase + p.frames[0].mediaTime
	if earliest := p.frames[0].arrived + recoveryLag; earliest > due {
		due = earliest
	}
	if due <= now {
		p.playFrame(now)
		return
	}
	p.frameTimer = p.cfg.Clock.AfterHandler(due-now, (*frameArm)(p))
}

// underrun fires when the buffer stayed empty through the grace window:
// playback halts while the buffer refills (up to 20 s — Section II.B).
func (p *Player) underrun() {
	if p.state != "playing" || len(p.frames) > 0 {
		return
	}
	if p.eos {
		p.finish(nil)
		return
	}
	p.state = "rebuffering"
	p.rebufStart = p.cfg.Clock.Now()
	p.st.Rebuffers++
	// A stalled stream that never refills is ended by the idle timer or the
	// session end timer.
}

func (p *Player) playFrame(now time.Duration) {
	if p.state != "playing" || len(p.frames) == 0 {
		p.scheduleNextFrame()
		return
	}
	f := p.frames.pop()
	p.playPos = f.mediaTime
	lateness := now - (p.mediaBase + f.mediaTime)
	if lateness > lateWindow {
		// Playout has fallen behind its clock: slip the clock rather than
		// discard media. This is the player's controlled degradation — on a
		// starved path playout becomes arrival-paced (steady but slow),
		// which is the "slideshow" mode of sub-3-fps clips. The pacing
		// itself comes from the recoveryLag floor in scheduleNextFrame; the
		// slip only re-anchors the clock.
		p.mediaBase += lateness
		lateness = 0
	}
	if f.video {
		// GOP decode-chain accounting in presentation order: a frame that
		// never made it to its playout slot breaks the predictive chain,
		// rendering later frames undisplayable until the next keyframe
		// reaches the decoder — the amplification that turns modest packet
		// loss into slideshow playback.
		if p.videoIdxSeen && f.index > p.nextVideoIdx {
			p.chainBroken = true
		}
		if f.index >= p.nextVideoIdx {
			p.nextVideoIdx = f.index + 1
			p.videoIdxSeen = true
		}
		if f.keyframe {
			p.chainBroken = false
		}
		switch {
		case p.chainBroken:
			// Data arrived, but a lost reference frame upstream makes it
			// undecodable.
			p.st.FramesCorrupted++
		case p.decimate():
			p.st.FramesDroppedCPU++
		default:
			// The frame is displayed now — which for late frames is after
			// its deadline, and for on-time frames after decode-time noise
			// that grows with machine load.
			at := now + p.decodeNoise()
			p.playTimes = append(p.playTimes, at)
			p.st.FramesPlayed++
		}
	}
	p.scheduleNextFrame()
}

// decodeNoise models decode-time variance: near-zero on fast machines,
// tens of milliseconds on saturated or memory-starved ones.
func (p *Player) decodeNoise() time.Duration {
	fps := p.st.EncodedFPS
	if fps <= 0 {
		fps = 15
	}
	w, h := p.frameDims()
	util := p.cfg.CPU.utilization(w, h, fps)
	sigma := 1.0 + 10*util*util // ms
	if p.cfg.CPU.MemMB < 64 {
		sigma += 12 // paging on low-memory machines
	}
	if p.cfg.DisableScalableVideo && util > 1 {
		sigma *= 4 // erratic decode scheduling when overloaded
	}
	n := p.cfg.Rand.NormFloat64() * sigma
	if n < 0 {
		n = -n
	}
	return time.Duration(n * float64(time.Millisecond))
}

// decimate implements Scalable Video Technology: when the encoded rate
// exceeds the machine's decode capacity, play 1 of every k frames.
func (p *Player) decimate() bool {
	fps := p.st.EncodedFPS
	if fps <= 0 {
		fps = 15
	}
	w, h := p.frameDims()
	maxFPS := p.cfg.CPU.maxFPS(w, h)
	if fps <= maxFPS {
		p.decim = 0
		return false
	}
	if p.cfg.DisableScalableVideo {
		// Without Scalable Video the overloaded decoder sheds frames
		// erratically rather than "in a controlled fashion".
		return p.cfg.Rand.Float64() < 1-maxFPS/fps
	}
	k := int(fps/maxFPS + 0.999)
	if k < 2 {
		k = 2
	}
	p.decim = k
	p.decimCount++
	return p.decimCount%k != 0
}

func (p *Player) frameDims() (int, int) {
	for _, e := range p.desc.Encodings {
		if e.TotalKbps == p.curEncRate {
			return e.Width, e.Height
		}
	}
	return 320, 240
}

// --- feedback ---

func (p *Player) sendReport() {
	if p.state == "done" {
		return
	}
	p.reportTick = p.cfg.Clock.AfterHandler(reportInterval, (*reportArm)(p))
	// Timeline sample (Figure 1): bandwidth and frame rate this second.
	p.st.Timeline = append(p.st.Timeline, TimePoint{
		T:    p.cfg.Clock.Now(),
		Kbps: float64(p.intBytes) * 8 / 1000 / reportInterval.Seconds(),
		FPS:  float64(p.st.FramesPlayed - p.lastTickFrames),
	})
	p.lastTickFrames = p.st.FramesPlayed
	if p.data == nil {
		return
	}
	// Interval accounting: packets expected and lost since the last report.
	totalLost := p.lostPackets()
	intLost := totalLost - p.lastRepLost
	if intLost < 0 {
		intLost = 0 // FEC recovered packets counted lost last interval
	}
	intExpected := int(p.highestSeq) - int(p.lastRepHighest)
	if intExpected < 0 {
		intExpected = 0
	}
	p.lastRepLost = totalLost
	p.lastRepHighest = p.highestSeq
	rate := float64(p.intBytes) * 8 / 1000 / reportInterval.Seconds()
	p.intBytes = 0
	var rttMs uint16
	if p.ctl != nil && p.ctl.RTT() > 0 {
		rttMs = uint16(p.ctl.RTT().Milliseconds())
	}
	rep := p.arena.Report()
	*rep.Report = rdt.Report{
		Expected: uint32(intExpected),
		Lost:     uint32(intLost),
		RateKbps: clampU16(rate),
		JitterMs: clampU16(p.currentJitterMs()),
		BufferMs: clampU16(p.bufferDepth().Seconds() * 1000),
		RTTMs:    rttMs,
	}
	p.data.Send(rep, rdt.WireSize(rep))
	bs := p.arena.BufferState()
	*bs.BufferState = rdt.BufferState{
		Ms:     uint32(p.bufferDepth().Milliseconds()),
		Target: uint32(p.cfg.Preroll.Milliseconds()),
	}
	p.data.Send(bs, rdt.WireSize(bs))
}

func clampU16(v float64) uint16 {
	if v < 0 {
		return 0
	}
	if v > 65535 {
		return 65535
	}
	return uint16(v)
}

func (p *Player) lostPackets() int {
	expected := int(p.highestSeq) + 1
	lost := expected - p.recvSeqCount - p.recovered
	if lost < 0 {
		lost = 0
	}
	return lost
}

func (p *Player) currentJitterMs() float64 {
	n := len(p.playTimes)
	if n < 3 {
		return 0
	}
	window := p.playTimes
	if n > 40 {
		window = p.playTimes[n-40:]
	}
	return p.jitterInto(window)
}

// jitterInto is jitterOf on the player's reused gap scratch — the per-
// report jitter computation allocates nothing once the scratch has grown.
func (p *Player) jitterInto(times []time.Duration) float64 {
	if len(times) < 3 {
		return 0
	}
	gaps := p.gapScratch[:0]
	for i := 1; i < len(times); i++ {
		gaps = append(gaps, float64((times[i]-times[i-1]).Microseconds())/1000)
	}
	p.gapScratch = gaps[:0]
	return stats.StdDev(gaps)
}

// jitterOf computes the standard deviation of inter-frame playout gaps in
// milliseconds — the paper's jitter metric.
func jitterOf(times []time.Duration) float64 {
	if len(times) < 3 {
		return 0
	}
	gaps := make([]float64, 0, len(times)-1)
	for i := 1; i < len(times); i++ {
		gaps = append(gaps, float64((times[i]-times[i-1]).Microseconds())/1000)
	}
	return stats.StdDev(gaps)
}

// --- session end ---

func (p *Player) timeUp() { p.finish(nil) }

func (p *Player) touchIdle() {
	if p.state == "done" {
		p.idle.Cancel()
		return
	}
	p.idleDeadline = p.cfg.Clock.Now() + idleTimeout
	if !p.idle.Armed() {
		p.idle = p.cfg.Clock.AfterHandler(idleTimeout, (*idleArm)(p))
	}
}

// idleCheck fires when the standing idle timer expires: if activity moved
// the deadline forward in the meantime it re-arms for the remainder,
// otherwise the session has truly been idle for idleTimeout and ends — the
// same instant the old per-packet re-armed timer would have fired.
func (p *Player) idleCheck() {
	if p.state == "done" {
		return
	}
	now := p.cfg.Clock.Now()
	if now >= p.idleDeadline {
		p.finish(errors.New("player: session idle timeout"))
		return
	}
	p.idle = p.cfg.Clock.AfterHandler(p.idleDeadline-now, (*idleArm)(p))
}

func (p *Player) finish(err error) {
	if p.doneCalled {
		return
	}
	p.doneCalled = true
	prevState := p.state
	p.state = "done"
	now := p.cfg.Clock.Now()

	// Account a stall in progress.
	if prevState == "rebuffering" {
		p.st.RebufferTime += now - p.rebufStart
	}

	p.cancelTimers()
	// Polite teardown when the control channel is up.
	if p.ctl != nil {
		req := rtsp.NewRequest(rtsp.MethodTeardown, p.cfg.URL, 0)
		req.Set("Session", p.sessID)
		p.cseq++
		req.CSeq = p.cseq
		p.ctl.Send(req, req.WireSize())
		p.ctl.Close()
	}
	if p.data != nil && p.dataIsMe {
		p.data.Close()
	}

	p.finalizeStats(now, err)
	if err != nil && !errors.Is(err, ErrUnavailable) {
		p.st.Failed = true
		p.st.FailReason = err.Error()
	}
	if p.cfg.OnDone != nil {
		p.cfg.OnDone(p.st, err)
	}
}

func (p *Player) finalizeStats(now time.Duration, err error) {
	st := p.st
	if p.playStart > 0 {
		st.PlayDuration = now - p.playStart
	}
	if st.PlayDuration > 0 {
		st.MeasuredFPS = float64(st.FramesPlayed) / st.PlayDuration.Seconds()
	}
	if p.lastRecvAt > p.firstRecvAt {
		st.MeasuredKbps = float64(p.bytesRecv) * 8 / 1000 / (p.lastRecvAt - p.firstRecvAt).Seconds()
	}
	st.JitterMs = p.jitterInto(p.playTimes)
	for i := 1; i < len(p.playTimes); i++ {
		if gap := p.playTimes[i] - p.playTimes[i-1]; gap > 500*time.Millisecond {
			st.PlayoutGaps = append(st.PlayoutGaps, float64(gap.Milliseconds()))
		}
	}
	st.FramesLost = p.lostPackets()
	fps := st.MeasuredFPS
	w, h := p.frameDims()
	util := p.cfg.CPU.utilization(w, h, fps)
	if util > 1 {
		util = 1
	}
	st.CPUUtilization = util
	// Keep the frame list from growing without bound for long sessions; the
	// stats are final now.
	sort.Slice(p.playTimes, func(i, j int) bool { return p.playTimes[i] < p.playTimes[j] })
}
