package player_test

import (
	"fmt"
	"testing"
	"time"

	"realtracer/internal/netsim"
	"realtracer/internal/player"
	"realtracer/internal/transport"
	"realtracer/internal/vclock"
)

// lossyRoute loses enough packets that a session exercises its loss
// machinery — FEC repair groups, the NACK window, retransmissions — so the
// recycle tests below cover a populated state graph, not an idle one.
func lossyRoute() netsim.Route {
	return netsim.Route{OneWayDelay: 40 * time.Millisecond, Jitter: 5 * time.Millisecond, LossRate: 0.02}
}

func recycleConfig(r *rig, onDone func(*player.Stats, error)) player.Config {
	return player.Config{
		Clock:            vclock.Sim{C: r.clock},
		Net:              r.cNet,
		ControlAddr:      "srv:554",
		URL:              "rtsp://srv/clip000.rm",
		Protocol:         transport.UDP,
		MaxBandwidthKbps: 300,
		CPU:              player.PCPentiumIII,
		OnDone:           onDone,
	}
}

// TestRecycledPlayerMatchesFresh is the recycle-isolation check behind the
// tracer's player reuse: after a full lossy session, Reset must leave no
// trace of the predecessor — no FEC group, retransmit-window entry, NACK
// counter or sequence floor. Two identically-seeded worlds play the same
// first session, then one recycles the player and the other constructs a
// fresh one; if any predecessor state survived the Reset, the recycled
// session's stats diverge from the fresh player's.
func TestRecycledPlayerMatchesFresh(t *testing.T) {
	// Reset reuses the Stats record and its slices in place, so outcomes
	// must be frozen to a string the moment OnDone delivers them.
	type outcome struct {
		repr   string
		frames int
		err    error
	}
	snap := func(dst *outcome) func(*player.Stats, error) {
		return func(st *player.Stats, err error) {
			*dst = outcome{repr: fmt.Sprintf("%+v", *st), frames: st.FramesPlayed, err: err}
		}
	}
	run := func(recycle bool) (first, second outcome) {
		r := newRig(t, netsim.AccessDSLCable, lossyRoute())
		p := player.New(recycleConfig(r, snap(&first)))
		p.Start()
		r.clock.RunUntil(r.clock.Now() + 5*time.Minute)
		if first.repr == "" {
			t.Fatal("first play never finished")
		}
		cfg := recycleConfig(r, snap(&second))
		if recycle {
			p.Reset(cfg)
			p.Start()
		} else {
			player.New(cfg).Start()
		}
		r.clock.RunUntil(r.clock.Now() + 5*time.Minute)
		if second.repr == "" {
			t.Fatal("second play never finished")
		}
		return first, second
	}
	firstA, recycled := run(true)
	firstB, fresh := run(false)
	if firstA.frames < 100 {
		t.Fatalf("first play too short to populate session state: %s", firstA.repr)
	}
	// The rigs are identical until the second play begins; if the first
	// plays already differ the comparison below proves nothing.
	if firstA.repr != firstB.repr {
		t.Fatalf("identically-seeded rigs diverged on the first play:\n%s\n%s", firstA.repr, firstB.repr)
	}
	if (recycled.err == nil) != (fresh.err == nil) {
		t.Fatalf("recycled err=%v, fresh err=%v", recycled.err, fresh.err)
	}
	if recycled.repr != fresh.repr {
		t.Errorf("recycled player diverged from a fresh one — predecessor state leaked:\nrecycled: %s\nfresh:    %s", recycled.repr, fresh.repr)
	}
}

// TestAbortedPlayerRecyclesAfterDeparture is the mid-stream abandonment
// lifecycle at player level, exactly as the open-loop depart path drives
// it: abort with the clip still streaming, tear the host off the network,
// reap the server session. Every timer the dead incarnation armed must be
// inert — the generation-checked handles fire into a bumped epoch — and
// the same player object must then serve a clean session for the host's
// next incarnation.
func TestAbortedPlayerRecyclesAfterDeparture(t *testing.T) {
	r := newRig(t, netsim.AccessDSLCable, lossyRoute())
	aborted := false
	p := player.New(recycleConfig(r, func(*player.Stats, error) { aborted = true }))
	p.Start()
	r.clock.RunUntil(r.clock.Now() + 15*time.Second) // well into streaming
	p.Abort()
	r.net.RemoveHost("cli")
	r.srv.DropClient("cli")
	// Drain far past every deadline the dead incarnation could have armed:
	// frame pacing, NACK retries, idle watchdog, end-of-play. Inert means
	// no completion callback and no send from the removed host.
	r.clock.RunUntil(r.clock.Now() + 10*time.Minute)
	if aborted {
		t.Fatal("aborted session reported completion; a stale timer survived the abort")
	}

	r.net.AddHost(netsim.HostConfig{Name: "cli", Access: netsim.DefaultAccessProfile(netsim.AccessDSLCable)})
	var st *player.Stats
	var err error
	p.Reset(recycleConfig(r, func(s *player.Stats, e error) { st, err = s, e }))
	p.Start()
	r.clock.RunUntil(r.clock.Now() + 5*time.Minute)
	if st == nil {
		t.Fatalf("recycled session never finished; events fired: %d", r.clock.Fired())
	}
	if err != nil || st.Failed {
		t.Fatalf("recycled session failed: err=%v stats=%+v", err, st)
	}
	if st.FramesPlayed < 100 {
		t.Fatalf("recycled session barely played: %+v", st)
	}
}
