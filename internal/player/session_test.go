package player_test

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"realtracer/internal/media"
	"realtracer/internal/netsim"
	"realtracer/internal/player"
	"realtracer/internal/server"
	"realtracer/internal/session"
	"realtracer/internal/simclock"
	"realtracer/internal/transport"
	"realtracer/internal/vclock"
)

// fullRig is a richer variant of the basic test rig with server knobs.
type fullRig struct {
	clock *simclock.Clock
	net   *netsim.Network
	srv   *server.Server
	lib   *media.Library
}

func newFullRig(t *testing.T, cfg server.Config, clientAccess netsim.AccessClass, route netsim.Route) *fullRig {
	t.Helper()
	clock := simclock.New()
	n := netsim.New(clock, netsim.StaticRoute(route), 77)
	n.AddHost(netsim.HostConfig{Name: "srv", Access: netsim.DefaultAccessProfile(netsim.AccessServer)})
	n.AddHost(netsim.HostConfig{Name: "cli", Access: netsim.DefaultAccessProfile(clientAccess)})
	if cfg.Library == nil {
		cfg.Library = media.NewLibrary([]*media.Clip{
			media.GenerateClip("rtsp://srv/clip000.rm", "t", media.ContentNews, 4*time.Minute, 20, 350, 7),
		})
	}
	cfg.Clock = vclock.Sim{C: clock}
	cfg.Net = session.SimNet{Stack: transport.NewStack(n, "srv")}
	if cfg.Rand == nil {
		cfg.Rand = rand.New(rand.NewSource(1))
	}
	srv := server.New(cfg)
	if err := srv.Start(); err != nil {
		t.Fatalf("server start: %v", err)
	}
	return &fullRig{clock: clock, net: n, srv: srv, lib: cfg.Library}
}

func (r *fullRig) play(t *testing.T, cfg player.Config) (*player.Stats, error) {
	t.Helper()
	var got *player.Stats
	var gotErr error
	cfg.Clock = vclock.Sim{C: r.clock}
	cfg.Net = session.SimNet{Stack: transport.NewStack(r.net, "cli")}
	if cfg.ControlAddr == "" {
		cfg.ControlAddr = "srv:554"
	}
	if cfg.URL == "" {
		cfg.URL = "rtsp://srv/clip000.rm"
	}
	if cfg.MaxBandwidthKbps == 0 {
		cfg.MaxBandwidthKbps = 350
	}
	cfg.OnDone = func(st *player.Stats, err error) { got, gotErr = st, err }
	player.New(cfg).Start()
	r.clock.RunUntil(r.clock.Now() + 6*time.Minute)
	if got == nil {
		t.Fatal("session never finished")
	}
	return got, gotErr
}

func TestUnavailableClipReported(t *testing.T) {
	r := newFullRig(t, server.Config{Unavailability: 1.0, SureStream: true}, netsim.AccessDSLCable, netsim.Route{})
	st, err := r.play(t, player.Config{Protocol: transport.UDP})
	if !errors.Is(err, player.ErrUnavailable) {
		t.Fatalf("want ErrUnavailable, got %v", err)
	}
	if !st.Unavailable || st.Failed {
		t.Fatalf("flags wrong: %+v", st)
	}
	_, unavailable, _, _ := r.srv.Counters()
	if unavailable != 1 {
		t.Fatalf("server unavailable counter=%d", unavailable)
	}
}

func TestUnknownClipIsNotFound(t *testing.T) {
	r := newFullRig(t, server.Config{SureStream: true}, netsim.AccessDSLCable, netsim.Route{})
	st, err := r.play(t, player.Config{Protocol: transport.UDP, URL: "rtsp://srv/ghost.rm"})
	if err == nil {
		t.Fatal("missing clip should fail")
	}
	if !st.Failed {
		t.Fatal("stats should mark failure")
	}
}

func TestTeardownStopsServerSession(t *testing.T) {
	r := newFullRig(t, server.Config{SureStream: true}, netsim.AccessDSLCable,
		netsim.Route{OneWayDelay: 20 * time.Millisecond})
	_, err := r.play(t, player.Config{Protocol: transport.UDP, PlayFor: 15 * time.Second})
	if err != nil {
		t.Fatalf("session error: %v", err)
	}
	_, _, played, torndown := r.srv.Counters()
	if played != 1 || torndown != 1 {
		t.Fatalf("played=%d torndown=%d", played, torndown)
	}
}

func TestSureStreamDownswitchUnderCongestion(t *testing.T) {
	// A route that can barely carry the low rungs forces the server off the
	// top encoding.
	r := newFullRig(t, server.Config{SureStream: true, FEC: true}, netsim.AccessDSLCable,
		netsim.Route{OneWayDelay: 50 * time.Millisecond, CapacityKbps: 120, CongestionMean: 0.3, CongestionVar: 0.1})
	st, err := r.play(t, player.Config{Protocol: transport.UDP, PlayFor: 45 * time.Second})
	if err != nil {
		t.Fatalf("session error: %v", err)
	}
	if st.Switches == 0 {
		t.Fatalf("expected at least one SureStream switch, stats: %+v", st)
	}
	if st.MeasuredKbps > 150 {
		t.Fatalf("measured %.0f Kbps through a ~84 Kbps available path", st.MeasuredKbps)
	}
}

func TestNoSureStreamNoSwitches(t *testing.T) {
	r := newFullRig(t, server.Config{SureStream: false, FEC: true}, netsim.AccessDSLCable,
		netsim.Route{OneWayDelay: 50 * time.Millisecond, CapacityKbps: 120, CongestionMean: 0.3, CongestionVar: 0.1})
	st, _ := r.play(t, player.Config{Protocol: transport.UDP, PlayFor: 45 * time.Second})
	if st.Switches != 0 {
		t.Fatalf("SureStream disabled but %d switches observed", st.Switches)
	}
}

func TestSlowPCDecimatesFrames(t *testing.T) {
	r := newFullRig(t, server.Config{SureStream: true}, netsim.AccessT1LAN,
		netsim.Route{OneWayDelay: 10 * time.Millisecond})
	fast, err := r.play(t, player.Config{Protocol: transport.UDP, CPU: player.PCPentiumIII})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := r.play(t, player.Config{Protocol: transport.UDP, CPU: player.PCPentiumMMX})
	if err != nil {
		t.Fatal(err)
	}
	if slow.FramesDroppedCPU == 0 {
		t.Fatal("Pentium MMX should shed frames on a 320x240 stream")
	}
	if fast.FramesDroppedCPU != 0 {
		t.Fatalf("Pentium III dropped %d frames on CPU", fast.FramesDroppedCPU)
	}
	if slow.MeasuredFPS >= fast.MeasuredFPS {
		t.Fatalf("slow PC fps %.1f should trail fast PC %.1f", slow.MeasuredFPS, fast.MeasuredFPS)
	}
	if slow.CPUUtilization <= fast.CPUUtilization {
		t.Fatal("utilization ordering wrong")
	}
}

func TestFECReducesCorruption(t *testing.T) {
	lossy := netsim.Route{OneWayDelay: 40 * time.Millisecond, LossRate: 0.04}
	with := newFullRig(t, server.Config{SureStream: true, FEC: true}, netsim.AccessDSLCable, lossy)
	stWith, err := with.play(t, player.Config{Protocol: transport.UDP})
	if err != nil {
		t.Fatal(err)
	}
	without := newFullRig(t, server.Config{SureStream: true, FEC: false}, netsim.AccessDSLCable, lossy)
	stWithout, err := without.play(t, player.Config{Protocol: transport.UDP})
	if err != nil {
		t.Fatal(err)
	}
	// NACK still recovers most loss; FEC should nonetheless strictly help.
	if stWith.FramesCorrupted > stWithout.FramesCorrupted {
		t.Fatalf("FEC made corruption worse: %d vs %d", stWith.FramesCorrupted, stWithout.FramesCorrupted)
	}
}

func TestRebufferOnCongestionEpoch(t *testing.T) {
	r := newFullRig(t, server.Config{SureStream: false}, netsim.AccessDSLCable,
		netsim.Route{OneWayDelay: 40 * time.Millisecond, CapacityKbps: 500, CongestionMean: 0.05, CongestionVar: 0.02})
	// Throttle the path to a trickle mid-clip.
	r.clock.At(20*time.Second, func() { r.net.SetCongestionMean("srv", "cli", 0.93, 0.01) })
	st, err := r.play(t, player.Config{Protocol: transport.UDP, PlayFor: 50 * time.Second})
	if err != nil {
		t.Fatalf("session error: %v", err)
	}
	if st.Rebuffers == 0 && st.JitterMs < 100 {
		t.Fatalf("starving the path had no visible effect: %+v", st)
	}
}

func TestTimelineMonotoneAndPopulated(t *testing.T) {
	r := newFullRig(t, server.Config{SureStream: true}, netsim.AccessDSLCable,
		netsim.Route{OneWayDelay: 30 * time.Millisecond})
	st, err := r.play(t, player.Config{Protocol: transport.UDP, PlayFor: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Timeline) < 20 {
		t.Fatalf("timeline too sparse: %d points", len(st.Timeline))
	}
	for i := 1; i < len(st.Timeline); i++ {
		if st.Timeline[i].T <= st.Timeline[i-1].T {
			t.Fatal("timeline not monotone")
		}
	}
	// Early samples (buffering) should carry bandwidth but no frames.
	if st.Timeline[0].Kbps <= 0 {
		t.Fatal("no bandwidth during buffering")
	}
}

func TestEncodedParametersMatchDescription(t *testing.T) {
	r := newFullRig(t, server.Config{SureStream: true}, netsim.AccessT1LAN, netsim.Route{})
	st, err := r.play(t, player.Config{Protocol: transport.UDP, MaxBandwidthKbps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if st.EncodedKbps != 80 {
		t.Fatalf("server should pick the 80 Kbps rung for a 100 Kbps client, got %v", st.EncodedKbps)
	}
	if st.EncodedFPS != 15 {
		t.Fatalf("encoded fps=%v want 15", st.EncodedFPS)
	}
}

func TestShortClipEndsAtEOS(t *testing.T) {
	lib := media.NewLibrary([]*media.Clip{
		media.GenerateClip("rtsp://srv/clip000.rm", "short", media.ContentNews, 15*time.Second, 20, 80, 3),
	})
	r := newFullRig(t, server.Config{SureStream: true, Library: lib}, netsim.AccessDSLCable,
		netsim.Route{OneWayDelay: 20 * time.Millisecond})
	st, err := r.play(t, player.Config{Protocol: transport.UDP, PlayFor: time.Minute})
	if err != nil {
		t.Fatalf("session error: %v", err)
	}
	// The clip is only 15 s long: playout must end well before the 60 s cap.
	if st.PlayDuration > 30*time.Second {
		t.Fatalf("short clip played for %v", st.PlayDuration)
	}
	if st.FramesPlayed == 0 {
		t.Fatal("no frames from short clip")
	}
}

func TestBothProtocolsOnLossyPathStayClose(t *testing.T) {
	route := netsim.Route{OneWayDelay: 50 * time.Millisecond, LossRate: 0.02, CapacityKbps: 700, CongestionMean: 0.2, CongestionVar: 0.08}
	r1 := newFullRig(t, server.Config{SureStream: true, FEC: true}, netsim.AccessDSLCable, route)
	udp, err := r1.play(t, player.Config{Protocol: transport.UDP})
	if err != nil {
		t.Fatal(err)
	}
	r2 := newFullRig(t, server.Config{SureStream: true, FEC: true}, netsim.AccessDSLCable, route)
	tcp, err := r2.play(t, player.Config{Protocol: transport.TCP})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 17/18: the protocols deliver comparable frame rates and
	// bandwidth over a clip. Allow a generous band.
	if udp.MeasuredFPS < tcp.MeasuredFPS*0.5 || udp.MeasuredFPS > tcp.MeasuredFPS*2 {
		t.Fatalf("protocol fps diverged: UDP %.1f vs TCP %.1f", udp.MeasuredFPS, tcp.MeasuredFPS)
	}
}
