package ratecontrol

import (
	"fmt"

	"realtracer/internal/snap"
)

// Controller type tags in the snapshot.
const (
	ctlAIMD         = 1
	ctlTFRC         = 2
	ctlUnresponsive = 3
)

// Persist writes a controller's full state for a world checkpoint, tagged by
// concrete type so Restore rebuilds the same controller mid-trajectory.
func Persist(sw *snap.Writer, c Controller) error {
	switch t := c.(type) {
	case *AIMD:
		sw.U8(ctlAIMD)
		sw.F64(t.lim.MinKbps)
		sw.F64(t.lim.MaxKbps)
		sw.F64(t.rate)
		sw.F64(t.IncKbps)
		sw.F64(t.DecMult)
	case *TFRC:
		sw.U8(ctlTFRC)
		sw.F64(t.lim.MinKbps)
		sw.F64(t.lim.MaxKbps)
		sw.F64(t.rate)
		sw.Int(t.PacketSize)
		sw.F64(t.lossEMA)
		sw.F64(t.rttEMA)
		sw.Bool(t.seen)
		sw.Bool(t.everLost)
		sw.Int(t.cleanStreak)
	case *Unresponsive:
		sw.U8(ctlUnresponsive)
		sw.F64(t.Kbps)
	default:
		return fmt.Errorf("ratecontrol: cannot snapshot controller type %T", c)
	}
	return sw.Err()
}

// Restore reads a controller written by Persist.
func Restore(sr *snap.Reader) (Controller, error) {
	switch tag := sr.U8(); tag {
	case ctlAIMD:
		a := &AIMD{}
		a.lim.MinKbps = sr.F64()
		a.lim.MaxKbps = sr.F64()
		a.rate = sr.F64()
		a.IncKbps = sr.F64()
		a.DecMult = sr.F64()
		return a, sr.Err()
	case ctlTFRC:
		t := &TFRC{}
		t.lim.MinKbps = sr.F64()
		t.lim.MaxKbps = sr.F64()
		t.rate = sr.F64()
		t.PacketSize = sr.Int()
		t.lossEMA = sr.F64()
		t.rttEMA = sr.F64()
		t.seen = sr.Bool()
		t.everLost = sr.Bool()
		t.cleanStreak = sr.Int()
		return t, sr.Err()
	case ctlUnresponsive:
		u := &Unresponsive{Kbps: sr.F64()}
		return u, sr.Err()
	default:
		if sr.Err() != nil {
			return nil, sr.Err()
		}
		return nil, fmt.Errorf("ratecontrol: unknown controller tag %d", tag)
	}
}
