// Package ratecontrol implements the application-layer congestion control a
// streaming server applies to its UDP data flow. The paper observes that
// RealVideo's UDP traffic "appears to respond to network congestion" with
// bandwidth "comparable to that of TCP over the duration of the clip", while
// "perhaps not quite TCP-friendly" (Figures 18, 24; Section VII).
//
// Three controllers are provided:
//
//   - AIMD: additive-increase / multiplicative-decrease, the classic shape.
//   - TFRC: the equation-based controller of Floyd, Handley, Padhye & Widmer
//     [FHPW00], which the paper cites as the TCP-friendly reference point.
//     It produces a smoother rate than AIMD — the behaviour RealNetworks'
//     own control approximates.
//   - Unresponsive: constant-rate blasting, included as the ablation
//     baseline for the "congestion collapse" concern [FF98].
//
// Controllers consume periodic receiver feedback and emit an allowed send
// rate in Kbps.
package ratecontrol

import (
	"math"
	"time"
)

// Feedback summarizes one receiver report interval.
type Feedback struct {
	// LossFraction is the fraction of packets lost in the interval, in
	// [0, 1], measured before FEC repair.
	LossFraction float64
	// RTT is the current round-trip estimate; zero means unknown.
	RTT time.Duration
	// RecvRateKbps is the rate the receiver measured arriving.
	RecvRateKbps float64
}

// Controller adjusts an allowed sending rate from feedback.
type Controller interface {
	// Name identifies the controller in ablation output.
	Name() string
	// OnFeedback folds one report into the controller state.
	OnFeedback(fb Feedback)
	// RateKbps returns the current allowed sending rate.
	RateKbps() float64
}

// Limits clamp every controller's output to the sane streaming range.
type Limits struct {
	MinKbps float64
	MaxKbps float64
}

// DefaultLimits spans the encodings RealProducer targeted in 2001: 20 Kbps
// modem streams up to 450 Kbps broadband streams.
func DefaultLimits() Limits { return Limits{MinKbps: 10, MaxKbps: 1000} }

func (l Limits) clamp(r float64) float64 {
	if r < l.MinKbps {
		return l.MinKbps
	}
	if r > l.MaxKbps {
		return l.MaxKbps
	}
	return r
}

// AIMD is additive-increase multiplicative-decrease on the send rate.
type AIMD struct {
	lim     Limits
	rate    float64
	IncKbps float64 // additive step per loss-free report
	DecMult float64 // multiplicative factor on loss
}

// NewAIMD returns an AIMD controller starting at startKbps.
func NewAIMD(startKbps float64, lim Limits) *AIMD {
	return &AIMD{lim: lim, rate: lim.clamp(startKbps), IncKbps: 10, DecMult: 0.5}
}

// Name implements Controller.
func (a *AIMD) Name() string { return "aimd" }

// OnFeedback implements Controller.
func (a *AIMD) OnFeedback(fb Feedback) {
	if fb.LossFraction > 0.01 {
		a.rate = a.lim.clamp(a.rate * a.DecMult)
		return
	}
	a.rate = a.lim.clamp(a.rate + a.IncKbps)
}

// RateKbps implements Controller.
func (a *AIMD) RateKbps() float64 { return a.rate }

// TFRC is the TCP throughput-equation controller of [FHPW00]. The allowed
// rate is the equation's estimate of what a TCP flow would achieve under the
// measured loss event rate and RTT, smoothed over reports.
type TFRC struct {
	lim        Limits
	rate       float64
	PacketSize int // bytes; s in the equation
	// lossEMA is the exponentially averaged loss event rate (p).
	lossEMA float64
	// rttEMA is the smoothed RTT in seconds.
	rttEMA float64
	seen   bool
	// everLost marks a session that has experienced loss; cleanStreak
	// counts loss-free reports since. Probing holds at the receive rate for
	// a while after loss (so a saturated link is not pushed straight back
	// into overflow), then resumes so cleared congestion is rediscovered.
	everLost    bool
	cleanStreak int
}

// NewTFRC returns a TFRC controller starting at startKbps with the given
// nominal packet size.
func NewTFRC(startKbps float64, packetSize int, lim Limits) *TFRC {
	if packetSize <= 0 {
		packetSize = 1000
	}
	return &TFRC{lim: lim, rate: lim.clamp(startKbps), PacketSize: packetSize}
}

// Name implements Controller.
func (t *TFRC) Name() string { return "tfrc" }

// Throughput evaluates the TCP throughput equation (bytes/sec) for packet
// size s (bytes), round-trip r (seconds) and loss event rate p.
//
//	X = s / (r*sqrt(2bp/3) + t_RTO * (3*sqrt(3bp/8)) * p * (1+32p^2))
//
// with b = 1 and t_RTO = 4r, per the TFRC specification.
func Throughput(s float64, r float64, p float64) float64 {
	if p <= 0 || r <= 0 {
		return math.Inf(1)
	}
	tRTO := 4 * r
	denom := r*math.Sqrt(2*p/3) + tRTO*3*math.Sqrt(3*p/8)*p*(1+32*p*p)
	return s / denom
}

// OnFeedback implements Controller.
func (t *TFRC) OnFeedback(fb Feedback) {
	const alpha = 0.25 // EMA weight for new samples
	if !t.seen {
		t.lossEMA = fb.LossFraction
		t.rttEMA = fb.RTT.Seconds()
		t.seen = true
	} else {
		t.lossEMA = (1-alpha)*t.lossEMA + alpha*fb.LossFraction
		if fb.RTT > 0 {
			t.rttEMA = (1-alpha)*t.rttEMA + alpha*fb.RTT.Seconds()
		}
	}
	rtt := t.rttEMA
	if rtt <= 0 {
		rtt = 0.1 // no estimate yet; assume 100 ms
	}
	if t.lossEMA < 1e-4 {
		// No loss events: probe upward, bounded just above what the
		// receiver demonstrates it can absorb. A wider probe cap (the
		// classic 2x) sawtooths into queue-overflow bursts at coarse
		// feedback intervals, which GOP loss-amplification turns into
		// seconds of corrupted video.
		t.cleanStreak++
		probe := 1.1
		if t.everLost && t.cleanStreak < 10 {
			probe = 1.0 // post-loss hold: let the queue drain
		}
		target := t.rate * 1.25
		if fb.RecvRateKbps > 0 && target > probe*fb.RecvRateKbps {
			target = probe * fb.RecvRateKbps
		}
		t.rate = t.lim.clamp(target)
		return
	}
	t.everLost = true
	t.cleanStreak = 0
	x := Throughput(float64(t.PacketSize), rtt, t.lossEMA) // bytes/sec
	kbps := x * 8 / 1000
	// Bound by what the receiver demonstrably absorbs (TFRC's X_recv rule):
	// the equation alone overshoots badly on low-capacity, shallow-buffer
	// paths whose loss rate stays moderate.
	if fb.RecvRateKbps > 0 && kbps > fb.RecvRateKbps {
		kbps = fb.RecvRateKbps
	}
	// Smooth the transition: move halfway to the equation's rate.
	t.rate = t.lim.clamp((t.rate + kbps) / 2)
}

// RateKbps implements Controller.
func (t *TFRC) RateKbps() float64 { return t.rate }

// Unresponsive ignores all feedback — the congestion-collapse strawman.
type Unresponsive struct{ Kbps float64 }

// Name implements Controller.
func (u *Unresponsive) Name() string { return "unresponsive" }

// OnFeedback implements Controller.
func (u *Unresponsive) OnFeedback(Feedback) {}

// RateKbps implements Controller.
func (u *Unresponsive) RateKbps() float64 { return u.Kbps }
