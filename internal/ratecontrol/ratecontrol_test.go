package ratecontrol

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestAIMDAdditiveIncrease(t *testing.T) {
	c := NewAIMD(100, DefaultLimits())
	for i := 0; i < 5; i++ {
		c.OnFeedback(Feedback{LossFraction: 0, RecvRateKbps: 1000})
	}
	if c.RateKbps() != 100+5*c.IncKbps {
		t.Fatalf("rate=%v", c.RateKbps())
	}
}

func TestAIMDMultiplicativeDecrease(t *testing.T) {
	c := NewAIMD(200, DefaultLimits())
	c.OnFeedback(Feedback{LossFraction: 0.1})
	if c.RateKbps() != 100 {
		t.Fatalf("rate=%v want 100", c.RateKbps())
	}
}

func TestAIMDIgnoresTinyLoss(t *testing.T) {
	c := NewAIMD(200, DefaultLimits())
	c.OnFeedback(Feedback{LossFraction: 0.005})
	if c.RateKbps() <= 200 {
		t.Fatal("sub-threshold loss should not halve the rate")
	}
}

func TestLimitsClamp(t *testing.T) {
	lim := Limits{MinKbps: 50, MaxKbps: 100}
	c := NewAIMD(10, lim)
	if c.RateKbps() != 50 {
		t.Fatal("start below min not clamped")
	}
	for i := 0; i < 50; i++ {
		c.OnFeedback(Feedback{})
	}
	if c.RateKbps() != 100 {
		t.Fatalf("rate=%v exceeded max", c.RateKbps())
	}
	for i := 0; i < 50; i++ {
		c.OnFeedback(Feedback{LossFraction: 1})
	}
	if c.RateKbps() != 50 {
		t.Fatalf("rate=%v fell under min", c.RateKbps())
	}
}

func TestThroughputEquationShape(t *testing.T) {
	// More loss -> less throughput; longer RTT -> less throughput.
	x1 := Throughput(1000, 0.1, 0.01)
	x2 := Throughput(1000, 0.1, 0.05)
	if x2 >= x1 {
		t.Fatalf("throughput should fall with loss: %v vs %v", x1, x2)
	}
	x3 := Throughput(1000, 0.4, 0.01)
	if x3 >= x1 {
		t.Fatalf("throughput should fall with RTT: %v vs %v", x1, x3)
	}
	if !math.IsInf(Throughput(1000, 0.1, 0), 1) {
		t.Fatal("zero loss should be unbounded")
	}
}

// Property: the TFRC equation is monotone decreasing in p and r.
func TestPropertyThroughputMonotone(t *testing.T) {
	f := func(pRaw, rRaw uint8) bool {
		p := 0.001 + float64(pRaw%100)/200 // 0.001..0.5
		r := 0.02 + float64(rRaw%100)/100  // 20ms..1s
		base := Throughput(1000, r, p)
		return Throughput(1000, r, p*1.5) <= base && Throughput(1000, r*1.5, p) <= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTFRCThrottlesOnLoss(t *testing.T) {
	c := NewTFRC(300, 1000, DefaultLimits())
	for i := 0; i < 10; i++ {
		c.OnFeedback(Feedback{LossFraction: 0.15, RTT: 200 * time.Millisecond, RecvRateKbps: 100})
	}
	if c.RateKbps() > 150 {
		t.Fatalf("15%% loss left rate at %v", c.RateKbps())
	}
}

func TestTFRCProbesWhenClean(t *testing.T) {
	c := NewTFRC(50, 1000, DefaultLimits())
	for i := 0; i < 10; i++ {
		c.OnFeedback(Feedback{LossFraction: 0, RTT: 100 * time.Millisecond, RecvRateKbps: c.RateKbps()})
	}
	if c.RateKbps() <= 50 {
		t.Fatal("loss-free feedback should grow the rate")
	}
}

func TestTFRCRecvRateBoundsProbe(t *testing.T) {
	c := NewTFRC(100, 1000, DefaultLimits())
	// The receiver only ever sees 60 Kbps: probing must not run away.
	for i := 0; i < 20; i++ {
		c.OnFeedback(Feedback{LossFraction: 0, RTT: 100 * time.Millisecond, RecvRateKbps: 60})
	}
	if c.RateKbps() > 70 {
		t.Fatalf("probe escaped receive-rate bound: %v", c.RateKbps())
	}
}

func TestTFRCRecvRateBoundsEquation(t *testing.T) {
	c := NewTFRC(300, 1000, DefaultLimits())
	// Moderate loss with long RTT: the raw equation would allow far more
	// than the 30 Kbps the receiver actually sees (the modem case).
	for i := 0; i < 20; i++ {
		c.OnFeedback(Feedback{LossFraction: 0.02, RTT: 400 * time.Millisecond, RecvRateKbps: 30})
	}
	if c.RateKbps() > 45 {
		t.Fatalf("equation escaped receive-rate bound: %v", c.RateKbps())
	}
}

func TestTFRCRTTDefaultsWhenUnknown(t *testing.T) {
	c := NewTFRC(100, 1000, DefaultLimits())
	c.OnFeedback(Feedback{LossFraction: 0.05}) // no RTT, no recv rate
	if r := c.RateKbps(); r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		t.Fatalf("rate degenerate without RTT: %v", r)
	}
}

func TestUnresponsiveIgnoresEverything(t *testing.T) {
	c := &Unresponsive{Kbps: 300}
	c.OnFeedback(Feedback{LossFraction: 0.9, RecvRateKbps: 1})
	if c.RateKbps() != 300 {
		t.Fatal("unresponsive controller responded")
	}
}

func TestControllerNames(t *testing.T) {
	lim := DefaultLimits()
	for _, tc := range []struct {
		c    Controller
		want string
	}{
		{NewAIMD(100, lim), "aimd"},
		{NewTFRC(100, 1000, lim), "tfrc"},
		{&Unresponsive{}, "unresponsive"},
	} {
		if tc.c.Name() != tc.want {
			t.Errorf("name=%q want %q", tc.c.Name(), tc.want)
		}
	}
}

func TestTFRCDefaultPacketSize(t *testing.T) {
	c := NewTFRC(100, 0, DefaultLimits())
	if c.PacketSize != 1000 {
		t.Fatalf("default packet size=%d", c.PacketSize)
	}
}
