package rdt

// Arena is a per-session slab allocator for the packet structs both ends of
// a connection mint on the hot path: media Data and its Packet wrapper,
// receiver Reports, BufferState updates, NACKs, FEC Repair packets and the
// end-of-stream marker. Cells are carved from chunked backing arrays and
// never freed individually; Reset rewinds the cursor and reuses the chunks,
// so a session that is recycled through a pool stops allocating once its
// arena has grown to the session's working set.
//
// The safety contract is the pool's, not the arena's: Reset may only run
// when no live reference into the arena remains. In the simulator that
// point is session recycle time — the host has been removed from the
// network (in-flight packets to or from it are dropped unread) and the
// peer's sessions have been reaped, so nothing can still dereference a
// cell. Within a session, cells handed to the network stay valid until
// Reset precisely because the arena never recycles them individually.
//
// An Arena is single-threaded, like everything else behind one simulated
// clock. The zero Arena is ready to use.
type Arena struct {
	packets slab[Packet]
	datas   slab[Data]
	reports slab[Report]
	bufs    slab[BufferState]
	eoss    slab[EndOfStream]
	nacks   slab[nackCell]
	repairs slab[repairCell]
}

// arenaChunk is the number of cells per backing chunk.
const arenaChunk = 64

// repairMetaCap bounds one repair cell's embedded metadata array. FEC
// groups are small (the server uses 8); the embedded array keeps Meta
// allocation-free for any group up to this size.
const repairMetaCap = 16

type nackCell struct {
	n    Nack
	seqs [MaxNackSeqs]uint32
}

type repairCell struct {
	r    Repair
	meta [repairMetaCap]RepairMeta
}

type slab[T any] struct {
	chunks  [][]T
	ci, off int
}

func (s *slab[T]) get() *T {
	if s.ci == len(s.chunks) {
		s.chunks = append(s.chunks, make([]T, arenaChunk))
	}
	c := s.chunks[s.ci]
	p := &c[s.off]
	if s.off++; s.off == len(c) {
		s.ci, s.off = s.ci+1, 0
	}
	var zero T
	*p = zero
	return p
}

func (s *slab[T]) reset() { s.ci, s.off = 0, 0 }

// Data returns a zeroed media packet: the Packet wrapper and its Data both
// live in the arena.
func (a *Arena) Data() *Packet {
	p := a.packets.get()
	p.Kind = TypeData
	p.Data = a.datas.get()
	return p
}

// Wrap returns an arena Packet around an existing Data — the retransmit
// path, which re-sends a Data still owned by the sender's window.
func (a *Arena) Wrap(d *Data) *Packet {
	p := a.packets.get()
	p.Kind = TypeData
	p.Data = d
	return p
}

// NewData returns a bare zeroed Data cell (no Packet wrapper) — FEC
// reconstruction mints these on the receive side.
func (a *Arena) NewData() *Data { return a.datas.get() }

// Report returns a zeroed receiver-report packet.
func (a *Arena) Report() *Packet {
	p := a.packets.get()
	p.Kind = TypeReport
	p.Report = a.reports.get()
	return p
}

// BufferState returns a zeroed buffer-state packet.
func (a *Arena) BufferState() *Packet {
	p := a.packets.get()
	p.Kind = TypeBufferState
	p.BufferState = a.bufs.get()
	return p
}

// EOS returns a zeroed end-of-stream packet.
func (a *Arena) EOS() *Packet {
	p := a.packets.get()
	p.Kind = TypeEndOfStream
	p.EOS = a.eoss.get()
	return p
}

// Nack returns a zeroed NACK packet whose Seqs slice is backed by the
// cell's embedded array: empty, with capacity MaxNackSeqs.
func (a *Arena) Nack() *Packet {
	p := a.packets.get()
	cell := a.nacks.get()
	cell.n.Seqs = cell.seqs[:0]
	p.Kind = TypeNack
	p.Nack = &cell.n
	return p
}

// Repair returns a zeroed FEC repair packet whose Meta slice is backed by
// the cell's embedded array: empty, with capacity repairMetaCap.
func (a *Arena) Repair() *Packet {
	p := a.packets.get()
	cell := a.repairs.get()
	cell.r.Meta = cell.meta[:0]
	p.Kind = TypeRepair
	p.Repair = &cell.r
	return p
}

// Reset rewinds every slab for reuse. See the type comment for when this
// is safe to call.
func (a *Arena) Reset() {
	a.packets.reset()
	a.datas.reset()
	a.reports.reset()
	a.bufs.reset()
	a.eoss.reset()
	a.nacks.reset()
	a.repairs.reset()
}
