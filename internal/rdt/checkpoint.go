package rdt

import (
	"fmt"

	"realtracer/internal/snap"
)

// Persist writes the packet field-exactly for a world checkpoint. The wire
// codec (Encode/Decode) is deliberately not reused: it materializes the
// simulation's Payload==nil/PadLen representation into real zero bytes, and
// a restored world must keep the allocation-free representation the
// straight-through run carries.
func (p *Packet) Persist(sw *snap.Writer) {
	sw.Tag("rdt")
	sw.U8(uint8(p.Kind))
	switch p.Kind {
	case TypeData:
		p.Data.Persist(sw)
	case TypeReport:
		p.Report.Persist(sw)
	case TypeRepair:
		r := p.Repair
		sw.U8(uint8(r.Stream))
		sw.U32(r.BaseSeq)
		sw.U8(r.Group)
		sw.U32(uint32(len(r.Meta)))
		for i := range r.Meta {
			r.Meta[i].Persist(sw)
		}
		sw.Bool(r.Parity != nil)
		if r.Parity != nil {
			sw.Bytes(r.Parity)
		} else {
			sw.Int(r.PadLen)
		}
	case TypeBufferState:
		sw.U32(p.BufferState.Ms)
		sw.U32(p.BufferState.Target)
	case TypeEndOfStream:
		sw.U32(p.EOS.FinalSeq)
	case TypeNack:
		sw.U8(uint8(p.Nack.Stream))
		sw.U32(uint32(len(p.Nack.Seqs)))
		for _, s := range p.Nack.Seqs {
			sw.U32(s)
		}
	}
}

// Persist writes one media Data field-exactly, preserving the
// Payload-nil/PadLen distinction.
func (d *Data) Persist(sw *snap.Writer) {
	sw.U8(uint8(d.Stream))
	sw.U32(d.Seq)
	sw.U32(d.MediaTime)
	sw.U8(d.Flags)
	sw.U64(uint64(d.EncRate))
	sw.U32(d.FrameIndex)
	sw.U8(d.FragIndex)
	sw.U8(d.FragCount)
	sw.Bool(d.Payload != nil)
	if d.Payload != nil {
		sw.Bytes(d.Payload)
	} else {
		sw.Int(d.PadLen)
	}
}

// RestoreDataInto overlays a Data written by Persist onto d (typically an
// arena cell owned by the restoring session).
func RestoreDataInto(sr *snap.Reader, d *Data) {
	d.Stream = StreamID(sr.U8())
	d.Seq = sr.U32()
	d.MediaTime = sr.U32()
	d.Flags = sr.U8()
	d.EncRate = uint16(sr.U64())
	d.FrameIndex = sr.U32()
	d.FragIndex = sr.U8()
	d.FragCount = sr.U8()
	if sr.Bool() {
		d.Payload = sr.Bytes()
	} else {
		d.PadLen = sr.Int()
	}
}

// Persist writes one receiver Report.
func (r *Report) Persist(sw *snap.Writer) {
	sw.U32(r.Expected)
	sw.U32(r.Lost)
	sw.U64(uint64(r.RateKbps))
	sw.U64(uint64(r.JitterMs))
	sw.U64(uint64(r.BufferMs))
	sw.U64(uint64(r.RTTMs))
}

// RestoreReportInto overlays a Report written by Persist onto r.
func RestoreReportInto(sr *snap.Reader, r *Report) {
	r.Expected = sr.U32()
	r.Lost = sr.U32()
	r.RateKbps = uint16(sr.U64())
	r.JitterMs = uint16(sr.U64())
	r.BufferMs = uint16(sr.U64())
	r.RTTMs = uint16(sr.U64())
}

// Persist writes one FEC group-member record.
func (m *RepairMeta) Persist(sw *snap.Writer) {
	sw.U32(m.Seq)
	sw.U32(m.FrameIndex)
	sw.U32(m.MediaTime)
	sw.U8(m.FragIndex)
	sw.U8(m.FragCount)
	sw.U8(m.Flags)
	sw.U64(uint64(m.EncRate))
	sw.U64(uint64(m.Size))
}

// RestoreRepairMeta reads a RepairMeta written by Persist.
func RestoreRepairMeta(sr *snap.Reader) RepairMeta {
	var m RepairMeta
	m.Seq = sr.U32()
	m.FrameIndex = sr.U32()
	m.MediaTime = sr.U32()
	m.FragIndex = sr.U8()
	m.FragCount = sr.U8()
	m.Flags = sr.U8()
	m.EncRate = uint16(sr.U64())
	m.Size = uint16(sr.U64())
	return m
}

// RestorePacket reads a packet written by Persist.
func RestorePacket(sr *snap.Reader) (*Packet, error) {
	sr.Tag("rdt")
	p := &Packet{Kind: Type(sr.U8())}
	switch p.Kind {
	case TypeData:
		d := &Data{}
		RestoreDataInto(sr, d)
		p.Data = d
	case TypeReport:
		r := &Report{}
		RestoreReportInto(sr, r)
		p.Report = r
	case TypeRepair:
		r := &Repair{}
		r.Stream = StreamID(sr.U8())
		r.BaseSeq = sr.U32()
		r.Group = sr.U8()
		n := int(sr.U32())
		for i := 0; i < n; i++ {
			r.Meta = append(r.Meta, RestoreRepairMeta(sr))
		}
		if sr.Bool() {
			r.Parity = sr.Bytes()
		} else {
			r.PadLen = sr.Int()
		}
		p.Repair = r
	case TypeBufferState:
		p.BufferState = &BufferState{Ms: sr.U32(), Target: sr.U32()}
	case TypeEndOfStream:
		p.EOS = &EndOfStream{FinalSeq: sr.U32()}
	case TypeNack:
		nk := &Nack{Stream: StreamID(sr.U8())}
		n := int(sr.U32())
		for i := 0; i < n; i++ {
			nk.Seqs = append(nk.Seqs, sr.U32())
		}
		p.Nack = nk
	default:
		if sr.Err() == nil {
			return nil, fmt.Errorf("rdt: restore of unknown packet kind %d", p.Kind)
		}
	}
	return p, sr.Err()
}
