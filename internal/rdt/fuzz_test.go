package rdt

import (
	"reflect"
	"testing"
)

// corpusPackets is one of each packet kind with realistic session values —
// the frames a server/player exchange actually puts on the wire.
func corpusPackets() []*Packet {
	return []*Packet{
		{Kind: TypeData, Data: &Data{
			Stream: StreamVideo, Seq: 1042, MediaTime: 52100, Flags: FlagKeyframe,
			EncRate: 225, FrameIndex: 391, FragIndex: 1, FragCount: 3,
			Payload: []byte("frame-fragment-bytes"),
		}},
		{Kind: TypeData, Data: &Data{Stream: StreamAudio, Seq: 7, MediaTime: 350, FragCount: 1, Flags: FlagLast}},
		{Kind: TypeReport, Report: &Report{Expected: 250, Lost: 3, RateKbps: 212, JitterMs: 41, BufferMs: 7800, RTTMs: 120}},
		{Kind: TypeRepair, Repair: &Repair{
			Stream: StreamVideo, BaseSeq: 1040, Group: 4,
			Meta: []RepairMeta{
				{Seq: 1040, FrameIndex: 390, MediaTime: 52000, FragCount: 1, EncRate: 225, Size: 700},
				{Seq: 1041, FrameIndex: 390, MediaTime: 52000, FragIndex: 1, FragCount: 2, EncRate: 225, Size: 444},
			},
			Parity: []byte{0x1f, 0x2e, 0x3d},
		}},
		{Kind: TypeBufferState, BufferState: &BufferState{Ms: 6400, Target: 8000}},
		{Kind: TypeEndOfStream, EOS: &EndOfStream{FinalSeq: 2710}},
		{Kind: TypeNack, Nack: &Nack{Stream: StreamVideo, Seqs: []uint32{1043, 1044, 1051}}},
	}
}

// FuzzDecodePacket fuzzes the binary RDT decoder with encodings of every
// packet kind as the seed corpus. Decoding must never panic, and anything
// the decoder accepts must re-encode and decode to an identical packet —
// the property that pinned the decoder accepting payloads, NACK lists and
// fragment counts its own encoder refuses.
func FuzzDecodePacket(f *testing.F) {
	for _, p := range corpusPackets() {
		b, err := Encode(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		// A corrupted twin: flipped checksum byte, to seed the reject path.
		bad := append([]byte(nil), b...)
		bad[5] ^= 0xFF
		f.Add(bad)
	}
	f.Add([]byte{})
	f.Add([]byte{magic, version, byte(TypeData), 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		b2, err := Encode(p)
		if err != nil {
			t.Fatalf("decoded packet does not re-encode: %v\npacket: %+v", err, p)
		}
		p2, err := Decode(b2)
		if err != nil {
			t.Fatalf("re-encoded packet does not decode: %v", err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("decode/encode/decode changed the packet:\nfirst:  %+v\nsecond: %+v", p, p2)
		}
	})
}
