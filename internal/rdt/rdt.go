// Package rdt implements the data-channel framing used between server and
// player, modeled on RealNetworks' Real Data Transport: media data packets
// with stream/sequence/timestamp headers, receiver reports that feed
// rate control and SureStream switching, XOR FEC repair packets ("special
// packets that correct errors", paper Section II.C), client buffer-state
// updates and an end-of-stream marker.
//
// Packets have a real binary wire format (validated by a checksum) so the
// same codec drives both the live-socket mode and, by reference-passing, the
// simulator.
package rdt

import (
	"errors"
	"fmt"

	"realtracer/internal/packet"
)

// Wire constants.
const (
	magic      = 0xD7 // first byte of every RDT packet
	version    = 1
	headerLen  = 4 // magic, version, type, flags
	MaxPayload = 16 * 1024
)

// Type discriminates RDT packet kinds.
type Type uint8

const (
	TypeInvalid     Type = iota
	TypeData             // media payload
	TypeReport           // receiver report (feedback)
	TypeRepair           // XOR FEC parity over a data group
	TypeBufferState      // client playout-buffer occupancy
	TypeEndOfStream      // server is done sending
	TypeNack             // receiver requests retransmission of lost packets
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeData:
		return "DATA"
	case TypeReport:
		return "REPORT"
	case TypeRepair:
		return "REPAIR"
	case TypeBufferState:
		return "BUFFERSTATE"
	case TypeEndOfStream:
		return "EOS"
	case TypeNack:
		return "NACK"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// StreamID distinguishes the tracks of a clip.
type StreamID uint8

const (
	StreamAudio StreamID = 0
	StreamVideo StreamID = 1
)

// Data flags.
const (
	FlagKeyframe uint8 = 1 << iota
	FlagLast           // last packet of the clip
)

// Data is a media payload packet. Large frames are split across fragments
// FragIndex in [0, FragCount) sharing the same FrameIndex; a frame is
// playable only when every fragment (or an FEC reconstruction) is present.
type Data struct {
	Stream    StreamID
	Seq       uint32 // per-stream sequence number
	MediaTime uint32 // media timestamp, milliseconds from clip start
	Flags     uint8
	// EncRate is the encoding (SureStream stream) the packet belongs to, in
	// Kbps; receivers use it to detect mid-playout switches.
	EncRate uint16
	// FrameIndex identifies the media frame this fragment belongs to.
	FrameIndex uint32
	// FragIndex / FragCount describe the fragment's position. FragCount is
	// at least 1.
	FragIndex, FragCount uint8
	// Payload carries the fragment bytes. In simulation runs Payload is nil
	// and PadLen gives the logical length instead, avoiding megabytes of
	// synthetic allocation; Encode emits PadLen zero bytes in that case.
	Payload []byte
	PadLen  int
}

// PayloadLen returns the logical payload length regardless of
// representation.
func (d *Data) PayloadLen() int {
	if d.Payload != nil {
		return len(d.Payload)
	}
	return d.PadLen
}

// Report is the receiver's feedback packet, sent about once per second. The
// server's rate controller and SureStream selector consume it. Expected and
// Lost cover the interval since the previous report, so the controller sees
// current conditions rather than session history.
type Report struct {
	Expected uint32 // video packets expected this interval
	Lost     uint32 // video packets lost this interval (post-repair)
	RateKbps uint16 // receiver-measured arrival rate
	JitterMs uint16 // receiver-measured interarrival jitter
	BufferMs uint16 // playout buffer depth
	RTTMs    uint16 // last measured round-trip estimate, 0 if unknown
}

// RepairMeta is one group member's header fields. Real XOR parity covers
// the whole packet — header included — so reconstructing the single missing
// packet recovers its header exactly; carrying the group's headers in the
// repair packet is the information-equivalent form the simulator can use
// without real payload bytes.
type RepairMeta struct {
	Seq        uint32
	FrameIndex uint32
	MediaTime  uint32
	FragIndex  uint8
	FragCount  uint8
	Flags      uint8
	EncRate    uint16
	Size       uint16
}

// Repair is an XOR parity packet covering the Group data packets
// [BaseSeq, BaseSeq+Group) on Stream. A receiver missing exactly one packet
// of the group can reconstruct it.
type Repair struct {
	Stream  StreamID
	BaseSeq uint32
	Group   uint8
	Meta    []RepairMeta // one entry per group member, in seq order
	Parity  []byte       // XOR of the group's payloads, padded to the longest
	// PadLen mirrors Data.PadLen: in simulation the parity is PadLen zero
	// bytes instead of a real slice.
	PadLen int
}

// MetaFor returns the group member metadata for seq, if covered.
func (r *Repair) MetaFor(seq uint32) (RepairMeta, bool) {
	for _, m := range r.Meta {
		if m.Seq == seq {
			return m, true
		}
	}
	return RepairMeta{}, false
}

// ParityLen returns the logical parity length regardless of representation.
func (r *Repair) ParityLen() int {
	if r.Parity != nil {
		return len(r.Parity)
	}
	return r.PadLen
}

// BufferState tells the server how full the client's playout buffer is, so
// the server can burst during initial buffering and back off when full.
type BufferState struct {
	Ms     uint32 // milliseconds of media buffered
	Target uint32 // client's configured target
}

// EndOfStream marks clip completion.
type EndOfStream struct {
	FinalSeq uint32
}

// MaxNackSeqs bounds one NACK's request list.
const MaxNackSeqs = 64

// Nack requests retransmission of specific lost packets — RDT's NAK-based
// loss recovery, the mechanism that let RealVideo-over-UDP survive the
// burst losses FEC cannot repair.
type Nack struct {
	Stream StreamID
	Seqs   []uint32
}

// Packet is the decoded union. Exactly one pointer field is non-nil,
// matching Kind.
type Packet struct {
	Kind        Type
	Data        *Data
	Report      *Report
	Repair      *Repair
	BufferState *BufferState
	EOS         *EndOfStream
	Nack        *Nack

	// transit points back to the pooled shard-transit snapshot this packet
	// is the head of (transit.go); nil on every original.
	transit *transitPacket
}

// Errors returned by Decode.
var (
	ErrBadMagic    = errors.New("rdt: bad magic byte")
	ErrBadVersion  = errors.New("rdt: unsupported version")
	ErrBadChecksum = errors.New("rdt: checksum mismatch")
	ErrBadType     = errors.New("rdt: unknown packet type")
	ErrTruncated   = errors.New("rdt: truncated packet")
	ErrTooLarge    = errors.New("rdt: payload exceeds MaxPayload")
)

// Encode serializes p to wire format. Layout:
//
//	magic(1) version(1) type(1) reserved(1) checksum(2) body...
//
// The checksum covers the body with the checksum field itself zeroed.
func Encode(p *Packet) ([]byte, error) {
	w := packet.NewWriter(64)
	if err := EncodeTo(w, p); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// EncodeTo appends p's wire encoding to w, allocating nothing beyond buffer
// growth — the live-socket send path keeps one Writer per connection and
// Resets it between packets. On error the writer is rolled back to its
// length at entry.
func EncodeTo(w *packet.Writer, p *Packet) (err error) {
	base := w.Len()
	defer func() {
		if err != nil {
			w.Truncate(base)
		}
	}()
	w.U8(magic)
	w.U8(version)
	w.U8(uint8(p.Kind))
	w.U8(0)          // reserved
	w.U16(0)         // checksum placeholder
	start := w.Len() // body begins here

	switch p.Kind {
	case TypeData:
		d := p.Data
		if d == nil {
			return errors.New("rdt: TypeData with nil Data")
		}
		if d.PayloadLen() > MaxPayload {
			return ErrTooLarge
		}
		w.U8(uint8(d.Stream))
		w.U8(d.Flags)
		w.U16(d.EncRate)
		w.U32(d.Seq)
		w.U32(d.MediaTime)
		w.U32(d.FrameIndex)
		w.U8(d.FragIndex)
		fc := d.FragCount
		if fc == 0 {
			fc = 1
		}
		w.U8(fc)
		if d.Payload == nil && d.PadLen > 0 {
			w.Zeros16(d.PadLen)
		} else {
			w.Bytes16(d.Payload)
		}
	case TypeReport:
		r := p.Report
		if r == nil {
			return errors.New("rdt: TypeReport with nil Report")
		}
		w.U32(r.Expected)
		w.U32(r.Lost)
		w.U16(r.RateKbps)
		w.U16(r.JitterMs)
		w.U16(r.BufferMs)
		w.U16(r.RTTMs)
	case TypeRepair:
		r := p.Repair
		if r == nil {
			return errors.New("rdt: TypeRepair with nil Repair")
		}
		if r.ParityLen() > MaxPayload {
			return ErrTooLarge
		}
		if len(r.Meta) > 0xFF {
			return ErrTooLarge // the member count is one wire byte
		}
		w.U8(uint8(r.Stream))
		w.U8(r.Group)
		w.U32(r.BaseSeq)
		w.U8(uint8(len(r.Meta)))
		for _, m := range r.Meta {
			w.U32(m.Seq)
			w.U32(m.FrameIndex)
			w.U32(m.MediaTime)
			w.U8(m.FragIndex)
			w.U8(m.FragCount)
			w.U8(m.Flags)
			w.U16(m.EncRate)
			w.U16(m.Size)
		}
		if r.Parity == nil && r.PadLen > 0 {
			w.Zeros16(r.PadLen)
		} else {
			w.Bytes16(r.Parity)
		}
	case TypeBufferState:
		b := p.BufferState
		if b == nil {
			return errors.New("rdt: TypeBufferState with nil BufferState")
		}
		w.U32(b.Ms)
		w.U32(b.Target)
	case TypeEndOfStream:
		e := p.EOS
		if e == nil {
			return errors.New("rdt: TypeEndOfStream with nil EOS")
		}
		w.U32(e.FinalSeq)
	case TypeNack:
		nk := p.Nack
		if nk == nil {
			return errors.New("rdt: TypeNack with nil Nack")
		}
		if len(nk.Seqs) > MaxNackSeqs {
			return ErrTooLarge
		}
		w.U8(uint8(nk.Stream))
		w.U8(uint8(len(nk.Seqs)))
		for _, s := range nk.Seqs {
			w.U32(s)
		}
	default:
		return ErrBadType
	}

	out := w.Bytes()
	sum := packet.Checksum(out[start:])
	out[base+4] = byte(sum >> 8)
	out[base+5] = byte(sum)
	return nil
}

// Decode parses a wire packet produced by Encode.
func Decode(b []byte) (*Packet, error) {
	if len(b) < headerLen+2 {
		return nil, ErrTruncated
	}
	if b[0] != magic {
		return nil, ErrBadMagic
	}
	if b[1] != version {
		return nil, ErrBadVersion
	}
	kind := Type(b[2])
	sum := uint16(b[4])<<8 | uint16(b[5])
	body := b[headerLen+2:]
	if packet.Checksum(body) != sum {
		return nil, ErrBadChecksum
	}
	r := packet.NewReader(body)
	p := &Packet{Kind: kind}
	switch kind {
	case TypeData:
		d := &Data{}
		d.Stream = StreamID(r.U8())
		d.Flags = r.U8()
		d.EncRate = r.U16()
		d.Seq = r.U32()
		d.MediaTime = r.U32()
		d.FrameIndex = r.U32()
		d.FragIndex = r.U8()
		d.FragCount = r.U8()
		if d.FragCount == 0 {
			// Encode writes a floor of 1; normalizing here too keeps
			// decode->encode->decode a fixpoint (found by FuzzDecodePacket).
			d.FragCount = 1
		}
		d.Payload = append([]byte(nil), r.Bytes16()...)
		if len(d.Payload) > MaxPayload {
			return nil, ErrTooLarge
		}
		p.Data = d
	case TypeReport:
		rep := &Report{}
		rep.Expected = r.U32()
		rep.Lost = r.U32()
		rep.RateKbps = r.U16()
		rep.JitterMs = r.U16()
		rep.BufferMs = r.U16()
		rep.RTTMs = r.U16()
		p.Report = rep
	case TypeRepair:
		rp := &Repair{}
		rp.Stream = StreamID(r.U8())
		rp.Group = r.U8()
		rp.BaseSeq = r.U32()
		n := int(r.U8())
		for i := 0; i < n; i++ {
			var m RepairMeta
			m.Seq = r.U32()
			m.FrameIndex = r.U32()
			m.MediaTime = r.U32()
			m.FragIndex = r.U8()
			m.FragCount = r.U8()
			m.Flags = r.U8()
			m.EncRate = r.U16()
			m.Size = r.U16()
			rp.Meta = append(rp.Meta, m)
		}
		rp.Parity = append([]byte(nil), r.Bytes16()...)
		if len(rp.Parity) > MaxPayload {
			return nil, ErrTooLarge
		}
		p.Repair = rp
	case TypeBufferState:
		bs := &BufferState{}
		bs.Ms = r.U32()
		bs.Target = r.U32()
		p.BufferState = bs
	case TypeEndOfStream:
		e := &EndOfStream{}
		e.FinalSeq = r.U32()
		p.EOS = e
	case TypeNack:
		nk := &Nack{}
		nk.Stream = StreamID(r.U8())
		n := int(r.U8())
		if n > MaxNackSeqs {
			// Encode refuses oversized request lists; so does the decoder.
			return nil, ErrTooLarge
		}
		for i := 0; i < n; i++ {
			nk.Seqs = append(nk.Seqs, r.U32())
		}
		p.Nack = nk
	default:
		return nil, ErrBadType
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

// WireSize returns the encoded size of p without allocating the encoding,
// used by the simulator to charge link capacity. It mirrors Encode exactly.
func WireSize(p *Packet) int {
	n := headerLen + 2
	switch p.Kind {
	case TypeData:
		n += 1 + 1 + 2 + 4 + 4 + 4 + 1 + 1 + 2 + p.Data.PayloadLen()
	case TypeReport:
		n += 4 + 4 + 2 + 2 + 2 + 2
	case TypeRepair:
		n += 1 + 1 + 4 + 1 + 19*len(p.Repair.Meta) + 2 + p.Repair.ParityLen()
	case TypeBufferState:
		n += 4 + 4
	case TypeEndOfStream:
		n += 4
	case TypeNack:
		n += 1 + 1 + 4*len(p.Nack.Seqs)
	}
	return n
}

// XORParity computes the XOR parity of the payloads, padded to the longest,
// as carried by a Repair packet.
func XORParity(payloads [][]byte) []byte {
	maxLen := 0
	for _, pl := range payloads {
		if len(pl) > maxLen {
			maxLen = len(pl)
		}
	}
	parity := make([]byte, maxLen)
	for _, pl := range payloads {
		for i, b := range pl {
			parity[i] ^= b
		}
	}
	return parity
}

// Reconstruct recovers the single missing payload of a repair group given
// the parity and the other payloads. The caller trims the result to the
// original length if it tracked one.
func Reconstruct(parity []byte, present [][]byte) []byte {
	out := append([]byte(nil), parity...)
	for _, pl := range present {
		for i, b := range pl {
			if i < len(out) {
				out[i] ^= b
			}
		}
	}
	return out
}
