package rdt

import (
	"bytes"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, p *Packet) *Packet {
	t.Helper()
	b, err := Encode(p)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if len(b) != WireSize(p) {
		t.Fatalf("WireSize=%d but encoding is %d bytes", WireSize(p), len(b))
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

func TestDataRoundTrip(t *testing.T) {
	d := &Data{
		Stream: StreamVideo, Seq: 42, MediaTime: 123456, Flags: FlagKeyframe,
		EncRate: 225, FrameIndex: 7, FragIndex: 1, FragCount: 3,
		Payload: []byte("frame-bytes"),
	}
	got := roundTrip(t, &Packet{Kind: TypeData, Data: d})
	g := got.Data
	if g.Stream != d.Stream || g.Seq != d.Seq || g.MediaTime != d.MediaTime ||
		g.Flags != d.Flags || g.EncRate != d.EncRate || g.FrameIndex != d.FrameIndex ||
		g.FragIndex != d.FragIndex || g.FragCount != d.FragCount ||
		!bytes.Equal(g.Payload, d.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", g, d)
	}
}

func TestDataPadLenEquivalence(t *testing.T) {
	// A PadLen packet must encode to the same size as a real zero payload
	// and decode to those zeros.
	pad := &Packet{Kind: TypeData, Data: &Data{Stream: StreamVideo, Seq: 1, PadLen: 100}}
	real := &Packet{Kind: TypeData, Data: &Data{Stream: StreamVideo, Seq: 1, Payload: make([]byte, 100)}}
	bp, _ := Encode(pad)
	br, _ := Encode(real)
	// FragCount defaults to 1 on the wire for both.
	if !bytes.Equal(bp, br) {
		t.Fatal("PadLen encoding differs from explicit zero payload")
	}
	if WireSize(pad) != WireSize(real) {
		t.Fatal("WireSize differs between PadLen and explicit payload")
	}
	got, err := Decode(bp)
	if err != nil || got.Data.PayloadLen() != 100 {
		t.Fatalf("decode: %v len=%d", err, got.Data.PayloadLen())
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := &Report{Expected: 30, Lost: 2, RateKbps: 225, JitterMs: 18, BufferMs: 6200, RTTMs: 95}
	got := roundTrip(t, &Packet{Kind: TypeReport, Report: r})
	if *got.Report != *r {
		t.Fatalf("report mismatch: %+v vs %+v", got.Report, r)
	}
}

func TestRepairRoundTripWithMeta(t *testing.T) {
	rp := &Repair{
		Stream: StreamVideo, BaseSeq: 100, Group: 2,
		Meta: []RepairMeta{
			{Seq: 100, FrameIndex: 50, MediaTime: 5000, FragIndex: 0, FragCount: 1, Flags: FlagKeyframe, EncRate: 150, Size: 800},
			{Seq: 101, FrameIndex: 51, MediaTime: 5066, FragIndex: 0, FragCount: 1, EncRate: 150, Size: 300},
		},
		Parity: []byte{1, 2, 3, 4},
	}
	got := roundTrip(t, &Packet{Kind: TypeRepair, Repair: rp})
	g := got.Repair
	if g.BaseSeq != 100 || g.Group != 2 || len(g.Meta) != 2 {
		t.Fatalf("repair header mismatch: %+v", g)
	}
	if g.Meta[0] != rp.Meta[0] || g.Meta[1] != rp.Meta[1] {
		t.Fatalf("meta mismatch: %+v", g.Meta)
	}
	if m, ok := g.MetaFor(101); !ok || m.Size != 300 {
		t.Fatal("MetaFor lookup failed")
	}
	if _, ok := g.MetaFor(999); ok {
		t.Fatal("MetaFor should miss uncovered seq")
	}
}

func TestBufferStateAndEOSRoundTrip(t *testing.T) {
	bs := roundTrip(t, &Packet{Kind: TypeBufferState, BufferState: &BufferState{Ms: 4200, Target: 8000}})
	if bs.BufferState.Ms != 4200 || bs.BufferState.Target != 8000 {
		t.Fatal("bufferstate mismatch")
	}
	eos := roundTrip(t, &Packet{Kind: TypeEndOfStream, EOS: &EndOfStream{FinalSeq: 999}})
	if eos.EOS.FinalSeq != 999 {
		t.Fatal("eos mismatch")
	}
}

func TestNackRoundTrip(t *testing.T) {
	nk := &Nack{Stream: StreamVideo, Seqs: []uint32{5, 9, 11}}
	got := roundTrip(t, &Packet{Kind: TypeNack, Nack: nk})
	if got.Nack.Stream != StreamVideo || len(got.Nack.Seqs) != 3 || got.Nack.Seqs[2] != 11 {
		t.Fatalf("nack mismatch: %+v", got.Nack)
	}
}

func TestNackTooManySeqs(t *testing.T) {
	seqs := make([]uint32, MaxNackSeqs+1)
	if _, err := Encode(&Packet{Kind: TypeNack, Nack: &Nack{Seqs: seqs}}); err != ErrTooLarge {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	b, _ := Encode(&Packet{Kind: TypeReport, Report: &Report{Expected: 10}})
	// Flip a body byte: checksum must catch it.
	b[len(b)-1] ^= 0xFF
	if _, err := Decode(b); err != ErrBadChecksum {
		t.Fatalf("want ErrBadChecksum, got %v", err)
	}
}

func TestDecodeRejectsBadMagicVersionTruncation(t *testing.T) {
	b, _ := Encode(&Packet{Kind: TypeEndOfStream, EOS: &EndOfStream{}})
	bad := append([]byte(nil), b...)
	bad[0] = 0x00
	if _, err := Decode(bad); err != ErrBadMagic {
		t.Fatalf("magic: %v", err)
	}
	bad = append([]byte(nil), b...)
	bad[1] = 99
	if _, err := Decode(bad); err != ErrBadVersion {
		t.Fatalf("version: %v", err)
	}
	if _, err := Decode(b[:3]); err != ErrTruncated {
		t.Fatalf("truncated: %v", err)
	}
}

func TestEncodeNilUnionField(t *testing.T) {
	for _, kind := range []Type{TypeData, TypeReport, TypeRepair, TypeBufferState, TypeEndOfStream, TypeNack} {
		if _, err := Encode(&Packet{Kind: kind}); err == nil {
			t.Errorf("kind %v with nil body should fail", kind)
		}
	}
	if _, err := Encode(&Packet{Kind: Type(77)}); err != ErrBadType {
		t.Fatalf("unknown type: %v", err)
	}
}

func TestOversizedPayloadRejected(t *testing.T) {
	d := &Data{PadLen: MaxPayload + 1}
	if _, err := Encode(&Packet{Kind: TypeData, Data: d}); err != ErrTooLarge {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

// Property: Data packets round-trip for arbitrary field values, and
// WireSize always equals the encoding length.
func TestPropertyDataRoundTrip(t *testing.T) {
	f := func(stream bool, seq, mt, fi uint32, flags, fragIdx uint8, fragCount uint8, enc uint16, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		if fragCount == 0 {
			fragCount = 1
		}
		s := StreamAudio
		if stream {
			s = StreamVideo
		}
		d := &Data{Stream: s, Seq: seq, MediaTime: mt, FrameIndex: fi, Flags: flags,
			FragIndex: fragIdx, FragCount: fragCount, EncRate: enc, Payload: payload}
		p := &Packet{Kind: TypeData, Data: d}
		b, err := Encode(p)
		if err != nil || len(b) != WireSize(p) {
			return false
		}
		got, err := Decode(b)
		if err != nil {
			return false
		}
		g := got.Data
		return g.Seq == seq && g.MediaTime == mt && g.FrameIndex == fi &&
			g.Flags == flags && g.EncRate == enc && bytes.Equal(g.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: XOR parity reconstructs any single missing payload.
func TestPropertyXORReconstruct(t *testing.T) {
	f := func(seed int64, missingIdx uint8) bool {
		payloads := [][]byte{
			{byte(seed), 2, 3},
			{4, 5},
			{6, 7, 8, byte(seed >> 8)},
			{9},
		}
		missing := int(missingIdx) % len(payloads)
		parity := XORParity(payloads)
		var present [][]byte
		for i, pl := range payloads {
			if i != missing {
				present = append(present, pl)
			}
		}
		rec := Reconstruct(parity, present)
		want := payloads[missing]
		for i, b := range want {
			if rec[i] != b {
				return false
			}
		}
		// Bytes beyond the original length must be zero.
		for i := len(want); i < len(rec); i++ {
			if rec[i] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTypeStrings(t *testing.T) {
	for typ, want := range map[Type]string{
		TypeData: "DATA", TypeReport: "REPORT", TypeRepair: "REPAIR",
		TypeBufferState: "BUFFERSTATE", TypeEndOfStream: "EOS", TypeNack: "NACK",
	} {
		if typ.String() != want {
			t.Errorf("%d.String()=%q want %q", typ, typ.String(), want)
		}
	}
}
