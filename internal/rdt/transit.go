package rdt

import "realtracer/internal/netsim"

// Shard-transit snapshots for RDT packets (netsim.Transferable /
// TransitReleasable, matched structurally). RDT packets in the simulator
// are arena-backed and rewritten in place across cells, so a packet
// crossing a shard boundary must carry its own copy of the active variant
// and every slice it references. The copies are pooled: one transitPacket
// holds the Packet head, inline storage for every variant and reusable
// backing slices, leased from the sending shard's transit pool and released
// by the receiving transport once the delivery callback has consumed it.
//
// Receivers may retain pointers INTO a released copy only as map keys /
// presence markers, never for a later dereference — the same staleness
// contract the arena-backed originals already impose (player.haveSeq keeps
// *Data pointers purely as a seen-set; the server snapshots Report values
// before its check timer reads them).

// transitClass is the pool slot for RDT transit snapshots.
var transitClass = netsim.RegisterTransitClass()

// transitPacket is the pooled snapshot storage: the Packet head plus
// inline variants and reusable slice backings. Packet.transit points back
// here on a leased copy and is nil on every original, which is what makes
// TransitRelease a safe no-op outside sharded runs.
type transitPacket struct {
	pkt    Packet
	leased bool

	data   Data
	report Report
	repair Repair
	buf    BufferState
	eos    EndOfStream
	nack   Nack

	payload []byte
	parity  []byte
	meta    []RepairMeta
	seqs    []uint32
}

// TransitCopy implements netsim.Transferable.
func (p *Packet) TransitCopy(tp *netsim.TransitPool) any {
	var t *transitPacket
	if v := tp.Get(transitClass); v != nil {
		t = v.(*transitPacket)
	} else {
		t = &transitPacket{}
		t.pkt.transit = t
	}
	t.leased = true
	cp := &t.pkt
	cp.Kind = p.Kind
	cp.Data, cp.Report, cp.Repair, cp.BufferState, cp.EOS, cp.Nack = nil, nil, nil, nil, nil, nil
	if p.Data != nil {
		t.data = *p.Data
		if p.Data.Payload != nil {
			t.payload = append(t.payload[:0], p.Data.Payload...)
			t.data.Payload = t.payload
		}
		cp.Data = &t.data
	}
	if p.Report != nil {
		t.report = *p.Report
		cp.Report = &t.report
	}
	if p.Repair != nil {
		t.repair = *p.Repair
		t.meta = append(t.meta[:0], p.Repair.Meta...)
		t.repair.Meta = t.meta
		if p.Repair.Parity != nil {
			t.parity = append(t.parity[:0], p.Repair.Parity...)
			t.repair.Parity = t.parity
		} else {
			t.repair.Parity = nil
		}
		cp.Repair = &t.repair
	}
	if p.BufferState != nil {
		t.buf = *p.BufferState
		cp.BufferState = &t.buf
	}
	if p.EOS != nil {
		t.eos = *p.EOS
		cp.EOS = &t.eos
	}
	if p.Nack != nil {
		t.nack = *p.Nack
		t.seqs = append(t.seqs[:0], p.Nack.Seqs...)
		t.nack.Seqs = t.seqs
		cp.Nack = &t.nack
	}
	return cp
}

// TransitRelease implements netsim.TransitReleasable: a leased copy goes
// back to the receiving shard's pool; originals (and double releases) are
// no-ops.
func (p *Packet) TransitRelease(tp *netsim.TransitPool) {
	t := p.transit
	if t == nil || !t.leased {
		return
	}
	t.leased = false
	tp.Put(transitClass, t)
}
