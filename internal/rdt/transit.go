package rdt

// TransitCopy returns a deep snapshot of the packet for shard transit
// (netsim.Transferable, matched structurally). RDT packets in the simulator
// are arena-backed and rewritten in place across cells, so a packet crossing
// a shard boundary must carry its own copy of the active variant and every
// slice it references.
func (p *Packet) TransitCopy() any {
	cp := *p
	if p.Data != nil {
		d := *p.Data
		d.Payload = append([]byte(nil), p.Data.Payload...)
		cp.Data = &d
	}
	if p.Report != nil {
		r := *p.Report
		cp.Report = &r
	}
	if p.Repair != nil {
		r := *p.Repair
		r.Meta = append([]RepairMeta(nil), p.Repair.Meta...)
		r.Parity = append([]byte(nil), p.Repair.Parity...)
		cp.Repair = &r
	}
	if p.BufferState != nil {
		b := *p.BufferState
		cp.BufferState = &b
	}
	if p.EOS != nil {
		e := *p.EOS
		cp.EOS = &e
	}
	if p.Nack != nil {
		n := *p.Nack
		n.Seqs = append([]uint32(nil), p.Nack.Seqs...)
		cp.Nack = &n
	}
	return &cp
}
