package rtsp

import (
	"sort"

	"realtracer/internal/snap"
)

// Persist writes the message field-exactly for a world checkpoint. The wire
// codec (Marshal/Parse) is deliberately not reused here: it normalizes empty
// reason phrases and trims malformed headers, and a checkpoint must
// reproduce the in-memory message a receiver would have seen, not its
// canonicalized wire form.
func (m *Message) Persist(sw *snap.Writer) {
	sw.Tag("rtsp")
	sw.Bool(m.Request)
	sw.Str(m.Method)
	sw.Str(m.URL)
	sw.Int(m.Status)
	sw.Str(m.Reason)
	sw.Int(m.CSeq)
	keys := make([]string, 0, len(m.Header))
	for k := range m.Header {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sw.U32(uint32(len(keys)))
	for _, k := range keys {
		sw.Str(k)
		sw.Str(m.Header[k])
	}
	sw.Bytes(m.Body)
}

// RestoreMessage reads a message written by Persist.
func RestoreMessage(sr *snap.Reader) *Message {
	sr.Tag("rtsp")
	m := &Message{}
	m.Request = sr.Bool()
	m.Method = sr.Str()
	m.URL = sr.Str()
	m.Status = sr.Int()
	m.Reason = sr.Str()
	m.CSeq = sr.Int()
	n := int(sr.U32())
	m.Header = make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := sr.Str()
		m.Header[k] = sr.Str()
	}
	if b := sr.Bytes(); len(b) > 0 {
		m.Body = b
	}
	return m
}
