package rtsp

import (
	"bytes"
	"testing"
)

// corpusMessages are real session exchanges: the request sequence a
// RealPlayer/RealTracer session sends and the responses a RealServer
// returns, as produced by this codec on the wire.
func corpusMessages() []*Message {
	describe := NewRequest(MethodDescribe, "rtsp://cnn.us/clip000.rm", 1)
	describe.Set("Accept", "application/sdp")
	describe.Set("Bandwidth", "350")

	descResp := NewResponse(describe, StatusOK)
	descResp.Body = []byte("title=clip000\nduration_ms=272000\nscalable=true\nlive=false\nenc=225/16/20/320x240\nenc=80/11/15/176x132\nenc=20/8/7.5/160x120\n")

	setup := NewRequest(MethodSetup, "rtsp://cnn.us/clip000.rm", 2)
	setup.Set("Transport", TransportSpec{Protocol: "udp", ClientDataAddr: "user00.us:10001"}.Format())
	setup.Set("Bandwidth", "350")

	setupResp := NewResponse(setup, StatusOK)
	setupResp.Set("Session", "sess-1")
	setupResp.Set("Transport", TransportSpec{Protocol: "udp", ServerDataAddr: "cnn.us:6970"}.Format())

	play := NewRequest(MethodPlay, "rtsp://cnn.us/clip000.rm", 3)
	play.Set("Session", "sess-1")
	play.Set("Range", "npt=0-")

	unavailable := NewResponse(describe, StatusUnavailable)
	teardown := NewRequest(MethodTeardown, "rtsp://cnn.us/clip000.rm", 4)
	teardown.Set("Session", "sess-1")

	options := NewRequest(MethodOptions, "*", 0)
	setParam := NewRequest(MethodSetParameter, "rtsp://cnn.us/clip000.rm", 5)
	setParam.Set("Ping", "1")

	return []*Message{describe, descResp, setup, setupResp, play, unavailable, teardown, options, setParam}
}

// FuzzParseRequest fuzzes the RTSP text parser with real exchanges as the
// seed corpus. Any accepted input must marshal back to a stable wire form:
// Marshal(Parse(b)) must itself parse, and one round of normalization must
// reach a fixpoint. Parsing must never panic or allocate beyond the input
// (a hostile Content-Length used to reserve arbitrary memory).
func FuzzParseRequest(f *testing.F) {
	for _, m := range corpusMessages() {
		f.Add(m.Marshal())
	}
	// Hand-written edge cases: bare CR, empty header values, huge and
	// negative Content-Lengths, missing terminator, truncated body.
	f.Add([]byte("PLAY rtsp://x RTSP/1.0\r\nCSeq: 1\r\nX: \r\n\r\n"))
	f.Add([]byte("RTSP/1.0 200 \r\nCSeq: 7\r\n\r\n"))
	f.Add([]byte("DESCRIBE u RTSP/1.0\nCSeq: 2\nContent-Length: 999999999\n\nhi"))
	f.Add([]byte("DESCRIBE u RTSP/1.0\r\nCSeq: 2\r\nContent-Length: -3\r\n\r\n"))
	f.Add([]byte("SETUP u RTSP/1.0\r\nCSeq: 3\r\nContent-Length: 5\r\n\r\nab"))
	f.Add([]byte("GET u HTTP/1.0\r\n\r\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Parse(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		b1 := m.Marshal()
		m1, err := Parse(b1)
		if err != nil {
			t.Fatalf("re-parse of marshaled message failed: %v\nwire: %q", err, b1)
		}
		b2 := m1.Marshal()
		if !bytes.Equal(b1, b2) {
			t.Fatalf("marshal/parse not a fixpoint:\nfirst:  %q\nsecond: %q", b1, b2)
		}
		if len(m1.Body) != len(m.Body) {
			t.Fatalf("body length changed across round trip: %d -> %d", len(m.Body), len(m1.Body))
		}
	})
}

// FuzzParseTransport fuzzes the SETUP Transport header parser the same
// way: accepted specs must format/parse to a fixpoint.
func FuzzParseTransport(f *testing.F) {
	f.Add("proto=udp;client_addr=user00.us:10001")
	f.Add("proto=tcp;server_addr=cnn.us:5540")
	f.Add("proto=udp")
	f.Add("proto=rtp/avp;unicast")
	f.Add("")
	f.Fuzz(func(t *testing.T, v string) {
		spec, err := ParseTransport(v)
		if err != nil {
			return
		}
		again, err := ParseTransport(spec.Format())
		if err != nil {
			t.Fatalf("re-parse of formatted spec failed: %v (%q)", err, spec.Format())
		}
		if again != spec {
			t.Fatalf("transport spec round trip changed: %+v -> %+v", spec, again)
		}
	})
}
