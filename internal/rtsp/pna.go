package rtsp

import (
	"errors"

	"realtracer/internal/packet"
)

// PNA is the legacy Progressive Networks Audio request kept for backward
// compatibility with pre-RTSP RealServers (paper Section II.A). Only the
// initial clip request is modeled: nearly all clips in the study used RTSP,
// and the session layer falls back to RTSP immediately when a PNA probe is
// refused.

// PNARequest asks a legacy server to start streaming a clip.
type PNARequest struct {
	ClipURL   string
	ClientID  string
	Bandwidth uint32 // client's maximum bit rate, Kbps
}

const pnaMagic = 0x504E // "PN"

// MarshalPNA encodes the request in the legacy binary format.
func MarshalPNA(r *PNARequest) []byte {
	w := packet.NewWriter(16 + len(r.ClipURL) + len(r.ClientID))
	w.U16(pnaMagic)
	w.U32(r.Bandwidth)
	w.String16(r.ClipURL)
	w.String16(r.ClientID)
	return w.Bytes()
}

// ErrNotPNA is returned when the buffer does not begin with the PNA magic.
var ErrNotPNA = errors.New("rtsp: not a PNA request")

// ParsePNA decodes a legacy request.
func ParsePNA(b []byte) (*PNARequest, error) {
	r := packet.NewReader(b)
	if r.U16() != pnaMagic {
		return nil, ErrNotPNA
	}
	req := &PNARequest{}
	req.Bandwidth = r.U32()
	req.ClipURL = r.String16()
	req.ClientID = r.String16()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return req, nil
}
