// Package rtsp implements the subset of the Real Time Streaming Protocol
// [SRL98] that a RealServer/RealPlayer session uses: DESCRIBE, SETUP, PLAY,
// PAUSE, TEARDOWN, OPTIONS and SET_PARAMETER requests with CSeq-matched
// responses, in the standard text wire format. The control connection always
// runs over TCP (paper Section II.A); the negotiated data connection is TCP
// or UDP.
//
// A minimal PNA (Progressive Networks Audio) request stub is included for
// the backward-compatibility path older RealServers kept alive.
package rtsp

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net/textproto"
	"sort"
	"strconv"
	"strings"
)

// Version is the protocol version emitted on the wire.
const Version = "RTSP/1.0"

// Methods used by the session layer.
const (
	MethodOptions      = "OPTIONS"
	MethodDescribe     = "DESCRIBE"
	MethodSetup        = "SETUP"
	MethodPlay         = "PLAY"
	MethodPause        = "PAUSE"
	MethodTeardown     = "TEARDOWN"
	MethodSetParameter = "SET_PARAMETER"
)

// Status codes used by the session layer.
const (
	StatusOK            = 200
	StatusNotFound      = 404
	StatusUnavailable   = 453 // "Not Enough Bandwidth" repurposed: clip temporarily unavailable
	StatusInternalError = 500
)

// StatusText returns the reason phrase for a status code.
func StatusText(code int) string {
	switch code {
	case StatusOK:
		return "OK"
	case StatusNotFound:
		return "Not Found"
	case StatusUnavailable:
		return "Not Enough Bandwidth"
	case StatusInternalError:
		return "Internal Server Error"
	default:
		return "Unknown"
	}
}

// Message is an RTSP request or response.
type Message struct {
	// Request is true for requests; false for responses.
	Request bool
	// Method and URL are set on requests.
	Method string
	URL    string
	// Status and Reason are set on responses.
	Status int
	Reason string
	// CSeq pairs responses with requests.
	CSeq int
	// Header holds the remaining headers (canonicalized keys).
	Header map[string]string
	// Body is the optional payload (e.g. a clip description).
	Body []byte

	// transit points back to the pooled snapshot storage on a leased
	// shard-transit copy; nil on every original.
	transit *transitMessage
}

// NewRequest builds a request message.
func NewRequest(method, url string, cseq int) *Message {
	return &Message{Request: true, Method: method, URL: url, CSeq: cseq, Header: map[string]string{}}
}

// NewResponse builds a response to req with the given status.
func NewResponse(req *Message, status int) *Message {
	return &Message{Status: status, Reason: StatusText(status), CSeq: req.CSeq, Header: map[string]string{}}
}

// Set sets a header value.
func (m *Message) Set(key, value string) {
	if m.Header == nil {
		m.Header = map[string]string{}
	}
	m.Header[canonical(key)] = value
}

// Get returns a header value or "".
func (m *Message) Get(key string) string { return m.Header[canonical(key)] }

// GetInt parses a header as an integer, returning def when absent or
// malformed.
func (m *Message) GetInt(key string, def int) int {
	v := m.Get(key)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

// canonical title-cases dash-separated header keys ("content-length" ->
// "Content-Length") via net/textproto, which is byte-wise over ASCII and
// therefore idempotent on hostile keys — FuzzParseRequest found a
// strings.ToLower/ToUpper version growing a \xff key by three replacement-
// char bytes per parse/marshal round.
func canonical(key string) string { return textproto.CanonicalMIMEHeaderKey(key) }

// Marshal renders the message in wire format.
func (m *Message) Marshal() []byte {
	var b bytes.Buffer
	if m.Request {
		fmt.Fprintf(&b, "%s %s %s\r\n", m.Method, m.URL, Version)
	} else {
		reason := m.Reason
		if reason == "" {
			reason = StatusText(m.Status)
		}
		fmt.Fprintf(&b, "%s %d %s\r\n", Version, m.Status, reason)
	}
	fmt.Fprintf(&b, "CSeq: %d\r\n", m.CSeq)
	if len(m.Body) > 0 {
		fmt.Fprintf(&b, "Content-Length: %d\r\n", len(m.Body))
	}
	keys := make([]string, 0, len(m.Header))
	for k := range m.Header {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s: %s\r\n", k, m.Header[k])
	}
	b.WriteString("\r\n")
	b.Write(m.Body)
	return b.Bytes()
}

// Parse errors.
var (
	ErrMalformed     = errors.New("rtsp: malformed message")
	ErrTruncatedBody = errors.New("rtsp: body shorter than Content-Length")
)

// Parse decodes a wire message produced by Marshal (or any conforming RTSP
// peer).
func Parse(data []byte) (*Message, error) {
	r := bufio.NewReader(bytes.NewReader(data))
	line, err := r.ReadString('\n')
	if err != nil {
		return nil, ErrMalformed
	}
	line = strings.TrimRight(line, "\r\n")
	m := &Message{Header: map[string]string{}}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 3 {
		return nil, ErrMalformed
	}
	if strings.HasPrefix(parts[0], "RTSP/") {
		m.Request = false
		status, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, ErrMalformed
		}
		m.Status = status
		m.Reason = parts[2]
	} else {
		m.Request = true
		m.Method = parts[0]
		m.URL = parts[1]
		if !strings.HasPrefix(parts[2], "RTSP/") {
			return nil, ErrMalformed
		}
	}
	contentLength := 0
	for {
		h, err := r.ReadString('\n')
		if err != nil {
			return nil, ErrMalformed
		}
		h = strings.TrimRight(h, "\r\n")
		if h == "" {
			break
		}
		i := strings.Index(h, ":")
		if i < 0 {
			return nil, ErrMalformed
		}
		key := canonical(strings.TrimSpace(h[:i]))
		val := strings.TrimSpace(h[i+1:])
		switch key {
		case "Cseq":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, ErrMalformed
			}
			m.CSeq = n
		case "Content-Length":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, ErrMalformed
			}
			contentLength = n
		default:
			m.Header[key] = val
		}
	}
	if contentLength > 0 {
		// Bound the allocation by the input size before trusting the header:
		// a hostile Content-Length must not reserve gigabytes (found by
		// FuzzParseRequest). The body cannot be longer than what arrived.
		if contentLength > len(data) {
			return nil, ErrTruncatedBody
		}
		body := make([]byte, contentLength)
		n, _ := r.Read(body)
		for n < contentLength {
			more, err := r.Read(body[n:])
			if more == 0 || err != nil {
				return nil, ErrTruncatedBody
			}
			n += more
		}
		m.Body = body
	}
	return m, nil
}

// WireSize returns the marshaled size without retaining the encoding.
func (m *Message) WireSize() int { return len(m.Marshal()) }

// Transport header helpers: the SETUP exchange negotiates the data channel.

// TransportSpec is the parsed Transport header of a SETUP exchange.
type TransportSpec struct {
	// Protocol is "tcp" or "udp" for the data connection.
	Protocol string
	// ClientDataAddr is where UDP data should be sent (client's data port).
	ClientDataAddr string
	// ServerDataAddr is the server's data source address (response only).
	ServerDataAddr string
}

// Format renders the spec as a Transport header value.
func (t TransportSpec) Format() string {
	var parts []string
	parts = append(parts, "proto="+t.Protocol)
	if t.ClientDataAddr != "" {
		parts = append(parts, "client_addr="+t.ClientDataAddr)
	}
	if t.ServerDataAddr != "" {
		parts = append(parts, "server_addr="+t.ServerDataAddr)
	}
	return strings.Join(parts, ";")
}

// ParseTransport parses a Transport header value.
func ParseTransport(v string) (TransportSpec, error) {
	var t TransportSpec
	if v == "" {
		return t, errors.New("rtsp: empty Transport header")
	}
	for _, part := range strings.Split(v, ";") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return t, fmt.Errorf("rtsp: bad Transport item %q", part)
		}
		switch kv[0] {
		case "proto":
			t.Protocol = kv[1]
		case "client_addr":
			t.ClientDataAddr = kv[1]
		case "server_addr":
			t.ServerDataAddr = kv[1]
		}
	}
	if t.Protocol != "tcp" && t.Protocol != "udp" {
		return t, fmt.Errorf("rtsp: unknown data protocol %q", t.Protocol)
	}
	return t, nil
}
