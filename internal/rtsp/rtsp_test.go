package rtsp

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	req := NewRequest(MethodDescribe, "rtsp://host/clip.rm", 7)
	req.Set("Bandwidth", "350")
	req.Set("transport", "proto=udp")
	got, err := Parse(req.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Request || got.Method != MethodDescribe || got.URL != "rtsp://host/clip.rm" || got.CSeq != 7 {
		t.Fatalf("request line mismatch: %+v", got)
	}
	if got.Get("bandwidth") != "350" {
		t.Fatal("header canonicalization broken")
	}
	if got.Get("Transport") != "proto=udp" {
		t.Fatal("transport header lost")
	}
}

func TestResponseRoundTripWithBody(t *testing.T) {
	req := NewRequest(MethodDescribe, "rtsp://h/c", 3)
	resp := NewResponse(req, StatusOK)
	resp.Body = []byte("duration_ms=60000\nscalable=true\n")
	got, err := Parse(resp.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Request || got.Status != StatusOK || got.CSeq != 3 {
		t.Fatalf("response mismatch: %+v", got)
	}
	if !bytes.Equal(got.Body, resp.Body) {
		t.Fatalf("body mismatch: %q", got.Body)
	}
}

func TestStatusTextAndReasons(t *testing.T) {
	for code, want := range map[int]string{
		StatusOK: "OK", StatusNotFound: "Not Found",
		StatusUnavailable: "Not Enough Bandwidth", StatusInternalError: "Internal Server Error",
	} {
		if StatusText(code) != want {
			t.Errorf("StatusText(%d)=%q", code, StatusText(code))
		}
	}
	resp := NewResponse(NewRequest(MethodPlay, "u", 1), StatusUnavailable)
	if !strings.Contains(string(resp.Marshal()), "453 Not Enough Bandwidth") {
		t.Fatal("reason phrase missing from status line")
	}
}

func TestGetInt(t *testing.T) {
	m := NewRequest(MethodSetup, "u", 1)
	m.Set("Bandwidth", "128")
	if m.GetInt("Bandwidth", 0) != 128 {
		t.Fatal("GetInt failed")
	}
	if m.GetInt("Missing", 42) != 42 {
		t.Fatal("default not applied")
	}
	m.Set("Bad", "xyz")
	if m.GetInt("Bad", 9) != 9 {
		t.Fatal("malformed int should fall back")
	}
}

func TestParseMalformed(t *testing.T) {
	cases := []string{
		"",
		"GARBAGE\r\n\r\n",
		"DESCRIBE rtsp://x\r\n\r\n",          // missing version
		"DESCRIBE rtsp://x HTTP/1.1\r\n\r\n", // wrong protocol
		"RTSP/1.0 abc OK\r\nCSeq: 1\r\n\r\n", // non-numeric status
		"PLAY u RTSP/1.0\r\nno-colon-line\r\n\r\n", // bad header
		"PLAY u RTSP/1.0\r\nCSeq: x\r\n\r\n",       // bad cseq
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c)); err == nil {
			t.Errorf("accepted malformed message %q", c)
		}
	}
}

func TestParseTruncatedBody(t *testing.T) {
	raw := "RTSP/1.0 200 OK\r\nCSeq: 1\r\nContent-Length: 50\r\n\r\nshort"
	if _, err := Parse([]byte(raw)); err != ErrTruncatedBody {
		t.Fatalf("want ErrTruncatedBody, got %v", err)
	}
}

// Property: any request with sane header values round-trips.
func TestPropertyRequestRoundTrip(t *testing.T) {
	methods := []string{MethodOptions, MethodDescribe, MethodSetup, MethodPlay, MethodPause, MethodTeardown}
	f := func(mIdx uint8, cseq uint16, bandwidth uint16, body []byte) bool {
		if bytes.ContainsAny(body, "\x00") {
			body = nil
		}
		m := NewRequest(methods[int(mIdx)%len(methods)], "rtsp://server/clip.rm", int(cseq))
		m.Set("Bandwidth", "100")
		m.Body = body
		got, err := Parse(m.Marshal())
		if err != nil {
			return false
		}
		return got.Method == m.Method && got.CSeq == m.CSeq && bytes.Equal(got.Body, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestTransportSpecRoundTrip(t *testing.T) {
	spec := TransportSpec{Protocol: "udp", ClientDataAddr: "cli:12345", ServerDataAddr: "srv:6970"}
	got, err := ParseTransport(spec.Format())
	if err != nil {
		t.Fatal(err)
	}
	if got != spec {
		t.Fatalf("transport mismatch: %+v vs %+v", got, spec)
	}
}

func TestTransportSpecErrors(t *testing.T) {
	if _, err := ParseTransport(""); err == nil {
		t.Fatal("empty transport accepted")
	}
	if _, err := ParseTransport("proto=icmp"); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := ParseTransport("nonsense"); err == nil {
		t.Fatal("missing = accepted")
	}
}

func TestPNARoundTrip(t *testing.T) {
	req := &PNARequest{ClipURL: "pnm://srv/old.rm", ClientID: "player8", Bandwidth: 56}
	got, err := ParsePNA(MarshalPNA(req))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *req {
		t.Fatalf("pna mismatch: %+v", got)
	}
}

func TestPNARejectsRTSP(t *testing.T) {
	if _, err := ParsePNA([]byte("DESCRIBE u RTSP/1.0\r\n\r\n")); err != ErrNotPNA {
		t.Fatalf("want ErrNotPNA, got %v", err)
	}
}

func TestWireSizeMatchesMarshal(t *testing.T) {
	m := NewRequest(MethodPlay, "rtsp://h/c", 2)
	m.Set("Session", "sess-1")
	if m.WireSize() != len(m.Marshal()) {
		t.Fatal("WireSize disagrees with Marshal")
	}
}

func TestHeaderCanonicalization(t *testing.T) {
	m := &Message{Header: map[string]string{}}
	m.Set("content-TYPE", "text/plain")
	if m.Get("Content-Type") != "text/plain" {
		t.Fatal("canonicalization failed")
	}
}
