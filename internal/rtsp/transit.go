package rtsp

import "realtracer/internal/netsim"

// Shard-transit snapshots for RTSP messages (netsim.Transferable /
// TransitReleasable, matched structurally). Control messages are consumed
// synchronously by their receive callbacks — the server parses the method
// and headers, the player copies what it keeps (session id string, clip
// description via ParseClipDesc) — so the snapshot can be recycled by the
// receiving transport as soon as the callback returns. The header map and
// body backing are reused across leases.

// transitClass is the pool slot for RTSP transit snapshots.
var transitClass = netsim.RegisterTransitClass()

// transitMessage is the pooled snapshot storage: a Message head plus a
// reusable header map and body backing. Message.transit points back here on
// a leased copy and is nil on every original, making TransitRelease a safe
// no-op outside sharded runs.
type transitMessage struct {
	msg    Message
	leased bool
	hdr    map[string]string
	body   []byte
}

// TransitCopy implements netsim.Transferable.
func (m *Message) TransitCopy(tp *netsim.TransitPool) any {
	var t *transitMessage
	if v := tp.Get(transitClass); v != nil {
		t = v.(*transitMessage)
	} else {
		t = &transitMessage{}
	}
	t.leased = true
	t.msg = *m
	t.msg.transit = t
	if m.Header != nil {
		if t.hdr == nil {
			t.hdr = make(map[string]string, len(m.Header))
		} else {
			clear(t.hdr)
		}
		for k, v := range m.Header {
			t.hdr[k] = v
		}
		t.msg.Header = t.hdr
	} else {
		t.msg.Header = nil
	}
	if m.Body != nil {
		t.body = append(t.body[:0], m.Body...)
		t.msg.Body = t.body
	} else {
		t.msg.Body = nil
	}
	return &t.msg
}

// TransitRelease implements netsim.TransitReleasable: a leased copy goes
// back to the receiving shard's pool; originals (and double releases) are
// no-ops.
func (m *Message) TransitRelease(tp *netsim.TransitPool) {
	t := m.transit
	if t == nil || !t.leased {
		return
	}
	t.leased = false
	tp.Put(transitClass, t)
}
