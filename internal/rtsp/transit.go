package rtsp

// TransitCopy returns a deep snapshot of the message for shard transit
// (netsim.Transferable, matched structurally): the header map and body are
// copied so the receiver shares no mutable memory with the sender.
func (m *Message) TransitCopy() any {
	cp := *m
	if m.Header != nil {
		cp.Header = make(map[string]string, len(m.Header))
		for k, v := range m.Header {
			cp.Header[k] = v
		}
	}
	if m.Body != nil {
		cp.Body = append([]byte(nil), m.Body...)
	}
	return &cp
}
