package server

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"realtracer/internal/media"
	"realtracer/internal/ratecontrol"
	"realtracer/internal/rdt"
	"realtracer/internal/simclock"
	"realtracer/internal/snap"
	"realtracer/internal/transport"
	"realtracer/internal/vclock"
)

// Checkpoint/restore for the server engine. A server's serialized state is:
//
//   - the availability/diagnostic counters and the session ID cursor;
//   - every control connection (including between-session ones reachable
//     only through the ctlConns track list), each with the ID of the session
//     it most recently SETUP;
//   - data connections accepted but not yet bound by a DataHello;
//   - every streaming session: transport conns, rate controller, frame
//     source cursor, pace/check timers as (At, seq) records, retransmit
//     window, FEC accumulation and SureStream switching state.
//
// The availability RNG (cfg.Rand) is owned by whoever built the Config — in
// a study world that is the world itself, which persists the draw count in
// its own section and hands the restored Server an already-positioned Rand.

func init() {
	simclock.RegisterEventKind("server.pace", (*paceArm)(nil))
	simclock.RegisterEventKind("server.check", (*checkArm)(nil))
}

// sessOrder extracts the numeric part of a "sess-N" ID so sessions serialize
// in creation order — the order that makes byDataAddr's latest-wins rebuild
// correct.
func sessOrder(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "sess-"))
	if err != nil {
		return -1
	}
	return n
}

// Checkpoint writes the server's full state. app encodes application
// payloads queued inside the server's TCP conns.
func (s *Server) Checkpoint(sw *snap.Writer, app transport.AppCodec) error {
	sw.Tag("server")
	sw.U64(s.describes)
	sw.U64(s.unavailable)
	sw.U64(s.played)
	sw.U64(s.tornDown)
	sw.Int(s.nextID)

	// Control connections: open ones, plus closed ones a session still
	// references (DropClient matches on the control conn's remote address, so
	// losing the link would change churn behavior after a resume).
	referenced := make(map[*controlConn]bool, len(s.sessions))
	for _, sess := range s.sessions {
		if sess.cc != nil {
			referenced[sess.cc] = true
		}
	}
	ccs := make([]*controlConn, 0, len(s.ctlConns))
	for _, cc := range s.ctlConns {
		if !transport.ConnClosed(cc.conn) || referenced[cc] {
			ccs = append(ccs, cc)
		}
	}
	sort.Slice(ccs, func(i, j int) bool { return ccs[i].conn.LocalAddr() < ccs[j].conn.LocalAddr() })
	ccIdx := make(map[*controlConn]int, len(ccs))
	sw.U32(uint32(len(ccs)))
	for i, cc := range ccs {
		ccIdx[cc] = i
		if err := transport.PersistConn(sw, cc.conn, app); err != nil {
			return err
		}
		id := ""
		if cc.sess != nil {
			id = cc.sess.id
		}
		sw.Str(id)
	}

	// Data connections still waiting for their hello.
	pend := make([]transport.Conn, 0, len(s.pendingData))
	for _, c := range s.pendingData {
		if !transport.ConnClosed(c) {
			pend = append(pend, c)
		}
	}
	sort.Slice(pend, func(i, j int) bool { return pend[i].LocalAddr() < pend[j].LocalAddr() })
	sw.U32(uint32(len(pend)))
	for _, c := range pend {
		if err := transport.PersistConn(sw, c, app); err != nil {
			return err
		}
	}

	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return sessOrder(ids[i]) < sessOrder(ids[j]) })
	sw.U32(uint32(len(ids)))
	for _, id := range ids {
		if err := s.sessions[id].persist(sw, app, ccIdx); err != nil {
			return err
		}
	}
	return sw.Err()
}

// Restore overlays a checkpoint written by Checkpoint onto a freshly started
// server (Start must have run: the restore re-seeds the live listeners and
// rebuilds UDP conn views from the bound data port). Restored TCP conns are
// registered into tbl so in-flight wire segments can resolve against them.
func (s *Server) Restore(sr *snap.Reader, stack *transport.Stack, app transport.AppCodec, tbl *transport.ConnTable) error {
	sr.Tag("server")
	s.describes = sr.U64()
	s.unavailable = sr.U64()
	s.played = sr.U64()
	s.tornDown = sr.U64()
	s.nextID = sr.Int()

	ncc := int(sr.U32())
	ccs := make([]*controlConn, 0, ncc)
	ccSess := make([]string, 0, ncc)
	for i := 0; i < ncc; i++ {
		c, err := transport.RestoreConn(sr, stack, app, tbl)
		if err != nil {
			return err
		}
		cc := &controlConn{srv: s, conn: c}
		if !transport.ConnClosed(c) {
			c.SetReceiver(cc.onMessage)
			if err := stack.RestoreAccepted(s.cfg.ControlPort, c); err != nil {
				return err
			}
		}
		s.ctlConns = append(s.ctlConns, cc)
		ccs = append(ccs, cc)
		ccSess = append(ccSess, sr.Str())
	}

	npd := int(sr.U32())
	for i := 0; i < npd; i++ {
		c, err := transport.RestoreConn(sr, stack, app, tbl)
		if err != nil {
			return err
		}
		s.watchPendingData(c)
		if err := stack.RestoreAccepted(s.cfg.DataTCPPort, c); err != nil {
			return err
		}
	}

	ns := int(sr.U32())
	for i := 0; i < ns; i++ {
		sess, err := s.restoreSession(sr, stack, app, tbl, ccs)
		if err != nil {
			return err
		}
		s.sessions[sess.id] = sess
		// Sessions arrive in creation order, so the latest SETUP for a data
		// address wins — the same overwrite order the live run produced.
		if sess.spec.Protocol == "udp" && sess.spec.ClientDataAddr != "" {
			s.byDataAddr[sess.spec.ClientDataAddr] = sess
		}
	}
	for i, cc := range ccs {
		if id := ccSess[i]; id != "" {
			cc.sess = s.sessions[id]
		}
	}
	return sr.Err()
}

func (sess *streamSession) persist(sw *snap.Writer, app transport.AppCodec, ccIdx map[*controlConn]int) error {
	sw.Tag("sess")
	sw.Str(sess.id)
	sw.Str(sess.clip.URL)
	sw.Str(sess.spec.Protocol)
	sw.Str(sess.spec.ClientDataAddr)
	sw.Str(sess.spec.ServerDataAddr)
	sw.F64(sess.maxKbps)
	idx := -1
	if sess.cc != nil {
		if i, ok := ccIdx[sess.cc]; ok {
			idx = i
		}
	}
	sw.Int(idx)

	if sess.dataTCP != nil {
		sw.Bool(true)
		if err := transport.PersistConn(sw, sess.dataTCP, app); err != nil {
			return err
		}
	} else {
		sw.Bool(false)
	}
	if sess.ctrl != nil {
		sw.Bool(true)
		if err := ratecontrol.Persist(sw, sess.ctrl); err != nil {
			return err
		}
	} else {
		sw.Bool(false)
	}

	sw.Int(sess.encIdx)
	sw.Bool(sess.playing)
	sw.Bool(sess.stopped)
	sw.Dur(sess.startAt)
	sw.Dur(sess.mediaPos)
	sw.Bool(sess.src != nil)
	if sess.src != nil {
		sess.src.Persist(sw)
	}
	sess.paceTimer.Persist(sw)
	sess.checkTimer.Persist(sw)

	sw.U32(sess.videoSeq)
	sw.U32(sess.audioSeq)
	sw.F64(sess.budget)
	sw.U32(uint32(len(sess.fecMeta)))
	for i := range sess.fecMeta {
		sess.fecMeta[i].Persist(sw)
	}
	sw.U32(sess.fecBase)
	sess.lastReport.Persist(sw)
	sw.Bool(sess.haveReport)
	sw.Int(sess.healthyChecks)

	seqs := make([]uint32, 0, len(sess.sentVideo))
	for seq := range sess.sentVideo {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	sw.U32(uint32(len(seqs)))
	for _, seq := range seqs {
		sess.sentVideo[seq].Persist(sw)
	}
	sw.U32(sess.sentFloor)
	sw.U32(sess.videoFrameCtr)
	sw.U32(sess.audioFrameCtr)

	sw.Bool(sess.hasPending)
	if sess.hasPending {
		persistFrame(sw, sess.pending)
	}

	sw.Dur(sess.lastUpswitchAt)
	sw.Dur(sess.nextUpswitchOK)
	sw.Dur(sess.upswitchHold)
	sw.Int(sess.upswitchTo)
	rungs := make([]int, 0, len(sess.failedRungs))
	for r := range sess.failedRungs {
		rungs = append(rungs, r)
	}
	sort.Ints(rungs)
	sw.U32(uint32(len(rungs)))
	for _, r := range rungs {
		sw.Int(r)
		sw.Int(sess.failedRungs[r])
	}
	sw.Int(sess.switches)
	return sw.Err()
}

func (s *Server) restoreSession(sr *snap.Reader, stack *transport.Stack, app transport.AppCodec, tbl *transport.ConnTable, ccs []*controlConn) (*streamSession, error) {
	sr.Tag("sess")
	sess := &streamSession{
		srv:         s,
		sentVideo:   make(map[uint32]*rdt.Data),
		failedRungs: make(map[int]int),
	}
	sess.id = sr.Str()
	url := sr.Str()
	sess.clip = s.cfg.Library.Lookup(url)
	if sess.clip == nil && sr.Err() == nil {
		return nil, fmt.Errorf("server: restore: unknown clip %q", url)
	}
	sess.spec.Protocol = sr.Str()
	sess.spec.ClientDataAddr = sr.Str()
	sess.spec.ServerDataAddr = sr.Str()
	sess.maxKbps = sr.F64()
	if idx := sr.Int(); idx >= 0 && idx < len(ccs) {
		sess.cc = ccs[idx]
	}

	if sr.Bool() {
		c, err := transport.RestoreConn(sr, stack, app, tbl)
		if err != nil {
			return nil, err
		}
		// bindTCPData minus maybeStart: streaming position is overlaid below,
		// not restarted.
		sess.dataTCP = c
		sess.backlogProbe, _ = c.(interface{ QueueDepth() int })
		if !transport.ConnClosed(c) {
			c.SetReceiver(func(payload any, _ int) {
				pkt, ok := payload.(*rdt.Packet)
				if !ok {
					return
				}
				sess.onFeedback(pkt)
			})
			if err := stack.RestoreAccepted(s.cfg.DataTCPPort, c); err != nil {
				return nil, err
			}
		}
	}
	if sr.Bool() {
		ctrl, err := ratecontrol.Restore(sr)
		if err != nil {
			return nil, err
		}
		sess.ctrl = ctrl
	}

	sess.encIdx = sr.Int()
	sess.playing = sr.Bool()
	sess.stopped = sr.Bool()
	sess.startAt = sr.Dur()
	sess.mediaPos = sr.Dur()
	if sr.Bool() {
		if sr.Err() != nil {
			return nil, sr.Err()
		}
		sess.srcStore = &media.FrameSource{}
		sess.srcStore.RestoreState(sess.clip, sess.clip.Encodings[sess.encIdx], sr)
		sess.src = sess.srcStore
	}
	sess.paceTimer = vclock.RestoreHandle(sr, s.cfg.Clock, (*paceArm)(sess))
	sess.checkTimer = vclock.RestoreHandle(sr, s.cfg.Clock, (*checkArm)(sess))

	sess.videoSeq = sr.U32()
	sess.audioSeq = sr.U32()
	sess.budget = sr.F64()
	nf := int(sr.U32())
	for i := 0; i < nf && sr.Err() == nil; i++ {
		sess.fecMeta = append(sess.fecMeta, rdt.RestoreRepairMeta(sr))
	}
	sess.fecBase = sr.U32()
	rdt.RestoreReportInto(sr, &sess.lastReport)
	sess.haveReport = sr.Bool()
	sess.healthyChecks = sr.Int()

	nsv := int(sr.U32())
	for i := 0; i < nsv && sr.Err() == nil; i++ {
		d := sess.arena.NewData()
		rdt.RestoreDataInto(sr, d)
		sess.sentVideo[d.Seq] = d
	}
	sess.sentFloor = sr.U32()
	sess.videoFrameCtr = sr.U32()
	sess.audioFrameCtr = sr.U32()

	sess.hasPending = sr.Bool()
	if sess.hasPending {
		sess.pending = restoreFrame(sr)
	}

	sess.lastUpswitchAt = sr.Dur()
	sess.nextUpswitchOK = sr.Dur()
	sess.upswitchHold = sr.Dur()
	sess.upswitchTo = sr.Int()
	nr := int(sr.U32())
	for i := 0; i < nr && sr.Err() == nil; i++ {
		r := sr.Int()
		sess.failedRungs[r] = sr.Int()
	}
	sess.switches = sr.Int()

	if sess.spec.Protocol == "udp" {
		sess.dataUDP = s.udpPort.ConnFor(sess.spec.ClientDataAddr)
	}
	return sess, sr.Err()
}

func persistFrame(sw *snap.Writer, f media.Frame) {
	sw.Bool(f.Video)
	sw.Int(f.Index)
	sw.Dur(f.MediaTime)
	sw.Int(f.Size)
	sw.Bool(f.Keyframe)
}

func restoreFrame(sr *snap.Reader) media.Frame {
	var f media.Frame
	f.Video = sr.Bool()
	f.Index = sr.Int()
	f.MediaTime = sr.Dur()
	f.Size = sr.Int()
	f.Keyframe = sr.Bool()
	return f
}
