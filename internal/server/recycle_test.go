package server

import (
	"testing"
	"time"

	"realtracer/internal/rtsp"
)

// TestSessionRecycleClearsState: a torn-down session's object goes back to
// the free-list, and the next SETUP leases that same object with every
// per-session field reset — no sequence number, retransmit-window entry,
// media position or started stream survives into the next client.
func TestSessionRecycleClearsState(t *testing.T) {
	r := newCtlRig(t, 0)

	setup := func() (string, *streamSession) {
		req := rtsp.NewRequest(rtsp.MethodSetup, "rtsp://srv/clip000.rm", 0)
		req.Set("Transport", rtsp.TransportSpec{Protocol: "udp", ClientDataAddr: "cli:20000"}.Format())
		req.Set("Bandwidth", "150")
		resp := r.request(req)
		if resp.Status != rtsp.StatusOK {
			t.Fatalf("setup status=%d", resp.Status)
		}
		id := resp.Get("Session")
		sess, ok := r.srv.sessions[id]
		if !ok {
			t.Fatalf("session %q not registered", id)
		}
		return id, sess
	}
	play := func(id string) {
		req := rtsp.NewRequest(rtsp.MethodPlay, "rtsp://srv/clip000.rm", 0)
		req.Set("Session", id)
		if got := r.request(req); got.Status != rtsp.StatusOK {
			t.Fatalf("play status=%d", got.Status)
		}
		r.clock.RunUntil(r.clock.Now() + 10*time.Second)
	}
	teardown := func(id string) {
		req := rtsp.NewRequest(rtsp.MethodTeardown, "rtsp://srv/clip000.rm", 0)
		req.Set("Session", id)
		if got := r.request(req); got.Status != rtsp.StatusOK {
			t.Fatalf("teardown status=%d", got.Status)
		}
	}

	id1, sess1 := setup()
	play(id1)
	// The first session must be visibly dirty or the recycle proves nothing:
	// UDP streaming populates the NACK retransmit window and advances the
	// sequence counters and media clock.
	if len(sess1.sentVideo) == 0 || sess1.videoSeq == 0 || sess1.mediaPos == 0 {
		t.Fatalf("first session streamed nothing (sentVideo=%d videoSeq=%d mediaPos=%v)",
			len(sess1.sentVideo), sess1.videoSeq, sess1.mediaPos)
	}
	teardown(id1)
	if len(r.srv.sessFree) != 1 || r.srv.sessFree[0] != sess1 {
		t.Fatalf("torn-down session not returned to the free-list (len=%d)", len(r.srv.sessFree))
	}

	id2, sess2 := setup()
	if sess2 != sess1 {
		t.Fatal("second SETUP built a fresh session instead of leasing the pooled one")
	}
	if len(r.srv.sessFree) != 0 {
		t.Fatalf("free-list not drained by the lease (len=%d)", len(r.srv.sessFree))
	}
	if id2 == id1 {
		t.Fatalf("recycled session kept its predecessor's ID %q", id2)
	}
	// At lease time — before PLAY — the recycled object must be clean.
	if n := len(sess2.sentVideo); n != 0 {
		t.Fatalf("recycled session inherited %d retransmit-window packets", n)
	}
	if sess2.videoSeq != 0 || sess2.audioSeq != 0 || sess2.mediaPos != 0 {
		t.Fatalf("recycled session inherited counters: videoSeq=%d audioSeq=%d mediaPos=%v",
			sess2.videoSeq, sess2.audioSeq, sess2.mediaPos)
	}
	if sess2.src != nil || sess2.playing || sess2.stopped {
		t.Fatalf("recycled session inherited stream state: src=%v playing=%v stopped=%v",
			sess2.src != nil, sess2.playing, sess2.stopped)
	}
	// And it must stream again, from scratch.
	play(id2)
	if sess2.videoSeq == 0 || sess2.mediaPos == 0 {
		t.Fatalf("recycled session did not stream (videoSeq=%d mediaPos=%v)", sess2.videoSeq, sess2.mediaPos)
	}
	if _, _, played, torndown := r.srv.Counters(); played != 2 || torndown != 1 {
		t.Fatalf("counters after recycle: played=%d torndown=%d", played, torndown)
	}
}
