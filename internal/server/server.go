// Package server implements the RealServer analog: an RTSP-controlled
// streaming server that serves SureStream-encoded clips over TCP or UDP
// data connections.
//
// Behaviours reproduced from the paper (Section II):
//
//   - two connections per session: an RTSP control connection (always TCP)
//     and a separate data connection (TCP or UDP, negotiated in SETUP);
//   - SureStream: the server picks the best encoding for the client's
//     stated bandwidth and switches streams mid-playout as conditions
//     change ("switching to a lower bandwidth stream during network
//     congestion and then back ... when congestion clears");
//   - application-layer congestion control on UDP data flows, driven by
//     receiver reports (internal/ratecontrol);
//   - error-correction packets on lossy UDP flows ("special packets that
//     correct errors are sent to reconstruct the lost data");
//   - a clip-availability fault model: on average about 10 % of clip
//     requests in the study found the clip temporarily unavailable
//     (Figure 10), with per-server rates varying.
package server

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"realtracer/internal/media"
	"realtracer/internal/ratecontrol"
	"realtracer/internal/rdt"
	"realtracer/internal/rtsp"
	"realtracer/internal/session"
	"realtracer/internal/transport"
	"realtracer/internal/vclock"
)

// Config parameterizes a Server.
type Config struct {
	Clock   vclock.Clock
	Net     session.Net
	Library *media.Library
	// Rand drives the availability fault model. Required.
	Rand *rand.Rand
	// Unavailability is the probability a DESCRIBE finds the clip
	// temporarily unavailable (Figure 10). Typical servers: 0.03-0.20.
	Unavailability float64
	// SureStream enables mid-playout stream switching (ablation knob;
	// default on via New).
	SureStream bool
	// FEC enables repair packets on UDP flows (ablation knob).
	FEC bool
	// NewController builds the UDP rate controller for a session; nil means
	// TFRC with default limits.
	NewController func(startKbps float64) ratecontrol.Controller
	// BufferAhead is how much media the server tries to keep buffered ahead
	// of the client's playout (drives the initial burst). Default 12 s.
	BufferAhead time.Duration
	// ControlPort etc. default to the session package's well-known ports.
	ControlPort, DataTCPPort, DataUDPPort int
}

func (c *Config) fillDefaults() {
	if c.BufferAhead <= 0 {
		c.BufferAhead = 12 * time.Second
	}
	if c.ControlPort == 0 {
		c.ControlPort = session.ControlPort
	}
	if c.DataTCPPort == 0 {
		c.DataTCPPort = session.DataTCPPort
	}
	if c.DataUDPPort == 0 {
		c.DataUDPPort = session.DataUDPPort
	}
	if c.NewController == nil {
		c.NewController = func(startKbps float64) ratecontrol.Controller {
			return ratecontrol.NewTFRC(startKbps, 1000, ratecontrol.DefaultLimits())
		}
	}
}

// Server is one streaming-server instance.
type Server struct {
	cfg Config

	sessions   map[string]*streamSession // by session ID
	byDataAddr map[string]*streamSession // UDP demux by client data address
	udpPort    session.DataPort
	stops      []func()
	nextID     int

	// sessFree recycles streamSession objects: removeSession pushes,
	// newStreamSession pops. A recycled session keeps its map storage, FEC
	// scratch and packet arena so steady-state churn stops allocating.
	sessFree []*streamSession

	// ctlConns tracks every accepted control connection so a world checkpoint
	// can enumerate them — a control connection between sessions (after a
	// DESCRIBE, or between playlist entries) is reachable from nowhere else.
	// Closed, unreferenced entries are swept lazily as the list grows.
	ctlConns []*controlConn

	// pendingData tracks accepted TCP data connections whose DataHello has
	// not arrived yet: no session references them until the hello binds them.
	pendingData []transport.Conn

	// Counters for Figure 10 and diagnostics.
	describes   uint64
	unavailable uint64
	played      uint64
	tornDown    uint64
}

// New builds a Server with SureStream and FEC enabled unless the caller
// turned them off explicitly after construction via the Config it passed.
func New(cfg Config) *Server {
	cfg.fillDefaults()
	return &Server{
		cfg:        cfg,
		sessions:   make(map[string]*streamSession),
		byDataAddr: make(map[string]*streamSession),
	}
}

// Start binds the control and data ports.
func (s *Server) Start() error {
	stopCtl, err := s.cfg.Net.ListenTCP(s.cfg.ControlPort, s.acceptControl)
	if err != nil {
		return fmt.Errorf("server: control listen: %w", err)
	}
	s.stops = append(s.stops, stopCtl)
	stopData, err := s.cfg.Net.ListenTCP(s.cfg.DataTCPPort, s.acceptDataTCP)
	if err != nil {
		return fmt.Errorf("server: data listen: %w", err)
	}
	s.stops = append(s.stops, stopData)
	udp, err := s.cfg.Net.ListenUDP(s.cfg.DataUDPPort, s.onUDPData)
	if err != nil {
		return fmt.Errorf("server: udp listen: %w", err)
	}
	s.udpPort = udp
	s.stops = append(s.stops, func() { udp.Close() })
	return nil
}

// Stop tears everything down.
func (s *Server) Stop() {
	for _, stop := range s.stops {
		stop()
	}
	s.stops = nil
	for _, sess := range s.sessions {
		sess.stop()
	}
}

// ActiveSessions is the server's load probe: how many streaming sessions
// are currently open. The least-loaded selection policy polls it when
// choosing a mirror for a new clip request.
func (s *Server) ActiveSessions() int { return len(s.sessions) }

// DropClient reaps every session belonging to a client host that vanished
// without a TEARDOWN — the open-loop churn path, where a departing user's
// host is torn out of the network mid-stream. No RTSP message can arrive
// from a host that no longer exists, so without this an abandoned session
// would pace frames at a dead address forever and permanently inflate the
// ActiveSessions load probe. Returns how many sessions were reaped.
func (s *Server) DropClient(clientHost string) int {
	var doomed []*streamSession
	for _, sess := range s.sessions {
		if addrHost(sess.spec.ClientDataAddr) == clientHost ||
			(sess.cc != nil && addrHost(sess.cc.conn.RemoteAddr()) == clientHost) {
			doomed = append(doomed, sess)
		}
	}
	if len(doomed) == 0 {
		// The common churn case: the departing client tore all its sessions
		// down cleanly. Skip the sort so the per-departure sweep stays
		// allocation-free.
		return 0
	}
	// Stable reap order: stop() can close connections (which sends), and
	// map iteration order must not leak into the packet stream.
	sort.Slice(doomed, func(i, j int) bool { return doomed[i].id < doomed[j].id })
	for _, sess := range doomed {
		sess.stop()
		s.removeSession(sess)
	}
	return len(doomed)
}

// addrHost returns the host component of a "host:port" address ("" in,
// "" out).
func addrHost(addr string) string {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			return addr[:i]
		}
	}
	return addr
}

// Counters returns (describes, unavailable, played, toredown) counts.
func (s *Server) Counters() (describes, unavailable, played, torndown uint64) {
	return s.describes, s.unavailable, s.played, s.tornDown
}

// acceptControl handles a new RTSP control connection. One control
// connection may carry several sequential sessions (the playlist pattern).
func (s *Server) acceptControl(conn transport.Conn) {
	cc := &controlConn{srv: s, conn: conn}
	conn.SetReceiver(cc.onMessage)
	s.trackControl(cc)
}

// trackControl records a control connection for checkpoint enumeration,
// sweeping closed unreferenced entries when the list has grown well past the
// live session count. The sweep trigger depends only on simulation state, so
// whether a checkpoint is ever taken cannot perturb the run.
func (s *Server) trackControl(cc *controlConn) {
	if len(s.ctlConns) >= 2*len(s.sessions)+64 {
		referenced := make(map[*controlConn]bool, len(s.sessions))
		for _, sess := range s.sessions {
			if sess.cc != nil {
				referenced[sess.cc] = true
			}
		}
		kept := s.ctlConns[:0]
		for _, old := range s.ctlConns {
			if !transport.ConnClosed(old.conn) || referenced[old] {
				kept = append(kept, old)
			}
		}
		for i := len(kept); i < len(s.ctlConns); i++ {
			s.ctlConns[i] = nil
		}
		s.ctlConns = kept
	}
	s.ctlConns = append(s.ctlConns, cc)
}

type controlConn struct {
	srv  *Server
	conn transport.Conn
	sess *streamSession // session most recently SETUP on this connection
}

func (cc *controlConn) reply(m *rtsp.Message) {
	cc.conn.Send(m, m.WireSize())
}

func (cc *controlConn) onMessage(payload any, _ int) {
	req, ok := payload.(*rtsp.Message)
	if !ok || !req.Request {
		return
	}
	s := cc.srv
	switch req.Method {
	case rtsp.MethodOptions:
		resp := rtsp.NewResponse(req, rtsp.StatusOK)
		resp.Set("Public", "DESCRIBE, SETUP, PLAY, PAUSE, TEARDOWN, SET_PARAMETER")
		cc.reply(resp)

	case rtsp.MethodDescribe:
		s.describes++
		clip := s.cfg.Library.Lookup(req.URL)
		if clip == nil {
			cc.reply(rtsp.NewResponse(req, rtsp.StatusNotFound))
			return
		}
		if s.cfg.Rand.Float64() < s.cfg.Unavailability {
			s.unavailable++
			cc.reply(rtsp.NewResponse(req, rtsp.StatusUnavailable))
			return
		}
		resp := rtsp.NewResponse(req, rtsp.StatusOK)
		resp.Body = session.DescFromClip(clip).Marshal()
		cc.reply(resp)

	case rtsp.MethodSetup:
		clip := s.cfg.Library.Lookup(req.URL)
		if clip == nil {
			cc.reply(rtsp.NewResponse(req, rtsp.StatusNotFound))
			return
		}
		spec, err := rtsp.ParseTransport(req.Get("Transport"))
		if err != nil {
			cc.reply(rtsp.NewResponse(req, rtsp.StatusInternalError))
			return
		}
		maxKbps := float64(req.GetInt("Bandwidth", 300))
		s.nextID++
		id := fmt.Sprintf("sess-%d", s.nextID)
		sess := newStreamSession(s, id, clip, spec, maxKbps, cc)
		s.sessions[id] = sess
		cc.sess = sess
		if spec.Protocol == "udp" && spec.ClientDataAddr != "" {
			s.byDataAddr[spec.ClientDataAddr] = sess
		}
		resp := rtsp.NewResponse(req, rtsp.StatusOK)
		resp.Set("Session", id)
		out := rtsp.TransportSpec{Protocol: spec.Protocol}
		if spec.Protocol == "udp" {
			out.ServerDataAddr = s.udpPort.LocalAddr()
		} else {
			out.ServerDataAddr = s.cfg.Net.Addr(s.cfg.DataTCPPort)
		}
		resp.Set("Transport", out.Format())
		cc.reply(resp)

	case rtsp.MethodPlay:
		sess := s.lookupSession(req, cc)
		if sess == nil {
			cc.reply(rtsp.NewResponse(req, rtsp.StatusNotFound))
			return
		}
		sess.play()
		s.played++
		cc.reply(rtsp.NewResponse(req, rtsp.StatusOK))

	case rtsp.MethodPause:
		sess := s.lookupSession(req, cc)
		if sess == nil {
			cc.reply(rtsp.NewResponse(req, rtsp.StatusNotFound))
			return
		}
		sess.pause()
		cc.reply(rtsp.NewResponse(req, rtsp.StatusOK))

	case rtsp.MethodTeardown:
		sess := s.lookupSession(req, cc)
		if sess != nil {
			sess.stop()
			s.removeSession(sess)
			s.tornDown++
		}
		cc.reply(rtsp.NewResponse(req, rtsp.StatusOK))

	case rtsp.MethodSetParameter:
		cc.reply(rtsp.NewResponse(req, rtsp.StatusOK))

	default:
		cc.reply(rtsp.NewResponse(req, rtsp.StatusInternalError))
	}
}

func (s *Server) lookupSession(req *rtsp.Message, cc *controlConn) *streamSession {
	if id := req.Get("Session"); id != "" {
		return s.sessions[id]
	}
	return cc.sess
}

func (s *Server) removeSession(sess *streamSession) {
	delete(s.sessions, sess.id)
	// Under churn a client can depart and re-arrive at the same data
	// address while the old session is still timing out; only unmap the
	// address if it still belongs to this session, or the stale teardown
	// would sever the re-arrived client's demux entry.
	if sess.spec.ClientDataAddr != "" && s.byDataAddr[sess.spec.ClientDataAddr] == sess {
		delete(s.byDataAddr, sess.spec.ClientDataAddr)
	}
	// Unhook the control connection's convenience pointer before recycling,
	// or a session-header-less request on the old connection could reach a
	// session that now belongs to a different client.
	if sess.cc != nil && sess.cc.sess == sess {
		sess.cc.sess = nil
	}
	s.sessFree = append(s.sessFree, sess)
}

// acceptDataTCP waits for the DataHello that binds a data connection to its
// session.
func (s *Server) acceptDataTCP(conn transport.Conn) {
	s.watchPendingData(conn)
}

// watchPendingData installs the hello-waiting receiver on a data connection
// and tracks it until the hello binds it to a session — the shared path of
// accept and checkpoint restore.
func (s *Server) watchPendingData(conn transport.Conn) {
	kept := s.pendingData[:0]
	for _, c := range s.pendingData {
		if !transport.ConnClosed(c) {
			kept = append(kept, c)
		}
	}
	for i := len(kept); i < len(s.pendingData); i++ {
		s.pendingData[i] = nil
	}
	s.pendingData = append(kept, conn)
	conn.SetReceiver(func(payload any, size int) {
		switch m := payload.(type) {
		case *session.DataHello:
			s.untrackPendingData(conn)
			sess, ok := s.sessions[m.SessionID]
			if !ok {
				conn.Close()
				return
			}
			sess.bindTCPData(conn)
		case *rdt.Packet:
			// Feedback on an already-bound connection is routed by the
			// receiver installed in bindTCPData; a packet here means the
			// hello never arrived.
		}
	})
}

func (s *Server) untrackPendingData(conn transport.Conn) {
	for i, c := range s.pendingData {
		if c == conn {
			s.pendingData = append(s.pendingData[:i], s.pendingData[i+1:]...)
			return
		}
	}
}

// onUDPData demultiplexes datagrams from clients (reports, buffer state) to
// their sessions by source address.
func (s *Server) onUDPData(from string, payload any, _ int) {
	sess, ok := s.byDataAddr[from]
	if !ok {
		return
	}
	pkt, ok := payload.(*rdt.Packet)
	if !ok {
		return
	}
	sess.onFeedback(pkt)
}
