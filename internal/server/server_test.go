package server

import (
	"math/rand"
	"testing"
	"time"

	"realtracer/internal/media"
	"realtracer/internal/netsim"
	"realtracer/internal/rtsp"
	"realtracer/internal/session"
	"realtracer/internal/simclock"
	"realtracer/internal/transport"
	"realtracer/internal/vclock"
)

// ctlRig dials the server's control port and provides a request/response
// helper, exercising the RTSP handling without a full player.
type ctlRig struct {
	t     *testing.T
	clock *simclock.Clock
	net   *netsim.Network
	srv   *Server
	conn  transport.Conn
	resp  chan *rtsp.Message
	cseq  int
}

func newCtlRig(t *testing.T, unavailability float64) *ctlRig {
	t.Helper()
	clock := simclock.New()
	n := netsim.New(clock, netsim.StaticRoute(netsim.Route{OneWayDelay: 10 * time.Millisecond}), 3)
	n.AddHost(netsim.HostConfig{Name: "srv", Access: netsim.DefaultAccessProfile(netsim.AccessServer)})
	n.AddHost(netsim.HostConfig{Name: "cli", Access: netsim.DefaultAccessProfile(netsim.AccessT1LAN)})
	lib := media.NewLibrary([]*media.Clip{
		media.GenerateClip("rtsp://srv/clip000.rm", "t", media.ContentNews, 2*time.Minute, 20, 350, 7),
	})
	srv := New(Config{
		Clock: vclock.Sim{C: clock}, Net: session.SimNet{Stack: transport.NewStack(n, "srv")},
		Library: lib, Rand: rand.New(rand.NewSource(1)),
		Unavailability: unavailability, SureStream: true,
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	r := &ctlRig{t: t, clock: clock, net: n, srv: srv, resp: make(chan *rtsp.Message, 16)}
	cli := transport.NewStack(n, "cli")
	cli.DialTCP("srv:554", func(c transport.Conn, err error) {
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		r.conn = c
		c.SetReceiver(func(payload any, _ int) {
			if m, ok := payload.(*rtsp.Message); ok {
				select {
				case r.resp <- m:
				default:
				}
			}
		})
	})
	clock.RunUntil(time.Second)
	if r.conn == nil {
		t.Fatal("control dial failed")
	}
	return r
}

func (r *ctlRig) request(m *rtsp.Message) *rtsp.Message {
	r.t.Helper()
	r.cseq++
	m.CSeq = r.cseq
	r.conn.Send(m, m.WireSize())
	r.clock.RunUntil(r.clock.Now() + 2*time.Second)
	select {
	case resp := <-r.resp:
		return resp
	default:
		r.t.Fatalf("no response to %s", m.Method)
		return nil
	}
}

func TestOptionsAdvertisesMethods(t *testing.T) {
	r := newCtlRig(t, 0)
	resp := r.request(rtsp.NewRequest(rtsp.MethodOptions, "*", 0))
	if resp.Status != rtsp.StatusOK || resp.Get("Public") == "" {
		t.Fatalf("OPTIONS response: %+v", resp)
	}
}

func TestDescribeReturnsParseableBody(t *testing.T) {
	r := newCtlRig(t, 0)
	resp := r.request(rtsp.NewRequest(rtsp.MethodDescribe, "rtsp://srv/clip000.rm", 0))
	if resp.Status != rtsp.StatusOK {
		t.Fatalf("status=%d", resp.Status)
	}
	desc, err := session.ParseClipDesc(resp.Body)
	if err != nil {
		t.Fatalf("body unparseable: %v", err)
	}
	if len(desc.Encodings) != 6 {
		t.Fatalf("encodings=%d", len(desc.Encodings))
	}
}

func TestDescribeNotFound(t *testing.T) {
	r := newCtlRig(t, 0)
	resp := r.request(rtsp.NewRequest(rtsp.MethodDescribe, "rtsp://srv/ghost.rm", 0))
	if resp.Status != rtsp.StatusNotFound {
		t.Fatalf("status=%d want 404", resp.Status)
	}
}

func TestDescribeUnavailable(t *testing.T) {
	r := newCtlRig(t, 1.0)
	resp := r.request(rtsp.NewRequest(rtsp.MethodDescribe, "rtsp://srv/clip000.rm", 0))
	if resp.Status != rtsp.StatusUnavailable {
		t.Fatalf("status=%d want 453", resp.Status)
	}
	describes, unavailable, _, _ := r.srv.Counters()
	if describes != 1 || unavailable != 1 {
		t.Fatalf("counters: describes=%d unavailable=%d", describes, unavailable)
	}
}

func TestSetupNegotiatesTransport(t *testing.T) {
	r := newCtlRig(t, 0)
	req := rtsp.NewRequest(rtsp.MethodSetup, "rtsp://srv/clip000.rm", 0)
	req.Set("Transport", rtsp.TransportSpec{Protocol: "udp", ClientDataAddr: "cli:20000"}.Format())
	req.Set("Bandwidth", "150")
	resp := r.request(req)
	if resp.Status != rtsp.StatusOK {
		t.Fatalf("status=%d", resp.Status)
	}
	if resp.Get("Session") == "" {
		t.Fatal("no session id")
	}
	spec, err := rtsp.ParseTransport(resp.Get("Transport"))
	if err != nil || spec.ServerDataAddr == "" {
		t.Fatalf("transport header bad: %v %+v", err, spec)
	}
}

func TestSetupRejectsBadTransport(t *testing.T) {
	r := newCtlRig(t, 0)
	req := rtsp.NewRequest(rtsp.MethodSetup, "rtsp://srv/clip000.rm", 0)
	req.Set("Transport", "proto=carrier-pigeon")
	resp := r.request(req)
	if resp.Status != rtsp.StatusInternalError {
		t.Fatalf("status=%d want 500", resp.Status)
	}
}

func TestPlayWithoutSetupFails(t *testing.T) {
	r := newCtlRig(t, 0)
	resp := r.request(rtsp.NewRequest(rtsp.MethodPlay, "rtsp://srv/clip000.rm", 0))
	if resp.Status != rtsp.StatusNotFound {
		t.Fatalf("status=%d want 404", resp.Status)
	}
}

func TestTeardownUnknownSessionIsOK(t *testing.T) {
	r := newCtlRig(t, 0)
	req := rtsp.NewRequest(rtsp.MethodTeardown, "rtsp://srv/clip000.rm", 0)
	req.Set("Session", "sess-999")
	resp := r.request(req)
	if resp.Status != rtsp.StatusOK {
		t.Fatalf("status=%d", resp.Status)
	}
}

func TestPauseHaltsPacing(t *testing.T) {
	r := newCtlRig(t, 0)
	setup := rtsp.NewRequest(rtsp.MethodSetup, "rtsp://srv/clip000.rm", 0)
	setup.Set("Transport", rtsp.TransportSpec{Protocol: "udp", ClientDataAddr: "cli:20000"}.Format())
	setup.Set("Bandwidth", "80")
	resp := r.request(setup)
	id := resp.Get("Session")
	play := rtsp.NewRequest(rtsp.MethodPlay, "rtsp://srv/clip000.rm", 0)
	play.Set("Session", id)
	if got := r.request(play); got.Status != rtsp.StatusOK {
		t.Fatalf("play status=%d", got.Status)
	}
	pause := rtsp.NewRequest(rtsp.MethodPause, "rtsp://srv/clip000.rm", 0)
	pause.Set("Session", id)
	if got := r.request(pause); got.Status != rtsp.StatusOK {
		t.Fatalf("pause status=%d", got.Status)
	}
	// After the pause settles, the session's pacer stops offering packets:
	// the network drains to silence.
	r.clock.RunUntil(r.clock.Now() + 30*time.Second)
	sentBefore, _, _ := r.net.Stats()
	r.clock.RunUntil(r.clock.Now() + 10*time.Second)
	sentAfter, _, _ := r.net.Stats()
	if sentAfter > sentBefore {
		t.Fatalf("packets still flowing after PAUSE: %d -> %d", sentBefore, sentAfter)
	}
}
