package server

import (
	"time"

	"realtracer/internal/media"
	"realtracer/internal/ratecontrol"
	"realtracer/internal/rdt"
	"realtracer/internal/rtsp"
	"realtracer/internal/transport"
	"realtracer/internal/vclock"
)

// Pacing and switching parameters.
const (
	paceQuantum = 100 * time.Millisecond
	switchCheck = time.Second
	// maxFragment keeps every data packet under the transport MSS.
	maxFragment = 1200
	// fecGroup is the repair-group size for UDP FEC.
	fecGroup = 8
	// tcpBacklogHigh/Low drive SureStream switching on TCP sessions, in
	// queued messages at the transport sender.
	tcpBacklogHigh = 40
	tcpBacklogLow  = 4
	// upswitchPatience is how many consecutive healthy checks precede an
	// upswitch.
	upswitchPatience = 4
	// liveCaptureBuffer is all the lead a live feed has over realtime: the
	// encoder's own buffering.
	liveCaptureBuffer = 500 * time.Millisecond
)

// streamSession is the server side of one clip playout.
type streamSession struct {
	srv  *Server
	id   string
	clip *media.Clip
	spec rtsp.TransportSpec
	cc   *controlConn

	maxKbps float64 // client's configured maximum bit rate
	ctrl    ratecontrol.Controller
	dataTCP transport.Conn
	dataUDP transport.Conn // port-backed view for UDP sends, peer resolved once
	// backlogProbe is dataTCP's QueueDepth view, resolved once at bind time:
	// pace() consults it per frame, and an interface type assertion in that
	// loop showed up in the campaign CPU profile.
	backlogProbe interface{ QueueDepth() int }

	src *media.FrameSource
	// srcStore is the pooled frame-source object behind src: src doubles
	// as the "streaming started" sentinel (nil until PLAY), so the
	// reusable storage lives in its own field and survives recycling.
	srcStore *media.FrameSource
	encIdx   int
	playing  bool
	stopped  bool
	startAt  time.Duration // virtual time of PLAY
	mediaPos time.Duration // media time sent so far

	paceTimer  vclock.Handle
	checkTimer vclock.Handle

	// arena backs every packet struct this session sends (Data, Repair,
	// EOS, retransmit wrappers). It is rewound when the session object is
	// leased from the server's free-list for a new SETUP — the only point
	// where no reference into it can remain (the previous client's host is
	// gone or its data port closed, so in-flight packets drop unread, and
	// the player never dereferences stale receive-side pointers).
	arena rdt.Arena

	videoSeq uint32
	audioSeq uint32

	// UDP pacing budget (bytes), replenished at the controller rate.
	budget float64

	// FEC group accumulation.
	fecMeta []rdt.RepairMeta
	fecBase uint32

	// Feedback snapshots. The report is kept by value: the *rdt.Report the
	// feedback callback sees lives in pooled storage (an arena packet on the
	// classic path, a shard-transit snapshot on the sharded one) that is
	// recycled as soon as the callback returns, so retaining the pointer
	// until the next check tick would read reused memory.
	lastReport    rdt.Report
	haveReport    bool
	healthyChecks int

	// sentVideo retains recently sent video packets for NACK retransmission
	// (UDP only). sentFloor is the lowest seq possibly still present: video
	// seqs are handed out monotonically, so expiry is a forward sweep from
	// the floor instead of a full map scan per packet.
	sentVideo map[uint32]*rdt.Data
	sentFloor uint32

	// Per-stream frame counters: the player relies on video FrameIndex
	// continuity to detect decode-chain damage (GOP corruption).
	videoFrameCtr uint32
	audioFrameCtr uint32

	// pending holds a frame drawn from the source that exceeded the UDP
	// rate budget; it is sent first on the next quantum. Stored by value so
	// stashing a frame does not allocate.
	pending    media.Frame
	hasPending bool

	// Upswitch backoff: a stream that steps up and promptly suffers loss
	// waits exponentially longer before the next attempt, so a saturated
	// link is not re-probed into corruption every few seconds.
	lastUpswitchAt time.Duration
	nextUpswitchOK time.Duration
	upswitchHold   time.Duration
	// upswitchTo remembers the rung of the last upswitch; rungs that fail
	// twice are abandoned for the rest of the session.
	upswitchTo  int
	failedRungs map[int]int

	// Switch count for diagnostics/ablation.
	switches int
}

// newStreamSession leases a session object from the server's free-list (or
// allocates the pool's first instances) and reinitializes it for one clip
// playout. Recycled sessions keep their map storage, FEC scratch and packet
// arena; everything else is reset field-by-field through the struct
// literal, so a recycled session can never observe its predecessor's
// retransmit window, feedback snapshot or timer state.
func newStreamSession(s *Server, id string, clip *media.Clip, spec rtsp.TransportSpec, maxKbps float64, cc *controlConn) *streamSession {
	var sess *streamSession
	if k := len(s.sessFree); k > 0 {
		sess = s.sessFree[k-1]
		s.sessFree = s.sessFree[:k-1]
		clear(sess.sentVideo)
		clear(sess.failedRungs)
	} else {
		sess = &streamSession{
			sentVideo:   make(map[uint32]*rdt.Data),
			failedRungs: make(map[int]int),
		}
	}
	*sess = streamSession{
		srv:         s,
		id:          id,
		clip:        clip,
		spec:        spec,
		cc:          cc,
		maxKbps:     maxKbps,
		sentVideo:   sess.sentVideo,
		failedRungs: sess.failedRungs,
		fecMeta:     sess.fecMeta[:0],
		arena:       sess.arena,
		srcStore:    sess.srcStore,
	}
	sess.arena.Reset()
	sess.encIdx = clip.EncodingIndexFor(maxKbps)
	if spec.Protocol == "udp" {
		// Pace from the client's stated connection speed, not the encoding:
		// a broadband-only clip served to a modem must still start at modem
		// rate or the first seconds are pure queue overflow.
		start := clip.Encodings[sess.encIdx].TotalKbps
		if maxKbps < start {
			start = maxKbps
		}
		sess.ctrl = s.cfg.NewController(start)
		sess.dataUDP = s.udpPort.ConnFor(spec.ClientDataAddr)
	}
	return sess
}

// paceArm and checkArm give the session's two recurring timers distinct
// EventHandler identities without boxing allocations: a converted pointer
// to the session itself is the handler.
type paceArm streamSession

func (x *paceArm) Fire(time.Duration) { (*streamSession)(x).pace() }

type checkArm streamSession

func (x *checkArm) Fire(time.Duration) { (*streamSession)(x).check() }

func (sess *streamSession) bindTCPData(conn transport.Conn) {
	sess.dataTCP = conn
	sess.backlogProbe, _ = conn.(interface{ QueueDepth() int })
	conn.SetReceiver(func(payload any, _ int) {
		pkt, ok := payload.(*rdt.Packet)
		if !ok {
			return
		}
		sess.onFeedback(pkt)
	})
	sess.maybeStart()
}

func (sess *streamSession) play() {
	sess.playing = true
	sess.maybeStart()
}

// maybeStart begins streaming once both PLAY has arrived and the data
// channel exists.
func (sess *streamSession) maybeStart() {
	if !sess.playing || sess.stopped || sess.src != nil {
		return
	}
	if sess.spec.Protocol == "tcp" && sess.dataTCP == nil {
		return
	}
	enc := sess.clip.Encodings[sess.encIdx]
	if sess.srcStore == nil {
		sess.srcStore = &media.FrameSource{}
	}
	sess.srcStore.Reset(sess.clip, enc)
	sess.src = sess.srcStore
	sess.startAt = sess.srv.cfg.Clock.Now()
	sess.budget = 4096 // small initial allowance
	sess.schedulePace()
	sess.scheduleCheck()
}

func (sess *streamSession) pause() {
	sess.playing = false
	sess.paceTimer.Cancel()
}

func (sess *streamSession) stop() {
	sess.stopped = true
	sess.playing = false
	sess.paceTimer.Cancel()
	sess.checkTimer.Cancel()
	if sess.dataTCP != nil {
		sess.dataTCP.Close()
	}
}

func (sess *streamSession) schedulePace() {
	if sess.stopped || !sess.playing {
		return
	}
	sess.paceTimer = sess.srv.cfg.Clock.AfterHandler(paceQuantum, (*paceArm)(sess))
}

func (sess *streamSession) scheduleCheck() {
	if sess.stopped {
		return
	}
	sess.checkTimer = sess.srv.cfg.Clock.AfterHandler(switchCheck, (*checkArm)(sess))
}

// pace sends due frames, respecting the ahead window and (for UDP) the rate
// controller's byte budget.
func (sess *streamSession) pace() {
	if sess.stopped || !sess.playing || sess.src == nil {
		return
	}
	now := sess.srv.cfg.Clock.Now()
	elapsed := now - sess.startAt

	if sess.spec.Protocol == "udp" && sess.ctrl != nil {
		// The controller can probe above the client's stated connection
		// speed; never pace past it (plus a catch-up margin) — blasting a
		// DSL line at 1.25x its ceiling just manufactures queue loss.
		rate := sess.ctrl.RateKbps()
		if ceiling := sess.maxKbps * 1.15; rate > ceiling {
			rate = ceiling
		}
		sess.budget += rate * 1000 / 8 * paceQuantum.Seconds()
		const maxBudget = 64 * 1024
		if sess.budget > maxBudget {
			sess.budget = maxBudget
		}
	}

	// The ahead window ramps: a short initial allowance that grows toward
	// BufferAhead, so the startup burst is roughly 2x the media rate rather
	// than an unbounded dump that masquerades as congestion. Live content
	// cannot be sent ahead of capture at all: only a small encoder buffer
	// separates the camera from the wire.
	ahead := 3*time.Second + elapsed
	if ahead > sess.srv.cfg.BufferAhead {
		ahead = sess.srv.cfg.BufferAhead
	}
	if sess.clip.Live {
		ahead = liveCaptureBuffer
	}
	for {
		if sess.mediaPos > elapsed+ahead {
			break // far enough ahead of the client
		}
		if sess.spec.Protocol == "tcp" && sess.backlogProbe != nil {
			if sess.backlogProbe.QueueDepth() > tcpBacklogHigh {
				break // transport saturated; try again next quantum
			}
		}
		var frame media.Frame
		if sess.hasPending {
			frame = sess.pending
		} else {
			f, ok := sess.src.Next()
			if !ok {
				sess.sendEOS()
				return
			}
			frame = f
		}
		if sess.spec.Protocol == "udp" {
			if sess.budget < float64(frame.Size) {
				// Out of rate budget; stash the frame for the next quantum.
				sess.pending = frame
				sess.hasPending = true
				break
			}
			sess.budget -= float64(frame.Size)
		}
		sess.hasPending = false
		sess.sendFrame(frame)
		sess.mediaPos = frame.MediaTime
	}
	sess.schedulePace()
}

func (sess *streamSession) sendFrame(f media.Frame) {
	enc := sess.src.Encoding()
	stream := rdt.StreamAudio
	var frameIdx uint32
	if f.Video {
		stream = rdt.StreamVideo
		frameIdx = sess.videoFrameCtr
		sess.videoFrameCtr++
	} else {
		frameIdx = sess.audioFrameCtr
		sess.audioFrameCtr++
	}
	frags := media.Ceil(f.Size, maxFragment)
	if frags < 1 {
		frags = 1
	}
	remaining := f.Size
	for i := 0; i < frags; i++ {
		sz := remaining
		if sz > maxFragment {
			sz = maxFragment
		}
		remaining -= sz
		pkt := sess.arena.Data()
		d := pkt.Data
		d.Stream = stream
		d.MediaTime = uint32(f.MediaTime.Milliseconds())
		d.EncRate = uint16(enc.TotalKbps)
		d.FrameIndex = frameIdx
		d.FragIndex = uint8(i)
		d.FragCount = uint8(frags)
		d.PadLen = sz
		if f.Keyframe {
			d.Flags |= rdt.FlagKeyframe
		}
		if f.Video {
			d.Seq = sess.videoSeq
			sess.videoSeq++
		} else {
			d.Seq = sess.audioSeq
			sess.audioSeq++
		}
		sess.sendData(pkt)
		if f.Video && sess.spec.Protocol == "udp" {
			sess.rememberVideo(d)
			if sess.srv.cfg.FEC {
				sess.accumulateFEC(d)
			}
		}
	}
}

func (sess *streamSession) accumulateFEC(d *rdt.Data) {
	if len(sess.fecMeta) == 0 {
		sess.fecBase = d.Seq
	}
	sess.fecMeta = append(sess.fecMeta, rdt.RepairMeta{
		Seq:        d.Seq,
		FrameIndex: d.FrameIndex,
		MediaTime:  d.MediaTime,
		FragIndex:  d.FragIndex,
		FragCount:  d.FragCount,
		Flags:      d.Flags,
		EncRate:    d.EncRate,
		Size:       uint16(d.PayloadLen()),
	})
	if len(sess.fecMeta) < fecGroup {
		return
	}
	maxSz := 0
	for _, m := range sess.fecMeta {
		if int(m.Size) > maxSz {
			maxSz = int(m.Size)
		}
	}
	pkt := sess.arena.Repair()
	rep := pkt.Repair
	rep.Stream = rdt.StreamVideo
	rep.BaseSeq = sess.fecBase
	rep.Group = uint8(len(sess.fecMeta))
	rep.Meta = append(rep.Meta, sess.fecMeta...)
	rep.PadLen = maxSz
	sess.fecMeta = sess.fecMeta[:0]
	sess.sendData(pkt)
}

func (sess *streamSession) sendData(pkt *rdt.Packet) {
	size := rdt.WireSize(pkt)
	if sess.spec.Protocol == "udp" {
		sess.dataUDP.Send(pkt, size)
		return
	}
	if sess.dataTCP != nil {
		sess.dataTCP.Send(pkt, size)
	}
}

func (sess *streamSession) sendEOS() {
	pkt := sess.arena.EOS()
	pkt.EOS.FinalSeq = sess.videoSeq
	sess.sendData(pkt)
	sess.playing = false
}

// check runs once a second: folds feedback into the rate controller and
// evaluates SureStream switching.
func (sess *streamSession) check() {
	if sess.stopped {
		return
	}
	defer sess.scheduleCheck()
	if sess.src == nil {
		return
	}

	switch sess.spec.Protocol {
	case "udp":
		sess.checkUDP()
	case "tcp":
		sess.checkTCP()
	}
}

func (sess *streamSession) checkUDP() {
	if sess.ctrl == nil {
		return
	}
	if sess.haveReport {
		r := sess.lastReport
		sess.haveReport = false
		var lossFrac float64
		// The report carries this interval's expectation and loss.
		if r.Expected > 0 {
			lossFrac = float64(r.Lost) / float64(r.Expected)
			if lossFrac > 1 {
				lossFrac = 1
			}
		}
		// Loss soon after an upswitch means the new rung does not fit:
		// back off before trying again (exponentially, capped at a minute).
		now := sess.srv.cfg.Clock.Now()
		if lossFrac > 0 && sess.lastUpswitchAt > 0 && now-sess.lastUpswitchAt < 6*time.Second {
			if sess.upswitchHold < 8*time.Second {
				sess.upswitchHold = 8 * time.Second
			} else {
				sess.upswitchHold *= 2
				if sess.upswitchHold > time.Minute {
					sess.upswitchHold = time.Minute
				}
			}
			sess.nextUpswitchOK = now + sess.upswitchHold
			sess.failedRungs[sess.upswitchTo]++
			sess.lastUpswitchAt = 0
		}
		// Application-limited intervals (the client buffer is full, or the
		// current encoding needs less than the allowed rate) say nothing
		// about the path; their low receive rates would crash the
		// controller spuriously. Instead, probe optimistically: raise the
		// rate on faith so a higher encoding can be tried — if the path
		// cannot carry it, the resulting loss corrects course.
		elapsed := sess.srv.cfg.Clock.Now() - sess.startAt
		bufferFull := sess.mediaPos > elapsed+sess.srv.cfg.BufferAhead-time.Second
		encLimited := sess.ctrl.RateKbps() > 1.2*sess.clip.Encodings[sess.encIdx].TotalKbps
		switch {
		case lossFrac > 0 || (!bufferFull && !encLimited):
			sess.ctrl.OnFeedback(ratecontrol.Feedback{
				LossFraction: lossFrac,
				RTT:          time.Duration(r.RTTMs) * time.Millisecond,
				RecvRateKbps: float64(r.RateKbps),
			})
		default:
			sess.ctrl.OnFeedback(ratecontrol.Feedback{
				LossFraction: 0,
				RTT:          time.Duration(r.RTTMs) * time.Millisecond,
				RecvRateKbps: sess.ctrl.RateKbps() * 1.2,
			})
		}
	}
	if !sess.srv.cfg.SureStream {
		return
	}
	// Require margin over the target rung: packet-header and FEC overhead
	// run 10-20 % on small packets, and switching up without headroom just
	// oscillates through loss bursts.
	rate := sess.ctrl.RateKbps()
	desired := sess.clip.EncodingIndexFor(minF(rate*0.75, sess.maxKbps))
	sess.applySwitch(desired)
}

func (sess *streamSession) checkTCP() {
	if !sess.srv.cfg.SureStream || sess.dataTCP == nil {
		return
	}
	if sess.backlogProbe == nil {
		return // real sockets: no backlog signal, no switching
	}
	depth := sess.backlogProbe.QueueDepth()
	// "ahead" is how much media the transport has absorbed beyond realtime.
	// A backlog while comfortably ahead is just the startup burst draining;
	// a backlog while behind means TCP cannot sustain the encoding.
	elapsed := sess.srv.cfg.Clock.Now() - sess.startAt
	behind := sess.mediaPos < elapsed+2*time.Second
	switch {
	case depth > tcpBacklogHigh/2 && behind:
		if sess.encIdx > 0 {
			sess.applySwitch(sess.encIdx - 1)
		}
	case depth < tcpBacklogLow:
		// applySwitch gates upswitches on sustained health.
		sess.applySwitch(sess.clip.EncodingIndexFor(sess.maxKbps))
	default:
		sess.healthyChecks = 0
	}
}

// applySwitch moves to encoding index idx with down-fast/up-slow hysteresis
// already applied by the callers.
func (sess *streamSession) applySwitch(idx int) {
	if idx == sess.encIdx || idx < 0 || idx >= len(sess.clip.Encodings) {
		return
	}
	// Upswitches wait for sustained health, and back off after failures.
	now := sess.srv.cfg.Clock.Now()
	if idx > sess.encIdx {
		if now < sess.nextUpswitchOK {
			return
		}
		if sess.failedRungs[sess.encIdx+1] >= 2 {
			return // this rung has proven itself unsustainable
		}
		sess.healthyChecks++
		if sess.healthyChecks < upswitchPatience {
			return
		}
		idx = sess.encIdx + 1 // one rung at a time
		sess.healthyChecks = 0
		sess.lastUpswitchAt = now
		sess.upswitchTo = idx
	} else {
		sess.healthyChecks = 0
	}
	sess.encIdx = idx
	sess.switches++
	enc := sess.clip.Encodings[idx]
	sess.src.ResetAt(sess.clip, enc, sess.mediaPos)
	sess.hasPending = false
}

func (sess *streamSession) onFeedback(pkt *rdt.Packet) {
	switch pkt.Kind {
	case rdt.TypeReport:
		sess.lastReport = *pkt.Report
		sess.haveReport = true
	case rdt.TypeBufferState:
		// Reserved for future pacing refinements; the ahead-window pacing
		// already bounds client buffer growth.
	case rdt.TypeNack:
		sess.retransmit(pkt.Nack)
	}
}

// rememberVideo retains a sent video packet for possible retransmission,
// bounded to the recent window. Seqs are assigned monotonically, so the
// expiry sweep walks forward from sentFloor — amortized O(1) per packet
// where a whole-map scan used to dominate the campaign CPU profile.
func (sess *streamSession) rememberVideo(d *rdt.Data) {
	const window = 512
	sess.sentVideo[d.Seq] = d
	if len(sess.sentVideo) > window {
		cut := d.Seq - window
		for ; sess.sentFloor < cut; sess.sentFloor++ {
			delete(sess.sentVideo, sess.sentFloor)
		}
	}
}

// retransmit answers a NACK by resending the requested packets. Resends are
// exempt from the pacing budget: they are small, latency-critical, and the
// loss they answer already freed capacity.
func (sess *streamSession) retransmit(nk *rdt.Nack) {
	if sess.stopped || nk.Stream != rdt.StreamVideo {
		return
	}
	for _, seq := range nk.Seqs {
		if d, ok := sess.sentVideo[seq]; ok {
			sess.sendData(sess.arena.Wrap(d))
		}
	}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
