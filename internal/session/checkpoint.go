package session

import (
	"fmt"

	"realtracer/internal/rdt"
	"realtracer/internal/rtsp"
	"realtracer/internal/snap"
	"realtracer/internal/transport"
)

// Snapshot tags for the application payloads a checkpoint can encounter on
// the wire or queued inside transport conns.
const (
	snapRTSP  = 1
	snapRDT   = 2
	snapHello = 3
)

// SnapCodec returns the application-payload codec for world checkpoints:
// the three session-level payload types, each serialized field-exactly by
// its own package.
func SnapCodec() transport.AppCodec {
	return transport.AppCodec{
		Encode: func(sw *snap.Writer, payload any) error {
			switch m := payload.(type) {
			case *rtsp.Message:
				sw.U8(snapRTSP)
				m.Persist(sw)
			case *rdt.Packet:
				sw.U8(snapRDT)
				m.Persist(sw)
			case *DataHello:
				sw.U8(snapHello)
				sw.Str(m.SessionID)
			default:
				return fmt.Errorf("session: cannot snapshot payload type %T", payload)
			}
			return sw.Err()
		},
		Decode: func(sr *snap.Reader) (any, error) {
			switch tag := sr.U8(); tag {
			case snapRTSP:
				return rtsp.RestoreMessage(sr), sr.Err()
			case snapRDT:
				return rdt.RestorePacket(sr)
			case snapHello:
				return &DataHello{SessionID: sr.Str()}, sr.Err()
			default:
				if sr.Err() != nil {
					return nil, sr.Err()
				}
				return nil, fmt.Errorf("session: unknown snapshot payload tag %d", tag)
			}
		},
	}
}

// Persist writes the clip description field-exactly.
func (d *ClipDesc) Persist(sw *snap.Writer) {
	sw.Tag("desc")
	sw.Str(d.Title)
	sw.Dur(d.Duration)
	sw.Bool(d.Scalable)
	sw.Bool(d.Live)
	sw.U32(uint32(len(d.Encodings)))
	for _, e := range d.Encodings {
		sw.F64(e.TotalKbps)
		sw.F64(e.AudioKbps)
		sw.F64(e.FrameRate)
		sw.Int(e.Width)
		sw.Int(e.Height)
	}
}

// RestoreClipDesc reads a record written by ClipDesc.Persist.
func RestoreClipDesc(sr *snap.Reader) ClipDesc {
	sr.Tag("desc")
	d := ClipDesc{
		Title:    sr.Str(),
		Duration: sr.Dur(),
		Scalable: sr.Bool(),
		Live:     sr.Bool(),
	}
	n := int(sr.U32())
	for i := 0; i < n && sr.Err() == nil; i++ {
		d.Encodings = append(d.Encodings, EncodingDesc{
			TotalKbps: sr.F64(),
			AudioKbps: sr.F64(),
			FrameRate: sr.F64(),
			Width:     sr.Int(),
			Height:    sr.Int(),
		})
	}
	return d
}
