package session

import (
	"fmt"
	"net"

	"realtracer/internal/transport"
	"realtracer/internal/vclock"
)

// RealNet implements Net over OS sockets for live localhost runs. All
// deliveries are serialized through the Loop, keeping engines
// single-threaded exactly as in simulation.
type RealNet struct {
	// Host is the bind/advertise address ("127.0.0.1" for the examples).
	Host string
	// Loop serializes callbacks.
	Loop *vclock.Loop
	// codec is fixed: the session Codec.
}

// ListenTCP implements Net.
func (n RealNet) ListenTCP(port int, accept func(transport.Conn)) (func(), error) {
	ln, err := transport.ListenRealTCP(n.hostPort(port), Codec{}, n.Loop, func(c *transport.RealTCPConn) {
		accept(c)
	})
	if err != nil {
		return nil, err
	}
	return func() { ln.Close() }, nil
}

// ListenUDP implements Net.
func (n RealNet) ListenUDP(port int, recv func(string, any, int)) (DataPort, error) {
	return transport.ListenRealUDP(n.hostPort(port), Codec{}, n.Loop, recv)
}

// DialTCP implements Net. Dialing happens on a fresh goroutine; the callback
// is posted to the loop.
func (n RealNet) DialTCP(addr string, cb func(transport.Conn, error)) {
	go func() {
		c, err := transport.DialRealTCP(addr, Codec{}, n.Loop)
		n.Loop.Post(func() {
			if err != nil {
				cb(nil, err)
				return
			}
			cb(c, nil)
		})
	}()
}

// DialUDP implements Net.
func (n RealNet) DialUDP(addr string) (transport.Conn, error) {
	return transport.DialRealUDP(addr, Codec{}, n.Loop)
}

// Addr implements Net.
func (n RealNet) Addr(port int) string { return n.hostPort(port) }

func (n RealNet) hostPort(port int) string {
	return net.JoinHostPort(n.Host, fmt.Sprintf("%d", port))
}

var _ Net = RealNet{}
var _ Net = SimNet{}
