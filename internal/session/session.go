// Package session holds the protocol pieces shared by the server and player
// engines: the clip description exchanged in DESCRIBE, the data-channel
// hello that binds a TCP data connection to its RTSP session, the combined
// wire codec used by the real-socket transports, and the Net abstraction
// that lets the same engine code run over the simulator or over OS sockets.
package session

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"realtracer/internal/media"
	"realtracer/internal/netsim"
	"realtracer/internal/packet"
	"realtracer/internal/rdt"
	"realtracer/internal/rtsp"
	"realtracer/internal/transport"
)

// Well-known ports, mirroring RealServer's defaults (554 RTSP; data ports in
// the 697x range).
const (
	ControlPort = 554
	DataTCPPort = 5540
	DataUDPPort = 6970
)

// EncodingDesc is one SureStream stream as advertised in DESCRIBE.
type EncodingDesc struct {
	TotalKbps float64
	AudioKbps float64
	FrameRate float64
	Width     int
	Height    int
}

// ClipDesc is the DESCRIBE body: everything the player needs to know about
// the clip before SETUP.
type ClipDesc struct {
	Title     string
	Duration  time.Duration
	Scalable  bool
	Live      bool
	Encodings []EncodingDesc
}

// DescFromClip converts a media clip to its advertised description.
func DescFromClip(c *media.Clip) ClipDesc {
	d := ClipDesc{Title: c.Title, Duration: c.Duration, Scalable: c.ScalableVideo, Live: c.Live}
	for _, e := range c.Encodings {
		d.Encodings = append(d.Encodings, EncodingDesc{
			TotalKbps: e.TotalKbps, AudioKbps: e.AudioKbps,
			FrameRate: e.FrameRate, Width: e.Width, Height: e.Height,
		})
	}
	return d
}

// FrameRateFor returns the encoded frame rate of the stream whose total
// bandwidth is kbps, or 0 when unknown. Players use it to interpret the
// EncRate field of arriving data.
func (d ClipDesc) FrameRateFor(kbps float64) float64 {
	for _, e := range d.Encodings {
		if e.TotalKbps == kbps {
			return e.FrameRate
		}
	}
	return 0
}

// Marshal renders the description as the DESCRIBE body (a compact SDP-like
// text form).
func (d ClipDesc) Marshal() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "title=%s\n", d.Title)
	fmt.Fprintf(&b, "duration_ms=%d\n", d.Duration.Milliseconds())
	fmt.Fprintf(&b, "scalable=%t\n", d.Scalable)
	fmt.Fprintf(&b, "live=%t\n", d.Live)
	for _, e := range d.Encodings {
		fmt.Fprintf(&b, "enc=%g/%g/%g/%dx%d\n", e.TotalKbps, e.AudioKbps, e.FrameRate, e.Width, e.Height)
	}
	return []byte(b.String())
}

// ErrBadDesc reports an unparseable DESCRIBE body.
var ErrBadDesc = errors.New("session: malformed clip description")

// ParseClipDesc parses a DESCRIBE body.
func ParseClipDesc(body []byte) (ClipDesc, error) {
	var d ClipDesc
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		kv := strings.SplitN(line, "=", 2)
		if len(kv) != 2 {
			return d, ErrBadDesc
		}
		switch kv[0] {
		case "title":
			d.Title = kv[1]
		case "duration_ms":
			ms, err := strconv.ParseInt(kv[1], 10, 64)
			if err != nil {
				return d, ErrBadDesc
			}
			d.Duration = time.Duration(ms) * time.Millisecond
		case "scalable":
			d.Scalable = kv[1] == "true"
		case "live":
			d.Live = kv[1] == "true"
		case "enc":
			var e EncodingDesc
			var dims string
			parts := strings.Split(kv[1], "/")
			if len(parts) != 4 {
				return d, ErrBadDesc
			}
			var err error
			if e.TotalKbps, err = strconv.ParseFloat(parts[0], 64); err != nil {
				return d, ErrBadDesc
			}
			if e.AudioKbps, err = strconv.ParseFloat(parts[1], 64); err != nil {
				return d, ErrBadDesc
			}
			if e.FrameRate, err = strconv.ParseFloat(parts[2], 64); err != nil {
				return d, ErrBadDesc
			}
			dims = parts[3]
			wh := strings.SplitN(dims, "x", 2)
			if len(wh) != 2 {
				return d, ErrBadDesc
			}
			if e.Width, err = strconv.Atoi(wh[0]); err != nil {
				return d, ErrBadDesc
			}
			if e.Height, err = strconv.Atoi(wh[1]); err != nil {
				return d, ErrBadDesc
			}
			d.Encodings = append(d.Encodings, e)
		}
	}
	if len(d.Encodings) == 0 || d.Duration <= 0 {
		return d, ErrBadDesc
	}
	return d, nil
}

// DataHello is the first message on a TCP data connection, binding it to the
// RTSP session negotiated on the control connection.
type DataHello struct {
	SessionID string

	transit bool // true on a leased shard-transit copy; false on originals
}

// helloTransitClass is the pool slot for DataHello transit snapshots.
var helloTransitClass = netsim.RegisterTransitClass()

// TransitCopy returns a pooled snapshot for shard transit
// (netsim.Transferable, matched structurally). The hello is immutable in
// practice; the copy keeps the value-semantics-at-the-wire contract uniform.
func (h *DataHello) TransitCopy(tp *netsim.TransitPool) any {
	var cp *DataHello
	if v := tp.Get(helloTransitClass); v != nil {
		cp = v.(*DataHello)
	} else {
		cp = &DataHello{}
	}
	cp.SessionID = h.SessionID
	cp.transit = true
	return cp
}

// TransitRelease implements netsim.TransitReleasable; a no-op on originals.
func (h *DataHello) TransitRelease(tp *netsim.TransitPool) {
	if !h.transit {
		return
	}
	h.transit = false
	tp.Put(helloTransitClass, h)
}

// Codec is the combined wire codec for live-socket mode: a one-byte channel
// tag followed by the channel's own encoding.
type Codec struct{}

// Channel tags.
const (
	chanRTSP  = 0x01
	chanRDT   = 0x02
	chanHello = 0x03
)

// Encode implements transport.Codec.
func (Codec) Encode(payload any) ([]byte, error) {
	switch m := payload.(type) {
	case *rtsp.Message:
		return append([]byte{chanRTSP}, m.Marshal()...), nil
	case *rdt.Packet:
		b, err := rdt.Encode(m)
		if err != nil {
			return nil, err
		}
		return append([]byte{chanRDT}, b...), nil
	case *DataHello:
		return append([]byte{chanHello}, []byte(m.SessionID)...), nil
	default:
		return nil, fmt.Errorf("session: cannot encode %T", payload)
	}
}

// EncodeTo implements transport.WriterCodec: it appends the frame to a
// caller-owned writer, so the live-socket send path reuses one buffer per
// connection instead of allocating per packet. On error the writer is rolled
// back to its length at entry.
func (Codec) EncodeTo(w *packet.Writer, payload any) error {
	base := w.Len()
	switch m := payload.(type) {
	case *rtsp.Message:
		w.U8(chanRTSP)
		w.Raw(m.Marshal())
		return nil
	case *rdt.Packet:
		w.U8(chanRDT)
		if err := rdt.EncodeTo(w, m); err != nil {
			w.Truncate(base)
			return err
		}
		return nil
	case *DataHello:
		w.U8(chanHello)
		w.Raw([]byte(m.SessionID))
		return nil
	default:
		return fmt.Errorf("session: cannot encode %T", payload)
	}
}

// Decode implements transport.Codec.
func (Codec) Decode(data []byte) (any, error) {
	if len(data) == 0 {
		return nil, errors.New("session: empty frame")
	}
	switch data[0] {
	case chanRTSP:
		return rtsp.Parse(data[1:])
	case chanRDT:
		return rdt.Decode(data[1:])
	case chanHello:
		return &DataHello{SessionID: string(data[1:])}, nil
	default:
		return nil, fmt.Errorf("session: unknown channel tag %#x", data[0])
	}
}

var _ transport.Codec = Codec{}

// DataPort is the server-side unconnected datagram endpoint, satisfied by
// both transport.UDPPort (simulation) and transport.RealUDPPort (sockets).
type DataPort interface {
	SendTo(addr string, payload any, size int) error
	// ConnFor returns a send-only Conn view of the port talking to raddr,
	// with the destination resolved once — the per-session fast path.
	ConnFor(raddr string) transport.Conn
	LocalAddr() string
	Close() error
}

// Net abstracts endpoint creation on one host so engines are agnostic to
// simulation vs. real sockets.
type Net interface {
	// ListenTCP accepts message connections on port.
	ListenTCP(port int, accept func(transport.Conn)) (stop func(), err error)
	// ListenUDP binds a datagram port, delivering (sender, payload, size).
	ListenUDP(port int, recv func(from string, payload any, size int)) (DataPort, error)
	// DialTCP opens a message connection; cb fires exactly once.
	DialTCP(addr string, cb func(transport.Conn, error))
	// DialUDP returns a connected datagram Conn (usable immediately).
	DialUDP(addr string) (transport.Conn, error)
	// Addr renders "this host, that port" for advertisement to the peer.
	Addr(port int) string
}

// SimNet implements Net over the simulator's per-host Stack.
type SimNet struct{ Stack *transport.Stack }

// ListenTCP implements Net.
func (n SimNet) ListenTCP(port int, accept func(transport.Conn)) (func(), error) {
	return n.Stack.Listen(port, accept), nil
}

// ListenUDP implements Net.
func (n SimNet) ListenUDP(port int, recv func(string, any, int)) (DataPort, error) {
	return n.Stack.ListenUDP(port, recv), nil
}

// DialTCP implements Net.
func (n SimNet) DialTCP(addr string, cb func(transport.Conn, error)) { n.Stack.DialTCP(addr, cb) }

// DialUDP implements Net.
func (n SimNet) DialUDP(addr string) (transport.Conn, error) { return n.Stack.DialUDP(addr), nil }

// Addr implements Net.
func (n SimNet) Addr(port int) string { return fmt.Sprintf("%s:%d", n.Stack.Host(), port) }
