package session

import (
	"testing"
	"testing/quick"
	"time"

	"realtracer/internal/media"
	"realtracer/internal/rdt"
	"realtracer/internal/rtsp"
)

func TestClipDescRoundTrip(t *testing.T) {
	clip := media.GenerateClip("rtsp://h/c.rm", "news-1", media.ContentNews, 3*time.Minute, 20, 350, 1)
	d := DescFromClip(clip)
	got, err := ParseClipDesc(d.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != d.Title || got.Duration != d.Duration || got.Scalable != d.Scalable {
		t.Fatalf("scalar fields mismatch: %+v vs %+v", got, d)
	}
	if len(got.Encodings) != len(d.Encodings) {
		t.Fatalf("encodings %d vs %d", len(got.Encodings), len(d.Encodings))
	}
	for i := range got.Encodings {
		if got.Encodings[i] != d.Encodings[i] {
			t.Fatalf("encoding %d mismatch: %+v vs %+v", i, got.Encodings[i], d.Encodings[i])
		}
	}
}

func TestFrameRateFor(t *testing.T) {
	clip := media.GenerateClip("u", "t", media.ContentNews, time.Minute, 20, 350, 1)
	d := DescFromClip(clip)
	if d.FrameRateFor(34) != 10 {
		t.Fatalf("34Kbps fps=%v want 10", d.FrameRateFor(34))
	}
	if d.FrameRateFor(999) != 0 {
		t.Fatal("unknown rate should be 0")
	}
}

func TestParseClipDescErrors(t *testing.T) {
	cases := []string{
		"",
		"title=x\n",                        // no encodings, no duration
		"duration_ms=abc\nenc=1/2/3/4x5\n", // bad duration
		"duration_ms=1000\nenc=bad\n",      // bad encoding
		"duration_ms=1000\nnot-a-kv\n",     // bad line
		"duration_ms=1000\nenc=1/2/3/nox\n",
	}
	for _, c := range cases {
		if _, err := ParseClipDesc([]byte(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestCodecRoundTripRTSP(t *testing.T) {
	m := rtsp.NewRequest(rtsp.MethodPlay, "rtsp://h/c", 5)
	m.Set("Session", "sess-9")
	b, err := Codec{}.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Codec{}.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	gm, ok := got.(*rtsp.Message)
	if !ok || gm.Method != rtsp.MethodPlay || gm.Get("Session") != "sess-9" {
		t.Fatalf("rtsp round trip failed: %#v", got)
	}
}

func TestCodecRoundTripRDT(t *testing.T) {
	p := &rdt.Packet{Kind: rdt.TypeData, Data: &rdt.Data{Stream: rdt.StreamVideo, Seq: 3, PadLen: 50}}
	b, err := Codec{}.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Codec{}.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	gp, ok := got.(*rdt.Packet)
	if !ok || gp.Kind != rdt.TypeData || gp.Data.Seq != 3 || gp.Data.PayloadLen() != 50 {
		t.Fatalf("rdt round trip failed: %#v", got)
	}
}

func TestCodecRoundTripHello(t *testing.T) {
	b, err := Codec{}.Encode(&DataHello{SessionID: "sess-42"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Codec{}.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if h, ok := got.(*DataHello); !ok || h.SessionID != "sess-42" {
		t.Fatalf("hello round trip failed: %#v", got)
	}
}

func TestCodecErrors(t *testing.T) {
	if _, err := (Codec{}).Encode(42); err == nil {
		t.Fatal("unknown payload type accepted")
	}
	if _, err := (Codec{}).Decode(nil); err == nil {
		t.Fatal("empty frame accepted")
	}
	if _, err := (Codec{}).Decode([]byte{0x7F, 1, 2}); err == nil {
		t.Fatal("unknown channel tag accepted")
	}
}

// Property: any well-formed description round-trips.
func TestPropertyClipDescRoundTrip(t *testing.T) {
	f := func(durSec uint16, scalable bool, encCount uint8) bool {
		if durSec == 0 {
			durSec = 1
		}
		d := ClipDesc{Title: "clip", Duration: time.Duration(durSec) * time.Second, Scalable: scalable}
		n := int(encCount%5) + 1
		ladder := media.SureStreamLadder()
		for i := 0; i < n; i++ {
			e := ladder[i%len(ladder)]
			d.Encodings = append(d.Encodings, EncodingDesc{
				TotalKbps: e.TotalKbps, AudioKbps: e.AudioKbps, FrameRate: e.FrameRate,
				Width: e.Width, Height: e.Height,
			})
		}
		got, err := ParseClipDesc(d.Marshal())
		if err != nil || got.Duration != d.Duration || len(got.Encodings) != n {
			return false
		}
		return got.Scalable == scalable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
