package simclock

import (
	"fmt"
	"testing"
	"time"
)

// benchTick is a self-re-arming handler: the steady-state shape of the
// simulation's dominant timer population (per-session pace ticks, switch
// checks, RTO, gossip).
type benchTick struct {
	c    *Clock
	d    time.Duration
	n    int
	fire int
}

func (h *benchTick) Fire(now time.Duration) {
	h.fire++
	h.c.AfterHandler(h.d, h)
}

// BenchmarkSchedulerChurn measures the event queue under the workload that
// dominates a study run: a large pending population of recurring timers
// (steady/ arms re-arm from inside Fire) and transient arm-then-cancel
// churn (cancel/ arms never fire). Both engines are measured; the wheel is
// the production path, the heap is the differential oracle.
func BenchmarkSchedulerChurn(b *testing.B) {
	engines := []struct {
		name string
		mk   func() *Clock
	}{
		{"wheel", New},
		{"heap", NewHeap},
	}
	for _, eng := range engines {
		for _, pending := range []int{1000, 10000} {
			b.Run(fmt.Sprintf("steady/%s/pending=%d", eng.name, pending), func(b *testing.B) {
				c := eng.mk()
				period := time.Duration(pending) * 100 * time.Microsecond
				for i := 0; i < pending; i++ {
					h := &benchTick{c: c, d: period}
					c.AfterHandler(time.Duration(i)*100*time.Microsecond, h)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.Step()
				}
			})
			b.Run(fmt.Sprintf("cancel/%s/pending=%d", eng.name, pending), func(b *testing.B) {
				c := eng.mk()
				h := &benchTick{c: c, d: time.Hour}
				for i := 0; i < pending; i++ {
					c.AfterHandler(time.Duration(i)*100*time.Microsecond, &benchTick{c: c, d: time.Hour})
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tm := c.AfterHandler(50*time.Millisecond, h)
					tm.Cancel()
				}
			})
		}
	}
}
