package simclock

import (
	"fmt"
	"reflect"
	"sort"
	"time"
)

// This file is the scheduler half of the world-checkpoint seam: the clock's
// scalar state (now, seq, fired) can be read and restored, the pending
// queue can be enumerated as (At, seq, handler) records and re-armed with
// the original sequence numbers, and a registry of EventHandler types
// declares which handlers a checkpoint knows how to persist.
//
// The contract: every pending event at checkpoint time must be a pooled
// handler event of a registered type. Each registered type has exactly one
// owner in the serialized world state (a connection's RTO, a session's pace
// tick, an in-flight packet, ...); the owner persists the event's (At, seq)
// alongside its own fields and re-arms it with Arm on restore. Closure
// events (At/After) carry unserializable captured state — callers drain the
// clock until PendingClosures reaches zero before checkpointing, or fail
// with a clear error.
//
// Restored events keep their original (At, seq) pairs and the clock's seq
// counter resumes from the checkpointed value, so the firing order after a
// resume — and the seq of every event scheduled later — is bit-identical to
// the straight-through run.

// eventKinds maps registered EventHandler concrete types to their stable
// names. Registration happens in package init functions, so the map is
// read-only by the time any clock runs.
var eventKinds = map[reflect.Type]string{}

// RegisterEventKind declares that handlers of proto's concrete type are
// persisted by some owner in a world checkpoint. name is the stable label
// used in diagnostics. Registering the same type twice panics.
func RegisterEventKind(name string, proto EventHandler) {
	t := reflect.TypeOf(proto)
	if prev, ok := eventKinds[t]; ok {
		panic(fmt.Sprintf("simclock: event kind %v already registered as %q", t, prev))
	}
	eventKinds[t] = name
}

// EventKindOf returns the registered kind name for a handler's concrete
// type, or "", false when the type was never registered.
func EventKindOf(h EventHandler) (string, bool) {
	name, ok := eventKinds[reflect.TypeOf(h)]
	return name, ok
}

// PendingClosures reports how many live pending closure (At/After) events
// the clock holds. A checkpoint requires zero: closures cannot round-trip.
func (c *Clock) PendingClosures() int { return c.closures }

// Seq returns the scheduling sequence counter (the seq the next scheduled
// event will receive).
func (c *Clock) Seq() uint64 { return c.seq }

// PendingEvent is one live scheduled event as seen by a checkpoint walk.
type PendingEvent struct {
	At  time.Duration
	Seq uint64
	// Handler is the pooled event's handler; nil for a closure event.
	Handler EventHandler
}

// Pendings returns every live pending event in seq order (scheduling
// order). Cancelled tombstones are skipped, not reaped; the walk mutates
// nothing, so it can run mid-simulation.
func (c *Clock) Pendings() []PendingEvent {
	out := make([]PendingEvent, 0, c.live)
	add := func(e *Event) {
		if e == nil || e.off {
			return
		}
		out = append(out, PendingEvent{At: e.At, Seq: e.seq, Handler: e.h})
	}
	for _, e := range c.near {
		add(e)
	}
	for _, e := range c.over {
		add(e)
	}
	for _, e := range c.events {
		add(e)
	}
	for lvl := 0; lvl < wheelLevels; lvl++ {
		for idx := 0; idx < wheelSlots; idx++ {
			for e := c.slot[lvl][idx]; e != nil; e = e.nxt {
				add(e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// CheckPersistable verifies the clock is in a checkpointable state: no live
// closure events, and every pending handler's concrete type registered via
// RegisterEventKind. The error names the first offender.
func (c *Clock) CheckPersistable() error {
	if c.closures > 0 {
		return fmt.Errorf("simclock: %d closure event(s) pending; closures cannot be checkpointed (drain the clock first)", c.closures)
	}
	for _, p := range c.Pendings() {
		if p.Handler == nil {
			return fmt.Errorf("simclock: pending closure event at %v (seq %d) cannot be checkpointed", p.At, p.Seq)
		}
		if _, ok := EventKindOf(p.Handler); !ok {
			return fmt.Errorf("simclock: pending event at %v (seq %d) has unregistered handler type %T", p.At, p.Seq, p.Handler)
		}
	}
	return nil
}

// Reset wipes every pending event and positions the clock at the restored
// scalar state: virtual time now, sequence counter seq, fired events fired.
// The queue structures come back as an empty wheel; the caller re-arms the
// checkpointed events with Arm.
func (c *Clock) Reset(now time.Duration, seq, fired uint64) {
	c.now, c.seq, c.fired = now, seq, fired
	c.live, c.closures = 0, 0
	c.firing = nil
	c.free = c.free[:0]
	c.near = c.near[:0]
	c.over = c.over[:0]
	c.events = c.events[:0]
	c.nearEnd, c.cur = 0, 0
	for lvl := range c.slot {
		for idx := range c.slot[lvl] {
			c.slot[lvl][idx] = nil
		}
		c.occ[lvl] = 0
	}
}

// Arm schedules h.Fire at absolute time at with an explicit sequence number
// — the restore-side counterpart of AtHandler. seq must come from a
// checkpointed event of this clock (strictly below the restored Seq); the
// clock's own counter is not advanced, so events scheduled after the
// restore receive the same seqs they would have in a straight-through run.
func (c *Clock) Arm(at time.Duration, seq uint64, h EventHandler) Timer {
	if h == nil {
		panic("simclock: Arm with nil handler")
	}
	if at < c.now {
		panic(fmt.Sprintf("simclock: Arm at %v before now %v", at, c.now))
	}
	if seq >= c.seq {
		panic(fmt.Sprintf("simclock: Arm seq %d not below clock seq %d", seq, c.seq))
	}
	var e *Event
	if k := len(c.free); k > 0 {
		e = c.free[k-1]
		c.free = c.free[:k-1]
	} else {
		e = &Event{}
	}
	e.At = at
	e.Fn = nil
	e.h = h
	e.clk = c
	e.seq = seq
	e.off = false
	e.pooled = true
	c.live++
	if c.heapMode {
		c.heapPush(e)
	} else {
		c.wheelAdd(e)
	}
	return Timer{e: e, gen: e.gen}
}

// When reports the scheduled (At, seq) of the timer's event, with ok false
// for a fired, cancelled, stale or zero handle. Owners persist their armed
// timers as (At, seq) records through this accessor.
func (t Timer) When() (at time.Duration, seq uint64, ok bool) {
	if !t.Active() {
		return 0, 0, false
	}
	return t.e.At, t.e.seq, true
}
