package simclock

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// The timing wheel's correctness contract is bit-exact equivalence with the
// 4-ary heap it replaced: same firing sequence, same Fired/Pending counters,
// same Now, for any trace of arms, cancels, re-arms and run calls. The heap
// stays compiled-in behind NewHeap as the oracle; these tests replay random
// traces through both engines in lockstep.

// tracePair drives one wheel clock and one heap clock with identical inputs
// and records each engine's firing log as (label, time) strings.
type tracePair struct {
	w, h       *Clock
	wlog, hlog []string
}

func newTracePair() *tracePair { return &tracePair{w: New(), h: NewHeap()} }

func (p *tracePair) handlers(label int) (wh, hh EventHandler) {
	wh = &funcHandler{fn: func(now time.Duration) { p.wlog = append(p.wlog, fmt.Sprintf("%d@%d", label, now)) }}
	hh = &funcHandler{fn: func(now time.Duration) { p.hlog = append(p.hlog, fmt.Sprintf("%d@%d", label, now)) }}
	return
}

func (p *tracePair) check(t *testing.T, tag string) {
	t.Helper()
	if len(p.wlog) != len(p.hlog) {
		t.Fatalf("%s: wheel fired %d events, heap %d", tag, len(p.wlog), len(p.hlog))
	}
	for i := range p.wlog {
		if p.wlog[i] != p.hlog[i] {
			t.Fatalf("%s: firing sequence diverges at %d: wheel %q vs heap %q", tag, i, p.wlog[i], p.hlog[i])
		}
	}
	if p.w.Fired() != p.h.Fired() {
		t.Fatalf("%s: Fired %d vs %d", tag, p.w.Fired(), p.h.Fired())
	}
	if p.w.Pending() != p.h.Pending() {
		t.Fatalf("%s: Pending %d vs %d", tag, p.w.Pending(), p.h.Pending())
	}
	if p.w.Now() != p.h.Now() {
		t.Fatalf("%s: Now %v vs %v", tag, p.w.Now(), p.h.Now())
	}
	wa, wok := p.w.NextAt()
	ha, hok := p.h.NextAt()
	if wa != ha || wok != hok {
		t.Fatalf("%s: NextAt (%v,%v) vs (%v,%v)", tag, wa, wok, ha, hok)
	}
}

// randomDelay spans every wheel level and the overflow heap: most delays are
// short (the pace-tick regime), a tail reaches hours, days, and past the
// wheel's ~104-day top span, and exact ties are common.
func randomDelay(rng *rand.Rand) time.Duration {
	switch rng.Intn(10) {
	case 0:
		return 0 // immediate: same-timestamp FIFO
	case 1, 2, 3:
		return time.Duration(rng.Intn(2000)) * 100 * time.Microsecond // sub-tick to level 1
	case 4, 5, 6:
		return time.Duration(rng.Intn(5000)) * time.Millisecond // level 1-2
	case 7:
		return time.Duration(rng.Intn(100)) * time.Hour // level 4-5
	case 8:
		return time.Duration(rng.Intn(300)) * 24 * time.Hour // top level and beyond
	default:
		return time.Duration(rng.Int63n(int64(200 * 365 * 24 * time.Hour))) // deep overflow
	}
}

// TestWheelMatchesHeap replays random arm/cancel/re-arm/Step/Run traces
// through the wheel and the heap oracle and requires identical firing
// sequences and counters at every checkpoint.
func TestWheelMatchesHeap(t *testing.T) {
	traces := 60
	ops := 400
	if testing.Short() {
		traces = 12
	}
	for seed := int64(0); seed < int64(traces); seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := newTracePair()
		type pair struct{ w, h Timer }
		var timers []pair
		label := 0
		for i := 0; i < ops; i++ {
			switch rng.Intn(10) {
			case 0, 1, 2: // pooled handler arm
				d := randomDelay(rng)
				wh, hh := p.handlers(label)
				label++
				timers = append(timers, pair{p.w.AfterHandler(d, wh), p.h.AfterHandler(d, hh)})
			case 3: // closure arm at an absolute time, possibly in the past
				at := p.w.Now() + randomDelay(rng) - 50*time.Millisecond
				wl, hl := p.handlers(label)
				label++
				p.w.At(at, func() { wl.Fire(p.w.Now()) })
				p.h.At(at, func() { hl.Fire(p.h.Now()) })
			case 4: // cancel a random handle (live, stale, or already cancelled)
				if len(timers) == 0 {
					continue
				}
				j := rng.Intn(len(timers))
				if timers[j].w.Active() != timers[j].h.Active() {
					t.Fatalf("seed %d op %d: Active() diverges for timer %d", seed, i, j)
				}
				timers[j].w.Cancel()
				timers[j].h.Cancel()
			case 5, 6: // bounded run
				d := randomDelay(rng)
				p.w.RunFor(d)
				p.h.RunFor(d)
			case 7: // single step
				ws := p.w.Step()
				hs := p.h.Step()
				if ws != hs {
					t.Fatalf("seed %d op %d: Step returned %v vs %v", seed, i, ws, hs)
				}
			case 8: // window protocol probe, as the shard fabric drives it
				h := p.w.Now() + randomDelay(rng)
				p.w.RunBefore(h)
				p.h.RunBefore(h)
			case 9: // re-arm from inside Fire: the recurring-timer fast path
				d := randomDelay(rng)
				reps := rng.Intn(4) + 1
				tick := time.Duration(rng.Intn(200)+1) * time.Millisecond
				wl, hl := p.handlers(label)
				label++
				var wr, hr *rearmTick
				wr = &rearmTick{c: p.w, log: wl, left: reps, tick: tick}
				hr = &rearmTick{c: p.h, log: hl, left: reps, tick: tick}
				p.w.AfterHandler(d, wr)
				p.h.AfterHandler(d, hr)
			}
			if i%50 == 0 {
				p.check(t, fmt.Sprintf("seed %d op %d", seed, i))
			}
		}
		p.w.Run()
		p.h.Run()
		p.check(t, fmt.Sprintf("seed %d drained", seed))
		if p.w.Pending() != 0 {
			t.Fatalf("seed %d: %d events pending after Run", seed, p.w.Pending())
		}
	}
}

// rearmTick re-arms itself a fixed number of times from inside Fire,
// exercising the firing-slot reuse path on the wheel and the plain
// release/obtain path on the heap oracle.
type rearmTick struct {
	c    *Clock
	log  EventHandler
	left int
	tick time.Duration
}

func (r *rearmTick) Fire(now time.Duration) {
	r.log.Fire(now)
	if r.left--; r.left > 0 {
		r.c.AfterHandler(r.tick, r)
	}
}

// TestWheelOverflowOrdering pins the overflow heap's interaction with the
// wheel: events beyond the wheel's ~104-day span must interleave correctly
// with near-term events, including events scheduled between the two ranges
// after time has advanced.
func TestWheelOverflowOrdering(t *testing.T) {
	p := newTracePair()
	day := 24 * time.Hour
	delays := []time.Duration{
		150 * day, time.Millisecond, 104 * day, 500 * day,
		time.Second, 105 * day, 0, 103 * day,
	}
	for i, d := range delays {
		wh, hh := p.handlers(i)
		p.w.AfterHandler(d, wh)
		p.h.AfterHandler(d, hh)
	}
	p.w.RunFor(104 * day)
	p.h.RunFor(104 * day)
	p.check(t, "mid horizon")
	// From the advanced cursor, formerly-overflow times are now wheelable.
	for i, d := range []time.Duration{time.Minute, 40 * day, 500 * day} {
		wh, hh := p.handlers(100 + i)
		p.w.AfterHandler(d, wh)
		p.h.AfterHandler(d, hh)
	}
	p.w.Run()
	p.h.Run()
	p.check(t, "drained")
}
