package simclock

import (
	"math/rand"
	"testing"
	"time"
)

// countHandler is a reusable EventHandler recording its firing times.
type countHandler struct {
	fires []time.Duration
}

func (h *countHandler) Fire(now time.Duration) { h.fires = append(h.fires, now) }

// TestHandlerEventsFireInOrder checks that pooled handler events respect the
// same (At, seq) discipline as closure events, interleaved with them.
func TestHandlerEventsFireInOrder(t *testing.T) {
	c := New()
	var order []string
	h := &countHandler{}
	c.At(time.Second, func() { order = append(order, "closure") })
	c.AtHandler(time.Second, h)
	c.At(time.Second, func() { order = append(order, "closure2") })
	c.Run()
	if len(h.fires) != 1 || h.fires[0] != time.Second {
		t.Fatalf("handler fires = %v, want one at 1s", h.fires)
	}
	if len(order) != 2 || order[0] != "closure" || order[1] != "closure2" {
		t.Fatalf("closure order = %v", order)
	}
}

// TestEventPoolReuse pins the free-list behavior: after a handler event
// fires, its Event is recycled and the next handler schedule reuses it
// instead of allocating.
func TestEventPoolReuse(t *testing.T) {
	c := New()
	h := &countHandler{}
	c.AfterHandler(time.Millisecond, h)
	c.Run()
	if got := c.FreeListLen(); got != 1 {
		t.Fatalf("free list after fire = %d, want 1", got)
	}
	c.AfterHandler(time.Millisecond, h)
	if got := c.FreeListLen(); got != 0 {
		t.Fatalf("free list after reschedule = %d, want 0 (event reused)", got)
	}
	c.Run()
	if len(h.fires) != 2 {
		t.Fatalf("fires = %d, want 2", len(h.fires))
	}
}

// TestStaleTimerCancelIsInert is the generation-counter guarantee: a Timer
// held across its event's firing and recycling must not cancel the new
// occupant of the pooled Event.
func TestStaleTimerCancelIsInert(t *testing.T) {
	c := New()
	h1, h2 := &countHandler{}, &countHandler{}
	stale := c.AfterHandler(time.Millisecond, h1)
	c.Run()
	if len(h1.fires) != 1 {
		t.Fatalf("h1 fired %d times, want 1", len(h1.fires))
	}
	// The pooled event is recycled for h2; the stale handle must be inert.
	fresh := c.AfterHandler(time.Millisecond, h2)
	if stale.Active() {
		t.Fatal("stale Timer reports Active after its event was recycled")
	}
	stale.Cancel()
	if !fresh.Active() {
		t.Fatal("stale Cancel deactivated the recycled event's new generation")
	}
	c.Run()
	if len(h2.fires) != 1 {
		t.Fatalf("h2 fired %d times, want 1 (stale Cancel must not suppress it)", len(h2.fires))
	}
}

// TestTimerCancelLiveGeneration checks the non-stale path still cancels.
func TestTimerCancelLiveGeneration(t *testing.T) {
	c := New()
	h := &countHandler{}
	tm := c.AfterHandler(time.Millisecond, h)
	tm.Cancel()
	if tm.Active() {
		t.Fatal("cancelled Timer reports Active")
	}
	c.Run()
	if len(h.fires) != 0 {
		t.Fatalf("cancelled handler fired %d times", len(h.fires))
	}
	// The reaped event must have returned to the pool.
	if got := c.FreeListLen(); got != 1 {
		t.Fatalf("free list after reap = %d, want 1", got)
	}
}

// rearmHandler re-arms itself from inside Fire — the simTCP RTO pattern —
// exercising recycle-before-run: the event being fired is already back on
// the free-list when Fire runs, so the re-arm reuses it.
type rearmHandler struct {
	c     *Clock
	left  int
	timer Timer
	fires int
}

func (h *rearmHandler) Fire(now time.Duration) {
	h.fires++
	if h.left--; h.left > 0 {
		h.timer = h.c.AfterHandler(time.Millisecond, h)
	}
}

func TestHandlerRearmFromFire(t *testing.T) {
	c := New()
	h := &rearmHandler{c: c, left: 5}
	h.timer = c.AfterHandler(time.Millisecond, h)
	c.Run()
	if h.fires != 5 {
		t.Fatalf("fires = %d, want 5", h.fires)
	}
	// One event object should have served all five arms.
	if got := c.FreeListLen(); got != 1 {
		t.Fatalf("free list = %d, want 1", got)
	}
}

// TestPoolStress drives a large random mix of schedules, cancels, re-arms
// and stale cancels through the pool. Run under -race in CI; the property
// is exact: every schedule fires exactly once unless a cancel landed while
// its handle was still live — a stale cancel (handle held past the event's
// recycling) must suppress nothing.
func TestPoolStress(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := New()
	var fired, cancelledLive int
	h := &funcHandler{fn: func(time.Duration) { fired++ }}
	var stale []Timer
	const n = 20000
	for i := 0; i < n; i++ {
		d := time.Duration(rng.Intn(50)) * time.Millisecond
		tm := c.AfterHandler(d, h)
		switch rng.Intn(4) {
		case 0:
			// Cancel immediately: the handle is certainly live.
			tm.Cancel()
			cancelledLive++
		case 1:
			// Hold the handle past recycling, then cancel it later. Some of
			// these cancels land while the event is still pending (a real
			// cancel), most after it fired and was recycled (must be inert);
			// Active() distinguishes the two at cancel time.
			stale = append(stale, tm)
		}
		if len(stale) > 32 {
			for _, s := range stale {
				if s.Active() {
					cancelledLive++
				}
				s.Cancel()
			}
			stale = stale[:0]
		}
		if rng.Intn(8) == 0 {
			c.RunFor(time.Duration(rng.Intn(100)) * time.Millisecond)
		}
	}
	c.Run()
	if want := n - cancelledLive; fired != want {
		t.Fatalf("fired %d, want %d (%d scheduled, %d cancelled while live)",
			fired, want, n, cancelledLive)
	}
	if c.Pending() != 0 {
		t.Fatalf("pending = %d after Run", c.Pending())
	}
}

type funcHandler struct{ fn func(time.Duration) }

func (h *funcHandler) Fire(now time.Duration) { h.fn(now) }

// TestPoolStressDeterministic pins exact fire counts for the subtle case:
// handles cancelled before their event fires suppress exactly that event,
// handles cancelled after are no-ops.
func TestPoolStressDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := New()
	fired := map[int]int{}
	live := map[int]Timer{}
	cancelled := map[int]bool{}
	n := 5000
	for i := 0; i < n; i++ {
		i := i
		h := &funcHandler{fn: func(time.Duration) { fired[i]++ }}
		live[i] = c.AfterHandler(time.Duration(rng.Intn(200))*time.Millisecond, h)
		if rng.Intn(3) == 0 {
			// Cancel a random earlier schedule — possibly already fired
			// (stale handle), possibly still pending (real cancel).
			j := rng.Intn(i + 1)
			if tm, ok := live[j]; ok && tm.Active() {
				cancelled[j] = true
			}
			live[j].Cancel()
		}
		if rng.Intn(16) == 0 {
			c.RunFor(50 * time.Millisecond)
		}
	}
	c.Run()
	for i := 0; i < n; i++ {
		want := 1
		if cancelled[i] {
			want = 0
		}
		if fired[i] != want {
			t.Fatalf("event %d fired %d times, want %d (cancelled=%v)", i, fired[i], want, cancelled[i])
		}
	}
}
