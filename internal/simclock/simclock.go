// Package simclock provides a deterministic discrete-event virtual clock.
//
// All time in the simulated study flows through a Clock: components schedule
// callbacks at absolute virtual times and the scheduler runs them in
// timestamp order (FIFO among equal timestamps). Nothing ever sleeps on the
// wall clock, which makes an 11-day measurement study reproducible in
// milliseconds of real time.
package simclock

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Event is a scheduled callback. Events fire in (At, seq) order so that two
// events scheduled for the same instant run in scheduling order.
type Event struct {
	At  time.Duration // virtual time at which the event fires
	Fn  func()
	seq uint64
	idx int  // index in the heap, -1 once popped or cancelled
	off bool // cancelled
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.off = true
	}
}

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e != nil && e.off }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Clock is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; the simulation is deliberately sequential so that runs are
// bit-for-bit reproducible.
type Clock struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	fired  uint64
}

// New returns a Clock positioned at virtual time zero with no pending events.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time as an offset from the start of the
// simulation.
func (c *Clock) Now() time.Duration { return c.now }

// Fired returns the number of events executed so far (useful for tests and
// for detecting runaway simulations).
func (c *Clock) Fired() uint64 { return c.fired }

// Pending returns the number of scheduled, not-yet-fired events, including
// cancelled events that have not yet been reaped.
func (c *Clock) Pending() int { return len(c.events) }

// At schedules fn to run at absolute virtual time t. If t is in the past the
// event fires at the current time (never before Now). The returned Event may
// be used to cancel the callback.
func (c *Clock) At(t time.Duration, fn func()) *Event {
	if fn == nil {
		panic("simclock: At called with nil func")
	}
	if t < c.now {
		t = c.now
	}
	e := &Event{At: t, Fn: fn, seq: c.seq}
	c.seq++
	heap.Push(&c.events, e)
	return e
}

// After schedules fn to run d after the current virtual time. Negative
// durations are clamped to zero.
func (c *Clock) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return c.At(c.now+d, fn)
}

// Step runs the single next pending event, advancing the clock to its
// timestamp. It returns false when no events remain.
func (c *Clock) Step() bool {
	for len(c.events) > 0 {
		e := heap.Pop(&c.events).(*Event)
		if e.off {
			continue
		}
		if e.At < c.now {
			panic(fmt.Sprintf("simclock: time went backwards: %v < %v", e.At, c.now))
		}
		c.now = e.At
		c.fired++
		e.Fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (c *Clock) Run() {
	for c.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled during execution are honored if they land
// within the horizon.
func (c *Clock) RunUntil(t time.Duration) {
	for len(c.events) > 0 {
		// Peek: the heap root is the earliest event.
		next := c.events[0]
		if next.off {
			heap.Pop(&c.events)
			continue
		}
		if next.At > t {
			break
		}
		c.Step()
	}
	if t > c.now {
		c.now = t
	}
}

// RunFor executes events within the next d of virtual time.
func (c *Clock) RunFor(d time.Duration) { c.RunUntil(c.now + d) }

// MaxDuration is a run horizon that effectively means "forever".
const MaxDuration = time.Duration(math.MaxInt64)
