// Package simclock provides a deterministic discrete-event virtual clock.
//
// All time in the simulated study flows through a Clock: components schedule
// callbacks at absolute virtual times and the scheduler runs them in
// timestamp order (FIFO among equal timestamps). Nothing ever sleeps on the
// wall clock, which makes an 11-day measurement study reproducible in
// milliseconds of real time.
//
// The scheduler is built for the zero-allocation hot path of the network
// simulator: events live on a free-list and are recycled after they fire or
// are reaped, and hot callers schedule an EventHandler — a reusable object
// with a Fire method — instead of a fresh closure. The closure API
// (At/After) remains for cold paths; closure events are never pooled, so
// their *Event handles stay valid forever.
//
// The pending-event queue is a hierarchical timing wheel (calendar-queue
// style): insertion and re-arm are O(1) slot appends instead of heap sifts,
// and exact (At, seq) order is restored by draining one 131µs slot at a
// time through a tiny "near" heap. The 4-ary heap the wheel replaced stays
// compiled in behind NewHeap as a differential oracle: the property tests
// replay random arm/cancel/re-arm/Step traces through both engines and
// require identical firing sequences, so the wheel cannot drift from the
// reference semantics. Firing order is part of the determinism contract —
// swapping engines changes no output byte.
package simclock

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// EventHandler is the allocation-free alternative to a closure: hot-path
// components implement Fire once and schedule themselves (or a reusable
// sub-object) with AtHandler/AfterHandler, so nothing is captured per event.
type EventHandler interface {
	// Fire runs the event's action at virtual time now.
	Fire(now time.Duration)
}

// Event is a scheduled callback. Events fire in (At, seq) order so that two
// events scheduled for the same instant run in scheduling order.
//
// Events returned by At/After are owned by the caller and never recycled.
// Events backing AtHandler/AfterHandler come from the clock's free-list and
// are returned to it after firing or reaping; cancel those only through the
// generation-checked Timer handle.
type Event struct {
	At  time.Duration // virtual time at which the event fires
	Fn  func()
	h   EventHandler
	nxt *Event // intrusive link while chained in a wheel slot
	clk *Clock // owning clock while scheduled and live; nil once fired/reaped
	seq uint64
	gen uint32 // incremented on every recycle; Timer handles check it
	off bool   // cancelled
	// pooled marks free-list events (handler API); closure events are not
	// recycled because their *Event handle escapes to the caller.
	pooled bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op (it still marks the event, so
// Cancelled reports true afterwards).
func (e *Event) Cancel() {
	if e == nil || e.off {
		return
	}
	e.off = true
	if e.clk != nil {
		// Still scheduled: it leaves the live count now and is reaped from
		// whichever queue structure holds it when the scheduler next touches
		// that slot.
		e.clk.live--
		if !e.pooled {
			e.clk.closures--
		}
		e.clk = nil
	}
}

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e != nil && e.off }

// Timer is a cancellable handle to a pooled handler event. It carries the
// event's generation at scheduling time, so a stale handle — one whose event
// has already fired and been recycled for a different purpose — cancels
// nothing. The zero Timer is inert.
type Timer struct {
	e   *Event
	gen uint32
}

// Cancel prevents the event from firing, if this handle still refers to the
// live generation. Cancelling a fired, reaped, or zero Timer is a no-op.
func (t Timer) Cancel() {
	if t.e != nil && t.e.gen == t.gen {
		t.e.Cancel()
	}
}

// Active reports whether the handle still refers to a scheduled, uncancelled
// event.
func (t Timer) Active() bool {
	return t.e != nil && t.e.gen == t.gen && !t.e.off
}

// Timing-wheel geometry. Level 0 slots are 2^wheelTickBits ns (~131µs) wide;
// each level up widens slots by 2^wheelLevelBits, so six 64-slot levels cover
// ~104 days of virtual time. Events beyond the top level's span — or whose
// bit pattern crosses the top-level boundary — wait in a small overflow heap
// that is consulted alongside the wheel, so no timestamp is ever mis-ordered.
const (
	wheelTickBits  = 17
	wheelLevelBits = 6
	wheelSlots     = 1 << wheelLevelBits
	wheelMask      = wheelSlots - 1
	wheelLevels    = 6
	wheelSpanBits  = wheelTickBits + wheelLevels*wheelLevelBits
)

// Clock is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; the simulation is deliberately sequential so that runs are
// bit-for-bit reproducible.
type Clock struct {
	now   time.Duration
	seq   uint64
	fired uint64
	live  int // scheduled, uncancelled, not-yet-fired events
	// closures counts the live pending closure (At/After) events. Typed
	// handler events round-trip through a checkpoint; closures cannot, so
	// Checkpoint drains the clock until this reaches zero (checkpoint.go).
	closures int
	free     []*Event // recycled pooled events
	// firing holds the pooled event currently executing its handler: if the
	// handler re-arms (the recurring-timer pattern: pace ticks, switch
	// checks, RTO, gossip), the schedule reuses this slot directly instead
	// of a free-list release/obtain round-trip.
	firing *Event

	// Timing wheel (the default engine). Exact order within the active
	// 131µs window comes from the near heap; everything at or beyond
	// nearEnd lives in the wheel slots (or the overflow heap) and is
	// strictly later than every near event.
	near    []*Event // 4-ary min-heap of events with At < nearEnd
	nearEnd time.Duration
	cur     time.Duration // wheel cursor; == nearEnd whenever user code runs
	slot    [wheelLevels][wheelSlots]*Event
	occ     [wheelLevels]uint64 // per-level slot occupancy bitmaps
	over    []*Event            // 4-ary min-heap of beyond-top-span events

	// 4-ary heap engine, kept compiled-in as the differential oracle for
	// the wheel (see NewHeap).
	heapMode bool
	events   []*Event
}

// New returns a Clock positioned at virtual time zero with no pending
// events, scheduling through the timing wheel.
func New() *Clock { return &Clock{} }

// NewHeap returns a Clock backed by the 4-ary heap the timing wheel
// replaced. It exists as a differential oracle: the heap's ordering
// semantics are the reference, and the property tests replay identical
// traces through both engines. Production code uses New.
func NewHeap() *Clock { return &Clock{heapMode: true} }

// Now returns the current virtual time as an offset from the start of the
// simulation.
func (c *Clock) Now() time.Duration { return c.now }

// Fired returns the number of events executed so far (useful for tests and
// for detecting runaway simulations).
func (c *Clock) Fired() uint64 { return c.fired }

// Pending returns the number of scheduled, not-yet-fired live events.
// Cancelled events leave the count at Cancel time, even though their
// tombstones are reaped from the queue structures lazily.
func (c *Clock) Pending() int { return c.live }

// FreeListLen reports the size of the event free-list, for pool tests.
func (c *Clock) FreeListLen() int { return len(c.free) }

// schedule enqueues an event at absolute time t (clamped to now). Pooled
// events are drawn from the re-arm slot or the free-list.
func (c *Clock) schedule(t time.Duration, fn func(), h EventHandler, pooled bool) *Event {
	if pooled && h == nil {
		// Checked here rather than in AtHandler to keep that wrapper under
		// the inlining budget — it sits on the per-packet schedule path.
		panic("simclock: AtHandler called with nil handler")
	}
	if t < c.now {
		t = c.now
	}
	var e *Event
	if pooled {
		if c.firing != nil {
			e = c.firing
			c.firing = nil
		} else if k := len(c.free); k > 0 {
			e = c.free[k-1]
			c.free = c.free[:k-1]
		} else {
			e = &Event{}
		}
	} else {
		e = &Event{}
	}
	e.At = t
	e.Fn = fn
	e.h = h
	e.clk = c
	e.seq = c.seq
	e.off = false
	e.pooled = pooled
	c.seq++
	c.live++
	if !pooled {
		c.closures++
	}
	if c.heapMode {
		c.heapPush(e)
	} else {
		c.wheelAdd(e)
	}
	return e
}

// release retires a reaped or fired event: pooled events go back to the
// free-list with their generation bumped so stale Timer handles become
// inert; closure events are just unlinked (their *Event stays with the
// caller).
func (c *Clock) release(e *Event) {
	e.clk = nil
	e.nxt = nil
	if !e.pooled {
		return
	}
	e.gen++
	e.Fn = nil
	e.h = nil
	c.free = append(c.free, e)
}

// At schedules fn to run at absolute virtual time t. If t is in the past the
// event fires at the current time (never before Now). The returned Event may
// be used to cancel the callback.
func (c *Clock) At(t time.Duration, fn func()) *Event {
	if fn == nil {
		panic("simclock: At called with nil func")
	}
	return c.schedule(t, fn, nil, false)
}

// After schedules fn to run d after the current virtual time. Negative
// durations are clamped to zero.
func (c *Clock) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return c.At(c.now+d, fn)
}

// AtHandler schedules h.Fire at absolute virtual time t on a pooled event:
// after the event fires or is reaped it is recycled, so steady-state
// scheduling allocates nothing. The returned Timer is the only safe way to
// cancel it.
func (c *Clock) AtHandler(t time.Duration, h EventHandler) Timer {
	e := c.schedule(t, nil, h, true)
	return Timer{e: e, gen: e.gen}
}

// AfterHandler schedules h.Fire d after the current virtual time on a pooled
// event. Negative durations are clamped to zero. Re-arming from inside Fire
// is the O(1) fast path: the just-fired event slot is reused in place.
func (c *Clock) AfterHandler(d time.Duration, h EventHandler) Timer {
	if d < 0 {
		d = 0
	}
	return c.AtHandler(c.now+d, h)
}

// peek returns the earliest pending live event without removing it, reaping
// cancelled tombstones on the way, or nil when nothing live is pending.
// Inlinable fast path: a live near-heap top is the global minimum (overflow
// events filed while the near window stood are at or beyond nearEnd), so the
// per-event common case never leaves the caller's frame.
func (c *Clock) peek() *Event {
	if !c.heapMode {
		if len(c.near) > 0 && !c.near[0].off {
			return c.near[0]
		}
		return c.wheelPeek()
	}
	return c.heapPeek()
}

func (c *Clock) heapPeek() *Event {
	for len(c.events) > 0 {
		e := c.events[0]
		if e.off {
			c.heapPop()
			c.release(e)
			continue
		}
		return e
	}
	return nil
}

// popNext removes and returns the earliest pending live event, or nil when
// nothing live is pending. It is peek and the removal fused into one call:
// Step runs once per event, and the extra call layer plus the re-load of the
// near top showed up in the packet-hop profile.
func (c *Clock) popNext() *Event {
	if !c.heapMode {
		if len(c.near) > 0 && !c.near[0].off {
			return popEvent(&c.near)
		}
		if c.wheelPeek() == nil {
			return nil
		}
		return popEvent(&c.near)
	}
	if c.heapPeek() == nil {
		return nil
	}
	return c.heapPop()
}

// Step runs the single next pending event, advancing the clock to its
// timestamp. It returns false when no events remain.
func (c *Clock) Step() bool {
	e := c.popNext()
	if e == nil {
		return false
	}
	if e.At < c.now {
		panic(fmt.Sprintf("simclock: time went backwards: %v < %v", e.At, c.now))
	}
	c.now = e.At
	c.fired++
	c.live--
	e.clk = nil
	if e.pooled {
		// Bump the generation before running: any Timer held for this event
		// is already stale by the time user code runs again. The slot parks
		// in c.firing so an immediate re-arm reuses it without touching the
		// free-list; if the handler does not re-arm, it is flushed there.
		h := e.h
		e.gen++
		e.Fn, e.h, e.nxt = nil, nil, nil
		c.firing = e
		h.Fire(c.now)
		if c.firing == e {
			c.firing = nil
			c.free = append(c.free, e)
		}
		return true
	}
	c.closures--
	if e.h != nil {
		e.h.Fire(c.now)
	} else {
		e.Fn()
	}
	return true
}

// Run executes events until the queue is empty.
func (c *Clock) Run() {
	for c.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled during execution are honored if they land
// within the horizon.
func (c *Clock) RunUntil(t time.Duration) {
	for {
		e := c.peek()
		if e == nil || e.At > t {
			break
		}
		c.Step()
	}
	if t > c.now {
		c.now = t
	}
}

// RunFor executes events within the next d of virtual time.
func (c *Clock) RunFor(d time.Duration) { c.RunUntil(c.now + d) }

// NextAt returns the timestamp of the earliest pending live event, reaping
// cancelled events on the way. ok is false when nothing (live) is pending.
// The shard scheduler uses it to compute the global minimum next-event time
// between conservative windows.
func (c *Clock) NextAt() (t time.Duration, ok bool) {
	e := c.peek()
	if e == nil {
		return 0, false
	}
	return e.At, true
}

// RunBefore executes every event with a timestamp strictly below h, leaving
// later events pending. Unlike RunUntil it neither runs events exactly at
// the horizon nor advances Now to it: the clock rests at the last executed
// event, ready for the next window. It is the per-shard half of the
// conservative synchronization protocol (see netsim.Fabric) — a shard may
// safely run [T, T+lookahead) in parallel with its peers because no event
// executed elsewhere in that window can schedule new work below the horizon.
func (c *Clock) RunBefore(h time.Duration) {
	for {
		t, ok := c.NextAt()
		if !ok || t >= h {
			return
		}
		c.Step()
	}
}

// MaxDuration is a run horizon that effectively means "forever".
const MaxDuration = time.Duration(math.MaxInt64)

// --- hierarchical timing wheel ---
//
// Invariants, maintained by construction and checked against the heap
// oracle by TestWheelMatchesHeap:
//
//   - near holds exactly the events with At < nearEnd; everything in the
//     wheel slots or the overflow heap is at or beyond nearEnd, so the near
//     heap's (At, seq) order is the global order.
//   - cur == nearEnd whenever user code runs. Inside wheelAdvance the
//     cursor temporarily leads nearEnd while cascading.
//   - Slot indices are absolute functions of the timestamp; an event is
//     placed at the level where its timestamp first differs from cur, so
//     every occupied slot's time range lies at or beyond cur and each
//     slot's start reconstructs as windowStart(cur) | idx<<shift without
//     aliasing into the past.
//   - The cursor only ever advances into time ranges whose slots have been
//     detached, so the windowStart reconstruction below never aliases a
//     past window.

func wheelShift(lvl int) int { return wheelTickBits + lvl*wheelLevelBits }

// wheelSparseSpan bounds the sparse fast path's near-horizon extension to
// one level-0 revolution. Wider would let a drained wheel capture ever more
// of the future into the near heap and degrade dense workloads to pure heap
// behavior; narrower would miss the packet-in-flight delays (2-6 ms) that
// make the sparse case hot.
const wheelSparseSpan = time.Duration(1) << (wheelTickBits + wheelLevelBits)

// wheelAdd files an event into the near heap, a wheel slot, or the overflow
// heap. O(1) plus a (rare) small-heap sift.
func (c *Clock) wheelAdd(e *Event) {
	t := e.At
	if t < c.nearEnd {
		pushEvent(&c.near, e)
		return
	}
	// Sparse fast path: when nothing at all is filed beyond the near
	// horizon, an event due soon extends the horizon to cover itself and
	// goes straight into the near heap. A lone packet chain (one event in
	// flight at a time) would otherwise pay a slot insert plus a multi-level
	// cascade per event; with few events pending, the near heap's O(log n)
	// is far cheaper. The "due soon" bound is measured from now — never from
	// the horizon this branch itself raises, or each recurring re-arm would
	// land just past the previous raise, steal every insert, and degrade a
	// dense steady-state population into one big heap. Long delays go to the
	// wheel, occupy it, and thereby switch the short delays back too.
	if t-c.now < wheelSparseSpan && len(c.over) == 0 &&
		c.occ[0]|c.occ[1]|c.occ[2]|c.occ[3]|c.occ[4]|c.occ[5] == 0 {
		c.nearEnd = (t>>wheelTickBits + 1) << wheelTickBits
		c.cur = c.nearEnd
		pushEvent(&c.near, e)
		return
	}
	d := uint64(t ^ c.cur)
	lvl := 0
	if d>>wheelTickBits != 0 {
		lvl = (bits.Len64(d) - 1 - wheelTickBits) / wheelLevelBits
	}
	if lvl >= wheelLevels {
		pushEvent(&c.over, e)
		return
	}
	idx := int(t>>wheelShift(lvl)) & wheelMask
	e.nxt = c.slot[lvl][idx]
	c.slot[lvl][idx] = e
	c.occ[lvl] |= 1 << idx
}

// wheelPeek returns the earliest live event, pulling boundary-crossing
// overflow events into the near window and reaping tombstones.
func (c *Clock) wheelPeek() *Event {
	for {
		if len(c.over) > 0 && c.over[0].At < c.nearEnd {
			e := popEvent(&c.over)
			if e.off {
				c.release(e)
			} else {
				pushEvent(&c.near, e)
			}
			continue
		}
		if len(c.near) > 0 {
			e := c.near[0]
			if e.off {
				popEvent(&c.near)
				c.release(e)
				continue
			}
			return e
		}
		if !c.wheelAdvance() {
			return nil
		}
	}
}

// wheelAdvance moves the near window forward to the next occupied time
// range: it dumps the earliest level-0 slot into the near heap, cascading
// higher-level slots down as the cursor reaches them, or jumps the window
// to the earliest overflow event when that precedes everything wheeled.
// Returns false when the wheel and overflow heap are both empty.
//
// The earliest occupied slot is the minimum reconstructed slot start across
// all levels — not simply the lowest occupied level's lowest slot. The
// distinction matters at window boundaries: a level-0 dump can advance the
// cursor to exactly the start of a still-occupied higher-level slot, after
// which a fresh insert lands at a lower level inside that slot's span. Ties
// break toward the higher level, whose span contains the lower-level slot
// and must cascade first.
func (c *Clock) wheelAdvance() bool {
	// Fully-empty short-circuit: in the sparse regime (everything riding the
	// near heap) this is every call, and the level scan below would be pure
	// overhead on the packet hot path.
	if c.occ[0]|c.occ[1]|c.occ[2]|c.occ[3]|c.occ[4]|c.occ[5] == 0 && len(c.over) == 0 {
		c.cur = c.nearEnd
		return false
	}
	for {
		lvl, idx := -1, 0
		var slotStart time.Duration
		for l := 0; l < wheelLevels; l++ {
			if c.occ[l] == 0 {
				continue
			}
			i := bits.TrailingZeros64(c.occ[l])
			shift := wheelShift(l)
			window := time.Duration(1) << (shift + wheelLevelBits)
			start := (c.cur &^ (window - 1)) | (time.Duration(i) << shift)
			if lvl < 0 || start <= slotStart {
				lvl, idx, slotStart = l, i, start
			}
		}
		if lvl < 0 {
			if len(c.over) == 0 {
				// The wheel drained (possibly by cascading pure-tombstone
				// slots, which advances cur without producing anything).
				// Roll the cursor back to the near boundary: wheelAdd's
				// level selection assumes t >= cur, and a cursor left ahead
				// of nearEnd would alias future inserts into past slots.
				// A cascade that emptied the wheel may have re-filed its
				// events through the sparse fast path, which parks them in
				// the near heap — that is progress, not exhaustion.
				c.cur = c.nearEnd
				return len(c.near) > 0
			}
			// Nothing wheeled: open the near window at the earliest
			// overflow event's slot; the peek loop drains it across.
			c.nearEnd = c.over[0].At&^(1<<wheelTickBits-1) + 1<<wheelTickBits
			c.cur = c.nearEnd
			return true
		}
		width := time.Duration(1) << wheelShift(lvl)
		if len(c.over) > 0 && c.over[0].At < slotStart {
			// A top-boundary-crossing overflow event precedes the earliest
			// wheeled slot: open the window there instead. nearEnd stays at
			// or below slotStart (both are tick-aligned), so no wheel slot
			// is skipped.
			c.nearEnd = c.over[0].At&^(1<<wheelTickBits-1) + 1<<wheelTickBits
			c.cur = c.nearEnd
			return true
		}
		head := c.slot[lvl][idx]
		c.slot[lvl][idx] = nil
		c.occ[lvl] &^= 1 << idx
		if lvl == 0 {
			c.cur = slotStart + width
			c.nearEnd = c.cur
			for e := head; e != nil; {
				nx := e.nxt
				e.nxt = nil
				if e.off {
					c.release(e)
				} else {
					pushEvent(&c.near, e)
				}
				e = nx
			}
			// The slot may have held only tombstones; the peek loop comes
			// back around if the near heap is still empty.
			return true
		}
		// Cascade: re-file the slot's events relative to its start. Each
		// lands at a strictly lower level (amortized O(1) per event over
		// its lifetime).
		c.cur = slotStart
		for e := head; e != nil; {
			nx := e.nxt
			e.nxt = nil
			if e.off {
				c.release(e)
			} else {
				c.wheelAdd(e)
			}
			e = nx
		}
	}
}

// --- 4-ary min-heap ---
//
// Shared by the near/overflow heaps of the wheel engine and by the whole
// queue of the oracle engine. A 4-ary heap halves the tree depth of a
// binary heap and keeps the four children of a node on one cache line of
// pointers; the concrete element type avoids `any` boxing.

func eventLess(a, b *Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

func pushEvent(hp *[]*Event, e *Event) {
	h := append(*hp, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !eventLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	*hp = h
}

func popEvent(hp *[]*Event) *Event {
	h := *hp
	n := len(h)
	top := h[0]
	last := h[n-1]
	h[n-1] = nil
	h = h[:n-1]
	n--
	if n > 0 {
		h[0] = last
		// Sift the displaced last element down.
		i := 0
		for {
			first := 4*i + 1
			if first >= n {
				break
			}
			min := first
			end := first + 4
			if end > n {
				end = n
			}
			for j := first + 1; j < end; j++ {
				if eventLess(h[j], h[min]) {
					min = j
				}
			}
			if !eventLess(h[min], h[i]) {
				break
			}
			h[i], h[min] = h[min], h[i]
			i = min
		}
	}
	*hp = h
	return top
}

func (c *Clock) heapPush(e *Event) { pushEvent(&c.events, e) }
func (c *Clock) heapPop() *Event   { return popEvent(&c.events) }
