// Package simclock provides a deterministic discrete-event virtual clock.
//
// All time in the simulated study flows through a Clock: components schedule
// callbacks at absolute virtual times and the scheduler runs them in
// timestamp order (FIFO among equal timestamps). Nothing ever sleeps on the
// wall clock, which makes an 11-day measurement study reproducible in
// milliseconds of real time.
//
// The scheduler is built for the zero-allocation hot path of the network
// simulator: events live on a free-list and are recycled after they fire or
// are reaped, the priority queue is a concrete 4-ary heap of *Event (no
// container/heap interface boxing), and hot callers schedule an EventHandler
// — a reusable object with a Fire method — instead of a fresh closure. The
// closure API (At/After) remains for cold paths; closure events are never
// pooled, so their *Event handles stay valid forever.
package simclock

import (
	"fmt"
	"math"
	"time"
)

// EventHandler is the allocation-free alternative to a closure: hot-path
// components implement Fire once and schedule themselves (or a reusable
// sub-object) with AtHandler/AfterHandler, so nothing is captured per event.
type EventHandler interface {
	// Fire runs the event's action at virtual time now.
	Fire(now time.Duration)
}

// Event is a scheduled callback. Events fire in (At, seq) order so that two
// events scheduled for the same instant run in scheduling order.
//
// Events returned by At/After are owned by the caller and never recycled.
// Events backing AtHandler/AfterHandler come from the clock's free-list and
// are returned to it after firing or reaping; cancel those only through the
// generation-checked Timer handle.
type Event struct {
	At  time.Duration // virtual time at which the event fires
	Fn  func()
	h   EventHandler
	seq uint64
	gen uint32 // incremented on every recycle; Timer handles check it
	off bool   // cancelled
	// pooled marks free-list events (handler API); closure events are not
	// recycled because their *Event handle escapes to the caller.
	pooled bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.off = true
	}
}

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e != nil && e.off }

// Timer is a cancellable handle to a pooled handler event. It carries the
// event's generation at scheduling time, so a stale handle — one whose event
// has already fired and been recycled for a different purpose — cancels
// nothing. The zero Timer is inert.
type Timer struct {
	e   *Event
	gen uint32
}

// Cancel prevents the event from firing, if this handle still refers to the
// live generation. Cancelling a fired, reaped, or zero Timer is a no-op.
func (t Timer) Cancel() {
	if t.e != nil && t.e.gen == t.gen {
		t.e.off = true
	}
}

// Active reports whether the handle still refers to a scheduled, uncancelled
// event.
func (t Timer) Active() bool {
	return t.e != nil && t.e.gen == t.gen && !t.e.off
}

// Clock is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; the simulation is deliberately sequential so that runs are
// bit-for-bit reproducible.
type Clock struct {
	now    time.Duration
	seq    uint64
	events []*Event // 4-ary min-heap ordered by (At, seq)
	free   []*Event // recycled pooled events
	fired  uint64
}

// New returns a Clock positioned at virtual time zero with no pending events.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time as an offset from the start of the
// simulation.
func (c *Clock) Now() time.Duration { return c.now }

// Fired returns the number of events executed so far (useful for tests and
// for detecting runaway simulations).
func (c *Clock) Fired() uint64 { return c.fired }

// Pending returns the number of scheduled, not-yet-fired events, including
// cancelled events that have not yet been reaped.
func (c *Clock) Pending() int { return len(c.events) }

// FreeListLen reports the size of the event free-list, for pool tests.
func (c *Clock) FreeListLen() int { return len(c.free) }

// schedule enqueues an event at absolute time t (clamped to now). Pooled
// events are drawn from the free-list.
func (c *Clock) schedule(t time.Duration, fn func(), h EventHandler, pooled bool) *Event {
	if t < c.now {
		t = c.now
	}
	var e *Event
	if pooled && len(c.free) > 0 {
		e = c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
	} else {
		e = &Event{}
	}
	e.At = t
	e.Fn = fn
	e.h = h
	e.seq = c.seq
	e.off = false
	e.pooled = pooled
	c.seq++
	c.push(e)
	return e
}

// release returns a pooled event to the free-list, bumping its generation so
// stale Timer handles become inert.
func (c *Clock) release(e *Event) {
	if !e.pooled {
		return
	}
	e.gen++
	e.Fn = nil
	e.h = nil
	c.free = append(c.free, e)
}

// At schedules fn to run at absolute virtual time t. If t is in the past the
// event fires at the current time (never before Now). The returned Event may
// be used to cancel the callback.
func (c *Clock) At(t time.Duration, fn func()) *Event {
	if fn == nil {
		panic("simclock: At called with nil func")
	}
	return c.schedule(t, fn, nil, false)
}

// After schedules fn to run d after the current virtual time. Negative
// durations are clamped to zero.
func (c *Clock) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return c.At(c.now+d, fn)
}

// AtHandler schedules h.Fire at absolute virtual time t on a pooled event:
// after the event fires or is reaped it is recycled, so steady-state
// scheduling allocates nothing. The returned Timer is the only safe way to
// cancel it.
func (c *Clock) AtHandler(t time.Duration, h EventHandler) Timer {
	if h == nil {
		panic("simclock: AtHandler called with nil handler")
	}
	e := c.schedule(t, nil, h, true)
	return Timer{e: e, gen: e.gen}
}

// AfterHandler schedules h.Fire d after the current virtual time on a pooled
// event. Negative durations are clamped to zero.
func (c *Clock) AfterHandler(d time.Duration, h EventHandler) Timer {
	if d < 0 {
		d = 0
	}
	return c.AtHandler(c.now+d, h)
}

// Step runs the single next pending event, advancing the clock to its
// timestamp. It returns false when no events remain.
func (c *Clock) Step() bool {
	for len(c.events) > 0 {
		e := c.pop()
		if e.off {
			c.release(e)
			continue
		}
		if e.At < c.now {
			panic(fmt.Sprintf("simclock: time went backwards: %v < %v", e.At, c.now))
		}
		c.now = e.At
		c.fired++
		fn, h := e.Fn, e.h
		// Recycle before running: the handler may immediately re-arm and
		// reuse this very event, and any Timer held for it is already stale
		// (generation bumped) by the time user code runs again.
		c.release(e)
		if h != nil {
			h.Fire(c.now)
		} else {
			fn()
		}
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (c *Clock) Run() {
	for c.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled during execution are honored if they land
// within the horizon.
func (c *Clock) RunUntil(t time.Duration) {
	for len(c.events) > 0 {
		// Peek: the heap root is the earliest event.
		next := c.events[0]
		if next.off {
			c.release(c.pop())
			continue
		}
		if next.At > t {
			break
		}
		c.Step()
	}
	if t > c.now {
		c.now = t
	}
}

// RunFor executes events within the next d of virtual time.
func (c *Clock) RunFor(d time.Duration) { c.RunUntil(c.now + d) }

// NextAt returns the timestamp of the earliest pending live event, reaping
// cancelled events off the top of the heap on the way. ok is false when
// nothing (live) is pending. The shard scheduler uses it to compute the
// global minimum next-event time between conservative windows.
func (c *Clock) NextAt() (t time.Duration, ok bool) {
	for len(c.events) > 0 {
		next := c.events[0]
		if next.off {
			c.release(c.pop())
			continue
		}
		return next.At, true
	}
	return 0, false
}

// RunBefore executes every event with a timestamp strictly below h, leaving
// later events pending. Unlike RunUntil it neither runs events exactly at
// the horizon nor advances Now to it: the clock rests at the last executed
// event, ready for the next window. It is the per-shard half of the
// conservative synchronization protocol (see netsim.Fabric) — a shard may
// safely run [T, T+lookahead) in parallel with its peers because no event
// executed elsewhere in that window can schedule new work below the horizon.
func (c *Clock) RunBefore(h time.Duration) {
	for {
		t, ok := c.NextAt()
		if !ok || t >= h {
			return
		}
		c.Step()
	}
}

// MaxDuration is a run horizon that effectively means "forever".
const MaxDuration = time.Duration(math.MaxInt64)

// --- 4-ary min-heap ---
//
// A 4-ary heap halves the tree depth of the binary container/heap it
// replaced and keeps the four children of a node on one cache line of
// pointers; together with the concrete element type (no `any` boxing) this
// takes the scheduler off the campaign profile.

func eventLess(a, b *Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

func (c *Clock) push(e *Event) {
	c.events = append(c.events, e)
	i := len(c.events) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !eventLess(c.events[i], c.events[p]) {
			break
		}
		c.events[i], c.events[p] = c.events[p], c.events[i]
		i = p
	}
}

func (c *Clock) pop() *Event {
	h := c.events
	n := len(h)
	top := h[0]
	last := h[n-1]
	h[n-1] = nil
	c.events = h[:n-1]
	n--
	if n == 0 {
		return top
	}
	h[0] = last
	// Sift the displaced last element down.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for j := first + 1; j < end; j++ {
			if eventLess(h[j], h[min]) {
				min = j
			}
		}
		if !eventLess(h[min], h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}
