package simclock

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEventsFireInTimestampOrder(t *testing.T) {
	c := New()
	var got []int
	c.After(30*time.Millisecond, func() { got = append(got, 3) })
	c.After(10*time.Millisecond, func() { got = append(got, 1) })
	c.After(20*time.Millisecond, func() { got = append(got, 2) })
	c.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("fired out of order: %v", got)
	}
}

func TestEqualTimestampsFireFIFO(t *testing.T) {
	c := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		c.At(time.Second, func() { got = append(got, i) })
	}
	c.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-timestamp events not FIFO: %v", got)
		}
	}
}

func TestNowAdvancesToEventTime(t *testing.T) {
	c := New()
	var at time.Duration
	c.At(42*time.Millisecond, func() { at = c.Now() })
	c.Run()
	if at != 42*time.Millisecond {
		t.Fatalf("Now inside event = %v, want 42ms", at)
	}
	if c.Now() != 42*time.Millisecond {
		t.Fatalf("final Now = %v", c.Now())
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	c := New()
	fired := false
	e := c.After(time.Second, func() { fired = true })
	e.Cancel()
	c.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() should report true")
	}
	e.Cancel() // idempotent
}

func TestPastEventsClampToNow(t *testing.T) {
	c := New()
	c.At(time.Second, func() {
		// Scheduling in the past must not move time backwards.
		c.At(0, func() {
			if c.Now() != time.Second {
				t.Errorf("past event ran at %v", c.Now())
			}
		})
	})
	c.Run()
}

func TestRunUntilHorizon(t *testing.T) {
	c := New()
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		d := d * time.Second
		c.At(d, func() { fired = append(fired, d) })
	}
	c.RunUntil(3 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("RunUntil(3s) fired %d events, want 3", len(fired))
	}
	if c.Now() != 3*time.Second {
		t.Fatalf("clock at %v after RunUntil(3s)", c.Now())
	}
	if c.Pending() != 2 {
		t.Fatalf("pending=%d, want 2", c.Pending())
	}
	c.Run()
	if len(fired) != 5 {
		t.Fatalf("remaining events lost: %v", fired)
	}
}

func TestRunUntilHonorsNewlyScheduledEvents(t *testing.T) {
	c := New()
	var got []string
	c.At(time.Second, func() {
		got = append(got, "a")
		c.After(500*time.Millisecond, func() { got = append(got, "b") })
	})
	c.RunUntil(2 * time.Second)
	if len(got) != 2 || got[1] != "b" {
		t.Fatalf("chained event within horizon missed: %v", got)
	}
}

func TestRunForIsRelative(t *testing.T) {
	c := New()
	c.At(time.Second, func() {})
	c.Run()
	n := 0
	c.After(500*time.Millisecond, func() { n++ })
	c.RunFor(time.Second)
	if n != 1 {
		t.Fatalf("RunFor missed relative event")
	}
	if c.Now() != 2*time.Second {
		t.Fatalf("Now=%v want 2s", c.Now())
	}
}

func TestFiredCounter(t *testing.T) {
	c := New()
	for i := 0; i < 7; i++ {
		c.After(time.Duration(i)*time.Millisecond, func() {})
	}
	c.Run()
	if c.Fired() != 7 {
		t.Fatalf("Fired=%d want 7", c.Fired())
	}
}

func TestNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At(nil) should panic")
		}
	}()
	New().At(0, nil)
}

// Property: for any random schedule, events fire in non-decreasing time
// order and the clock never runs backwards.
func TestPropertyOrderedExecution(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New()
		count := int(n%50) + 1
		var last time.Duration = -1
		ok := true
		for i := 0; i < count; i++ {
			c.At(time.Duration(rng.Intn(1000))*time.Millisecond, func() {
				if c.Now() < last {
					ok = false
				}
				last = c.Now()
			})
		}
		c.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPendingCountsLiveEventsOnly: Pending reports live events at the
// moment Cancel is called, regardless of where the tombstone sits in the
// queue or when it is lazily reaped. (Regression test: Pending used to
// return the raw queue length, counting cancelled tombstones until the
// scheduler happened to drain past them.)
func TestPendingCountsLiveEventsOnly(t *testing.T) {
	c := New()
	fired := false
	e := c.At(time.Second, func() { fired = true })
	far := c.At(5*time.Second, func() {})
	if c.Pending() != 2 {
		t.Fatalf("pending=%d want 2", c.Pending())
	}
	e.Cancel()
	// Cancel-then-Pending: the tombstone is excluded immediately, before
	// any Run/Step gets a chance to reap it.
	if c.Pending() != 1 {
		t.Fatalf("pending=%d want 1 immediately after Cancel", c.Pending())
	}
	e.Cancel() // idempotent: must not double-decrement
	if c.Pending() != 1 {
		t.Fatalf("pending=%d want 1 after repeated Cancel", c.Pending())
	}
	c.RunUntil(2 * time.Second)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if c.Pending() != 1 {
		t.Fatalf("pending=%d want 1 (only the live 5s event)", c.Pending())
	}
	if c.Now() != 2*time.Second {
		t.Fatalf("Now=%v want 2s", c.Now())
	}
	far.Cancel()
	if c.Pending() != 0 {
		t.Fatalf("pending=%d want 0 after cancelling the last live event", c.Pending())
	}
}

// TestPendingExcludesCancelledBehindLiveEvents: a cancelled event buried
// behind a live head leaves Pending at Cancel time even though its
// tombstone is reaped only when the queue drains past it; Fired never
// counts it.
func TestPendingExcludesCancelledBehindLiveEvents(t *testing.T) {
	c := New()
	var order []string
	c.At(3*time.Second, func() { order = append(order, "live") })
	e := c.At(5*time.Second, func() { order = append(order, "cancelled") })
	e.Cancel()
	c.RunUntil(time.Second)
	if c.Pending() != 1 {
		t.Fatalf("pending=%d want 1 (buried tombstone excluded)", c.Pending())
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() lost the flag while queued")
	}
	c.RunUntil(10 * time.Second)
	if len(order) != 1 || order[0] != "live" {
		t.Fatalf("fired=%v want only the live event", order)
	}
	if c.Pending() != 0 {
		t.Fatalf("pending=%d want 0 after the queue drained", c.Pending())
	}
	if c.Fired() != 1 {
		t.Fatalf("Fired=%d want 1: cancelled events must not count as fired", c.Fired())
	}
	// The clock advances to the horizon, not to the cancelled event's time.
	if c.Now() != 10*time.Second {
		t.Fatalf("Now=%v want 10s", c.Now())
	}
}

// TestCancelAfterFireLeavesPendingIntact: a post-fire Cancel (stale by
// definition) must not decrement the live count of unrelated events.
func TestCancelAfterFireLeavesPendingIntact(t *testing.T) {
	c := New()
	e := c.After(time.Millisecond, func() {})
	c.After(time.Second, func() {})
	c.RunUntil(10 * time.Millisecond)
	if c.Pending() != 1 {
		t.Fatalf("pending=%d want 1", c.Pending())
	}
	e.Cancel()
	if c.Pending() != 1 {
		t.Fatalf("pending=%d want 1: post-fire Cancel must not decrement", c.Pending())
	}
}

// TestStepSkipsCancelledRuns: Step pops through consecutive cancelled
// events without firing them and reports false on an all-cancelled queue.
func TestStepSkipsCancelledRuns(t *testing.T) {
	c := New()
	for i := 0; i < 5; i++ {
		c.After(time.Duration(i)*time.Millisecond, func() {}).Cancel()
	}
	live := 0
	c.After(10*time.Millisecond, func() { live++ })
	if !c.Step() {
		t.Fatal("Step found no live event behind the cancelled run")
	}
	if live != 1 || c.Pending() != 0 || c.Fired() != 1 {
		t.Fatalf("live=%d pending=%d fired=%d", live, c.Pending(), c.Fired())
	}
	// All-cancelled queue: Step reaps everything and reports false.
	for i := 0; i < 3; i++ {
		c.After(time.Millisecond, func() {}).Cancel()
	}
	if c.Step() {
		t.Fatal("Step fired from an all-cancelled queue")
	}
	if c.Pending() != 0 {
		t.Fatalf("pending=%d want 0 after Step reaped the cancelled run", c.Pending())
	}
}

// TestCancelAfterFireIsNoOp: cancelling an event that already fired neither
// panics nor perturbs the clock.
func TestCancelAfterFireIsNoOp(t *testing.T) {
	c := New()
	n := 0
	e := c.After(time.Millisecond, func() { n++ })
	c.Run()
	e.Cancel()
	if n != 1 {
		t.Fatalf("fired %d times", n)
	}
	if !e.Cancelled() {
		t.Fatal("post-fire Cancel should still mark the event")
	}
	var nilEvent *Event
	nilEvent.Cancel() // nil-safe
	if nilEvent.Cancelled() {
		t.Fatal("nil event reports cancelled")
	}
}

func TestNegativeAfterClampsToZero(t *testing.T) {
	c := New()
	fired := false
	c.After(-time.Second, func() { fired = true })
	c.Run()
	if !fired || c.Now() != 0 {
		t.Fatalf("negative After mishandled: fired=%v now=%v", fired, c.Now())
	}
}
