package simclock

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEventsFireInTimestampOrder(t *testing.T) {
	c := New()
	var got []int
	c.After(30*time.Millisecond, func() { got = append(got, 3) })
	c.After(10*time.Millisecond, func() { got = append(got, 1) })
	c.After(20*time.Millisecond, func() { got = append(got, 2) })
	c.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("fired out of order: %v", got)
	}
}

func TestEqualTimestampsFireFIFO(t *testing.T) {
	c := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		c.At(time.Second, func() { got = append(got, i) })
	}
	c.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-timestamp events not FIFO: %v", got)
		}
	}
}

func TestNowAdvancesToEventTime(t *testing.T) {
	c := New()
	var at time.Duration
	c.At(42*time.Millisecond, func() { at = c.Now() })
	c.Run()
	if at != 42*time.Millisecond {
		t.Fatalf("Now inside event = %v, want 42ms", at)
	}
	if c.Now() != 42*time.Millisecond {
		t.Fatalf("final Now = %v", c.Now())
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	c := New()
	fired := false
	e := c.After(time.Second, func() { fired = true })
	e.Cancel()
	c.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() should report true")
	}
	e.Cancel() // idempotent
}

func TestPastEventsClampToNow(t *testing.T) {
	c := New()
	c.At(time.Second, func() {
		// Scheduling in the past must not move time backwards.
		c.At(0, func() {
			if c.Now() != time.Second {
				t.Errorf("past event ran at %v", c.Now())
			}
		})
	})
	c.Run()
}

func TestRunUntilHorizon(t *testing.T) {
	c := New()
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		d := d * time.Second
		c.At(d, func() { fired = append(fired, d) })
	}
	c.RunUntil(3 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("RunUntil(3s) fired %d events, want 3", len(fired))
	}
	if c.Now() != 3*time.Second {
		t.Fatalf("clock at %v after RunUntil(3s)", c.Now())
	}
	if c.Pending() != 2 {
		t.Fatalf("pending=%d, want 2", c.Pending())
	}
	c.Run()
	if len(fired) != 5 {
		t.Fatalf("remaining events lost: %v", fired)
	}
}

func TestRunUntilHonorsNewlyScheduledEvents(t *testing.T) {
	c := New()
	var got []string
	c.At(time.Second, func() {
		got = append(got, "a")
		c.After(500*time.Millisecond, func() { got = append(got, "b") })
	})
	c.RunUntil(2 * time.Second)
	if len(got) != 2 || got[1] != "b" {
		t.Fatalf("chained event within horizon missed: %v", got)
	}
}

func TestRunForIsRelative(t *testing.T) {
	c := New()
	c.At(time.Second, func() {})
	c.Run()
	n := 0
	c.After(500*time.Millisecond, func() { n++ })
	c.RunFor(time.Second)
	if n != 1 {
		t.Fatalf("RunFor missed relative event")
	}
	if c.Now() != 2*time.Second {
		t.Fatalf("Now=%v want 2s", c.Now())
	}
}

func TestFiredCounter(t *testing.T) {
	c := New()
	for i := 0; i < 7; i++ {
		c.After(time.Duration(i)*time.Millisecond, func() {})
	}
	c.Run()
	if c.Fired() != 7 {
		t.Fatalf("Fired=%d want 7", c.Fired())
	}
}

func TestNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At(nil) should panic")
		}
	}()
	New().At(0, nil)
}

// Property: for any random schedule, events fire in non-decreasing time
// order and the clock never runs backwards.
func TestPropertyOrderedExecution(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New()
		count := int(n%50) + 1
		var last time.Duration = -1
		ok := true
		for i := 0; i < count; i++ {
			c.At(time.Duration(rng.Intn(1000))*time.Millisecond, func() {
				if c.Now() < last {
					ok = false
				}
				last = c.Now()
			})
		}
		c.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeAfterClampsToZero(t *testing.T) {
	c := New()
	fired := false
	c.After(-time.Second, func() { fired = true })
	c.Run()
	if !fired || c.Now() != 0 {
		t.Fatalf("negative After mishandled: fired=%v now=%v", fired, c.Now())
	}
}
