// Package snap is the binary codec substrate for world checkpoints: a
// Writer/Reader pair over primitive little-endian fields with section tags
// for structural validation. The format favours debuggability over size —
// fixed-width integers, length-prefixed byte strings, and a tag byte
// sequence that makes a reader desynchronized from its writer fail fast
// with the section names of both sides, instead of decoding garbage.
//
// Errors are sticky: after the first failure every Read returns zero values
// and Err reports the original cause, so codec code reads whole sections
// without per-field error plumbing and checks once at the end.
package snap

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"
)

// Writer serializes primitive fields to an io.Writer. Errors are sticky;
// check Err (or Flush) once after writing.
type Writer struct {
	w   io.Writer
	buf [8]byte
	err error
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first write error, or nil.
func (w *Writer) Err() error { return w.err }

func (w *Writer) write(b []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

// Tag writes a section marker. Readers consume it with Tag and fail loudly
// on mismatch — the checkpoint format's structural checksum.
func (w *Writer) Tag(name string) { w.Str(name) }

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.write([]byte{v}) }

// Bool writes a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 writes a fixed-width uint32.
func (w *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.write(w.buf[:4])
}

// U64 writes a fixed-width uint64.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.write(w.buf[:8])
}

// I64 writes a fixed-width int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int as int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 writes a float64 bit pattern — bit-exact round-trip, including NaN
// payloads and signed zeros.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Dur writes a time.Duration as its int64 nanosecond count.
func (w *Writer) Dur(v time.Duration) { w.I64(int64(v)) }

// Bytes writes a length-prefixed byte string.
func (w *Writer) Bytes(b []byte) {
	w.U32(uint32(len(b)))
	w.write(b)
}

// Str writes a length-prefixed string.
func (w *Writer) Str(s string) { w.Bytes([]byte(s)) }

// Reader deserializes fields written by Writer. Errors are sticky: after
// the first failure every read returns the zero value and Err reports the
// cause.
type Reader struct {
	r   io.Reader
	buf [8]byte
	err error
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Err returns the first read error, or nil.
func (r *Reader) Err() error { return r.err }

// Fail records err (if none is recorded yet) and poisons further reads.
func (r *Reader) Fail(err error) {
	if r.err == nil && err != nil {
		r.err = err
	}
}

func (r *Reader) read(b []byte) bool {
	if r.err != nil {
		return false
	}
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.err = fmt.Errorf("snap: short read: %w", err)
		return false
	}
	return true
}

// Tag consumes a section marker and fails the reader when it does not
// match name.
func (r *Reader) Tag(name string) {
	got := r.Str()
	if r.err == nil && got != name {
		r.err = fmt.Errorf("snap: section %q, want %q (snapshot and reader disagree on layout)", got, name)
	}
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if !r.read(r.buf[:1]) {
		return 0
	}
	return r.buf[0]
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U32 reads a fixed-width uint32.
func (r *Reader) U32() uint32 {
	if !r.read(r.buf[:4]) {
		return 0
	}
	return binary.LittleEndian.Uint32(r.buf[:4])
}

// U64 reads a fixed-width uint64.
func (r *Reader) U64() uint64 {
	if !r.read(r.buf[:8]) {
		return 0
	}
	return binary.LittleEndian.Uint64(r.buf[:8])
}

// I64 reads a fixed-width int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int written by Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads a float64 bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Dur reads a time.Duration.
func (r *Reader) Dur() time.Duration { return time.Duration(r.I64()) }

// maxBytes bounds one length-prefixed field; a corrupt length fails the
// read instead of attempting a multi-gigabyte allocation.
const maxBytes = 1 << 30

// Bytes reads a length-prefixed byte string.
func (r *Reader) Bytes() []byte {
	n := r.U32()
	if r.err != nil {
		return nil
	}
	if n > maxBytes {
		r.err = fmt.Errorf("snap: field length %d exceeds limit", n)
		return nil
	}
	b := make([]byte, n)
	if n > 0 && !r.read(b) {
		return nil
	}
	return b
}

// Str reads a length-prefixed string.
func (r *Reader) Str() string { return string(r.Bytes()) }
