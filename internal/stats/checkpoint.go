package stats

import (
	"fmt"
	"sort"

	"realtracer/internal/snap"
)

// Binary round-trip codecs for the streaming accumulators, so partial
// figure aggregates can ride along in a world checkpoint and merge
// identically after a resume. Every codec is field-exact: floats persist as
// bit patterns, the Sketch's exact path keeps its insertion order, and map
// contents serialize in sorted key order so the bytes of a given
// accumulator state are deterministic.

// Persist writes the accumulator's state.
func (w *Welford) Persist(sw *snap.Writer) {
	sw.Tag("welford")
	sw.U64(w.n)
	sw.F64(w.mean)
	sw.F64(w.m2)
	sw.F64(w.min)
	sw.F64(w.max)
}

// Restore overwrites the accumulator with persisted state.
func (w *Welford) Restore(sr *snap.Reader) {
	sr.Tag("welford")
	w.n = sr.U64()
	w.mean = sr.F64()
	w.m2 = sr.F64()
	w.min = sr.F64()
	w.max = sr.F64()
}

// persistBins writes one sign's bin map in sorted key order.
func persistBins(sw *snap.Writer, m map[int]uint64) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	sw.U32(uint32(len(keys)))
	for _, k := range keys {
		sw.I64(int64(k))
		sw.U64(m[k])
	}
}

func restoreBins(sr *snap.Reader) map[int]uint64 {
	n := sr.U32()
	if n == 0 {
		return nil
	}
	m := make(map[int]uint64, n)
	for i := uint32(0); i < n; i++ {
		k := int(sr.I64())
		m[k] = sr.U64()
	}
	return m
}

// Persist writes the sketch's state: construction parameters plus either
// the raw exact-path sample (in insertion order) or the bin maps.
func (s *Sketch) Persist(sw *snap.Writer) {
	sw.Tag("sketch")
	sw.F64(s.alpha)
	sw.Int(s.exactCap)
	sw.Bool(s.binned)
	if s.binned {
		persistBins(sw, s.pos)
		persistBins(sw, s.neg)
		sw.U64(s.zero)
	} else {
		sw.U32(uint32(len(s.exact)))
		for _, v := range s.exact {
			sw.F64(v)
		}
	}
	sw.U64(s.n)
	sw.F64(s.min)
	sw.F64(s.max)
}

// RestoreSketch reads a sketch persisted with Persist.
func RestoreSketch(sr *snap.Reader) *Sketch {
	sr.Tag("sketch")
	alpha := sr.F64()
	exactCap := sr.Int()
	s := NewSketchAccuracy(alpha, exactCap)
	s.binned = sr.Bool()
	if s.binned {
		s.pos = restoreBins(sr)
		s.neg = restoreBins(sr)
		s.zero = sr.U64()
	} else {
		n := sr.U32()
		if n > 0 {
			s.exact = make([]float64, n)
			for i := range s.exact {
				s.exact[i] = sr.F64()
			}
		}
	}
	s.n = sr.U64()
	s.min = sr.F64()
	s.max = sr.F64()
	if sr.Err() == nil && !s.binned && len(s.exact) != int(s.n) {
		sr.Fail(fmt.Errorf("stats: sketch exact path holds %d values for n=%d", len(s.exact), s.n))
	}
	return s
}

// Persist writes the distribution's paired accumulators.
func (d *Dist) Persist(sw *snap.Writer) {
	sw.Tag("dist")
	d.W.Persist(sw)
	d.S.Persist(sw)
}

// RestoreDist reads a distribution persisted with Persist.
func RestoreDist(sr *snap.Reader) *Dist {
	sr.Tag("dist")
	d := &Dist{}
	d.W.Restore(sr)
	d.S = RestoreSketch(sr)
	return d
}

// Persist writes the grouped distributions in sorted key order.
func (g *Grouped) Persist(sw *snap.Writer) {
	sw.Tag("grouped")
	keys := g.Keys()
	sw.U32(uint32(len(keys)))
	for _, k := range keys {
		sw.Str(k)
		g.m[k].Persist(sw)
	}
}

// Restore overwrites the group set with persisted state.
func (g *Grouped) Restore(sr *snap.Reader) {
	sr.Tag("grouped")
	n := sr.U32()
	g.m = nil
	if n == 0 {
		return
	}
	g.m = make(map[string]*Dist, n)
	for i := uint32(0); i < n; i++ {
		k := sr.Str()
		g.m[k] = RestoreDist(sr)
	}
}

// Persist writes the tally in sorted key order.
func (c *Counter) Persist(sw *snap.Writer) {
	sw.Tag("counter")
	keys := c.Keys()
	sw.U32(uint32(len(keys)))
	for _, k := range keys {
		sw.Str(k)
		sw.Int(c.m[k])
	}
}

// Restore overwrites the tally with persisted state.
func (c *Counter) Restore(sr *snap.Reader) {
	sr.Tag("counter")
	n := sr.U32()
	c.m = nil
	if n == 0 {
		return
	}
	c.m = make(map[string]int, n)
	for i := uint32(0); i < n; i++ {
		k := sr.Str()
		c.m[k] = sr.Int()
	}
}
