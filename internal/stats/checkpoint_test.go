package stats

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"realtracer/internal/snap"
)

// roundTripSketch persists and restores a sketch, failing the test on any
// codec error.
func roundTripSketch(t *testing.T, s *Sketch) *Sketch {
	t.Helper()
	var buf bytes.Buffer
	sw := snap.NewWriter(&buf)
	s.Persist(sw)
	if err := sw.Err(); err != nil {
		t.Fatalf("persist: %v", err)
	}
	sr := snap.NewReader(&buf)
	got := RestoreSketch(sr)
	if err := sr.Err(); err != nil {
		t.Fatalf("restore: %v", err)
	}
	return got
}

// randValues draws a stream mixing magnitudes, signs and exact zeros — the
// shapes that exercise the sketch's positive/negative/zero bins.
func randValues(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		switch rng.Intn(10) {
		case 0:
			out[i] = 0
		case 1:
			out[i] = -math.Exp(rng.NormFloat64() * 4)
		default:
			out[i] = math.Exp(rng.NormFloat64() * 4)
		}
	}
	return out
}

// TestWelfordRoundTripProperty checks the checkpoint property the
// aggregates depend on: split any stream at any point, round-trip the
// prefix accumulator, finish the suffix on the restored copy — the result
// is field-identical to accumulating the whole stream straight through.
func TestWelfordRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		vals := randValues(rng, 1+rng.Intn(300))
		cut := rng.Intn(len(vals) + 1)

		var straight Welford
		for _, v := range vals {
			straight.Add(v)
		}

		var prefix Welford
		for _, v := range vals[:cut] {
			prefix.Add(v)
		}
		var buf bytes.Buffer
		sw := snap.NewWriter(&buf)
		prefix.Persist(sw)
		if err := sw.Err(); err != nil {
			t.Fatalf("persist: %v", err)
		}
		var resumed Welford
		sr := snap.NewReader(&buf)
		resumed.Restore(sr)
		if err := sr.Err(); err != nil {
			t.Fatalf("restore: %v", err)
		}
		for _, v := range vals[cut:] {
			resumed.Add(v)
		}
		if resumed != straight {
			t.Fatalf("trial %d (n=%d cut=%d): resumed %+v != straight %+v", trial, len(vals), cut, resumed, straight)
		}
	}
}

func TestSketchRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		// Small caps force trials onto the binned path; large ones stay
		// exact — both must round-trip.
		cap := []int{0, 8, 64, DefaultExactCap}[rng.Intn(4)]
		vals := randValues(rng, 1+rng.Intn(400))
		cut := rng.Intn(len(vals) + 1)

		straight := NewSketchAccuracy(DefaultSketchAlpha, cap)
		for _, v := range vals {
			straight.Add(v)
		}

		prefix := NewSketchAccuracy(DefaultSketchAlpha, cap)
		for _, v := range vals[:cut] {
			prefix.Add(v)
		}
		resumed := roundTripSketch(t, prefix)
		for _, v := range vals[cut:] {
			resumed.Add(v)
		}

		if !reflect.DeepEqual(resumed, straight) {
			t.Fatalf("trial %d (cap=%d n=%d cut=%d): resumed != straight\n%+v\n%+v",
				trial, cap, len(vals), cut, resumed, straight)
		}
		// And the observable surface agrees bit-for-bit.
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			if a, b := resumed.Quantile(q), straight.Quantile(q); a != b {
				t.Fatalf("trial %d: quantile %v: %v != %v", trial, q, a, b)
			}
		}
	}
}

// TestSketchRoundTripMergeIdentical pins the merge half of the contract:
// a restored partial merged into another partial gives the same state as
// merging the original.
func TestSketchRoundTripMergeIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		cap := []int{8, 64, DefaultExactCap}[rng.Intn(3)]
		a := NewSketchAccuracy(DefaultSketchAlpha, cap)
		b := NewSketchAccuracy(DefaultSketchAlpha, cap)
		for _, v := range randValues(rng, 1+rng.Intn(200)) {
			a.Add(v)
		}
		for _, v := range randValues(rng, 1+rng.Intn(200)) {
			b.Add(v)
		}

		direct := NewSketchAccuracy(DefaultSketchAlpha, cap)
		direct.Merge(a)
		direct.Merge(b)

		viaSnap := NewSketchAccuracy(DefaultSketchAlpha, cap)
		viaSnap.Merge(roundTripSketch(t, a))
		viaSnap.Merge(roundTripSketch(t, b))

		if !reflect.DeepEqual(direct, viaSnap) {
			t.Fatalf("trial %d: merge of round-tripped partials diverged", trial)
		}
	}
}

func TestCounterGroupedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		var c Counter
		var g Grouped
		keys := 1 + rng.Intn(12)
		for i := 0; i < keys; i++ {
			k := fmt.Sprintf("key-%02d", rng.Intn(20))
			c.Add(k, rng.Intn(1000))
			for j, n := 0, rng.Intn(40); j < n; j++ {
				g.Add(k, rng.NormFloat64()*100)
			}
		}

		var buf bytes.Buffer
		sw := snap.NewWriter(&buf)
		c.Persist(sw)
		g.Persist(sw)
		if err := sw.Err(); err != nil {
			t.Fatalf("persist: %v", err)
		}
		var c2 Counter
		var g2 Grouped
		sr := snap.NewReader(&buf)
		c2.Restore(sr)
		g2.Restore(sr)
		if err := sr.Err(); err != nil {
			t.Fatalf("restore: %v", err)
		}
		if !reflect.DeepEqual(c, c2) {
			t.Fatalf("trial %d: counter diverged: %+v != %+v", trial, c2, c)
		}
		if !reflect.DeepEqual(g, g2) {
			t.Fatalf("trial %d: grouped diverged", trial)
		}
		// Restored groups keep accumulating identically.
		for _, k := range g.Keys() {
			g.Add(k, 3.25)
			g2.Add(k, 3.25)
			if a, b := g.Get(k).Mean(), g2.Get(k).Mean(); a != b {
				t.Fatalf("trial %d: post-restore mean for %s: %v != %v", trial, k, a, b)
			}
		}
	}
}

// TestSketchRestoreRejectsInconsistentExactCount guards the codec against a
// corrupt snapshot claiming an exact path whose sample does not match n.
func TestSketchRestoreRejectsInconsistentExactCount(t *testing.T) {
	s := NewSketch()
	s.Add(1)
	s.Add(2)
	var buf bytes.Buffer
	sw := snap.NewWriter(&buf)
	s.Persist(sw)
	raw := buf.Bytes()
	// n is the third-from-last U64 triplet (n, min, max); bump it.
	raw[len(raw)-24]++
	sr := snap.NewReader(bytes.NewReader(raw))
	RestoreSketch(sr)
	if sr.Err() == nil {
		t.Fatal("restore accepted inconsistent exact-path count")
	}
}
