// Package stats implements the small statistical toolkit the study analysis
// needs: empirical CDFs, histograms, quantiles, summary statistics, Pearson
// correlation and scatter binning.
//
// Everything operates on plain float64 slices and never mutates its input.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by operations that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Summary holds the usual scalar descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	StdDev float64 // population standard deviation
	Min    float64
	Max    float64
}

// Summarize computes descriptive statistics for xs. It returns ErrEmpty when
// xs has no elements.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(len(xs)))
	// The old form called Quantile, which sorts a fresh O(n log n) copy
	// just to read one rank. Selecting the median order statistics is O(n)
	// and returns the same interpolated value bit-for-bit (the benchmark
	// pair in stats_bench_test.go records the win).
	s.Median = medianOf(xs)
	return s, nil
}

// medianOf returns the interpolated median of xs (len > 0) by quickselect
// instead of a full sort. It matches Quantile(xs, 0.5) exactly.
func medianOf(xs []float64) float64 {
	buf := append([]float64(nil), xs...)
	pos := 0.5 * float64(len(buf)-1)
	lo := int(pos)
	v := selectKth(buf, lo)
	frac := pos - float64(lo)
	if frac == 0 {
		return v
	}
	// After selection everything right of lo is >= buf[lo]; the next order
	// statistic is the minimum of that suffix.
	hi := buf[lo+1]
	for _, x := range buf[lo+2:] {
		if x < hi {
			hi = x
		}
	}
	return v*(1-frac) + hi*frac
}

// selectKth partially orders buf in place so buf[k] holds its sorted-order
// value, with no larger element before it and no smaller element after it.
// Iterative Hoare quickselect with median-of-three pivoting: O(n) expected.
func selectKth(buf []float64, k int) float64 {
	lo, hi := 0, len(buf)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if buf[mid] < buf[lo] {
			buf[mid], buf[lo] = buf[lo], buf[mid]
		}
		if buf[hi] < buf[lo] {
			buf[hi], buf[lo] = buf[lo], buf[hi]
		}
		if buf[hi] < buf[mid] {
			buf[hi], buf[mid] = buf[mid], buf[hi]
		}
		pivot := buf[mid]
		i, j := lo, hi
		for i <= j {
			for buf[i] < pivot {
				i++
			}
			for buf[j] > pivot {
				j--
			}
			if i <= j {
				buf[i], buf[j] = buf[j], buf[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return buf[k]
		}
	}
	return buf[k]
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or 0 when xs has
// fewer than one element.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDF is an empirical cumulative distribution function over a sample.
// X holds the sorted distinct-or-repeated sample values; the fraction of the
// sample <= X[i] is F[i]. F is non-decreasing and ends at 1.
type CDF struct {
	X []float64
	F []float64
}

// NewCDF builds the empirical CDF of xs. It returns an error for an empty
// sample.
func NewCDF(xs []float64) (CDF, error) {
	if len(xs) == 0 {
		return CDF{}, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var cdf CDF
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		cdf.X = append(cdf.X, sorted[i])
		cdf.F = append(cdf.F, float64(j)/n)
		i = j
	}
	return cdf, nil
}

// At returns F(x): the fraction of the sample <= x. For x below the sample
// minimum it returns 0.
func (c CDF) At(x float64) float64 {
	// First index with X[i] > x; the answer is F of the previous index.
	i := sort.SearchFloat64s(c.X, math.Nextafter(x, math.Inf(1)))
	if i == 0 {
		return 0
	}
	return c.F[i-1]
}

// FractionBelow returns the fraction of the sample strictly less than x.
func (c CDF) FractionBelow(x float64) float64 {
	i := sort.SearchFloat64s(c.X, x)
	if i == 0 {
		return 0
	}
	return c.F[i-1]
}

// FractionAtLeast returns the fraction of the sample >= x.
func (c CDF) FractionAtLeast(x float64) float64 { return 1 - c.FractionBelow(x) }

// Quantile returns the smallest sample value v with F(v) >= q.
func (c CDF) Quantile(q float64) float64 {
	if len(c.X) == 0 {
		return 0
	}
	for i, f := range c.F {
		if f >= q {
			return c.X[i]
		}
	}
	return c.X[len(c.X)-1]
}

// Points samples the CDF at n evenly spaced x positions spanning [X[0],
// X[last]], producing a plottable series. n must be >= 2.
func (c CDF) Points(n int) (xs, fs []float64) {
	if len(c.X) == 0 || n < 2 {
		return nil, nil
	}
	lo, hi := c.X[0], c.X[len(c.X)-1]
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		xs = append(xs, x)
		fs = append(fs, c.At(x))
	}
	return xs, fs
}

// Histogram bins xs into nbins equal-width bins over [lo, hi). Values outside
// the range are clamped into the first/last bin. Counts[i] is the number of
// samples in bin i.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram builds a histogram. nbins must be positive and hi > lo.
func NewHistogram(xs []float64, lo, hi float64, nbins int) (Histogram, error) {
	if nbins <= 0 || hi <= lo {
		return Histogram{}, errors.New("stats: invalid histogram bounds")
	}
	h := Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
	width := (hi - lo) / float64(nbins)
	for _, x := range xs {
		i := int((x - lo) / width)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		h.Counts[i]++
	}
	return h, nil
}

// BinCenter returns the midpoint of bin i.
func (h Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + width*(float64(i)+0.5)
}

// Total returns the number of samples in the histogram.
func (h Histogram) Total() int {
	var n int
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Pearson returns the Pearson product-moment correlation coefficient of the
// paired samples xs, ys. It returns 0 when the inputs are degenerate (empty,
// mismatched length, or zero variance).
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// LinearFit returns the least-squares line y = a + b*x for the paired sample.
// Degenerate inputs yield a flat line through the mean of ys.
func LinearFit(xs, ys []float64) (a, b float64) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0, 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return my, 0
	}
	b = sxy / sxx
	a = my - b*mx
	return a, b
}

// ScatterBin groups the paired sample (xs, ys) into nbins equal-width x bins
// and returns the mean y per non-empty bin, useful for eyeballing trends in a
// scatter plot (Fig. 28).
func ScatterBin(xs, ys []float64, nbins int) (centers, meanY []float64) {
	if len(xs) != len(ys) || len(xs) == 0 || nbins <= 0 {
		return nil, nil
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		return []float64{lo}, []float64{Mean(ys)}
	}
	width := (hi - lo) / float64(nbins)
	sums := make([]float64, nbins)
	counts := make([]int, nbins)
	for i := range xs {
		b := int((xs[i] - lo) / width)
		if b >= nbins {
			b = nbins - 1
		}
		sums[b] += ys[i]
		counts[b]++
	}
	for b := 0; b < nbins; b++ {
		if counts[b] == 0 {
			continue
		}
		centers = append(centers, lo+width*(float64(b)+0.5))
		meanY = append(meanY, sums[b]/float64(counts[b]))
	}
	return centers, meanY
}
