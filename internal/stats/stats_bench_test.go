package stats

import (
	"math"
	"math/rand"
	"testing"
)

// benchSample is a fixed pseudo-random input shared by the benchmarks.
func benchSample(n int) []float64 {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
	}
	return xs
}

// summarizeTwoPass is the previous Summarize: min/max branches inside the
// summation pass, then Quantile sorting its own private O(n log n) copy for
// the median. Kept here so the benchmark pair records the win of the
// quickselect version.
func summarizeTwoPass(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(len(xs)))
	s.Median = Quantile(xs, 0.5)
	return s, nil
}

// TestSummarizeMatchesTwoPass pins that the optimization changed nothing
// observable.
func TestSummarizeMatchesTwoPass(t *testing.T) {
	xs := benchSample(997)
	got, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := summarizeTwoPass(xs)
	if got != want {
		t.Fatalf("optimized Summarize diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestPropertySummarizeEquivalence: the quickselect median agrees with the
// sort-based one on every input shape — odd/even lengths, duplicates,
// constant runs.
func TestPropertySummarizeEquivalence(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			if rng.Float64() < 0.3 {
				xs[i] = float64(rng.Intn(5)) // force duplicates
			} else {
				xs[i] = rng.NormFloat64() * 100
			}
		}
		got, _ := Summarize(xs)
		want, _ := summarizeTwoPass(xs)
		if got != want {
			t.Fatalf("seed %d n=%d: %+v vs %+v", seed, n, got, want)
		}
		if got.Median != Quantile(xs, 0.5) {
			t.Fatalf("seed %d: median %v != Quantile %v", seed, got.Median, Quantile(xs, 0.5))
		}
	}
}

func BenchmarkSummarize(b *testing.B) {
	xs := benchSample(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Summarize(xs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSummarizeTwoPass(b *testing.B) {
	xs := benchSample(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := summarizeTwoPass(xs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSketchAdd measures the streaming accumulators' per-sample cost
// on the binned path — the hot loop of a population-scale study.
func BenchmarkSketchAdd(b *testing.B) {
	xs := benchSample(4096)
	s := NewSketchAccuracy(DefaultSketchAlpha, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(xs[i%len(xs)])
	}
}

func BenchmarkDistAdd(b *testing.B) {
	xs := benchSample(4096)
	d := NewDist()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Add(xs[i%len(xs)])
	}
}
