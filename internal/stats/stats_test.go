package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeKnownValues(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if !almost(s.StdDev, 2, 1e-9) {
		t.Fatalf("stddev=%v want 2", s.StdDev)
	}
	if !almost(s.Median, 4.5, 1e-9) {
		t.Fatalf("median=%v want 4.5", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

func TestQuantileEndpoints(t *testing.T) {
	xs := []float64{5, 1, 3}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("quantile endpoints wrong")
	}
	if !almost(Quantile(xs, 0.5), 3, 1e-9) {
		t.Fatal("median wrong")
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestCDFBasics(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); !almost(got, tc.want, 1e-9) {
			t.Errorf("At(%v)=%v want %v", tc.x, got, tc.want)
		}
	}
	if got := c.FractionBelow(2); !almost(got, 0.25, 1e-9) {
		t.Errorf("FractionBelow(2)=%v want 0.25", got)
	}
	if got := c.FractionAtLeast(2); !almost(got, 0.75, 1e-9) {
		t.Errorf("FractionAtLeast(2)=%v want 0.75", got)
	}
}

func TestCDFQuantileInverse(t *testing.T) {
	c, _ := NewCDF([]float64{10, 20, 30, 40})
	if c.Quantile(0.5) != 20 {
		t.Fatalf("Quantile(0.5)=%v", c.Quantile(0.5))
	}
	if c.Quantile(1) != 40 || c.Quantile(0.01) != 10 {
		t.Fatal("quantile tails wrong")
	}
}

// Property: a CDF is monotone non-decreasing, starts >0 and ends at 1.
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%60) + 1
		xs := make([]float64, count)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		c, err := NewCDF(xs)
		if err != nil {
			return false
		}
		if !almost(c.F[len(c.F)-1], 1, 1e-9) {
			return false
		}
		for i := 1; i < len(c.F); i++ {
			if c.F[i] < c.F[i-1] || c.X[i] <= c.X[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: At(x) equals the directly counted fraction <= x.
func TestPropertyCDFAtMatchesCount(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 40)
		for i := range xs {
			xs[i] = float64(rng.Intn(20))
		}
		c, _ := NewCDF(xs)
		probe := float64(rng.Intn(22)) - 1
		n := 0
		for _, x := range xs {
			if x <= probe {
				n++
			}
		}
		return almost(c.At(probe), float64(n)/float64(len(xs)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFPoints(t *testing.T) {
	c, _ := NewCDF([]float64{0, 10})
	xs, fs := c.Points(11)
	if len(xs) != 11 || xs[0] != 0 || xs[10] != 10 {
		t.Fatalf("points span wrong: %v", xs)
	}
	for i := 1; i < len(fs); i++ {
		if fs[i] < fs[i-1] {
			t.Fatal("points not monotone")
		}
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{-5, 0, 1, 2, 3, 9, 15}, 0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 7 {
		t.Fatalf("total=%d", h.Total())
	}
	// -5 clamps into bin 0; 15 clamps into bin 4.
	if h.Counts[0] != 3 { // -5, 0, 1
		t.Fatalf("bin0=%d want 3 (%v)", h.Counts[0], h.Counts)
	}
	if h.Counts[4] != 2 { // 9, 15
		t.Fatalf("bin4=%d want 2 (%v)", h.Counts[4], h.Counts)
	}
	if !almost(h.BinCenter(0), 1, 1e-9) {
		t.Fatalf("center0=%v", h.BinCenter(0))
	}
}

func TestHistogramInvalid(t *testing.T) {
	if _, err := NewHistogram(nil, 0, 0, 5); err == nil {
		t.Fatal("hi<=lo accepted")
	}
	if _, err := NewHistogram(nil, 0, 1, 0); err == nil {
		t.Fatal("nbins<=0 accepted")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if r := Pearson(xs, ys); !almost(r, 1, 1e-9) {
		t.Fatalf("r=%v want 1", r)
	}
	neg := []float64{8, 6, 4, 2}
	if r := Pearson(xs, neg); !almost(r, -1, 1e-9) {
		t.Fatalf("r=%v want -1", r)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if Pearson([]float64{1, 2}, []float64{1}) != 0 {
		t.Fatal("mismatched lengths should give 0")
	}
	if Pearson([]float64{1, 1}, []float64{2, 3}) != 0 {
		t.Fatal("zero variance should give 0")
	}
}

func TestLinearFit(t *testing.T) {
	a, b := LinearFit([]float64{0, 1, 2}, []float64{1, 3, 5})
	if !almost(a, 1, 1e-9) || !almost(b, 2, 1e-9) {
		t.Fatalf("fit=(%v,%v) want (1,2)", a, b)
	}
}

func TestScatterBin(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 10, 11}
	ys := []float64{1, 1, 1, 1, 5, 7}
	centers, means := ScatterBin(xs, ys, 2)
	if len(centers) != 2 {
		t.Fatalf("bins=%d", len(centers))
	}
	if !almost(means[1], 6, 1e-9) {
		t.Fatalf("high-bin mean=%v want 6", means[1])
	}
}

// Property: StdDev is translation invariant and scales with the data.
func TestPropertyStdDevAffine(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 30)
		for i := range xs {
			xs[i] = rng.Float64() * 50
		}
		shifted := make([]float64, len(xs))
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + 1000
			scaled[i] = x * 3
		}
		sd := StdDev(xs)
		return almost(StdDev(shifted), sd, 1e-6) && almost(StdDev(scaled), 3*sd, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 25)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev || v < sorted[0] || v > sorted[len(sorted)-1] {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
