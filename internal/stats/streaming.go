// Streaming, mergeable accumulators: the aggregation layer that lets a
// population-scale study compute every figure in one pass over the record
// stream instead of retaining the records themselves.
//
// Three primitives cover the analysis:
//
//   - Welford: single-pass mean/variance with min/max, merged with the
//     parallel-variance formulas of Chan et al.
//   - Sketch: a mergeable quantile sketch with an exact small-sample path.
//     Up to ExactCap values it stores the raw sample, so small (seed-size)
//     studies produce bit-exact quantiles and CDFs; past the cap it folds
//     into fixed-resolution logarithmic bins (DDSketch-style) whose
//     quantiles carry a bounded relative error of Alpha.
//   - Corr: single-pass Pearson correlation co-moments.
//
// Dist bundles Welford + Sketch per metric and Grouped keys Dists by a
// string label (access class, country, protocol). Sketch quantiles are
// merge-order-invariant at query time (values are sorted or binned before
// reading); moment accumulators are order-invariant only up to floating-
// point rounding, and Dist's exact path keeps samples in merge order — so
// callers that need byte-stable output must merge partials in a fixed
// order, the way core.RunCampaignAggregates merges in scenario input
// order.
package stats

import (
	"math"
	"sort"
)

// DefaultSketchAlpha is the relative accuracy of the binned sketch path:
// every quantile estimate is within 0.5% of a sample value at that rank,
// comfortably inside the study's 1% acceptance bound.
const DefaultSketchAlpha = 0.005

// DefaultExactCap is how many raw samples a Sketch retains before folding
// into bins. Seed-size studies (a few thousand clips) stay entirely on the
// exact path, so the streaming refactor is output-preserving there.
const DefaultExactCap = 4096

// Welford accumulates count, mean, variance, min and max in one pass.
// The zero value is an empty accumulator.
type Welford struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add folds one sample in.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge folds another accumulator in; o is unchanged.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.mean += d * float64(o.n) / float64(n)
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}

// N returns the sample count.
func (w Welford) N() int { return int(w.n) }

// Mean returns the running mean (0 when empty).
func (w Welford) Mean() float64 { return w.mean }

// Variance returns the population variance (0 when empty).
func (w Welford) Variance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the population standard deviation.
func (w Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest sample (0 when empty).
func (w Welford) Min() float64 { return w.min }

// Max returns the largest sample (0 when empty).
func (w Welford) Max() float64 { return w.max }

// Corr accumulates Pearson correlation co-moments over a paired sample.
// The zero value is an empty accumulator.
type Corr struct {
	n             uint64
	mx, my        float64
	sxx, syy, sxy float64
}

// Add folds one (x, y) pair in.
func (c *Corr) Add(x, y float64) {
	c.n++
	n := float64(c.n)
	dx := x - c.mx
	dy := y - c.my
	c.mx += dx / n
	c.my += dy / n
	// Use the updated mean for one side (standard single-pass co-moment).
	c.sxx += dx * (x - c.mx)
	c.syy += dy * (y - c.my)
	c.sxy += dx * (y - c.my)
}

// Merge folds another accumulator in; o is unchanged.
func (c *Corr) Merge(o Corr) {
	if o.n == 0 {
		return
	}
	if c.n == 0 {
		*c = o
		return
	}
	n := c.n + o.n
	dx := o.mx - c.mx
	dy := o.my - c.my
	f := float64(c.n) * float64(o.n) / float64(n)
	c.sxx += o.sxx + dx*dx*f
	c.syy += o.syy + dy*dy*f
	c.sxy += o.sxy + dx*dy*f
	c.mx += dx * float64(o.n) / float64(n)
	c.my += dy * float64(o.n) / float64(n)
	c.n = n
}

// N returns the pair count.
func (c Corr) N() int { return int(c.n) }

// R returns the Pearson correlation coefficient, 0 for degenerate input.
func (c Corr) R() float64 {
	if c.n == 0 || c.sxx == 0 || c.syy == 0 {
		return 0
	}
	return c.sxy / math.Sqrt(c.sxx*c.syy)
}

// Sketch is a mergeable quantile sketch. Until ExactCap samples it keeps the
// raw values (exact quantiles, bit-stable CDFs); beyond that it folds into
// fixed-resolution logarithmic bins with relative accuracy Alpha. Merging
// two sketches is order-invariant: the merged quantiles do not depend on
// which side was merged into which, or in what order partials arrive.
//
// The zero value is NOT usable; construct with NewSketch.
type Sketch struct {
	alpha    float64
	gamma    float64
	invLgG   float64 // 1 / ln(gamma)
	exactCap int

	exact  []float64 // insertion order; nil once promoted to bins
	binned bool      // true once the sample has folded into bins
	pos    map[int]uint64
	neg    map[int]uint64
	zero   uint64

	n        uint64
	min, max float64
}

// NewSketch returns an empty sketch with the default accuracy
// (DefaultSketchAlpha) and exact-path capacity (DefaultExactCap).
func NewSketch() *Sketch {
	return NewSketchAccuracy(DefaultSketchAlpha, DefaultExactCap)
}

// NewSketchAccuracy returns an empty sketch with relative accuracy alpha
// (0 < alpha < 1) and the given exact-path capacity. exactCap 0 disables
// the exact path entirely (every value goes straight to bins).
func NewSketchAccuracy(alpha float64, exactCap int) *Sketch {
	if alpha <= 0 || alpha >= 1 {
		alpha = DefaultSketchAlpha
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha:    alpha,
		gamma:    gamma,
		invLgG:   1 / math.Log(gamma),
		exactCap: exactCap,
	}
}

// Alpha returns the sketch's relative accuracy on the binned path.
func (s *Sketch) Alpha() float64 { return s.alpha }

// N returns the sample count.
func (s *Sketch) N() int { return int(s.n) }

// Min returns the smallest sample (0 when empty).
func (s *Sketch) Min() float64 { return s.min }

// Max returns the largest sample (0 when empty).
func (s *Sketch) Max() float64 { return s.max }

// IsExact reports whether the sketch still holds its raw sample.
func (s *Sketch) IsExact() bool { return !s.binned }

// Values returns the raw sample in insertion order while the sketch is on
// the exact path, or nil, false once it has folded into bins. The slice is
// the sketch's backing store; callers must not modify it.
func (s *Sketch) Values() ([]float64, bool) {
	if s.binned {
		return nil, false
	}
	return s.exact, true
}

// Add folds one sample in.
func (s *Sketch) Add(v float64) {
	if s.n == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.n++
	if !s.binned {
		if len(s.exact) < s.exactCap {
			s.exact = append(s.exact, v)
			return
		}
		s.promote()
	}
	s.binAdd(v, 1)
}

// promote folds the exact sample into bins.
func (s *Sketch) promote() {
	vals := s.exact
	s.exact = nil
	s.binned = true
	for _, v := range vals {
		s.binAdd(v, 1)
	}
}

// key maps a positive value to its logarithmic bin index: bin i covers
// (gamma^(i-1), gamma^i].
func (s *Sketch) key(v float64) int {
	return int(math.Ceil(math.Log(v) * s.invLgG))
}

// binValue is the representative value of positive bin i: the midpoint
// estimate 2*gamma^i/(gamma+1), whose relative error to any value in the
// bin is at most alpha.
func (s *Sketch) binValue(i int) float64 {
	return 2 * math.Pow(s.gamma, float64(i)) / (s.gamma + 1)
}

func (s *Sketch) binAdd(v float64, count uint64) {
	switch {
	case v > 0:
		if s.pos == nil {
			s.pos = make(map[int]uint64)
		}
		s.pos[s.key(v)] += count
	case v < 0:
		if s.neg == nil {
			s.neg = make(map[int]uint64)
		}
		s.neg[s.key(-v)] += count
	default:
		s.zero += count
	}
}

// Merge folds o into s; o is unchanged. Sketches constructed with different
// accuracies must not be merged (the bins would not line up); Merge panics
// on an alpha mismatch rather than silently corrupting quantiles.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.n == 0 {
		return
	}
	if o.alpha != s.alpha {
		panic("stats: merging sketches with different accuracies")
	}
	if s.n == 0 {
		s.min, s.max = o.min, o.max
	} else {
		if o.min < s.min {
			s.min = o.min
		}
		if o.max > s.max {
			s.max = o.max
		}
	}
	s.n += o.n
	if !s.binned && !o.binned && len(s.exact)+len(o.exact) <= s.exactCap {
		s.exact = append(s.exact, o.exact...)
		return
	}
	if !s.binned {
		s.promote()
	}
	if !o.binned {
		for _, v := range o.exact {
			s.binAdd(v, 1)
		}
		return
	}
	for k, c := range o.pos {
		if s.pos == nil {
			s.pos = make(map[int]uint64)
		}
		s.pos[k] += c
	}
	for k, c := range o.neg {
		if s.neg == nil {
			s.neg = make(map[int]uint64)
		}
		s.neg[k] += c
	}
	s.zero += o.zero
}

// bin is one support point of the folded distribution.
type bin struct {
	v float64
	c uint64
}

// bins returns the folded distribution's support points in ascending value
// order, with representative values clamped into [min, max].
func (s *Sketch) bins() []bin {
	out := make([]bin, 0, len(s.pos)+len(s.neg)+1)
	negKeys := make([]int, 0, len(s.neg))
	for k := range s.neg {
		negKeys = append(negKeys, k)
	}
	// Larger |v| first: descending value order for negatives is descending
	// magnitude reversed — sort keys descending so values ascend.
	sort.Sort(sort.Reverse(sort.IntSlice(negKeys)))
	for _, k := range negKeys {
		out = append(out, bin{v: -s.binValue(k), c: s.neg[k]})
	}
	if s.zero > 0 {
		out = append(out, bin{v: 0, c: s.zero})
	}
	posKeys := make([]int, 0, len(s.pos))
	for k := range s.pos {
		posKeys = append(posKeys, k)
	}
	sort.Ints(posKeys)
	for _, k := range posKeys {
		out = append(out, bin{v: s.binValue(k), c: s.pos[k]})
	}
	// Clamp representatives into the observed range and merge duplicates the
	// clamping may create at the edges.
	merged := out[:0]
	for _, b := range out {
		if b.v < s.min {
			b.v = s.min
		}
		if b.v > s.max {
			b.v = s.max
		}
		if len(merged) > 0 && merged[len(merged)-1].v == b.v {
			merged[len(merged)-1].c += b.c
		} else {
			merged = append(merged, b)
		}
	}
	return merged
}

// Quantile returns the q-th quantile (0 <= q <= 1). On the exact path it
// matches stats.Quantile over the raw sample; on the binned path the result
// is within Alpha (relative) of a sample value at that rank.
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	if !s.binned {
		return Quantile(s.exact, q)
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	rank := q * float64(s.n-1)
	var cum uint64
	for _, b := range s.bins() {
		cum += b.c
		if float64(cum-1) >= rank {
			return b.v
		}
	}
	return s.max
}

// CDF returns the empirical CDF. On the exact path it is identical to
// NewCDF over the raw sample; on the binned path each bin contributes one
// support point at its representative value.
func (s *Sketch) CDF() (CDF, error) {
	if s.n == 0 {
		return CDF{}, ErrEmpty
	}
	if !s.binned {
		return NewCDF(s.exact)
	}
	var cdf CDF
	var cum uint64
	n := float64(s.n)
	for _, b := range s.bins() {
		cum += b.c
		cdf.X = append(cdf.X, b.v)
		cdf.F = append(cdf.F, float64(cum)/n)
	}
	return cdf, nil
}

// Dist is the per-metric streaming accumulator the figures build on: a
// Welford for moments plus a Sketch for quantiles and CDFs. The zero value
// is NOT usable; construct with NewDist.
type Dist struct {
	W Welford
	S *Sketch
}

// NewDist returns an empty distribution accumulator with default sketch
// parameters.
func NewDist() *Dist { return &Dist{S: NewSketch()} }

// Add folds one sample in.
func (d *Dist) Add(v float64) {
	d.W.Add(v)
	d.S.Add(v)
}

// Merge folds o in; o is unchanged.
func (d *Dist) Merge(o *Dist) {
	if o == nil {
		return
	}
	d.W.Merge(o.W)
	d.S.Merge(o.S)
}

// N returns the sample count.
func (d *Dist) N() int { return d.W.N() }

// Exact returns the raw sample (insertion order) while the distribution is
// small enough for the exact path.
func (d *Dist) Exact() ([]float64, bool) { return d.S.Values() }

// Mean returns the mean. On the exact path it reproduces stats.Mean over
// the raw sample bit-for-bit (same summation order); otherwise the Welford
// mean.
func (d *Dist) Mean() float64 {
	if vals, ok := d.Exact(); ok {
		return Mean(vals)
	}
	return d.W.Mean()
}

// Quantile returns the q-th quantile (exact on the small-sample path).
func (d *Dist) Quantile(q float64) float64 { return d.S.Quantile(q) }

// CDF returns the empirical CDF (exact on the small-sample path).
func (d *Dist) CDF() (CDF, error) { return d.S.CDF() }

// Summary returns descriptive statistics. On the exact path it reproduces
// stats.Summarize over the raw sample bit-for-bit; on the binned path the
// moments come from the Welford accumulator and the median from the sketch.
func (d *Dist) Summary() (Summary, error) {
	if d.N() == 0 {
		return Summary{}, ErrEmpty
	}
	if vals, ok := d.Exact(); ok {
		return Summarize(vals)
	}
	return Summary{
		N:      d.N(),
		Mean:   d.W.Mean(),
		Median: d.S.Quantile(0.5),
		StdDev: d.W.StdDev(),
		Min:    d.W.Min(),
		Max:    d.W.Max(),
	}, nil
}

// Grouped keys Dists by a string label: the access-class / country /
// protocol splits of the figures. The zero value is ready to use.
type Grouped struct {
	m map[string]*Dist
}

// Add folds v into key's distribution.
func (g *Grouped) Add(key string, v float64) {
	if g.m == nil {
		g.m = make(map[string]*Dist)
	}
	d := g.m[key]
	if d == nil {
		d = NewDist()
		g.m[key] = d
	}
	d.Add(v)
}

// Get returns key's distribution, or nil when the key was never added.
func (g *Grouped) Get(key string) *Dist {
	if g.m == nil {
		return nil
	}
	return g.m[key]
}

// Keys returns the group labels in sorted order, so iteration over a merged
// aggregate is deterministic.
func (g *Grouped) Keys() []string {
	keys := make([]string, 0, len(g.m))
	for k := range g.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of groups.
func (g *Grouped) Len() int { return len(g.m) }

// Merge folds o in; o is unchanged.
func (g *Grouped) Merge(o *Grouped) {
	if o == nil {
		return
	}
	for k, od := range o.m {
		if g.m == nil {
			g.m = make(map[string]*Dist)
		}
		d := g.m[k]
		if d == nil {
			d = NewDist()
			g.m[k] = d
		}
		d.Merge(od)
	}
}

// Counter is a mergeable string-keyed tally (clips per country, attempts
// per server). The zero value is ready to use.
type Counter struct {
	m map[string]int
}

// Add increments key by n.
func (c *Counter) Add(key string, n int) {
	if c.m == nil {
		c.m = make(map[string]int)
	}
	c.m[key] += n
}

// Get returns key's count (0 when absent).
func (c *Counter) Get(key string) int { return c.m[key] }

// Keys returns the labels in sorted order.
func (c *Counter) Keys() []string {
	keys := make([]string, 0, len(c.m))
	for k := range c.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of distinct keys.
func (c *Counter) Len() int { return len(c.m) }

// Total returns the sum over all keys.
func (c *Counter) Total() int {
	var t int
	for _, v := range c.m {
		t += v
	}
	return t
}

// Merge folds o in; o is unchanged.
func (c *Counter) Merge(o *Counter) {
	if o == nil {
		return
	}
	for k, v := range o.m {
		c.Add(k, v)
	}
}
