package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*40 + 100
		w.Add(xs[i])
	}
	if w.N() != len(xs) {
		t.Fatalf("n=%d want %d", w.N(), len(xs))
	}
	if !almost(w.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("mean %v vs %v", w.Mean(), Mean(xs))
	}
	if !almost(w.StdDev(), StdDev(xs), 1e-9) {
		t.Fatalf("stddev %v vs %v", w.StdDev(), StdDev(xs))
	}
	s, _ := Summarize(xs)
	if w.Min() != s.Min || w.Max() != s.Max {
		t.Fatalf("min/max %v/%v vs %v/%v", w.Min(), w.Max(), s.Min, s.Max)
	}
}

// Property: merging Welford partials equals one accumulator over the
// concatenation, regardless of the split point.
func TestPropertyWelfordMerge(t *testing.T) {
	f := func(seed int64, cut uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 200)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 50
		}
		k := int(cut) % len(xs)
		var whole, a, b Welford
		for _, x := range xs {
			whole.Add(x)
		}
		for _, x := range xs[:k] {
			a.Add(x)
		}
		for _, x := range xs[k:] {
			b.Add(x)
		}
		a.Merge(b)
		return a.N() == whole.N() &&
			almost(a.Mean(), whole.Mean(), 1e-9) &&
			almost(a.StdDev(), whole.StdDev(), 1e-9) &&
			a.Min() == whole.Min() && a.Max() == whole.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrMatchesPearson(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 300)
	ys := make([]float64, 300)
	var c Corr
	for i := range xs {
		xs[i] = rng.Float64() * 400
		ys[i] = 0.01*xs[i] + rng.NormFloat64()*2
		c.Add(xs[i], ys[i])
	}
	if !almost(c.R(), Pearson(xs, ys), 1e-9) {
		t.Fatalf("corr %v vs pearson %v", c.R(), Pearson(xs, ys))
	}
	// Split-merge equals whole.
	var a, b Corr
	for i := range xs {
		if i < 120 {
			a.Add(xs[i], ys[i])
		} else {
			b.Add(xs[i], ys[i])
		}
	}
	a.Merge(b)
	if !almost(a.R(), c.R(), 1e-9) {
		t.Fatalf("merged corr %v vs whole %v", a.R(), c.R())
	}
}

// TestSketchExactPathIsExact: below the cap the sketch IS the sample, so
// quantiles and CDFs match the batch implementations bit-for-bit.
func TestSketchExactPathIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSketch()
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.Float64() * 800
		s.Add(xs[i])
	}
	if !s.IsExact() {
		t.Fatal("1000 samples should stay on the exact path")
	}
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 1} {
		if s.Quantile(q) != Quantile(xs, q) {
			t.Fatalf("q=%v: %v vs exact %v", q, s.Quantile(q), Quantile(xs, q))
		}
	}
	got, err := s.CDF()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewCDF(xs)
	if len(got.X) != len(want.X) {
		t.Fatalf("CDF support %d vs %d", len(got.X), len(want.X))
	}
	for i := range got.X {
		if got.X[i] != want.X[i] || got.F[i] != want.F[i] {
			t.Fatalf("CDF point %d differs", i)
		}
	}
}

// sketchTolerance brackets the acceptable quantile estimate: within the
// sketch's relative accuracy of the order statistics neighboring the target
// rank (adjacent order stats absorb the rank-vs-interpolation difference).
func sketchBracket(sorted []float64, q, alpha float64) (lo, hi float64) {
	n := len(sorted)
	pos := q * float64(n-1)
	i := int(math.Floor(pos)) - 1
	j := int(math.Ceil(pos)) + 1
	if i < 0 {
		i = 0
	}
	if j > n-1 {
		j = n - 1
	}
	lo, hi = sorted[i], sorted[j]
	lo -= alpha*math.Abs(lo) + 1e-9
	hi += alpha*math.Abs(hi) + 1e-9
	return lo, hi
}

// Property: on the binned path, sketch quantiles stay within the advertised
// relative accuracy of the exact quantiles, across distribution shapes.
func TestPropertySketchQuantileTolerance(t *testing.T) {
	f := func(seed int64, shape uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3000
		xs := make([]float64, n)
		for i := range xs {
			switch shape % 3 {
			case 0: // uniform
				xs[i] = rng.Float64() * 1000
			case 1: // lognormal-ish heavy tail
				xs[i] = math.Exp(rng.NormFloat64() * 2)
			default: // bimodal with zeros
				if rng.Float64() < 0.3 {
					xs[i] = 0
				} else {
					xs[i] = 200 + rng.NormFloat64()*20
				}
			}
		}
		// Small cap forces the binned path.
		s := NewSketchAccuracy(DefaultSketchAlpha, 64)
		for _, x := range xs {
			s.Add(x)
		}
		if s.IsExact() {
			return false
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			lo, hi := sketchBracket(sorted, q, 2*s.Alpha())
			got := s.Quantile(q)
			if got < lo || got > hi {
				t.Logf("seed=%d shape=%d q=%v got=%v want [%v, %v]", seed, shape, q, got, lo, hi)
				return false
			}
		}
		return s.Min() == sorted[0] && s.Max() == sorted[n-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging partial sketches is order-invariant — any permutation
// and any grouping of the partials yields identical quantiles.
func TestPropertySketchMergeOrderInvariant(t *testing.T) {
	f := func(seed int64, parts uint8, cap16 uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(parts)%5 + 2
		cap := int(cap16)%500 + 8 // small enough to exercise both paths
		n := 600 + rng.Intn(2000)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 5000
		}
		build := func(order []int) *Sketch {
			partials := make([]*Sketch, k)
			for p := 0; p < k; p++ {
				partials[p] = NewSketchAccuracy(DefaultSketchAlpha, cap)
			}
			for i, x := range xs {
				partials[i%k].Add(x)
			}
			out := NewSketchAccuracy(DefaultSketchAlpha, cap)
			for _, p := range order {
				out.Merge(partials[p])
			}
			return out
		}
		fwd := make([]int, k)
		rev := make([]int, k)
		shuf := make([]int, k)
		for i := 0; i < k; i++ {
			fwd[i], rev[k-1-i] = i, i
			shuf[i] = i
		}
		rng.Shuffle(k, func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
		a, b, c := build(fwd), build(rev), build(shuf)
		if a.N() != n || b.N() != n || c.N() != n {
			return false
		}
		for _, q := range []float64{0, 0.05, 0.25, 0.5, 0.75, 0.95, 1} {
			qa := a.Quantile(q)
			if qa != b.Quantile(q) || qa != c.Quantile(q) {
				t.Logf("seed=%d k=%d cap=%d q=%v: %v / %v / %v", seed, k, cap, q, qa, b.Quantile(q), c.Quantile(q))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSketchMergeExactIntoEmpty(t *testing.T) {
	a := NewSketch()
	b := NewSketch()
	for i := 0; i < 10; i++ {
		b.Add(float64(i))
	}
	a.Merge(b)
	if !a.IsExact() || a.N() != 10 {
		t.Fatalf("empty-merge lost the exact path: exact=%v n=%d", a.IsExact(), a.N())
	}
	if a.Quantile(0.5) != 4.5 {
		t.Fatalf("median=%v want 4.5", a.Quantile(0.5))
	}
	// Merging must not mutate the source.
	if b.N() != 10 || !b.IsExact() {
		t.Fatal("merge mutated its argument")
	}
}

func TestSketchMergeAlphaMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging different-accuracy sketches should panic")
		}
	}()
	a := NewSketchAccuracy(0.005, 10)
	b := NewSketchAccuracy(0.02, 10)
	a.Add(1)
	b.Add(2)
	a.Merge(b)
}

func TestSketchNegativeValues(t *testing.T) {
	s := NewSketchAccuracy(DefaultSketchAlpha, 4)
	xs := []float64{-100, -10, -1, 0, 1, 10, 100}
	for _, x := range xs {
		s.Add(x)
	}
	if s.IsExact() {
		t.Fatal("should have promoted")
	}
	if s.Min() != -100 || s.Max() != 100 {
		t.Fatalf("min/max %v/%v", s.Min(), s.Max())
	}
	med := s.Quantile(0.5)
	if math.Abs(med) > 0.01 {
		t.Fatalf("median %v want ~0", med)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestDistExactSummaryMatchesSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewDist()
	xs := make([]float64, 700)
	for i := range xs {
		xs[i] = rng.Float64() * 30
		d.Add(xs[i])
	}
	got, err := d.Summary()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Summarize(xs)
	if got != want {
		t.Fatalf("exact-path summary differs:\n got %+v\nwant %+v", got, want)
	}
	if d.Mean() != Mean(xs) {
		t.Fatal("exact-path mean differs from batch Mean")
	}
}

func TestDistBinnedSummaryClose(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := &Dist{S: NewSketchAccuracy(DefaultSketchAlpha, 32)}
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.Float64()*100 + 1
		d.Add(xs[i])
	}
	got, err := d.Summary()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Summarize(xs)
	if !almost(got.Mean, want.Mean, 1e-6) || got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("binned moments off: %+v vs %+v", got, want)
	}
	if math.Abs(got.Median-want.Median) > 0.02*want.Median+0.5 {
		t.Fatalf("binned median %v vs exact %v", got.Median, want.Median)
	}
}

func TestGroupedMerge(t *testing.T) {
	var a, b Grouped
	a.Add("x", 1)
	a.Add("x", 2)
	a.Add("y", 5)
	b.Add("x", 3)
	b.Add("z", 7)
	a.Merge(&b)
	if got := a.Keys(); len(got) != 3 || got[0] != "x" || got[1] != "y" || got[2] != "z" {
		t.Fatalf("keys=%v", got)
	}
	if a.Get("x").N() != 3 || a.Get("z").N() != 1 {
		t.Fatal("merged counts wrong")
	}
	if a.Get("missing") != nil {
		t.Fatal("missing key should be nil")
	}
	if !almost(a.Get("x").Mean(), 2, 1e-9) {
		t.Fatalf("x mean=%v", a.Get("x").Mean())
	}
}

func TestCounter(t *testing.T) {
	var a, b Counter
	a.Add("US", 2)
	a.Add("UK", 1)
	b.Add("US", 3)
	a.Merge(&b)
	if a.Get("US") != 5 || a.Get("UK") != 1 || a.Total() != 6 || a.Len() != 2 {
		t.Fatalf("counter wrong: US=%d UK=%d total=%d", a.Get("US"), a.Get("UK"), a.Total())
	}
	if keys := a.Keys(); keys[0] != "UK" || keys[1] != "US" {
		t.Fatalf("keys=%v", keys)
	}
}
