// World checkpoint/fork: pay the warm-up once, fork N scenarios from one
// snapshot.
//
// Checkpoint serializes a running classic (unsharded) world — clock
// scalars, every pending typed event, the network core, server sessions,
// tracer/player bundles, workload cursors, the collected records and the
// position of every RNG stream — into a version-stamped snapshot. Resume
// rebuilds the world deterministically from the snapshot's Options (the
// build path replays exactly the draws the original build made), resets
// the clock, overlays the persisted state and re-arms every event at its
// original (time, seq) slot, so an exact resume is byte-identical to a
// straight-through run of the same seed. A named fork instead re-derives
// every RNG stream from the fork name and may change the scenario knobs
// that do not reshape the built world (dynamics, selection policy,
// intensities, controller), so N forks of one warm snapshot diverge
// deterministically.
package study

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"realtracer/internal/detrand"
	"realtracer/internal/session"
	"realtracer/internal/simclock"
	"realtracer/internal/snap"
	"realtracer/internal/trace"
	"realtracer/internal/transport"
)

func init() {
	simclock.RegisterEventKind("study.arrive", (*arriveArm)(nil))
	simclock.RegisterEventKind("study.depart", (*departArm)(nil))
}

// snapMagic stamps the snapshot format. Bump the trailing digit on any
// layout change: a resume under a mismatched build fails on the magic
// before misreading a single field.
const snapMagic = "RTSNAP1"

// drainCap bounds the virtual time Checkpoint may burn draining closure
// events (in-flight TCP dial callbacks, the one cold path still scheduled
// as a closure). Live dials resolve within a round-trip, so a drain that
// needs more than this is a leak, not a wait.
const drainCap = 30 * time.Second

// Fork names a divergent scenario to resume from a checkpoint. The nil
// Fork (or the zero value) is an exact resume: every RNG stream replays
// its draw count and the run completes byte-identical to never having
// stopped. A named fork re-derives every stream from Name, and the set
// fields override the snapshot's Options. Only knobs that do not reshape
// the built world may change; anything else (seed, population, workload
// profile, horizon) fails NewWorld's validation or the interning check.
type Fork struct {
	Name string

	Dynamics          *string
	DynamicsIntensity *float64
	DynamicsSeed      *int64
	Controller        *string
	Selection         *string
	WorkloadIntensity *float64
	CongestionScale   *float64
}

// apply overlays the fork's deltas onto opt and reports whether the
// dynamics schedule changed (which invalidates checkpointed per-path
// chain state).
func (f *Fork) apply(opt *Options) (dynChanged bool) {
	if f == nil {
		return false
	}
	if f.Dynamics != nil && *f.Dynamics != opt.Dynamics {
		opt.Dynamics = *f.Dynamics
		dynChanged = true
	}
	if f.DynamicsIntensity != nil && *f.DynamicsIntensity != opt.DynamicsIntensity {
		opt.DynamicsIntensity = *f.DynamicsIntensity
		dynChanged = true
	}
	if f.DynamicsSeed != nil && *f.DynamicsSeed != opt.DynamicsSeed {
		opt.DynamicsSeed = *f.DynamicsSeed
		dynChanged = true
	}
	if f.Controller != nil {
		opt.Controller = *f.Controller
	}
	if f.Selection != nil {
		opt.Selection = *f.Selection
	}
	if f.WorkloadIntensity != nil {
		opt.WorkloadIntensity = *f.WorkloadIntensity
	}
	if f.CongestionScale != nil {
		opt.CongestionScale = *f.CongestionScale
	}
	return dynChanged
}

// Applied returns base with the fork's scenario deltas applied — the
// options the forked world actually runs. Resume performs the same
// application internally; Applied lets callers (the campaign layer) label
// fork results with their effective configuration.
func (f *Fork) Applied(base Options) Options {
	f.apply(&base)
	return base
}

// forkSeed derives the seed a named fork's RNG stream restarts from: the
// checkpointed stream position hashed with the fork name and the stream's
// role label, so every fork gets a private, reproducible stream.
func forkSeed(seed int64, count uint64, name, label string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%s|%s", seed, count, name, label)
	s := int64(h.Sum64())
	if s == 0 {
		s = 1
	}
	return s
}

// applyRNG positions a rebuilt world's RNG stream: an exact resume replays
// the checkpointed draw count; a named fork reseeds from the derived fork
// seed. The stream object is mutated in place so every pointer the built
// world handed out (server configs, tracer configs, raters) stays valid.
func applyRNG(r *detrand.Rand, seed int64, count uint64, forkName, label string) {
	if forkName == "" {
		r.Seed(seed)
		r.Skip(count)
		return
	}
	r.Seed(forkSeed(seed, count, forkName, label))
}

// persistTimer writes an armed simclock.Timer as (armed, at, seq);
// restoreTimer re-arms it at the same slot so the restored event fires in
// the exact order the original would have.
func persistTimer(sw *snap.Writer, t simclock.Timer) {
	if at, seq, ok := t.When(); ok {
		sw.Bool(true)
		sw.Dur(at)
		sw.U64(seq)
		return
	}
	sw.Bool(false)
}

func restoreTimer(sr *snap.Reader, c *simclock.Clock, h simclock.EventHandler) simclock.Timer {
	if !sr.Bool() {
		return simclock.Timer{}
	}
	at := sr.Dur()
	seq := sr.U64()
	if sr.Err() != nil {
		return simclock.Timer{}
	}
	return c.Arm(at, seq, h)
}

// persistOptions writes every Options field. The encoding doubles as the
// version stamp: the serialized bytes are hashed into the snapshot, so a
// build whose Options shape changed fails the hash (or leaves trailing
// bytes) instead of silently rebuilding a different world.
func persistOptions(sw *snap.Writer, o Options) {
	sw.Tag("options")
	sw.I64(o.Seed)
	sw.Int(o.MaxUsers)
	sw.Int(o.ClipCap)
	sw.Dur(o.PlayFor)
	sw.Bool(o.DisableSureStream)
	sw.Bool(o.DisableFEC)
	sw.Dur(o.Preroll)
	sw.Str(o.Controller)
	sw.F64(o.CongestionScale)
	sw.Str(o.Dynamics)
	sw.F64(o.DynamicsIntensity)
	sw.I64(o.DynamicsSeed)
	sw.Str(o.Workload)
	sw.F64(o.WorkloadIntensity)
	sw.I64(o.WorkloadSeed)
	sw.Int(o.Arrivals)
	sw.Str(o.Selection)
	sw.Int(o.Shards)
	sw.Dur(o.StaggerWindow)
	sw.F64(o.ServerUplinkKbps)
}

func restoreOptions(sr *snap.Reader) Options {
	sr.Tag("options")
	return Options{
		Seed:              sr.I64(),
		MaxUsers:          sr.Int(),
		ClipCap:           sr.Int(),
		PlayFor:           sr.Dur(),
		DisableSureStream: sr.Bool(),
		DisableFEC:        sr.Bool(),
		Preroll:           sr.Dur(),
		Controller:        sr.Str(),
		CongestionScale:   sr.F64(),
		Dynamics:          sr.Str(),
		DynamicsIntensity: sr.F64(),
		DynamicsSeed:      sr.I64(),
		Workload:          sr.Str(),
		WorkloadIntensity: sr.F64(),
		WorkloadSeed:      sr.I64(),
		Arrivals:          sr.Int(),
		Selection:         sr.Str(),
		Shards:            sr.Int(),
		StaggerWindow:     sr.Dur(),
		ServerUplinkKbps:  sr.F64(),
	}
}

func hashBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// drainClosures steps the clock until no closure events remain pending.
// The only closures a running world schedules are TCP dial timeouts and
// retries, which the dial path cancels at establishment — so at any
// instant the live closure count is the number of dials in flight, each
// gone within a round-trip of stepping. The cap turns a leak into a loud
// error instead of an unbounded fast-forward.
func (w *World) drainClosures() error {
	limit := w.Clock.Now() + drainCap
	for w.Clock.PendingClosures() > 0 {
		if w.Clock.Now() > limit || !w.Clock.Step() {
			return fmt.Errorf("study: %d closure event(s) still pending after draining %v of virtual time; checkpoint aborted",
				w.Clock.PendingClosures(), drainCap)
		}
	}
	return nil
}

// Checkpoint serializes the world's full simulation state into out. The
// world stays runnable afterwards — checkpointing mid-run and continuing
// is exactly the warm-fork producer loop. Draining in-flight dial
// closures may advance virtual time slightly (bounded by drainCap); the
// snapshot captures the post-drain instant.
//
// Only the classic engine with the default collector sink is
// checkpointable: sharded worlds spread their state across goroutines,
// and a streaming sink has already let records go.
func (w *World) Checkpoint(out io.Writer) error {
	if w.fab != nil {
		return fmt.Errorf("study: sharded worlds cannot be checkpointed")
	}
	if w.collector == nil {
		return fmt.Errorf("study: checkpoint requires the default collector sink (SetSink disables checkpointing)")
	}
	if err := w.drainClosures(); err != nil {
		return err
	}
	if err := w.Clock.CheckPersistable(); err != nil {
		return err
	}

	sw := snap.NewWriter(out)
	sw.Str(snapMagic)
	var optBuf bytes.Buffer
	persistOptions(snap.NewWriter(&optBuf), w.Options)
	sw.Bytes(optBuf.Bytes())
	sw.U64(hashBytes(optBuf.Bytes()))

	sw.Tag("clock")
	sw.Dur(w.Clock.Now())
	sw.U64(w.Clock.Seq())
	sw.U64(w.Clock.Fired())

	if err := w.Net.Checkpoint(sw); err != nil {
		return err
	}

	app := session.SnapCodec()
	sw.Tag("servers")
	sw.U32(uint32(len(w.Servers)))
	for i, srv := range w.Servers {
		seed, count := w.serverRNGs[i].State()
		sw.I64(seed)
		sw.U64(count)
		w.serverStacks[i].Persist(sw)
		if err := srv.Checkpoint(sw, app); err != nil {
			return err
		}
	}

	if w.open != nil {
		sw.Bool(true)
		if err := w.persistOpenLoop(sw, app); err != nil {
			return err
		}
	} else {
		sw.Bool(false)
		if err := w.persistPanel(sw, app); err != nil {
			return err
		}
	}

	sw.Tag("records")
	var recBuf bytes.Buffer
	if err := trace.WriteJSON(&recBuf, w.collector.Records()); err != nil {
		return err
	}
	sw.Bytes(recBuf.Bytes())

	// Packets go last: their payloads may reference TCP conns serialized
	// above, and the restore resolves those references against the conns
	// it has already rebuilt.
	if err := w.Net.CheckpointPackets(sw, transport.PayloadCodec(app, nil)); err != nil {
		return err
	}
	sw.Tag("endsnap")
	return sw.Err()
}

func (w *World) persistPanel(sw *snap.Writer, app transport.AppCodec) error {
	sw.Tag("panel")
	sw.Int(w.remaining)
	sw.U32(uint32(len(w.Users)))
	for i, u := range w.Users {
		seed, count := w.userRNGs[i].State()
		sw.I64(seed)
		sw.U64(count)
		st := w.stacks[u.Name]
		if st == nil {
			return fmt.Errorf("study: no tracked stack for panel user %s", u.Name)
		}
		st.Persist(sw)
		persistTimer(sw, w.startTimers[i])
		if err := w.tracers[i].PersistState(sw, app); err != nil {
			return err
		}
	}
	return sw.Err()
}

func (w *World) persistOpenLoop(sw *snap.Writer, app transport.AppCodec) error {
	sw.Tag("openloop")
	c := w.open.cells[0] // the classic open loop is a single cell
	sw.Int(c.arrivalsLeft)
	sw.Int(c.active)
	sw.Int(c.sessions)
	sw.Int(c.balked)
	sw.Int(c.departed)
	sw.Int(c.cursor)
	seed, count := c.rng.State()
	sw.I64(seed)
	sw.U64(count)
	cursor := 0
	if sp, ok := c.policy.(interface{ PolicyState() int }); ok {
		cursor = sp.PolicyState()
	}
	sw.Int(cursor)
	persistTimer(sw, c.arrivalTimer)
	sw.U32(uint32(len(c.bundles)))
	for mi, b := range c.bundles {
		sw.Bool(c.busy[mi])
		if b == nil {
			sw.Bool(false)
			continue
		}
		sw.Bool(true)
		seed, count := b.rng.State()
		sw.I64(seed)
		sw.U64(count)
		st := w.stacks[w.Users[b.idx].Name]
		if st == nil {
			return fmt.Errorf("study: no tracked stack for template %s", w.Users[b.idx].Name)
		}
		st.Persist(sw)
		sw.Bool(b.done)
		sw.Bool(b.departed)
		sw.I64(b.ordinal)
		sw.U32(uint32(len(b.clips)))
		for _, ci := range b.clips {
			sw.Int(ci)
		}
		persistTimer(sw, b.departTimer)
		if err := b.tr.PersistState(sw, app); err != nil {
			return err
		}
	}
	return sw.Err()
}

// Resume rebuilds a world from a snapshot written by Checkpoint and
// positions it to continue exactly where the checkpoint left off; drive
// it with Run (or RunUntil) as usual. fork selects between an exact
// resume (nil, byte-identical to never stopping) and a named divergent
// scenario; see Fork.
func Resume(r io.Reader, fork *Fork) (*World, error) {
	sr := snap.NewReader(r)
	if magic := sr.Str(); magic != snapMagic {
		if sr.Err() != nil {
			return nil, fmt.Errorf("study: not a checkpoint: %w", sr.Err())
		}
		return nil, fmt.Errorf("study: checkpoint magic %q, want %q (snapshot from an incompatible build)", magic, snapMagic)
	}
	optBytes := sr.Bytes()
	wantHash := sr.U64()
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	if h := hashBytes(optBytes); h != wantHash {
		return nil, fmt.Errorf("study: checkpoint options hash mismatch (got %x, want %x): snapshot corrupted or from an incompatible build", h, wantHash)
	}
	optReader := snap.NewReader(bytes.NewReader(optBytes))
	opt := restoreOptions(optReader)
	if err := optReader.Err(); err != nil {
		return nil, fmt.Errorf("study: checkpoint options: %w", err)
	}
	if extra := optReader.U8(); optReader.Err() == nil {
		return nil, fmt.Errorf("study: checkpoint options carry %d trailing byte(s) starting %#x: snapshot from an incompatible build", len(optBytes), extra)
	}

	dynChanged := fork.apply(&opt)
	forkName := ""
	if fork != nil {
		forkName = fork.Name
	}

	// Deterministic rebuild: NewWorld replays exactly the build-time draws
	// the original made, so the static world (hosts, libraries, playlist,
	// route table) matches the snapshot and the overlay below only has to
	// carry the dynamic state.
	w, err := NewWorld(opt)
	if err != nil {
		return nil, err
	}
	if w.fab != nil {
		return nil, fmt.Errorf("study: sharded worlds cannot be restored")
	}

	sr.Tag("clock")
	now := sr.Dur()
	seq := sr.U64()
	fired := sr.U64()
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	// Reset wipes every build-time event (panel start timers, the first
	// arrival); each owner below re-arms its own events at their original
	// slots.
	w.Clock.Reset(now, seq, fired)

	if err := w.Net.Restore(sr, !dynChanged); err != nil {
		return nil, err
	}
	if forkName != "" {
		dseed := opt.DynamicsSeed
		if dseed == 0 {
			dseed = opt.Seed + 4
		}
		w.Net.ReseedRNGs(forkSeed(opt.Seed+3, 0, forkName, "net"), forkSeed(dseed, 0, forkName, "dynamics"))
	}

	app := session.SnapCodec()
	tbl := transport.NewConnTable()

	sr.Tag("servers")
	if n := int(sr.U32()); n != len(w.Servers) {
		if sr.Err() != nil {
			return nil, sr.Err()
		}
		return nil, fmt.Errorf("study: checkpoint holds %d servers, world built %d", n, len(w.Servers))
	}
	for i, srv := range w.Servers {
		seed := sr.I64()
		count := sr.U64()
		if sr.Err() != nil {
			return nil, sr.Err()
		}
		applyRNG(w.serverRNGs[i], seed, count, forkName, "server:"+w.ActiveSites[i].Host)
		w.serverStacks[i].RestoreState(sr)
		if err := srv.Restore(sr, w.serverStacks[i], app, tbl); err != nil {
			return nil, err
		}
	}

	if sr.Bool() {
		if w.open == nil {
			return nil, fmt.Errorf("study: open-loop checkpoint but the rebuilt world is a panel")
		}
		if err := w.restoreOpenLoop(sr, app, tbl, forkName); err != nil {
			return nil, err
		}
	} else {
		if w.open != nil {
			return nil, fmt.Errorf("study: panel checkpoint but the rebuilt world is open-loop")
		}
		if err := w.restorePanel(sr, app, tbl, forkName); err != nil {
			return nil, err
		}
	}

	sr.Tag("records")
	recs, err := trace.ReadJSON(bytes.NewReader(sr.Bytes()))
	if err != nil {
		return nil, fmt.Errorf("study: checkpoint records: %w", err)
	}
	for _, rec := range recs {
		w.collector.Observe(rec)
	}

	if err := w.Net.RestorePackets(sr, transport.PayloadCodec(app, tbl)); err != nil {
		return nil, err
	}
	sr.Tag("endsnap")
	return w, sr.Err()
}

func (w *World) restorePanel(sr *snap.Reader, app transport.AppCodec, tbl *transport.ConnTable, forkName string) error {
	sr.Tag("panel")
	w.remaining = sr.Int()
	if n := int(sr.U32()); n != len(w.Users) {
		if sr.Err() != nil {
			return sr.Err()
		}
		return fmt.Errorf("study: checkpoint holds %d panel users, world built %d", n, len(w.Users))
	}
	for i, u := range w.Users {
		seed := sr.I64()
		count := sr.U64()
		if sr.Err() != nil {
			return sr.Err()
		}
		applyRNG(w.userRNGs[i], seed, count, forkName, "user:"+u.Name)
		st := w.stacks[u.Name]
		st.RestoreState(sr)
		w.startTimers[i] = restoreTimer(sr, w.Clock, w.tracers[i])
		if err := w.tracers[i].RestoreState(sr, st, app, tbl); err != nil {
			return err
		}
	}
	return sr.Err()
}

func (w *World) restoreOpenLoop(sr *snap.Reader, app transport.AppCodec, tbl *transport.ConnTable, forkName string) error {
	sr.Tag("openloop")
	c := w.open.cells[0]
	c.arrivalsLeft = sr.Int()
	c.active = sr.Int()
	c.sessions = sr.Int()
	c.balked = sr.Int()
	c.departed = sr.Int()
	c.cursor = sr.Int()
	seed := sr.I64()
	count := sr.U64()
	if sr.Err() != nil {
		return sr.Err()
	}
	applyRNG(c.rng, seed, count, forkName, "arrivals")
	polCursor := sr.Int()
	if sp, ok := c.policy.(interface{ SetPolicyState(int) }); ok {
		sp.SetPolicyState(polCursor)
	}
	c.arrivalTimer = restoreTimer(sr, w.Clock, (*arriveArm)(c))
	if n := int(sr.U32()); n != len(c.bundles) {
		if sr.Err() != nil {
			return sr.Err()
		}
		return fmt.Errorf("study: checkpoint holds %d templates, world built %d", n, len(c.bundles))
	}
	for mi := range c.bundles {
		c.busy[mi] = sr.Bool()
		if !sr.Bool() {
			continue
		}
		bseed := sr.I64()
		bcount := sr.U64()
		if sr.Err() != nil {
			return sr.Err()
		}
		b := c.newBundle(mi, bseed)
		c.bundles[mi] = b
		applyRNG(b.rng, bseed, bcount, forkName, "session:"+w.Users[b.idx].Name)
		st := w.stacks[w.Users[b.idx].Name]
		st.RestoreState(sr)
		b.done = sr.Bool()
		b.departed = sr.Bool()
		b.ordinal = sr.I64()
		nc := int(sr.U32())
		if sr.Err() != nil {
			return sr.Err()
		}
		b.clips = make([]int, nc)
		for j := range b.clips {
			b.clips[j] = sr.Int()
		}
		b.playlist = b.playlist[:0]
		for _, ci := range b.clips {
			if ci < 0 || ci >= len(w.Playlist) {
				return fmt.Errorf("study: checkpoint clip index %d out of playlist range", ci)
			}
			b.playlist = append(b.playlist, w.Playlist[ci])
		}
		// Reset installs the playlist (and clears walk state) before the
		// tracer overlay repositions the walk.
		b.tr.Reset(b.playlist)
		b.departTimer = restoreTimer(sr, w.Clock, (*departArm)(b))
		if err := b.tr.RestoreState(sr, st, app, tbl); err != nil {
			return err
		}
	}
	return sr.Err()
}
