package study

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"realtracer/internal/trace"
)

func recordsBytes(t *testing.T, recs []*trace.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// checkpointAt drives a fresh world for opt to the cut instant and
// snapshots it.
func checkpointAt(t *testing.T, opt Options, cut time.Duration) []byte {
	t.Helper()
	w, err := NewWorld(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RunUntil(cut); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := w.Checkpoint(&snap); err != nil {
		t.Fatalf("checkpoint at %v: %v", cut, err)
	}
	return snap.Bytes()
}

func resumeAndRun(t *testing.T, snap []byte, fork *Fork) *Result {
	t.Helper()
	w, err := Resume(bytes.NewReader(snap), fork)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	res, err := w.Run()
	if err != nil {
		t.Fatalf("run after resume: %v", err)
	}
	return res
}

// checkpointResumeArm is one arm of the determinism fence: checkpoint a
// run of opt at several mid-run instants, resume each snapshot, and
// require the completed record stream byte-identical to the
// straight-through run of the same seed.
func checkpointResumeArm(t *testing.T, opt Options) {
	straight, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(straight.Records) == 0 {
		t.Fatal("straight-through run produced no records")
	}
	want := recordsBytes(t, straight.Records)
	for _, frac := range []float64{0.25, 0.55, 0.85} {
		frac := frac
		t.Run(fmt.Sprintf("cut%02.0f", frac*100), func(t *testing.T) {
			cut := time.Duration(float64(straight.SimDuration) * frac)
			snap := checkpointAt(t, opt, cut)
			res := resumeAndRun(t, snap, nil)
			got := recordsBytes(t, res.Records)
			if !bytes.Equal(got, want) {
				t.Fatalf("records after resume from %v differ from straight-through run (%d vs %d records)",
					cut, len(res.Records), len(straight.Records))
			}
		})
	}
}

func TestCheckpointResumeByteIdentical(t *testing.T) {
	t.Run("panel", func(t *testing.T) {
		checkpointResumeArm(t, Options{Seed: 11, MaxUsers: 6, ClipCap: 2})
	})
	// The open-loop churn arm: arrivals, departures and balks mid-flight,
	// plus a stateful selection policy rotating through the mirrors.
	t.Run("openloop", func(t *testing.T) {
		checkpointResumeArm(t, Options{
			Seed: 17, MaxUsers: 8, ClipCap: 2,
			Workload: "poisson", Arrivals: 24, WorkloadIntensity: 2,
			Selection: "roundrobin",
		})
	})
	t.Run("dynamics", func(t *testing.T) {
		checkpointResumeArm(t, Options{
			Seed: 5, MaxUsers: 4, ClipCap: 2,
			Dynamics: "lossburst", DynamicsIntensity: 2,
		})
	})
	// Heavy churn over a small pool: sessions tear down with segments
	// still mid-flight, so cuts land on wire copies whose owning conn is
	// closed (or gone from the snapshot entirely) — those serialize by
	// value, not by reference.
	t.Run("churnheavy", func(t *testing.T) {
		checkpointResumeArm(t, Options{
			Seed: 17, MaxUsers: 6, ClipCap: 2,
			Workload: "poisson", Arrivals: 64, WorkloadIntensity: 2,
		})
	})
}

// TestForkDeterministicAndDivergent pins the fork contract: the same named
// fork of one snapshot reproduces itself byte-for-byte, and differently
// named forks diverge from each other.
func TestForkDeterministicAndDivergent(t *testing.T) {
	opt := Options{
		Seed: 17, MaxUsers: 8, ClipCap: 2,
		Workload: "poisson", Arrivals: 20, WorkloadIntensity: 2,
	}
	straight, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	snap := checkpointAt(t, opt, straight.SimDuration/2)

	a1 := recordsBytes(t, resumeAndRun(t, snap, &Fork{Name: "a"}).Records)
	a2 := recordsBytes(t, resumeAndRun(t, snap, &Fork{Name: "a"}).Records)
	b := recordsBytes(t, resumeAndRun(t, snap, &Fork{Name: "b"}).Records)
	if !bytes.Equal(a1, a2) {
		t.Fatal("the same named fork is not deterministic")
	}
	if bytes.Equal(a1, b) {
		t.Fatal("differently named forks did not diverge")
	}
}

// TestForkScenarioDeltas forks one warm snapshot into divergent scenarios
// (changed dynamics, changed intensity) and requires each to complete.
func TestForkScenarioDeltas(t *testing.T) {
	opt := Options{
		Seed: 9, MaxUsers: 6, ClipCap: 2,
		Workload: "poisson", Arrivals: 16,
	}
	straight, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	snap := checkpointAt(t, opt, straight.SimDuration/2)

	dyn := "lossburst"
	k := 2.0
	for _, fork := range []*Fork{
		{Name: "weather", Dynamics: &dyn, DynamicsIntensity: &k},
		{Name: "hot", WorkloadIntensity: &k},
	} {
		res := resumeAndRun(t, snap, fork)
		if len(res.Records) == 0 {
			t.Fatalf("fork %s produced no records", fork.Name)
		}
	}
}

// TestResumeRejectsCorruptSnapshot pins the loud-failure contract for a
// snapshot whose options section was tampered with (a stand-in for a
// mismatched build).
func TestResumeRejectsCorruptSnapshot(t *testing.T) {
	opt := Options{Seed: 11, MaxUsers: 3, ClipCap: 1}
	straight, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	snap := checkpointAt(t, opt, straight.SimDuration/2)

	bad := append([]byte(nil), snap...)
	bad[len(snapMagic)+8] ^= 0xff // inside the options block
	if _, err := Resume(bytes.NewReader(bad), nil); err == nil || !strings.Contains(err.Error(), "hash mismatch") {
		t.Fatalf("want options hash mismatch error, got %v", err)
	}

	if _, err := Resume(bytes.NewReader([]byte("not a snapshot")), nil); err == nil {
		t.Fatal("want error resuming junk bytes")
	}
}

// TestCheckpointRejectsUnsupportedWorlds pins the two hard preconditions:
// a streaming sink has already let records go, and a sharded world's state
// is spread across goroutines.
func TestCheckpointRejectsUnsupportedWorlds(t *testing.T) {
	w, err := NewWorld(Options{Seed: 1, MaxUsers: 2, ClipCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	w.SetSink(trace.SinkFunc(func(*trace.Record) {}))
	if err := w.Checkpoint(&bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "collector") {
		t.Fatalf("want collector-sink error, got %v", err)
	}

	sw, err := NewWorld(Options{Seed: 1, MaxUsers: 8, ClipCap: 1, Workload: "poisson", Arrivals: 8, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Checkpoint(&bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "sharded") {
		t.Fatalf("want sharded-world error, got %v", err)
	}
}
