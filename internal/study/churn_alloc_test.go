package study

import (
	"bytes"
	"testing"

	"realtracer/internal/trace"
)

// sessionAllocBudget bounds the steady-state allocations per open-loop
// session. A session is not allocation-free — each clip still dials fresh
// control/data connections and the RTSP exchange builds messages — but the
// bundle free-list keeps the per-session object graph (tracer, player,
// arenas, record storage, plan scratch) out of the count. Before the
// free-list a session cost ~10,000 allocations; the measured steady state
// is ~410, and the budget sits ~2x above it so a regression back toward
// per-arrival construction fails loudly while dial/RTSP noise does not.
const sessionAllocBudget = 900

// churnOpts is the high-intensity open-loop study the recycle tests share:
// a small template pool driven hard enough that mid-stream abandonment and
// template reuse both occur.
func churnOpts() Options {
	return Options{Seed: 11, MaxUsers: 6, ClipCap: 2, Workload: "poisson", Arrivals: 25, WorkloadIntensity: 3}
}

// TestSessionChurnAllocBudget is the tentpole's regression fence, the
// open-loop mirror of transport's TestSteadyStateAllocBudget: once every
// template's bundle exists, admitting / playing / ending a session reuses
// the pooled machinery instead of rebuilding it.
func TestSessionChurnAllocBudget(t *testing.T) {
	w, err := NewWorld(Options{Seed: 31, MaxUsers: 12, ClipCap: 2, Workload: "poisson", Arrivals: 5000})
	if err != nil {
		t.Fatal(err)
	}
	// Stream records instead of retaining them: record storage is only
	// recycled when the sink lets go of each record, which is the shape
	// the population-scale benchmarks run in.
	var observed int
	w.SetSink(trace.SinkFunc(func(*trace.Record) { observed++ }))

	o := w.open.cells[0] // the classic engine runs a single arrival cell
	completed := func() int { return o.sessions - o.active }
	runSessions := func(n int) {
		for target := completed() + n; completed() < target; {
			if !w.Clock.Step() {
				t.Fatal("clock drained before the session window completed")
			}
		}
	}

	// Warm-up: rotate through the pool enough times that every template's
	// bundle is built and every free-list (sessions, hosts, packet slabs,
	// record scratch) has reached steady state.
	runSessions(5 * len(w.Users))
	if observed == 0 {
		t.Fatal("warm-up streamed no records")
	}

	const window = 20
	perSession := testing.AllocsPerRun(3, func() { runSessions(window) }) / window
	t.Logf("steady-state allocations per session: %.0f (budget %d)", perSession, sessionAllocBudget)
	if perSession > sessionAllocBudget {
		t.Errorf("steady-state churn allocates %.0f objects per session, budget %d — the session free-list has regressed",
			perSession, sessionAllocBudget)
	}
}

// shardedSessionAllocBudget bounds the steady-state allocations per session
// under the sharded engine. On top of the classic per-session costs the
// sharded path buffers each record until the merge (the collector retains
// it, so its storage is never recycled), re-launches the fabric's worker
// goroutines per measured Run call, and pays queue-growth noise on the
// cross-shard outboxes — but the transit snapshots themselves are pooled,
// so the per-packet copy tax that once made a sharded session cost tens of
// thousands of allocations must stay gone. Measured steady state is ~410;
// the budget sits ~2x above it, matching the classic fence's convention.
const shardedSessionAllocBudget = 1000

// TestShardedChurnAllocBudget is the sharded mirror of
// TestSessionChurnAllocBudget: once the transit pools and bundle free-lists
// are warm, a session's worth of cross-shard traffic leases its snapshots
// from the per-shard pools instead of allocating each copy fresh. A
// regression back to allocate-per-copy (PR 7's copy-at-send tax) blows the
// budget by an order of magnitude.
func TestShardedChurnAllocBudget(t *testing.T) {
	w, err := NewWorld(Options{Seed: 31, MaxUsers: 12, ClipCap: 2, Workload: "poisson", Arrivals: 5000, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	o := w.open
	completed := func() int { return o.sessionsN() - o.activeN() }
	runSessions := func(n int) {
		target := completed() + n
		w.fab.Run(func() bool { return completed() >= target })
		if completed() < target {
			t.Fatal("fabric drained before the session window completed")
		}
	}

	// Warm-up: rotate through the pool enough times that every bundle is
	// built and the per-shard packet and transit free-lists reach steady
	// state (including a few rebalance cycles between the shards).
	runSessions(5 * len(w.Users))

	const window = 20
	perSession := testing.AllocsPerRun(3, func() { runSessions(window) }) / window
	t.Logf("steady-state allocations per sharded session: %.0f (budget %d)", perSession, shardedSessionAllocBudget)
	if perSession > shardedSessionAllocBudget {
		t.Errorf("steady-state sharded churn allocates %.0f objects per session, budget %d — the transit pool has regressed",
			perSession, shardedSessionAllocBudget)
	}
}

// TestOpenLoopChurnDeterministic: pooled bundles must not leak state across
// the sessions they serve. Identical high-churn runs — departures tearing
// hosts out mid-stream, every template recycled repeatedly — produce
// byte-identical records; any predecessor state surviving a recycle would
// perturb the second run's draw stream or measurements.
func TestOpenLoopChurnDeterministic(t *testing.T) {
	run := func() (*Result, []byte) {
		res, err := Run(churnOpts())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.WriteCSV(&buf, res.Records); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes()
	}
	a, csvA := run()
	b, csvB := run()
	if a.Departed == 0 {
		t.Fatal("churn run saw no mid-stream departures; the abandonment recycle path went untested")
	}
	if a.Sessions <= len(a.Users) {
		t.Fatalf("only %d sessions over a %d-template pool; no bundle was recycled", a.Sessions, len(a.Users))
	}
	if !bytes.Equal(csvA, csvB) {
		t.Fatal("records differ between identical high-churn runs: recycled session state leaked")
	}
	if a.Sessions != b.Sessions || a.Departed != b.Departed || a.Balked != b.Balked {
		t.Fatal("session accounting differs between identical high-churn runs")
	}
}

// TestOpenLoopBundlesAreReused: the free-list actually frees — a run with
// more sessions than templates finishes with at most one bundle per
// template, every one quiescent. One bundle serving several time-disjoint
// sessions is the lifecycle the alloc budget above depends on.
func TestOpenLoopBundlesAreReused(t *testing.T) {
	w, err := NewWorld(churnOpts())
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	built := 0
	for _, b := range w.open.cells[0].bundles {
		if b == nil {
			continue
		}
		built++
		if !b.done {
			t.Fatalf("template %s bundle still live after the run ended", w.Users[b.idx].Name)
		}
	}
	if built == 0 || built > len(w.Users) {
		t.Fatalf("%d bundles built for a %d-template pool", built, len(w.Users))
	}
	if res.Sessions <= built {
		t.Fatalf("%d sessions over %d bundles; no bundle served more than one session", res.Sessions, built)
	}
}
