package study

import (
	"fmt"
	"sort"
	"time"

	"realtracer/internal/geo"
	"realtracer/internal/netsim"
)

// This file is the study-level dynamics catalog: named, intensity-scaled
// network-weather profiles built on the netsim dynamics layer. A profile
// name goes into Options.Dynamics ("" = the classic static Internet); the
// builder receives the filled options plus the world's server hosts and
// returns the concrete schedule, scaled to the study's own time horizon so
// the same profile works for a 4-user smoke test and a 1000-user campaign.

// DynamicsProfile is one catalog entry.
type DynamicsProfile struct {
	Name        string
	Description string
	// Build constructs the schedule for a filled Options at the given
	// intensity (1 = calibrated) over the server hosts.
	Build func(opt Options, intensity float64, serverHosts []string) *netsim.Dynamics
}

// studyHorizon estimates how much virtual time the bulk of a study spans:
// the stagger window plus a generous tail for the last user's playlist.
func studyHorizon(opt Options) time.Duration {
	return opt.StaggerWindow + 20*time.Minute
}

var dynamicsProfiles = map[string]DynamicsProfile{
	"outage": {
		Name:        "outage",
		Description: "rolling server-link outages: each site goes dark once, staggered through the run, with brief degradation shoulders",
		Build: func(opt Options, k float64, hosts []string) *netsim.Dynamics {
			h := studyHorizon(opt)
			d := netsim.NewDynamics()
			dur := time.Duration(k * float64(90*time.Second))
			for i, host := range hosts {
				at := time.Duration(float64(h) * (float64(i) + 0.5) / float64(len(hosts)))
				// Degradation shoulders on either side of the hard outage:
				// routers brown out before they black out.
				d.Degrade(host, "*", at-30*time.Second, 30*time.Second, 0.25*k)
				d.Degrade("*", host, at-30*time.Second, 30*time.Second, 0.25*k)
				d.Outage(host, "*", at, dur)
				d.Outage("*", host, at, dur)
				d.Degrade(host, "*", at+dur, 30*time.Second, 0.25*k)
				d.Degrade("*", host, at+dur, 30*time.Second, 0.25*k)
			}
			return d
		},
	},
	"flashcrowd": {
		Name:        "flashcrowd",
		Description: "two global flash-crowd congestion spikes (sharp rise, slow decay) at one and two thirds of the run",
		Build: func(opt Options, k float64, hosts []string) *netsim.Dynamics {
			h := studyHorizon(opt)
			amp := 0.45 * k
			if amp > 0.9 {
				amp = 0.9
			}
			return netsim.NewDynamics().
				FlashCrowd("*", "*", h/3, 2*time.Minute, 8*time.Minute, amp).
				FlashCrowd("*", "*", 2*h/3, 2*time.Minute, 8*time.Minute, amp)
		},
	},
	"lossburst": {
		Name:        "lossburst",
		Description: "Gilbert–Elliott loss-burst episodes on every path for the whole run (bursty seconds-long loss, not uniform thinning)",
		Build: func(opt Options, k float64, hosts []string) *netsim.Dynamics {
			// Bad-state dwell ~4s, active ~14% of the time; at the calibrated
			// intensity a bad second loses a quarter of its packets — enough
			// to overwhelm FEC and force NACK retransmission.
			bad := 0.25 * k
			if bad > 0.95 {
				bad = 0.95
			}
			return netsim.NewDynamics().
				LossBurst("*", "*", 0, 0, 0.04, 0.25, bad)
		},
	},
	"diurnal": {
		Name:        "diurnal",
		Description: "diurnal cross-traffic cycle: congestion swells and ebbs twice over the run on every path",
		Build: func(opt Options, k float64, hosts []string) *netsim.Dynamics {
			h := studyHorizon(opt)
			amp := 0.30 * k
			if amp > 0.9 {
				amp = 0.9
			}
			return netsim.NewDynamics().
				Diurnal("*", "*", 0, 0, h/2, amp)
		},
	},
	"routeflap": {
		Name:        "routeflap",
		Description: "mid-session route changes: every path shifts to a longer route partway through, with capacity ramping down, then partially recovers",
		Build: func(opt Options, k float64, hosts []string) *netsim.Dynamics {
			h := studyHorizon(opt)
			delta := time.Duration(k * float64(120*time.Millisecond))
			return netsim.NewDynamics().
				DelayShift("*", "*", h/3, h/3, delta).
				CapacityRamp("*", "*", h/3, 5*time.Minute, 1/(1+0.5*k)).
				CapacityRamp("*", "*", 2*h/3, 5*time.Minute, 1+0.5*k)
		},
	},
}

// DynamicsProfiles lists the catalog, sorted by name.
func DynamicsProfiles() []DynamicsProfile {
	out := make([]DynamicsProfile, 0, len(dynamicsProfiles))
	for _, p := range dynamicsProfiles {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DynamicsProfileByName looks up one catalog entry.
func DynamicsProfileByName(name string) (DynamicsProfile, bool) {
	p, ok := dynamicsProfiles[name]
	return p, ok
}

// DynamicsLabel is the condition label stamped on the run's records: the
// profile name, suffixed with the intensity when it is not the calibrated
// 1x ("lossburst", "lossburst-2x"). Distinct labels keep a fault-injection
// sweep's intensity arms separate in the robustness breakdown.
func (o Options) DynamicsLabel() string {
	if o.Dynamics == "" {
		return ""
	}
	k := o.DynamicsIntensity
	if k == 0 || k == 1 {
		return o.Dynamics
	}
	return fmt.Sprintf("%s-%gx", o.Dynamics, k)
}

// buildDynamics resolves the options' dynamics configuration to a concrete
// schedule, or (nil, nil) when dynamics are off.
func buildDynamics(opt Options, sites []geo.ServerSite) (*netsim.Dynamics, error) {
	if opt.Dynamics == "" {
		return nil, nil
	}
	p, ok := dynamicsProfiles[opt.Dynamics]
	if !ok {
		return nil, fmt.Errorf("study: unknown dynamics profile %q", opt.Dynamics)
	}
	k := opt.DynamicsIntensity
	if k == 0 {
		k = 1
	}
	active := geo.ActiveSites(sites)
	hosts := make([]string, 0, len(active))
	for _, s := range active {
		hosts = append(hosts, s.Host)
	}
	return p.Build(opt, k, hosts), nil
}
