package study

import (
	"strings"
	"testing"
)

func TestUnknownDynamicsProfileErrors(t *testing.T) {
	_, err := NewWorld(Options{Seed: 1, MaxUsers: 2, ClipCap: 1, Dynamics: "hurricane"})
	if err == nil || !strings.Contains(err.Error(), "hurricane") {
		t.Fatalf("want unknown-profile error naming the profile, got %v", err)
	}
}

func TestDynamicsProfilesAllBuild(t *testing.T) {
	opt := Options{Seed: 1}
	opt.fill()
	hosts := []string{"cnn.us", "bbc.uk"}
	for _, p := range DynamicsProfiles() {
		for _, k := range []float64{0.5, 1, 3} {
			spec := p.Build(opt, k, hosts)
			if spec == nil || len(spec.Events) == 0 {
				t.Fatalf("profile %s at %gx built an empty schedule", p.Name, k)
			}
		}
	}
}

func TestDynamicsLabelStampsRecords(t *testing.T) {
	res, err := Run(Options{Seed: 3, MaxUsers: 3, ClipCap: 2, Dynamics: "lossburst", DynamicsIntensity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("no records")
	}
	for _, rec := range res.Records {
		if rec.Dynamics != "lossburst-2x" {
			t.Fatalf("record label %q want %q", rec.Dynamics, "lossburst-2x")
		}
	}
}

func TestDynamicsLabel(t *testing.T) {
	cases := []struct {
		opt  Options
		want string
	}{
		{Options{}, ""},
		{Options{Dynamics: "outage"}, "outage"},
		{Options{Dynamics: "outage", DynamicsIntensity: 1}, "outage"},
		{Options{Dynamics: "outage", DynamicsIntensity: 0.5}, "outage-0.5x"},
		{Options{Dynamics: "diurnal", DynamicsIntensity: 2}, "diurnal-2x"},
	}
	for _, c := range cases {
		if got := c.opt.DynamicsLabel(); got != c.want {
			t.Errorf("DynamicsLabel(%q, %g)=%q want %q", c.opt.Dynamics, c.opt.DynamicsIntensity, got, c.want)
		}
	}
}

// TestOutageDynamicsDisruptDelivery pins that the weather actually reaches
// the players: a heavy rolling-outage study must show strictly more
// disruption (failed clips, rebuffers, or stream switches) than the same
// seed run on the static Internet.
func TestOutageDynamicsDisruptDelivery(t *testing.T) {
	base := Options{Seed: 9, MaxUsers: 6, ClipCap: 4}
	calm, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	stormy := base
	stormy.Dynamics = "outage"
	stormy.DynamicsIntensity = 2
	storm, err := Run(stormy)
	if err != nil {
		t.Fatal(err)
	}
	disruption := func(res *Result) (score int) {
		for _, r := range res.Records {
			if r.Failed {
				score += 10
			}
			score += r.Rebuffers + r.Switches
		}
		return score
	}
	calmScore, stormScore := disruption(calm), disruption(storm)
	if stormScore <= calmScore {
		t.Fatalf("outage study no more disrupted than baseline: %d vs %d", stormScore, calmScore)
	}
}
