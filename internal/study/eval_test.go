package study

import (
	"fmt"
	"testing"

	"realtracer/internal/stats"
	"realtracer/internal/trace"
)

// TestPaperShapes runs the full campaign and asserts the paper's
// qualitative findings — the orderings, crossovers and rough fractions of
// every evaluation figure. Absolute values need not match (our substrate is
// a simulator); shapes must. Skipped under -short.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	res, err := Run(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	recs := res.Records
	played := trace.Played(recs)
	rated := trace.Rated(recs)

	fps := func(rs []*trace.Record) []float64 {
		return trace.Values(rs, func(r *trace.Record) float64 { return r.MeasuredFPS })
	}
	jit := func(rs []*trace.Record) []float64 {
		return trace.Values(rs, func(r *trace.Record) float64 { return r.JitterMs })
	}
	byAccess := func(acc string) []*trace.Record {
		return trace.Filter(played, func(r *trace.Record) bool { return r.Access == acc })
	}
	byProto := func(p string) []*trace.Record {
		return trace.Filter(played, func(r *trace.Record) bool { return r.Protocol == p })
	}
	cdf := func(vals []float64) stats.CDF {
		c, err := stats.NewCDF(vals)
		if err != nil {
			t.Fatalf("empty sample: %v", err)
		}
		return c
	}

	t.Run("headline counts", func(t *testing.T) {
		if len(res.Users) != 63 {
			t.Errorf("users=%d want 63", len(res.Users))
		}
		if len(recs) < 2300 || len(recs) > 3400 {
			t.Errorf("clip attempts=%d, paper ~2855", len(recs))
		}
		if len(rated) < 250 || len(rated) > 550 {
			t.Errorf("rated=%d, paper ~388", len(rated))
		}
		unavailable := 0
		for _, r := range recs {
			if r.Unavailable {
				unavailable++
			}
		}
		frac := float64(unavailable) / float64(len(recs))
		if frac < 0.05 || frac > 0.16 {
			t.Errorf("unavailability %.2f, paper ~0.10 (fig 10)", frac)
		}
	})

	t.Run("fig11 frame rate overall", func(t *testing.T) {
		c := cdf(fps(played))
		s, _ := stats.Summarize(fps(played))
		if s.Mean < 7 || s.Mean > 13 {
			t.Errorf("mean fps %.1f, paper 10", s.Mean)
		}
		if b := c.FractionBelow(3); b < 0.08 || b > 0.35 {
			t.Errorf("below 3 fps %.2f, paper ~0.25", b)
		}
		if a := c.FractionAtLeast(15); a < 0.08 || a > 0.40 {
			t.Errorf("15+ fps %.2f, paper ~0.25", a)
		}
		if f := c.FractionAtLeast(24); f > 0.05 {
			t.Errorf("full-motion fraction %.3f, paper <0.01", f)
		}
	})

	t.Run("fig12 access ordering", func(t *testing.T) {
		modem := cdf(fps(byAccess("56k Modem")))
		dsl := cdf(fps(byAccess("DSL/Cable")))
		t1 := cdf(fps(byAccess("T1/LAN")))
		if modem.FractionBelow(3) <= dsl.FractionBelow(3) {
			t.Error("modems must be worse than DSL below 3 fps")
		}
		if modem.FractionBelow(3) < 0.35 {
			t.Errorf("modem below-3 %.2f, paper >0.5", modem.FractionBelow(3))
		}
		if modem.FractionAtLeast(15) > 0.10 {
			t.Errorf("modem 15+ %.2f, paper <0.10", modem.FractionAtLeast(15))
		}
		// DSL and T1 roughly comparable (the paper's "nearly the same").
		if d, v := dsl.FractionBelow(3), t1.FractionBelow(3); d > v+0.15 || v > d+0.15 {
			t.Errorf("DSL (%.2f) and T1 (%.2f) below-3 fractions should be close", d, v)
		}
	})

	t.Run("fig13 bandwidth by access", func(t *testing.T) {
		kbps := func(rs []*trace.Record) []float64 {
			return trace.Values(rs, func(r *trace.Record) float64 { return r.MeasuredKbps })
		}
		modem := cdf(kbps(byAccess("56k Modem")))
		dsl := cdf(kbps(byAccess("DSL/Cable")))
		if modem.Quantile(0.95) > 60 {
			t.Errorf("modem p95 bandwidth %.0f exceeds the technology", modem.Quantile(0.95))
		}
		// DSL rarely near its 512 Kbps capacity.
		if f := dsl.FractionAtLeast(420); f > 0.10 {
			t.Errorf("DSL near capacity %.2f of the time, paper <0.10", f)
		}
	})

	t.Run("fig14 server regions similar", func(t *testing.T) {
		var means []float64
		for _, reg := range []string{"Asia", "Brazil", "US/Canada", "Australia", "Europe"} {
			rs := trace.Filter(played, func(r *trace.Record) bool { return r.ServerRegion == reg })
			if len(rs) == 0 {
				t.Fatalf("no records for server region %s", reg)
			}
			means = append(means, stats.Mean(fps(rs)))
		}
		lo, hi := means[0], means[0]
		for _, m := range means {
			if m < lo {
				lo = m
			}
			if m > hi {
				hi = m
			}
		}
		// Paper: best ~13, worst ~8 — a spread under ~2x.
		if hi > 2.2*lo {
			t.Errorf("server-region spread too wide: %.1f..%.1f", lo, hi)
		}
	})

	t.Run("fig15 user regions differentiate", func(t *testing.T) {
		region := func(name string) []*trace.Record {
			return trace.Filter(played, func(r *trace.Record) bool { return r.Region == name })
		}
		aus := cdf(fps(region("Australia")))
		eu := cdf(fps(region("Europe")))
		if aus.FractionBelow(3) <= eu.FractionBelow(3) {
			t.Error("Australia/NZ users must fare worse than Europe (paper fig 15)")
		}
	})

	t.Run("fig16 protocol mix", func(t *testing.T) {
		udpShare := float64(len(byProto("UDP"))) / float64(len(played))
		if udpShare < 0.45 || udpShare < 0.5-0.06 || udpShare > 0.68 {
			t.Errorf("UDP share %.2f, paper just over half", udpShare)
		}
	})

	t.Run("fig17-18 protocols comparable", func(t *testing.T) {
		tcp := cdf(fps(byProto("TCP")))
		udp := cdf(fps(byProto("UDP")))
		dTCP, dUDP := tcp.FractionBelow(3), udp.FractionBelow(3)
		// Known deviation (EXPERIMENTS.md #2): our reliable TCP is cleaner
		// at the low end than the paper's, so the gap runs up to ~0.17 with
		// the opposite sign of the paper's 0.06. Bound it rather than hide
		// it.
		if dTCP > dUDP+0.20 || dUDP > dTCP+0.20 {
			t.Errorf("protocol below-3 gap too wide: TCP %.2f UDP %.2f (paper: 0.28 vs 0.22)", dTCP, dUDP)
		}
		kbps := func(rs []*trace.Record) []float64 {
			return trace.Values(rs, func(r *trace.Record) float64 { return r.MeasuredKbps })
		}
		mTCP, mUDP := stats.Mean(kbps(byProto("TCP"))), stats.Mean(kbps(byProto("UDP")))
		if mUDP < 0.6*mTCP || mUDP > 1.7*mTCP {
			t.Errorf("protocol bandwidths diverged: TCP %.0f UDP %.0f (paper: comparable)", mTCP, mUDP)
		}
	})

	t.Run("fig19 only oldest PCs bottleneck", func(t *testing.T) {
		mmx := trace.Filter(played, func(r *trace.Record) bool { return r.PCClass == "Intel Pentium MMX / 24MB" })
		piii := trace.Filter(played, func(r *trace.Record) bool { return r.PCClass == "Pentium III / 256-512MB" })
		if len(mmx) == 0 || len(piii) == 0 {
			t.Skip("PC classes under-sampled at this seed")
		}
		if stats.Mean(fps(mmx)) >= stats.Mean(fps(piii)) {
			t.Error("Pentium MMX machines should trail Pentium III")
		}
	})

	t.Run("fig20 jitter overall", func(t *testing.T) {
		c := cdf(jit(played))
		if a := c.At(50); a < 0.35 || a > 0.70 {
			t.Errorf("jitter <=50ms %.2f, paper ~0.52", a)
		}
		if g := c.FractionAtLeast(300); g < 0.08 || g > 0.45 {
			t.Errorf("jitter >=300ms %.2f, paper ~0.15", g)
		}
	})

	t.Run("fig21 jitter by access", func(t *testing.T) {
		modem := cdf(jit(byAccess("56k Modem")))
		dsl := cdf(jit(byAccess("DSL/Cable")))
		if modem.At(50) >= dsl.At(50) {
			t.Error("modem jitter must be worse than DSL")
		}
		if modem.At(50) > 0.25 {
			t.Errorf("modem jitter-free %.2f, paper ~0.10", modem.At(50))
		}
	})

	t.Run("fig25 jitter tracks bandwidth", func(t *testing.T) {
		low := trace.Filter(played, func(r *trace.Record) bool { return r.MeasuredKbps <= 100 && r.MeasuredKbps >= 10 })
		high := trace.Filter(played, func(r *trace.Record) bool { return r.MeasuredKbps > 100 })
		if len(low) == 0 || len(high) == 0 {
			t.Skip("bands under-sampled")
		}
		cl, ch := cdf(jit(low)), cdf(jit(high))
		if ch.At(50) <= cl.At(50) {
			t.Error("high-bandwidth clips must be smoother than low-bandwidth clips")
		}
	})

	t.Run("fig26 ratings near uniform mean 5", func(t *testing.T) {
		ratings := trace.Values(rated, func(r *trace.Record) float64 { return r.Rating })
		s, _ := stats.Summarize(ratings)
		if s.Mean < 4 || s.Mean > 6.2 {
			t.Errorf("rating mean %.1f, paper ~5", s.Mean)
		}
		if s.StdDev < 1.5 {
			t.Errorf("rating spread %.1f too tight for a near-uniform distribution", s.StdDev)
		}
	})

	t.Run("fig27 quality ordering by access", func(t *testing.T) {
		ratingsFor := func(acc string) []float64 {
			return trace.Values(trace.Filter(rated, func(r *trace.Record) bool { return r.Access == acc }),
				func(r *trace.Record) float64 { return r.Rating })
		}
		modem, dsl := ratingsFor("56k Modem"), ratingsFor("DSL/Cable")
		if len(modem) < 5 || len(dsl) < 5 {
			t.Skip("rated subsets too small")
		}
		if stats.Mean(modem) >= stats.Mean(dsl) {
			t.Errorf("modem ratings (%.1f) should trail DSL (%.1f)", stats.Mean(modem), stats.Mean(dsl))
		}
	})

	t.Run("fig28 weak correlation, no low ratings at high bandwidth", func(t *testing.T) {
		xs := trace.Values(rated, func(r *trace.Record) float64 { return r.MeasuredKbps })
		ys := trace.Values(rated, func(r *trace.Record) float64 { return r.Rating })
		r := stats.Pearson(xs, ys)
		if r < 0.02 || r > 0.7 {
			t.Errorf("pearson %.2f, paper: slight upward trend only", r)
		}
		bad := 0
		for i := range xs {
			if xs[i] > 250 && ys[i] < 2 {
				bad++
			}
		}
		if bad > len(xs)/50 {
			t.Errorf("%d very low ratings at high bandwidth; paper found a notable lack", bad)
		}
	})

	// Record the headline numbers for EXPERIMENTS.md refreshes.
	c := cdf(fps(played))
	j := cdf(jit(played))
	s, _ := stats.Summarize(fps(played))
	fmt.Printf("[eval] attempts=%d played=%d rated=%d meanfps=%.1f below3=%.2f ge15=%.2f jit50=%.2f jit300=%.2f\n",
		len(recs), len(played), len(rated), s.Mean, c.FractionBelow(3), c.FractionAtLeast(15), j.At(50), j.FractionAtLeast(300))
}
