package study

import (
	"math/rand"

	"realtracer/internal/geo"
	"realtracer/internal/netsim"
	"realtracer/internal/session"
	"realtracer/internal/simclock"
	"realtracer/internal/trace"
	"realtracer/internal/tracer"
	"realtracer/internal/transport"
	"realtracer/internal/vclock"
)

// SessionFactory turns a user — a pre-scheduled panel participant or an
// open-loop arrival — into an attached host and a configured RealTracer.
// It is the seam the monolithic launchUsers split along: the closed panel
// drives it once per user at build time, the workload generator drives it
// once per arrival on the simclock. Both paths share the same attach /
// tracer construction, so a clip played under either mode is measured
// identically.
//
// A sharded world builds one factory per shard, each bound to its shard's
// clock, Network and record sink, so every session a shard owns touches
// only that shard's mutable state.
type SessionFactory struct {
	w     *World
	clock *simclock.Clock
	net   *netsim.Network
	// sink, when non-nil, overrides the world sink: a sharded factory
	// collects its shard's records locally (merged deterministically after
	// the run). Nil routes through w.sink, which SetSink may replace after
	// the factory is built.
	sink trace.Sink
	// dynLabel and policyLabel are the world-constant condition labels
	// stamped on every record (stamping from one string instead of
	// reformatting per record).
	dynLabel    string
	policyLabel string
}

// attach brings the user's host onto the network with its access profile.
// Modem users draw their uplink characteristics from rng — the same draws,
// in the same order, as the classic launchUsers body.
func (f *SessionFactory) attach(u *geo.User, rng *rand.Rand) {
	access := netsim.DefaultAccessProfile(u.Access)
	if u.Access == netsim.AccessModem {
		// 2001 modems were a spread of V.90 and V.34 hardware syncing
		// anywhere from ~26 to ~46 Kbps depending on the line; PPP
		// framing and compression overhead shave ~10 % off the sync
		// rate in practice.
		access.DownKbps = u.ModemKbps * 0.9
		access.UpKbps = 22 + rng.Float64()*9
	}
	f.net.AddHost(netsim.HostConfig{Name: u.Name, Access: access})
}

// observe stamps the world-constant condition labels on a record and hands
// it to the factory's sink — the default OnRecord path.
func (f *SessionFactory) observe(rec *trace.Record) {
	rec.Dynamics = f.dynLabel
	rec.Policy = f.policyLabel
	if f.sink != nil {
		f.sink.Observe(rec)
		return
	}
	f.w.sink.Observe(rec)
}

// newTracer builds the user's RealTracer session over the given playlist.
// selectServer, onRecord and onFinished let the open-loop path install its
// per-clip mirror selection and session-lifecycle bookkeeping; the panel
// passes nil selection and the plain observe/remaining pair.
func (f *SessionFactory) newTracer(u *geo.User, rng *rand.Rand, playlist []tracer.Entry,
	selectServer func(tracer.Entry) tracer.Entry,
	onRecord func(*trace.Record), onFinished func()) *tracer.Tracer {
	return tracer.New(f.config(u, rng, playlist, selectServer, onRecord, onFinished, false))
}

// bundleTracer builds the reusable tracer for one open-loop template
// bundle. Everything the config binds — the template's transport stack,
// RNG, rater and lifecycle hooks — is created once here and survives every
// session the bundle serves; per-session state (the playlist) is installed
// by Tracer.Reset on each arrival. Record storage is reused across clips
// exactly when nothing downstream retains records: a world collector or a
// per-shard sink both hold on to the pointer past the clip.
func (f *SessionFactory) bundleTracer(u *geo.User, rng *rand.Rand,
	selectServer func(tracer.Entry) tracer.Entry,
	onRecord func(*trace.Record), onFinished func()) *tracer.Tracer {
	reuse := f.w.collector == nil && f.sink == nil
	return tracer.New(f.config(u, rng, nil, selectServer, onRecord, onFinished, reuse))
}

// config assembles one tracer.Config. The transport stack created here is
// bound to the user's host name, not to a host incarnation: interned host
// IDs are permanent and ephemeral ports advance monotonically, so the same
// stack serves every re-arrival of a pooled template.
func (f *SessionFactory) config(u *geo.User, rng *rand.Rand, playlist []tracer.Entry,
	selectServer func(tracer.Entry) tracer.Entry,
	onRecord func(*trace.Record), onFinished func(), reuseRecord bool) tracer.Config {
	rater := newRater(u, rng)
	stack := transport.NewStack(f.net, u.Name)
	f.w.trackStack(u.Name, stack)
	return tracer.Config{
		Clock:        vclock.Sim{C: f.clock},
		Net:          session.SimNet{Stack: stack},
		User:         u,
		Playlist:     playlist,
		PlayFor:      f.w.Options.PlayFor,
		Preroll:      f.w.Options.Preroll,
		Rand:         rng,
		Rate:         rater.rate,
		SelectServer: selectServer,
		OnRecord:     onRecord,
		OnFinished:   onFinished,
		ReuseRecord:  reuseRecord,
	}
}
