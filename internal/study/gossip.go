// Load gossip: how the least-loaded selection policy sees server occupancy
// in a sharded world.
//
// The classic engine probes each server's live ActiveSessions counter at
// selection time. A sharded cell cannot: the counter belongs to the
// server's owning shard, and a cross-shard read during a window is exactly
// the kind of partition-dependent coupling the fabric forbids. Instead each
// server's shard samples the counter on a fixed one-second tick and
// broadcasts changed values to every shard's private load view through the
// fabric's lookahead-delayed outbox machinery. Selections then read their
// own shard's view — a snapshot that is lookahead-stale, the way a real
// deployment's load feedback is propagation-stale.
//
// Partition invariance: the tick times (integer seconds), the sampled
// sequence (server session counts evolve at partition-invariant event
// times), and the application times (tick + lookahead) are all independent
// of the shard count; updates for distinct sites write distinct slots, and
// updates for one site are totally ordered by tick, so every shard's view
// at any virtual time is the same for every N. The equivalence fence's
// leastloaded arm holds the contract.
package study

import "time"

// gossipTick is the load-broadcast cadence. One second matches the
// coarseness of the quantity (whole sessions): finer ticks would multiply
// events without changing any pick.
const gossipTick = time.Second

// siteGossip is one server's pooled broadcast tick, running on the server's
// owning shard. Delta suppression keeps quiet servers free: an unchanged
// counter re-arms the tick and posts nothing.
type siteGossip struct {
	w     *World
	shard int // the server's owning shard; the tick runs here
	ai    int // index into World.ActiveSites / Servers
	last  int // last broadcast value; -1 forces the first broadcast
	ups   []*loadUpdate
}

// Fire implements simclock.EventHandler.
func (g *siteGossip) Fire(time.Duration) {
	w := g.w
	if v := w.Servers[g.ai].ActiveSessions(); v != g.last {
		g.last = v
		now := w.fab.Clock(g.shard).Now()
		at := now + w.fab.Lookahead()
		for s, u := range g.ups {
			u.v = v
			w.fab.Post(g.shard, s, at, u)
		}
	}
	w.fab.Clock(g.shard).AfterHandler(gossipTick, g)
}

// loadUpdate is one pooled (site, destination-shard) update cell. Reuse is
// safe: an update posted at tick+L has always fired before the same site's
// next possible post mutates it again — the gap between them is at least
// gossipTick - L, which is many windows under any admissible lookahead.
type loadUpdate struct {
	w     *World
	shard int // destination shard whose load view this writes
	ai    int
	v     int
}

// Fire implements simclock.EventHandler.
func (u *loadUpdate) Fire(time.Duration) { u.w.loads[u.shard][u.ai] = u.v }

// startLoadGossip builds the per-shard load views and schedules every
// site's first tick. Called only when the selection policy actually reads
// load ("leastloaded"); the other policies keep a gossip-free event stream.
func (w *World) startLoadGossip() {
	shards := w.fab.NumShards()
	w.loads = make([][]int, shards)
	for s := range w.loads {
		w.loads[s] = make([]int, len(w.Servers))
	}
	for ai := range w.Servers {
		g := &siteGossip{w: w, shard: w.siteShard(ai), ai: ai, last: -1}
		for s := 0; s < shards; s++ {
			g.ups = append(g.ups, &loadUpdate{w: w, shard: s, ai: ai})
		}
		w.fab.Clock(g.shard).AfterHandler(gossipTick, g)
	}
}
