package study

import (
	"fmt"
	"math/rand"
	"time"

	"realtracer/internal/simclock"
	"realtracer/internal/trace"
	"realtracer/internal/tracer"
	"realtracer/internal/workload"
)

// openLoop is the workload generator's run state: the resolved arrival
// spec, the selection policy, the template pool occupancy, and the session
// accounting Run's termination condition watches.
type openLoop struct {
	spec   workload.Spec
	policy workload.Policy // nil = pinned: no per-clip selection step
	rng    *rand.Rand

	arrivalsLeft int
	active       int
	sessions     int
	balked       int
	departed     int

	busy   []bool // template pool occupancy, indexed like World.Users
	cursor int    // round-robin template scan position

	// bundles are the per-template session machinery, built on a
	// template's first arrival and reused for every arrival after it —
	// the free-list behind the zero-allocation session lifecycle.
	bundles []*sessionBundle

	cands []workload.Candidate // per-pick scratch (single-threaded world)
}

// sessionClipCycle is the nominal wall time one clip occupies: playout
// plus the inter-clip think/rating pause. Arrival-rate calibration and
// departure deadlines are placed in units of it.
func sessionClipCycle(opt Options) time.Duration {
	return opt.PlayFor + 8*time.Second
}

// startWorkload resolves the options into a workload spec and selection
// policy and schedules the first arrival. The arrival rate is calibrated
// so steady-state expected concurrency sits at ~40% of the template pool
// at 1x intensity: rate = 0.4·pool / E[session duration].
func (w *World) startWorkload() error {
	opt := w.Options
	prof, ok := workload.ProfileByName(opt.Workload)
	if !ok {
		return fmt.Errorf("study: unknown workload profile %q", opt.Workload)
	}
	polName := opt.PolicyLabel()
	pol, ok := workload.PolicyByName(polName)
	if !ok {
		return fmt.Errorf("study: unknown selection policy %q", polName)
	}
	if _, pinned := pol.(workload.Pinned); pinned {
		// Pinned is the identity selection; skip the per-clip probe work.
		pol = nil
	}

	k := opt.WorkloadIntensity
	if k == 0 {
		k = 1
	}
	pool := len(w.Users)
	meanClips := 4.0
	if opt.ClipCap > 0 && float64(opt.ClipCap) < meanClips {
		meanClips = float64(opt.ClipCap)
	}
	sessDur := time.Duration(meanClips * float64(sessionClipCycle(opt)))
	rate := k * 0.4 * float64(pool) / sessDur.Seconds()
	horizon := time.Duration(float64(opt.Arrivals) / rate * float64(time.Second))
	spec := prof.Build(rate, horizon)
	spec.MaxClips = opt.ClipCap

	seed := opt.WorkloadSeed
	if seed == 0 {
		seed = opt.Seed + 5
	}
	w.open = &openLoop{
		spec:         spec,
		policy:       pol,
		rng:          rand.New(rand.NewSource(seed)),
		arrivalsLeft: opt.Arrivals,
		busy:         make([]bool, pool),
		bundles:      make([]*sessionBundle, pool),
	}
	w.scheduleArrival()
	return nil
}

// arriveArm is the pooled handler behind every arrival event: a
// pointer-conversion view of World, so sustaining the arrival train
// schedules nothing but recycled clock events.
type arriveArm World

func (x *arriveArm) Fire(time.Duration) { (*World)(x).arrive() }

// scheduleArrival draws the next inter-arrival gap and schedules the
// arrival; the generator sustains itself one event at a time instead of
// pre-scheduling the whole arrival train.
func (w *World) scheduleArrival() {
	if w.open.arrivalsLeft <= 0 {
		return
	}
	gap := w.open.spec.NextGap(w.Clock.Now(), w.open.rng)
	w.Clock.AfterHandler(gap, (*arriveArm)(w))
}

// arrive admits one session: pick an idle user template (round-robin scan,
// so re-arrivals rotate through the pool), launch it, and schedule the
// next arrival. When every template is busy the arrival balks — the open
// population turned someone away.
func (w *World) arrive() {
	o := w.open
	o.arrivalsLeft--
	idx := -1
	for i := 0; i < len(o.busy); i++ {
		j := (o.cursor + i) % len(o.busy)
		if !o.busy[j] {
			idx = j
			break
		}
	}
	if idx < 0 {
		o.balked++
	} else {
		o.cursor = idx + 1
		w.launchSession(idx)
	}
	w.scheduleArrival()
}

// sessionBundle is one template's reusable session machinery: the tracer
// (with its player engine, packet arenas and transport stack), the session
// RNG, and the plan/playlist scratch. It is built on the template's first
// arrival and leased — never rebuilt — on every arrival after that: the
// RNG is reseeded, the tracer Reset, and the scratch rewritten in place.
// finish and depart both converge on endSession exactly once: finish is
// the tracer walking off the end of its drawn playlist, depart is the
// mid-stream hangup that tears the host out from under in-flight packets.
type sessionBundle struct {
	w   *World
	idx int

	rng      *rand.Rand
	tr       *tracer.Tracer
	clips    []int          // NextPlanInto scratch, holds the drawn plan
	playlist []tracer.Entry // per-session playlist storage, reused

	departTimer simclock.Timer
	done        bool
	departed    bool
}

// departArm is the pooled handler for the mid-stream departure deadline.
type departArm sessionBundle

func (x *departArm) Fire(time.Duration) { (*sessionBundle)(x).depart() }

// newBundle builds a template's bundle on its first arrival. The bound
// method values and the selection closure here are the bundle's only
// closure allocations, paid once per template for the run's lifetime.
func (w *World) newBundle(idx int, seed int64) *sessionBundle {
	u := w.Users[idx]
	b := &sessionBundle{w: w, idx: idx, rng: rand.New(rand.NewSource(seed))}
	b.tr = w.factory.bundleTracer(u, b.rng, w.selectFor(u.Name), b.onRecord, b.finish)
	return b
}

// launchSession draws the session plan (clip count, Zipf clip picks,
// abandonment) from the template's reseeded session RNG, attaches the
// template's host — a fresh incarnation if this template arrived before —
// and starts the tracer now. Reseeding the pooled RNG reproduces the
// exact draw stream a freshly-constructed RNG would give, so the records
// are byte-identical to the unpooled lifecycle's.
func (w *World) launchSession(idx int) {
	o := w.open
	u := w.Users[idx]
	o.busy[idx] = true
	o.active++
	o.sessions++

	seed := o.rng.Int63()
	b := o.bundles[idx]
	if b == nil {
		b = w.newBundle(idx, seed)
		o.bundles[idx] = b
	} else {
		b.rng.Seed(seed)
	}
	b.done, b.departed = false, false

	plan := o.spec.NextPlanInto(b.rng, len(w.Playlist), sessionClipCycle(w.Options), b.clips)
	b.clips = plan.Clips // keep the grown scratch for the next arrival
	b.playlist = b.playlist[:0]
	for _, c := range plan.Clips {
		b.playlist = append(b.playlist, w.Playlist[c])
	}
	w.factory.attach(u, b.rng)
	b.tr.Reset(b.playlist)
	b.departTimer = simclock.Timer{}
	if plan.DepartAfter > 0 {
		b.departTimer = w.Clock.AfterHandler(plan.DepartAfter, (*departArm)(b))
	}
	b.tr.Run()
}

// selectFor builds the per-clip selection hook for one session: probe
// every mirror (static RTT estimate plus the server's live session count)
// and re-home the entry to the policy's pick. Nil under pinned.
func (w *World) selectFor(userName string) func(tracer.Entry) tracer.Entry {
	o := w.open
	if o.policy == nil {
		return nil
	}
	return func(e tracer.Entry) tracer.Entry {
		cands := o.cands[:0]
		for i, site := range w.ActiveSites {
			cands = append(cands, workload.Candidate{
				Host: site.Host,
				Home: site.Host == e.Site.Host,
				RTT:  w.Net.BaseRTT(userName, site.Host),
				Load: w.Servers[i].ActiveSessions(),
			})
		}
		o.cands = cands // keep the grown scratch for the next pick
		pick := o.policy.Pick(userName, cands)
		site := w.ActiveSites[pick]
		if site.Host == e.Site.Host {
			return e
		}
		e.ControlAddr = replaceHost(e.ControlAddr, site.Host)
		e.Site = site
		return e
	}
}

// replaceHost swaps the host component of a "host:port" address.
func replaceHost(addr, host string) string {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			return host + addr[i:]
		}
	}
	return host
}

// onRecord forwards a completed clip's record to the sink, unless the user
// already hung up — an abandoned session reports nothing after departure,
// like a real client that is simply gone.
func (b *sessionBundle) onRecord(rec *trace.Record) {
	if b.departed {
		return
	}
	b.w.factory.observe(rec)
}

// finish is the tracer's natural end of session.
func (b *sessionBundle) finish() {
	if b.done {
		return
	}
	b.done = true
	b.departTimer.Cancel()
	b.w.endSession(b.idx)
}

// depart is the mid-stream hangup: stop the playlist walk, then tear the
// host out of the network with the clip still streaming. In-flight packets
// addressed to the host are dropped (and released back to the packet pool)
// by netsim; endSession reaps the orphaned server-side session — no
// TEARDOWN can ever arrive from a host that is gone. The tracer is then
// hard-stopped: once the host is removed every send from it drops at the
// source lookup before any RNG draw, so aborting the zombie player changes
// no record and no draw stream — it only stops the zombie from burning
// clock events until its PlayFor would have elapsed, and it is what lets
// the bundle be relaunched without a live predecessor still holding it.
func (b *sessionBundle) depart() {
	if b.done {
		return
	}
	b.done, b.departed = true, true
	b.tr.Stop()
	b.w.open.departed++
	b.w.endSession(b.idx)
	b.tr.Abort()
}

// endSession removes the session's host, reaps any server-side session
// state the departed client left behind (an abandoned stream would
// otherwise pace at the dead address forever and permanently inflate the
// least-loaded policy's ActiveSessions probe), and frees the template for
// the next arrival under the same name.
func (w *World) endSession(idx int) {
	name := w.Users[idx].Name
	w.Net.RemoveHost(name)
	for _, srv := range w.Servers {
		srv.DropClient(name)
	}
	w.open.busy[idx] = false
	w.open.active--
}
