package study

import (
	"fmt"
	"math"
	"time"

	"realtracer/internal/detrand"
	"realtracer/internal/simclock"
	"realtracer/internal/trace"
	"realtracer/internal/tracer"
	"realtracer/internal/workload"
)

// openLoop is the workload generator's run state: one or more arrival
// cells, each owning a disjoint slice of the template pool and a private
// arrival stream. The classic single-threaded world runs exactly one cell
// over the whole pool — byte-identical to the pre-cell engine. A sharded
// world runs one cell per user block, pinned to the shard that owns the
// block's hosts, and relies on Poisson splitting to keep the aggregate
// arrival process identical in distribution.
type openLoop struct {
	cells []*arrivalCell
}

func (o *openLoop) pending() int {
	n := 0
	for _, c := range o.cells {
		n += c.arrivalsLeft
	}
	return n
}

func (o *openLoop) activeN() int {
	n := 0
	for _, c := range o.cells {
		n += c.active
	}
	return n
}

func (o *openLoop) sessionsN() int {
	n := 0
	for _, c := range o.cells {
		n += c.sessions
	}
	return n
}

func (o *openLoop) balkedN() int {
	n := 0
	for _, c := range o.cells {
		n += c.balked
	}
	return n
}

func (o *openLoop) departedN() int {
	n := 0
	for _, c := range o.cells {
		n += c.departed
	}
	return n
}

// arrivalCell is one arrival stream over a disjoint slice of the template
// pool: the (possibly split) arrival spec, the selection policy instance,
// the cell's private RNG, the occupancy of its members, and the session
// accounting the run's termination condition sums. Everything a cell
// mutates at runtime belongs to its shard, so cells never race.
type arrivalCell struct {
	w     *World
	shard int // -1 = classic single-threaded world
	ord   int // cell ordinal in build order; partition-invariant
	spec  workload.Spec
	// policy is this cell's private selection-policy instance (stateful
	// policies like round-robin advance per cell); nil = pinned, no
	// per-clip selection step.
	policy workload.Policy
	// rng is the cell's private arrival/plan stream. The counting source
	// lets a checkpoint persist the stream position as (seed, draw count).
	rng *detrand.Rand

	// arrivalTimer is the armed next-arrival event, tracked so a restore
	// can re-arm it at its original (time, seq) slot.
	arrivalTimer simclock.Timer

	arrivalsLeft int
	active       int
	sessions     int
	balked       int
	departed     int

	members []int  // indices into World.Users this cell owns
	busy    []bool // template occupancy, indexed like members
	cursor  int    // round-robin template scan position

	// bundles are the per-template session machinery, built on a
	// template's first arrival and reused for every arrival after it —
	// the free-list behind the zero-allocation session lifecycle.
	bundles []*sessionBundle

	cands []workload.Candidate // per-pick scratch (single-owner state)
}

func (c *arrivalCell) clock() *simclock.Clock { return c.w.clockFor(c.shard) }

// sessionClipCycle is the nominal wall time one clip occupies: playout
// plus the inter-clip think/rating pause. Arrival-rate calibration and
// departure deadlines are placed in units of it.
func sessionClipCycle(opt Options) time.Duration {
	return opt.PlayFor + 8*time.Second
}

// resolveWorkloadSpec resolves the options into the full-pool workload
// spec, the selection-policy name, and the arrival-stream seed. The rate
// is calibrated so steady-state expected concurrency sits at ~40% of the
// template pool at 1x intensity: rate = 0.4·pool / E[session duration].
// Degenerate calibrations — an empty pool, a rate that is zero or
// infinite — are hard errors here, before the first NextGap draw could
// turn them into undefined float→int64 arithmetic.
func (w *World) resolveWorkloadSpec() (workload.Spec, string, int64, error) {
	opt := w.Options
	prof, ok := workload.ProfileByName(opt.Workload)
	if !ok {
		return workload.Spec{}, "", 0, fmt.Errorf("study: unknown workload profile %q", opt.Workload)
	}
	polName := opt.PolicyLabel()
	if _, ok := workload.PolicyByName(polName); !ok {
		return workload.Spec{}, "", 0, fmt.Errorf("study: unknown selection policy %q", polName)
	}
	pool := len(w.Users)
	if pool == 0 {
		return workload.Spec{}, "", 0, fmt.Errorf("study: open-loop workload needs a non-empty template pool")
	}

	k := opt.WorkloadIntensity
	if k == 0 {
		k = 1
	}
	meanClips := 4.0
	if opt.ClipCap > 0 && float64(opt.ClipCap) < meanClips {
		meanClips = float64(opt.ClipCap)
	}
	sessDur := time.Duration(meanClips * float64(sessionClipCycle(opt)))
	rate := k * 0.4 * float64(pool) / sessDur.Seconds()
	if !(rate > 0) || math.IsInf(rate, 1) {
		return workload.Spec{}, "", 0, fmt.Errorf("study: workload calibration produced a degenerate arrival rate %v (pool %d, intensity %g)", rate, pool, k)
	}
	horizon := time.Duration(float64(opt.Arrivals) / rate * float64(time.Second))
	spec := prof.Build(rate, horizon)
	spec.MaxClips = opt.ClipCap
	if !(spec.MaxRate > 0) || math.IsInf(spec.MaxRate, 1) {
		return workload.Spec{}, "", 0, fmt.Errorf("study: workload profile %q resolved a degenerate MaxRate %v", opt.Workload, spec.MaxRate)
	}

	seed := opt.WorkloadSeed
	if seed == 0 {
		seed = opt.Seed + 5
	}
	return spec, polName, seed, nil
}

// policyInstance builds a fresh selection-policy instance, mapping pinned
// (the identity selection) to nil so the per-clip probe is skipped.
func policyInstance(name string) workload.Policy {
	pol, _ := workload.PolicyByName(name)
	if _, pinned := pol.(workload.Pinned); pinned {
		return nil
	}
	return pol
}

// startWorkload builds the classic single-cell workload generator and
// schedules its first arrival: one arrival stream over the whole template
// pool, drawing from the legacy seed in the legacy order.
func (w *World) startWorkload() error {
	spec, polName, seed, err := w.resolveWorkloadSpec()
	if err != nil {
		return err
	}
	pool := len(w.Users)
	members := make([]int, pool)
	for i := range members {
		members[i] = i
	}
	c := &arrivalCell{
		w:            w,
		shard:        -1,
		spec:         spec,
		policy:       policyInstance(polName),
		rng:          detrand.New(seed),
		arrivalsLeft: w.Options.Arrivals,
		members:      members,
		busy:         make([]bool, pool),
		bundles:      make([]*sessionBundle, pool),
	}
	w.open = &openLoop{cells: []*arrivalCell{c}}
	c.scheduleArrival()
	return nil
}

// arriveArm is the pooled handler behind every arrival event: a
// pointer-conversion view of the cell, so sustaining the arrival train
// schedules nothing but recycled clock events.
type arriveArm arrivalCell

func (x *arriveArm) Fire(time.Duration) { (*arrivalCell)(x).arrive() }

// scheduleArrival draws the next inter-arrival gap and schedules the
// arrival; the generator sustains itself one event at a time instead of
// pre-scheduling the whole arrival train.
func (c *arrivalCell) scheduleArrival() {
	if c.arrivalsLeft <= 0 {
		return
	}
	clk := c.clock()
	gap := c.spec.NextGap(clk.Now(), c.rng.Rand)
	c.arrivalTimer = clk.AfterHandler(gap, (*arriveArm)(c))
}

// arrive admits one session: pick an idle member template (round-robin
// scan, so re-arrivals rotate through the cell), launch it, and schedule
// the next arrival. When every template is busy the arrival balks — the
// open population turned someone away.
func (c *arrivalCell) arrive() {
	c.arrivalsLeft--
	mi := -1
	for i := 0; i < len(c.busy); i++ {
		j := (c.cursor + i) % len(c.busy)
		if !c.busy[j] {
			mi = j
			break
		}
	}
	if mi < 0 {
		c.balked++
	} else {
		c.cursor = mi + 1
		c.launchSession(mi)
	}
	c.scheduleArrival()
}

// sessionBundle is one template's reusable session machinery: the tracer
// (with its player engine, packet arenas and transport stack), the session
// RNG, and the plan/playlist scratch. It is built on the template's first
// arrival and leased — never rebuilt — on every arrival after that: the
// RNG is reseeded, the tracer Reset, and the scratch rewritten in place.
// finish and depart both converge on endSession exactly once: finish is
// the tracer walking off the end of its drawn playlist, depart is the
// mid-stream hangup that tears the host out from under in-flight packets.
type sessionBundle struct {
	cell *arrivalCell
	mi   int // index into cell.members/busy/bundles
	idx  int // index into World.Users

	rng      *detrand.Rand
	tr       *tracer.Tracer
	clips    []int          // NextPlanInto scratch, holds the drawn plan
	playlist []tracer.Entry // per-session playlist storage, reused

	departTimer simclock.Timer
	done        bool
	departed    bool

	// ordinal is the running session's arrival stamp: the owning cell's
	// ordinal in the high bits, the cell's launch count in the low. Both
	// are fixed before any shard assignment, so the stamp orders sessions
	// identically for every shard count — the total-order tiebreak the
	// sharded record merge needs when two records collide on every
	// observable sort key.
	ordinal int64

	// drops are the pooled cross-shard DropClient handlers, one per
	// server, built on the bundle's first sharded departure.
	drops []*dropArm
}

// departArm is the pooled handler for the mid-stream departure deadline.
type departArm sessionBundle

func (x *departArm) Fire(time.Duration) { (*sessionBundle)(x).depart() }

// newBundle builds a template's bundle on its first arrival. The bound
// method values and the selection closure here are the bundle's only
// closure allocations, paid once per template for the run's lifetime.
func (c *arrivalCell) newBundle(mi int, seed int64) *sessionBundle {
	w := c.w
	idx := c.members[mi]
	u := w.Users[idx]
	b := &sessionBundle{cell: c, mi: mi, idx: idx, rng: detrand.New(seed)}
	b.tr = w.factoryFor(c.shard).bundleTracer(u, b.rng.Rand, c.selectFor(u.Name), b.onRecord, b.finish)
	return b
}

// launchSession draws the session plan (clip count, Zipf clip picks,
// abandonment) from the template's reseeded session RNG, attaches the
// template's host — a fresh incarnation if this template arrived before —
// and starts the tracer now. Reseeding the pooled RNG reproduces the
// exact draw stream a freshly-constructed RNG would give, so the records
// are byte-identical to the unpooled lifecycle's.
func (c *arrivalCell) launchSession(mi int) {
	w := c.w
	idx := c.members[mi]
	u := w.Users[idx]
	c.busy[mi] = true
	c.active++
	c.sessions++

	seed := c.rng.Int63()
	b := c.bundles[mi]
	if b == nil {
		b = c.newBundle(mi, seed)
		c.bundles[mi] = b
	} else {
		b.rng.Seed(seed)
	}
	b.done, b.departed = false, false
	b.ordinal = int64(c.ord)<<32 | int64(c.sessions)

	plan := c.spec.NextPlanInto(b.rng.Rand, len(w.Playlist), sessionClipCycle(w.Options), b.clips)
	b.clips = plan.Clips // keep the grown scratch for the next arrival
	b.playlist = b.playlist[:0]
	for _, ci := range plan.Clips {
		b.playlist = append(b.playlist, w.Playlist[ci])
	}
	w.factoryFor(c.shard).attach(u, b.rng.Rand)
	b.tr.Reset(b.playlist)
	b.departTimer = simclock.Timer{}
	if plan.DepartAfter > 0 {
		b.departTimer = c.clock().AfterHandler(plan.DepartAfter, (*departArm)(b))
	}
	b.tr.Run()
}

// selectFor builds the per-clip selection hook for one session: probe
// every mirror (static RTT estimate plus the server's session count) and
// re-home the entry to the policy's pick. Nil under pinned. The classic
// engine probes the live ActiveSessions counter; a sharded cell reads its
// shard's gossip-delayed load view instead (gossip.go) — nil and so probed
// as 0 unless the policy is "leastloaded", the only one that reads load.
func (c *arrivalCell) selectFor(userName string) func(tracer.Entry) tracer.Entry {
	if c.policy == nil {
		return nil
	}
	w := c.w
	return func(e tracer.Entry) tracer.Entry {
		cands := c.cands[:0]
		for i, site := range w.ActiveSites {
			load := 0
			if c.shard < 0 {
				load = w.Servers[i].ActiveSessions()
			} else if w.loads != nil {
				load = w.loads[c.shard][i]
			}
			cands = append(cands, workload.Candidate{
				Host: site.Host,
				Home: site.Host == e.Site.Host,
				RTT:  w.netFor(c.shard).BaseRTT(userName, site.Host),
				Load: load,
			})
		}
		c.cands = cands // keep the grown scratch for the next pick
		pick := c.policy.Pick(userName, cands)
		site := w.ActiveSites[pick]
		if site.Host == e.Site.Host {
			return e
		}
		e.ControlAddr = replaceHost(e.ControlAddr, site.Host)
		e.Site = site
		return e
	}
}

// replaceHost swaps the host component of a "host:port" address. Every
// control address the study layer builds carries an explicit port; an
// address without one would silently re-home the session to a portless —
// undialable — string, so it is a bug in the caller, not an input.
func replaceHost(addr, host string) string {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			return host + addr[i:]
		}
	}
	panic(fmt.Sprintf("study: control address %q has no port", addr))
}

// onRecord forwards a completed clip's record to the sink, unless the user
// already hung up — an abandoned session reports nothing after departure,
// like a real client that is simply gone.
func (b *sessionBundle) onRecord(rec *trace.Record) {
	if b.departed {
		return
	}
	rec.Ordinal = b.ordinal
	c := b.cell
	c.w.factoryFor(c.shard).observe(rec)
}

// finish is the tracer's natural end of session.
func (b *sessionBundle) finish() {
	if b.done {
		return
	}
	b.done = true
	b.departTimer.Cancel()
	b.cell.endSession(b)
}

// depart is the mid-stream hangup: stop the playlist walk, then tear the
// host out of the network with the clip still streaming. In-flight packets
// addressed to the host are dropped (and released back to the packet pool)
// by netsim; endSession reaps the orphaned server-side session — no
// TEARDOWN can ever arrive from a host that is gone. The tracer is then
// hard-stopped: once the host is removed every send from it drops at the
// source lookup before any RNG draw, so aborting the zombie player changes
// no record and no draw stream — it only stops the zombie from burning
// clock events until its PlayFor would have elapsed, and it is what lets
// the bundle be relaunched without a live predecessor still holding it.
func (b *sessionBundle) depart() {
	if b.done {
		return
	}
	b.done, b.departed = true, true
	b.tr.Stop()
	b.cell.departed++
	b.cell.endSession(b)
	b.tr.Abort()
}

// endSession removes the session's host, reaps any server-side session
// state the departed client left behind (an abandoned stream would
// otherwise pace at the dead address forever and permanently inflate the
// least-loaded policy's ActiveSessions probe), and frees the template for
// the next arrival under the same name.
//
// On the classic engine all of that is synchronous. A sharded cell owns
// only its own shard: the host is removed locally, but each server's
// DropClient is posted to the server's shard at now+L (the soonest a
// cross-shard message may land), and the template stays busy until now+2L.
// The delay makes the teardown race-free by timing alone: a re-arrival of
// the same template happens at T+2L or later, so its first packet reaches
// any server no earlier than T+3L — strictly after the T+L drop — and the
// drop can never reap the successor session's server-side state. All three
// timestamps are partition-invariant because L is computed from the route
// table, never from the partition.
func (c *arrivalCell) endSession(b *sessionBundle) {
	w := c.w
	name := w.Users[b.idx].Name
	if c.shard < 0 {
		w.Net.RemoveHost(name)
		for _, srv := range w.Servers {
			srv.DropClient(name)
		}
		c.busy[b.mi] = false
		c.active--
		return
	}
	w.netFor(c.shard).RemoveHost(name)
	c.active--
	now := c.clock().Now()
	L := w.fab.Lookahead()
	if b.drops == nil {
		b.drops = make([]*dropArm, 0, len(w.Servers))
		for _, srv := range w.Servers {
			b.drops = append(b.drops, &dropArm{srv: srv, name: name})
		}
	}
	for si, d := range b.drops {
		w.fab.Post(c.shard, w.siteShard(si), now+L, d)
	}
	c.clock().AfterHandler(2*L, (*freeArm)(b))
}

// freeArm is the pooled handler that returns a sharded template to the
// idle pool at departure+2L (see endSession).
type freeArm sessionBundle

func (x *freeArm) Fire(time.Duration) {
	b := (*sessionBundle)(x)
	b.cell.busy[b.mi] = false
}
