package study

import (
	"bytes"
	"testing"

	"realtracer/internal/trace"
)

// openLoopOpts is a reduced open-loop study the lifecycle tests share.
func openLoopOpts() Options {
	return Options{Seed: 5, MaxUsers: 10, ClipCap: 2, Workload: "poisson", Arrivals: 20}
}

// TestOpenLoopRunCompletes: an open-loop study admits its full arrival
// budget, every session ends, and the session accounting adds up.
func TestOpenLoopRunCompletes(t *testing.T) {
	res, err := Run(openLoopOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions+res.Balked != 20 {
		t.Fatalf("sessions=%d + balked=%d != 20 arrivals", res.Sessions, res.Balked)
	}
	if res.Sessions == 0 || len(res.Records) == 0 {
		t.Fatalf("open-loop run produced %d sessions, %d records", res.Sessions, len(res.Records))
	}
	for _, r := range res.Records {
		if r.Policy != "pinned" {
			t.Fatalf("open-loop record policy = %q, want pinned default", r.Policy)
		}
		if r.EndSec <= r.StartSec {
			t.Fatalf("record time span [%g, %g] not increasing", r.StartSec, r.EndSec)
		}
	}
}

// TestOpenLoopDeterministic: the same options reproduce byte-identical
// records — arrivals, Zipf picks, abandonment and all.
func TestOpenLoopDeterministic(t *testing.T) {
	a, err := Run(openLoopOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(openLoopOpts())
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	if err := trace.WriteCSV(&ba, a.Records); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCSV(&bb, b.Records); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("open-loop records differ between identical runs")
	}
	if a.Sessions != b.Sessions || a.Departed != b.Departed || a.Balked != b.Balked {
		t.Fatal("open-loop session accounting differs between identical runs")
	}
}

// TestOpenLoopWorkloadSeedIndependent: a different WorkloadSeed changes the
// arrival track without touching the world seed — the decoupling the
// campaign engine's per-scenario derivation depends on.
func TestOpenLoopWorkloadSeedIndependent(t *testing.T) {
	opt := openLoopOpts()
	a, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.WorkloadSeed = 999
	b, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.SimDuration == b.SimDuration && len(a.Records) == len(b.Records) {
		t.Fatal("changing WorkloadSeed left the run untouched")
	}
}

// TestOpenLoopChurnReleasesAndReuses is the session-lifecycle regression:
// sessions that depart mid-stream leave no packets unaccounted for
// (delivered + dropped == sent, so every pooled packet was released), every
// host is detached by the end, and with more arrivals than templates a
// re-arriving user got a fresh session under the same host name.
func TestOpenLoopChurnReleasesAndReuses(t *testing.T) {
	opt := Options{Seed: 11, MaxUsers: 6, ClipCap: 2, Workload: "poisson", Arrivals: 25, WorkloadIntensity: 3}
	w, err := NewWorld(opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Departed == 0 {
		t.Fatal("churn run saw no mid-stream departures; the abandonment path went untested")
	}
	if res.Sessions <= opt.MaxUsers {
		t.Fatalf("only %d sessions over a %d-template pool; no template was ever reused", res.Sessions, opt.MaxUsers)
	}
	sent, delivered, dropped := w.Net.Stats()
	if delivered+dropped != sent {
		t.Fatalf("packet conservation broken under churn: sent=%d delivered=%d dropped=%d", sent, delivered, dropped)
	}
	for _, u := range w.Users {
		if w.Net.Attached(u.Name) {
			t.Fatalf("host %s still attached after its last departure", u.Name)
		}
	}
	// A departed client can never send TEARDOWN, so endSession must reap
	// the orphaned server-side sessions — otherwise the ActiveSessions
	// load probe drifts upward forever and the leastloaded policy steers
	// by phantom load.
	for i, srv := range w.Servers {
		if n := srv.ActiveSessions(); n != 0 {
			t.Fatalf("server %s still counts %d active sessions after all departures", w.ActiveSites[i].Name, n)
		}
	}
	// Re-used templates produced records in more than one disjoint time
	// span — the re-arrival was a fresh session, not a resumed one.
	firstEnd := map[string]float64{}
	reused := false
	for _, r := range res.Records {
		if end, ok := firstEnd[r.User]; ok && r.StartSec > end {
			reused = true
		}
		if r.EndSec > firstEnd[r.User] {
			firstEnd[r.User] = r.EndSec
		}
	}
	if !reused {
		t.Fatal("no template produced two time-disjoint sessions")
	}
}

// TestOpenLoopSelectionSpreadsLoad: under pinned selection the Zipf head
// concentrates plays on home sites; round-robin and least-loaded must
// spread them across more servers.
func TestOpenLoopSelectionSpreadsLoad(t *testing.T) {
	servers := func(sel string) map[string]int {
		opt := Options{Seed: 7, MaxUsers: 12, ClipCap: 2, Workload: "poisson", Arrivals: 30, Selection: sel}
		res, err := Run(opt)
		if err != nil {
			t.Fatalf("%s: %v", sel, err)
		}
		out := map[string]int{}
		for _, r := range res.Records {
			if !r.Unavailable && !r.Failed {
				out[r.Server]++
			}
		}
		return out
	}
	pinned := servers("pinned")
	rr := servers("roundrobin")
	if len(rr) <= len(pinned) {
		t.Fatalf("roundrobin used %d servers, pinned %d; rotation did not spread load", len(rr), len(pinned))
	}
}

// TestOptionValidation: negative or contradictory options error out of
// NewWorld instead of building empty or nonsense worlds.
func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
	}{
		{"negative MaxUsers", Options{Seed: 1, MaxUsers: -5}},
		{"negative ClipCap", Options{Seed: 1, ClipCap: -1}},
		{"negative Arrivals", Options{Seed: 1, Workload: "poisson", Arrivals: -3}},
		{"negative DynamicsIntensity", Options{Seed: 1, Dynamics: "outage", DynamicsIntensity: -1}},
		{"negative WorkloadIntensity", Options{Seed: 1, Workload: "poisson", WorkloadIntensity: -2}},
		{"negative CongestionScale", Options{Seed: 1, CongestionScale: -1}},
		{"selection without workload", Options{Seed: 1, Selection: "rtt"}},
		{"workload intensity without workload", Options{Seed: 1, WorkloadIntensity: 2}},
		{"unknown workload", Options{Seed: 1, Workload: "tsunami"}},
		{"unknown selection", Options{Seed: 1, Workload: "poisson", Selection: "psychic"}},
		{"unknown dynamics", Options{Seed: 1, Dynamics: "asteroid"}},
	}
	for _, c := range cases {
		if _, err := NewWorld(c.opt); err == nil {
			t.Errorf("%s: NewWorld accepted %+v", c.name, c.opt)
		}
	}
	// The panel alias is not an error, with or without the explicit name.
	for _, name := range []string{"", "panel"} {
		if _, err := NewWorld(Options{Seed: 1, MaxUsers: 2, ClipCap: 1, Workload: name}); err != nil {
			t.Errorf("workload %q rejected: %v", name, err)
		}
	}
}

// TestPanelIgnoresWorkloadKnobs: the "panel" workload name is the classic
// closed loop — same records as a zero-value Options run.
func TestPanelIgnoresWorkloadKnobs(t *testing.T) {
	a, err := Run(Options{Seed: 3, MaxUsers: 3, ClipCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Options{Seed: 3, MaxUsers: 3, ClipCap: 2, Workload: "panel"})
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	if err := trace.WriteCSV(&ba, a.Records); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCSV(&bb, b.Records); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("panel-by-name differs from the default closed loop")
	}
}

// TestOpenLoopArrivalRateObserved: the realized arrival train lands within
// tolerance of the calibrated rate once embedded in a full world — the
// end-to-end check behind the pure-process tests in internal/workload.
func TestOpenLoopArrivalRateObserved(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-session study")
	}
	opt := Options{Seed: 21, MaxUsers: 60, ClipCap: 1, Workload: "poisson", Arrivals: 300}
	w, err := NewWorld(opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	// rate = 0.4·pool / (1 clip · (PlayFor + 8s)) sessions/sec.
	wantRate := 0.4 * 60 / (68.0)
	// The last session's tail extends past the final arrival; bound the
	// comparison by the arrival span instead of the full run.
	var lastStart float64
	for _, r := range res.Records {
		if r.StartSec > lastStart {
			lastStart = r.StartSec
		}
	}
	gotRate := float64(res.Sessions+res.Balked) / lastStart
	if gotRate < 0.7*wantRate || gotRate > 1.4*wantRate {
		t.Fatalf("observed arrival rate %.3f/s, want ≈%.3f/s", gotRate, wantRate)
	}
}
