// Sharded world construction and execution: Options.Shards > 0 partitions
// one world's hosts across N netsim.Fabric shards and runs them in
// parallel under conservative-lookahead windows. The contract is the
// fabric's: for a fixed seed, the merged record stream is byte-identical
// for every shard count N >= 1.
//
// The study layer's own contribution to that contract is the arrival-cell
// partition. Users are grouped into cells — country blocks of at most
// cellBlockSize templates — BEFORE any shard assignment, so the cell set,
// each cell's spec (the full arrival process Poisson-split by member
// share), its RNG stream and its arrival budget are all independent of N.
// Changing N only re-packs whole cells onto shards; nothing a cell draws,
// schedules or observes moves. Records are buffered per shard and merged
// in (EndSec, StartSec, User, ClipURL) order after the run.
package study

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"realtracer/internal/detrand"
	"realtracer/internal/geo"
	"realtracer/internal/netsim"
	"realtracer/internal/server"
	"realtracer/internal/trace"
	"realtracer/internal/workload"
)

// cellBlockSize caps an arrival cell's template count. Small cells exist
// purely for load balance: the US holds 38 of 63 templates, and splitting
// its block lets the packer spread the dominant country across shards.
const cellBlockSize = 8

// buildSharded is NewWorld's Shards > 0 tail: fabric up, hosts interned
// into their owning shards, interning frozen, servers started on their
// shards, per-shard factories and sinks built, and every cell's first
// arrival scheduled.
func (w *World) buildSharded(routes *geo.RouteTable, masterRNG *rand.Rand) error {
	opt := w.Options
	w.fab = netsim.NewFabric(opt.Shards, routes, opt.Seed+3)
	w.Net = w.fab.Net(0)
	w.Clock = w.fab.Clock(0)

	plans, err := w.planServers(masterRNG)
	if err != nil {
		return err
	}

	spec, polName, seed, err := w.resolveWorkloadSpec()
	if err != nil {
		return err
	}
	cells := w.buildCells(spec, polName, seed)
	assignShards(cells, opt.Shards)
	w.open = &openLoop{cells: cells}

	// Intern every template host up front, in population order, so HostIDs
	// are independent of both the partition and the arrival order.
	cellOf := make([]int, len(w.Users))
	for ci, c := range cells {
		for _, ui := range c.members {
			cellOf[ui] = ci
		}
	}
	for i, u := range w.Users {
		w.fab.Intern(cells[cellOf[i]].shard, u.Name)
	}

	w.fab.Freeze(geo.MinOneWayDelay())

	// Dynamics install after Freeze: exact patterns compile against the
	// frozen name table, and the compiled schedule is shared read-only
	// across the shards (each shard advances chain state only for paths it
	// owns; draws come from the per-path streams).
	if opt.Dynamics != "" {
		spec, err := buildDynamics(opt, w.Sites)
		if err != nil {
			return err
		}
		dseed := opt.DynamicsSeed
		if dseed == 0 {
			dseed = opt.Seed + 4
		}
		w.fab.SetDynamics(spec, dseed)
	}

	if err := w.startServers(plans); err != nil {
		return err
	}
	if opt.Selection == "leastloaded" {
		w.startLoadGossip()
	}

	w.shardSinks = make([]*trace.Collector, opt.Shards)
	w.factories = make([]*SessionFactory, opt.Shards)
	for s := 0; s < opt.Shards; s++ {
		w.shardSinks[s] = &trace.Collector{}
		w.factories[s] = &SessionFactory{
			w:           w,
			clock:       w.fab.Clock(s),
			net:         w.fab.Net(s),
			sink:        w.shardSinks[s],
			dynLabel:    opt.DynamicsLabel(),
			policyLabel: opt.PolicyLabel(),
		}
	}
	for _, c := range cells {
		c.scheduleArrival()
	}
	return nil
}

// buildCells partitions the template pool into arrival cells: users
// grouped by country in first-appearance order, countries split into
// blocks of at most cellBlockSize. Each cell runs a Poisson split of the
// full arrival process (rate scaled by member share, so superposing the
// cells reproduces the aggregate intensity), its own RNG stream derived
// from the workload seed and the cell ordinal, its own selection-policy
// instance, and a largest-remainder share of the arrival budget. None of
// this depends on the shard count.
func (w *World) buildCells(spec workload.Spec, polName string, seed int64) []*arrivalCell {
	groups := make(map[string][]int)
	var order []string
	for i, u := range w.Users {
		if _, ok := groups[u.Country]; !ok {
			order = append(order, u.Country)
		}
		groups[u.Country] = append(groups[u.Country], i)
	}
	var memberSets [][]int
	for _, country := range order {
		m := groups[country]
		for len(m) > cellBlockSize {
			memberSets = append(memberSets, m[:cellBlockSize])
			m = m[cellBlockSize:]
		}
		memberSets = append(memberSets, m)
	}

	pool := len(w.Users)
	budgets := apportionArrivals(w.Options.Arrivals, memberSets, pool)
	cells := make([]*arrivalCell, 0, len(memberSets))
	for ci, members := range memberSets {
		cells = append(cells, &arrivalCell{
			w:            w,
			ord:          ci,
			spec:         spec.Scaled(float64(len(members)) / float64(pool)),
			policy:       policyInstance(polName),
			rng:          detrand.New(seed + 100003*int64(ci+1)),
			arrivalsLeft: budgets[ci],
			members:      members,
			busy:         make([]bool, len(members)),
			bundles:      make([]*sessionBundle, len(members)),
		})
	}
	return cells
}

// apportionArrivals divides the arrival budget across cells in proportion
// to their member counts by largest remainder, so the total is exact and
// every cell's share is independent of everything but the (N-invariant)
// cell partition itself.
func apportionArrivals(total int, memberSets [][]int, pool int) []int {
	out := make([]int, len(memberSets))
	type rem struct {
		i    int
		frac float64
	}
	rems := make([]rem, len(memberSets))
	assigned := 0
	for i, m := range memberSets {
		exact := float64(total) * float64(len(m)) / float64(pool)
		out[i] = int(math.Floor(exact))
		assigned += out[i]
		rems[i] = rem{i: i, frac: exact - math.Floor(exact)}
	}
	// Largest remainder's invariant: the floors under-shoot the total by
	// strictly less than one per cell (each remainder is in [0,1)), so the
	// shortfall fits in one +1 pass over the remainder ranking. A shortfall
	// outside [0, len(rems)) means the proportional arithmetic itself broke
	// — wrapping around the ranking would silently misapportion, so fail
	// loudly with the evidence instead.
	if short := total - assigned; short < 0 || short > len(rems) {
		panic(fmt.Sprintf("study: apportionArrivals shortfall %d outside [0,%d] (total %d, assigned %d, pool %d)",
			short, len(rems), total, assigned, pool))
	}
	sort.SliceStable(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for k := 0; k < total-assigned; k++ {
		out[rems[k].i]++
	}
	return out
}

// assignShards packs whole cells onto shards: greedy least-loaded by
// template count, visiting cells largest-first (ties in cell order). The
// packing balances work but cannot change results — a cell behaves
// identically on every shard.
func assignShards(cells []*arrivalCell, shards int) {
	idx := make([]int, len(cells))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return len(cells[idx[a]].members) > len(cells[idx[b]].members)
	})
	load := make([]int, shards)
	for _, ci := range idx {
		best := 0
		for s := 1; s < shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		cells[ci].shard = best
		load[best] += len(cells[ci].members)
	}
}

// dropArm posts a departed client's server-side teardown to the server's
// shard (see arrivalCell.endSession).
type dropArm struct {
	srv  *server.Server
	name string
}

func (d *dropArm) Fire(time.Duration) { d.srv.DropClient(d.name) }

// mergeShardRecords sorts the concatenated per-shard record streams into
// the partition-invariant output order: the observable keys first, then the
// session's arrival ordinal as a total-order tiebreak. The ordinal matters
// when two records agree on every observable key — one user's back-to-back
// sessions of the same clip, bracketed to coarse identical timestamps, do
// exactly that. Without it the tie falls back to concatenation order, which
// is per-shard collection order — the one thing that changes with the shard
// count.
func mergeShardRecords(all []*trace.Record) {
	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.EndSec != b.EndSec {
			return a.EndSec < b.EndSec
		}
		if a.StartSec != b.StartSec {
			return a.StartSec < b.StartSec
		}
		if a.User != b.User {
			return a.User < b.User
		}
		if a.ClipURL != b.ClipURL {
			return a.ClipURL < b.ClipURL
		}
		return a.Ordinal < b.Ordinal
	})
}

// runSharded drives the fabric's window protocol until the arrival budget
// is spent and the last session has departed, then merges the per-shard
// record streams into the world sink in a partition-invariant order.
func (w *World) runSharded() (*Result, error) {
	o := w.open
	// stop runs on the control goroutine between windows, with every
	// shard quiescent behind the barrier — the cell counters are stable
	// and the check happens at the same (partition-invariant) window
	// boundaries for every shard count.
	w.fab.Run(func() bool { return o.pending() == 0 && o.activeN() == 0 })
	if o.pending() != 0 || o.activeN() != 0 {
		return nil, fmt.Errorf("study: open-loop run stalled with %d arrivals pending, %d sessions active",
			o.pending(), o.activeN())
	}

	var all []*trace.Record
	for _, c := range w.shardSinks {
		all = append(all, c.Records()...)
	}
	mergeShardRecords(all)
	for _, rec := range all {
		w.sink.Observe(rec)
	}

	var sim time.Duration
	for i := 0; i < w.fab.NumShards(); i++ {
		if t := w.fab.Clock(i).Now(); t > sim {
			sim = t
		}
	}
	res := &Result{
		Users:       w.Users,
		Sites:       w.Sites,
		SimDuration: sim,
		Events:      w.fab.Fired(),
		Sessions:    o.sessionsN(),
		Balked:      o.balkedN(),
		Departed:    o.departedN(),
	}
	if w.collector != nil {
		res.Records = w.collector.Records()
	}
	return res, nil
}
