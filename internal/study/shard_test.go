package study

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"

	"realtracer/internal/trace"
)

// shardOpts is the open-loop study the sharding tests share: a pool large
// enough to split into several arrival cells across several countries,
// driven hard enough that sessions overlap, balk and abandon.
func shardOpts(shards int) Options {
	return Options{
		Seed:              17,
		MaxUsers:          24,
		ClipCap:           2,
		Workload:          "poisson",
		Arrivals:          60,
		WorkloadIntensity: 2,
		Shards:            shards,
	}
}

func runCSV(t *testing.T, opt Options) (*Result, []byte) {
	t.Helper()
	res, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, res.Records); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestShardEquivalence is the sharding tentpole's contract: for a fixed
// seed the record stream is byte-identical for every shard count, and
// repeat runs at the same count are byte-identical too. CI runs this test
// under -race, which also makes it the shard-isolation fence: any state
// two shards both touch outside the fabric's barriers is a reported race.
//
// The arms walk the compatibility matrix: the base open-loop engine, the
// dynamics layer (shared read-only schedule, per-path chain state and
// draws), and least-loaded selection (gossip-delayed load views). Each arm
// holds shards 1/2/4 byte-identical among themselves — never against the
// classic engine, whose event interleaving legitimately differs.
func TestShardEquivalence(t *testing.T) {
	arms := []struct {
		name string
		prep func(*Options)
	}{
		{"base", func(*Options) {}},
		{"dynamics", func(o *Options) { o.Dynamics = "lossburst"; o.DynamicsIntensity = 1 }},
		{"leastloaded", func(o *Options) { o.Selection = "leastloaded" }},
	}
	for _, arm := range arms {
		t.Run(arm.name, func(t *testing.T) {
			opts := func(shards int) Options {
				o := shardOpts(shards)
				arm.prep(&o)
				return o
			}
			base, baseCSV := runCSV(t, opts(1))
			if base.Sessions <= 0 || len(base.Records) == 0 {
				t.Fatalf("degenerate baseline: %d sessions, %d records", base.Sessions, len(base.Records))
			}
			if base.Departed == 0 {
				t.Fatal("baseline saw no mid-stream departures; the cross-shard teardown path went untested")
			}
			for _, shards := range []int{2, 4} {
				res, csv := runCSV(t, opts(shards))
				if !bytes.Equal(csv, baseCSV) {
					t.Errorf("shards=%d records differ from shards=1 (%d vs %d records)",
						shards, len(res.Records), len(base.Records))
				}
				if res.Sessions != base.Sessions || res.Balked != base.Balked || res.Departed != base.Departed {
					t.Errorf("shards=%d accounting (%d/%d/%d) differs from shards=1 (%d/%d/%d)",
						shards, res.Sessions, res.Balked, res.Departed,
						base.Sessions, base.Balked, base.Departed)
				}
			}
			_, againCSV := runCSV(t, opts(2))
			if !bytes.Equal(againCSV, baseCSV) {
				t.Error("repeat shards=2 run is not deterministic")
			}
		})
	}
}

// TestShardedLeastLoadedGossipBites proves the load gossip actually feeds
// selections. With every load equal, LeastLoaded.Pick degenerates exactly
// to NearestRTT.Pick (load ties all break on RTT) — so if the gossiped
// views never carried a differentiating value, the two policies would
// produce byte-identical runs and the leastloaded equivalence arm would be
// vacuously green.
func TestShardedLeastLoadedGossipBites(t *testing.T) {
	ll := shardOpts(2)
	ll.Selection = "leastloaded"
	rtt := shardOpts(2)
	rtt.Selection = "rtt"
	_, llCSV := runCSV(t, ll)
	_, rttCSV := runCSV(t, rtt)
	if bytes.Equal(llCSV, rttCSV) {
		t.Fatal("leastloaded run is byte-identical to rtt: gossiped load views never changed a pick")
	}
}

// TestShardedWorldRuns exercises a sharded world at a population size where
// every shard owns several cells and cross-shard traffic dominates, and
// checks the run completes with sane accounting — the smoke test ahead of
// the byte-level contract above.
func TestShardedWorldRuns(t *testing.T) {
	opt := Options{Seed: 5, ClipCap: 1, Workload: "poisson", Arrivals: 80, Shards: 3}
	res, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions+res.Balked != 80 {
		t.Fatalf("sessions %d + balked %d != 80 arrivals", res.Sessions, res.Balked)
	}
	if len(res.Records) == 0 {
		t.Fatal("sharded run produced no records")
	}
	if res.SimDuration <= 0 || res.Events == 0 {
		t.Fatalf("degenerate run: duration %v, %d events", res.SimDuration, res.Events)
	}
}

// TestShardOptionValidation pins the compatibility matrix: sharding is an
// open-loop engine, and everything the open-loop engine runs now shards —
// including the dynamics layer and every selection policy, which earlier
// revisions refused.
func TestShardOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
	}{
		{"negative", Options{Seed: 1, Shards: -1}},
		{"panel", Options{Seed: 1, Shards: 2}},
	}
	for _, tc := range cases {
		if _, err := NewWorld(tc.opt); err == nil {
			t.Errorf("%s: NewWorld accepted %+v, want error", tc.name, tc.opt)
		}
	}
	// Every selection policy shards, including the load-probing one
	// (served by gossip), as does the dynamics layer.
	for _, sel := range []string{"", "rtt", "roundrobin", "leastloaded"} {
		opt := shardOpts(2)
		opt.Selection = sel
		if _, err := NewWorld(opt); err != nil {
			t.Errorf("Selection %q: %v", sel, err)
		}
	}
	dyn := shardOpts(2)
	dyn.Dynamics = "outage"
	if _, err := NewWorld(dyn); err != nil {
		t.Errorf("Dynamics %q: %v", dyn.Dynamics, err)
	}
}

// TestMergeShardRecordsTiebreak pins the merge's total order: records that
// collide on every observable sort key (end, start, user, clip) must come
// out in arrival-ordinal order regardless of the concatenation order they
// went in with. Concatenation order is per-shard collection order — the one
// thing that changes with the shard count — so without the ordinal tiebreak
// a duplicate-key collision would break byte-equivalence across N.
func TestMergeShardRecordsTiebreak(t *testing.T) {
	mk := func(ord int64) *trace.Record {
		return &trace.Record{
			User: "user-7", ClipURL: "rtsp://s1.example.com/clip-3.rm",
			StartSec: 12, EndSec: 40, Ordinal: ord,
		}
	}
	// A distinct-key record on each side of the duplicates, to check the
	// observable keys still dominate.
	early := &trace.Record{User: "user-1", ClipURL: "a", StartSec: 1, EndSec: 30, Ordinal: 9}
	late := &trace.Record{User: "user-1", ClipURL: "a", StartSec: 1, EndSec: 50, Ordinal: 0}
	dups := []*trace.Record{mk(3), mk(1 << 32), mk(2), mk(1<<32 | 1)}

	perms := [][]*trace.Record{
		{late, dups[0], dups[1], early, dups[2], dups[3]},
		{dups[3], dups[2], dups[1], dups[0], late, early},
		{dups[1], early, dups[3], late, dups[0], dups[2]},
	}
	var want []int64
	for pi, perm := range perms {
		merged := append([]*trace.Record(nil), perm...)
		mergeShardRecords(merged)
		if merged[0] != early || merged[len(merged)-1] != late {
			t.Fatalf("perm %d: observable keys no longer dominate the sort", pi)
		}
		var ords []int64
		for _, r := range merged[1 : len(merged)-1] {
			ords = append(ords, r.Ordinal)
		}
		for i := 1; i < len(ords); i++ {
			if ords[i-1] >= ords[i] {
				t.Fatalf("perm %d: duplicate-key records not in ordinal order: %v", pi, ords)
			}
		}
		if pi == 0 {
			want = ords
		} else if !equalInt64s(ords, want) {
			t.Fatalf("perm %d merged to %v, perm 0 to %v — merge order depends on input order", pi, ords, want)
		}
	}
}

func equalInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestApportionArrivalsProperty drives the largest-remainder apportionment
// across a sweep of budgets and partition shapes and checks its invariants:
// the shares sum exactly to the budget, and every share is within one of
// the exact proportional entitlement. A previous implementation wrapped a
// too-large shortfall around the remainder ranking with k%len — silently
// double-crediting cells instead of surfacing the broken arithmetic the
// shortfall would have implied; apportionArrivals now panics on any
// shortfall the floors cannot explain.
func TestApportionArrivalsProperty(t *testing.T) {
	shapes := [][]int{
		{8},
		{8, 8, 8},
		{1, 2, 3, 4, 5},
		{5, 1, 1, 1},
		{3, 3, 2},
		{1, 1, 1, 1, 1, 1, 1},
	}
	for _, shape := range shapes {
		pool := 0
		var memberSets [][]int
		for _, n := range shape {
			members := make([]int, n)
			for i := range members {
				members[i] = pool + i
			}
			memberSets = append(memberSets, members)
			pool += n
		}
		for _, total := range []int{0, 1, 7, 60, 61, 997, 5000} {
			out := apportionArrivals(total, memberSets, pool)
			sum := 0
			for i, got := range out {
				sum += got
				exact := float64(total) * float64(len(memberSets[i])) / float64(pool)
				if d := float64(got) - exact; d < -1 || d > 1 {
					t.Errorf("shape %v total %d: cell %d got %d, exact share %.3f (off by %.3f)",
						shape, total, i, got, exact, d)
				}
			}
			if sum != total {
				t.Errorf("shape %v total %d: shares sum to %d", shape, total, sum)
			}
		}
	}
}

// TestReplaceHostPanicsWithoutPort pins the replaceHost contract: a control
// address with no port is a study-layer bug, and silently returning the
// bare replacement host used to hide it (the session would then dial a
// portless address and hang in dial failure).
func TestReplaceHostPanicsWithoutPort(t *testing.T) {
	if got := replaceHost("a.example.com:554", "b.example.com"); got != "b.example.com:554" {
		t.Fatalf("replaceHost = %q, want b.example.com:554", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("replaceHost accepted a portless address")
		}
	}()
	replaceHost("a.example.com", "b.example.com")
}

// TestShardedWorkloadSpeedup is the parallelism payoff fence: on a
// multi-core host, a sharded open-loop run must finish at least 2x faster
// (records per wall second) than the identical single-shard run. Skipped
// below 4 cores — the container lanes that run tier-1 tests on one core
// cannot observe a speedup.
func TestShardedWorkloadSpeedup(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for a speedup measurement, have %d", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("speedup measurement is a long test")
	}
	opt := Options{Seed: 3, ClipCap: 2, Workload: "poisson", Arrivals: 1000, MaxUsers: 256}
	rate := func(shards int) (float64, int) {
		o := opt
		o.Shards = shards
		start := time.Now()
		res, err := Run(o)
		if err != nil {
			t.Fatal(err)
		}
		return float64(len(res.Records)) / time.Since(start).Seconds(), len(res.Records)
	}
	base, n1 := rate(1)
	par, n4 := rate(4)
	if n1 != n4 {
		t.Fatalf("record counts diverged: shards=1 %d, shards=4 %d", n1, n4)
	}
	speedup := par / base
	t.Logf("shards=1: %.0f rec/s; shards=4: %.0f rec/s; speedup %.2fx (%d records)", base, par, speedup, n1)
	if speedup < 2 {
		t.Errorf("shards=4 speedup %.2fx, want >= 2x", speedup)
	}
}

var _ = fmt.Sprintf // keep fmt for debug scaffolding in this file
