package study

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"

	"realtracer/internal/trace"
)

// shardOpts is the open-loop study the sharding tests share: a pool large
// enough to split into several arrival cells across several countries,
// driven hard enough that sessions overlap, balk and abandon.
func shardOpts(shards int) Options {
	return Options{
		Seed:              17,
		MaxUsers:          24,
		ClipCap:           2,
		Workload:          "poisson",
		Arrivals:          60,
		WorkloadIntensity: 2,
		Shards:            shards,
	}
}

func runCSV(t *testing.T, opt Options) (*Result, []byte) {
	t.Helper()
	res, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, res.Records); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestShardEquivalence is the sharding tentpole's contract: for a fixed
// seed the record stream is byte-identical for every shard count, and
// repeat runs at the same count are byte-identical too. CI runs this test
// under -race, which also makes it the shard-isolation fence: any state
// two shards both touch outside the fabric's barriers is a reported race.
func TestShardEquivalence(t *testing.T) {
	base, baseCSV := runCSV(t, shardOpts(1))
	if base.Sessions <= 0 || len(base.Records) == 0 {
		t.Fatalf("degenerate baseline: %d sessions, %d records", base.Sessions, len(base.Records))
	}
	if base.Departed == 0 {
		t.Fatal("baseline saw no mid-stream departures; the cross-shard teardown path went untested")
	}
	for _, shards := range []int{2, 4} {
		res, csv := runCSV(t, shardOpts(shards))
		if !bytes.Equal(csv, baseCSV) {
			t.Errorf("shards=%d records differ from shards=1 (%d vs %d records)",
				shards, len(res.Records), len(base.Records))
		}
		if res.Sessions != base.Sessions || res.Balked != base.Balked || res.Departed != base.Departed {
			t.Errorf("shards=%d accounting (%d/%d/%d) differs from shards=1 (%d/%d/%d)",
				shards, res.Sessions, res.Balked, res.Departed,
				base.Sessions, base.Balked, base.Departed)
		}
	}
	again, againCSV := runCSV(t, shardOpts(2))
	if !bytes.Equal(againCSV, baseCSV) {
		t.Error("repeat shards=2 run is not deterministic")
	}
	_ = again
}

// TestShardedWorldRuns exercises a sharded world at a population size where
// every shard owns several cells and cross-shard traffic dominates, and
// checks the run completes with sane accounting — the smoke test ahead of
// the byte-level contract above.
func TestShardedWorldRuns(t *testing.T) {
	opt := Options{Seed: 5, ClipCap: 1, Workload: "poisson", Arrivals: 80, Shards: 3}
	res, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions+res.Balked != 80 {
		t.Fatalf("sessions %d + balked %d != 80 arrivals", res.Sessions, res.Balked)
	}
	if len(res.Records) == 0 {
		t.Fatal("sharded run produced no records")
	}
	if res.SimDuration <= 0 || res.Events == 0 {
		t.Fatalf("degenerate run: duration %v, %d events", res.SimDuration, res.Events)
	}
}

// TestShardOptionValidation pins the compatibility matrix: sharding is an
// open-loop engine and refuses configurations whose semantics would need
// cross-shard reads or global mutation.
func TestShardOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
	}{
		{"negative", Options{Seed: 1, Shards: -1}},
		{"panel", Options{Seed: 1, Shards: 2}},
		{"dynamics", Options{Seed: 1, Shards: 2, Workload: "poisson", Dynamics: "outage"}},
		{"leastloaded", Options{Seed: 1, Shards: 2, Workload: "poisson", Selection: "leastloaded"}},
	}
	for _, tc := range cases {
		if _, err := NewWorld(tc.opt); err == nil {
			t.Errorf("%s: NewWorld accepted %+v, want error", tc.name, tc.opt)
		}
	}
	// The policies that do not probe live load shard fine.
	for _, sel := range []string{"", "rtt", "roundrobin"} {
		opt := shardOpts(2)
		opt.Selection = sel
		if _, err := NewWorld(opt); err != nil {
			t.Errorf("Selection %q: %v", sel, err)
		}
	}
}

// TestReplaceHostPanicsWithoutPort pins the replaceHost contract: a control
// address with no port is a study-layer bug, and silently returning the
// bare replacement host used to hide it (the session would then dial a
// portless address and hang in dial failure).
func TestReplaceHostPanicsWithoutPort(t *testing.T) {
	if got := replaceHost("a.example.com:554", "b.example.com"); got != "b.example.com:554" {
		t.Fatalf("replaceHost = %q, want b.example.com:554", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("replaceHost accepted a portless address")
		}
	}()
	replaceHost("a.example.com", "b.example.com")
}

// TestShardedWorkloadSpeedup is the parallelism payoff fence: on a
// multi-core host, a sharded open-loop run must finish at least 2x faster
// (records per wall second) than the identical single-shard run. Skipped
// below 4 cores — the container lanes that run tier-1 tests on one core
// cannot observe a speedup.
func TestShardedWorkloadSpeedup(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for a speedup measurement, have %d", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("speedup measurement is a long test")
	}
	opt := Options{Seed: 3, ClipCap: 2, Workload: "poisson", Arrivals: 1000, MaxUsers: 256}
	rate := func(shards int) (float64, int) {
		o := opt
		o.Shards = shards
		start := time.Now()
		res, err := Run(o)
		if err != nil {
			t.Fatal(err)
		}
		return float64(len(res.Records)) / time.Since(start).Seconds(), len(res.Records)
	}
	base, n1 := rate(1)
	par, n4 := rate(4)
	if n1 != n4 {
		t.Fatalf("record counts diverged: shards=1 %d, shards=4 %d", n1, n4)
	}
	speedup := par / base
	t.Logf("shards=1: %.0f rec/s; shards=4: %.0f rec/s; speedup %.2fx (%d records)", base, par, speedup, n1)
	if speedup < 2 {
		t.Errorf("shards=4 speedup %.2fx, want >= 2x", speedup)
	}
}

var _ = fmt.Sprintf // keep fmt for debug scaffolding in this file
