package study

import (
	"bytes"
	"testing"

	"realtracer/internal/trace"
)

// TestRunStreamMatchesRun pins the sink refactor's compatibility contract:
// streaming through a Collector sink must reproduce study.Run's records
// byte-for-byte, in the same order.
func TestRunStreamMatchesRun(t *testing.T) {
	opt := Options{Seed: 17, MaxUsers: 5, ClipCap: 4}
	batch, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	var col trace.Collector
	streamed, err := RunStream(opt, &col)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Records != nil {
		t.Fatal("RunStream should not retain records in the Result")
	}
	if streamed.Events != batch.Events || streamed.SimDuration != batch.SimDuration {
		t.Fatalf("stream run diverged: events %d vs %d", streamed.Events, batch.Events)
	}
	var a, b bytes.Buffer
	if err := trace.WriteCSV(&a, batch.Records); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCSV(&b, col.Records()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("streamed records differ from batch records")
	}
}

// TestRunStreamBoundedMemory: with a counting sink no record survives the
// run — the Result must not hold them anywhere.
func TestRunStreamCountsOnly(t *testing.T) {
	n := 0
	res, err := RunStream(Options{Seed: 17, MaxUsers: 3, ClipCap: 3},
		trace.SinkFunc(func(*trace.Record) { n++ }))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("sink observed no records")
	}
	if res.Records != nil {
		t.Fatal("Result retained records despite streaming sink")
	}
}

// TestWorldExpandsPopulation: MaxUsers beyond the paper's 63 builds a
// proportionally scaled population instead of truncating.
func TestWorldExpandsPopulation(t *testing.T) {
	w, err := NewWorld(Options{Seed: 1, MaxUsers: 80, ClipCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Users) != 80 {
		t.Fatalf("users=%d want 80", len(w.Users))
	}
	seen := map[string]bool{}
	for _, u := range w.Users {
		if seen[u.Name] {
			t.Fatalf("duplicate user %s in expanded population", u.Name)
		}
		seen[u.Name] = true
	}
	res, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) < 80 {
		t.Fatalf("expanded population produced only %d records", len(res.Records))
	}
}
