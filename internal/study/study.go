// Package study orchestrates the full measurement campaign: it builds the
// June-2001 world (11 RealServers in 8 countries, 63 users in 12 countries,
// the wide-area network between them), runs every user's RealTracer session
// over the discrete-event simulator, and returns the per-clip records that
// the figures are computed from.
//
// One seed reproduces one complete study; the default options reproduce the
// paper's dataset in shape (≈2855 clips played, ≈388 rated).
package study

import (
	"fmt"
	"math/rand"
	"time"

	"realtracer/internal/geo"
	"realtracer/internal/media"
	"realtracer/internal/ratecontrol"
	"realtracer/internal/trace"
	"realtracer/internal/workload"
)

// Options configure a study run. The zero value (plus a seed) reproduces
// the paper's setup; the remaining knobs drive the ablation benches.
type Options struct {
	Seed int64
	// MaxUsers truncates the population for quick tests (0 = all 63).
	MaxUsers int
	// ClipCap truncates each user's playlist progress (0 = the user's own
	// draw). Useful to shrink test runs.
	ClipCap int
	// PlayFor is the per-clip playout length (default 1 minute).
	PlayFor time.Duration
	// DisableSureStream, DisableFEC, Preroll and Controller are ablation
	// knobs for the DESIGN.md experiments.
	DisableSureStream bool
	DisableFEC        bool
	Preroll           time.Duration
	// Controller selects the UDP rate controller: "" or "tfrc", "aimd",
	// "unresponsive".
	Controller string
	// CongestionScale scales wide-area cross traffic (1 = calibrated).
	CongestionScale float64
	// Dynamics names a network-dynamics profile from the catalog in
	// dynamics.go ("outage", "flashcrowd", "lossburst", "diurnal",
	// "routeflap"); "" keeps the classic static Internet, byte-identical to
	// a build without the dynamics layer.
	Dynamics string
	// DynamicsIntensity scales the profile (0 = the calibrated 1x).
	DynamicsIntensity float64
	// DynamicsSeed drives the profile's own randomness (loss-burst chains);
	// 0 derives Seed+4. The campaign engine derives an explicit per-scenario
	// value so campaign results are independent of worker count.
	DynamicsSeed int64
	// Workload names an arrival-process profile from the open-loop
	// catalog (internal/workload: "poisson", "diurnal", "flashcrowd").
	// "" or "panel" keeps the paper's closed-loop panel — every user
	// pre-scheduled at build time — byte-identical to a build without the
	// workload layer. Any other profile switches the world to open-loop
	// mode: sessions arrive over time, draw clips by Zipf popularity,
	// attach their host on arrival and remove it on departure.
	Workload string
	// WorkloadIntensity scales the arrival rate (0 = the calibrated 1x,
	// which targets ~40% steady-state occupancy of the template pool).
	WorkloadIntensity float64
	// WorkloadSeed drives the arrival, popularity and abandonment draws;
	// 0 derives Seed+5. The campaign engine derives an explicit
	// per-scenario value so open-loop campaign records are independent of
	// worker count.
	WorkloadSeed int64
	// Arrivals bounds an open-loop run: how many sessions the workload
	// generator admits in total (0 = twice the template pool).
	Arrivals int
	// Selection names the server-selection policy for open-loop runs:
	// "pinned" (paper-faithful home site, the default), "rtt",
	// "roundrobin" or "leastloaded". Setting it on a closed-loop run is
	// an error — the panel always plays from the home site.
	Selection string
	// Shards splits the world across that many cores: hosts are partitioned
	// into per-shard clocks and event heaps synchronized with conservative
	// lookahead (netsim.Fabric). 0 keeps the classic single-threaded engine.
	// Sharding requires an open-loop Workload and composes with every
	// Dynamics profile (one compiled schedule shared read-only across the
	// shards) and every Selection policy ("leastloaded" reads
	// lookahead-delayed load gossip instead of live counters). For a fixed
	// seed the output is byte-identical for every Shards >= 1.
	Shards int
	// StaggerWindow spreads user start times (default 90 minutes). Overlap
	// creates shared-bottleneck load at servers.
	StaggerWindow time.Duration
	// ServerUplinkKbps overrides the server access capacity (default 8000,
	// the shared multi-T1/fractional-T3 uplink the figures were calibrated
	// against).
	ServerUplinkKbps float64
}

func (o *Options) fill() {
	if o.PlayFor <= 0 {
		o.PlayFor = time.Minute
	}
	if o.CongestionScale == 0 {
		o.CongestionScale = 1
	}
	if o.StaggerWindow <= 0 {
		o.StaggerWindow = 90 * time.Minute
	}
	if o.ServerUplinkKbps <= 0 {
		o.ServerUplinkKbps = 8000
	}
	if o.OpenLoop() && o.Arrivals == 0 {
		pool := o.MaxUsers
		if pool <= 0 {
			pool = geo.PopulationSize
		}
		o.Arrivals = 2 * pool
	}
}

// OpenLoop reports whether the options select the open-loop session
// engine. "" and "panel" are both the classic closed-loop panel.
func (o Options) OpenLoop() bool {
	return o.Workload != "" && o.Workload != workload.PanelName
}

// PolicyLabel is the server-selection label stamped on the run's records:
// "" for the closed-loop panel (which has no selection step), otherwise
// the policy name with "pinned" as the default.
func (o Options) PolicyLabel() string {
	if !o.OpenLoop() {
		return ""
	}
	if o.Selection == "" {
		return workload.PinnedName
	}
	return o.Selection
}

// validate rejects options that would silently build an empty or nonsense
// world. It runs before fill, so zero values (which fill resolves to
// defaults) are still fine.
func (o Options) validate() error {
	if o.MaxUsers < 0 {
		return fmt.Errorf("study: MaxUsers must be >= 0, got %d", o.MaxUsers)
	}
	if o.ClipCap < 0 {
		return fmt.Errorf("study: ClipCap must be >= 0, got %d", o.ClipCap)
	}
	if o.Arrivals < 0 {
		return fmt.Errorf("study: Arrivals must be >= 0, got %d", o.Arrivals)
	}
	if o.DynamicsIntensity < 0 {
		return fmt.Errorf("study: DynamicsIntensity must be >= 0, got %g", o.DynamicsIntensity)
	}
	if o.WorkloadIntensity < 0 {
		return fmt.Errorf("study: WorkloadIntensity must be >= 0, got %g", o.WorkloadIntensity)
	}
	if o.CongestionScale < 0 {
		return fmt.Errorf("study: CongestionScale must be >= 0, got %g", o.CongestionScale)
	}
	if o.Shards < 0 {
		return fmt.Errorf("study: Shards must be >= 0, got %d", o.Shards)
	}
	if o.Shards > 0 && !o.OpenLoop() {
		return fmt.Errorf("study: Shards %d needs an open-loop Workload; the closed panel runs single-threaded", o.Shards)
	}
	if !o.OpenLoop() {
		// Every open-loop knob is meaningless on the closed panel; accept
		// none of them silently.
		if o.Selection != "" {
			return fmt.Errorf("study: Selection %q needs an open-loop Workload; the panel always plays from the home site", o.Selection)
		}
		if o.WorkloadIntensity != 0 {
			return fmt.Errorf("study: WorkloadIntensity %g needs an open-loop Workload", o.WorkloadIntensity)
		}
		if o.Arrivals != 0 {
			return fmt.Errorf("study: Arrivals %d needs an open-loop Workload", o.Arrivals)
		}
		if o.WorkloadSeed != 0 {
			return fmt.Errorf("study: WorkloadSeed %d needs an open-loop Workload", o.WorkloadSeed)
		}
	}
	return nil
}

// Result is a completed study.
type Result struct {
	Records []*trace.Record
	Users   []*geo.User
	Sites   []geo.ServerSite
	// SimDuration is how much virtual time the campaign took.
	SimDuration time.Duration
	// Events is the simulator event count (diagnostics).
	Events uint64
	// Sessions, Balked and Departed describe an open-loop run: sessions
	// launched, arrivals turned away because every template was busy, and
	// sessions that hung up mid-stream. All zero for the closed panel.
	Sessions int
	Balked   int
	Departed int
}

// Run executes the campaign and returns its records. It is a thin wrapper
// over the World layer: build the world, drive it to completion.
func Run(opt Options) (*Result, error) {
	w, err := NewWorld(opt)
	if err != nil {
		return nil, err
	}
	return w.Run()
}

// RunStream executes the campaign streaming every record into sink as its
// clip completes, retaining nothing: the run's memory footprint is bounded
// by the sink's own state (aggregates, a file buffer) rather than the
// record count — the path that scales the study to arbitrary populations.
// The returned Result carries the run's metadata but a nil Records slice.
func RunStream(opt Options, sink trace.Sink) (*Result, error) {
	w, err := NewWorld(opt)
	if err != nil {
		return nil, err
	}
	w.SetSink(sink)
	return w.Run()
}

func controllerFactory(name string) func(float64) ratecontrol.Controller {
	lim := ratecontrol.DefaultLimits()
	switch name {
	case "", "tfrc":
		return func(start float64) ratecontrol.Controller { return ratecontrol.NewTFRC(start, 1000, lim) }
	case "aimd":
		return func(start float64) ratecontrol.Controller { return ratecontrol.NewAIMD(start, lim) }
	case "unresponsive":
		return func(start float64) ratecontrol.Controller { return &ratecontrol.Unresponsive{Kbps: start} }
	default:
		return func(start float64) ratecontrol.Controller { return ratecontrol.NewTFRC(start, 1000, lim) }
	}
}

// rater implements the perceptual-rating model of Section V.C. Users anchor
// around a personal centre ("normalization"), adjust it modestly for what
// they actually saw, and differ on criteria (video-only vs audio+video,
// subject-matter taste), which together flatten the population-level rating
// CDF to near-uniform with mean ≈ 5 while preserving the within-user
// signal the authors expected to mine later.
type rater struct {
	user *geo.User
	rng  *rand.Rand
}

func newRater(u *geo.User, rng *rand.Rand) *rater { return &rater{user: u, rng: rng} }

// rate maps a clip record to the user's 0-10 score.
func (r *rater) rate(rec *trace.Record) float64 {
	// Objective quality in roughly [-1, 1].
	q := qualityScore(rec, r.user.RatesAVTogether)
	// Subject-matter taste: some users rated content, not delivery.
	taste := r.rng.NormFloat64() * 1.2
	score := r.user.RatingAnchor + 2.2*q + taste
	// High-bandwidth sessions never rate very low (Figure 28's empty
	// lower-right corner): good delivery puts a floor under the score.
	if rec.MeasuredKbps > 250 && score < 3 {
		score = 3 + r.rng.Float64()
	}
	if score < 0 {
		score = 0
	}
	if score > 10 {
		score = 10
	}
	// Users rated whole numbers on the slider.
	return float64(int(score + 0.5))
}

// qualityScore folds frame rate, jitter and stalls into [-1, 1].
func qualityScore(rec *trace.Record, avTogether bool) float64 {
	var q float64
	switch {
	case rec.MeasuredFPS >= media.SmoothFPS:
		q += 0.8
	case rec.MeasuredFPS >= media.VeryChoppyFPS:
		q += 0.3
	case rec.MeasuredFPS >= media.MinAcceptableFPS:
		q -= 0.2
	default:
		q -= 0.8
	}
	switch {
	case rec.JitterMs <= 50:
		q += 0.3
	case rec.JitterMs >= 300:
		q -= 0.5
	}
	if rec.Rebuffers > 0 {
		q -= 0.3 * float64(rec.Rebuffers)
	}
	if avTogether {
		// Audio survives almost everything (it gets bandwidth priority), so
		// audio+video raters are systematically kinder on bad video.
		q = q*0.6 + 0.2
	}
	if q < -1 {
		q = -1
	}
	if q > 1 {
		q = 1
	}
	return q
}
