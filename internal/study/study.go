// Package study orchestrates the full measurement campaign: it builds the
// June-2001 world (11 RealServers in 8 countries, 63 users in 12 countries,
// the wide-area network between them), runs every user's RealTracer session
// over the discrete-event simulator, and returns the per-clip records that
// the figures are computed from.
//
// One seed reproduces one complete study; the default options reproduce the
// paper's dataset in shape (≈2855 clips played, ≈388 rated).
package study

import (
	"fmt"
	"math/rand"
	"time"

	"realtracer/internal/geo"
	"realtracer/internal/media"
	"realtracer/internal/netsim"
	"realtracer/internal/ratecontrol"
	"realtracer/internal/server"
	"realtracer/internal/session"
	"realtracer/internal/simclock"
	"realtracer/internal/trace"
	"realtracer/internal/tracer"
	"realtracer/internal/transport"
	"realtracer/internal/vclock"
)

// Options configure a study run. The zero value (plus a seed) reproduces
// the paper's setup; the remaining knobs drive the ablation benches.
type Options struct {
	Seed int64
	// MaxUsers truncates the population for quick tests (0 = all 63).
	MaxUsers int
	// ClipCap truncates each user's playlist progress (0 = the user's own
	// draw). Useful to shrink test runs.
	ClipCap int
	// PlayFor is the per-clip playout length (default 1 minute).
	PlayFor time.Duration
	// DisableSureStream, DisableFEC, Preroll and Controller are ablation
	// knobs for the DESIGN.md experiments.
	DisableSureStream bool
	DisableFEC        bool
	Preroll           time.Duration
	// Controller selects the UDP rate controller: "" or "tfrc", "aimd",
	// "unresponsive".
	Controller string
	// CongestionScale scales wide-area cross traffic (1 = calibrated).
	CongestionScale float64
	// StaggerWindow spreads user start times (default 90 minutes). Overlap
	// creates shared-bottleneck load at servers.
	StaggerWindow time.Duration
	// ServerUplinkKbps overrides the server access capacity (default 2500,
	// a 2001-era multi-T1 uplink).
	ServerUplinkKbps float64
}

func (o *Options) fill() {
	if o.PlayFor <= 0 {
		o.PlayFor = time.Minute
	}
	if o.CongestionScale == 0 {
		o.CongestionScale = 1
	}
	if o.StaggerWindow <= 0 {
		o.StaggerWindow = 90 * time.Minute
	}
	if o.ServerUplinkKbps <= 0 {
		o.ServerUplinkKbps = 8000
	}
}

// Result is a completed study.
type Result struct {
	Records []*trace.Record
	Users   []*geo.User
	Sites   []geo.ServerSite
	// SimDuration is how much virtual time the campaign took.
	SimDuration time.Duration
	// Events is the simulator event count (diagnostics).
	Events uint64
}

// Run executes the campaign and returns its records.
func Run(opt Options) (*Result, error) {
	opt.fill()
	clock := simclock.New()
	masterRNG := rand.New(rand.NewSource(opt.Seed))

	sites := geo.Sites()
	users := geo.Population(opt.Seed + 1)
	if opt.MaxUsers > 0 && opt.MaxUsers < len(users) {
		users = users[:opt.MaxUsers]
	}

	routes := geo.NewRouteTable(sites, users, opt.Seed+2)
	routes.CongestionScale = opt.CongestionScale
	net := netsim.New(clock, routes, opt.Seed+3)

	// Bring up the servers and assemble the 98-entry playlist.
	serverAccess := netsim.DefaultAccessProfile(netsim.AccessServer)
	serverAccess.UpKbps = opt.ServerUplinkKbps
	serverAccess.DownKbps = opt.ServerUplinkKbps

	var playlist []tracer.Entry
	for si, site := range sites {
		if site.Clips == 0 {
			continue
		}
		net.AddHost(netsim.HostConfig{Name: site.Host, Access: serverAccess})
		lib := media.GenerateLibrary(site.Host, site.Clips, opt.Seed+100+int64(si))
		srv := server.New(server.Config{
			Clock:          vclock.Sim{C: clock},
			Net:            session.SimNet{Stack: transport.NewStack(net, site.Host)},
			Library:        lib,
			Rand:           rand.New(rand.NewSource(masterRNG.Int63())),
			Unavailability: site.Unavailability,
			SureStream:     !opt.DisableSureStream,
			FEC:            !opt.DisableFEC,
			NewController:  controllerFactory(opt.Controller),
		})
		if err := srv.Start(); err != nil {
			return nil, fmt.Errorf("study: start %s: %w", site.Name, err)
		}
		for _, clip := range lib.Clips {
			playlist = append(playlist, tracer.Entry{
				URL:         clip.URL,
				ControlAddr: fmt.Sprintf("%s:%d", site.Host, session.ControlPort),
				Site:        site,
			})
		}
	}
	if len(playlist) != geo.PlaylistSize {
		return nil, fmt.Errorf("study: playlist has %d entries, want %d", len(playlist), geo.PlaylistSize)
	}

	// Launch every user's RealTracer run, staggered across the window.
	var records []*trace.Record
	remaining := len(users)
	for _, u := range users {
		u := u
		userRNG := rand.New(rand.NewSource(masterRNG.Int63()))
		access := netsim.DefaultAccessProfile(u.Access)
		if u.Access == netsim.AccessModem {
			// 2001 modems were a spread of V.90 and V.34 hardware syncing
			// anywhere from ~26 to ~46 Kbps depending on the line; PPP
			// framing and compression overhead shave ~10 % off the sync
			// rate in practice.
			access.DownKbps = u.ModemKbps * 0.9
			access.UpKbps = 22 + userRNG.Float64()*9
		}
		net.AddHost(netsim.HostConfig{Name: u.Name, Access: access})
		rater := newRater(u, userRNG)

		n := u.ClipsToPlay
		if opt.ClipCap > 0 && n > opt.ClipCap {
			n = opt.ClipCap
		}
		tr := tracer.New(tracer.Config{
			Clock:      vclock.Sim{C: clock},
			Net:        session.SimNet{Stack: transport.NewStack(net, u.Name)},
			User:       u,
			Playlist:   playlist[:n],
			PlayFor:    opt.PlayFor,
			Preroll:    opt.Preroll,
			Rand:       userRNG,
			Rate:       rater.rate,
			OnRecord:   func(rec *trace.Record) { records = append(records, rec) },
			OnFinished: func() { remaining-- },
		})
		start := time.Duration(userRNG.Int63n(int64(opt.StaggerWindow)))
		clock.At(start, tr.Run)
	}

	// Run until every user finishes. Stopping on completion (rather than on
	// queue exhaustion) keeps lingering per-session timers from extending
	// the run.
	for remaining > 0 && clock.Step() {
	}
	if remaining != 0 {
		return nil, fmt.Errorf("study: %d users never finished", remaining)
	}
	return &Result{
		Records:     records,
		Users:       users,
		Sites:       sites,
		SimDuration: clock.Now(),
		Events:      clock.Fired(),
	}, nil
}

func controllerFactory(name string) func(float64) ratecontrol.Controller {
	lim := ratecontrol.DefaultLimits()
	switch name {
	case "", "tfrc":
		return func(start float64) ratecontrol.Controller { return ratecontrol.NewTFRC(start, 1000, lim) }
	case "aimd":
		return func(start float64) ratecontrol.Controller { return ratecontrol.NewAIMD(start, lim) }
	case "unresponsive":
		return func(start float64) ratecontrol.Controller { return &ratecontrol.Unresponsive{Kbps: start} }
	default:
		return func(start float64) ratecontrol.Controller { return ratecontrol.NewTFRC(start, 1000, lim) }
	}
}

// rater implements the perceptual-rating model of Section V.C. Users anchor
// around a personal centre ("normalization"), adjust it modestly for what
// they actually saw, and differ on criteria (video-only vs audio+video,
// subject-matter taste), which together flatten the population-level rating
// CDF to near-uniform with mean ≈ 5 while preserving the within-user
// signal the authors expected to mine later.
type rater struct {
	user *geo.User
	rng  *rand.Rand
}

func newRater(u *geo.User, rng *rand.Rand) *rater { return &rater{user: u, rng: rng} }

// rate maps a clip record to the user's 0-10 score.
func (r *rater) rate(rec *trace.Record) float64 {
	// Objective quality in roughly [-1, 1].
	q := qualityScore(rec, r.user.RatesAVTogether)
	// Subject-matter taste: some users rated content, not delivery.
	taste := r.rng.NormFloat64() * 1.2
	score := r.user.RatingAnchor + 2.2*q + taste
	// High-bandwidth sessions never rate very low (Figure 28's empty
	// lower-right corner): good delivery puts a floor under the score.
	if rec.MeasuredKbps > 250 && score < 3 {
		score = 3 + r.rng.Float64()
	}
	if score < 0 {
		score = 0
	}
	if score > 10 {
		score = 10
	}
	// Users rated whole numbers on the slider.
	return float64(int(score + 0.5))
}

// qualityScore folds frame rate, jitter and stalls into [-1, 1].
func qualityScore(rec *trace.Record, avTogether bool) float64 {
	var q float64
	switch {
	case rec.MeasuredFPS >= media.SmoothFPS:
		q += 0.8
	case rec.MeasuredFPS >= media.VeryChoppyFPS:
		q += 0.3
	case rec.MeasuredFPS >= media.MinAcceptableFPS:
		q -= 0.2
	default:
		q -= 0.8
	}
	switch {
	case rec.JitterMs <= 50:
		q += 0.3
	case rec.JitterMs >= 300:
		q -= 0.5
	}
	if rec.Rebuffers > 0 {
		q -= 0.3 * float64(rec.Rebuffers)
	}
	if avTogether {
		// Audio survives almost everything (it gets bandwidth priority), so
		// audio+video raters are systematically kinder on bad video.
		q = q*0.6 + 0.2
	}
	if q < -1 {
		q = -1
	}
	if q > 1 {
		q = 1
	}
	return q
}
