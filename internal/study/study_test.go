package study

import (
	"testing"
	"time"

	"realtracer/internal/trace"
)

func TestReducedStudyRuns(t *testing.T) {
	res, err := Run(Options{Seed: 1, MaxUsers: 8, ClipCap: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("no records")
	}
	played := trace.Played(res.Records)
	if len(played) < len(res.Records)/2 {
		t.Fatalf("only %d of %d attempts played", len(played), len(res.Records))
	}
	for _, r := range played {
		if r.MeasuredKbps <= 0 {
			t.Fatalf("played record with zero bandwidth: %+v", r)
		}
		if r.Protocol != "TCP" && r.Protocol != "UDP" {
			t.Fatalf("bad protocol %q", r.Protocol)
		}
		if r.Region == "" || r.ServerRegion == "" || r.Access == "" {
			t.Fatalf("missing grouping fields: %+v", r)
		}
	}
}

func TestStudyDeterministic(t *testing.T) {
	opt := Options{Seed: 11, MaxUsers: 5, ClipCap: 4}
	a, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		ra, rb := a.Records[i], b.Records[i]
		if ra.User != rb.User || ra.ClipURL != rb.ClipURL ||
			ra.MeasuredFPS != rb.MeasuredFPS || ra.JitterMs != rb.JitterMs ||
			ra.Rating != rb.Rating {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, ra, rb)
		}
	}
	if a.Events != b.Events {
		t.Fatalf("event counts differ: %d vs %d", a.Events, b.Events)
	}
}

func TestStudySeedsDiffer(t *testing.T) {
	a, _ := Run(Options{Seed: 1, MaxUsers: 4, ClipCap: 3})
	b, _ := Run(Options{Seed: 2, MaxUsers: 4, ClipCap: 3})
	same := len(a.Records) == len(b.Records)
	if same {
		for i := range a.Records {
			if a.Records[i].MeasuredFPS != b.Records[i].MeasuredFPS {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical studies")
	}
}

func TestUnavailabilityRate(t *testing.T) {
	res, err := Run(Options{Seed: 3, MaxUsers: 15, ClipCap: 15})
	if err != nil {
		t.Fatal(err)
	}
	unavailable := 0
	for _, r := range res.Records {
		if r.Unavailable {
			unavailable++
		}
	}
	frac := float64(unavailable) / float64(len(res.Records))
	if frac < 0.02 || frac > 0.25 {
		t.Fatalf("unavailability %.2f outside the paper's ~10%% ballpark", frac)
	}
}

func TestRatingBudgetHonored(t *testing.T) {
	res, err := Run(Options{Seed: 4, MaxUsers: 10, ClipCap: 20})
	if err != nil {
		t.Fatal(err)
	}
	perUser := map[string]int{}
	for _, r := range res.Records {
		if r.Rated {
			perUser[r.User]++
			if r.Rating < 0 || r.Rating > 10 {
				t.Fatalf("rating out of range: %v", r.Rating)
			}
		}
	}
	for _, u := range res.Users[:10] {
		if perUser[u.Name] > u.ClipsToRate {
			t.Fatalf("user %s rated %d > budget %d", u.Name, perUser[u.Name], u.ClipsToRate)
		}
	}
}

func TestControllerOptionAccepted(t *testing.T) {
	for _, ctrl := range []string{"tfrc", "aimd", "unresponsive", ""} {
		if _, err := Run(Options{Seed: 5, MaxUsers: 2, ClipCap: 2, Controller: ctrl}); err != nil {
			t.Fatalf("controller %q: %v", ctrl, err)
		}
	}
}

func TestPrerollOptionShiftsBuffering(t *testing.T) {
	shortP, err := Run(Options{Seed: 6, MaxUsers: 4, ClipCap: 4, Preroll: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	longP, err := Run(Options{Seed: 6, MaxUsers: 4, ClipCap: 4, Preroll: 16 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	avg := func(recs []*trace.Record) float64 {
		var sum float64
		n := 0
		for _, r := range trace.Played(recs) {
			sum += r.BufferingTime.Seconds()
			n++
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	if avg(longP.Records) <= avg(shortP.Records) {
		t.Fatalf("16s preroll buffered (%.1fs) no longer than 2s preroll (%.1fs)",
			avg(longP.Records), avg(shortP.Records))
	}
}
