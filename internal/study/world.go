package study

import (
	"fmt"
	"math/rand"
	"time"

	"realtracer/internal/detrand"
	"realtracer/internal/geo"
	"realtracer/internal/media"
	"realtracer/internal/netsim"
	"realtracer/internal/server"
	"realtracer/internal/session"
	"realtracer/internal/simclock"
	"realtracer/internal/trace"
	"realtracer/internal/tracer"
	"realtracer/internal/transport"
	"realtracer/internal/vclock"
)

// World is one fully-constructed simulated Internet: the discrete-event
// clock, the wide-area network, the RealServers with their clip libraries,
// and the 98-entry playlist. In the default closed-loop panel mode every
// user's RealTracer session is already scheduled across the stagger window
// at build time, exactly as the paper ran; in open-loop mode (see
// Options.Workload) nothing is pre-scheduled — a workload generator admits
// sessions over virtual time through the SessionFactory, attaching each
// arrival's host and removing it again on departure. A World is
// single-use: build it with NewWorld, drive it with Run.
//
// Each World owns a private clock and network, so independent Worlds can
// run concurrently on separate goroutines — the property the campaign
// engine (internal/campaign) exploits to fan scenario sweeps out across
// workers. Options.Shards instead parallelizes a single world: hosts are
// partitioned across per-shard clocks and networks under a netsim.Fabric,
// and Clock/Net then alias shard 0 — build-time code paths that touch them
// run before the shards start.
type World struct {
	// Options is the (filled) configuration the world was built from.
	Options Options
	// Clock is the world's private discrete-event clock (shard 0's clock
	// in a sharded world).
	Clock *simclock.Clock
	// Net is the simulated wide-area network connecting servers and users
	// (shard 0's view in a sharded world).
	Net *netsim.Network
	// Sites and Users are the server/user geography for this world. In
	// open-loop mode Users is the template pool arrivals draw from, not a
	// set of pre-scheduled participants.
	Sites []geo.ServerSite
	Users []*geo.User
	// Playlist is the assembled 98-entry clip list. The closed panel walks
	// it in order; open-loop sessions draw from it by Zipf popularity.
	Playlist []tracer.Entry
	// Servers are the running RealServers, aligned index-for-index with
	// ActiveSites; the least-loaded selection policy probes them.
	Servers []*server.Server
	// ActiveSites are the sites that serve clips (the mirror set).
	ActiveSites []geo.ServerSite

	factory   *SessionFactory
	open      *openLoop // nil in closed-loop panel mode
	sink      trace.Sink
	collector *trace.Collector
	remaining int
	ran       bool

	// Checkpoint wiring (checkpoint.go): the counting RNGs, transport
	// stacks, tracers and start timers NewWorld creates, kept addressable
	// so a snapshot can persist their positions and a restore can overlay
	// them. Server slices align with Servers/ActiveSites; the panel slices
	// align with Users. stacks maps a user host name to its template's
	// transport stack (tracked only on the classic unsharded engine —
	// sharded worlds are not checkpointable).
	serverRNGs   []*detrand.Rand
	serverStacks []*transport.Stack
	userRNGs     []*detrand.Rand
	tracers      []*tracer.Tracer
	startTimers  []simclock.Timer
	stacks       map[string]*transport.Stack

	// Sharded-execution state (Options.Shards > 0): the fabric, one
	// factory and one record sink per shard.
	fab        *netsim.Fabric
	factories  []*SessionFactory
	shardSinks []*trace.Collector
	// loads[s][ai] is shard s's gossip-delayed view of server ai's session
	// count (gossip.go); nil unless the selection policy reads load.
	loads [][]int
}

// clockFor returns the clock driving shard's events; shard -1 is the
// classic single-threaded world.
func (w *World) clockFor(shard int) *simclock.Clock {
	if shard < 0 || w.fab == nil {
		return w.Clock
	}
	return w.fab.Clock(shard)
}

// netFor returns shard's Network view; shard -1 is the classic world.
func (w *World) netFor(shard int) *netsim.Network {
	if shard < 0 || w.fab == nil {
		return w.Net
	}
	return w.fab.Net(shard)
}

// factoryFor returns shard's session factory; shard -1 is the classic
// world's single factory.
func (w *World) factoryFor(shard int) *SessionFactory {
	if shard < 0 || w.fab == nil {
		return w.factory
	}
	return w.factories[shard]
}

// siteShard maps an active-site ordinal (an index into ActiveSites /
// Servers) to its owning shard. Round-robin by ordinal: the mirror set is
// fixed at build time, so the assignment is trivially partition-stable.
func (w *World) siteShard(ai int) int {
	return ai % w.Options.Shards
}

// NewWorld builds the simulated Internet for opt: servers brought up, the
// playlist assembled, and — in panel mode — every user's tracer scheduled
// on the clock. In open-loop mode only the first arrival is scheduled; the
// generator sustains itself from there. The returned World has not
// consumed any virtual time yet; call Run to drive it to completion.
func NewWorld(opt Options) (*World, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	opt.fill()
	w := &World{
		Options: opt,
		Sites:   geo.Sites(),
		stacks:  make(map[string]*transport.Stack),
	}
	w.collector = &trace.Collector{}
	w.sink = w.collector
	masterRNG := rand.New(rand.NewSource(opt.Seed))

	if opt.MaxUsers > geo.PopulationSize {
		// Scale past the paper's 63-participant panel: a proportionally
		// apportioned population at the requested size.
		w.Users = geo.PopulationN(opt.Seed+1, opt.MaxUsers)
	} else {
		w.Users = geo.Population(opt.Seed + 1)
		if opt.MaxUsers > 0 && opt.MaxUsers < len(w.Users) {
			w.Users = w.Users[:opt.MaxUsers]
		}
	}

	routes := geo.NewRouteTable(w.Sites, w.Users, opt.Seed+2)
	routes.CongestionScale = opt.CongestionScale

	if opt.Shards > 0 {
		if err := w.buildSharded(routes, masterRNG); err != nil {
			return nil, err
		}
		return w, nil
	}

	w.Clock = simclock.New()
	w.Net = netsim.New(w.Clock, routes, opt.Seed+3)

	if opt.Dynamics != "" {
		spec, err := buildDynamics(opt, w.Sites)
		if err != nil {
			return nil, err
		}
		dseed := opt.DynamicsSeed
		if dseed == 0 {
			dseed = opt.Seed + 4
		}
		w.Net.SetDynamics(spec, dseed)
	}

	plans, err := w.planServers(masterRNG)
	if err != nil {
		return nil, err
	}
	if err := w.startServers(plans); err != nil {
		return nil, err
	}
	w.factory = &SessionFactory{
		w:           w,
		clock:       w.Clock,
		net:         w.Net,
		dynLabel:    opt.DynamicsLabel(),
		policyLabel: opt.PolicyLabel(),
	}
	if opt.OpenLoop() {
		if err := w.startWorkload(); err != nil {
			return nil, err
		}
	} else {
		w.launchUsers(masterRNG)
	}
	return w, nil
}

// sitePlan is one active site's build-time plan: its generated library and
// the master-RNG seed its server will run on.
type sitePlan struct {
	site geo.ServerSite
	lib  *media.Library
	seed int64
}

// planServers walks the site list in order, attaches each active site's
// host, generates its clip library and assembles the playlist. The
// masterRNG draw order — one Int63 per active site — is identical in every
// mode, which is what keeps panel worlds byte-identical and sharded worlds
// partition-invariant. In a sharded world the host is interned into the
// site's owning shard; the servers themselves start only after Freeze
// (startServers), because their transport stacks must bind to the shared
// frozen tables.
func (w *World) planServers(masterRNG *rand.Rand) ([]sitePlan, error) {
	opt := w.Options
	serverAccess := netsim.DefaultAccessProfile(netsim.AccessServer)
	serverAccess.UpKbps = opt.ServerUplinkKbps
	serverAccess.DownKbps = opt.ServerUplinkKbps

	var plans []sitePlan
	for si, site := range w.Sites {
		if site.Clips == 0 {
			continue
		}
		cfg := netsim.HostConfig{Name: site.Host, Access: serverAccess}
		if w.fab != nil {
			w.fab.AddHost(len(plans)%opt.Shards, cfg)
		} else {
			w.Net.AddHost(cfg)
		}
		lib := media.GenerateLibrary(site.Host, site.Clips, opt.Seed+100+int64(si))
		plans = append(plans, sitePlan{site: site, lib: lib, seed: masterRNG.Int63()})
		for _, clip := range lib.Clips {
			w.Playlist = append(w.Playlist, tracer.Entry{
				URL:         clip.URL,
				ControlAddr: fmt.Sprintf("%s:%d", site.Host, session.ControlPort),
				Site:        site,
			})
		}
	}
	if len(w.Playlist) != geo.PlaylistSize {
		return nil, fmt.Errorf("study: playlist has %d entries, want %d", len(w.Playlist), geo.PlaylistSize)
	}
	return plans, nil
}

// startServers brings up the RealServers from their plans. In open-loop
// mode every server carries the full clip set (clips are replicated across
// the mirror sites so a selection policy can re-home any request); the
// panel keeps the paper's layout, each clip only at its home site. In a
// sharded world each server runs on its owning shard's clock and network.
func (w *World) startServers(plans []sitePlan) error {
	opt := w.Options
	var allClips []*media.Clip
	for _, p := range plans {
		allClips = append(allClips, p.lib.Clips...)
	}
	for ai, p := range plans {
		lib := p.lib
		if opt.OpenLoop() {
			lib = media.NewLibrary(allClips)
		}
		shard := -1
		if w.fab != nil {
			shard = w.siteShard(ai)
		}
		drng := detrand.New(p.seed)
		stack := transport.NewStack(w.netFor(shard), p.site.Host)
		srv := server.New(server.Config{
			Clock:          vclock.Sim{C: w.clockFor(shard)},
			Net:            session.SimNet{Stack: stack},
			Library:        lib,
			Rand:           drng.Rand,
			Unavailability: p.site.Unavailability,
			SureStream:     !opt.DisableSureStream,
			FEC:            !opt.DisableFEC,
			NewController:  controllerFactory(opt.Controller),
		})
		if err := srv.Start(); err != nil {
			return fmt.Errorf("study: start %s: %w", p.site.Name, err)
		}
		w.Servers = append(w.Servers, srv)
		w.ActiveSites = append(w.ActiveSites, p.site)
		w.serverRNGs = append(w.serverRNGs, drng)
		w.serverStacks = append(w.serverStacks, stack)
	}
	return nil
}

// launchUsers schedules the closed-loop panel: every user's RealTracer
// run, staggered across the window — the paper's fixed 63-user campaign.
// It is now a thin driver over the SessionFactory; the byte-identical rule
// pins its RNG draw order (one Int63 per user, then the modem and stagger
// draws from the user's own RNG).
func (w *World) launchUsers(masterRNG *rand.Rand) {
	opt := w.Options
	w.remaining = len(w.Users)
	for _, u := range w.Users {
		userRNG := detrand.New(masterRNG.Int63())
		w.factory.attach(u, userRNG.Rand)
		n := u.ClipsToPlay
		if opt.ClipCap > 0 && n > opt.ClipCap {
			n = opt.ClipCap
		}
		tr := w.factory.newTracer(u, userRNG.Rand, w.Playlist[:n], nil,
			w.factory.observe,
			func() { w.remaining-- })
		start := time.Duration(userRNG.Int63n(int64(opt.StaggerWindow)))
		// The start event is a pooled handler (the Tracer itself), not a
		// closure, so a checkpoint taken before the user starts can carry it.
		w.userRNGs = append(w.userRNGs, userRNG)
		w.tracers = append(w.tracers, tr)
		w.startTimers = append(w.startTimers, w.Clock.AtHandler(start, tr))
	}
}

// trackStack records a user template's transport stack for checkpointing.
// Sharded factories build stacks concurrently on shard goroutines — and a
// sharded world is not checkpointable anyway — so only the classic engine
// tracks them.
func (w *World) trackStack(name string, st *transport.Stack) {
	if w.fab != nil || w.stacks == nil {
		return
	}
	w.stacks[name] = st
}

// RunUntil drives the world's clock to virtual time t without completing
// the run — the warm-up phase of a checkpoint/fork sweep. It may be called
// repeatedly with increasing t; Run then continues from wherever the
// warm-up stopped. Sharded worlds advance under the fabric's barrier
// protocol and cannot be partially driven.
func (w *World) RunUntil(t time.Duration) error {
	if w.fab != nil {
		return fmt.Errorf("study: RunUntil is not supported on a sharded world")
	}
	if w.ran {
		return fmt.Errorf("study: world already run")
	}
	w.Clock.RunUntil(t)
	return nil
}

// SetSink redirects the world's record stream into s: each record is
// handed to the sink as its clip completes and is NOT retained, so the
// run's memory is bounded by the sink's own state instead of the record
// count. Call before Run; the returned Result then carries a nil Records
// slice. The default sink is a trace.Collector, which preserves the
// classic retain-everything Result. A sharded world still buffers records
// per shard until the run ends (the deterministic merge needs them), then
// streams the merged order into s.
func (w *World) SetSink(s trace.Sink) {
	if s == nil {
		return
	}
	w.sink = s
	w.collector = nil
}

// Run drives the clock to completion and returns the study result. The
// panel stops when every user finishes; an open-loop run stops when the
// arrival budget is spent and the last session has departed. Stopping on
// completion (rather than on queue exhaustion) keeps lingering per-session
// timers from extending the run. A World can only be run once.
func (w *World) Run() (*Result, error) {
	if w.ran {
		return nil, fmt.Errorf("study: world already run")
	}
	w.ran = true
	if w.fab != nil {
		return w.runSharded()
	}
	if w.open != nil {
		c := w.open.cells[0] // the classic open loop is a single cell
		for (c.arrivalsLeft > 0 || c.active > 0) && w.Clock.Step() {
		}
		if c.arrivalsLeft != 0 || c.active != 0 {
			return nil, fmt.Errorf("study: open-loop run stalled with %d arrivals pending, %d sessions active",
				c.arrivalsLeft, c.active)
		}
	} else {
		for w.remaining > 0 && w.Clock.Step() {
		}
		if w.remaining != 0 {
			return nil, fmt.Errorf("study: %d users never finished", w.remaining)
		}
	}
	res := &Result{
		Users:       w.Users,
		Sites:       w.Sites,
		SimDuration: w.Clock.Now(),
		Events:      w.Clock.Fired(),
	}
	if w.open != nil {
		res.Sessions = w.open.sessionsN()
		res.Balked = w.open.balkedN()
		res.Departed = w.open.departedN()
	}
	if w.collector != nil {
		res.Records = w.collector.Records()
	}
	return res, nil
}
