package study

import (
	"fmt"
	"math/rand"
	"time"

	"realtracer/internal/geo"
	"realtracer/internal/media"
	"realtracer/internal/netsim"
	"realtracer/internal/server"
	"realtracer/internal/session"
	"realtracer/internal/simclock"
	"realtracer/internal/trace"
	"realtracer/internal/tracer"
	"realtracer/internal/transport"
	"realtracer/internal/vclock"
)

// World is one fully-constructed simulated Internet: the discrete-event
// clock, the wide-area network, the RealServers with their clip libraries,
// and the 98-entry playlist. In the default closed-loop panel mode every
// user's RealTracer session is already scheduled across the stagger window
// at build time, exactly as the paper ran; in open-loop mode (see
// Options.Workload) nothing is pre-scheduled — a workload generator admits
// sessions over virtual time through the SessionFactory, attaching each
// arrival's host and removing it again on departure. A World is
// single-use: build it with NewWorld, drive it with Run.
//
// Each World owns a private clock and network, so independent Worlds can
// run concurrently on separate goroutines — the property the campaign
// engine (internal/campaign) exploits to fan scenario sweeps out across
// workers.
type World struct {
	// Options is the (filled) configuration the world was built from.
	Options Options
	// Clock is the world's private discrete-event clock.
	Clock *simclock.Clock
	// Net is the simulated wide-area network connecting servers and users.
	Net *netsim.Network
	// Sites and Users are the server/user geography for this world. In
	// open-loop mode Users is the template pool arrivals draw from, not a
	// set of pre-scheduled participants.
	Sites []geo.ServerSite
	Users []*geo.User
	// Playlist is the assembled 98-entry clip list. The closed panel walks
	// it in order; open-loop sessions draw from it by Zipf popularity.
	Playlist []tracer.Entry
	// Servers are the running RealServers, aligned index-for-index with
	// ActiveSites; the least-loaded selection policy probes them.
	Servers []*server.Server
	// ActiveSites are the sites that serve clips (the mirror set).
	ActiveSites []geo.ServerSite

	factory   *SessionFactory
	open      *openLoop // nil in closed-loop panel mode
	sink      trace.Sink
	collector *trace.Collector
	remaining int
	ran       bool
}

// NewWorld builds the simulated Internet for opt: servers brought up, the
// playlist assembled, and — in panel mode — every user's tracer scheduled
// on the clock. In open-loop mode only the first arrival is scheduled; the
// generator sustains itself from there. The returned World has not
// consumed any virtual time yet; call Run to drive it to completion.
func NewWorld(opt Options) (*World, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	opt.fill()
	w := &World{
		Options: opt,
		Clock:   simclock.New(),
		Sites:   geo.Sites(),
	}
	w.collector = &trace.Collector{}
	w.sink = w.collector
	masterRNG := rand.New(rand.NewSource(opt.Seed))

	if opt.MaxUsers > geo.PopulationSize {
		// Scale past the paper's 63-participant panel: a proportionally
		// apportioned population at the requested size.
		w.Users = geo.PopulationN(opt.Seed+1, opt.MaxUsers)
	} else {
		w.Users = geo.Population(opt.Seed + 1)
		if opt.MaxUsers > 0 && opt.MaxUsers < len(w.Users) {
			w.Users = w.Users[:opt.MaxUsers]
		}
	}

	routes := geo.NewRouteTable(w.Sites, w.Users, opt.Seed+2)
	routes.CongestionScale = opt.CongestionScale
	w.Net = netsim.New(w.Clock, routes, opt.Seed+3)

	if opt.Dynamics != "" {
		spec, err := buildDynamics(opt, w.Sites)
		if err != nil {
			return nil, err
		}
		dseed := opt.DynamicsSeed
		if dseed == 0 {
			dseed = opt.Seed + 4
		}
		w.Net.SetDynamics(spec, dseed)
	}

	if err := w.buildServers(masterRNG); err != nil {
		return nil, err
	}
	w.factory = &SessionFactory{
		w:           w,
		dynLabel:    opt.DynamicsLabel(),
		policyLabel: opt.PolicyLabel(),
	}
	if opt.OpenLoop() {
		if err := w.startWorkload(); err != nil {
			return nil, err
		}
	} else {
		w.launchUsers(masterRNG)
	}
	return w, nil
}

// buildServers brings up the RealServers and assembles the playlist. In
// open-loop mode every server carries the full clip set (clips are
// replicated across the mirror sites so a selection policy can re-home any
// request); the panel keeps the paper's layout, each clip only at its home
// site. The masterRNG draw order is identical in both modes — one Int63
// per active site — so panel worlds stay byte-identical.
func (w *World) buildServers(masterRNG *rand.Rand) error {
	opt := w.Options
	serverAccess := netsim.DefaultAccessProfile(netsim.AccessServer)
	serverAccess.UpKbps = opt.ServerUplinkKbps
	serverAccess.DownKbps = opt.ServerUplinkKbps

	type sitePlan struct {
		site geo.ServerSite
		lib  *media.Library
		seed int64
	}
	var plans []sitePlan
	var allClips []*media.Clip
	for si, site := range w.Sites {
		if site.Clips == 0 {
			continue
		}
		w.Net.AddHost(netsim.HostConfig{Name: site.Host, Access: serverAccess})
		lib := media.GenerateLibrary(site.Host, site.Clips, opt.Seed+100+int64(si))
		plans = append(plans, sitePlan{site: site, lib: lib, seed: masterRNG.Int63()})
		allClips = append(allClips, lib.Clips...)
		for _, clip := range lib.Clips {
			w.Playlist = append(w.Playlist, tracer.Entry{
				URL:         clip.URL,
				ControlAddr: fmt.Sprintf("%s:%d", site.Host, session.ControlPort),
				Site:        site,
			})
		}
	}
	for _, p := range plans {
		lib := p.lib
		if w.Options.OpenLoop() {
			lib = media.NewLibrary(allClips)
		}
		srv := server.New(server.Config{
			Clock:          vclock.Sim{C: w.Clock},
			Net:            session.SimNet{Stack: transport.NewStack(w.Net, p.site.Host)},
			Library:        lib,
			Rand:           rand.New(rand.NewSource(p.seed)),
			Unavailability: p.site.Unavailability,
			SureStream:     !opt.DisableSureStream,
			FEC:            !opt.DisableFEC,
			NewController:  controllerFactory(opt.Controller),
		})
		if err := srv.Start(); err != nil {
			return fmt.Errorf("study: start %s: %w", p.site.Name, err)
		}
		w.Servers = append(w.Servers, srv)
		w.ActiveSites = append(w.ActiveSites, p.site)
	}
	if len(w.Playlist) != geo.PlaylistSize {
		return fmt.Errorf("study: playlist has %d entries, want %d", len(w.Playlist), geo.PlaylistSize)
	}
	return nil
}

// launchUsers schedules the closed-loop panel: every user's RealTracer
// run, staggered across the window — the paper's fixed 63-user campaign.
// It is now a thin driver over the SessionFactory; the byte-identical rule
// pins its RNG draw order (one Int63 per user, then the modem and stagger
// draws from the user's own RNG).
func (w *World) launchUsers(masterRNG *rand.Rand) {
	opt := w.Options
	w.remaining = len(w.Users)
	for _, u := range w.Users {
		userRNG := rand.New(rand.NewSource(masterRNG.Int63()))
		w.factory.attach(u, userRNG)
		n := u.ClipsToPlay
		if opt.ClipCap > 0 && n > opt.ClipCap {
			n = opt.ClipCap
		}
		tr := w.factory.newTracer(u, userRNG, w.Playlist[:n], nil,
			w.factory.observe,
			func() { w.remaining-- })
		start := time.Duration(userRNG.Int63n(int64(opt.StaggerWindow)))
		w.Clock.At(start, tr.Run)
	}
}

// SetSink redirects the world's record stream into s: each record is
// handed to the sink as its clip completes and is NOT retained, so the
// run's memory is bounded by the sink's own state instead of the record
// count. Call before Run; the returned Result then carries a nil Records
// slice. The default sink is a trace.Collector, which preserves the
// classic retain-everything Result.
func (w *World) SetSink(s trace.Sink) {
	if s == nil {
		return
	}
	w.sink = s
	w.collector = nil
}

// Run drives the clock to completion and returns the study result. The
// panel stops when every user finishes; an open-loop run stops when the
// arrival budget is spent and the last session has departed. Stopping on
// completion (rather than on queue exhaustion) keeps lingering per-session
// timers from extending the run. A World can only be run once.
func (w *World) Run() (*Result, error) {
	if w.ran {
		return nil, fmt.Errorf("study: world already run")
	}
	w.ran = true
	if w.open != nil {
		o := w.open
		for (o.arrivalsLeft > 0 || o.active > 0) && w.Clock.Step() {
		}
		if o.arrivalsLeft != 0 || o.active != 0 {
			return nil, fmt.Errorf("study: open-loop run stalled with %d arrivals pending, %d sessions active",
				o.arrivalsLeft, o.active)
		}
	} else {
		for w.remaining > 0 && w.Clock.Step() {
		}
		if w.remaining != 0 {
			return nil, fmt.Errorf("study: %d users never finished", w.remaining)
		}
	}
	res := &Result{
		Users:       w.Users,
		Sites:       w.Sites,
		SimDuration: w.Clock.Now(),
		Events:      w.Clock.Fired(),
	}
	if w.open != nil {
		res.Sessions = w.open.sessions
		res.Balked = w.open.balked
		res.Departed = w.open.departed
	}
	if w.collector != nil {
		res.Records = w.collector.Records()
	}
	return res, nil
}
