package study

import (
	"fmt"
	"math/rand"
	"time"

	"realtracer/internal/geo"
	"realtracer/internal/media"
	"realtracer/internal/netsim"
	"realtracer/internal/server"
	"realtracer/internal/session"
	"realtracer/internal/simclock"
	"realtracer/internal/trace"
	"realtracer/internal/tracer"
	"realtracer/internal/transport"
	"realtracer/internal/vclock"
)

// World is one fully-constructed simulated Internet: the discrete-event
// clock, the wide-area network, the RealServers with their clip libraries,
// the 98-entry playlist, and every user's RealTracer session already
// scheduled across the stagger window. A World is single-use: build it with
// NewWorld, drive it with Run.
//
// Each World owns a private clock and network, so independent Worlds can
// run concurrently on separate goroutines — the property the campaign
// engine (internal/campaign) exploits to fan scenario sweeps out across
// workers.
type World struct {
	// Options is the (filled) configuration the world was built from.
	Options Options
	// Clock is the world's private discrete-event clock.
	Clock *simclock.Clock
	// Net is the simulated wide-area network connecting servers and users.
	Net *netsim.Network
	// Sites and Users are the server/user geography for this world.
	Sites []geo.ServerSite
	Users []*geo.User
	// Playlist is the assembled 98-entry clip list every user walks.
	Playlist []tracer.Entry

	sink      trace.Sink
	collector *trace.Collector
	remaining int
	ran       bool
}

// NewWorld builds the simulated Internet for opt: servers brought up, the
// playlist assembled, and every user's tracer scheduled on the clock. The
// returned World has not consumed any virtual time yet; call Run to drive
// it to completion.
func NewWorld(opt Options) (*World, error) {
	opt.fill()
	w := &World{
		Options: opt,
		Clock:   simclock.New(),
		Sites:   geo.Sites(),
	}
	w.collector = &trace.Collector{}
	w.sink = w.collector
	masterRNG := rand.New(rand.NewSource(opt.Seed))

	if opt.MaxUsers > geo.PopulationSize {
		// Scale past the paper's 63-participant panel: a proportionally
		// apportioned population at the requested size.
		w.Users = geo.PopulationN(opt.Seed+1, opt.MaxUsers)
	} else {
		w.Users = geo.Population(opt.Seed + 1)
		if opt.MaxUsers > 0 && opt.MaxUsers < len(w.Users) {
			w.Users = w.Users[:opt.MaxUsers]
		}
	}

	routes := geo.NewRouteTable(w.Sites, w.Users, opt.Seed+2)
	routes.CongestionScale = opt.CongestionScale
	w.Net = netsim.New(w.Clock, routes, opt.Seed+3)

	if opt.Dynamics != "" {
		spec, err := buildDynamics(opt, w.Sites)
		if err != nil {
			return nil, err
		}
		dseed := opt.DynamicsSeed
		if dseed == 0 {
			dseed = opt.Seed + 4
		}
		w.Net.SetDynamics(spec, dseed)
	}

	if err := w.buildServers(masterRNG); err != nil {
		return nil, err
	}
	w.launchUsers(masterRNG)
	return w, nil
}

// buildServers brings up the RealServers and assembles the playlist.
func (w *World) buildServers(masterRNG *rand.Rand) error {
	opt := w.Options
	serverAccess := netsim.DefaultAccessProfile(netsim.AccessServer)
	serverAccess.UpKbps = opt.ServerUplinkKbps
	serverAccess.DownKbps = opt.ServerUplinkKbps

	for si, site := range w.Sites {
		if site.Clips == 0 {
			continue
		}
		w.Net.AddHost(netsim.HostConfig{Name: site.Host, Access: serverAccess})
		lib := media.GenerateLibrary(site.Host, site.Clips, opt.Seed+100+int64(si))
		srv := server.New(server.Config{
			Clock:          vclock.Sim{C: w.Clock},
			Net:            session.SimNet{Stack: transport.NewStack(w.Net, site.Host)},
			Library:        lib,
			Rand:           rand.New(rand.NewSource(masterRNG.Int63())),
			Unavailability: site.Unavailability,
			SureStream:     !opt.DisableSureStream,
			FEC:            !opt.DisableFEC,
			NewController:  controllerFactory(opt.Controller),
		})
		if err := srv.Start(); err != nil {
			return fmt.Errorf("study: start %s: %w", site.Name, err)
		}
		for _, clip := range lib.Clips {
			w.Playlist = append(w.Playlist, tracer.Entry{
				URL:         clip.URL,
				ControlAddr: fmt.Sprintf("%s:%d", site.Host, session.ControlPort),
				Site:        site,
			})
		}
	}
	if len(w.Playlist) != geo.PlaylistSize {
		return fmt.Errorf("study: playlist has %d entries, want %d", len(w.Playlist), geo.PlaylistSize)
	}
	return nil
}

// launchUsers schedules every user's RealTracer run, staggered across the
// window.
func (w *World) launchUsers(masterRNG *rand.Rand) {
	opt := w.Options
	// The condition label is constant for the world; stamp records from one
	// string rather than reformatting it per record.
	dynLabel := opt.DynamicsLabel()
	w.remaining = len(w.Users)
	for _, u := range w.Users {
		u := u
		userRNG := rand.New(rand.NewSource(masterRNG.Int63()))
		access := netsim.DefaultAccessProfile(u.Access)
		if u.Access == netsim.AccessModem {
			// 2001 modems were a spread of V.90 and V.34 hardware syncing
			// anywhere from ~26 to ~46 Kbps depending on the line; PPP
			// framing and compression overhead shave ~10 % off the sync
			// rate in practice.
			access.DownKbps = u.ModemKbps * 0.9
			access.UpKbps = 22 + userRNG.Float64()*9
		}
		w.Net.AddHost(netsim.HostConfig{Name: u.Name, Access: access})
		rater := newRater(u, userRNG)

		n := u.ClipsToPlay
		if opt.ClipCap > 0 && n > opt.ClipCap {
			n = opt.ClipCap
		}
		tr := tracer.New(tracer.Config{
			Clock:    vclock.Sim{C: w.Clock},
			Net:      session.SimNet{Stack: transport.NewStack(w.Net, u.Name)},
			User:     u,
			Playlist: w.Playlist[:n],
			PlayFor:  opt.PlayFor,
			Preroll:  opt.Preroll,
			Rand:     userRNG,
			Rate:     rater.rate,
			OnRecord: func(rec *trace.Record) {
				// Stamp the network-weather condition so downstream
				// aggregation can split robustness metrics by regime.
				rec.Dynamics = dynLabel
				w.sink.Observe(rec)
			},
			OnFinished: func() { w.remaining-- },
		})
		start := time.Duration(userRNG.Int63n(int64(opt.StaggerWindow)))
		w.Clock.At(start, tr.Run)
	}
}

// SetSink redirects the world's record stream into s: each record is
// handed to the sink as its clip completes and is NOT retained, so the
// run's memory is bounded by the sink's own state instead of the record
// count. Call before Run; the returned Result then carries a nil Records
// slice. The default sink is a trace.Collector, which preserves the
// classic retain-everything Result.
func (w *World) SetSink(s trace.Sink) {
	if s == nil {
		return
	}
	w.sink = s
	w.collector = nil
}

// Run drives the clock until every user finishes and returns the study
// result. Stopping on completion (rather than on queue exhaustion) keeps
// lingering per-session timers from extending the run. A World can only be
// run once.
func (w *World) Run() (*Result, error) {
	if w.ran {
		return nil, fmt.Errorf("study: world already run")
	}
	w.ran = true
	for w.remaining > 0 && w.Clock.Step() {
	}
	if w.remaining != 0 {
		return nil, fmt.Errorf("study: %d users never finished", w.remaining)
	}
	res := &Result{
		Users:       w.Users,
		Sites:       w.Sites,
		SimDuration: w.Clock.Now(),
		Events:      w.Clock.Fired(),
	}
	if w.collector != nil {
		res.Records = w.collector.Records()
	}
	return res, nil
}
