package study

import (
	"testing"

	"realtracer/internal/geo"
)

func TestWorldConstruction(t *testing.T) {
	w, err := NewWorld(Options{Seed: 1, MaxUsers: 4, ClipCap: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Playlist) != geo.PlaylistSize {
		t.Fatalf("playlist has %d entries, want %d", len(w.Playlist), geo.PlaylistSize)
	}
	if len(w.Users) != 4 {
		t.Fatalf("users=%d, want 4", len(w.Users))
	}
	if w.Clock.Now() != 0 {
		t.Fatalf("world consumed virtual time before Run: %v", w.Clock.Now())
	}
	if w.Clock.Pending() == 0 {
		t.Fatal("no users scheduled on the clock")
	}
}

func TestWorldSingleUse(t *testing.T) {
	w, err := NewWorld(Options{Seed: 2, MaxUsers: 2, ClipCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(); err == nil {
		t.Fatal("second Run on the same world should fail")
	}
}

// TestWorldMatchesRun pins the compatibility contract: study.Run is a thin
// wrapper over NewWorld + Run, so both paths must produce the same study.
func TestWorldMatchesRun(t *testing.T) {
	opt := Options{Seed: 13, MaxUsers: 3, ClipCap: 3}
	w, err := NewWorld(opt)
	if err != nil {
		t.Fatal(err)
	}
	a, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) || a.Events != b.Events {
		t.Fatalf("world path (%d records, %d events) differs from Run path (%d records, %d events)",
			len(a.Records), a.Events, len(b.Records), b.Events)
	}
	for i := range a.Records {
		if a.Records[i].MeasuredFPS != b.Records[i].MeasuredFPS ||
			a.Records[i].JitterMs != b.Records[i].JitterMs {
			t.Fatalf("record %d differs between world and Run paths", i)
		}
	}
}
