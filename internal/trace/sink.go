package trace

import (
	"encoding/csv"
	"io"
)

// Sink consumes per-clip records as they are produced. The streaming
// pipeline hands each completed clip's record to a Sink instead of
// retaining it, so a study's memory footprint is bounded by what the sink
// keeps (aggregate state, a file buffer) rather than by the record count.
//
// Observe is called from the single simulation goroutine of one world, in
// deterministic record order; a sink shared across worlds must be
// synchronized by the caller (the campaign engine avoids this by giving
// each scenario its own sink and merging afterwards).
type Sink interface {
	Observe(*Record)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(*Record)

// Observe implements Sink.
func (f SinkFunc) Observe(r *Record) { f(r) }

// Collector is the retain-everything Sink: it preserves the classic
// records-slice API for small studies and tests.
type Collector struct {
	records []*Record
}

// Observe implements Sink.
func (c *Collector) Observe(r *Record) { c.records = append(c.records, r) }

// Records returns the collected records in observation order.
func (c *Collector) Records() []*Record { return c.records }

// MultiSink fans every record out to each sink in order.
type MultiSink []Sink

// Observe implements Sink.
func (m MultiSink) Observe(r *Record) {
	for _, s := range m {
		s.Observe(r)
	}
}

// CSVSink streams records to w as CSV rows, writing the header up front and
// each record as it is observed — constant memory no matter how many
// records flow through, and byte-compatible with WriteCSV (including the
// header-only file of a zero-record stream). Call Flush (and check its
// error) when the study completes.
type CSVSink struct {
	cw  *csv.Writer
	n   int
	err error
}

// NewCSVSink returns a streaming CSV writer sink with the header row
// already written (buffered until the first Flush).
func NewCSVSink(w io.Writer) *CSVSink {
	s := &CSVSink{cw: csv.NewWriter(w)}
	s.err = s.cw.Write(Header)
	return s
}

// Observe implements Sink.
func (s *CSVSink) Observe(r *Record) {
	if s.err != nil {
		return
	}
	s.n++
	s.err = s.cw.Write(r.row())
}

// Count returns how many records have been observed.
func (s *CSVSink) Count() int { return s.n }

// Flush writes buffered rows through and returns the first error seen.
func (s *CSVSink) Flush() error {
	s.cw.Flush()
	if s.err != nil {
		return s.err
	}
	return s.cw.Error()
}
