package trace

import (
	"bytes"
	"testing"
)

func sampleRecords() []*Record {
	return []*Record{
		{User: "a", Country: "US", Protocol: "TCP", MeasuredFPS: 10, MeasuredKbps: 100},
		{User: "b", Country: "UK", Protocol: "UDP", MeasuredFPS: 5, MeasuredKbps: 30, Rated: true, Rating: 7},
		{User: "a", Country: "US", Unavailable: true},
	}
}

func TestCollectorPreservesOrder(t *testing.T) {
	var c Collector
	recs := sampleRecords()
	for _, r := range recs {
		c.Observe(r)
	}
	got := c.Records()
	if len(got) != len(recs) {
		t.Fatalf("collected %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d out of order", i)
		}
	}
}

// TestCSVSinkMatchesWriteCSV: the streaming writer must emit byte-for-byte
// what the batch WriteCSV emits, so the -stream CLI path stays compatible
// with cmd/realdata.
func TestCSVSinkMatchesWriteCSV(t *testing.T) {
	recs := sampleRecords()
	var batch bytes.Buffer
	if err := WriteCSV(&batch, recs); err != nil {
		t.Fatal(err)
	}
	var streamed bytes.Buffer
	s := NewCSVSink(&streamed)
	for _, r := range recs {
		s.Observe(r)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.Count() != len(recs) {
		t.Fatalf("count=%d want %d", s.Count(), len(recs))
	}
	if !bytes.Equal(batch.Bytes(), streamed.Bytes()) {
		t.Fatalf("streamed CSV differs from batch CSV:\n%s\nvs\n%s", streamed.Bytes(), batch.Bytes())
	}
	back, err := ReadCSV(&streamed)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) || back[1].Rating != 7 {
		t.Fatal("streamed CSV did not round-trip")
	}
}

// TestCSVSinkEmptyStreamWritesHeader: a zero-record stream still produces
// the header-only file WriteCSV produces.
func TestCSVSinkEmptyStreamWritesHeader(t *testing.T) {
	var batch bytes.Buffer
	if err := WriteCSV(&batch, nil); err != nil {
		t.Fatal(err)
	}
	var streamed bytes.Buffer
	s := NewCSVSink(&streamed)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(batch.Bytes(), streamed.Bytes()) {
		t.Fatalf("empty stream CSV %q differs from batch %q", streamed.Bytes(), batch.Bytes())
	}
}

func TestMultiSinkFansOut(t *testing.T) {
	var a, b Collector
	m := MultiSink{&a, &b}
	for _, r := range sampleRecords() {
		m.Observe(r)
	}
	if len(a.Records()) != 3 || len(b.Records()) != 3 {
		t.Fatalf("fan-out lost records: %d / %d", len(a.Records()), len(b.Records()))
	}
}

func TestSinkFunc(t *testing.T) {
	n := 0
	s := SinkFunc(func(*Record) { n++ })
	s.Observe(&Record{})
	if n != 1 {
		t.Fatal("SinkFunc not invoked")
	}
}
