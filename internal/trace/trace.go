// Package trace defines the per-clip measurement record RealTracer reported
// back to WPI, with CSV and JSON codecs. cmd/study writes these files and
// cmd/realdata (the paper's announced analysis tool) reads them back and
// regenerates the figures, so the collection and analysis halves of the
// study stay decoupled exactly as they were in 2001.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Record is one clip playout by one user.
type Record struct {
	// User identity and configuration (the RealTracer dialog of Fig. 2a).
	User    string `json:"user"`
	Country string `json:"country"`
	State   string `json:"state,omitempty"`
	Region  string `json:"region"`
	Access  string `json:"access"`
	PCClass string `json:"pc_class"`

	// Clip and server.
	ClipURL       string `json:"clip_url"`
	Server        string `json:"server"`
	ServerCountry string `json:"server_country"`
	ServerRegion  string `json:"server_region"`

	// Session outcome.
	Unavailable bool   `json:"unavailable"`
	Failed      bool   `json:"failed"`
	FailReason  string `json:"fail_reason,omitempty"`
	Protocol    string `json:"protocol"`

	// Encoded stream parameters.
	EncodedKbps float64 `json:"encoded_kbps"`
	EncodedFPS  float64 `json:"encoded_fps"`

	// Measured performance.
	MeasuredKbps float64 `json:"measured_kbps"`
	MeasuredFPS  float64 `json:"measured_fps"`
	JitterMs     float64 `json:"jitter_ms"`

	FramesPlayed      int `json:"frames_played"`
	FramesDroppedLate int `json:"frames_dropped_late"`
	FramesDroppedCPU  int `json:"frames_dropped_cpu"`
	FramesLost        int `json:"frames_lost"`
	FramesCorrupted   int `json:"frames_corrupted"`

	Rebuffers      int           `json:"rebuffers"`
	RebufferTime   time.Duration `json:"rebuffer_time_ns"`
	BufferingTime  time.Duration `json:"buffering_time_ns"`
	CPUUtilization float64       `json:"cpu_utilization"`
	Switches       int           `json:"switches"`

	// Rated is true when the user watched and rated this clip; Rating is
	// the 0-10 score (Fig. 2c).
	Rated  bool    `json:"rated"`
	Rating float64 `json:"rating,omitempty"`

	// Dynamics labels the network-dynamics regime the clip played under
	// ("" = the static baseline Internet; otherwise a study profile name
	// like "outage" or "lossburst"). Drives the per-condition robustness
	// breakdown in figures.Aggregates.
	Dynamics string `json:"dynamics,omitempty"`

	// Policy labels the server-selection policy the clip was fetched
	// under ("" = the closed-loop panel, which always uses the clip's
	// home site). Drives the per-policy workload breakdown.
	Policy string `json:"policy,omitempty"`
	// StartSec and EndSec bracket the clip attempt in virtual time
	// (seconds since the start of the run). The concurrent-session
	// time-series sketch is built from these.
	StartSec float64 `json:"start_s,omitempty"`
	EndSec   float64 `json:"end_s,omitempty"`

	// Ordinal is the session's partition-invariant arrival stamp (the
	// owning arrival cell's ordinal and the session's per-cell launch
	// count), used by the sharded engine's record merge as a total-order
	// tiebreak when two records agree on every sort key above. It is
	// deliberately excluded from the CSV columns: it identifies a launch,
	// not an observable of the study.
	Ordinal int64 `json:"-"`
}

// Header is the CSV column order.
var Header = []string{
	"user", "country", "state", "region", "access", "pc_class",
	"clip_url", "server", "server_country", "server_region",
	"unavailable", "failed", "protocol",
	"encoded_kbps", "encoded_fps",
	"measured_kbps", "measured_fps", "jitter_ms",
	"frames_played", "frames_dropped_late", "frames_dropped_cpu", "frames_lost", "frames_corrupted",
	"rebuffers", "rebuffer_ms", "buffering_ms", "cpu_utilization", "switches",
	"rated", "rating", "dynamics",
	"policy", "start_s", "end_s",
}

func (r *Record) row() []string {
	return []string{
		r.User, r.Country, r.State, r.Region, r.Access, r.PCClass,
		r.ClipURL, r.Server, r.ServerCountry, r.ServerRegion,
		strconv.FormatBool(r.Unavailable), strconv.FormatBool(r.Failed), r.Protocol,
		ftoa(r.EncodedKbps), ftoa(r.EncodedFPS),
		ftoa(r.MeasuredKbps), ftoa(r.MeasuredFPS), ftoa(r.JitterMs),
		strconv.Itoa(r.FramesPlayed), strconv.Itoa(r.FramesDroppedLate),
		strconv.Itoa(r.FramesDroppedCPU), strconv.Itoa(r.FramesLost),
		strconv.Itoa(r.FramesCorrupted),
		strconv.Itoa(r.Rebuffers),
		strconv.FormatInt(r.RebufferTime.Milliseconds(), 10),
		strconv.FormatInt(r.BufferingTime.Milliseconds(), 10),
		ftoa(r.CPUUtilization), strconv.Itoa(r.Switches),
		strconv.FormatBool(r.Rated), ftoa(r.Rating),
		r.Dynamics,
		r.Policy, ftoa(r.StartSec), ftoa(r.EndSec),
	}
}

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', 6, 64) }

// WriteCSV writes records with a header row.
func WriteCSV(w io.Writer, records []*Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(Header); err != nil {
		return err
	}
	for _, r := range records {
		if err := cw.Write(r.row()); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads records written by WriteCSV.
func ReadCSV(r io.Reader) ([]*Record, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, nil
	}
	if !legalColumns(len(rows[0])) {
		return nil, fmt.Errorf("trace: header has %d columns, want %d", len(rows[0]), len(Header))
	}
	var out []*Record
	for i, row := range rows[1:] {
		rec, err := fromRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: %w", i+2, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// legacyColumns is the pre-dynamics column count and preWorkloadColumns
// the pre-selection one; traces collected under either older schema still
// read back, with the missing trailing fields left at their zero values.
const (
	legacyColumns      = 30
	preWorkloadColumns = 31
)

func legalColumns(n int) bool {
	return n == len(Header) || n == legacyColumns || n == preWorkloadColumns
}

func fromRow(row []string) (*Record, error) {
	if !legalColumns(len(row)) {
		return nil, fmt.Errorf("want %d fields, got %d", len(Header), len(row))
	}
	var r Record
	var err error
	atof := func(s string) float64 {
		if err != nil {
			return 0
		}
		var v float64
		v, err = strconv.ParseFloat(s, 64)
		return v
	}
	atoi := func(s string) int {
		if err != nil {
			return 0
		}
		var v int
		v, err = strconv.Atoi(s)
		return v
	}
	atob := func(s string) bool {
		if err != nil {
			return false
		}
		var v bool
		v, err = strconv.ParseBool(s)
		return v
	}
	r.User, r.Country, r.State, r.Region, r.Access, r.PCClass = row[0], row[1], row[2], row[3], row[4], row[5]
	r.ClipURL, r.Server, r.ServerCountry, r.ServerRegion = row[6], row[7], row[8], row[9]
	r.Unavailable, r.Failed, r.Protocol = atob(row[10]), atob(row[11]), row[12]
	r.EncodedKbps, r.EncodedFPS = atof(row[13]), atof(row[14])
	r.MeasuredKbps, r.MeasuredFPS, r.JitterMs = atof(row[15]), atof(row[16]), atof(row[17])
	r.FramesPlayed, r.FramesDroppedLate = atoi(row[18]), atoi(row[19])
	r.FramesDroppedCPU, r.FramesLost = atoi(row[20]), atoi(row[21])
	r.FramesCorrupted = atoi(row[22])
	r.Rebuffers = atoi(row[23])
	r.RebufferTime = time.Duration(atoi(row[24])) * time.Millisecond
	r.BufferingTime = time.Duration(atoi(row[25])) * time.Millisecond
	r.CPUUtilization, r.Switches = atof(row[26]), atoi(row[27])
	r.Rated, r.Rating = atob(row[28]), atof(row[29])
	if len(row) > legacyColumns {
		r.Dynamics = row[30]
	}
	if len(row) > preWorkloadColumns {
		r.Policy = row[31]
		r.StartSec, r.EndSec = atof(row[32]), atof(row[33])
	}
	return &r, err
}

// WriteJSON writes records as a JSON array.
func WriteJSON(w io.Writer, records []*Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(records)
}

// ReadJSON reads a JSON array of records.
func ReadJSON(r io.Reader) ([]*Record, error) {
	var out []*Record
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// Filter returns the records matching pred.
func Filter(records []*Record, pred func(*Record) bool) []*Record {
	var out []*Record
	for _, r := range records {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// Played returns records of sessions that streamed data (the denominator of
// the performance figures): not unavailable, not failed.
func Played(records []*Record) []*Record {
	return Filter(records, func(r *Record) bool { return !r.Unavailable && !r.Failed })
}

// Rated returns the watched-and-rated subset (Figures 26-28).
func Rated(records []*Record) []*Record {
	return Filter(records, func(r *Record) bool { return r.Rated && !r.Unavailable && !r.Failed })
}

// Values extracts a float column.
func Values(records []*Record, get func(*Record) float64) []float64 {
	out := make([]float64, 0, len(records))
	for _, r := range records {
		out = append(out, get(r))
	}
	return out
}
