package trace

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sample() []*Record {
	return []*Record{
		{
			User: "u1", Country: "US", State: "MA", Region: "US/Canada",
			Access: "DSL/Cable", PCClass: "Pentium III / 256-512MB",
			ClipURL: "rtsp://cnn.us/clip000.rm", Server: "US/CNN",
			ServerCountry: "US", ServerRegion: "US/Canada",
			Protocol:    "UDP",
			EncodedKbps: 225, EncodedFPS: 20,
			MeasuredKbps: 240.5, MeasuredFPS: 16.2, JitterMs: 23.4,
			FramesPlayed: 970, FramesDroppedLate: 3, FramesDroppedCPU: 0,
			FramesLost: 2, FramesCorrupted: 12,
			Rebuffers: 1, RebufferTime: 4 * time.Second, BufferingTime: 9 * time.Second,
			CPUUtilization: 0.41, Switches: 2,
			Rated: true, Rating: 7,
			Dynamics: "lossburst", Policy: "rtt", StartSec: 120.5, EndSec: 195.25,
		},
		{
			User: "u2", Country: "Australia", Region: "Australia",
			Access: "56k Modem", PCClass: "Intel Pentium MMX / 24MB",
			ClipURL: "rtsp://abc.au/clip003.rm", Server: "AUS/BBC",
			ServerCountry: "Australia", ServerRegion: "Australia",
			Unavailable: true, Protocol: "TCP",
		},
		{
			User: "u3", Country: "UK", Region: "Europe",
			Access: "T1/LAN", PCClass: "AMD / 320-512MB",
			ClipURL: "rtsp://bbc.uk/clip001.rm", Server: "UK/BBC",
			ServerCountry: "UK", ServerRegion: "Europe",
			Failed: true, FailReason: "idle timeout", Protocol: "UDP",
		},
	}
}

func TestCSVRoundTrip(t *testing.T) {
	recs := sample()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("rows=%d want %d", len(got), len(recs))
	}
	a, b := got[0], recs[0]
	if a.User != b.User || a.MeasuredKbps != b.MeasuredKbps || a.JitterMs != b.JitterMs ||
		a.FramesCorrupted != b.FramesCorrupted || a.RebufferTime != b.RebufferTime ||
		a.Rated != b.Rated || a.Rating != b.Rating {
		t.Fatalf("record 0 mismatch:\n%+v\n%+v", a, b)
	}
	if !got[1].Unavailable || !got[2].Failed {
		t.Fatal("outcome flags lost")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	recs := sample()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || *got[0] != *recs[0] || got[2].FailReason != "idle timeout" {
		t.Fatal("json round trip mismatch")
	}
}

// TestReadCSVLegacyColumns: traces written under the older schemas — before
// the dynamics column (30 cols) and before the workload columns (31 cols) —
// still read back, with the missing trailing fields at their zero values.
func TestReadCSVLegacyColumns(t *testing.T) {
	for _, width := range []int{legacyColumns, preWorkloadColumns} {
		var buf bytes.Buffer
		if err := WriteCSV(&buf, sample()[:1]); err != nil {
			t.Fatal(err)
		}
		rows, err := csv.NewReader(&buf).ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		var legacy bytes.Buffer
		cw := csv.NewWriter(&legacy)
		for _, row := range rows {
			if err := cw.Write(row[:width]); err != nil {
				t.Fatal(err)
			}
		}
		cw.Flush()
		got, err := ReadCSV(strings.NewReader(legacy.String()))
		if err != nil {
			t.Fatalf("legacy %d-column trace rejected: %v", width, err)
		}
		if len(got) != 1 || got[0].Policy != "" || got[0].StartSec != 0 || got[0].User != "u1" {
			t.Fatalf("legacy %d-column read wrong: %+v", width, got[0])
		}
		if width > legacyColumns && got[0].Dynamics == "" {
			t.Fatalf("31-column read lost the dynamics field")
		}
	}
}

func TestReadCSVRejectsWrongHeader(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b,c\n1,2,3\n")); err == nil {
		t.Fatal("wrong column count accepted")
	}
}

func TestReadCSVRejectsBadRow(t *testing.T) {
	var buf bytes.Buffer
	WriteCSV(&buf, sample()[:1])
	corrupted := strings.Replace(buf.String(), "240.5", "not-a-number", 1)
	if _, err := ReadCSV(strings.NewReader(corrupted)); err == nil {
		t.Fatal("bad float accepted")
	}
}

func TestReadCSVEmpty(t *testing.T) {
	got, err := ReadCSV(strings.NewReader(""))
	if err != nil || got != nil {
		t.Fatalf("empty input: %v %v", got, err)
	}
}

func TestFilters(t *testing.T) {
	recs := sample()
	if n := len(Played(recs)); n != 1 {
		t.Fatalf("Played=%d want 1", n)
	}
	if n := len(Rated(recs)); n != 1 {
		t.Fatalf("Rated=%d want 1", n)
	}
	vals := Values(Played(recs), func(r *Record) float64 { return r.MeasuredFPS })
	if len(vals) != 1 || vals[0] != 16.2 {
		t.Fatalf("Values=%v", vals)
	}
}

func TestRatedExcludesFailed(t *testing.T) {
	recs := sample()
	recs[2].Rated = true
	recs[2].Rating = 5
	if n := len(Rated(recs)); n != 1 {
		t.Fatal("failed sessions must not count as rated")
	}
}

// Property: numeric fields survive the CSV round trip for arbitrary values.
func TestPropertyCSVNumericRoundTrip(t *testing.T) {
	f := func(kbpsRaw, fpsRaw, jitRaw uint32, played, lost uint16, rated bool, rating uint8) bool {
		// Constrain to the measurement domain: non-negative, bounded.
		kbps := float64(kbpsRaw%1_000_000) / 100
		fps := float64(fpsRaw%3000) / 100
		jit := float64(jitRaw%10_000_000) / 1000
		rec := &Record{
			User: "u", Country: "US", Region: "US/Canada", Access: "T1/LAN",
			ClipURL: "rtsp://x/y.rm", Server: "S", Protocol: "TCP",
			MeasuredKbps: kbps, MeasuredFPS: fps, JitterMs: jit,
			FramesPlayed: int(played), FramesLost: int(lost),
			Rated: rated, Rating: float64(rating % 11),
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, []*Record{rec}); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil || len(got) != 1 {
			return false
		}
		g := got[0]
		close := func(a, b float64) bool {
			d := a - b
			if d < 0 {
				d = -d
			}
			scale := 1.0
			if b > 1 {
				scale = b
			}
			return d/scale < 1e-4
		}
		return close(g.MeasuredKbps, rec.MeasuredKbps) && close(g.MeasuredFPS, rec.MeasuredFPS) &&
			g.FramesPlayed == rec.FramesPlayed && g.Rated == rec.Rated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
