package tracer

import (
	"realtracer/internal/geo"
	"realtracer/internal/player"
	"realtracer/internal/rdt"
	"realtracer/internal/simclock"
	"realtracer/internal/snap"
	"realtracer/internal/transport"
	"realtracer/internal/vclock"
)

// Two event kinds belong to the tracer: the not-yet-started session (the
// world arms the Tracer itself at its start instant) and the inter-clip
// think-time pause.
func init() {
	simclock.RegisterEventKind("tracer.run", (*Tracer)(nil))
	simclock.RegisterEventKind("tracer.pause", (*tracerArm)(nil))
}

// PersistState writes the tracer's session progress. The playlist, user and
// hooks are template state the world rebuilds deterministically from its
// Options; only the walk position, the in-flight clip's identity (which
// SelectServer may have re-homed) and the player engine persist.
func (t *Tracer) PersistState(sw *snap.Writer, app transport.AppCodec) error {
	sw.Tag("tracer")
	sw.Int(t.idx)
	sw.Int(t.played)
	sw.Int(t.rated)
	sw.Bool(t.stopped)
	sw.Int(t.ai)
	persistEntry(sw, t.curEntry)
	sw.Dur(t.curStarted)
	t.pause.Persist(sw)
	sw.Bool(t.pl != nil)
	if t.pl != nil {
		return t.pl.PersistState(sw, app)
	}
	return sw.Err()
}

// RestoreState overlays a checkpointed walk onto a template-built Tracer
// (fresh from New with the same Config the original had). The arenas restore
// empty: checkpointed packets and frames are carried by value elsewhere, so
// arena cells hold no restored state and refill as the session proceeds.
func (t *Tracer) RestoreState(sr *snap.Reader, stack *transport.Stack, app transport.AppCodec, tbl *transport.ConnTable) error {
	sr.Tag("tracer")
	t.idx = sr.Int()
	t.played = sr.Int()
	t.rated = sr.Int()
	t.stopped = sr.Bool()
	t.ai = sr.Int()
	t.curEntry = restoreEntry(sr)
	t.curStarted = sr.Dur()
	t.pause = vclock.RestoreHandle(sr, t.cfg.Clock, (*tracerArm)(t))
	if !sr.Bool() {
		return sr.Err()
	}
	if t.arenas[t.ai] == nil {
		t.arenas[t.ai] = &rdt.Arena{}
	}
	owner := player.Config{
		Clock:  t.cfg.Clock,
		Net:    t.cfg.Net,
		CPU:    player.PCClasses()[t.cfg.User.PCClass],
		Rand:   t.cfg.Rand,
		Arena:  t.arenas[t.ai],
		OnDone: t.onDone,
	}
	t.pl = player.New(owner)
	return t.pl.RestoreState(sr, owner, stack, app, tbl)
}

func persistEntry(sw *snap.Writer, e Entry) {
	sw.Str(e.URL)
	sw.Str(e.ControlAddr)
	sw.Str(e.Site.Name)
	sw.Str(e.Site.Host)
	sw.Str(e.Site.Country)
	sw.Int(int(e.Site.Region))
	sw.F64(e.Site.Unavailability)
	sw.Int(e.Site.Clips)
}

func restoreEntry(sr *snap.Reader) Entry {
	return Entry{
		URL:         sr.Str(),
		ControlAddr: sr.Str(),
		Site: geo.ServerSite{
			Name:           sr.Str(),
			Host:           sr.Str(),
			Country:        sr.Str(),
			Region:         geo.Region(sr.Int()),
			Unavailability: sr.F64(),
			Clips:          sr.Int(),
		},
	}
}
