// Package tracer implements the RealTracer client: it walks a user's
// playlist, plays each clip with the player engine, converts the engine's
// statistics into trace records, and solicits a quality rating after each
// watched clip — the instrumented-player half of the study (Section III.A).
package tracer

import (
	"math/rand"
	"time"

	"realtracer/internal/geo"
	"realtracer/internal/netsim"
	"realtracer/internal/player"
	"realtracer/internal/rdt"
	"realtracer/internal/session"
	"realtracer/internal/trace"
	"realtracer/internal/transport"
	"realtracer/internal/vclock"
)

// Entry is one playlist item.
type Entry struct {
	URL         string
	ControlAddr string
	Site        geo.ServerSite
}

// Config parameterizes one RealTracer run (one user, one playlist pass).
type Config struct {
	Clock vclock.Clock
	Net   session.Net
	User  *geo.User
	// Playlist is walked sequentially from the top, like the real tool.
	Playlist []Entry
	// PlayFor is per-clip playout length (RealTracer default: 1 minute).
	PlayFor time.Duration
	// Preroll overrides the player's initial buffer depth (0 = default);
	// exposed for the buffering ablation.
	Preroll time.Duration
	// Rand drives per-clip protocol fallback and the inter-clip think time.
	Rand *rand.Rand
	// SelectServer, when set, re-homes each playlist entry just before it
	// plays: the open-loop world installs a server-selection policy here
	// so a clip replicated across mirror sites is fetched from the site
	// the policy picks (by RTT, load, or rotation). Nil plays every entry
	// from its home site, exactly like the original tool.
	SelectServer func(entry Entry) Entry
	// Rate is the rating model hook: given the record of a just-played
	// clip, return the user's 0-10 score. Called only for clips the user
	// chooses to rate.
	Rate func(rec *trace.Record) float64
	// OnRecord receives every per-clip record as it is produced.
	OnRecord func(rec *trace.Record)
	// OnFinished fires after the final clip.
	OnFinished func()
	// ReuseRecord, when true, hands OnRecord the same Record storage for
	// every clip: the record is valid only for the duration of the call,
	// so it is safe only for sinks that do not retain (aggregating sinks).
	// False (the default) allocates a fresh Record per clip, which the
	// retain-everything trace.Collector requires.
	ReuseRecord bool
}

// Tracer runs one user's session. A Tracer owns a single player engine and
// a pair of packet arenas that it recycles clip after clip — and, via
// Reset, session after session — so a long churn of sessions through one
// Tracer stops allocating once its working set has grown.
type Tracer struct {
	cfg     Config
	idx     int
	played  int // successfully played clips (for rating budget)
	rated   int
	stopped bool

	// pl is the single player engine, built lazily on the first clip and
	// Reset for every clip after that. onDone is the bound method value
	// handed to the player once, instead of one closure per clip.
	pl     *player.Player
	onDone func(*player.Stats, error)

	// arenas ping-pong between clips: the incoming clip resets and uses
	// one while packets minted by the previous clip — in flight for at
	// most a few seconds of virtual time — stay valid in the other until
	// the clip after next.
	arenas [2]*rdt.Arena
	ai     int

	// pause is the armed inter-clip think-time timer; Abort cancels it so
	// a recycled Tracer leaves nothing behind on the clock.
	pause vclock.Handle

	// curEntry/curStarted carry the in-flight clip's identity to onDone
	// (fields instead of a fresh closure environment per clip).
	curEntry   Entry
	curStarted time.Duration

	rec trace.Record // record scratch, used when cfg.ReuseRecord
}

// New builds a Tracer.
func New(cfg Config) *Tracer {
	if cfg.PlayFor <= 0 {
		cfg.PlayFor = player.DefaultPlayFor
	}
	t := &Tracer{cfg: cfg}
	t.onDone = t.clipDone
	return t
}

// Reset rewires the Tracer for a fresh playlist pass, reusing the player,
// the arenas and the session's config. Only the playlist changes between
// the sessions a pooled Tracer serves; everything else in Config — clock,
// net, user, RNG, hooks — is template-bound and stays. The caller must
// have stopped the previous pass first (Abort, or natural completion).
func (t *Tracer) Reset(playlist []Entry) {
	t.pause.Cancel()
	t.cfg.Playlist = playlist
	t.idx, t.played, t.rated = 0, 0, 0
	t.stopped = false
}

// Run starts walking the playlist.
func (t *Tracer) Run() { t.next() }

// Fire implements simclock.EventHandler: a Tracer armed directly on the
// clock starts its playlist walk. The world schedules session starts this
// way so the start events are plain data a checkpoint can carry.
func (t *Tracer) Fire(time.Duration) { t.next() }

// Stop abandons the playlist after the in-flight clip.
func (t *Tracer) Stop() { t.stopped = true }

// Abort hard-stops the session now: the armed inter-clip pause is
// cancelled and the in-flight player run is torn down without reporting.
// After Abort the Tracer schedules nothing and sends nothing — the state a
// pooled Tracer must reach before its template is recycled.
func (t *Tracer) Abort() {
	t.stopped = true
	t.pause.Cancel()
	if t.pl != nil {
		t.pl.Abort()
	}
}

// tracerArm is the pooled timer handler for the inter-clip pause: a
// pointer-conversion view of Tracer, so arming the timer allocates
// nothing.
type tracerArm Tracer

func (x *tracerArm) Fire(time.Duration) { (*Tracer)(x).next() }

// protocolFor models RealPlayer's transport auto-configuration: users whose
// environment forces TCP (firewalls and similar) always use it; the rest
// request UDP, with an occasional per-clip fallback to TCP (the mix behind
// Figure 16).
func (t *Tracer) protocolFor() transport.Protocol {
	if t.cfg.User.PreferTCP {
		return transport.TCP
	}
	if t.cfg.Rand.Float64() < 0.10 {
		return transport.TCP
	}
	return transport.UDP
}

// maxBandwidthFor is the RealPlayer "maximum bit rate" preference users set
// from their connection type. Modem users knew their modem: slow V.34
// hardware got the "28.8" setting (the 20 Kbps encoding), healthy V.90
// lines the "56k" setting (34 Kbps).
func (t *Tracer) maxBandwidthFor() float64 {
	switch t.cfg.User.Access {
	case netsim.AccessModem:
		if t.cfg.User.ModemKbps > 0 && t.cfg.User.ModemKbps < 36 {
			return 20
		}
		return 34
	case netsim.AccessDSLCable:
		return 350
	default:
		return 450
	}
}

func (t *Tracer) next() {
	if t.stopped || t.idx >= len(t.cfg.Playlist) {
		if t.cfg.OnFinished != nil {
			t.cfg.OnFinished()
		}
		return
	}
	entry := t.cfg.Playlist[t.idx]
	t.idx++
	if t.cfg.SelectServer != nil {
		entry = t.cfg.SelectServer(entry)
	}
	t.curEntry = entry
	t.curStarted = t.cfg.Clock.Now()

	// Swap to the arena the previous clip did NOT use and rewind it. Any
	// packet from the last clip still crossing the network dereferences
	// the other arena, whose cells stay intact until the clip after this
	// one — far longer than any packet lives in flight.
	t.ai ^= 1
	if t.arenas[t.ai] == nil {
		t.arenas[t.ai] = &rdt.Arena{}
	}
	t.arenas[t.ai].Reset()

	cfg := player.Config{
		Clock:            t.cfg.Clock,
		Net:              t.cfg.Net,
		ControlAddr:      entry.ControlAddr,
		URL:              entry.URL,
		Protocol:         t.protocolFor(),
		MaxBandwidthKbps: t.maxBandwidthFor(),
		PlayFor:          t.cfg.PlayFor,
		Preroll:          t.cfg.Preroll,
		CPU:              player.PCClasses()[t.cfg.User.PCClass],
		Rand:             t.cfg.Rand,
		Arena:            t.arenas[t.ai],
		OnDone:           t.onDone,
	}
	if t.pl == nil {
		t.pl = player.New(cfg)
	} else {
		t.pl.Reset(cfg)
	}
	t.pl.Start()
}

// clipDone is the player's OnDone: record the clip, maybe rate it, and
// schedule the next one after the think-time pause.
func (t *Tracer) clipDone(st *player.Stats, err error) {
	rec := t.recordFor(t.curEntry, st)
	rec.StartSec = t.curStarted.Seconds()
	rec.EndSec = t.cfg.Clock.Now().Seconds()
	t.maybeRate(rec)
	if t.cfg.OnRecord != nil {
		t.cfg.OnRecord(rec)
	}
	// Brief pause between clips: the rating dialog lingers up to
	// 10 s, plus human think time.
	pause := 2*time.Second + time.Duration(t.cfg.Rand.Intn(9000))*time.Millisecond
	t.pause = t.cfg.Clock.AfterHandler(pause, (*tracerArm)(t))
}

func (t *Tracer) recordFor(entry Entry, st *player.Stats) *trace.Record {
	var rec *trace.Record
	if t.cfg.ReuseRecord {
		rec = &t.rec
	} else {
		rec = new(trace.Record)
	}
	u := t.cfg.User
	*rec = trace.Record{
		User:    u.Name,
		Country: u.Country,
		State:   u.State,
		Region:  geo.AnalysisUserRegion(u.Region).String(),
		Access:  u.Access.String(),
		PCClass: player.PCClasses()[u.PCClass].Name,

		ClipURL:       entry.URL,
		Server:        entry.Site.Name,
		ServerCountry: entry.Site.Country,
		ServerRegion:  geo.AnalysisServerRegion(entry.Site.Region).String(),

		Unavailable: st.Unavailable,
		Failed:      st.Failed,
		FailReason:  st.FailReason,
		Protocol:    st.Protocol.String(),

		EncodedKbps: st.EncodedKbps,
		EncodedFPS:  st.EncodedFPS,

		MeasuredKbps: st.MeasuredKbps,
		MeasuredFPS:  st.MeasuredFPS,
		JitterMs:     st.JitterMs,

		FramesPlayed:      st.FramesPlayed,
		FramesDroppedLate: st.FramesDroppedLate,
		FramesDroppedCPU:  st.FramesDroppedCPU,
		FramesLost:        st.FramesLost,
		FramesCorrupted:   st.FramesCorrupted,

		Rebuffers:      st.Rebuffers,
		RebufferTime:   st.RebufferTime,
		BufferingTime:  st.BufferingTime,
		CPUUtilization: st.CPUUtilization,
		Switches:       st.Switches,
	}
	return rec
}

// maybeRate applies the user's rating budget: users were asked to watch and
// rate 3-10 clips; RealTracer solicited after every clip and moved on if no
// rating arrived. We model users front-loading their ratings.
func (t *Tracer) maybeRate(rec *trace.Record) {
	if rec.Unavailable || rec.Failed {
		return
	}
	t.played++
	if t.rated >= t.cfg.User.ClipsToRate || t.cfg.Rate == nil {
		return
	}
	rec.Rated = true
	rec.Rating = t.cfg.Rate(rec)
	t.rated++
}
