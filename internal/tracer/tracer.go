// Package tracer implements the RealTracer client: it walks a user's
// playlist, plays each clip with the player engine, converts the engine's
// statistics into trace records, and solicits a quality rating after each
// watched clip — the instrumented-player half of the study (Section III.A).
package tracer

import (
	"math/rand"
	"time"

	"realtracer/internal/geo"
	"realtracer/internal/netsim"
	"realtracer/internal/player"
	"realtracer/internal/session"
	"realtracer/internal/trace"
	"realtracer/internal/transport"
	"realtracer/internal/vclock"
)

// Entry is one playlist item.
type Entry struct {
	URL         string
	ControlAddr string
	Site        geo.ServerSite
}

// Config parameterizes one RealTracer run (one user, one playlist pass).
type Config struct {
	Clock vclock.Clock
	Net   session.Net
	User  *geo.User
	// Playlist is walked sequentially from the top, like the real tool.
	Playlist []Entry
	// PlayFor is per-clip playout length (RealTracer default: 1 minute).
	PlayFor time.Duration
	// Preroll overrides the player's initial buffer depth (0 = default);
	// exposed for the buffering ablation.
	Preroll time.Duration
	// Rand drives per-clip protocol fallback and the inter-clip think time.
	Rand *rand.Rand
	// SelectServer, when set, re-homes each playlist entry just before it
	// plays: the open-loop world installs a server-selection policy here
	// so a clip replicated across mirror sites is fetched from the site
	// the policy picks (by RTT, load, or rotation). Nil plays every entry
	// from its home site, exactly like the original tool.
	SelectServer func(entry Entry) Entry
	// Rate is the rating model hook: given the record of a just-played
	// clip, return the user's 0-10 score. Called only for clips the user
	// chooses to rate.
	Rate func(rec *trace.Record) float64
	// OnRecord receives every per-clip record as it is produced.
	OnRecord func(rec *trace.Record)
	// OnFinished fires after the final clip.
	OnFinished func()
}

// Tracer runs one user's session.
type Tracer struct {
	cfg     Config
	idx     int
	played  int // successfully played clips (for rating budget)
	rated   int
	stopped bool
}

// New builds a Tracer.
func New(cfg Config) *Tracer {
	if cfg.PlayFor <= 0 {
		cfg.PlayFor = player.DefaultPlayFor
	}
	return &Tracer{cfg: cfg}
}

// Run starts walking the playlist.
func (t *Tracer) Run() { t.next() }

// Stop abandons the playlist after the in-flight clip.
func (t *Tracer) Stop() { t.stopped = true }

// protocolFor models RealPlayer's transport auto-configuration: users whose
// environment forces TCP (firewalls and similar) always use it; the rest
// request UDP, with an occasional per-clip fallback to TCP (the mix behind
// Figure 16).
func (t *Tracer) protocolFor() transport.Protocol {
	if t.cfg.User.PreferTCP {
		return transport.TCP
	}
	if t.cfg.Rand.Float64() < 0.10 {
		return transport.TCP
	}
	return transport.UDP
}

// maxBandwidthFor is the RealPlayer "maximum bit rate" preference users set
// from their connection type. Modem users knew their modem: slow V.34
// hardware got the "28.8" setting (the 20 Kbps encoding), healthy V.90
// lines the "56k" setting (34 Kbps).
func (t *Tracer) maxBandwidthFor() float64 {
	switch t.cfg.User.Access {
	case netsim.AccessModem:
		if t.cfg.User.ModemKbps > 0 && t.cfg.User.ModemKbps < 36 {
			return 20
		}
		return 34
	case netsim.AccessDSLCable:
		return 350
	default:
		return 450
	}
}

func (t *Tracer) next() {
	if t.stopped || t.idx >= len(t.cfg.Playlist) {
		if t.cfg.OnFinished != nil {
			t.cfg.OnFinished()
		}
		return
	}
	entry := t.cfg.Playlist[t.idx]
	t.idx++
	if t.cfg.SelectServer != nil {
		entry = t.cfg.SelectServer(entry)
	}
	started := t.cfg.Clock.Now()

	p := player.New(player.Config{
		Clock:            t.cfg.Clock,
		Net:              t.cfg.Net,
		ControlAddr:      entry.ControlAddr,
		URL:              entry.URL,
		Protocol:         t.protocolFor(),
		MaxBandwidthKbps: t.maxBandwidthFor(),
		PlayFor:          t.cfg.PlayFor,
		Preroll:          t.cfg.Preroll,
		CPU:              player.PCClasses()[t.cfg.User.PCClass],
		Rand:             t.cfg.Rand,
		OnDone: func(st *player.Stats, err error) {
			rec := t.recordFor(entry, st)
			rec.StartSec = started.Seconds()
			rec.EndSec = t.cfg.Clock.Now().Seconds()
			t.maybeRate(rec)
			if t.cfg.OnRecord != nil {
				t.cfg.OnRecord(rec)
			}
			// Brief pause between clips: the rating dialog lingers up to
			// 10 s, plus human think time.
			pause := 2*time.Second + time.Duration(t.cfg.Rand.Intn(9000))*time.Millisecond
			t.cfg.Clock.After(pause, t.next)
		},
	})
	p.Start()
}

func (t *Tracer) recordFor(entry Entry, st *player.Stats) *trace.Record {
	u := t.cfg.User
	rec := &trace.Record{
		User:    u.Name,
		Country: u.Country,
		State:   u.State,
		Region:  geo.AnalysisUserRegion(u.Region).String(),
		Access:  u.Access.String(),
		PCClass: player.PCClasses()[u.PCClass].Name,

		ClipURL:       entry.URL,
		Server:        entry.Site.Name,
		ServerCountry: entry.Site.Country,
		ServerRegion:  geo.AnalysisServerRegion(entry.Site.Region).String(),

		Unavailable: st.Unavailable,
		Failed:      st.Failed,
		FailReason:  st.FailReason,
		Protocol:    st.Protocol.String(),

		EncodedKbps: st.EncodedKbps,
		EncodedFPS:  st.EncodedFPS,

		MeasuredKbps: st.MeasuredKbps,
		MeasuredFPS:  st.MeasuredFPS,
		JitterMs:     st.JitterMs,

		FramesPlayed:      st.FramesPlayed,
		FramesDroppedLate: st.FramesDroppedLate,
		FramesDroppedCPU:  st.FramesDroppedCPU,
		FramesLost:        st.FramesLost,
		FramesCorrupted:   st.FramesCorrupted,

		Rebuffers:      st.Rebuffers,
		RebufferTime:   st.RebufferTime,
		BufferingTime:  st.BufferingTime,
		CPUUtilization: st.CPUUtilization,
		Switches:       st.Switches,
	}
	return rec
}

// maybeRate applies the user's rating budget: users were asked to watch and
// rate 3-10 clips; RealTracer solicited after every clip and moved on if no
// rating arrived. We model users front-loading their ratings.
func (t *Tracer) maybeRate(rec *trace.Record) {
	if rec.Unavailable || rec.Failed {
		return
	}
	t.played++
	if t.rated >= t.cfg.User.ClipsToRate || t.cfg.Rate == nil {
		return
	}
	rec.Rated = true
	rec.Rating = t.cfg.Rate(rec)
	t.rated++
}
