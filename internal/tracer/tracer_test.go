package tracer

import (
	"math/rand"
	"testing"
	"time"

	"realtracer/internal/geo"
	"realtracer/internal/media"
	"realtracer/internal/netsim"
	"realtracer/internal/server"
	"realtracer/internal/session"
	"realtracer/internal/simclock"
	"realtracer/internal/trace"
	"realtracer/internal/transport"
	"realtracer/internal/vclock"
)

func testUser(access netsim.AccessClass, preferTCP bool, rateN int) *geo.User {
	return &geo.User{
		Name: "u.test", Country: "US", State: "MA", Region: geo.RegionNorthAmerica,
		Access: access, PCClass: 2, PreferTCP: preferTCP,
		ClipsToPlay: 5, ClipsToRate: rateN, RatingAnchor: 5,
	}
}

func runTracer(t *testing.T, u *geo.User, playlistLen int, unavailability float64) []*trace.Record {
	t.Helper()
	clock := simclock.New()
	n := netsim.New(clock, netsim.StaticRoute(netsim.Route{OneWayDelay: 30 * time.Millisecond}), 5)
	n.AddHost(netsim.HostConfig{Name: "srv", Access: netsim.DefaultAccessProfile(netsim.AccessServer)})
	n.AddHost(netsim.HostConfig{Name: "u.test", Access: netsim.DefaultAccessProfile(u.Access)})
	lib := media.GenerateLibrary("srv", playlistLen, 3)
	srv := server.New(server.Config{
		Clock: vclock.Sim{C: clock}, Net: session.SimNet{Stack: transport.NewStack(n, "srv")},
		Library: lib, Rand: rand.New(rand.NewSource(1)),
		Unavailability: unavailability, SureStream: true, FEC: true,
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	site := geo.ServerSite{Name: "US/TEST", Host: "srv", Country: "US", Region: geo.RegionNorthAmerica}
	var playlist []Entry
	for _, c := range lib.Clips {
		playlist = append(playlist, Entry{URL: c.URL, ControlAddr: "srv:554", Site: site})
	}
	var recs []*trace.Record
	finished := false
	tr := New(Config{
		Clock: vclock.Sim{C: clock}, Net: session.SimNet{Stack: transport.NewStack(n, "u.test")},
		User: u, Playlist: playlist, PlayFor: 10 * time.Second,
		Rand:       rand.New(rand.NewSource(2)),
		Rate:       func(rec *trace.Record) float64 { return 7 },
		OnRecord:   func(rec *trace.Record) { recs = append(recs, rec) },
		OnFinished: func() { finished = true },
	})
	tr.Run()
	clock.RunUntil(2 * time.Hour)
	if !finished {
		t.Fatal("tracer never finished")
	}
	return recs
}

func TestTracerWalksPlaylist(t *testing.T) {
	u := testUser(netsim.AccessDSLCable, false, 2)
	recs := runTracer(t, u, 4, 0)
	if len(recs) != 4 {
		t.Fatalf("records=%d want 4", len(recs))
	}
	rated := 0
	for i, r := range recs {
		if r.User != "u.test" || r.Country != "US" || r.Server != "US/TEST" {
			t.Fatalf("identity fields wrong: %+v", r)
		}
		if r.ClipURL != "rtsp://srv/clip00"+string(rune('0'+i))+".rm" {
			t.Fatalf("playlist order broken at %d: %s", i, r.ClipURL)
		}
		if r.Rated {
			rated++
			if r.Rating != 7 {
				t.Fatalf("rating hook ignored: %v", r.Rating)
			}
		}
	}
	if rated != 2 {
		t.Fatalf("rated=%d want the user's budget of 2", rated)
	}
}

func TestTracerPreferTCPUser(t *testing.T) {
	u := testUser(netsim.AccessT1LAN, true, 0)
	recs := runTracer(t, u, 3, 0)
	for _, r := range recs {
		if r.Protocol != "TCP" {
			t.Fatalf("PreferTCP user used %s", r.Protocol)
		}
	}
}

func TestTracerRecordsUnavailability(t *testing.T) {
	u := testUser(netsim.AccessDSLCable, false, 3)
	recs := runTracer(t, u, 5, 1.0)
	for _, r := range recs {
		if !r.Unavailable {
			t.Fatalf("expected unavailable record, got %+v", r)
		}
		if r.Rated {
			t.Fatal("unavailable clips must not consume the rating budget")
		}
	}
}

func TestTracerModemBandwidthSetting(t *testing.T) {
	slow := testUser(netsim.AccessModem, false, 0)
	slow.ModemKbps = 28
	fast := testUser(netsim.AccessModem, false, 0)
	fast.ModemKbps = 45
	trSlow := New(Config{User: slow, Rand: rand.New(rand.NewSource(1))})
	trFast := New(Config{User: fast, Rand: rand.New(rand.NewSource(1))})
	if trSlow.maxBandwidthFor() != 20 {
		t.Fatalf("slow modem setting=%v want 20", trSlow.maxBandwidthFor())
	}
	if trFast.maxBandwidthFor() != 34 {
		t.Fatalf("fast modem setting=%v want 34", trFast.maxBandwidthFor())
	}
}

func TestTracerStop(t *testing.T) {
	u := testUser(netsim.AccessDSLCable, false, 0)
	clock := simclock.New()
	n := netsim.New(clock, netsim.StaticRoute(netsim.Route{}), 5)
	n.AddHost(netsim.HostConfig{Name: "srv", Access: netsim.DefaultAccessProfile(netsim.AccessServer)})
	n.AddHost(netsim.HostConfig{Name: "u.test", Access: netsim.DefaultAccessProfile(u.Access)})
	lib := media.GenerateLibrary("srv", 5, 3)
	srv := server.New(server.Config{
		Clock: vclock.Sim{C: clock}, Net: session.SimNet{Stack: transport.NewStack(n, "srv")},
		Library: lib, Rand: rand.New(rand.NewSource(1)), SureStream: true,
	})
	srv.Start()
	site := geo.ServerSite{Name: "S", Host: "srv"}
	var playlist []Entry
	for _, c := range lib.Clips {
		playlist = append(playlist, Entry{URL: c.URL, ControlAddr: "srv:554", Site: site})
	}
	count := 0
	finished := false
	var tr *Tracer
	tr = New(Config{
		Clock: vclock.Sim{C: clock}, Net: session.SimNet{Stack: transport.NewStack(n, "u.test")},
		User: u, Playlist: playlist, PlayFor: 10 * time.Second,
		Rand: rand.New(rand.NewSource(2)),
		OnRecord: func(rec *trace.Record) {
			count++
			if count == 2 {
				tr.Stop()
			}
		},
		OnFinished: func() { finished = true },
	})
	tr.Run()
	clock.RunUntil(time.Hour)
	if count != 2 {
		t.Fatalf("Stop did not halt the playlist: %d records", count)
	}
	if !finished {
		t.Fatal("OnFinished should still fire after Stop")
	}
}
