package transport

import (
	"testing"

	"realtracer/internal/netsim"
	"realtracer/internal/simclock"
)

// twoHostWorld builds the minimal simulated internet: two hosts, a clean
// route, one UDP receiver on b and a connected sender on a.
func twoHostWorld() (*simclock.Clock, *netsim.Network, Conn, *int) {
	clock := simclock.New()
	n := netsim.New(clock, netsim.StaticRoute{}, 1)
	n.AddHost(netsim.HostConfig{Name: "a", Access: netsim.DefaultAccessProfile(netsim.AccessServer)})
	n.AddHost(netsim.HostConfig{Name: "b", Access: netsim.DefaultAccessProfile(netsim.AccessT1LAN)})
	sa := NewStack(n, "a")
	sb := NewStack(n, "b")
	got := 0
	sb.ListenUDP(7000, func(string, any, int) { got++ })
	conn := sa.DialUDP("b:7000")
	return clock, n, conn, &got
}

// packetAllocBudget pins the steady-state allocations per delivered packet
// on the two-host world. The zero-allocation core (pooled packets, pooled
// clock events, interned host IDs) makes the true steady state 0; the
// budget leaves a little headroom for runtime bookkeeping so the guard
// fails on a real regression, not on noise.
const packetAllocBudget = 0.5

// TestSteadyStateAllocBudget is the alloc-budget guard: if a change to
// simclock/netsim/transport reintroduces per-packet allocation (a fresh
// closure, an unpooled packet, a map rebuild), this fails before any
// benchmark has to notice.
func TestSteadyStateAllocBudget(t *testing.T) {
	clock, _, conn, got := twoHostWorld()
	// Warm the pools: first sends grow the free-lists and the event heap.
	for i := 0; i < 512; i++ {
		conn.Send(nil, 500)
		clock.Run()
	}
	before := *got
	avg := testing.AllocsPerRun(2000, func() {
		conn.Send(nil, 500)
		clock.Run()
	})
	if *got-before < 2000 {
		t.Fatalf("deliveries = %d, want 2000 (world misconfigured)", *got-before)
	}
	if avg > packetAllocBudget {
		t.Fatalf("steady-state allocs per delivered packet = %.2f, budget %.2f", avg, packetAllocBudget)
	}
}

// BenchmarkPacketHopUDP is the per-packet microbenchmark: one datagram
// offered, shaped and delivered per iteration. Run with -benchmem; the CI
// bench smoke stage tracks it alongside the campaign benches.
func BenchmarkPacketHopUDP(b *testing.B) {
	clock, _, conn, _ := twoHostWorld()
	for i := 0; i < 512; i++ {
		conn.Send(nil, 500)
		clock.Run()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn.Send(nil, 500)
		clock.Run()
	}
}

// BenchmarkPacketHopTCP drives one data segment plus its ACK through the
// simulated TCP per iteration (established connection, no loss).
func BenchmarkPacketHopTCP(b *testing.B) {
	clock := simclock.New()
	n := netsim.New(clock, netsim.StaticRoute{}, 1)
	n.AddHost(netsim.HostConfig{Name: "a", Access: netsim.DefaultAccessProfile(netsim.AccessServer)})
	n.AddHost(netsim.HostConfig{Name: "b", Access: netsim.DefaultAccessProfile(netsim.AccessT1LAN)})
	sa := NewStack(n, "a")
	sb := NewStack(n, "b")
	sb.Listen(554, func(c Conn) { c.SetReceiver(func(any, int) {}) })
	var conn Conn
	sa.DialTCP("b:554", func(c Conn, err error) {
		if err != nil {
			b.Fatalf("dial: %v", err)
		}
		conn = c
	})
	clock.Run()
	if conn == nil {
		b.Fatal("handshake did not complete")
	}
	for i := 0; i < 512; i++ {
		conn.Send(nil, 500)
		clock.Run()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn.Send(nil, 500)
		clock.Run()
	}
}
