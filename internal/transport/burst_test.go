package transport

import (
	"testing"
	"time"

	"realtracer/internal/netsim"
	"realtracer/internal/simclock"
)

// newBurstPair builds two hosts whose path suffers Gilbert–Elliott loss
// bursts: seconds-long episodes where most packets die, the regime that
// distinguishes burst-tolerant recovery from uniform-loss recovery.
func newBurstPair(t *testing.T, badLoss float64) (*simclock.Clock, *netsim.Network, *Stack, *Stack) {
	t.Helper()
	clock := simclock.New()
	n := netsim.New(clock, netsim.StaticRoute(netsim.Route{OneWayDelay: 30 * time.Millisecond}), 7)
	n.AddHost(netsim.HostConfig{Name: "a", Access: netsim.DefaultAccessProfile(netsim.AccessServer)})
	n.AddHost(netsim.HostConfig{Name: "b", Access: netsim.DefaultAccessProfile(netsim.AccessDSLCable)})
	n.SetDynamics(netsim.NewDynamics().LossBurst("*", "*", 0, 0, 0.15, 0.30, badLoss), 41)
	return clock, n, NewStack(n, "a"), NewStack(n, "b")
}

// TestTCPRetransmitsAcrossLossBursts drives the simulated TCP through
// bursty loss episodes: whole RTTs of traffic vanish at once, so recovery
// leans on retransmission timeouts, not just fast retransmit. Every
// message must still arrive exactly once, in order.
func TestTCPRetransmitsAcrossLossBursts(t *testing.T) {
	clock, n, sa, sb := newBurstPair(t, 0.85)

	var got []int
	sa.Listen(100, func(c Conn) {
		c.SetReceiver(func(payload any, _ int) {
			got = append(got, payload.(int))
		})
	})

	const msgs = 300
	dialed := false
	sb.DialTCP("a:100", func(c Conn, err error) {
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		dialed = true
		// Trickle sends across the burst timeline so episodes hit both
		// fresh data and retransmissions.
		for i := 0; i < msgs; i++ {
			i := i
			clock.After(time.Duration(i)*200*time.Millisecond, func() {
				c.Send(i, 900)
			})
		}
	})
	clock.RunUntil(10 * time.Minute)

	if !dialed {
		t.Fatal("handshake never completed (SYN retries should survive bursts)")
	}
	if len(got) != msgs {
		t.Fatalf("delivered %d of %d messages across loss bursts", len(got), msgs)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out-of-order/duplicated delivery at %d: got %d", i, v)
		}
	}
	// The network itself must have dropped plenty — otherwise this test
	// exercised nothing and the chain never entered its bad state.
	_, _, dropped := n.Stats()
	if dropped == 0 {
		t.Fatal("no packets dropped: loss-burst dynamics inactive")
	}
}

// TestUDPLosesWholeBurstsButKeepsOrder is the contrast: fire-and-forget
// UDP on the same weather loses contiguous runs of datagrams (which is
// what FEC cannot repair and NACK recovery exists for), but never
// reorders what does arrive.
func TestUDPLosesWholeBurstsButKeepsOrder(t *testing.T) {
	clock, _, sa, sb := newBurstPair(t, 1.0)

	var got []int
	sa.ListenUDP(200, func(from string, payload any, _ int) {
		got = append(got, payload.(int))
	})
	c := sb.DialUDP("a:200")
	const msgs = 600
	for i := 0; i < msgs; i++ {
		i := i
		clock.After(time.Duration(i)*100*time.Millisecond, func() { c.Send(i, 500) })
	}
	clock.Run()

	if len(got) == msgs {
		t.Fatal("no datagrams lost: burst dynamics inactive")
	}
	if len(got) == 0 {
		t.Fatal("every datagram lost")
	}
	longest, run, prev := 0, 0, -1
	seen := make(map[int]bool, len(got))
	for _, v := range got {
		if v <= prev {
			t.Fatalf("UDP reordered: %d after %d", v, prev)
		}
		if seen[v] {
			t.Fatalf("UDP duplicated %d", v)
		}
		seen[v] = true
		run = v - prev - 1 // gap length before this arrival
		if run > longest {
			longest = run
		}
		prev = v
	}
	// At 10 datagrams/s and ~3s bad-state dwell with total loss, gaps of
	// many consecutive datagrams must appear — burstiness, not thinning.
	if longest < 8 {
		t.Fatalf("longest loss run %d datagrams; expected whole bursts to vanish", longest)
	}
}
